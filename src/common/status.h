#ifndef WCOP_COMMON_STATUS_H_
#define WCOP_COMMON_STATUS_H_

#include <ostream>
#include <string>
#include <string_view>
#include <utility>

namespace wcop {

/// Error categories used across the library. Kept deliberately small: the
/// library signals *what class of thing went wrong*; the message carries the
/// detail.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kFailedPrecondition,
  kIoError,
  kParseError,
  kResourceExhausted,
  kInternal,
  kUnsatisfiable,  ///< No solution exists under the given constraints
                   ///< (e.g. Bounded anonymity with an unreachable bound).
  kDeadlineExceeded,  ///< A RunContext deadline expired mid-computation.
  kCancelled,         ///< A RunContext cancellation token was triggered.
  kDataLoss,          ///< Durable state is unrecoverably torn or corrupt
                      ///< (bad magic, truncated payload, CRC mismatch).
};

/// Returns a stable, human-readable name for a status code ("OK",
/// "InvalidArgument", ...).
std::string_view StatusCodeToString(StatusCode code);

/// Lightweight status object in the RocksDB/Abseil tradition: core library
/// paths never throw; fallible operations return a Status (or Result<T>).
///
/// A Status is cheap to copy in the OK case (no allocation) and carries a
/// message string otherwise.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unsatisfiable(std::string msg) {
    return Status(StatusCode::kUnsatisfiable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Cancelled(std::string msg) {
    return Status(StatusCode::kCancelled, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagates a non-OK status to the caller. Usage:
///   WCOP_RETURN_IF_ERROR(DoThing());
#define WCOP_RETURN_IF_ERROR(expr)          \
  do {                                      \
    ::wcop::Status _wcop_status = (expr);   \
    if (!_wcop_status.ok()) {               \
      return _wcop_status;                  \
    }                                       \
  } while (false)

}  // namespace wcop

#endif  // WCOP_COMMON_STATUS_H_
