#ifndef WCOP_SERVER_JOB_LEDGER_H_
#define WCOP_SERVER_JOB_LEDGER_H_

/// Durable job ledger: one snapshot-envelope file per job
/// (`job_<id>.jrec`, rotating two-deep like every checkpoint in the
/// codebase) under the service's job directory. The service writes a job's
/// record *before* acting on the corresponding transition — append before
/// enqueue, running before execute, done after the output rename — so the
/// set of on-disk records is always a superset of the work the service has
/// promised, and a kill -9 at any instant leaves every accepted job either
/// completed or recoverable.
///
/// Crash anatomy of one update: WriteSnapshotRotating keeps the previous
/// good record as `.prev` until the new one has landed, so a torn write
/// regresses the job to its previous state — strictly more conservative
/// (the job re-runs; execution is deterministic and publication atomic, so
/// re-running is safe). Records that fail CRC on both current and prev are
/// counted (`server.ledger.corrupt`) and skipped, never trusted.
///
/// Thread safety: all methods lock an internal mutex; the service calls
/// Append from the admission path and Update from workers concurrently.

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/retry.h"
#include "common/status.h"
#include "common/telemetry.h"
#include "server/job.h"

namespace wcop {
namespace server {

class JobLedger {
 public:
  /// Opens (creating `dir` if needed) and loads every readable record.
  /// Runs the stale-artifact janitor over `dir` first — orphaned `*.tmp`
  /// from a crashed snapshot write must go before new writers start.
  static Result<std::unique_ptr<JobLedger>> Open(
      const std::string& dir, telemetry::Telemetry* telemetry = nullptr,
      const RetryPolicy* retry = nullptr);

  /// Persists a new record, assigning `record->id` (successor of the
  /// largest id ever loaded or appended). The record is durable when this
  /// returns OK.
  Status Append(JobRecord* record);

  /// Persists the new state of an existing record.
  Status Update(const JobRecord& record);

  /// All records, ordered by id (the admission order).
  std::vector<JobRecord> Records() const;

  /// Number of records whose snapshot failed validation at Open.
  size_t corrupt_records() const { return corrupt_records_; }

  const std::string& dir() const { return dir_; }

 private:
  JobLedger() = default;

  std::string RecordPath(int64_t id) const;
  Status WriteRecord(const JobRecord& record);

  std::string dir_;
  telemetry::Telemetry* telemetry_ = nullptr;
  const RetryPolicy* retry_ = nullptr;
  size_t corrupt_records_ = 0;

  mutable std::mutex mu_;
  std::map<int64_t, JobRecord> records_;
  int64_t next_id_ = 1;
};

}  // namespace server
}  // namespace wcop

#endif  // WCOP_SERVER_JOB_LEDGER_H_
