#ifndef WCOP_ANON_METRICS_H_
#define WCOP_ANON_METRICS_H_

#include <cstddef>
#include <vector>

#include "anon/types.h"
#include "traj/dataset.h"

namespace wcop {

/// Translation distortion of one trajectory (Definition 5, Eq. 1):
/// the sum of point-wise spatial distances between the sanitized points and
/// the original trajectory evaluated (by linear interpolation) at the same
/// timestamps. A suppressed trajectory (empty sanitized version) costs
/// |tau| * omega.
double TranslationDistortion(const Trajectory& original,
                             const Trajectory& sanitized, double omega);

/// Total translation distortion over the dataset (Eq. 2). `sanitized_of`
/// maps each original index to its sanitized trajectory, or nullptr when
/// trashed.
double TotalTranslationDistortion(
    const Dataset& original,
    const std::vector<const Trajectory*>& sanitized_of, double omega);

/// Discernibility metric (Bayardo & Agrawal, referenced as Eq. for DC in
/// Section 6.2): sum over clusters of |C|^2 plus |Trash| * |D|. Lower is
/// better (more elements indistinguishable at lower cost).
double Discernibility(const std::vector<AnonymityCluster>& clusters,
                      size_t trash_size, size_t dataset_size);

/// Dataset-aware demandingness of a trajectory (Definition 6, Eq. 3):
///   ddem = w1 * k/k_max + w2 * delta_min/delta.
/// Requires k_max >= 1 and delta > 0, delta_min > 0; degenerate inputs
/// contribute 0 to the respective component.
double Demandingness(const Requirement& req, int k_max, double delta_min,
                     double w1 = 0.5, double w2 = 0.5);

/// Demandingness of every trajectory in the dataset (k_max / delta_min are
/// taken from the dataset itself, as Definition 6 prescribes).
std::vector<double> DatasetDemandingness(const Dataset& dataset,
                                         double w1 = 0.5, double w2 = 0.5);

/// Trajectory edit cost (Definition 7, Eq. 4): how far the trajectory's
/// demandingness sits above the threshold trajectory's, normalized by the
/// gap between the dataset maximum and the threshold. Clamped to [0, 1].
double EditCost(double demandingness, double threshold_demandingness,
                double max_demandingness);

/// Distortion contributed by one edited trajectory (Definition 8, Eq. 5):
/// |tau| * omega * cost_edit.
double EditingDistortion(size_t trajectory_points, double omega,
                         double edit_cost);

}  // namespace wcop

#endif  // WCOP_ANON_METRICS_H_
