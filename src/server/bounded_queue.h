#ifndef WCOP_SERVER_BOUNDED_QUEUE_H_
#define WCOP_SERVER_BOUNDED_QUEUE_H_

/// Bounded thread-safe submission queue — the backpressure primitive of the
/// anonymization service (DESIGN.md "Service operation & fault tolerance").
///
/// Producers (the admission path) never block: TryPush either enqueues or
/// fails fast with kResourceExhausted, which the service surfaces to the
/// client as an explicit 429. Consumers (the worker pool) block in Pop
/// until an item or shutdown arrives. Close() picks the shutdown flavour:
/// drain=true lets consumers empty the queue in FIFO order first,
/// drain=false wakes them immediately and abandons queued items (safe for
/// the service because every accepted job is already durable in the
/// ledger — an abandoned item is re-enqueued from the ledger on restart).
///
/// ForcePush exists for exactly that restart path: recovered jobs were
/// admitted in a previous life, so re-admitting them must not compete with
/// (or be rejected by) the live capacity check.

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

#include "common/status.h"

namespace wcop {
namespace server {

template <typename T>
class BoundedQueue {
 public:
  explicit BoundedQueue(size_t capacity)
      : capacity_(capacity == 0 ? 1 : capacity) {}

  BoundedQueue(const BoundedQueue&) = delete;
  BoundedQueue& operator=(const BoundedQueue&) = delete;

  /// Admission path: enqueues or fails fast. kResourceExhausted when the
  /// queue is at capacity (the backpressure signal), kFailedPrecondition
  /// when the queue is closed (shutting down). Never blocks.
  Status TryPush(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) {
        return Status::FailedPrecondition("queue is closed");
      }
      if (items_.size() >= capacity_) {
        return Status::ResourceExhausted("submission queue is at capacity");
      }
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return Status::OK();
  }

  /// Recovery path: enqueues past the capacity check. Only closure can
  /// fail it. Used to re-inject ledger-recovered jobs at startup, which
  /// must never be bounced by live-traffic backpressure.
  Status ForcePush(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) {
        return Status::FailedPrecondition("queue is closed");
      }
      items_.push_back(std::move(item));
    }
    ready_.notify_one();
    return Status::OK();
  }

  /// Blocks until an item is available or the queue shuts down. Returns
  /// nullopt exactly when no more items will ever be handed out: closed
  /// with drain=false, or closed with drain=true and emptied. Items come
  /// out in FIFO push order.
  std::optional<T> Pop() {
    std::unique_lock<std::mutex> lock(mu_);
    ready_.wait(lock, [&] { return closed_ || !items_.empty(); });
    if (items_.empty() || (closed_ && !drain_)) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Non-blocking Pop variant for tests: nullopt when empty or abandoned.
  std::optional<T> TryPop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty() || (closed_ && !drain_)) {
      return std::nullopt;
    }
    T item = std::move(items_.front());
    items_.pop_front();
    return item;
  }

  /// Stops intake. drain=true: consumers keep popping until empty (FIFO).
  /// drain=false: consumers wake with nullopt immediately; queued items
  /// are abandoned in place. Idempotent; drain=false wins when both are
  /// requested.
  void Close(bool drain) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
      drain_ = drain_ && drain;
    }
    ready_.notify_all();
  }

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }
  size_t capacity() const { return capacity_; }
  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable ready_;
  std::deque<T> items_;
  bool closed_ = false;
  bool drain_ = true;
};

}  // namespace server
}  // namespace wcop

#endif  // WCOP_SERVER_BOUNDED_QUEUE_H_
