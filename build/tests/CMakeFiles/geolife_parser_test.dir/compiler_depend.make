# Empty compiler generated dependencies file for geolife_parser_test.
# This may be replaced when dependencies are built.
