#include "exp/grid_sweep.h"

#include "common/table_printer.h"

namespace wcop {

void GridSweepResult::Set(const std::string& metric, size_t delta_index,
                          size_t k_index, double value) {
  auto it = grids_.find(metric);
  if (it == grids_.end()) {
    it = grids_
             .emplace(metric,
                      std::vector<std::vector<double>>(
                          delta_values_.size(),
                          std::vector<double>(k_values_.size(), 0.0)))
             .first;
  }
  if (delta_index < delta_values_.size() && k_index < k_values_.size()) {
    it->second[delta_index][k_index] = value;
  }
}

double GridSweepResult::Get(const std::string& metric, size_t delta_index,
                            size_t k_index) const {
  auto it = grids_.find(metric);
  if (it == grids_.end() || delta_index >= delta_values_.size() ||
      k_index >= k_values_.size()) {
    return 0.0;
  }
  return it->second[delta_index][k_index];
}

std::vector<std::string> GridSweepResult::Metrics() const {
  std::vector<std::string> names;
  names.reserve(grids_.size());
  for (const auto& [name, grid] : grids_) {
    names.push_back(name);
  }
  return names;
}

void GridSweepResult::PrintTable(const std::string& metric,
                                 std::ostream& os) const {
  std::vector<std::string> header = {"series"};
  for (int k : k_values_) {
    header.push_back("kmax=" + std::to_string(k));
  }
  TablePrinter table(header);
  for (size_t di = 0; di < delta_values_.size(); ++di) {
    std::vector<std::string> row = {
        "dmax=" + FormatSignificant(delta_values_[di], 4)};
    for (size_t ki = 0; ki < k_values_.size(); ++ki) {
      row.push_back(FormatSignificant(Get(metric, di, ki), 4));
    }
    table.AddRow(row);
  }
  table.Print(os);
}

bool GridSweepResult::AnySeriesNonMonotone(const std::string& metric,
                                           double tolerance) const {
  for (size_t di = 0; di < delta_values_.size(); ++di) {
    bool rose = false, fell = false;
    for (size_t ki = 1; ki < k_values_.size(); ++ki) {
      const double prev = Get(metric, di, ki - 1);
      const double curr = Get(metric, di, ki);
      rose |= curr > prev + tolerance;
      fell |= curr < prev - tolerance;
    }
    if (rose && fell) {
      return true;
    }
  }
  return false;
}

Result<GridSweepResult> RunGridSweep(const std::vector<int>& k_values,
                                     const std::vector<double>& delta_values,
                                     const SweepFn& fn) {
  if (k_values.empty() || delta_values.empty()) {
    return Status::InvalidArgument("sweep axes must be non-empty");
  }
  if (!fn) {
    return Status::InvalidArgument("sweep function must be set");
  }
  GridSweepResult result(k_values, delta_values);
  for (size_t ki = 0; ki < k_values.size(); ++ki) {
    for (size_t di = 0; di < delta_values.size(); ++di) {
      SweepCell cell;
      cell.k_max = k_values[ki];
      cell.delta_max = delta_values[di];
      cell.k_index = ki;
      cell.delta_index = di;
      Result<std::map<std::string, double>> metrics = fn(cell);
      if (!metrics.ok()) {
        return Status(metrics.status().code(),
                      "sweep cell (kmax=" + std::to_string(cell.k_max) +
                          ", dmax=" + std::to_string(cell.delta_max) +
                          ") failed: " + metrics.status().message());
      }
      for (const auto& [name, value] : *metrics) {
        result.Set(name, di, ki, value);
      }
    }
  }
  return result;
}

std::vector<int> PaperKValues() { return {5, 10, 25, 50, 100}; }

std::vector<double> PaperDeltaValues() {
  return {50.0, 100.0, 250.0, 500.0, 1000.0, 1400.0};
}

}  // namespace wcop
