#include <gtest/gtest.h>

#include "anon/effective_anonymity.h"
#include "anon/wcop_ct.h"
#include "test_util.h"

namespace wcop {
namespace {

using testing_util::MakeLineWithReq;
using testing_util::SmallSynthetic;

TEST(EffectiveAnonymityTest, CountsColocalizedBundles) {
  Dataset d;
  // A bundle of three lanes within 4 m, plus a loner far away.
  d.Add(MakeLineWithReq(0, 0, 0, 10, 0, 20, 3, 100.0));
  d.Add(MakeLineWithReq(1, 0, 2, 10, 0, 20, 3, 100.0));
  d.Add(MakeLineWithReq(2, 0, 4, 10, 0, 20, 3, 100.0));
  d.Add(MakeLineWithReq(3, 0, 9999, 10, 0, 20, 1, 100.0));
  const EffectiveAnonymityReport report =
      MeasureEffectiveAnonymity(d, /*delta=*/5.0);
  ASSERT_EQ(report.counts.size(), 4u);
  EXPECT_EQ(report.counts[0], 3u);
  EXPECT_EQ(report.counts[1], 3u);
  EXPECT_EQ(report.counts[2], 3u);
  EXPECT_EQ(report.counts[3], 1u);
  EXPECT_EQ(report.min_anonymity, 1u);
  EXPECT_NEAR(report.mean_anonymity, 2.5, 1e-9);
  // The loner declared k=1, the bundle k=3 and got 3 -> no violations.
  EXPECT_DOUBLE_EQ(report.violation_fraction, 0.0);
}

TEST(EffectiveAnonymityTest, FlagsViolations) {
  Dataset d;
  d.Add(MakeLineWithReq(0, 0, 0, 10, 0, 20, 5, 100.0));  // wants 5, gets 2
  d.Add(MakeLineWithReq(1, 0, 2, 10, 0, 20, 2, 100.0));
  const EffectiveAnonymityReport report = MeasureEffectiveAnonymity(d, 5.0);
  EXPECT_EQ(report.counts[0], 2u);
  EXPECT_DOUBLE_EQ(report.violation_fraction, 0.5);
}

TEST(EffectiveAnonymityTest, PersonalDeltaMode) {
  Dataset d;
  d.Add(MakeLineWithReq(0, 0, 0, 10, 0, 20, 2, 1.0));   // strict delta
  d.Add(MakeLineWithReq(1, 0, 2, 10, 0, 20, 2, 10.0));  // loose delta
  const EffectiveAnonymityReport report =
      MeasureEffectiveAnonymity(d, 0.0, /*use_personal_delta=*/true);
  // Under its own delta=1, trajectory 0 sees nobody within 1 m; under
  // delta=10, trajectory 1 sees both.
  EXPECT_EQ(report.counts[0], 1u);
  EXPECT_EQ(report.counts[1], 2u);
}

TEST(EffectiveAnonymityTest, WcopOutputHonoursDeclaredK) {
  // The headline guarantee, measured from the outside: every published
  // trajectory's effective anonymity (at its own delta) is >= its k.
  const Dataset d = SmallSynthetic(40, 45, /*k_max=*/4);
  Result<AnonymizationResult> result = RunWcopCt(d);
  ASSERT_TRUE(result.ok());
  const EffectiveAnonymityReport report = MeasureEffectiveAnonymity(
      result->sanitized, 0.0, /*use_personal_delta=*/true);
  EXPECT_DOUBLE_EQ(report.violation_fraction, 0.0)
      << "some published trajectory has fewer co-localized companions than "
         "its declared k";
  EXPECT_GE(report.min_anonymity, 2u);
}

TEST(EffectiveAnonymityTest, RawDataLeaks) {
  // The same audit on the *unanonymized* dataset shows violations (random
  // requirements vs. no anonymization).
  const Dataset d = SmallSynthetic(40, 45, /*k_max=*/4);
  const EffectiveAnonymityReport report =
      MeasureEffectiveAnonymity(d, 0.0, /*use_personal_delta=*/true);
  EXPECT_GT(report.violation_fraction, 0.5);
}

TEST(EffectiveAnonymityTest, EmptyDataset) {
  const EffectiveAnonymityReport report =
      MeasureEffectiveAnonymity(Dataset(), 10.0);
  EXPECT_TRUE(report.counts.empty());
  EXPECT_EQ(report.min_anonymity, 0u);
}

}  // namespace
}  // namespace wcop
