#include "server/job_ledger.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "common/failpoint.h"
#include "common/telemetry.h"
#include "server/job.h"

namespace wcop {
namespace server {
namespace {

// ---------------------------------------------------------------------------
// Token escaping: any string must survive the line-oriented codec.
// ---------------------------------------------------------------------------

TEST(JobCodecTest, EscapeRoundTripsHostileStrings) {
  const std::string cases[] = {
      "",
      "plain",
      "with space",
      "tab\tand\nnewline",
      "percent % sign",
      "path/with spaces/and%20escapes.csv",
      std::string("embedded\0nul", 12),
      "unicode \xc3\xa9\xc3\xa8",
  };
  for (const std::string& raw : cases) {
    const std::string escaped = EscapeToken(raw);
    // The escaped form must be a single shell-safe token: no whitespace.
    EXPECT_EQ(escaped.find(' '), std::string::npos) << escaped;
    EXPECT_EQ(escaped.find('\n'), std::string::npos) << escaped;
    Result<std::string> back = UnescapeToken(escaped);
    ASSERT_TRUE(back.ok()) << back.status();
    EXPECT_EQ(*back, raw);
  }
}

TEST(JobCodecTest, UnescapeRejectsMalformedEscapes) {
  EXPECT_FALSE(UnescapeToken("%").ok());      // truncated
  EXPECT_FALSE(UnescapeToken("abc%2").ok());  // truncated
  EXPECT_FALSE(UnescapeToken("%zz").ok());    // not hex
  EXPECT_FALSE(UnescapeToken("ok%G0").ok());
}

TEST(JobCodecTest, JobStateNamesRoundTrip) {
  for (JobState state : {JobState::kQueued, JobState::kRunning,
                         JobState::kDone, JobState::kFailed}) {
    Result<JobState> back = JobStateFromName(JobStateName(state));
    ASSERT_TRUE(back.ok()) << back.status();
    EXPECT_EQ(*back, state);
  }
  EXPECT_FALSE(JobStateFromName("zombie").ok());
}

// ---------------------------------------------------------------------------
// Record codec: every field round-trips exactly.
// ---------------------------------------------------------------------------

JobRecord FullRecord() {
  JobRecord record;
  record.id = 42;
  record.state = JobState::kFailed;
  record.attempts = 3;
  record.spec.name = "nightly-batch_1.7";
  record.spec.tenant = "acme corp";  // space exercises the escaper
  record.spec.input_store = "/data/in put.wst";
  record.spec.output_csv = "/data/out 42.csv";
  record.spec.assign_k = 5;
  record.spec.assign_delta = 217.625;  // dyadic: exact in binary
  record.spec.shards = 4;
  record.spec.overlap_margin = 0.1;  // non-dyadic: %.17g must round-trip
  record.spec.deadline_ms = 60000;
  record.spec.max_distance_computations = 1234567;
  record.spec.allow_partial = true;
  record.spec.seed = 99;
  record.outcome.degraded = true;
  record.outcome.degraded_reason = "deadline pressure: 2 shards suppressed";
  record.outcome.verified = true;
  record.outcome.published = 38;
  record.outcome.suppressed = 2;
  record.outcome.clusters = 9;
  record.outcome.total_distortion = 12345.6789;
  record.outcome.resumed_shards = 1;
  record.outcome.error = "Internal: something with\nnewlines % and spaces";
  record.trace_id = "wcop-job-00c0ffee00c0ffee";
  record.progress.shards_done = 3;
  record.progress.shards_total = 4;
  record.progress.distance_calls = 987654321;
  record.progress.eta_seconds = 1.5;
  return record;
}

TEST(JobCodecTest, RecordRoundTripsAllFields) {
  const JobRecord record = FullRecord();
  Result<JobRecord> back = DecodeJobRecord(EncodeJobRecord(record));
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->id, record.id);
  EXPECT_EQ(back->state, record.state);
  EXPECT_EQ(back->attempts, record.attempts);
  EXPECT_EQ(back->spec.name, record.spec.name);
  EXPECT_EQ(back->spec.tenant, record.spec.tenant);
  EXPECT_EQ(back->spec.input_store, record.spec.input_store);
  EXPECT_EQ(back->spec.output_csv, record.spec.output_csv);
  EXPECT_EQ(back->spec.assign_k, record.spec.assign_k);
  EXPECT_EQ(back->spec.assign_delta, record.spec.assign_delta);
  EXPECT_EQ(back->spec.shards, record.spec.shards);
  EXPECT_EQ(back->spec.overlap_margin, record.spec.overlap_margin);
  EXPECT_EQ(back->spec.deadline_ms, record.spec.deadline_ms);
  EXPECT_EQ(back->spec.max_distance_computations,
            record.spec.max_distance_computations);
  EXPECT_EQ(back->spec.allow_partial, record.spec.allow_partial);
  EXPECT_EQ(back->spec.seed, record.spec.seed);
  EXPECT_EQ(back->outcome.degraded, record.outcome.degraded);
  EXPECT_EQ(back->outcome.degraded_reason, record.outcome.degraded_reason);
  EXPECT_EQ(back->outcome.verified, record.outcome.verified);
  EXPECT_EQ(back->outcome.published, record.outcome.published);
  EXPECT_EQ(back->outcome.suppressed, record.outcome.suppressed);
  EXPECT_EQ(back->outcome.clusters, record.outcome.clusters);
  EXPECT_EQ(back->outcome.total_distortion, record.outcome.total_distortion);
  EXPECT_EQ(back->outcome.resumed_shards, record.outcome.resumed_shards);
  EXPECT_EQ(back->outcome.error, record.outcome.error);
  EXPECT_EQ(back->trace_id, record.trace_id);
  EXPECT_EQ(back->progress.shards_done, record.progress.shards_done);
  EXPECT_EQ(back->progress.shards_total, record.progress.shards_total);
  EXPECT_EQ(back->progress.distance_calls, record.progress.distance_calls);
  EXPECT_EQ(back->progress.eta_seconds, record.progress.eta_seconds);
  // The codec is deterministic: encode(decode(encode(r))) == encode(r).
  EXPECT_EQ(EncodeJobRecord(*back), EncodeJobRecord(record));
}

TEST(JobCodecTest, DecodeRejectsGarbageAsDataLoss) {
  // Inside the ledger the payload already passed the envelope CRC, so a
  // record that does not parse is corruption, not a transient error.
  Result<JobRecord> r = DecodeJobRecord("not a record at all");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kDataLoss);
  EXPECT_FALSE(DecodeJobRecord("state done\nattempts 1\n").ok())
      << "a record without an id must not decode";
}

TEST(JobCodecTest, SpecRoundTripsThroughRequestBody) {
  const JobSpec spec = FullRecord().spec;
  Result<JobSpec> back = DecodeJobSpec(EncodeJobSpec(spec));
  ASSERT_TRUE(back.ok()) << back.status();
  EXPECT_EQ(back->name, spec.name);
  EXPECT_EQ(back->tenant, spec.tenant);
  EXPECT_EQ(back->input_store, spec.input_store);
  EXPECT_EQ(back->shards, spec.shards);
  EXPECT_EQ(back->allow_partial, spec.allow_partial);
}

// ---------------------------------------------------------------------------
// Spec validation: the admission gate for client-controlled fields.
// ---------------------------------------------------------------------------

JobSpec MinimalValidSpec() {
  JobSpec spec;
  spec.name = "job-1";
  spec.input_store = "/data/in.wst";
  return spec;
}

TEST(JobCodecTest, ValidateAcceptsMinimalSpec) {
  EXPECT_TRUE(ValidateJobSpec(MinimalValidSpec()).ok());
}

TEST(JobCodecTest, ValidateRejectsBadFields) {
  auto expect_invalid = [](JobSpec spec, const char* what) {
    const Status s = ValidateJobSpec(spec);
    ASSERT_FALSE(s.ok()) << what;
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument) << what;
  };
  JobSpec spec = MinimalValidSpec();
  spec.name = "";
  expect_invalid(spec, "empty name");
  spec = MinimalValidSpec();
  spec.name = "has space";
  expect_invalid(spec, "name charset");
  spec = MinimalValidSpec();
  spec.name = "sl/ash";
  expect_invalid(spec, "name with path separator");
  spec = MinimalValidSpec();
  spec.name.assign(200, 'a');
  expect_invalid(spec, "overlong name");
  spec = MinimalValidSpec();
  spec.input_store = "";
  expect_invalid(spec, "missing input store");
  spec = MinimalValidSpec();
  spec.assign_k = 1;
  expect_invalid(spec, "k == 1 is not a privacy requirement");
  spec = MinimalValidSpec();
  spec.assign_k = -3;
  expect_invalid(spec, "negative k");
  spec = MinimalValidSpec();
  spec.assign_delta = -1.0;
  expect_invalid(spec, "negative delta");
  spec = MinimalValidSpec();
  spec.shards = 0;
  expect_invalid(spec, "zero shards");
  spec = MinimalValidSpec();
  spec.shards = 100000;
  expect_invalid(spec, "absurd shard count");
  spec = MinimalValidSpec();
  spec.deadline_ms = -5;
  expect_invalid(spec, "negative deadline");
}

// ---------------------------------------------------------------------------
// The durable ledger itself.
// ---------------------------------------------------------------------------

class JobLedgerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::path(::testing::TempDir()) /
           ("job_ledger_" + std::string(::testing::UnitTest::GetInstance()
                                            ->current_test_info()
                                            ->name()));
    std::filesystem::remove_all(dir_);
    FailpointRegistry::Instance().DisarmAll();
  }
  void TearDown() override {
    FailpointRegistry::Instance().DisarmAll();
    std::filesystem::remove_all(dir_);
  }

  std::string Dir() const { return dir_.string(); }

  std::filesystem::path dir_;
};

TEST_F(JobLedgerTest, AppendAssignsSequentialIdsAndPersists) {
  telemetry::Telemetry telemetry;
  Result<std::unique_ptr<JobLedger>> ledger = JobLedger::Open(Dir(),
                                                              &telemetry);
  ASSERT_TRUE(ledger.ok()) << ledger.status();
  EXPECT_TRUE((*ledger)->Records().empty());

  JobRecord a = FullRecord();
  a.spec.name = "a";
  JobRecord b = FullRecord();
  b.spec.name = "b";
  ASSERT_TRUE((*ledger)->Append(&a).ok());
  ASSERT_TRUE((*ledger)->Append(&b).ok());
  EXPECT_EQ(a.id, 1);
  EXPECT_EQ(b.id, 2);

  a.state = JobState::kDone;
  ASSERT_TRUE((*ledger)->Update(a).ok());

  // Reopen: both records come back exactly, in id order, and the id
  // allocator continues past them.
  Result<std::unique_ptr<JobLedger>> reopened = JobLedger::Open(Dir());
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  std::vector<JobRecord> records = (*reopened)->Records();
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(EncodeJobRecord(records[0]), EncodeJobRecord(a));
  EXPECT_EQ(EncodeJobRecord(records[1]), EncodeJobRecord(b));
  JobRecord c;
  c.spec = MinimalValidSpec();
  ASSERT_TRUE((*reopened)->Append(&c).ok());
  EXPECT_EQ(c.id, 3);
  EXPECT_EQ((*ledger)->dir(), Dir());
  EXPECT_EQ(telemetry.metrics().Snapshot().CounterValue(
                "server.ledger.appends"),
            2u);
}

TEST_F(JobLedgerTest, UpdateOfUnknownIdIsNotFound) {
  Result<std::unique_ptr<JobLedger>> ledger = JobLedger::Open(Dir());
  ASSERT_TRUE(ledger.ok()) << ledger.status();
  JobRecord ghost = FullRecord();
  ghost.id = 9;
  EXPECT_EQ((*ledger)->Update(ghost).code(), StatusCode::kNotFound);
}

TEST_F(JobLedgerTest, RepeatedUpdatesLeaveOneRecordPerJob) {
  // The rotating writer leaves `.prev` siblings; reopening must not read
  // them as extra jobs.
  {
    Result<std::unique_ptr<JobLedger>> ledger = JobLedger::Open(Dir());
    ASSERT_TRUE(ledger.ok()) << ledger.status();
    JobRecord record;
    record.spec = MinimalValidSpec();
    ASSERT_TRUE((*ledger)->Append(&record).ok());
    record.state = JobState::kRunning;
    record.attempts = 1;
    ASSERT_TRUE((*ledger)->Update(record).ok());
    record.state = JobState::kDone;
    ASSERT_TRUE((*ledger)->Update(record).ok());
  }
  Result<std::unique_ptr<JobLedger>> reopened = JobLedger::Open(Dir());
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  std::vector<JobRecord> records = (*reopened)->Records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].state, JobState::kDone);
}

TEST_F(JobLedgerTest, CorruptRecordIsSkippedAndCounted) {
  {
    Result<std::unique_ptr<JobLedger>> ledger = JobLedger::Open(Dir());
    ASSERT_TRUE(ledger.ok()) << ledger.status();
    JobRecord a;
    a.spec = MinimalValidSpec();
    a.spec.name = "keeper";
    JobRecord b;
    b.spec = MinimalValidSpec();
    b.spec.name = "victim";
    ASSERT_TRUE((*ledger)->Append(&a).ok());
    ASSERT_TRUE((*ledger)->Append(&b).ok());
  }
  // Smash job 2's snapshot (no .prev exists for a once-written record, so
  // the fallback cannot save it).
  {
    std::ofstream smash(dir_ / "job_00000002.jrec",
                        std::ios::binary | std::ios::trunc);
    smash << "garbage that is not a snapshot envelope";
  }
  telemetry::Telemetry telemetry;
  Result<std::unique_ptr<JobLedger>> reopened = JobLedger::Open(Dir(),
                                                                &telemetry);
  ASSERT_TRUE(reopened.ok()) << reopened.status();
  std::vector<JobRecord> records = (*reopened)->Records();
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].spec.name, "keeper");
  EXPECT_EQ((*reopened)->corrupt_records(), 1u);
  EXPECT_EQ(telemetry.metrics().Snapshot().CounterValue(
                "server.ledger.corrupt"),
            1u);
  // The corrupt id is never reused for new work: the allocator only counts
  // upward from the largest id ever seen on disk.
  JobRecord fresh;
  fresh.spec = MinimalValidSpec();
  ASSERT_TRUE((*reopened)->Append(&fresh).ok());
  EXPECT_EQ(fresh.id, 3);
}

TEST_F(JobLedgerTest, OpenSweepsStaleTmpArtifacts) {
  std::filesystem::create_directories(dir_);
  {
    std::ofstream orphan(dir_ / "job_00000001.jrec.tmp", std::ios::binary);
    orphan << "torn write";
  }
  telemetry::Telemetry telemetry;
  Result<std::unique_ptr<JobLedger>> ledger = JobLedger::Open(Dir(),
                                                              &telemetry);
  ASSERT_TRUE(ledger.ok()) << ledger.status();
  EXPECT_FALSE(std::filesystem::exists(dir_ / "job_00000001.jrec.tmp"));
  EXPECT_EQ(telemetry.metrics().Snapshot().CounterValue(
                "janitor.stale_removed"),
            1u);
}

TEST_F(JobLedgerTest, FailpointsCoverBothTransitions) {
  Result<std::unique_ptr<JobLedger>> ledger = JobLedger::Open(Dir());
  ASSERT_TRUE(ledger.ok()) << ledger.status();
  JobRecord record;
  record.spec = MinimalValidSpec();
  {
    ScopedFailpoint fp("server.ledger_append", Status::IoError("injected"));
    EXPECT_EQ((*ledger)->Append(&record).code(), StatusCode::kIoError);
  }
  ASSERT_TRUE((*ledger)->Append(&record).ok());
  {
    ScopedFailpoint fp("server.ledger_update", Status::IoError("injected"));
    EXPECT_EQ((*ledger)->Update(record).code(), StatusCode::kIoError);
  }
  EXPECT_TRUE((*ledger)->Update(record).ok());
}

}  // namespace
}  // namespace server
}  // namespace wcop
