#ifndef WCOP_SERVER_ENDPOINT_H_
#define WCOP_SERVER_ENDPOINT_H_

/// Route layer binding an HttpServer to an AnonymizationService:
///
///   GET  /healthz     liveness + admission state + queue occupancy
///   GET  /metrics     text dump of the telemetry registry (§ DESIGN.md
///                     "Observability"): counters, gauges, histograms
///   POST /jobs        JobSpec (key/value lines) -> 202 + JobRecord,
///                     429 on backpressure, 400 on validation failure,
///                     503 while shutting down
///   GET  /jobs/<id>   JobRecord, 404 when unknown
///   POST /shutdown    body "mode drain" or "mode now"; flips the flags
///                     the daemon's main loop polls
///
/// Status-to-HTTP mapping lives here (and its inverse in the client), so
/// the service itself never sees transport codes.

#include <atomic>
#include <memory>
#include <string>

#include "common/result.h"
#include "server/http.h"
#include "server/service.h"

namespace wcop {
namespace server {

class ServiceEndpoint {
 public:
  static Result<std::unique_ptr<ServiceEndpoint>> Attach(
      AnonymizationService* service, const HttpServer::Options& options);

  void Stop();

  bool shutdown_requested() const {
    return shutdown_requested_.load(std::memory_order_relaxed);
  }
  bool drain_requested() const {
    return drain_.load(std::memory_order_relaxed);
  }
  const std::string& socket_path() const { return http_->socket_path(); }

 private:
  ServiceEndpoint() = default;

  HttpResponse Route(const HttpRequest& request);

  AnonymizationService* service_ = nullptr;  // non-owning
  std::unique_ptr<HttpServer> http_;
  std::atomic<bool> shutdown_requested_{false};
  std::atomic<bool> drain_{false};
};

/// HTTP status for a non-OK service Status (the admission contract's
/// visible half: kResourceExhausted -> 429, kInvalidArgument -> 400, ...).
int HttpStatusForStatus(const Status& status);

/// Inverse mapping used by the client: rebuilds a Status from a non-2xx
/// response (the body carries the server-side Status string).
Status StatusForHttpResponse(const HttpResponse& response);

/// The /metrics text format: one "counter|gauge|histogram name ..." line
/// per metric. Exposed for tests.
std::string FormatMetrics(const telemetry::MetricsSnapshot& snapshot);

}  // namespace server
}  // namespace wcop

#endif  // WCOP_SERVER_ENDPOINT_H_
