# Empty compiler generated dependencies file for wcop_index.
# This may be replaced when dependencies are built.
