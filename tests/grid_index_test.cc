#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "index/grid_index.h"

namespace wcop {
namespace {

TEST(GridIndexTest, EmptyQueryReturnsNothing) {
  GridIndex grid(10.0);
  EXPECT_TRUE(grid.RangeQuery(0, 0, 100).empty());
  EXPECT_EQ(grid.size(), 0u);
}

TEST(GridIndexTest, FindsInsertedPoint) {
  GridIndex grid(10.0);
  grid.Insert(7, 5.0, 5.0);
  const auto hits = grid.RangeQuery(6.0, 5.0, 2.0);
  ASSERT_EQ(hits.size(), 1u);
  EXPECT_EQ(hits[0], 7u);
}

TEST(GridIndexTest, ExcludesPointsBeyondRadius) {
  GridIndex grid(10.0);
  grid.Insert(0, 0.0, 0.0);
  grid.Insert(1, 3.0, 4.0);   // distance 5
  grid.Insert(2, 30.0, 40.0); // distance 50
  const auto hits = grid.RangeQuery(0, 0, 5.0);
  EXPECT_EQ(hits.size(), 2u);  // inclusive boundary keeps index 1
  EXPECT_TRUE(std::find(hits.begin(), hits.end(), 2u) == hits.end());
}

TEST(GridIndexTest, WorksAcrossCellBoundariesAndNegativeCoords) {
  GridIndex grid(1.0);
  grid.Insert(0, -0.5, -0.5);
  grid.Insert(1, 0.5, 0.5);
  const auto hits = grid.RangeQuery(0.0, 0.0, 1.0);
  EXPECT_EQ(hits.size(), 2u);
}

TEST(GridIndexTest, MatchesBruteForceOnRandomData) {
  Rng rng(31);
  std::vector<std::pair<double, double>> points;
  GridIndex grid(25.0);
  for (size_t i = 0; i < 500; ++i) {
    const double x = rng.UniformReal(-300, 300);
    const double y = rng.UniformReal(-300, 300);
    points.emplace_back(x, y);
    grid.Insert(i, x, y);
  }
  for (int q = 0; q < 50; ++q) {
    const double qx = rng.UniformReal(-300, 300);
    const double qy = rng.UniformReal(-300, 300);
    const double r = rng.UniformReal(5, 120);
    std::vector<size_t> expected;
    for (size_t i = 0; i < points.size(); ++i) {
      const double dx = points[i].first - qx;
      const double dy = points[i].second - qy;
      if (std::sqrt(dx * dx + dy * dy) <= r) {
        expected.push_back(i);
      }
    }
    std::vector<size_t> got = grid.RangeQuery(qx, qy, r);
    std::sort(got.begin(), got.end());
    EXPECT_EQ(got, expected) << "query " << q;
  }
}

TEST(GridIndexTest, CandidateQueryIsSuperset) {
  Rng rng(77);
  GridIndex grid(10.0);
  std::vector<std::pair<double, double>> points;
  for (size_t i = 0; i < 200; ++i) {
    const double x = rng.UniformReal(-100, 100);
    const double y = rng.UniformReal(-100, 100);
    points.emplace_back(x, y);
    grid.Insert(i, x, y);
  }
  for (int q = 0; q < 20; ++q) {
    const double qx = rng.UniformReal(-100, 100);
    const double qy = rng.UniformReal(-100, 100);
    const double r = rng.UniformReal(1, 40);
    std::vector<size_t> exact = grid.RangeQuery(qx, qy, r);
    std::vector<size_t> candidates;
    grid.CandidateQuery(qx, qy, r, &candidates);
    std::sort(exact.begin(), exact.end());
    std::sort(candidates.begin(), candidates.end());
    EXPECT_TRUE(std::includes(candidates.begin(), candidates.end(),
                              exact.begin(), exact.end()));
  }
}

TEST(GridIndexTest, DuplicateLocationsAllReturned) {
  GridIndex grid(5.0);
  grid.Insert(1, 2.0, 2.0);
  grid.Insert(2, 2.0, 2.0);
  grid.Insert(3, 2.0, 2.0);
  EXPECT_EQ(grid.RangeQuery(2.0, 2.0, 0.1).size(), 3u);
}

TEST(GridIndexTest, CreateValidatesCellSize) {
  Result<GridIndex> ok = GridIndex::Create(25.0);
  ASSERT_TRUE(ok.ok()) << ok.status();
  EXPECT_EQ(ok->cell_size(), 25.0);

  for (double bad : {0.0, -3.0, std::nan(""),
                     std::numeric_limits<double>::infinity(),
                     -std::numeric_limits<double>::infinity()}) {
    Result<GridIndex> r = GridIndex::Create(bad);
    ASSERT_FALSE(r.ok()) << "cell_size=" << bad;
    EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(GridIndexTest, DirectConstructionClampsDegenerateCellSize) {
  // The legacy constructor no longer asserts; it clamps to a usable cell so
  // pre-Create() call sites keep working.
  GridIndex nan_grid(std::nan(""));
  EXPECT_GT(nan_grid.cell_size(), 0.0);
  GridIndex zero_grid(0.0);
  EXPECT_GT(zero_grid.cell_size(), 0.0);
  zero_grid.Insert(1, 2.0, 2.0);
  EXPECT_EQ(zero_grid.RangeQuery(2.0, 2.0, 0.5).size(), 1u);
}

}  // namespace
}  // namespace wcop
