#ifndef WCOP_TRAJ_IO_H_
#define WCOP_TRAJ_IO_H_

#include <string>

#include "common/result.h"
#include "common/retry.h"
#include "common/run_context.h"
#include "common/telemetry.h"
#include "traj/dataset.h"

namespace wcop {

/// Flat-file dataset exchange format used by the examples and the benchmark
/// harness (one point per line):
///
///   traj_id,object_id,parent_id,k,delta,x,y,t
///
/// The header line is written on export and tolerated on import.

/// Writes the dataset to `path`; overwrites any existing file.
Status WriteDatasetCsv(const Dataset& dataset, const std::string& path);

/// Reads a dataset previously written by WriteDatasetCsv. Points belonging
/// to the same traj_id must be contiguous and time-ordered. An optional
/// RunContext bounds the read (deadline / cancellation, polled every few
/// thousand lines). An optional telemetry sink records `parse.csv_rows`
/// and a `parse/csv` span.
Result<Dataset> ReadDatasetCsv(const std::string& path,
                               const RunContext* run_context = nullptr,
                               telemetry::Telemetry* telemetry = nullptr);

/// ReadDatasetCsv under a RetryPolicy: transient I/O failures (kIoError —
/// NFS blips, locked files) restart the whole read after a bounded
/// exponential backoff; parse errors and context trips are never retried.
Result<Dataset> ReadDatasetCsvRetry(const std::string& path,
                                    const RetryPolicy& retry,
                                    const RunContext* run_context = nullptr,
                                    telemetry::Telemetry* telemetry = nullptr);

}  // namespace wcop

#endif  // WCOP_TRAJ_IO_H_
