#include "attack/candidate_source.h"

#include <algorithm>
#include <utility>

#include "geo/bounding_box.h"

namespace wcop {
namespace attack {

Result<size_t> CandidateSource::FindByKey(int64_t key) const {
  auto it = by_key_.find(key);
  if (it == by_key_.end()) {
    return Status::NotFound("no candidate with truth key " +
                            std::to_string(key));
  }
  return it->second;
}

DatasetCandidateSource::DatasetCandidateSource(const Dataset& dataset)
    : dataset_(&dataset) {
  entries_.reserve(dataset.size());
  for (size_t i = 0; i < dataset.size(); ++i) {
    const Trajectory& t = dataset[i];
    store::StoreEntry e;
    e.id = t.id();
    e.num_points = t.size();
    e.k = t.requirement().k;
    e.delta = t.requirement().delta;
    const BoundingBox box = t.Bounds();
    if (!box.empty()) {
      e.min_x = box.min_x();
      e.min_y = box.min_y();
      e.max_x = box.max_x();
      e.max_y = box.max_y();
    }
    e.t_min = t.StartTime();
    e.t_max = t.EndTime();
    if (by_key_.find(e.id) == by_key_.end()) {
      by_key_.emplace(e.id, i);
    }
    entries_.push_back(e);
  }
}

Result<Trajectory> DatasetCandidateSource::Read(size_t i) const {
  if (i >= dataset_->size()) {
    return Status::InvalidArgument("candidate index out of range");
  }
  return (*dataset_)[i];
}

Result<StoreCandidateSource> StoreCandidateSource::Open(
    const std::string& path, TruthKey truth_key, const RunContext* context) {
  WCOP_ASSIGN_OR_RETURN(store::TrajectoryStoreReader reader,
                        store::TrajectoryStoreReader::Open(path));
  StoreCandidateSource source;
  source.reader_ = std::make_unique<store::TrajectoryStoreReader>(
      std::move(reader));
  const size_t n = source.reader_->size();
  source.keys_.reserve(n);
  if (truth_key == TruthKey::kId) {
    for (size_t i = 0; i < n; ++i) {
      source.keys_.push_back(source.reader_->index()[i].id);
    }
  } else {
    // Window stores: the truth key is the fragment's parent (source)
    // trajectory, recorded only in the block payload — one sequential
    // CRC-checked pass, retaining a single int64 per entry. Fragments cut
    // from nothing (parent_id == kNoParent) key on their own id.
    for (size_t i = 0; i < n; ++i) {
      if (i % 512 == 0) {
        WCOP_RETURN_IF_ERROR(CheckRunContext(context));
      }
      WCOP_ASSIGN_OR_RETURN(Trajectory t, source.reader_->Read(i));
      source.keys_.push_back(t.parent_id() == Trajectory::kNoParent
                                 ? t.id()
                                 : t.parent_id());
    }
  }
  for (size_t i = 0; i < n; ++i) {
    if (source.by_key_.find(source.keys_[i]) == source.by_key_.end()) {
      source.by_key_.emplace(source.keys_[i], i);
    }
  }
  return source;
}

double PointToEntryDistance(const store::StoreEntry& e, const Point& p) {
  const double dx = std::max({e.min_x - p.x, 0.0, p.x - e.max_x});
  const double dy = std::max({e.min_y - p.y, 0.0, p.y - e.max_y});
  return std::sqrt(dx * dx + dy * dy);
}

}  // namespace attack
}  // namespace wcop
