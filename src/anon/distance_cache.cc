#include "anon/distance_cache.h"

#include <algorithm>

#include "distance/edr_kernel.h"

namespace wcop {

namespace {

/// Below this length the envelope sweep costs about as much as the DP it
/// tries to avoid; shorter pairs go straight to the kernel.
constexpr uint32_t kEnvelopeMinLen = 4;

}  // namespace

ShardedPairDistanceCache::ShardedPairDistanceCache(
    const Dataset& dataset, const DistanceConfig& config,
    const RunContext* context, telemetry::Telemetry* telemetry,
    size_t expected_pairs)
    : dataset_(dataset), config_(config), context_(context),
      n_(dataset.size()) {
  if (telemetry != nullptr) {
    // Resolve the counters once; the per-lookup path then pays one atomic
    // add per event — cache hits touch nothing budget-related, matching
    // the RunContext accounting exactly.
    distance_calls_ =
        telemetry->metrics().GetCounter(DistanceCallCounterName(config));
    cache_hits_ = telemetry->metrics().GetCounter("distance.cache_hits");
    early_abandoned_ =
        telemetry->metrics().GetCounter("distance.early_abandoned");
    lb_length_ = telemetry->metrics().GetCounter("distance.lb.length_pruned");
    lb_separation_ =
        telemetry->metrics().GetCounter("distance.lb.separation_pruned");
    lb_envelope_ =
        telemetry->metrics().GetCounter("distance.lb.envelope_pruned");
    lb_band_ = telemetry->metrics().GetCounter("distance.lb.band_pruned");
  }
  cascade_ = config.cascade && config.kind == DistanceConfig::Kind::kEdr &&
             config.edr_scale > 0.0;
  if (cascade_) {
    profiles_.reserve(n_);
    for (const Trajectory& t : dataset.trajectories()) {
      profiles_.push_back(EdrBoundsProfile::Of(t));
    }
  }
  const size_t per_shard = expected_pairs / kShards + 1;
  for (Shard& shard : shards_) {
    shard.map.reserve(per_shard);
  }
}

uint32_t ShardedPairDistanceCache::BandFor(double cutoff,
                                           uint32_t maxlen) const {
  if (!(cutoff < config_.edr_scale)) {
    return maxlen;  // the cutoff admits any distance: full-width evaluation
  }
  // Floor estimate, then fix up with the exact ToScaled comparisons the
  // verdicts use so float rounding can never under-size the band.
  const double estimate =
      cutoff * static_cast<double>(maxlen) / config_.edr_scale;
  uint32_t band = estimate > 0.0
                      ? static_cast<uint32_t>(std::min(
                            estimate, static_cast<double>(maxlen)))
                      : 0u;
  while (band > 0 && ToScaled(band, maxlen) > cutoff) {
    --band;
  }
  while (band < maxlen && ToScaled(band + 1, maxlen) <= cutoff) {
    ++band;
  }
  return band;
}

double ShardedPairDistanceCache::StoreExact(Shard& shard, uint64_t key,
                                            double value) {
  bool winner = false;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto [it, inserted] = shard.map.try_emplace(key, Entry{value, false});
    if (inserted) {
      winner = true;
    } else if (it->second.is_bound) {
      it->second = Entry{value, false};  // upgrade a lower bound
      winner = true;
    } else {
      value = it->second.value;  // lost the race to an exact value
    }
  }
  if (winner) {
    if (context_ != nullptr) {
      context_->ChargeDistance();
    }
    telemetry::CounterAdd(distance_calls_);
    computed_.fetch_add(1, std::memory_order_relaxed);
  } else {
    // Under serial execution this call would have been the cache hit.
    telemetry::CounterAdd(cache_hits_);
  }
  return value;
}

double ShardedPairDistanceCache::StoreAnalyticExact(
    Shard& shard, uint64_t key, double value,
    telemetry::Counter* rung_counter) {
  bool winner = false;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto [it, inserted] = shard.map.try_emplace(key, Entry{value, false});
    if (inserted) {
      winner = true;
    } else if (it->second.is_bound) {
      it->second = Entry{value, false};
      winner = true;
    } else {
      value = it->second.value;
    }
  }
  if (winner) {
    // The certificate *is* the distance; no DP ran, so neither the budget
    // nor distance.calls.* moves. The lookup still counts as an early
    // abandon of the exact DP — distance.early_abandoned totals every
    // cascade resolution, with distance.lb.* as the per-rung breakdown.
    telemetry::CounterAdd(early_abandoned_);
    telemetry::CounterAdd(rung_counter);
    abandoned_.fetch_add(1, std::memory_order_relaxed);
    analytic_.fetch_add(1, std::memory_order_relaxed);
  } else {
    telemetry::CounterAdd(cache_hits_);
  }
  return value;
}

double ShardedPairDistanceCache::StoreBound(Shard& shard, uint64_t key,
                                            double value,
                                            telemetry::Counter* rung_counter) {
  telemetry::CounterAdd(early_abandoned_);
  telemetry::CounterAdd(rung_counter);
  abandoned_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(shard.mu);
  auto [it, inserted] = shard.map.try_emplace(key, Entry{value, true});
  if (!inserted) {
    if (!it->second.is_bound) {
      return it->second.value;  // a racing exact insert wins over our bound
    }
    // Keep the tighter of two certified bounds (within one scan all racers
    // share a cutoff, so the stored value stays schedule-independent).
    it->second.value = std::max(it->second.value, value);
  }
  return value;
}

void ShardedPairDistanceCache::CountBoundPrune(BoundRung rung) {
  if (rung == BoundRung::kCached) {
    // The decision was made by a previously stored (and already counted)
    // bound — the same event a cutoff lookup served from the cache counts.
    telemetry::CounterAdd(cache_hits_);
    return;
  }
  telemetry::CounterAdd(early_abandoned_);
  abandoned_.fetch_add(1, std::memory_order_relaxed);
  switch (rung) {
    case BoundRung::kLength:
      telemetry::CounterAdd(lb_length_);
      break;
    case BoundRung::kSeparation:
      telemetry::CounterAdd(lb_separation_);
      break;
    case BoundRung::kEnvelope:
      telemetry::CounterAdd(lb_envelope_);
      break;
    case BoundRung::kCached:
      break;
  }
}

double ShardedPairDistanceCache::Get(size_t i, size_t j) {
  if (i == j) {
    return 0.0;
  }
  const uint64_t key = KeyOf(i, j);
  Shard& shard = ShardOf(key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end() && !it->second.is_bound) {
      telemetry::CounterAdd(cache_hits_);
      return it->second.value;
    }
  }
  if (cascade_) {
    const EdrBoundsProfile& pa = profiles_[i];
    const EdrBoundsProfile& pb = profiles_[j];
    const uint32_t maxlen = std::max(pa.length, pb.length);
    if (maxlen > 0) {
      // Analytic certificates short-circuit even an exact request: when no
      // point pair can match, the distance is max length — exactly what
      // the DP would return.
      if (EdrSeparated(pa, pb, config_.tolerance)) {
        return StoreAnalyticExact(shard, key, ToScaled(maxlen, maxlen),
                                  lb_separation_);
      }
      if (maxlen >= kEnvelopeMinLen) {
        const EdrEnvelopeBound env = EdrEnvelopeLowerBound(
            dataset_[i], pa, dataset_[j], pb, config_.tolerance);
        if (env.exact) {
          return StoreAnalyticExact(shard, key, ToScaled(env.bound, maxlen),
                                    lb_envelope_);
        }
      }
    }
  }
  const double d = ClusterDistance(dataset_[i], dataset_[j], config_);
  return StoreExact(shard, key, d);
}

double ShardedPairDistanceCache::GetWithCutoff(size_t i, size_t j,
                                               double cutoff) {
  if (i == j) {
    return 0.0;
  }
  const uint64_t key = KeyOf(i, j);
  Shard& shard = ShardOf(key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end() &&
        (!it->second.is_bound || it->second.value > cutoff)) {
      telemetry::CounterAdd(cache_hits_);
      return it->second.value;
    }
  }
  if (!cascade_) {
    // Legacy path (also kSynchronizedEuclidean): length bound only.
    bool was_abandoned = false;
    const double d = ClusterDistanceWithCutoff(
        dataset_[i], dataset_[j], config_, cutoff, &was_abandoned);
    if (!was_abandoned) {
      return StoreExact(shard, key, d);
    }
    return StoreBound(shard, key, d, lb_length_);
  }
  const EdrBoundsProfile& pa = profiles_[i];
  const EdrBoundsProfile& pb = profiles_[j];
  const uint32_t maxlen = std::max(pa.length, pb.length);
  if (maxlen == 0) {
    return StoreExact(shard, key, 0.0);  // two empty trajectories
  }
  // Rung 1: length bound, O(1).
  const double length_bound = ToScaled(EdrLengthLowerBound(pa, pb), maxlen);
  if (length_bound > cutoff) {
    return StoreBound(shard, key, length_bound, lb_length_);
  }
  // Rung 2: separation certificate, O(1) — an analytic *exact*.
  if (EdrSeparated(pa, pb, config_.tolerance)) {
    return StoreAnalyticExact(shard, key, ToScaled(maxlen, maxlen),
                              lb_separation_);
  }
  // Rung 3: envelope bound, O(n+m).
  if (maxlen >= kEnvelopeMinLen) {
    const EdrEnvelopeBound env = EdrEnvelopeLowerBound(
        dataset_[i], pa, dataset_[j], pb, config_.tolerance);
    if (env.exact) {
      return StoreAnalyticExact(shard, key, ToScaled(env.bound, maxlen),
                                lb_envelope_);
    }
    const double envelope_bound = ToScaled(env.bound, maxlen);
    if (envelope_bound > cutoff) {
      return StoreBound(shard, key, envelope_bound, lb_envelope_);
    }
  }
  // Refine: DP kernel, banded to the width the cutoff still permits.
  const uint32_t band = BandFor(cutoff, maxlen);
  const EdrKernelResult r =
      EdrOps(dataset_[i], dataset_[j], config_.tolerance, band);
  if (r.exact) {
    return StoreExact(shard, key, ToScaled(r.ops, maxlen));
  }
  return StoreBound(shard, key, ToScaled(r.ops, maxlen), lb_band_);
}

ShardedPairDistanceCache::ProbeResult ShardedPairDistanceCache::CheapProbe(
    size_t i, size_t j) {
  ProbeResult result;
  if (i == j) {
    result.value = 0.0;
    result.exact = true;
    result.rung = BoundRung::kCached;
    return result;
  }
  const uint64_t key = KeyOf(i, j);
  Shard& shard = ShardOf(key);
  double floor = 0.0;
  bool have_cached_bound = false;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end()) {
      if (!it->second.is_bound) {
        telemetry::CounterAdd(cache_hits_);
        result.value = it->second.value;
        result.exact = true;
        result.rung = BoundRung::kCached;
        return result;
      }
      floor = it->second.value;
      have_cached_bound = true;
    }
  }
  const EdrBoundsProfile& pa = profiles_[i];
  const EdrBoundsProfile& pb = profiles_[j];
  const uint32_t maxlen = std::max(pa.length, pb.length);
  if (maxlen == 0) {
    result.value = 0.0;
    result.exact = true;
    result.rung = BoundRung::kCached;
    return result;
  }
  result.rung = have_cached_bound ? BoundRung::kCached : BoundRung::kLength;
  result.value = floor;
  const double length_bound = ToScaled(EdrLengthLowerBound(pa, pb), maxlen);
  if (length_bound > result.value) {
    result.value = length_bound;
    result.rung = BoundRung::kLength;
  }
  if (EdrSeparated(pa, pb, config_.tolerance)) {
    result.value = StoreAnalyticExact(shard, key, ToScaled(maxlen, maxlen),
                                      lb_separation_);
    result.exact = true;
    result.rung = BoundRung::kSeparation;
    return result;
  }
  if (maxlen >= kEnvelopeMinLen) {
    const EdrEnvelopeBound env = EdrEnvelopeLowerBound(
        dataset_[i], pa, dataset_[j], pb, config_.tolerance);
    if (env.exact) {
      result.value = StoreAnalyticExact(shard, key, ToScaled(env.bound, maxlen),
                                        lb_envelope_);
      result.exact = true;
      result.rung = BoundRung::kEnvelope;
      return result;
    }
    const double envelope_bound = ToScaled(env.bound, maxlen);
    if (envelope_bound > result.value) {
      result.value = envelope_bound;
      result.rung = BoundRung::kEnvelope;
    }
  }
  return result;
}

}  // namespace wcop
