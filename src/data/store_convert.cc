#include "data/store_convert.h"

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <utility>

#include "geo/point.h"
#include "traj/trajectory.h"

namespace wcop {

namespace {

// Mirrors the WriteDatasetCsv row layout (traj/io.cc).
Status WriteCsvRows(std::ofstream* out, const Trajectory& t) {
  char line[256];
  for (const Point& p : t.points()) {
    std::snprintf(line, sizeof(line),
                  "%lld,%lld,%lld,%d,%.6f,%.6f,%.6f,%.6f\n",
                  static_cast<long long>(t.id()),
                  static_cast<long long>(t.object_id()),
                  static_cast<long long>(t.parent_id()), t.requirement().k,
                  t.requirement().delta, p.x, p.y, p.t);
    *out << line;
  }
  return Status::OK();
}

}  // namespace

Result<StoreConvertStats> ConvertCsvToStore(const std::string& csv_path,
                                            const std::string& store_path,
                                            const RunContext* context) {
  std::ifstream in(csv_path);
  if (!in) {
    return Status::IoError("cannot open for reading: " + csv_path);
  }
  WCOP_ASSIGN_OR_RETURN(store::TrajectoryStoreWriter writer,
                        store::TrajectoryStoreWriter::Create(store_path));
  StoreConvertStats stats;
  Trajectory current;
  bool have_current = false;
  std::string line;
  size_t line_no = 0;
  // The same row grammar as ReadDatasetCsv (traj/io.cc), but each
  // trajectory flushes to the store writer as soon as its rows end, so the
  // conversion holds exactly one trajectory in memory.
  auto flush = [&]() -> Status {
    if (!have_current) {
      return Status::OK();
    }
    stats.trajectories += 1;
    stats.points += current.size();
    WCOP_RETURN_IF_ERROR(writer.Append(current));
    have_current = false;
    return Status::OK();
  };
  while (std::getline(in, line)) {
    ++line_no;
    if (line_no % 4096 == 0) {
      WCOP_RETURN_IF_ERROR(CheckRunContext(context));
    }
    if (line.empty() || line.rfind("traj_id", 0) == 0) {
      continue;
    }
    std::istringstream ss(line);
    std::string cell;
    double fields[8];
    int n = 0;
    while (n < 8 && std::getline(ss, cell, ',')) {
      char* end = nullptr;
      fields[n] = std::strtod(cell.c_str(), &end);
      if (end == cell.c_str()) {
        return Status::ParseError(csv_path + ":" + std::to_string(line_no) +
                                  ": bad numeric cell '" + cell + "'");
      }
      ++n;
    }
    if (n != 8) {
      return Status::ParseError(csv_path + ":" + std::to_string(line_no) +
                                ": expected 8 cells, got " +
                                std::to_string(n));
    }
    const int64_t traj_id = static_cast<int64_t>(fields[0]);
    if (!have_current || current.id() != traj_id) {
      WCOP_RETURN_IF_ERROR(flush());
      current = Trajectory(traj_id, {});
      current.set_object_id(static_cast<int64_t>(fields[1]));
      current.set_parent_id(static_cast<int64_t>(fields[2]));
      current.set_requirement(
          Requirement{static_cast<int>(fields[3]), fields[4]});
      have_current = true;
    }
    current.AppendPoint(Point(fields[5], fields[6], fields[7]));
  }
  WCOP_RETURN_IF_ERROR(flush());
  if (stats.trajectories == 0) {
    return Status::InvalidArgument(csv_path + ": no trajectories");
  }
  WCOP_RETURN_IF_ERROR(writer.Finish());
  return stats;
}

Result<StoreConvertStats> ConvertStoreToCsv(const std::string& store_path,
                                            const std::string& csv_path,
                                            const RunContext* context) {
  WCOP_ASSIGN_OR_RETURN(store::TrajectoryStoreReader reader,
                        store::TrajectoryStoreReader::Open(store_path));
  std::ofstream out(csv_path);
  if (!out) {
    return Status::IoError("cannot open for writing: " + csv_path);
  }
  out << "traj_id,object_id,parent_id,k,delta,x,y,t\n";
  StoreConvertStats stats;
  for (size_t i = 0; i < reader.size(); ++i) {
    if (i % 256 == 0) {
      WCOP_RETURN_IF_ERROR(CheckRunContext(context));
    }
    WCOP_ASSIGN_OR_RETURN(Trajectory t, reader.Read(i));
    WCOP_RETURN_IF_ERROR(WriteCsvRows(&out, t));
    stats.trajectories += 1;
    stats.points += t.size();
  }
  if (!out) {
    return Status::IoError("write failed: " + csv_path);
  }
  return stats;
}

}  // namespace wcop
