#ifndef WCOP_DISTANCE_LCSS_H_
#define WCOP_DISTANCE_LCSS_H_

#include "distance/edr.h"
#include "traj/trajectory.h"

namespace wcop {

/// Longest Common SubSequence similarity between trajectories under the same
/// tolerance model as EDR. Provided as an auxiliary trajectory-similarity
/// measure (useful for sanity cross-checks in tests and for ablations against
/// the EDR-driven clustering; not part of the paper's headline pipeline).

/// Length of the longest tolerance-matched common subsequence.
/// O(|a|*|b|) time, O(min(|a|,|b|)) space.
size_t LcssLength(const Trajectory& a, const Trajectory& b,
                  const EdrTolerance& tolerance);

/// LCSS distance in [0, 1]: 1 - LCSS / min(|a|, |b|). Two empty
/// trajectories are at distance 0.
double LcssDistance(const Trajectory& a, const Trajectory& b,
                    const EdrTolerance& tolerance);

}  // namespace wcop

#endif  // WCOP_DISTANCE_LCSS_H_
