#include "segment/convoy.h"

#include <algorithm>
#include <limits>
#include <map>

#include "cluster/dbscan.h"
#include "common/failpoint.h"
#include "index/grid_index.h"
#include "traj/resample.h"

namespace wcop {

namespace {

/// One candidate coherent moving cluster being extended snapshot by
/// snapshot (the CMC algorithm's V set).
struct Candidate {
  std::set<int64_t> members;
  double start_time = 0.0;
  double end_time = 0.0;
  size_t snapshots = 0;
};

std::set<int64_t> Intersect(const std::set<int64_t>& a,
                            const std::set<int64_t>& b) {
  std::set<int64_t> out;
  std::set_intersection(a.begin(), a.end(), b.begin(), b.end(),
                        std::inserter(out, out.begin()));
  return out;
}

}  // namespace

Result<std::vector<Convoy>> DiscoverConvoys(const Dataset& dataset,
                                            const ConvoyOptions& options) {
  if (options.snapshot_interval <= 0.0) {
    return Status::InvalidArgument("snapshot_interval must be positive");
  }
  if (options.min_objects < 2) {
    return Status::InvalidArgument("min_objects must be at least 2");
  }
  WCOP_RETURN_IF_ERROR(dataset.Validate());

  telemetry::Telemetry* tel = options.telemetry;
  WCOP_TRACE_SPAN(tel, "segment/convoy");
  telemetry::Counter* snapshots_counter =
      tel != nullptr ? tel->metrics().GetCounter("convoy.snapshots") : nullptr;

  const std::vector<double> grid_times =
      UniformTimeGrid(dataset, options.snapshot_interval);
  std::vector<Convoy> convoys;
  std::vector<Candidate> candidates;

  auto close_candidate = [&](const Candidate& c) {
    if (c.snapshots >= options.min_duration_snapshots &&
        c.members.size() >= options.min_objects) {
      convoys.push_back(Convoy{c.members, c.start_time, c.end_time});
    }
  };

  for (double snapshot_time : grid_times) {
    WCOP_FAILPOINT("segment.convoy_snapshot");
    // Cooperative yield point: one check per snapshot (each snapshot runs
    // a full DBSCAN over the alive objects).
    WCOP_RETURN_IF_ERROR(CheckRunContext(options.run_context));
    telemetry::CounterAdd(snapshots_counter);
    // Gather trajectories alive at this snapshot and their positions.
    std::vector<int64_t> ids;
    std::vector<Point> positions;
    for (const Trajectory& t : dataset.trajectories()) {
      if (t.StartTime() <= snapshot_time && snapshot_time <= t.EndTime()) {
        ids.push_back(t.id());
        positions.push_back(t.PositionAt(snapshot_time));
      }
    }

    // Per-snapshot DBSCAN over the alive positions via a grid index.
    std::vector<std::set<int64_t>> snapshot_clusters;
    if (ids.size() >= options.min_objects) {
      GridIndex grid(std::max(options.eps, 1.0));
      grid.AttachTelemetry(tel);
      for (size_t i = 0; i < positions.size(); ++i) {
        grid.Insert(i, positions[i].x, positions[i].y);
      }
      auto neighbors = [&](size_t item) {
        return grid.RangeQuery(positions[item].x, positions[item].y,
                               options.eps);
      };
      const DbscanResult db =
          Dbscan(ids.size(), options.min_objects, neighbors);
      snapshot_clusters.resize(static_cast<size_t>(db.num_clusters));
      for (size_t i = 0; i < ids.size(); ++i) {
        if (db.labels[i] >= 0) {
          snapshot_clusters[static_cast<size_t>(db.labels[i])].insert(ids[i]);
        }
      }
    }

    // CMC extension step: each candidate either extends through one of the
    // current clusters (intersection still big enough) or is closed.
    std::vector<Candidate> next;
    std::vector<bool> cluster_consumed(snapshot_clusters.size(), false);
    for (const Candidate& cand : candidates) {
      bool extended = false;
      for (size_t c = 0; c < snapshot_clusters.size(); ++c) {
        std::set<int64_t> common = Intersect(cand.members, snapshot_clusters[c]);
        if (common.size() >= options.min_objects) {
          // When the member set shrinks, the larger group's co-movement ends
          // here: close it (so e.g. a trio that loses one member still
          // yields the trio convoy alongside the surviving pair's).
          if (common.size() < cand.members.size()) {
            close_candidate(cand);
          }
          Candidate grown;
          grown.members = std::move(common);
          grown.start_time = cand.start_time;
          grown.end_time = snapshot_time;
          grown.snapshots = cand.snapshots + 1;
          next.push_back(std::move(grown));
          cluster_consumed[c] = true;
          extended = true;
          break;
        }
      }
      if (!extended) {
        close_candidate(cand);
      }
    }
    // Clusters that did not extend any candidate start fresh candidates.
    for (size_t c = 0; c < snapshot_clusters.size(); ++c) {
      if (!cluster_consumed[c]) {
        Candidate fresh;
        fresh.members = snapshot_clusters[c];
        fresh.start_time = snapshot_time;
        fresh.end_time = snapshot_time;
        fresh.snapshots = 1;
        next.push_back(std::move(fresh));
      }
    }
    candidates = std::move(next);
  }
  for (const Candidate& cand : candidates) {
    close_candidate(cand);
  }

  // Drop convoys strictly contained in another convoy (same-or-subset
  // members within a covered interval) to keep output maximal.
  std::vector<Convoy> maximal;
  for (size_t i = 0; i < convoys.size(); ++i) {
    bool dominated = false;
    for (size_t j = 0; j < convoys.size() && !dominated; ++j) {
      if (i == j) {
        continue;
      }
      const bool subset = std::includes(
          convoys[j].members.begin(), convoys[j].members.end(),
          convoys[i].members.begin(), convoys[i].members.end());
      const bool covered = convoys[j].start_time <= convoys[i].start_time &&
                           convoys[i].end_time <= convoys[j].end_time;
      const bool strictly_smaller =
          convoys[j].members.size() > convoys[i].members.size() ||
          convoys[j].end_time - convoys[j].start_time >
              convoys[i].end_time - convoys[i].start_time;
      dominated = subset && covered && strictly_smaller;
    }
    if (!dominated) {
      maximal.push_back(convoys[i]);
    }
  }
  if (tel != nullptr) {
    telemetry::CounterAdd(tel->metrics().GetCounter("convoy.discovered"),
                          maximal.size());
  }
  return maximal;
}

Result<Dataset> ConvoySegmenter::Segment(const Dataset& dataset) {
  WCOP_ASSIGN_OR_RETURN(std::vector<Convoy> convoys,
                        DiscoverConvoys(dataset, options_));

  // For each trajectory, collect the time boundaries of the convoys it
  // belongs to, convert them to point indices, and cut there.
  std::map<int64_t, std::vector<double>> boundaries;
  for (const Convoy& convoy : convoys) {
    for (int64_t id : convoy.members) {
      boundaries[id].push_back(convoy.start_time);
      boundaries[id].push_back(convoy.end_time);
    }
  }

  std::vector<Trajectory> out;
  int64_t next_id = 0;
  for (const Trajectory& t : dataset.trajectories()) {
    std::vector<size_t> cuts;
    auto it = boundaries.find(t.id());
    if (it != boundaries.end()) {
      for (double boundary_time : it->second) {
        if (boundary_time <= t.StartTime() || boundary_time >= t.EndTime()) {
          continue;
        }
        // First point index at or after the boundary time.
        const auto& pts = t.points();
        const auto pos = std::lower_bound(
            pts.begin(), pts.end(), boundary_time,
            [](const Point& p, double value) { return p.t < value; });
        const size_t idx = static_cast<size_t>(pos - pts.begin());
        if (idx > 0 && idx < t.size()) {
          cuts.push_back(idx);
        }
      }
    }
    CutAtIndices(t, cuts, options_.min_sub_trajectory_points, &next_id, &out);
  }
  return Dataset(std::move(out));
}

}  // namespace wcop
