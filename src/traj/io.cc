#include "traj/io.h"

#include <cstdio>
#include <fstream>
#include <sstream>

#include "common/failpoint.h"

namespace wcop {

Status WriteDatasetCsv(const Dataset& dataset, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot open for writing: " + path);
  }
  out << "traj_id,object_id,parent_id,k,delta,x,y,t\n";
  char line[256];
  for (const Trajectory& t : dataset.trajectories()) {
    for (const Point& p : t.points()) {
      std::snprintf(line, sizeof(line),
                    "%lld,%lld,%lld,%d,%.6f,%.6f,%.6f,%.6f\n",
                    static_cast<long long>(t.id()),
                    static_cast<long long>(t.object_id()),
                    static_cast<long long>(t.parent_id()), t.requirement().k,
                    t.requirement().delta, p.x, p.y, p.t);
      out << line;
    }
  }
  if (!out) {
    return Status::IoError("write failed: " + path);
  }
  return Status::OK();
}

Result<Dataset> ReadDatasetCsv(const std::string& path,
                               const RunContext* run_context,
                               telemetry::Telemetry* telemetry) {
  WCOP_TRACE_SPAN(telemetry, "parse/csv");
  telemetry::Counter* csv_rows =
      telemetry != nullptr ? telemetry->metrics().GetCounter("parse.csv_rows")
                           : nullptr;
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open for reading: " + path);
  }
  Dataset dataset;
  Trajectory current;
  bool have_current = false;
  std::string line;
  size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    WCOP_FAILPOINT("csv.read_line");
    // Strided context poll: a line is microseconds of work.
    if (line_no % 4096 == 0) {
      WCOP_RETURN_IF_ERROR(CheckRunContext(run_context));
    }
    if (line.empty() || line.rfind("traj_id", 0) == 0) {
      continue;  // Skip blank lines and the header.
    }
    telemetry::CounterAdd(csv_rows);
    std::istringstream ss(line);
    std::string cell;
    double fields[8];
    int n = 0;
    while (n < 8 && std::getline(ss, cell, ',')) {
      char* end = nullptr;
      fields[n] = std::strtod(cell.c_str(), &end);
      if (end == cell.c_str()) {
        return Status::ParseError(path + ":" + std::to_string(line_no) +
                                  ": bad numeric cell '" + cell + "'");
      }
      ++n;
    }
    if (n != 8) {
      return Status::ParseError(path + ":" + std::to_string(line_no) +
                                ": expected 8 cells, got " +
                                std::to_string(n));
    }
    const int64_t traj_id = static_cast<int64_t>(fields[0]);
    if (!have_current || current.id() != traj_id) {
      if (have_current) {
        dataset.Add(std::move(current));
      }
      current = Trajectory(traj_id, {});
      current.set_object_id(static_cast<int64_t>(fields[1]));
      current.set_parent_id(static_cast<int64_t>(fields[2]));
      current.set_requirement(
          Requirement{static_cast<int>(fields[3]), fields[4]});
      have_current = true;
    }
    current.AppendPoint(Point(fields[5], fields[6], fields[7]));
  }
  if (have_current) {
    dataset.Add(std::move(current));
  }
  WCOP_RETURN_IF_ERROR(dataset.Validate());
  return dataset;
}

Result<Dataset> ReadDatasetCsvRetry(const std::string& path,
                                    const RetryPolicy& retry,
                                    const RunContext* run_context,
                                    telemetry::Telemetry* telemetry) {
  return RetryResultCall<Dataset>(retry, [&]() {
    return ReadDatasetCsv(path, run_context, telemetry);
  });
}

}  // namespace wcop
