#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>

#include "data/geolife_parser.h"

namespace wcop {
namespace {

namespace fs = std::filesystem;

const char kPltHeader[] =
    "Geolife trajectory\n"
    "WGS 84\n"
    "Altitude is in Feet\n"
    "Reserved 3\n"
    "0,2,255,My Track,0,0,2182,255\n"
    "0\n";

class GeoLifeParserTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() / "wcop_geolife_test";
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  std::string WritePlt(const std::string& user, const std::string& name,
                       const std::string& body, bool with_header = true) {
    const fs::path dir = root_ / user / "Trajectory";
    fs::create_directories(dir);
    const fs::path path = dir / name;
    std::ofstream out(path);
    if (with_header) {
      out << kPltHeader;
    }
    out << body;
    return path.string();
  }

  fs::path root_;
};

TEST_F(GeoLifeParserTest, ParsesWellFormedFile) {
  const std::string path = WritePlt(
      "000", "a.plt",
      "39.906631,116.385564,0,492,39745.1717361111,2008-10-24,04:07:18\n"
      "39.906703,116.385624,0,492,39745.1717939815,2008-10-24,04:07:23\n"
      "39.906840,116.385684,0,492,39745.1718518519,2008-10-24,04:07:28\n");
  const LocalProjection proj(39.9057, 116.3913);
  Result<Trajectory> t = ParsePltFile(path, proj);
  ASSERT_TRUE(t.ok()) << t.status();
  ASSERT_EQ(t->size(), 3u);
  EXPECT_TRUE(t->Validate().ok());
  // Timestamps are ~5 s apart (the .plt day fractions above).
  EXPECT_NEAR(t->points()[1].t - t->points()[0].t, 5.0, 0.1);
  // Position is within a few km of the anchor.
  EXPECT_LT(std::abs(t->points()[0].x), 5000.0);
  EXPECT_LT(std::abs(t->points()[0].y), 5000.0);
}

TEST_F(GeoLifeParserTest, SkipsOutOfOrderFixes) {
  const std::string path = WritePlt(
      "000", "a.plt",
      "39.9066,116.3855,0,492,39745.20,2008-10-24,04:48:00\n"
      "39.9067,116.3856,0,492,39745.10,2008-10-24,02:24:00\n"  // goes back
      "39.9068,116.3857,0,492,39745.30,2008-10-24,07:12:00\n");
  const LocalProjection proj(39.9057, 116.3913);
  Result<Trajectory> t = ParsePltFile(path, proj);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->size(), 2u);
}

TEST_F(GeoLifeParserTest, FiltersFarOutliers) {
  GeoLifeOptions options;
  options.max_offset_metres = 100000.0;
  const std::string path = WritePlt(
      "000", "a.plt",
      "39.9066,116.3855,0,492,39745.10,2008-10-24,02:24:00\n"
      "0.0,0.0,0,0,39745.20,2008-10-24,04:48:00\n"  // (0,0) — bogus fix
      "39.9068,116.3857,0,492,39745.30,2008-10-24,07:12:00\n");
  const LocalProjection proj(39.9057, 116.3913);
  Result<Trajectory> t = ParsePltFile(path, proj, options);
  ASSERT_TRUE(t.ok());
  EXPECT_EQ(t->size(), 2u);
}

TEST_F(GeoLifeParserTest, TooShortIsNotFound) {
  const std::string path = WritePlt(
      "000", "a.plt",
      "39.9066,116.3855,0,492,39745.10,2008-10-24,02:24:00\n");
  const LocalProjection proj(39.9057, 116.3913);
  EXPECT_EQ(ParsePltFile(path, proj).status().code(), StatusCode::kNotFound);
}

TEST_F(GeoLifeParserTest, MissingFileIsIoError) {
  const LocalProjection proj(39.9057, 116.3913);
  EXPECT_EQ(ParsePltFile("/no/such/file.plt", proj).status().code(),
            StatusCode::kIoError);
}

TEST_F(GeoLifeParserTest, DirectoryWalkAssignsIdsAndUsers) {
  const char* body =
      "39.9066,116.3855,0,492,39745.10,2008-10-24,02:24:00\n"
      "39.9067,116.3856,0,492,39745.20,2008-10-24,04:48:00\n";
  WritePlt("000", "a.plt", body);
  WritePlt("000", "b.plt", body);
  WritePlt("001", "c.plt", body);
  Result<Dataset> d = LoadGeoLifeDirectory(root_.string());
  ASSERT_TRUE(d.ok()) << d.status();
  ASSERT_EQ(d->size(), 3u);
  EXPECT_TRUE(d->Validate().ok());
  EXPECT_EQ((*d)[0].object_id(), (*d)[1].object_id());
  EXPECT_NE((*d)[0].object_id(), (*d)[2].object_id());
}

TEST_F(GeoLifeParserTest, MaxTrajectoriesCapsLoad) {
  const char* body =
      "39.9066,116.3855,0,492,39745.10,2008-10-24,02:24:00\n"
      "39.9067,116.3856,0,492,39745.20,2008-10-24,04:48:00\n";
  WritePlt("000", "a.plt", body);
  WritePlt("000", "b.plt", body);
  WritePlt("001", "c.plt", body);
  GeoLifeOptions options;
  options.max_trajectories = 2;
  Result<Dataset> d = LoadGeoLifeDirectory(root_.string(), options);
  ASSERT_TRUE(d.ok());
  EXPECT_EQ(d->size(), 2u);
}

TEST_F(GeoLifeParserTest, EmptyRootIsNotFound) {
  EXPECT_EQ(LoadGeoLifeDirectory(root_.string()).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(LoadGeoLifeDirectory("/no/such/dir").status().code(),
            StatusCode::kNotFound);
}

TEST_F(GeoLifeParserTest, PltWriterRoundTrips) {
  const LocalProjection proj(39.9057, 116.3913);
  std::vector<Point> points;
  for (int i = 0; i < 20; ++i) {
    points.emplace_back(i * 37.5, 1000.0 - i * 12.0, 1000.0 + i * 5.0);
  }
  Trajectory original(3, points);
  const std::string path = (root_ / "roundtrip.plt").string();
  ASSERT_TRUE(WritePltFile(original, proj, path).ok());

  GeoLifeOptions options;
  options.filter_outliers = false;
  Result<Trajectory> parsed = ParsePltFile(path, proj, options);
  ASSERT_TRUE(parsed.ok()) << parsed.status();
  ASSERT_EQ(parsed->size(), original.size());
  for (size_t i = 0; i < original.size(); ++i) {
    EXPECT_NEAR((*parsed)[i].x, original[i].x, 0.05);
    EXPECT_NEAR((*parsed)[i].y, original[i].y, 0.05);
    EXPECT_NEAR((*parsed)[i].t, original[i].t, 0.01);
  }
}

TEST_F(GeoLifeParserTest, DirectoryWriterRoundTrips) {
  const LocalProjection proj(39.9057, 116.3913);
  Dataset d;
  for (int i = 0; i < 3; ++i) {
    std::vector<Point> points;
    for (int j = 0; j < 5; ++j) {
      points.emplace_back(i * 100.0 + j * 10.0, i * 50.0, 100.0 + j * 5.0);
    }
    Trajectory t(i, points);
    t.set_object_id(i % 2);
    d.Add(t);
  }
  const std::string out_root = (root_ / "written").string();
  ASSERT_TRUE(WriteGeoLifeDirectory(d, proj, out_root).ok());
  Result<Dataset> loaded = LoadGeoLifeDirectory(out_root);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->size(), 3u);
  EXPECT_EQ(loaded->TotalPoints(), 15u);
  EXPECT_EQ(loaded->ComputeStats().num_objects, 2u);
}

TEST_F(GeoLifeParserTest, HeaderlessFileStillParses) {
  const std::string path = WritePlt(
      "000", "nohdr.plt",
      "39.9066,116.3855,0,492,39745.10,2008-10-24,02:24:00\n"
      "39.9067,116.3856,0,492,39745.20,2008-10-24,04:48:00\n",
      /*with_header=*/false);
  const LocalProjection proj(39.9057, 116.3913);
  Result<Trajectory> t = ParsePltFile(path, proj);
  ASSERT_TRUE(t.ok()) << t.status();
  EXPECT_EQ(t->size(), 2u);
}

}  // namespace
}  // namespace wcop
