#ifndef WCOP_RELATED_AWO_H_
#define WCOP_RELATED_AWO_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "geo/bounding_box.h"
#include "traj/dataset.h"

namespace wcop {

/// Always-Walk-with-Others-style generalization (Nergiz, Atzori & Saygin,
/// SPRINGL 2008) — the related-work baseline that publishes *anonymized
/// regions* instead of translated points.
///
/// Groups of k trajectories are formed around representatives (nearest
/// first); each group's movement is generalized into a time series of
/// bounding-box regions covering all members, and k fresh trajectories are
/// *reconstructed* by sampling one random point per region and connecting
/// them — so the published atoms never coincide with real recorded points.
struct AwoOptions {
  int k = 5;
  /// Common timeline granularity for the regions (seconds between region
  /// snapshots along the representative's lifetime).
  double region_interval = 120.0;
  /// Groups whose members do not overlap in time with the representative
  /// are impossible; leftovers beyond this fraction fail the run.
  double trash_fraction = 0.10;
  uint64_t seed = 7;
};

/// One generalized group: the region time series that was published.
struct AwoRegionSeries {
  std::vector<BoundingBox> regions;
  std::vector<double> times;
  std::vector<size_t> members;  ///< indices into the input dataset
};

struct AwoReport {
  size_t num_groups = 0;
  size_t trashed_trajectories = 0;
  double mean_region_diagonal = 0.0;  ///< generalization coarseness (m)
};

struct AwoResult {
  Dataset sanitized;  ///< k reconstructed trajectories per group, carrying
                      ///< the member ids (arbitrary assignment — the
                      ///< reconstruction deliberately unlinks identities)
  std::vector<int64_t> trashed_ids;
  std::vector<AwoRegionSeries> groups;
  AwoReport report;
};

Result<AwoResult> RunAwo(const Dataset& dataset, const AwoOptions& options = {});

}  // namespace wcop

#endif  // WCOP_RELATED_AWO_H_
