#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "anon/greedy_clustering.h"
#include "anon/wcop_ct.h"
#include "common/telemetry.h"
#include "test_util.h"

namespace wcop {
namespace {

using testing_util::MakeLineWithReq;
using testing_util::SmallSynthetic;

WcopOptions ResolvedFor(const Dataset& d) {
  return ResolveOptions(d, WcopOptions{});
}

TEST(GreedyClusteringTest, InvariantsOnSynthetic) {
  const Dataset d = SmallSynthetic(40, 50, /*k_max=*/5);
  const WcopOptions options = ResolvedFor(d);
  Result<ClusteringOutcome> out =
      GreedyClustering(d, /*trash_max=*/4, options);
  ASSERT_TRUE(out.ok()) << out.status();

  std::set<size_t> seen;
  for (const AnonymityCluster& c : out->clusters) {
    // Pivot is a member.
    EXPECT_NE(std::find(c.members.begin(), c.members.end(), c.pivot),
              c.members.end());
    int max_k = 0;
    double min_delta = 1e18;
    for (size_t m : c.members) {
      EXPECT_TRUE(seen.insert(m).second) << "trajectory in two clusters";
      max_k = std::max(max_k, d[m].requirement().k);
      min_delta = std::min(min_delta, d[m].requirement().delta);
    }
    // Cluster satisfies its own k (which covers every member's k_i).
    EXPECT_GE(c.members.size(), static_cast<size_t>(c.k));
    EXPECT_GE(c.k, max_k);
    EXPECT_DOUBLE_EQ(c.delta, min_delta);
  }
  for (size_t idx : out->trash) {
    EXPECT_TRUE(seen.insert(idx).second) << "trashed and clustered";
  }
  // Full coverage: every input trajectory is clustered or trashed.
  EXPECT_EQ(seen.size(), d.size());
  EXPECT_LE(out->trash.size(), 4u);
}

TEST(GreedyClusteringTest, DeterministicForSeed) {
  const Dataset d = SmallSynthetic(30, 40);
  WcopOptions options = ResolvedFor(d);
  options.seed = 99;
  const auto a = GreedyClustering(d, 3, options);
  const auto b = GreedyClustering(d, 3, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->clusters.size(), b->clusters.size());
  for (size_t i = 0; i < a->clusters.size(); ++i) {
    EXPECT_EQ(a->clusters[i].pivot, b->clusters[i].pivot);
    EXPECT_EQ(a->clusters[i].members, b->clusters[i].members);
  }
}

TEST(GreedyClusteringTest, UnsatisfiableKFails) {
  // k greater than the dataset size can never be satisfied.
  Dataset d;
  for (int i = 0; i < 5; ++i) {
    d.Add(MakeLineWithReq(i, i * 10.0, 0, 1, 0, 10, /*k=*/50, /*delta=*/100));
  }
  WcopOptions options = ResolvedFor(d);
  options.max_clustering_rounds = 4;
  Result<ClusteringOutcome> out = GreedyClustering(d, /*trash_max=*/0, options);
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kUnsatisfiable);
}

TEST(GreedyClusteringTest, UnsatisfiableToleratedViaTrash) {
  // Same dataset, but allowing everything to be trashed succeeds.
  Dataset d;
  for (int i = 0; i < 5; ++i) {
    d.Add(MakeLineWithReq(i, i * 10.0, 0, 1, 0, 10, /*k=*/50, /*delta=*/100));
  }
  Result<ClusteringOutcome> out =
      GreedyClustering(d, /*trash_max=*/5, ResolvedFor(d));
  ASSERT_TRUE(out.ok());
  EXPECT_EQ(out->trash.size(), 5u);
  EXPECT_TRUE(out->clusters.empty());
}

TEST(GreedyClusteringTest, TightRadiusRelaxesUntilSolved) {
  const Dataset d = SmallSynthetic(30, 40, /*k_max=*/3);
  WcopOptions options = ResolvedFor(d);
  options.radius_max = 1e-6;  // absurdly tight: forces relaxation rounds
  options.radius_growth = 4.0;
  Result<ClusteringOutcome> out = GreedyClustering(d, 3, options);
  ASSERT_TRUE(out.ok()) << out.status();
  EXPECT_GT(out->rounds, 1u);
  EXPECT_GT(out->final_radius, 1e-6);
}

TEST(GreedyClusteringTest, RejectsBadArguments) {
  const Dataset d = SmallSynthetic(10, 30);
  WcopOptions options = ResolvedFor(d);
  EXPECT_FALSE(GreedyClustering(Dataset(), 0, options).ok());
  options.radius_max = 0.0;
  EXPECT_FALSE(GreedyClustering(d, 0, options).ok());
  options = ResolvedFor(d);
  options.radius_growth = 1.0;
  EXPECT_FALSE(GreedyClustering(d, 0, options).ok());
}

TEST(GreedyClusteringTest, LeftoverJoinsOnlyCompatibleCluster) {
  // Two identical bundles of k=2 trajectories plus one leftover demanding
  // delta stricter than any cluster's current delta: must be trashed.
  Dataset d;
  d.Add(MakeLineWithReq(0, 0, 0, 1, 0, 20, 2, 100.0));
  d.Add(MakeLineWithReq(1, 0, 1, 1, 0, 20, 2, 100.0));
  d.Add(MakeLineWithReq(2, 0, 2, 1, 0, 20, 2, 100.0));
  d.Add(MakeLineWithReq(3, 0, 3, 1, 0, 20, 2, 100.0));
  // The demanding one wants delta=1 but every cluster will have delta=100;
  // since cluster.delta (100) > tau.delta (1), it cannot join — and its own
  // pivot attempt can form a cluster only if its neighbour tolerates it.
  d.Add(MakeLineWithReq(4, 0, 50.0, 1, 0, 20, 3, 1.0));
  WcopOptions options = ResolvedFor(d);
  options.seed = 3;
  Result<ClusteringOutcome> out = GreedyClustering(d, 5, options);
  ASSERT_TRUE(out.ok());
  // Trajectory 4 either anchors its own satisfying cluster (k=3, delta=1)
  // or lands in the trash; it can never ride along a delta=100 cluster
  // whose delta exceeds its own.
  for (const AnonymityCluster& c : out->clusters) {
    const bool has4 =
        std::find(c.members.begin(), c.members.end(), 4u) != c.members.end();
    if (has4) {
      EXPECT_LE(c.delta, 1.0);
      EXPECT_GE(c.members.size(), 3u);
    }
  }
}

void ExpectSameOutcome(const ClusteringOutcome& a,
                       const ClusteringOutcome& b) {
  ASSERT_EQ(a.clusters.size(), b.clusters.size());
  for (size_t i = 0; i < a.clusters.size(); ++i) {
    EXPECT_EQ(a.clusters[i].pivot, b.clusters[i].pivot) << "cluster " << i;
    EXPECT_EQ(a.clusters[i].members, b.clusters[i].members) << "cluster " << i;
    EXPECT_EQ(a.clusters[i].k, b.clusters[i].k) << "cluster " << i;
    EXPECT_DOUBLE_EQ(a.clusters[i].delta, b.clusters[i].delta)
        << "cluster " << i;
  }
  EXPECT_EQ(a.trash, b.trash);
  EXPECT_EQ(a.rounds, b.rounds);
  EXPECT_DOUBLE_EQ(a.final_radius, b.final_radius);
}

TEST(GreedyClusteringTest, CascadeMatchesExhaustiveBaseline) {
  // The lower-bound cascade must be a pure accelerator: cascade-on and
  // cascade-off runs produce identical clusters, trash, and relaxation
  // history (this mirrors the CI byte-identity gate on published output).
  const Dataset d = SmallSynthetic(40, 50, /*k_max=*/5);
  WcopOptions on = ResolvedFor(d);
  on.distance.cascade = true;
  WcopOptions off = ResolvedFor(d);
  off.distance.cascade = false;
  const auto with_cascade = GreedyClustering(d, 4, on);
  const auto without = GreedyClustering(d, 4, off);
  ASSERT_TRUE(with_cascade.ok()) << with_cascade.status();
  ASSERT_TRUE(without.ok()) << without.status();
  ExpectSameOutcome(*with_cascade, *without);
}

TEST(GreedyClusteringTest, CascadeMatchesBaselineAcrossDistantTiles) {
  // Two bundles 200 km apart exercise the grid pre-filter (out-of-reach
  // candidates are priced at edr_scale without a probe) plus the
  // separation rung; the outcome must still match the exhaustive run.
  Dataset d;
  for (int i = 0; i < 6; ++i) {
    d.Add(MakeLineWithReq(i, 0, i * 5.0, 1, 0, 20, /*k=*/3, /*delta=*/100));
    d.Add(MakeLineWithReq(10 + i, 2.0e5, i * 5.0, 1, 0, 20, /*k=*/3,
                          /*delta=*/100));
  }
  WcopOptions on = ResolvedFor(d);
  WcopOptions off = ResolvedFor(d);
  off.distance.cascade = false;
  const auto with_cascade = GreedyClustering(d, 2, on);
  const auto without = GreedyClustering(d, 2, off);
  ASSERT_TRUE(with_cascade.ok()) << with_cascade.status();
  ASSERT_TRUE(without.ok()) << without.status();
  ExpectSameOutcome(*with_cascade, *without);
}

TEST(GreedyClusteringTest, CascadePrunesAndAbandonsOnStockConfig) {
  // Regression guard for the (previously dead) early-abandon path and the
  // cascade counters: on a stock synthetic workload the cutoff-certified
  // bounds must actually fire, and the number of exact DP computations must
  // drop strictly below the exhaustive baseline.
  const Dataset d = SmallSynthetic(40, 50, /*k_max=*/5);

  WcopOptions on = ResolvedFor(d);
  telemetry::Telemetry tel_on;
  on.telemetry = &tel_on;
  ASSERT_TRUE(GreedyClustering(d, 4, on).ok());
  const telemetry::MetricsSnapshot snap_on = tel_on.metrics().Snapshot();

  WcopOptions off = ResolvedFor(d);
  off.distance.cascade = false;
  telemetry::Telemetry tel_off;
  off.telemetry = &tel_off;
  ASSERT_TRUE(GreedyClustering(d, 4, off).ok());
  const telemetry::MetricsSnapshot snap_off = tel_off.metrics().Snapshot();

  EXPECT_GT(snap_on.CounterValue("distance.early_abandoned"), 0u);
  const uint64_t lb_pruned =
      snap_on.CounterValue("distance.lb.length_pruned") +
      snap_on.CounterValue("distance.lb.separation_pruned") +
      snap_on.CounterValue("distance.lb.envelope_pruned") +
      snap_on.CounterValue("distance.lb.band_pruned");
  EXPECT_GT(lb_pruned, 0u);
  EXPECT_LT(snap_on.CounterValue("distance.calls.edr"),
            snap_off.CounterValue("distance.calls.edr"));
}

}  // namespace
}  // namespace wcop
