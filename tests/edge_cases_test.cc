// Cross-cutting edge cases that don't belong to a single module's suite.

#include <gtest/gtest.h>

#include <sstream>

#include "anon/wcop.h"
#include "common/table_printer.h"
#include "mod/trajectory_store.h"
#include "segment/traclus.h"
#include "test_util.h"

namespace wcop {
namespace {

using testing_util::MakeLine;
using testing_util::MakeLineWithReq;
using testing_util::SmallSynthetic;

TEST(EdgeCases, EmptyStoreIsQueryable) {
  Result<TrajectoryStore> store = TrajectoryStore::Build(Dataset());
  ASSERT_TRUE(store.ok());
  StRange range;
  range.x_hi = range.y_hi = range.t_hi = 100.0;
  EXPECT_TRUE(store->RangeQuery(range).empty());
  EXPECT_TRUE(store->NearestAt(0, 0, 0, 3).empty());
}

TEST(EdgeCases, SaWithFixedLengthSegmenter) {
  const Dataset d = SmallSynthetic(15, 60);
  FixedLengthSegmenter segmenter(20);
  Result<WcopSaResult> r = RunWcopSa(d, &segmenter);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->segmented.size(), 45u);  // 60 points -> 3 pieces each
  EXPECT_TRUE(VerifyAnonymity(r->segmented, r->anonymization).ok);
}

TEST(EdgeCases, SingleTrajectoryDatasetWithK1) {
  Dataset d;
  d.Add(MakeLineWithReq(0, 0, 0, 5, 0, 20, /*k=*/1, /*delta=*/100.0));
  Result<AnonymizationResult> r = RunWcopCt(d);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->sanitized.size(), 1u);
  EXPECT_EQ(r->report.num_clusters, 1u);
  EXPECT_TRUE(VerifyAnonymity(d, *r).ok);
}

TEST(EdgeCases, AllIdenticalRequirementsMatchesW4m) {
  // With uniform requirements and the same seed, CT and W4M (same k/delta)
  // produce identical reports — NV's claim of replicating W4M, inverted.
  Dataset d = SmallSynthetic(25, 40);
  for (Trajectory& t : d.mutable_trajectories()) {
    t.set_requirement(Requirement{3, 150.0});
  }
  WcopOptions options;
  options.seed = 77;
  Result<AnonymizationResult> ct = RunWcopCt(d, options);
  Result<AnonymizationResult> w4m = RunW4m(d, 3, 150.0, options);
  ASSERT_TRUE(ct.ok());
  ASSERT_TRUE(w4m.ok());
  EXPECT_EQ(ct->report.num_clusters, w4m->report.num_clusters);
  EXPECT_DOUBLE_EQ(ct->report.ttd, w4m->report.ttd);
}

TEST(EdgeCases, TrajectoryWithDuplicateSpatialPoints) {
  // A parked vehicle: all points at one location. Everything downstream
  // must stay finite.
  std::vector<Point> parked;
  for (int i = 0; i < 30; ++i) {
    parked.emplace_back(100.0, 200.0, i * 10.0);
  }
  Dataset d;
  Trajectory t(0, parked, Requirement{2, 100.0});
  d.Add(t);
  d.Add(MakeLineWithReq(1, 100, 210, 0.1, 0, 30, 2, 100.0, 10.0));
  Result<AnonymizationResult> r = RunWcopCt(d);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(std::isfinite(r->report.total_distortion));
  EXPECT_TRUE(VerifyAnonymity(d, *r).ok);
  // TRACLUS partitioning of a zero-length path must not blow up either.
  EXPECT_GE(TraclusCharacteristicPoints(t, {}).size(), 2u);
}

TEST(EdgeCases, TablePrinterEmptyTable) {
  TablePrinter table({"a", "b"});
  EXPECT_EQ(table.num_rows(), 0u);
  std::ostringstream os;
  table.Print(os);
  EXPECT_NE(os.str().find("| a | b |"), std::string::npos);
}

TEST(EdgeCases, DatasetDebugStringSmoke) {
  const Dataset d = SmallSynthetic(5, 20);
  const std::string s = d.DebugString();
  EXPECT_NE(s.find("trajectories=5"), std::string::npos);
  EXPECT_NE(s.find("points=100"), std::string::npos);
}

TEST(EdgeCases, VerifierAcceptsEmptyResultForEmptyOriginal) {
  AnonymizationResult empty;
  const VerificationReport report = VerifyAnonymity(Dataset(), empty);
  EXPECT_TRUE(report.ok);
  EXPECT_EQ(report.clusters_checked, 0u);
}

TEST(EdgeCases, HugeDeltaMakesTranslationFree) {
  // delta larger than the dataset diameter: everyone is already inside
  // everyone's disk, so matched points never move.
  Dataset d;
  d.Add(MakeLineWithReq(0, 0, 0, 10, 0, 20, 2, 1e9));
  d.Add(MakeLineWithReq(1, 0, 50, 10, 0, 20, 2, 1e9));
  WcopOptions options;
  options.distance.tolerance.dx = 1e9;
  options.distance.tolerance.dy = 1e9;
  options.distance.tolerance.dt = 1e9;
  Result<AnonymizationResult> r = RunWcopCt(d, options);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r->report.total_spatial_translation, 0.0);
}

TEST(EdgeCases, StressManySmallTrajectories) {
  // 200 two-point trajectories: the degenerate small-n/large-|D| corner.
  Dataset d;
  Rng rng(5);
  for (int i = 0; i < 200; ++i) {
    const double x = rng.UniformReal(0, 1000);
    const double y = rng.UniformReal(0, 1000);
    d.Add(MakeLineWithReq(i, x, y, 5, 0, 2, 2, 200.0, 10.0,
                          rng.UniformReal(0, 100)));
  }
  Result<AnonymizationResult> r = RunWcopCt(d);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(VerifyAnonymity(d, *r).ok);
}

}  // namespace
}  // namespace wcop
