// Robustness: the file parsers must never crash or loop on malformed
// input — they fail with a Status or skip garbage records gracefully.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>

#include "common/rng.h"
#include "data/geolife_parser.h"
#include "traj/io.h"

namespace wcop {
namespace {

namespace fs = std::filesystem;

class FuzzRobustnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / "wcop_fuzz";
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string WriteBytes(const std::string& name, const std::string& bytes) {
    const fs::path path = dir_ / name;
    std::ofstream out(path, std::ios::binary);
    out << bytes;
    return path.string();
  }

  fs::path dir_;
};

std::string RandomBytes(Rng* rng, size_t n, bool printable) {
  std::string out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(printable
                      ? static_cast<char>(rng->UniformInt(32, 126))
                      : static_cast<char>(rng->UniformInt(0, 255)));
  }
  return out;
}

TEST_F(FuzzRobustnessTest, PltParserSurvivesRandomBytes) {
  const LocalProjection proj(39.9057, 116.3913);
  Rng rng(101);
  for (int round = 0; round < 40; ++round) {
    const std::string path = WriteBytes(
        "fuzz_" + std::to_string(round) + ".plt",
        RandomBytes(&rng, 64 + rng.UniformIndex(2048), round % 2 == 0));
    // Must return (any status) without crashing; a parsed result must be
    // structurally valid.
    Result<Trajectory> r = ParsePltFile(path, proj);
    if (r.ok()) {
      EXPECT_TRUE(r->Validate().ok());
    }
  }
}

TEST_F(FuzzRobustnessTest, CsvReaderSurvivesRandomBytes) {
  Rng rng(202);
  for (int round = 0; round < 40; ++round) {
    const std::string path = WriteBytes(
        "fuzz_" + std::to_string(round) + ".csv",
        RandomBytes(&rng, 64 + rng.UniformIndex(2048), round % 2 == 0));
    Result<Dataset> r = ReadDatasetCsv(path);
    if (r.ok()) {
      EXPECT_TRUE(r->Validate().ok());
    }
  }
}

TEST_F(FuzzRobustnessTest, CsvReaderSurvivesTruncatedValidFile) {
  // A valid file cut at every prefix length must parse or error cleanly.
  const std::string full =
      "traj_id,object_id,parent_id,k,delta,x,y,t\n"
      "1,2,-1,3,100.5,10.25,20.5,1000\n"
      "1,2,-1,3,100.5,11.25,21.5,1010\n"
      "2,3,-1,2,50.0,0,0,5\n"
      "2,3,-1,2,50.0,1,1,6\n";
  for (size_t len = 0; len <= full.size(); len += 7) {
    const std::string path =
        WriteBytes("trunc_" + std::to_string(len) + ".csv",
                   full.substr(0, len));
    Result<Dataset> r = ReadDatasetCsv(path);
    if (r.ok()) {
      EXPECT_TRUE(r->Validate().ok());
    }
  }
}

TEST_F(FuzzRobustnessTest, PltParserSurvivesPathologicalNumbers) {
  const LocalProjection proj(39.9057, 116.3913);
  const std::string path = WriteBytes(
      "patho.plt",
      "90.0,180.0,0,0,1e308,x,y\n"
      "-90.0,-180.0,0,0,-1e308,x,y\n"
      "nan,inf,0,0,nan,x,y\n"
      "1e-320,5,0,0,39745.2,2008-10-24,04:48:00\n"
      "39.9,116.4,0,0,39745.3,2008-10-24,07:12:00\n"
      "39.91,116.41,0,0,39745.4,2008-10-24,09:36:00\n");
  Result<Trajectory> r = ParsePltFile(path, proj);
  if (r.ok()) {
    EXPECT_TRUE(r->Validate().ok());  // non-finite points must not survive
  }
}

}  // namespace
}  // namespace wcop
