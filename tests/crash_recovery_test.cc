// Crash-recovery harness: kill-and-restart at every checkpoint-adjacent
// failpoint site.
//
// The binary doubles as its own crash victim. Invoked as
//
//   crash_recovery_test --child=streaming <checkpoint_path> <out_path>
//   crash_recovery_test --child=wcopb     <checkpoint_path> <out_path>
//
// it runs one deterministic anonymization pipeline to completion, audits
// the published output from the outside (effective anonymity >= declared
// k), and writes an exact (%.17g) dump of the result to <out_path>.
//
// The gtest side fork/execs that child three ways per armed site:
//   1. baseline: no checkpointing, no failpoints -> reference dump;
//   2. crash: WCOP_FAILPOINTS=<site>:abort@N -> expect death by SIGABRT,
//      leaving whatever checkpoint state the crash interleaving produced;
//   3. restart: same checkpoint path, no failpoints -> must exit cleanly
//      with a dump byte-identical to the baseline.
// Any torn checkpoint, double-counted window, or drifted double shows up as
// a byte diff.

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "anon/effective_anonymity.h"
#include "anon/streaming.h"
#include "anon/wcop_b.h"
#include "test_util.h"

namespace wcop {
namespace {

using testing_util::MakeLineWithReq;
using testing_util::SmallSynthetic;

// ---------------------------------------------------------------------------
// Shared between parent and child: the deterministic workloads.
// ---------------------------------------------------------------------------

// Three groups of three co-travelling lines inside [0, 290] s: a 100 s
// window yields exactly three windows, three checkpoints at cadence 1.
Dataset StreamingDataset() {
  std::vector<Trajectory> trajectories;
  int64_t id = 0;
  for (int g = 0; g < 3; ++g) {
    for (int i = 0; i < 3; ++i) {
      Trajectory t = MakeLineWithReq(id, 2000.0 * g, 30.0 * i, 5.0, 0.0,
                                     /*n=*/30, /*k=*/2, /*delta=*/300.0,
                                     /*dt=*/10.0);
      t.set_object_id(id);
      trajectories.push_back(std::move(t));
      ++id;
    }
  }
  return Dataset(std::move(trajectories));
}

// Exact textual dump: %.17g round-trips doubles, so two dumps are equal iff
// the underlying results are bitwise equal.
void DumpDataset(const Dataset& d, std::string* out) {
  char buf[192];
  for (const Trajectory& t : d.trajectories()) {
    std::snprintf(buf, sizeof(buf), "traj %" PRId64 " %" PRId64 " %" PRId64
                  " %d %.17g %zu\n",
                  t.id(), t.object_id(), t.parent_id(), t.requirement().k,
                  t.requirement().delta, t.size());
    out->append(buf);
    for (const Point& p : t.points()) {
      std::snprintf(buf, sizeof(buf), "%.17g %.17g %.17g\n", p.x, p.y, p.t);
      out->append(buf);
    }
  }
}

int WriteDump(const std::string& path, const std::string& dump) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(dump.data(), static_cast<std::streamsize>(dump.size()));
  out.close();
  if (!out) {
    std::fprintf(stderr, "child: cannot write %s\n", path.c_str());
    return 4;
  }
  return 0;
}

// Outside audit of the published output: every trajectory must enjoy at
// least its declared k co-localized companions at its own delta.
int AuditOrFail(const Dataset& published) {
  const EffectiveAnonymityReport audit =
      MeasureEffectiveAnonymity(published, 0.0, /*use_personal_delta=*/true);
  if (audit.violation_fraction != 0.0) {
    std::fprintf(stderr,
                 "child: effective-anonymity audit failed "
                 "(violation_fraction=%g, min=%zu)\n",
                 audit.violation_fraction, audit.min_anonymity);
    return 3;
  }
  return 0;
}

int RunStreamingChild(const std::string& checkpoint_path,
                      const std::string& out_path) {
  StreamingOptions options;
  options.window_seconds = 100.0;
  options.checkpoint_path = checkpoint_path;
  Result<StreamingResult> result = RunStreamingWcop(StreamingDataset(),
                                                    options);
  if (!result.ok()) {
    std::fprintf(stderr, "child: streaming failed: %s\n",
                 result.status().ToString().c_str());
    return 2;
  }
  if (int rc = AuditOrFail(result->sanitized); rc != 0) {
    return rc;
  }
  std::string dump;
  char buf[256];
  DumpDataset(result->sanitized, &dump);
  for (const StreamingWindowSummary& w : result->windows) {
    std::snprintf(buf, sizeof(buf), "window %.17g %zu %zu %zu %.17g %d\n",
                  w.window_start, w.input_fragments, w.published_fragments,
                  w.clusters, w.ttd, w.skipped ? 1 : 0);
    dump.append(buf);
  }
  std::snprintf(buf, sizeof(buf),
                "totals clusters=%zu suppressed=%zu ttd=%.17g degraded=%d\n",
                result->total_clusters, result->suppressed_fragments,
                result->total_ttd, result->degraded ? 1 : 0);
  dump.append(buf);
  return WriteDump(out_path, dump);
}

int RunWcopBChild(const std::string& checkpoint_path,
                  const std::string& out_path) {
  WcopOptions options;
  WcopBOptions b;
  b.step = 1;
  b.max_edit_size = 3;
  b.distort_max = 0.0;  // unreachable -> exactly three editing rounds
  b.checkpoint_path = checkpoint_path;
  Result<WcopBResult> result = RunWcopB(SmallSynthetic(15, 20), options, b);
  if (!result.ok()) {
    std::fprintf(stderr, "child: wcop-b failed: %s\n",
                 result.status().ToString().c_str());
    return 2;
  }
  if (int rc = AuditOrFail(result->anonymization.sanitized); rc != 0) {
    return rc;
  }
  std::string dump;
  char buf[256];
  DumpDataset(result->anonymization.sanitized, &dump);
  for (const WcopBRound& r : result->rounds) {
    std::snprintf(buf, sizeof(buf), "round %zu %.17g %.17g %.17g %zu %zu\n",
                  r.edit_size, r.ttd, r.editing_distortion,
                  r.total_distortion, r.num_clusters, r.trashed);
    dump.append(buf);
  }
  std::snprintf(buf, sizeof(buf),
                "totals final_edit=%zu bound=%d ttd=%.17g\n",
                result->final_edit_size, result->bound_satisfied ? 1 : 0,
                result->anonymization.report.ttd);
  dump.append(buf);
  return WriteDump(out_path, dump);
}

// ---------------------------------------------------------------------------
// Parent-side process harness.
// ---------------------------------------------------------------------------

struct ChildOutcome {
  bool signalled = false;
  int signal = 0;
  int exit_code = -1;
};

ChildOutcome SpawnChild(const std::string& mode,
                        const std::string& checkpoint_path,
                        const std::string& out_path,
                        const std::string& failpoints) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    if (failpoints.empty()) {
      ::unsetenv("WCOP_FAILPOINTS");
    } else {
      ::setenv("WCOP_FAILPOINTS", failpoints.c_str(), 1);
    }
    const std::string child_flag = "--child=" + mode;
    ::execl("/proc/self/exe", "crash_recovery_test", child_flag.c_str(),
            checkpoint_path.c_str(), out_path.c_str(),
            static_cast<char*>(nullptr));
    _exit(127);  // exec failed
  }
  ChildOutcome outcome;
  if (pid < 0) {
    return outcome;  // fork failed -> exit_code stays -1
  }
  int status = 0;
  if (::waitpid(pid, &status, 0) != pid) {
    return outcome;
  }
  if (WIFSIGNALED(status)) {
    outcome.signalled = true;
    outcome.signal = WTERMSIG(status);
  } else if (WIFEXITED(status)) {
    outcome.exit_code = WEXITSTATUS(status);
  }
  return outcome;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

class CrashRecoveryTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::path(::testing::TempDir()) /
           ("crash_recovery_" + std::string(::testing::UnitTest::GetInstance()
                                                ->current_test_info()
                                                ->name()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  // The full kill-and-restart cycle for one driver at every listed crash
  // site: baseline once, then per site crash + restart + byte-compare.
  void RunKillMatrix(const std::string& mode,
                     const std::vector<std::string>& kill_specs) {
    const std::string baseline_out = Path("baseline.dump");
    const ChildOutcome baseline =
        SpawnChild(mode, /*checkpoint_path=*/"", baseline_out, "");
    ASSERT_FALSE(baseline.signalled) << "baseline died: " << baseline.signal;
    ASSERT_EQ(baseline.exit_code, 0);
    const std::string expected = ReadFileBytes(baseline_out);
    ASSERT_FALSE(expected.empty());

    for (size_t i = 0; i < kill_specs.size(); ++i) {
      const std::string& spec = kill_specs[i];
      SCOPED_TRACE(mode + " killed at " + spec);
      const std::string checkpoint = Path("ckpt_" + std::to_string(i));
      const std::string out = Path("out_" + std::to_string(i));

      const ChildOutcome crash = SpawnChild(mode, checkpoint, out, spec);
      ASSERT_TRUE(crash.signalled)
          << "expected SIGABRT, child exited with " << crash.exit_code;
      EXPECT_EQ(crash.signal, SIGABRT);
      EXPECT_TRUE(ReadFileBytes(out).empty())
          << "crashed child must not have published a dump";

      const ChildOutcome restart = SpawnChild(mode, checkpoint, out, "");
      ASSERT_FALSE(restart.signalled)
          << "restart died with signal " << restart.signal;
      ASSERT_EQ(restart.exit_code, 0);
      EXPECT_EQ(ReadFileBytes(out), expected)
          << "resumed output differs from the uninterrupted run";
    }
  }

  std::filesystem::path dir_;
};

// Streaming: three windows, checkpoint after each. Crash inside the atomic
// write (temp-open, body write, pre-fsync, pre-rename), right after a
// checkpoint commits, and at a window boundary with one checkpoint on disk.
TEST_F(CrashRecoveryTest, StreamingSurvivesKillAtEverySite) {
  RunKillMatrix("streaming", {
                                 "snapshot.open_temp:abort@1",
                                 "snapshot.write:abort@2",
                                 "snapshot.fsync:abort@1",
                                 "snapshot.fsync:abort@3",
                                 "snapshot.rename:abort@2",
                                 "streaming.checkpoint_saved:abort@1",
                                 "streaming.checkpoint_saved:abort@2",
                                 "streaming.window:abort@2",
                                 "streaming.window:abort@3",
                             });
}

// WCOP-B: three editing rounds, checkpoint after each, the third terminal.
TEST_F(CrashRecoveryTest, WcopBSurvivesKillAtEverySite) {
  RunKillMatrix("wcopb", {
                             "snapshot.open_temp:abort@1",
                             "snapshot.fsync:abort@2",
                             "snapshot.rename:abort@1",
                             "wcop_b.checkpoint_saved:abort@1",
                             "wcop_b.checkpoint_saved:abort@2",
                             "wcop_b.checkpoint_saved:abort@3",
                             "wcop_b.round:abort@2",
                             "wcop_b.round:abort@3",
                         });
}

// Crashing twice in a row (restart crashes too, later) still converges.
TEST_F(CrashRecoveryTest, StreamingSurvivesRepeatedCrashes) {
  const std::string baseline_out = Path("baseline.dump");
  ASSERT_EQ(SpawnChild("streaming", "", baseline_out, "").exit_code, 0);
  const std::string expected = ReadFileBytes(baseline_out);

  const std::string checkpoint = Path("ckpt");
  const std::string out = Path("out");
  const ChildOutcome first =
      SpawnChild("streaming", checkpoint, out, "snapshot.rename:abort@1");
  ASSERT_TRUE(first.signalled);
  const ChildOutcome second =
      SpawnChild("streaming", checkpoint, out, "snapshot.rename:abort@2");
  ASSERT_TRUE(second.signalled);

  const ChildOutcome restart = SpawnChild("streaming", checkpoint, out, "");
  ASSERT_EQ(restart.exit_code, 0);
  EXPECT_EQ(ReadFileBytes(out), expected);
}

}  // namespace
}  // namespace wcop

// Custom main: child mode must not run the test suite.
int main(int argc, char** argv) {
  if (argc == 4 && std::string(argv[1]).rfind("--child=", 0) == 0) {
    const std::string mode = std::string(argv[1]).substr(8);
    if (mode == "streaming") {
      return wcop::RunStreamingChild(argv[2], argv[3]);
    }
    if (mode == "wcopb") {
      return wcop::RunWcopBChild(argv[2], argv[3]);
    }
    std::fprintf(stderr, "unknown child mode '%s'\n", mode.c_str());
    return 5;
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
