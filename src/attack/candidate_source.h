#ifndef WCOP_ATTACK_CANDIDATE_SOURCE_H_
#define WCOP_ATTACK_CANDIDATE_SOURCE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/result.h"
#include "common/run_context.h"
#include "store/store_file.h"
#include "traj/dataset.h"

namespace wcop {
namespace attack {

/// Uniform candidate universe for the attacks: an indexed set of published
/// (or original) trajectories with per-entry metadata cheap enough to walk
/// without touching trajectory bytes, plus on-demand block reads. One
/// abstraction serves both the legacy in-memory Dataset entry points and
/// the out-of-core 500k-store audits — the index rows carry the spatial
/// MBR and lifetime that power the certified lower-bound pruning of the
/// re-identification scan (see reident.h).
///
/// Every entry has a *truth key*: the identity an attack's ground truth is
/// keyed on. For plain stores and datasets that is the trajectory id; for
/// the continuous pipeline's window stores — whose fragments get fresh ids
/// per window — it is the fragment's parent_id, i.e. the source trajectory
/// the fragment was cut from, so the same user carries the same key across
/// releases.
class CandidateSource {
 public:
  virtual ~CandidateSource() = default;

  virtual size_t size() const = 0;

  /// Index row of entry `i`: id, num_points, requirement (k, delta),
  /// spatial MBR and lifetime. Never touches the trajectory bytes.
  virtual const store::StoreEntry& entry(size_t i) const = 0;

  /// Materializes entry `i`. Thread-safe.
  virtual Result<Trajectory> Read(size_t i) const = 0;

  /// Truth key of entry `i` (see class comment).
  virtual int64_t KeyOf(size_t i) const = 0;

  /// First entry whose truth key is `key`; kNotFound when absent.
  Result<size_t> FindByKey(int64_t key) const;

 protected:
  /// Derived constructors fill this once the keys are known.
  std::unordered_map<int64_t, size_t> by_key_;
};

/// In-memory adapter over a Dataset (the legacy attack entry points and
/// unit tests). Entries are synthesized from the trajectories; the truth
/// key is the trajectory id. The dataset must outlive the source.
class DatasetCandidateSource : public CandidateSource {
 public:
  explicit DatasetCandidateSource(const Dataset& dataset);

  size_t size() const override { return entries_.size(); }
  const store::StoreEntry& entry(size_t i) const override {
    return entries_[i];
  }
  Result<Trajectory> Read(size_t i) const override;
  int64_t KeyOf(size_t i) const override { return entries_[i].id; }

 private:
  const Dataset* dataset_;
  std::vector<store::StoreEntry> entries_;
};

/// Out-of-core adapter over a `.wst` store. With kId keys, opening costs
/// one index load and no block reads; with kParentId keys (window stores),
/// one sequential CRC-checked pass resolves each fragment's parent id —
/// memory stays one int64 per entry either way.
class StoreCandidateSource : public CandidateSource {
 public:
  enum class TruthKey { kId, kParentId };

  static Result<StoreCandidateSource> Open(
      const std::string& path, TruthKey truth_key = TruthKey::kId,
      const RunContext* context = nullptr);

  StoreCandidateSource(StoreCandidateSource&&) = default;
  StoreCandidateSource& operator=(StoreCandidateSource&&) = default;

  size_t size() const override { return reader_->size(); }
  const store::StoreEntry& entry(size_t i) const override {
    return reader_->index()[i];
  }
  Result<Trajectory> Read(size_t i) const override { return reader_->Read(i); }
  int64_t KeyOf(size_t i) const override { return keys_[i]; }

 private:
  StoreCandidateSource() = default;

  // unique_ptr keeps the source movable (Result<T> requires it).
  std::unique_ptr<store::TrajectoryStoreReader> reader_;
  std::vector<int64_t> keys_;
};

/// Spatial distance from `p` to the entry's MBR (0 when inside). Because
/// Trajectory::PositionAt clamps in time but never leaves the spatial MBR,
/// this is a certified lower bound on SpatialDistance(t.PositionAt(any t),
/// p) for the stored trajectory — the pruning predicate of the
/// re-identification scan and the effective-k prefilter.
double PointToEntryDistance(const store::StoreEntry& e, const Point& p);

}  // namespace attack
}  // namespace wcop

#endif  // WCOP_ATTACK_CANDIDATE_SOURCE_H_
