
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/related/awo.cc" "src/related/CMakeFiles/wcop_related.dir/awo.cc.o" "gcc" "src/related/CMakeFiles/wcop_related.dir/awo.cc.o.d"
  "/root/repo/src/related/path_perturbation.cc" "src/related/CMakeFiles/wcop_related.dir/path_perturbation.cc.o" "gcc" "src/related/CMakeFiles/wcop_related.dir/path_perturbation.cc.o.d"
  "/root/repo/src/related/suppression.cc" "src/related/CMakeFiles/wcop_related.dir/suppression.cc.o" "gcc" "src/related/CMakeFiles/wcop_related.dir/suppression.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/traj/CMakeFiles/wcop_traj.dir/DependInfo.cmake"
  "/root/repo/build/src/distance/CMakeFiles/wcop_distance.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/wcop_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/wcop_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
