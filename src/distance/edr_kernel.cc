#include "distance/edr_kernel.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace wcop {

namespace {

bool SortedByTime(const Trajectory& t) {
  for (size_t i = 1; i < t.size(); ++i) {
    if (t[i].t < t[i - 1].t) {
      return false;
    }
  }
  return true;
}

}  // namespace

uint32_t EdrOpsScalar(const Trajectory& a, const Trajectory& b,
                      const EdrTolerance& tolerance) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0 || m == 0) {
    return static_cast<uint32_t>(std::max(n, m));
  }
  // Two-row dynamic program; rows indexed by positions in `a`. The scratch
  // rows are thread-local so the clustering hot path never reallocates.
  thread_local std::vector<uint32_t> prev_s;
  thread_local std::vector<uint32_t> curr_s;
  prev_s.resize(m + 1);
  curr_s.resize(m + 1);
  uint32_t* prev = prev_s.data();
  uint32_t* curr = curr_s.data();
  for (size_t j = 0; j <= m; ++j) {
    prev[j] = static_cast<uint32_t>(j);
  }
  for (size_t i = 1; i <= n; ++i) {
    curr[0] = static_cast<uint32_t>(i);
    const Point& pa = a[i - 1];
    for (size_t j = 1; j <= m; ++j) {
      const uint32_t subcost = tolerance.Matches(pa, b[j - 1]) ? 0u : 1u;
      curr[j] =
          std::min({prev[j - 1] + subcost, prev[j] + 1u, curr[j - 1] + 1u});
    }
    std::swap(prev, curr);
  }
  return prev[m];
}

uint32_t EdrOpsBitParallel(const Trajectory& a, const Trajectory& b,
                           const EdrTolerance& tolerance) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0 || m == 0) {
    return static_cast<uint32_t>(std::max(n, m));
  }
  // Myers/Hyyrö bit-parallel unit-cost edit distance over the tolerance
  // match predicate. Columns (positions of `b`) live 64 per word; PV/MV
  // hold the vertical deltas of the current row, the score is tracked at
  // column m via the horizontal deltas of the last block. Bits of the last
  // block above column m are virtual never-matching columns; carries only
  // propagate upward within a word, so they never influence real columns.
  const size_t words = (m + 63) / 64;
  thread_local std::vector<uint64_t> pv_s;
  thread_local std::vector<uint64_t> mv_s;
  thread_local std::vector<uint64_t> eq_s;
  pv_s.assign(words, ~0ull);
  mv_s.assign(words, 0ull);
  eq_s.assign(words, 0ull);
  uint64_t* pv_v = pv_s.data();
  uint64_t* mv_v = mv_s.data();
  uint64_t* eq_v = eq_s.data();

  int64_t score = static_cast<int64_t>(m);
  const unsigned last_pos = static_cast<unsigned>((m - 1) & 63);
  // Match masks are rebuilt per row; when both sequences are sorted by time
  // and dt is finite, only the row point's time window over `b` is scanned
  // (two-pointer sweep), otherwise every column is tested.
  const bool windowed =
      std::isfinite(tolerance.dt) && SortedByTime(a) && SortedByTime(b);
  size_t lo = 0;
  size_t hi = 0;

  for (size_t i = 1; i <= n; ++i) {
    const Point& pa = a[i - 1];
    std::fill(eq_v, eq_v + words, 0ull);
    if (windowed) {
      while (hi < m && b[hi].t <= pa.t + tolerance.dt) {
        ++hi;
      }
      while (lo < hi && b[lo].t < pa.t - tolerance.dt) {
        ++lo;
      }
      for (size_t j = lo; j < hi; ++j) {
        const Point& pb = b[j];
        if (std::abs(pa.x - pb.x) <= tolerance.dx &&
            std::abs(pa.y - pb.y) <= tolerance.dy) {
          eq_v[j >> 6] |= 1ull << (j & 63);
        }
      }
    } else {
      for (size_t j = 0; j < m; ++j) {
        if (tolerance.Matches(pa, b[j])) {
          eq_v[j >> 6] |= 1ull << (j & 63);
        }
      }
    }

    int hin = 1;
    for (size_t k = 0; k < words; ++k) {
      const uint64_t pv = pv_v[k];
      const uint64_t mv = mv_v[k];
      const uint64_t pm = eq_v[k] | (hin < 0 ? 1ull : 0ull);
      const uint64_t d0 = (((pm & pv) + pv) ^ pv) | pm | mv;
      const uint64_t hp = mv | ~(d0 | pv);
      const uint64_t hn = pv & d0;
      if (k == words - 1) {
        score += static_cast<int64_t>((hp >> last_pos) & 1ull);
        score -= static_cast<int64_t>((hn >> last_pos) & 1ull);
      }
      const int hout =
          ((hp >> 63) & 1ull) ? 1 : (((hn >> 63) & 1ull) ? -1 : 0);
      const uint64_t hp_s = (hp << 1) | (hin > 0 ? 1ull : 0ull);
      const uint64_t hn_s = (hn << 1) | (hin < 0 ? 1ull : 0ull);
      pv_v[k] = hn_s | ~(d0 | hp_s);
      mv_v[k] = d0 & hp_s;
      hin = hout;
    }
  }
  return static_cast<uint32_t>(score);
}

EdrKernelResult EdrOpsBanded(const Trajectory& a, const Trajectory& b,
                             const EdrTolerance& tolerance, uint32_t band) {
  const size_t n = a.size();
  const size_t m = b.size();
  const uint32_t maxlen = static_cast<uint32_t>(std::max(n, m));
  if (n == 0 || m == 0) {
    return EdrKernelResult{maxlen, true};
  }
  const size_t diff = n > m ? n - m : m - n;
  if (diff > band) {
    // Outside the band before we start: the length bound is the certificate.
    return EdrKernelResult{band + 1, false};
  }
  if (band > maxlen) {
    band = maxlen;
  }
  // Ukkonen band: only cells with |i - j| <= band are evaluated; values are
  // clamped at band + 1 (any cell outside the band is >= |i - j| > band, so
  // the clamp never distorts a value that could end <= band).
  const uint32_t inf = band + 1;
  thread_local std::vector<uint32_t> prev_s;
  thread_local std::vector<uint32_t> curr_s;
  prev_s.assign(m + 2, inf);
  curr_s.assign(m + 2, inf);
  uint32_t* prev = prev_s.data();
  uint32_t* curr = curr_s.data();
  const size_t row0_hi = std::min(m, static_cast<size_t>(band));
  for (size_t j = 0; j <= row0_hi; ++j) {
    prev[j] = static_cast<uint32_t>(j);
  }
  for (size_t i = 1; i <= n; ++i) {
    const size_t lo = i > band ? i - band : 0;
    const size_t hi = std::min(m, i + band);
    const Point& pa = a[i - 1];
    if (lo == 0) {
      curr[0] = std::min(static_cast<uint32_t>(i), inf);
    } else {
      curr[lo - 1] = inf;  // left neighbour of the first in-band cell
    }
    for (size_t j = std::max<size_t>(lo, 1); j <= hi; ++j) {
      const uint32_t subcost = tolerance.Matches(pa, b[j - 1]) ? 0u : 1u;
      const uint32_t v =
          std::min({prev[j - 1] + subcost, prev[j] + 1u, curr[j - 1] + 1u});
      curr[j] = std::min(v, inf);
    }
    curr[hi + 1] = inf;  // up neighbour of next row's last in-band cell
    std::swap(prev, curr);
  }
  const uint32_t result = prev[m];
  if (result >= inf) {
    return EdrKernelResult{inf, false};  // certified: true distance > band
  }
  return EdrKernelResult{result, true};
}

EdrKernelResult EdrOps(const Trajectory& a, const Trajectory& b,
                       const EdrTolerance& tolerance, uint32_t band) {
  const size_t n = a.size();
  const size_t m = b.size();
  const uint32_t maxlen = static_cast<uint32_t>(std::max(n, m));
  if (n == 0 || m == 0) {
    return EdrKernelResult{maxlen, true};
  }
  const size_t diff = n > m ? n - m : m - n;
  if (diff > band) {
    return EdrKernelResult{band + 1, false};
  }
  if (band > maxlen) {
    band = maxlen;
  }
  // Rough per-row costs: banded touches min(2*band+1, m) cells, the
  // bit-parallel kernel ~8 word ops per 64 columns, the scalar DP m cells.
  // The banded kernel additionally certifies abandons, so prefer it
  // whenever it is the cheapest full evaluation.
  const uint64_t banded_cost = 2ull * band + 1ull;
  const uint64_t bitparallel_cost = 8ull * ((m + 63) / 64);
  if (band < maxlen && banded_cost < bitparallel_cost &&
      banded_cost < static_cast<uint64_t>(m)) {
    return EdrOpsBanded(a, b, tolerance, band);
  }
  if (m < 32 || static_cast<uint64_t>(n) * m < 2048) {
    return EdrKernelResult{EdrOpsScalar(a, b, tolerance), true};
  }
  return EdrKernelResult{EdrOpsBitParallel(a, b, tolerance), true};
}

}  // namespace wcop
