// Regenerates the data behind the paper's Figures 3-4: the original dataset
// plus its anonymization under each WCOP variant, written as CSV (and
// optionally GeoJSON) for plotting. Plot each file's (x, y) traces to see
// what Figure 4 shows — WCOP-NV collapsing the trend, WCOP-CT and the SA
// variants preserving it.
//
// Run:  ./visualize_anonymization [--outdir=/tmp] [--trajectories=80]
//       [--geojson]
//
// Outputs (in --outdir, default "."):
//   fig3_original.csv, fig4a_wcop_nv.csv, fig4b_wcop_ct.csv,
//   fig4c_wcop_sa_traclus.csv, fig4d_wcop_sa_convoys.csv

#include <cstdio>
#include <iostream>
#include <string>

#include "anon/wcop.h"
#include "common/arg_parser.h"
#include "data/synthetic.h"
#include "segment/convoy.h"
#include "segment/traclus.h"
#include "traj/geojson.h"
#include "traj/io.h"

using namespace wcop;

namespace {

int WriteOut(const Dataset& dataset, const std::string& outdir,
             const std::string& stem, bool geojson) {
  const std::string csv_path = outdir + "/" + stem + ".csv";
  const Status s = WriteDatasetCsv(dataset, csv_path);
  if (!s.ok()) {
    std::cerr << s << "\n";
    return 1;
  }
  std::printf("wrote %s (%zu trajectories, %zu points)\n", csv_path.c_str(),
              dataset.size(), dataset.TotalPoints());
  if (geojson) {
    const LocalProjection projection(39.9057, 116.3913);
    const std::string geo_path = outdir + "/" + stem + ".geojson";
    if (WriteDatasetGeoJson(dataset, projection, geo_path).ok()) {
      std::printf("wrote %s\n", geo_path.c_str());
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const std::string outdir = args.GetString("outdir", ".");
  const bool geojson = args.GetBool("geojson", false);

  SyntheticOptions gen;
  gen.seed = static_cast<uint64_t>(args.GetInt("seed", 7));
  gen.num_trajectories = static_cast<size_t>(args.GetInt("trajectories", 80));
  gen.num_users = gen.num_trajectories / 3 + 1;
  gen.points_per_trajectory = static_cast<size_t>(args.GetInt("points", 100));
  gen.region_half_diagonal = 20000.0;
  gen.dataset_duration_days = 30.0;
  gen.popular_route_prob = 0.5;
  Result<Dataset> maybe_dataset = GenerateSyntheticGeoLife(gen);
  if (!maybe_dataset.ok()) {
    std::cerr << maybe_dataset.status() << "\n";
    return 1;
  }
  Dataset dataset = std::move(maybe_dataset).value();
  Rng rng(gen.seed + 1);
  AssignUniformRequirements(&dataset, 2, 5, 10.0, 250.0, &rng);

  if (WriteOut(dataset, outdir, "fig3_original", geojson) != 0) {
    return 1;
  }

  WcopOptions options;
  options.seed = gen.seed + 2;

  Result<AnonymizationResult> nv = RunWcopNv(dataset, options);
  if (!nv.ok() ||
      WriteOut(nv->sanitized, outdir, "fig4a_wcop_nv", geojson) != 0) {
    std::cerr << "WCOP-NV step failed\n";
    return 1;
  }
  Result<AnonymizationResult> ct = RunWcopCt(dataset, options);
  if (!ct.ok() ||
      WriteOut(ct->sanitized, outdir, "fig4b_wcop_ct", geojson) != 0) {
    std::cerr << "WCOP-CT step failed\n";
    return 1;
  }
  TraclusSegmenter traclus;
  Result<WcopSaResult> sa_traclus = RunWcopSa(dataset, &traclus, options);
  if (!sa_traclus.ok() ||
      WriteOut(sa_traclus->anonymization.sanitized, outdir,
               "fig4c_wcop_sa_traclus", geojson) != 0) {
    std::cerr << "WCOP-SA-Traclus step failed\n";
    return 1;
  }
  ConvoyOptions convoy_options;
  convoy_options.min_objects = 2;
  convoy_options.eps = 250.0;
  convoy_options.snapshot_interval = 60.0;
  ConvoySegmenter convoys(convoy_options);
  Result<WcopSaResult> sa_convoys = RunWcopSa(dataset, &convoys, options);
  if (!sa_convoys.ok() ||
      WriteOut(sa_convoys->anonymization.sanitized, outdir,
               "fig4d_wcop_sa_convoys", geojson) != 0) {
    std::cerr << "WCOP-SA-Convoys step failed\n";
    return 1;
  }

  std::printf("\nplot the (x, y) columns of each CSV to reproduce the look "
              "of Figures 3-4.\n");
  return 0;
}
