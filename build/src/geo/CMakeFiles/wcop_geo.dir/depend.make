# Empty dependencies file for wcop_geo.
# This may be replaced when dependencies are built.
