# Empty compiler generated dependencies file for trajectory_store_test.
# This may be replaced when dependencies are built.
