// Cooperative signal shutdown: SIGINT/SIGTERM flip the process-wide
// cancellation flag (common/signals.h); drivers threading that token
// through a RunContext trip with kCancelled at the next poll, flush their
// final checkpoint, and a later run resumes to byte-identical output.
//
// Signals are delivered at exact pipeline boundaries with
// FailpointRegistry::ArmSignal, so the interruption point is deterministic
// and the handler (installed in-process) absorbs the raise safely under
// gtest.

#include <signal.h>

#include <gtest/gtest.h>

#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <string>
#include <vector>

#include "anon/streaming.h"
#include "common/failpoint.h"
#include "common/rng.h"
#include "common/signals.h"
#include "data/synthetic.h"
#include "store/shard_runner.h"
#include "store/store_file.h"
#include "test_util.h"

namespace wcop {
namespace {

using testing_util::MakeLineWithReq;

// Two far-apart synthetic cities: an input shape the partitioner actually
// splits (one dense city collapses to a single shard by design).
Dataset TiledDataset() {
  SyntheticOptions options;
  options.seed = 21;
  options.num_users = 8;
  options.num_trajectories = 12;
  options.points_per_trajectory = 24;
  options.sampling_interval = 10.0;
  options.region_half_diagonal = 6000.0;
  options.num_hubs = 5;
  options.num_routes = 4;
  options.dataset_duration_days = 10.0;
  Dataset dataset =
      GenerateTiledSyntheticGeoLife(options, /*tiles=*/2, 200000.0).value();
  Rng rng(22);
  AssignUniformRequirements(&dataset, 2, 4, 10.0, 200.0, &rng);
  return dataset;
}

// Three groups of three co-travelling lines inside [0, 290] s: a 100 s
// window yields exactly three windows (the crash-recovery workload).
Dataset StreamingDataset() {
  std::vector<Trajectory> trajectories;
  int64_t id = 0;
  for (int g = 0; g < 3; ++g) {
    for (int i = 0; i < 3; ++i) {
      Trajectory t = MakeLineWithReq(id, 2000.0 * g, 30.0 * i, 5.0, 0.0,
                                     /*n=*/30, /*k=*/2, /*delta=*/300.0,
                                     /*dt=*/10.0);
      t.set_object_id(id);
      trajectories.push_back(std::move(t));
      ++id;
    }
  }
  return Dataset(std::move(trajectories));
}

// Exact %.17g dump: equal strings iff the datasets are bitwise equal.
std::string DumpDataset(const Dataset& d) {
  std::string out;
  char buf[192];
  for (const Trajectory& t : d.trajectories()) {
    std::snprintf(buf, sizeof(buf), "traj %" PRId64 " %" PRId64 " %" PRId64
                  " %d %.17g %zu\n",
                  t.id(), t.object_id(), t.parent_id(), t.requirement().k,
                  t.requirement().delta, t.size());
    out.append(buf);
    for (const Point& p : t.points()) {
      std::snprintf(buf, sizeof(buf), "%.17g %.17g %.17g\n", p.x, p.y, p.t);
      out.append(buf);
    }
  }
  return out;
}

class SignalShutdownTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::path(::testing::TempDir()) /
           ("signal_shutdown_" +
            std::string(::testing::UnitTest::GetInstance()
                            ->current_test_info()
                            ->name()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
    FailpointRegistry::Instance().DisarmAll();
    ResetShutdownSignalStateForTesting();
  }
  void TearDown() override {
    FailpointRegistry::Instance().DisarmAll();
    ResetShutdownSignalStateForTesting();
    std::filesystem::remove_all(dir_);
  }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::filesystem::path dir_;
};

TEST_F(SignalShutdownTest, SigtermCancelsStreamingAndResumeIsByteIdentical) {
  const Dataset data = StreamingDataset();
  StreamingOptions options;
  options.window_seconds = 100.0;

  // Uninterrupted reference run (no checkpointing needed).
  Result<StreamingResult> baseline = RunStreamingWcop(data, options);
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  const std::string expected = DumpDataset(baseline->sanitized);
  ASSERT_FALSE(expected.empty());

  // SIGTERM lands at the start of window 2: the handler flips the shared
  // flag, the run trips kCancelled at its next poll, and the window-1
  // checkpoint is already durable.
  const CancellationToken token = InstallShutdownSignalHandlers();
  RunContext ctx;
  ctx.set_cancellation_token(token);
  options.checkpoint_path = Path("stream.ckpt");
  options.wcop.run_context = &ctx;
  FailpointRegistry::Instance().ArmSignal("streaming.window", SIGTERM,
                                          /*on_hit=*/2);
  Result<StreamingResult> interrupted = RunStreamingWcop(data, options);
  ASSERT_FALSE(interrupted.ok()) << "run should have been cancelled";
  EXPECT_EQ(interrupted.status().code(), StatusCode::kCancelled)
      << interrupted.status();
  EXPECT_TRUE(ShutdownSignalReceived());
  EXPECT_EQ(LastShutdownSignal(), SIGTERM);
  EXPECT_TRUE(std::filesystem::exists(options.checkpoint_path))
      << "cancellation must flush the final checkpoint";

  // New life: no signal, no token. The run resumes past the completed
  // windows and converges to the uninterrupted output, byte for byte.
  FailpointRegistry::Instance().DisarmAll();
  ResetShutdownSignalStateForTesting();
  options.wcop.run_context = nullptr;
  Result<StreamingResult> resumed = RunStreamingWcop(data, options);
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  EXPECT_TRUE(resumed->resumed);
  EXPECT_GE(resumed->resumed_windows, 1u);
  EXPECT_EQ(DumpDataset(resumed->sanitized), expected);
}

TEST_F(SignalShutdownTest, SigintCancelsShardRunnerAndResumeIsByteIdentical) {
  const std::string store_path = Path("input.wst");
  ASSERT_TRUE(store::WriteDatasetStore(TiledDataset(), store_path).ok());
  Result<store::TrajectoryStoreReader> reader =
      store::TrajectoryStoreReader::Open(store_path);
  ASSERT_TRUE(reader.ok()) << reader.status();

  store::ShardRunOptions options;
  options.partition.num_shards = 4;
  options.shard_dir = Path("shards_baseline");
  Result<store::ShardedRunResult> baseline =
      store::RunShardedWcopCt(*reader, options);
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  const std::string expected = DumpDataset(baseline->merged.sanitized);
  ASSERT_FALSE(expected.empty());

  // The partitioner decides the real shard count (num_shards is only a
  // target); the baseline guarantees at least two, so SIGINT at the start
  // of shard 2 leaves shard 1 with a durable checkpoint and trips the run
  // with kCancelled inside shard 2.
  ASSERT_GT(baseline->partition.shards.size(), 1u);
  const CancellationToken token = InstallShutdownSignalHandlers();
  RunContext ctx;
  ctx.set_cancellation_token(token);
  options.shard_dir = Path("shards");
  options.checkpoint_dir = Path("ckpt");
  options.wcop.run_context = &ctx;
  FailpointRegistry::Instance().ArmSignal("shard.run", SIGINT, /*on_hit=*/2);
  Result<store::ShardedRunResult> interrupted =
      store::RunShardedWcopCt(*reader, options);
  ASSERT_FALSE(interrupted.ok()) << "run should have been cancelled";
  EXPECT_EQ(interrupted.status().code(), StatusCode::kCancelled)
      << interrupted.status();
  EXPECT_EQ(LastShutdownSignal(), SIGINT);
  size_t checkpoints = 0;
  for (const auto& entry :
       std::filesystem::directory_iterator(Path("ckpt"))) {
    checkpoints += entry.path().extension() == ".ckpt" ? 1 : 0;
  }
  EXPECT_GE(checkpoints, 1u)
      << "completed shards must leave durable checkpoints behind";

  // Resume without the token: completed shards are restored, the rest are
  // recomputed, and the merged output matches the uninterrupted run.
  FailpointRegistry::Instance().DisarmAll();
  ResetShutdownSignalStateForTesting();
  options.wcop.run_context = nullptr;
  Result<store::ShardedRunResult> resumed =
      store::RunShardedWcopCt(*reader, options);
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  EXPECT_GE(resumed->resumed_shards, 1u);
  EXPECT_TRUE(resumed->all_verified);
  EXPECT_EQ(DumpDataset(resumed->merged.sanitized), expected);
}

// Repeated installs share one flag; tokens observe a signal raised later
// through any of them.
TEST_F(SignalShutdownTest, HandlersAreIdempotentAndTokensShareTheFlag) {
  const CancellationToken a = InstallShutdownSignalHandlers();
  const CancellationToken b = InstallShutdownSignalHandlers();
  EXPECT_FALSE(a.cancellation_requested());
  EXPECT_FALSE(b.cancellation_requested());
  EXPECT_FALSE(ShutdownSignalReceived());
  ::raise(SIGTERM);
  EXPECT_TRUE(a.cancellation_requested());
  EXPECT_TRUE(b.cancellation_requested());
  EXPECT_TRUE(ShutdownSignalReceived());
  EXPECT_EQ(LastShutdownSignal(), SIGTERM);
}

}  // namespace
}  // namespace wcop
