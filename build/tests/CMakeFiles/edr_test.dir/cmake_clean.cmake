file(REMOVE_RECURSE
  "CMakeFiles/edr_test.dir/edr_test.cc.o"
  "CMakeFiles/edr_test.dir/edr_test.cc.o.d"
  "edr_test"
  "edr_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
