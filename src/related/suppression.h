#ifndef WCOP_RELATED_SUPPRESSION_H_
#define WCOP_RELATED_SUPPRESSION_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "traj/dataset.h"

namespace wcop {

/// Suppression-based anonymization in the spirit of Terrovitis & Mamoulis
/// (MDM 2008) — the related-work baseline where trajectories are modelled
/// as sequences of visited *places* and points are removed until an
/// adversary with partial knowledge cannot single out a victim.
///
/// Places here are the cells of a uniform grid (`cell_size` metres): a
/// trajectory's place sequence is its deduplicated sequence of visited
/// cells. The anonymizer greedily suppresses the rarest places (all points
/// falling in them) until every remaining place is visited by at least k
/// trajectories — so an adversary knowing any *single* visited place of a
/// victim finds at least k candidates. `adversary_pairs = true` extends the
/// guarantee to knowledge of any *ordered pair* of visited places (a
/// second, much more aggressive suppression pass).
///
/// This is a deliberately faithful-to-the-idea, bounded-knowledge variant
/// of the published algorithm (whose full projection model is exponential);
/// it exists to quantify suppression's utility cost against the
/// translation-based WCOP family.
struct SuppressionOptions {
  double cell_size = 1000.0;  ///< place granularity (metres)
  int k = 5;                  ///< required place support
  bool adversary_pairs = false;
  /// Trajectories losing more than this fraction of their points are
  /// suppressed entirely (moved to the trash).
  double max_loss_fraction = 0.5;
};

struct SuppressionReport {
  size_t places_total = 0;
  size_t places_suppressed = 0;
  size_t points_suppressed = 0;
  size_t trajectories_suppressed = 0;
  double suppression_ratio = 0.0;  ///< suppressed points / total points
};

struct SuppressionResult {
  Dataset sanitized;
  std::vector<int64_t> trashed_ids;
  SuppressionReport report;
};

Result<SuppressionResult> RunSuppression(const Dataset& dataset,
                                         const SuppressionOptions& options = {});

}  // namespace wcop

#endif  // WCOP_RELATED_SUPPRESSION_H_
