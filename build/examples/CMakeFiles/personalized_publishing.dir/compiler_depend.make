# Empty compiler generated dependencies file for personalized_publishing.
# This may be replaced when dependencies are built.
