#include "pipeline/manifest.h"

#include <cctype>
#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/snapshot.h"

namespace wcop {
namespace pipeline {

namespace {

// Same text conventions as the shard checkpoint codec: space-separated
// tokens, %.17g doubles (strtod round-trips them exactly).

void AppendU64(std::string* out, uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out->append(buf);
  out->push_back(' ');
}

void AppendI64(std::string* out, int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out->append(buf);
  out->push_back(' ');
}

void AppendF64(std::string* out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out->append(buf);
  out->push_back(' ');
}

class ManifestScanner {
 public:
  explicit ManifestScanner(std::string_view text) : text_(text) {}

  Result<std::string_view> Next() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
    if (pos_ >= text_.size()) {
      return Status::DataLoss("window manifest: truncated payload");
    }
    const size_t start = pos_;
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) == 0) {
      ++pos_;
    }
    return text_.substr(start, pos_ - start);
  }

  Result<uint64_t> NextU64() {
    WCOP_ASSIGN_OR_RETURN(std::string_view tok, Next());
    char buf[32];
    if (tok.size() >= sizeof(buf)) {
      return Status::DataLoss("window manifest: oversized token");
    }
    std::memcpy(buf, tok.data(), tok.size());
    buf[tok.size()] = '\0';
    char* end = nullptr;
    errno = 0;
    const unsigned long long v = std::strtoull(buf, &end, 10);
    if (errno != 0 || end != buf + tok.size()) {
      return Status::DataLoss("window manifest: bad integer");
    }
    return static_cast<uint64_t>(v);
  }

  Result<int64_t> NextI64() {
    WCOP_ASSIGN_OR_RETURN(std::string_view tok, Next());
    char buf[32];
    if (tok.size() >= sizeof(buf)) {
      return Status::DataLoss("window manifest: oversized token");
    }
    std::memcpy(buf, tok.data(), tok.size());
    buf[tok.size()] = '\0';
    char* end = nullptr;
    errno = 0;
    const long long v = std::strtoll(buf, &end, 10);
    if (errno != 0 || end != buf + tok.size()) {
      return Status::DataLoss("window manifest: bad integer");
    }
    return static_cast<int64_t>(v);
  }

  Result<double> NextF64() {
    WCOP_ASSIGN_OR_RETURN(std::string_view tok, Next());
    char buf[64];
    if (tok.size() >= sizeof(buf)) {
      return Status::DataLoss("window manifest: oversized token");
    }
    std::memcpy(buf, tok.data(), tok.size());
    buf[tok.size()] = '\0';
    char* end = nullptr;
    errno = 0;
    const double v = std::strtod(buf, &end);
    if (errno != 0 || end != buf + tok.size()) {
      return Status::DataLoss("window manifest: bad double");
    }
    return v;
  }

 private:
  std::string_view text_;
  size_t pos_ = 0;
};

constexpr std::string_view kMarker = "wcop-window-manifest";

}  // namespace

std::string EncodeWindowManifest(const WindowManifest& m) {
  std::string out;
  out.append(kMarker);
  out.push_back(' ');
  AppendU64(&out, m.config_fingerprint);
  AppendU64(&out, m.window_index);
  AppendF64(&out, m.window_start);
  AppendF64(&out, m.window_end);
  AppendU64(&out, m.input_fragments);
  AppendU64(&out, m.published_fragments);
  AppendU64(&out, m.suppressed_delta);
  AppendU64(&out, m.carried_in);
  AppendU64(&out, m.carried_out);
  AppendU64(&out, m.clusters);
  AppendF64(&out, m.ttd);
  AppendU64(&out, m.skipped ? 1 : 0);
  AppendU64(&out, m.degraded ? 1 : 0);
  AppendI64(&out, m.next_fragment_id);
  AppendU64(&out, m.input_crc);
  AppendU64(&out, m.input_size);
  AppendU64(&out, m.output_crc);
  AppendU64(&out, m.output_size);
  AppendU64(&out, m.carry_crc);
  AppendU64(&out, m.carry_size);
  out.push_back('\n');
  return out;
}

Result<WindowManifest> DecodeWindowManifest(std::string_view payload) {
  ManifestScanner scan(payload);
  WCOP_ASSIGN_OR_RETURN(std::string_view marker, scan.Next());
  if (marker != kMarker) {
    return Status::DataLoss("window manifest: bad marker");
  }
  WindowManifest m;
  WCOP_ASSIGN_OR_RETURN(m.config_fingerprint, scan.NextU64());
  WCOP_ASSIGN_OR_RETURN(m.window_index, scan.NextU64());
  WCOP_ASSIGN_OR_RETURN(m.window_start, scan.NextF64());
  WCOP_ASSIGN_OR_RETURN(m.window_end, scan.NextF64());
  WCOP_ASSIGN_OR_RETURN(m.input_fragments, scan.NextU64());
  WCOP_ASSIGN_OR_RETURN(m.published_fragments, scan.NextU64());
  WCOP_ASSIGN_OR_RETURN(m.suppressed_delta, scan.NextU64());
  WCOP_ASSIGN_OR_RETURN(m.carried_in, scan.NextU64());
  WCOP_ASSIGN_OR_RETURN(m.carried_out, scan.NextU64());
  WCOP_ASSIGN_OR_RETURN(m.clusters, scan.NextU64());
  WCOP_ASSIGN_OR_RETURN(m.ttd, scan.NextF64());
  WCOP_ASSIGN_OR_RETURN(uint64_t skipped, scan.NextU64());
  m.skipped = skipped != 0;
  WCOP_ASSIGN_OR_RETURN(uint64_t degraded, scan.NextU64());
  m.degraded = degraded != 0;
  WCOP_ASSIGN_OR_RETURN(m.next_fragment_id, scan.NextI64());
  WCOP_ASSIGN_OR_RETURN(m.input_crc, scan.NextU64());
  WCOP_ASSIGN_OR_RETURN(m.input_size, scan.NextU64());
  WCOP_ASSIGN_OR_RETURN(m.output_crc, scan.NextU64());
  WCOP_ASSIGN_OR_RETURN(m.output_size, scan.NextU64());
  WCOP_ASSIGN_OR_RETURN(m.carry_crc, scan.NextU64());
  WCOP_ASSIGN_OR_RETURN(m.carry_size, scan.NextU64());
  return m;
}

Status WriteWindowManifest(const std::string& path,
                           const WindowManifest& manifest,
                           const RetryPolicy* retry) {
  return WriteSnapshotFile(path, EncodeWindowManifest(manifest),
                           kWindowManifestVersion, retry);
}

Result<WindowManifest> ReadWindowManifest(const std::string& path) {
  WCOP_ASSIGN_OR_RETURN(Snapshot snapshot, ReadSnapshotFile(path));
  if (snapshot.format_version != kWindowManifestVersion) {
    return Status::DataLoss("window manifest " + path +
                            " has unsupported version " +
                            std::to_string(snapshot.format_version));
  }
  return DecodeWindowManifest(snapshot.payload);
}

Result<FileDigest> DigestFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::NotFound("no file at " + path);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) {
    return Status::IoError("read failed on " + path);
  }
  const std::string bytes = buffer.str();
  FileDigest digest;
  digest.crc = Crc32(bytes);
  digest.size = bytes.size();
  return digest;
}

}  // namespace pipeline
}  // namespace wcop
