#include "store/partitioner.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include "common/rng.h"
#include "geo/bounding_box.h"
#include "geo/point.h"

namespace wcop {
namespace store {
namespace {

// Index-only tests: the partitioner never touches trajectory blocks, so the
// fixtures are hand-built StoreEntry vectors.
StoreEntry Entry(int64_t id, double x, double y, double half = 50.0,
                 int k = 2, double delta = 100.0) {
  StoreEntry e;
  e.id = id;
  e.num_points = 10;
  e.k = k;
  e.delta = delta;
  e.min_x = x - half;
  e.max_x = x + half;
  e.min_y = y - half;
  e.max_y = y + half;
  e.t_min = 0.0;
  e.t_max = 100.0;
  return e;
}

BoundingBox EntryBox(const StoreEntry& e) {
  BoundingBox box;
  box.Extend(Point(e.min_x, e.min_y, e.t_min));
  box.Extend(Point(e.max_x, e.max_y, e.t_max));
  return box;
}

// Maps every source position to the shard that owns it; fails the test on
// dropped or duplicated members.
std::vector<size_t> OwnerOf(const Partition& partition, size_t n) {
  std::vector<size_t> owner(n, static_cast<size_t>(-1));
  for (const ShardSpec& shard : partition.shards) {
    for (size_t member : shard.members) {
      EXPECT_LT(member, n);
      EXPECT_EQ(owner[member], static_cast<size_t>(-1))
          << "member " << member << " assigned twice";
      owner[member] = shard.shard_index;
    }
  }
  for (size_t i = 0; i < n; ++i) {
    EXPECT_NE(owner[i], static_cast<size_t>(-1)) << "member " << i
                                                 << " dropped";
  }
  return owner;
}

TEST(PartitionerTest, EmptyIndexIsInvalid) {
  EXPECT_EQ(PartitionStoreIndex({}, {}).status().code(),
            StatusCode::kInvalidArgument);
  PartitionOptions negative;
  negative.overlap_margin = -1.0;
  EXPECT_EQ(PartitionStoreIndex({Entry(0, 0, 0)}, negative).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(PartitionerTest, SingleShardIsSourceOrder) {
  std::vector<StoreEntry> index;
  for (int i = 0; i < 20; ++i) {
    index.push_back(Entry(i, 100000.0 * i, 0.0));
  }
  PartitionOptions options;
  options.num_shards = 1;
  Result<Partition> p = PartitionStoreIndex(index, options);
  ASSERT_TRUE(p.ok()) << p.status();
  ASSERT_EQ(p->shards.size(), 1u);
  const ShardSpec& shard = p->shards[0];
  ASSERT_EQ(shard.members.size(), index.size());
  for (size_t i = 0; i < index.size(); ++i) {
    // Exactly 0..n-1 in order — the byte-identity guarantee rides on this.
    EXPECT_EQ(shard.members[i], i);
  }
}

// The safety invariant: any pair within the margin shares a shard. Scatter
// clusters of near-identical trajectories across a wide area with a small
// target shard size, then check every close pair.
TEST(PartitionerTest, PairsWithinMarginShareAShard) {
  std::vector<StoreEntry> index;
  Rng rng(13);
  int64_t id = 0;
  for (int cluster = 0; cluster < 12; ++cluster) {
    const double cx = rng.UniformReal(0.0, 500000.0);
    const double cy = rng.UniformReal(0.0, 500000.0);
    const int size = 2 + static_cast<int>(rng.UniformInt(0, 5));
    for (int i = 0; i < size; ++i) {
      // Members sit within ~150 m of the cluster centre; delta is 200, so
      // their pairwise MBR gaps are far below the resolved margin.
      index.push_back(Entry(id++, cx + rng.UniformReal(-150.0, 150.0),
                            cy + rng.UniformReal(-150.0, 150.0),
                            /*half=*/40.0, /*k=*/2, /*delta=*/200.0));
    }
  }
  PartitionOptions options;
  options.target_shard_size = 4;  // pressure toward many shards
  options.min_shard_size = 2;
  Result<Partition> p = PartitionStoreIndex(index, options);
  ASSERT_TRUE(p.ok()) << p.status();
  EXPECT_GT(p->shards.size(), 1u);
  EXPECT_GE(p->margin, 200.0);

  const std::vector<size_t> owner = OwnerOf(*p, index.size());
  for (size_t a = 0; a < index.size(); ++a) {
    for (size_t b = a + 1; b < index.size(); ++b) {
      const double gap = BoxGap(EntryBox(index[a]), EntryBox(index[b]));
      if (gap <= p->margin) {
        EXPECT_EQ(owner[a], owner[b])
            << "pair (" << a << ", " << b << ") with gap " << gap
            << " <= margin " << p->margin << " split across shards";
      }
    }
  }
}

TEST(PartitionerTest, OversizedCellSplitsRecursively) {
  // 256 well-separated trajectories with a coarse initial grid (large
  // target, small max): whole grid cells land far over max_shard_size and
  // the quadtree split must break them up (10 km spacing >> 2 * margin).
  std::vector<StoreEntry> index;
  int64_t id = 0;
  for (int gx = 0; gx < 16; ++gx) {
    for (int gy = 0; gy < 16; ++gy) {
      index.push_back(Entry(id++, 10000.0 * gx, 10000.0 * gy, /*half=*/20.0,
                            /*k=*/2, /*delta=*/50.0));
    }
  }
  PartitionOptions options;
  options.target_shard_size = 64;  // grid_dim 2: cells start with ~64 each
  options.max_shard_size = 16;
  options.min_shard_size = 2;
  Result<Partition> p = PartitionStoreIndex(index, options);
  ASSERT_TRUE(p.ok()) << p.status();
  EXPECT_GT(p->cells_split, 0u);
  EXPECT_GT(p->shards.size(), 4u);
  OwnerOf(*p, index.size());
  // No shard should remain wildly oversized: splitting is possible down to
  // single cells here, so the max-size bound holds up to margin-merging.
  for (const ShardSpec& shard : p->shards) {
    EXPECT_LE(shard.members.size(), 16u * 4u) << shard.shard_index;
  }
}

TEST(PartitionerTest, UndersizedComponentMergesIntoNearest) {
  // Three clumps: a big one at x=0, a tiny one (2 members, k=5) at x=200km
  // (its own grid cell), and a big one at x=500km. The tiny clump cannot
  // satisfy k=5 alone and must merge into the *nearest* neighbour (x=0).
  std::vector<StoreEntry> index;
  int64_t id = 0;
  for (int i = 0; i < 40; ++i) {
    index.push_back(Entry(id++, 0.0 + 30.0 * i, 0.0, /*half=*/20.0,
                          /*k=*/2, /*delta=*/100.0));
  }
  const size_t tiny_first = index.size();
  index.push_back(Entry(id++, 200000.0, 0.0, 20.0, /*k=*/5, 100.0));
  index.push_back(Entry(id++, 200050.0, 0.0, 20.0, /*k=*/5, 100.0));
  const size_t far_first = index.size();
  for (int i = 0; i < 40; ++i) {
    index.push_back(Entry(id++, 500000.0 + 30.0 * i, 0.0, /*half=*/20.0,
                          /*k=*/2, /*delta=*/100.0));
  }
  PartitionOptions options;
  options.target_shard_size = 20;  // grid_dim 3: the tiny clump is alone
  options.max_shard_size = 64;     // but the big clumps must not split
  options.min_shard_size = 2;      // k=5 still forces the merge
  Result<Partition> p = PartitionStoreIndex(index, options);
  ASSERT_TRUE(p.ok()) << p.status();
  EXPECT_GT(p->components_merged, 0u);
  const std::vector<size_t> owner = OwnerOf(*p, index.size());
  EXPECT_EQ(owner[tiny_first], owner[tiny_first + 1]);
  EXPECT_EQ(owner[tiny_first], owner[0]) << "merged away from nearest";
  EXPECT_NE(owner[tiny_first], owner[far_first]);
  // Every shard can satisfy its own members' max k.
  for (const ShardSpec& shard : p->shards) {
    EXPECT_GE(shard.members.size(),
              static_cast<size_t>(shard.max_k)) << shard.shard_index;
  }
}

TEST(PartitionerTest, MembersStayInSourceOrderAndMetadataIsExact) {
  std::vector<StoreEntry> index;
  for (int i = 0; i < 30; ++i) {
    index.push_back(Entry(i, 200000.0 * (i % 3), 0.0, 50.0, 2 + (i % 3),
                          50.0 + i));
  }
  PartitionOptions options;
  options.target_shard_size = 10;
  options.min_shard_size = 2;
  Result<Partition> p = PartitionStoreIndex(index, options);
  ASSERT_TRUE(p.ok()) << p.status();
  OwnerOf(*p, index.size());
  for (const ShardSpec& shard : p->shards) {
    EXPECT_TRUE(std::is_sorted(shard.members.begin(), shard.members.end()));
    int max_k = 0;
    double max_delta = 0.0;
    uint64_t points = 0;
    for (size_t m : shard.members) {
      max_k = std::max(max_k, static_cast<int>(index[m].k));
      max_delta = std::max(max_delta, index[m].delta);
      points += index[m].num_points;
    }
    EXPECT_EQ(shard.max_k, max_k);
    EXPECT_EQ(shard.max_delta, max_delta);
    EXPECT_EQ(shard.total_points, points);
  }
}

TEST(PartitionerTest, DeterministicAcrossCalls) {
  std::vector<StoreEntry> index;
  Rng rng(99);
  for (int i = 0; i < 200; ++i) {
    index.push_back(Entry(i, rng.UniformReal(0.0, 300000.0),
                          rng.UniformReal(0.0, 300000.0), 40.0,
                          2 + static_cast<int>(rng.UniformInt(0, 4)),
                          rng.UniformReal(20.0, 300.0)));
  }
  PartitionOptions options;
  options.target_shard_size = 16;
  Result<Partition> a = PartitionStoreIndex(index, options);
  Result<Partition> b = PartitionStoreIndex(index, options);
  ASSERT_TRUE(a.ok() && b.ok());
  ASSERT_EQ(a->shards.size(), b->shards.size());
  for (size_t i = 0; i < a->shards.size(); ++i) {
    EXPECT_EQ(a->shards[i].members, b->shards[i].members);
  }
  EXPECT_EQ(a->margin, b->margin);
  EXPECT_EQ(a->grid_cells, b->grid_cells);
}

TEST(PartitionerTest, BoxGapBasics) {
  BoundingBox a;
  a.Extend(Point(0.0, 0.0, 0.0));
  a.Extend(Point(10.0, 10.0, 0.0));
  BoundingBox b;
  b.Extend(Point(5.0, 5.0, 0.0));
  b.Extend(Point(20.0, 20.0, 0.0));
  EXPECT_EQ(BoxGap(a, b), 0.0);  // overlapping
  BoundingBox c;
  c.Extend(Point(13.0, 14.0, 0.0));
  c.Extend(Point(30.0, 30.0, 0.0));
  EXPECT_DOUBLE_EQ(BoxGap(a, c), 5.0);  // 3-4-5 corner gap
}

}  // namespace
}  // namespace store
}  // namespace wcop
