#include <gtest/gtest.h>

#include <algorithm>

#include "segment/convoy.h"
#include "test_util.h"

namespace wcop {
namespace {

using testing_util::MakeLine;
using testing_util::MakeLineWithReq;

/// Three trajectories moving east together for [0,100]s, then #2 splits off
/// north while #0 and #1 continue together until 200 s.
Dataset SplitGroup() {
  Dataset d;
  std::vector<Point> a, b, c;
  for (int i = 0; i <= 200; i += 5) {
    const double t = i;
    a.emplace_back(t * 2.0, 0.0, t);
    b.emplace_back(t * 2.0, 10.0, t);
    if (i <= 100) {
      c.emplace_back(t * 2.0, 20.0, t);
    } else {
      c.emplace_back(200.0 * 2.0 - 40.0, 20.0 + (t - 100.0) * 2.0, t);
    }
  }
  d.Add(Trajectory(0, a));
  d.Add(Trajectory(1, b));
  d.Add(Trajectory(2, c));
  for (Trajectory& t : d.mutable_trajectories()) {
    t.set_requirement(Requirement{2, 100.0});
  }
  return d;
}

ConvoyOptions SmallOptions() {
  ConvoyOptions options;
  options.min_objects = 2;
  options.eps = 30.0;
  options.min_duration_snapshots = 3;
  options.snapshot_interval = 10.0;
  return options;
}

TEST(ConvoyDiscoveryTest, FindsTheGroupTravellingTogether) {
  const Dataset d = SplitGroup();
  Result<std::vector<Convoy>> convoys = DiscoverConvoys(d, SmallOptions());
  ASSERT_TRUE(convoys.ok()) << convoys.status();
  ASSERT_FALSE(convoys->empty());
  // The dominant convoy holds {0,1} for the whole 200 s.
  bool found_pair = false;
  for (const Convoy& c : *convoys) {
    if (c.members.count(0) && c.members.count(1) &&
        c.end_time - c.start_time >= 150.0) {
      found_pair = true;
    }
  }
  EXPECT_TRUE(found_pair);
}

TEST(ConvoyDiscoveryTest, ThreeTogetherWhileClose) {
  const Dataset d = SplitGroup();
  ConvoyOptions options = SmallOptions();
  options.min_objects = 3;
  Result<std::vector<Convoy>> convoys = DiscoverConvoys(d, options);
  ASSERT_TRUE(convoys.ok());
  ASSERT_FALSE(convoys->empty());
  // All three move together only during roughly [0, 100].
  bool found_triple = false;
  for (const Convoy& c : *convoys) {
    if (c.members.size() == 3) {
      found_triple = true;
      EXPECT_LE(c.start_time, 20.0);
      EXPECT_NEAR(c.end_time, 100.0, 15.0);
    }
  }
  EXPECT_TRUE(found_triple);
}

TEST(ConvoyDiscoveryTest, NoConvoysWhenApart) {
  Dataset d;
  d.Add(MakeLine(0, 0, 0, 10, 0, 50));
  d.Add(MakeLine(1, 0, 100000, 10, 0, 50));
  Result<std::vector<Convoy>> convoys = DiscoverConvoys(d, SmallOptions());
  ASSERT_TRUE(convoys.ok());
  EXPECT_TRUE(convoys->empty());
}

TEST(ConvoyDiscoveryTest, DurationRequirementFilters) {
  const Dataset d = SplitGroup();
  ConvoyOptions options = SmallOptions();
  options.min_objects = 3;
  options.min_duration_snapshots = 100;  // longer than the triple coexists
  Result<std::vector<Convoy>> convoys = DiscoverConvoys(d, options);
  ASSERT_TRUE(convoys.ok());
  for (const Convoy& c : *convoys) {
    EXPECT_LT(c.members.size(), 3u);
  }
}

TEST(ConvoyDiscoveryTest, RejectsBadOptions) {
  const Dataset d = SplitGroup();
  ConvoyOptions options = SmallOptions();
  options.snapshot_interval = 0.0;
  EXPECT_FALSE(DiscoverConvoys(d, options).ok());
  options = SmallOptions();
  options.min_objects = 1;
  EXPECT_FALSE(DiscoverConvoys(d, options).ok());
}

TEST(ConvoySegmenterTest, CutsAtConvoyBoundaries) {
  const Dataset d = SplitGroup();
  ConvoySegmenter segmenter(SmallOptions());
  Result<Dataset> segmented = segmenter.Segment(d);
  ASSERT_TRUE(segmented.ok()) << segmented.status();
  // Trajectory 2 leaves the convoy at ~100 s, so it must be cut; the dataset
  // grows beyond the original 3 trajectories.
  EXPECT_GT(segmented->size(), 3u);
  EXPECT_EQ(segmented->TotalPoints(), d.TotalPoints());
  EXPECT_TRUE(segmented->Validate().ok());
}

TEST(ConvoySegmenterTest, MetadataInherited) {
  Dataset d = SplitGroup();
  d[2].set_object_id(9);
  ConvoySegmenter segmenter(SmallOptions());
  Result<Dataset> segmented = segmenter.Segment(d);
  ASSERT_TRUE(segmented.ok());
  bool saw_child_of_2 = false;
  for (const Trajectory& sub : segmented->trajectories()) {
    if (sub.parent_id() == 2) {
      saw_child_of_2 = true;
      EXPECT_EQ(sub.object_id(), 9);
      EXPECT_EQ(sub.requirement().k, 2);
    }
  }
  EXPECT_TRUE(saw_child_of_2);
}

TEST(ConvoySegmenterTest, NoConvoysMeansPassThrough) {
  Dataset d;
  d.Add(MakeLineWithReq(0, 0, 0, 10, 0, 50, 2, 50.0));
  d.Add(MakeLineWithReq(1, 0, 100000, 10, 0, 50, 2, 50.0));
  ConvoySegmenter segmenter(SmallOptions());
  Result<Dataset> segmented = segmenter.Segment(d);
  ASSERT_TRUE(segmented.ok());
  EXPECT_EQ(segmented->size(), 2u);
  EXPECT_EQ(segmented->TotalPoints(), d.TotalPoints());
}

TEST(ConvoyTest, DurationSnapshotsHelper) {
  Convoy c;
  c.start_time = 0.0;
  c.end_time = 50.0;
  EXPECT_EQ(c.DurationSnapshots(10.0), 6u);
  EXPECT_EQ(c.DurationSnapshots(0.0), 0u);
}

}  // namespace
}  // namespace wcop
