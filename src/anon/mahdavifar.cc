#include "anon/mahdavifar.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <map>
#include <numeric>

#include "anon/metrics.h"
#include "common/rng.h"
#include "common/stopwatch.h"
#include "distance/edr.h"

namespace wcop {

namespace {

/// Matching-point representative: resample every member onto the
/// centroid's timeline and average the positions per timestamp.
Trajectory MatchingPointRepresentative(const Dataset& dataset,
                                       const std::vector<size_t>& members,
                                       size_t centroid) {
  const Trajectory& center = dataset[centroid];
  std::vector<Point> rep;
  rep.reserve(center.size());
  for (const Point& cp : center.points()) {
    double sx = 0.0, sy = 0.0;
    for (size_t m : members) {
      const Point p = dataset[m].PositionAt(cp.t);
      sx += p.x;
      sy += p.y;
    }
    const double n = static_cast<double>(members.size());
    rep.push_back(Point(sx / n, sy / n, cp.t));
  }
  return Trajectory(center.id(), std::move(rep));
}

}  // namespace

Result<AnonymizationResult> RunMahdavifar(const Dataset& dataset,
                                          const MahdavifarOptions& options) {
  WCOP_RETURN_IF_ERROR(dataset.Validate());
  if (dataset.empty()) {
    return Status::InvalidArgument("cannot anonymize an empty dataset");
  }
  Stopwatch timer;
  const size_t n = dataset.size();
  const double radius = std::max(dataset.Bounds().HalfDiagonal(), 1.0);
  const size_t trash_max = static_cast<size_t>(
      options.trash_fraction * static_cast<double>(n));

  // EDR configuration matches the WCOP drivers so comparisons are fair.
  DistanceConfig config;
  config.kind = DistanceConfig::Kind::kEdr;
  config.edr_scale = radius;
  double delta_max = 0.0;
  for (const Trajectory& t : dataset.trajectories()) {
    delta_max = std::max(delta_max, t.requirement().delta);
  }
  if (delta_max <= 0.0) {
    delta_max = 0.03 * radius;
  }
  config.tolerance = EdrTolerance::FromDeltaMax(
      delta_max, dataset.ComputeStats().avg_speed);

  Rng rng(options.seed);
  double threshold = options.distance_threshold_fraction * radius;

  std::vector<AnonymityCluster> best_clusters;
  std::vector<size_t> best_trash;
  size_t best_trash_size = std::numeric_limits<size_t>::max();
  size_t rounds_used = 0;
  double threshold_used = threshold;

  for (size_t round = 0; round < options.max_rounds; ++round) {
    rounds_used = round + 1;
    // Group trajectory indices by privacy level, highest level first.
    std::map<int, std::vector<size_t>, std::greater<int>> by_level;
    for (size_t i = 0; i < n; ++i) {
      by_level[dataset[i].requirement().k].push_back(i);
    }
    std::vector<bool> clustered(n, false);
    std::vector<AnonymityCluster> clusters;
    std::vector<size_t> trash;

    for (auto& [level, group] : by_level) {
      std::shuffle(group.begin(), group.end(), rng.engine());
      for (size_t centroid : group) {
        if (clustered[centroid]) {
          continue;
        }
        AnonymityCluster cluster;
        cluster.pivot = centroid;
        cluster.members.push_back(centroid);
        cluster.k = dataset[centroid].requirement().k;

        // Candidates: all unclustered trajectories within the threshold,
        // from this and progressively lower privacy groups (the map is
        // already ordered highest-first, and candidates from *higher*
        // groups were consumed by earlier iterations or are admissible
        // anyway — the original algorithm searches lower groups).
        std::vector<std::pair<double, size_t>> candidates;
        for (size_t cand = 0; cand < n; ++cand) {
          if (cand == centroid || clustered[cand]) {
            continue;
          }
          const double d =
              ClusterDistance(dataset[centroid], dataset[cand], config);
          if (d <= threshold) {
            candidates.emplace_back(d, cand);
          }
        }
        std::sort(candidates.begin(), candidates.end());
        size_t next = 0;
        while (static_cast<size_t>(cluster.k) > cluster.members.size() &&
               next < candidates.size()) {
          const size_t cand = candidates[next++].second;
          cluster.members.push_back(cand);
          cluster.k = std::max(cluster.k, dataset[cand].requirement().k);
        }
        if (static_cast<size_t>(cluster.k) <= cluster.members.size()) {
          for (size_t m : cluster.members) {
            clustered[m] = true;
          }
          clusters.push_back(std::move(cluster));
        }
        // else: centroid stays unclustered; it may join another cluster.
      }
    }
    for (size_t i = 0; i < n; ++i) {
      if (!clustered[i]) {
        trash.push_back(i);
      }
    }
    if (trash.size() < best_trash_size) {
      best_trash_size = trash.size();
      best_clusters = clusters;
      best_trash = trash;
      threshold_used = threshold;
    }
    if (trash.size() <= trash_max) {
      break;
    }
    threshold *= options.threshold_growth;
  }
  if (best_trash_size > trash_max) {
    return Status::Unsatisfiable(
        "Mahdavifar clustering left " + std::to_string(best_trash_size) +
        " trajectories unclustered (trash_max " + std::to_string(trash_max) +
        ")");
  }

  // Anonymization: every member is replaced by the cluster representative
  // (full generalization), keeping its own id/metadata.
  AnonymizationResult result;
  result.clusters = best_clusters;
  std::vector<const Trajectory*> sanitized_of(n, nullptr);
  std::vector<Trajectory> storage;
  size_t published = 0;
  for (const AnonymityCluster& c : best_clusters) {
    published += c.members.size();
  }
  storage.reserve(published);

  double max_translation = 0.0;
  for (AnonymityCluster& cluster : result.clusters) {
    const Trajectory rep =
        MatchingPointRepresentative(dataset, cluster.members, cluster.pivot);
    // Achieved co-localization diameter: members collapse onto one curve,
    // so the published diameter is 0; report the *displacement* diameter
    // (how far members moved) as the cluster's effective delta.
    double max_disp = 0.0;
    for (size_t m : cluster.members) {
      Trajectory out(dataset[m].id(), rep.points(),
                     dataset[m].requirement());
      out.set_object_id(dataset[m].object_id());
      out.set_parent_id(dataset[m].parent_id());
      for (const Point& p : rep.points()) {
        max_disp = std::max(
            max_disp, SpatialDistance(dataset[m].PositionAt(p.t), p));
      }
      storage.push_back(std::move(out));
      sanitized_of[m] = &storage.back();
    }
    cluster.delta = max_disp * 2.0;
    max_translation = std::max(max_translation, max_disp);
  }
  double omega = max_translation;
  if (omega <= 0.0) {
    omega = radius;
  }

  AnonymizationReport& report = result.report;
  report.input_trajectories = n;
  report.num_clusters = result.clusters.size();
  report.trashed_trajectories = best_trash.size();
  for (size_t idx : best_trash) {
    result.trashed_ids.push_back(dataset[idx].id());
    report.trashed_points += dataset[idx].size();
  }
  report.discernibility =
      Discernibility(result.clusters, best_trash.size(), n);
  report.omega = omega;
  report.ttd = TotalTranslationDistortion(dataset, sanitized_of, omega);
  report.total_distortion = report.ttd;
  report.clustering_rounds = rounds_used;
  report.final_radius = threshold_used;

  std::vector<Trajectory> published_trajectories;
  published_trajectories.reserve(published);
  for (size_t i = 0; i < n; ++i) {
    if (sanitized_of[i] != nullptr) {
      published_trajectories.push_back(*sanitized_of[i]);
    }
  }
  result.sanitized = Dataset(std::move(published_trajectories));
  result.report.runtime_seconds = timer.ElapsedSeconds();
  return result;
}

}  // namespace wcop
