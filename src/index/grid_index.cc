#include "index/grid_index.h"

#include <cmath>
#include <string>

namespace wcop {

Result<GridIndex> GridIndex::Create(double cell_size) {
  if (!std::isfinite(cell_size) || cell_size <= 0.0) {
    return Status::InvalidArgument("grid cell size must be positive, got " +
                                   std::to_string(cell_size));
  }
  return GridIndex(cell_size);
}

GridIndex::GridIndex(double cell_size) : cell_size_(cell_size) {
  if (!(cell_size_ > 0.0)) {  // also catches NaN
    cell_size_ = 1.0;
  }
}

GridIndex::CellKey GridIndex::KeyFor(double x, double y) const {
  return CellKey{static_cast<int64_t>(std::floor(x / cell_size_)),
                 static_cast<int64_t>(std::floor(y / cell_size_))};
}

void GridIndex::AttachTelemetry(telemetry::Telemetry* telemetry) {
  if (telemetry == nullptr) {
    inserts_ = nullptr;
    range_queries_ = nullptr;
    candidates_scanned_ = nullptr;
    return;
  }
  inserts_ = telemetry->metrics().GetCounter("grid.inserts");
  range_queries_ = telemetry->metrics().GetCounter("grid.range_queries");
  candidates_scanned_ =
      telemetry->metrics().GetCounter("grid.candidates_scanned");
}

void GridIndex::Insert(size_t item, double x, double y) {
  cells_[KeyFor(x, y)].push_back(Entry{item, x, y});
  ++count_;
  telemetry::CounterAdd(inserts_);
}

void GridIndex::CandidateQuery(double x, double y, double radius,
                               std::vector<size_t>* out) const {
  const int64_t span = static_cast<int64_t>(std::ceil(radius / cell_size_));
  const CellKey center = KeyFor(x, y);
  telemetry::CounterAdd(range_queries_);
  size_t scanned = 0;
  for (int64_t dx = -span; dx <= span; ++dx) {
    for (int64_t dy = -span; dy <= span; ++dy) {
      auto it = cells_.find(CellKey{center.cx + dx, center.cy + dy});
      if (it == cells_.end()) {
        continue;
      }
      for (const Entry& e : it->second) {
        out->push_back(e.item);
      }
      scanned += it->second.size();
    }
  }
  telemetry::CounterAdd(candidates_scanned_, scanned);
}

std::vector<size_t> GridIndex::RangeQuery(double x, double y,
                                          double radius) const {
  std::vector<size_t> result;
  const double radius_sq = radius * radius;
  const int64_t span = static_cast<int64_t>(std::ceil(radius / cell_size_));
  const CellKey center = KeyFor(x, y);
  telemetry::CounterAdd(range_queries_);
  size_t scanned = 0;
  for (int64_t dx = -span; dx <= span; ++dx) {
    for (int64_t dy = -span; dy <= span; ++dy) {
      auto it = cells_.find(CellKey{center.cx + dx, center.cy + dy});
      if (it == cells_.end()) {
        continue;
      }
      scanned += it->second.size();
      for (const Entry& e : it->second) {
        const double ddx = e.x - x;
        const double ddy = e.y - y;
        if (ddx * ddx + ddy * ddy <= radius_sq) {
          result.push_back(e.item);
        }
      }
    }
  }
  telemetry::CounterAdd(candidates_scanned_, scanned);
  return result;
}

}  // namespace wcop
