#include "attack/adversary.h"

#include "anon/uncertainty.h"
#include "common/rng.h"

namespace wcop {
namespace attack {

Result<AdversaryModel> AdversaryPreset(const std::string& name) {
  AdversaryModel model;
  if (name.empty() || name == "moderate") {
    model.observations = 5;
    model.noise = 25.0;
    model.pmc_delta = 0.0;
    model.tau_seconds = 1800.0;
    model.epsilon = 250.0;
    return model;
  }
  if (name == "weak") {
    model.observations = 3;
    model.noise = 100.0;
    model.pmc_delta = 250.0;
    model.tau_seconds = 900.0;
    model.epsilon = 500.0;
    return model;
  }
  if (name == "strong") {
    model.observations = 10;
    model.noise = 0.0;
    model.pmc_delta = 0.0;
    model.tau_seconds = 3600.0;
    model.epsilon = 100.0;
    return model;
  }
  return Status::InvalidArgument("unknown adversary preset '" + name +
                                 "' (expected weak|moderate|strong)");
}

std::vector<Point> SampleObservations(const Trajectory& truth,
                                      const AdversaryModel& model,
                                      uint64_t stream) {
  Rng rng(MixSeed(model.seed, stream));
  // The uncertainty-aware adversary (Definition 1) observes a possible
  // motion curve of the victim, not the recorded polyline itself.
  Trajectory source = truth;
  if (model.pmc_delta > 0.0) {
    source = SamplePossibleMotionCurve(truth, model.pmc_delta, &rng);
  }
  std::vector<Point> observations;
  observations.reserve(model.observations);
  for (size_t o = 0; o < model.observations; ++o) {
    Point p = source[rng.UniformIndex(source.size())];
    if (model.noise > 0.0) {
      p.x += rng.Gaussian(0.0, model.noise);
      p.y += rng.Gaussian(0.0, model.noise);
    }
    observations.push_back(p);
  }
  return observations;
}

}  // namespace attack
}  // namespace wcop
