#include <gtest/gtest.h>

#include <filesystem>
#include <set>
#include <vector>

#include "anon/streaming.h"
#include "anon/verifier.h"
#include "common/failpoint.h"
#include "test_util.h"

namespace wcop {
namespace {

using testing_util::MakeLineWithReq;
using testing_util::SmallSynthetic;

// Three co-localized lines with `points_each` samples apiece, all inside
// one window of `window_seconds`.
Dataset ThreeCoTravellers(size_t points_each, double dt = 10.0) {
  std::vector<Trajectory> trajectories;
  for (int64_t id = 0; id < 3; ++id) {
    Trajectory t = MakeLineWithReq(id, 0.0, 30.0 * static_cast<double>(id),
                                   5.0, 0.0, points_each, /*k=*/2,
                                   /*delta=*/300.0, dt);
    t.set_object_id(id);
    trajectories.push_back(std::move(t));
  }
  return Dataset(std::move(trajectories));
}

TEST(StreamingTest, PublishesWindowFragments) {
  const Dataset d = SmallSynthetic(30, 60);
  StreamingOptions options;
  options.window_seconds = 200.0;  // SmallSynthetic samples every 10 s
  Result<StreamingResult> r = RunStreamingWcop(d, options);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_FALSE(r->sanitized.empty());
  EXPECT_GT(r->windows.size(), 0u);
  EXPECT_GT(r->total_clusters, 0u);
  EXPECT_TRUE(r->sanitized.Validate().ok());
}

TEST(StreamingTest, FragmentsLinkToSourceTrajectories) {
  const Dataset d = SmallSynthetic(20, 60);
  StreamingOptions options;
  options.window_seconds = 300.0;
  Result<StreamingResult> r = RunStreamingWcop(d, options);
  ASSERT_TRUE(r.ok());
  std::set<int64_t> sources;
  for (const Trajectory& fragment : r->sanitized.trajectories()) {
    const Trajectory* parent = d.FindById(fragment.parent_id());
    ASSERT_NE(parent, nullptr);
    sources.insert(fragment.parent_id());
    EXPECT_EQ(fragment.object_id(), parent->object_id());
    // Sanitized fragments carry their cluster pivot's timeline, so they can
    // overhang the parent's own samples slightly — but never a window span.
    EXPECT_LE(fragment.Duration(), options.window_seconds + 1e-6);
  }
  EXPECT_GT(sources.size(), 1u);
}

TEST(StreamingTest, WindowSummariesAccount) {
  const Dataset d = SmallSynthetic(25, 60);
  StreamingOptions options;
  options.window_seconds = 250.0;
  Result<StreamingResult> r = RunStreamingWcop(d, options);
  ASSERT_TRUE(r.ok());
  size_t published = 0;
  double ttd = 0.0;
  for (const StreamingWindowSummary& w : r->windows) {
    published += w.published_fragments;
    ttd += w.ttd;
    if (!w.skipped) {
      EXPECT_LE(w.published_fragments, w.input_fragments);
    }
  }
  EXPECT_EQ(published, r->sanitized.size());
  EXPECT_NEAR(ttd, r->total_ttd, 1e-6);
}

TEST(StreamingTest, SmallerWindowsFragmentMore) {
  const Dataset d = SmallSynthetic(20, 60);
  StreamingOptions coarse;
  coarse.window_seconds = 10000.0;  // everything in one window
  StreamingOptions fine;
  fine.window_seconds = 150.0;
  Result<StreamingResult> a = RunStreamingWcop(d, coarse);
  Result<StreamingResult> b = RunStreamingWcop(d, fine);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_GE(b->windows.size(), a->windows.size());
}

TEST(StreamingTest, RejectsBadOptions) {
  const Dataset d = SmallSynthetic(10, 30);
  StreamingOptions options;
  options.window_seconds = 0.0;
  EXPECT_FALSE(RunStreamingWcop(d, options).ok());
  EXPECT_FALSE(RunStreamingWcop(Dataset(), {}).ok());
}

// Boundary regression: a fragment with *exactly* min_fragment_points must
// be kept (only strictly smaller fragments are suppressed).
TEST(StreamingTest, FragmentWithExactlyMinPointsIsKept) {
  const Dataset d = ThreeCoTravellers(/*points_each=*/4);  // t in [0, 30]
  StreamingOptions options;
  options.window_seconds = 40.0;  // one window holding all four samples
  options.min_fragment_points = 4;
  Result<StreamingResult> r = RunStreamingWcop(d, options);
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_EQ(r->windows.size(), 1u);
  EXPECT_EQ(r->windows[0].input_fragments, 3u);
  EXPECT_EQ(r->suppressed_fragments, 0u);

  // One more required point and the same fragments are all suppressed.
  options.min_fragment_points = 5;
  Result<StreamingResult> stricter = RunStreamingWcop(d, options);
  ASSERT_TRUE(stricter.ok()) << stricter.status();
  EXPECT_TRUE(stricter->windows.empty());
  EXPECT_EQ(stricter->suppressed_fragments, 3u);
  EXPECT_TRUE(stricter->sanitized.empty());
}

// min_fragment_points = 1 admits single-point fragments (the old clamp to 2
// silently dropped them); 0 is treated as 1.
TEST(StreamingTest, SinglePointFragmentsKeptWhenMinIsOne) {
  const Dataset d = ThreeCoTravellers(/*points_each=*/1);
  for (const size_t min_points : {size_t{1}, size_t{0}}) {
    StreamingOptions options;
    options.window_seconds = 10.0;
    options.min_fragment_points = min_points;
    Result<StreamingResult> r = RunStreamingWcop(d, options);
    ASSERT_TRUE(r.ok()) << r.status();
    ASSERT_EQ(r->windows.size(), 1u) << "min=" << min_points;
    EXPECT_EQ(r->windows[0].input_fragments, 3u) << "min=" << min_points;
  }
}

// Resume regression: suppressed_fragments is restored from the checkpoint,
// not re-counted, so an interrupted-and-resumed stream reports the same
// accounting as an uninterrupted one.
TEST(StreamingTest, SuppressedAccountingSurvivesResume) {
  // Three healthy co-travellers over [0, 290] plus a single-point straggler
  // in the first window — suppressed there, and the suppression count rides
  // into the first checkpoint.
  std::vector<Trajectory> trajectories;
  for (int64_t id = 0; id < 3; ++id) {
    Trajectory t = MakeLineWithReq(id, 0.0, 30.0 * static_cast<double>(id),
                                   5.0, 0.0, /*n=*/30, /*k=*/2,
                                   /*delta=*/300.0, /*dt=*/10.0);
    t.set_object_id(id);
    trajectories.push_back(std::move(t));
  }
  Trajectory straggler =
      MakeLineWithReq(3, 0.0, 90.0, 5.0, 0.0, /*n=*/1, /*k=*/2,
                      /*delta=*/300.0, /*dt=*/10.0);
  straggler.set_object_id(3);
  trajectories.push_back(std::move(straggler));
  const Dataset d(std::move(trajectories));

  StreamingOptions options;
  options.window_seconds = 100.0;
  Result<StreamingResult> baseline = RunStreamingWcop(d, options);
  ASSERT_TRUE(baseline.ok()) << baseline.status();
  ASSERT_GT(baseline->suppressed_fragments, 0u);

  const std::string checkpoint =
      (std::filesystem::path(::testing::TempDir()) /
       "streaming_suppressed_resume.ckpt").string();
  std::filesystem::remove(checkpoint);
  std::filesystem::remove(checkpoint + ".prev");
  options.checkpoint_path = checkpoint;
  {
    ScopedFailpoint fp("streaming.checkpoint_saved",
                       Status::Internal("simulated crash"), /*max_fires=*/1);
    ASSERT_FALSE(RunStreamingWcop(d, options).ok());
  }
  Result<StreamingResult> resumed = RunStreamingWcop(d, options);
  ASSERT_TRUE(resumed.ok()) << resumed.status();
  EXPECT_TRUE(resumed->resumed);
  EXPECT_EQ(resumed->suppressed_fragments, baseline->suppressed_fragments);
  EXPECT_EQ(resumed->sanitized.size(), baseline->sanitized.size());
  std::filesystem::remove(checkpoint);
  std::filesystem::remove(checkpoint + ".prev");
}

}  // namespace
}  // namespace wcop
