#include "anon/metrics.h"

#include <algorithm>
#include <cmath>

namespace wcop {

double TranslationDistortion(const Trajectory& original,
                             const Trajectory& sanitized, double omega) {
  if (sanitized.empty()) {
    return static_cast<double>(original.size()) * omega;
  }
  double total = 0.0;
  for (const Point& p : sanitized.points()) {
    total += SpatialDistance(original.PositionAt(p.t), p);
  }
  return total;
}

double TotalTranslationDistortion(
    const Dataset& original,
    const std::vector<const Trajectory*>& sanitized_of, double omega) {
  double total = 0.0;
  for (size_t i = 0; i < original.size(); ++i) {
    const Trajectory* sanitized =
        i < sanitized_of.size() ? sanitized_of[i] : nullptr;
    if (sanitized == nullptr) {
      total += static_cast<double>(original[i].size()) * omega;
    } else {
      total += TranslationDistortion(original[i], *sanitized, omega);
    }
  }
  return total;
}

double Discernibility(const std::vector<AnonymityCluster>& clusters,
                      size_t trash_size, size_t dataset_size) {
  double total = 0.0;
  for (const AnonymityCluster& c : clusters) {
    const double size = static_cast<double>(c.members.size());
    total += size * size;
  }
  total += static_cast<double>(trash_size) * static_cast<double>(dataset_size);
  return total;
}

double Demandingness(const Requirement& req, int k_max, double delta_min,
                     double w1, double w2) {
  double value = 0.0;
  if (k_max >= 1) {
    value += w1 * static_cast<double>(req.k) / static_cast<double>(k_max);
  }
  if (req.delta > 0.0 && delta_min > 0.0) {
    value += w2 * delta_min / req.delta;
  }
  return value;
}

std::vector<double> DatasetDemandingness(const Dataset& dataset, double w1,
                                         double w2) {
  const int k_max = dataset.MaxK();
  const double delta_min = dataset.MinDelta();
  std::vector<double> out;
  out.reserve(dataset.size());
  for (const Trajectory& t : dataset.trajectories()) {
    out.push_back(Demandingness(t.requirement(), k_max, delta_min, w1, w2));
  }
  return out;
}

double EditCost(double demandingness, double threshold_demandingness,
                double max_demandingness) {
  const double denom = max_demandingness - threshold_demandingness;
  if (denom <= 0.0) {
    return 0.0;  // Eq. 4's "otherwise" branch
  }
  return std::clamp((demandingness - threshold_demandingness) / denom, 0.0,
                    1.0);
}

double EditingDistortion(size_t trajectory_points, double omega,
                         double edit_cost) {
  return static_cast<double>(trajectory_points) * omega * edit_cost;
}

}  // namespace wcop
