file(REMOVE_RECURSE
  "libwcop_geo.a"
)
