#include "common/snapshot.h"

#include <fcntl.h>
#include <unistd.h>

#include <array>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>

#include "common/artifact_registry.h"
#include "common/failpoint.h"

namespace wcop {

namespace {

constexpr char kMagic[8] = {'W', 'C', 'O', 'P', 'S', 'N', 'P', '1'};
constexpr size_t kHeaderSize = 8 + 4 + 8 + 4;

void PutU32(char* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  }
}

void PutU64(char* out, uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    out[i] = static_cast<char>((v >> (8 * i)) & 0xff);
  }
}

uint32_t GetU32(const char* in) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<unsigned char>(in[i])) << (8 * i);
  }
  return v;
}

uint64_t GetU64(const char* in) {
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<unsigned char>(in[i])) << (8 * i);
  }
  return v;
}

Status WriteSnapshotOnce(const std::string& path, std::string_view payload,
                         uint32_t format_version) {
  const std::string tmp = path + ".tmp";
  // Registered for the duration of the write so a concurrent stale-artifact
  // sweep of this directory never reclaims the file mid-flight.
  const ScopedLiveArtifact live(tmp);
  WCOP_FAILPOINT("snapshot.open_temp");
  const int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status::IoError("cannot open " + tmp + ": " +
                           std::strerror(errno));
  }
  char header[kHeaderSize];
  std::memcpy(header, kMagic, 8);
  PutU32(header + 8, format_version);
  PutU64(header + 12, payload.size());
  PutU32(header + 20, Crc32(payload));

  auto write_all = [&](const char* data, size_t n) -> Status {
    while (n > 0) {
      const ssize_t w = ::write(fd, data, n);
      if (w < 0) {
        if (errno == EINTR) {
          continue;
        }
        return Status::IoError("write failed on " + tmp + ": " +
                               std::strerror(errno));
      }
      data += w;
      n -= static_cast<size_t>(w);
    }
    return Status::OK();
  };

  // Failpoints fire inside lambdas so an injected Status routes through the
  // common cleanup below (the fd must close before we propagate).
  Status status = [&]() -> Status {
    WCOP_FAILPOINT("snapshot.write");
    return Status::OK();
  }();
  if (status.ok()) {
    status = write_all(header, kHeaderSize);
  }
  if (status.ok() && !payload.empty()) {
    status = write_all(payload.data(), payload.size());
  }
  if (status.ok()) {
    status = [&]() -> Status {
      WCOP_FAILPOINT("snapshot.fsync");
      return Status::OK();
    }();
  }
  if (status.ok() && ::fsync(fd) != 0) {
    status = Status::IoError("fsync failed on " + tmp + ": " +
                             std::strerror(errno));
  }
  if (::close(fd) != 0 && status.ok()) {
    status = Status::IoError("close failed on " + tmp + ": " +
                             std::strerror(errno));
  }
  if (!status.ok()) {
    return status;
  }
  WCOP_FAILPOINT("snapshot.rename");
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    return Status::IoError("rename " + tmp + " -> " + path + " failed: " +
                           std::strerror(errno));
  }
  return Status::OK();
}

Result<Snapshot> ReadSnapshotOnce(const std::string& path) {
  WCOP_FAILPOINT("snapshot.read");
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) {
    return Status::NotFound("no snapshot at " + path);
  }
  const std::streamsize file_size = in.tellg();
  in.seekg(0);
  if (file_size < static_cast<std::streamsize>(kHeaderSize)) {
    return Status::DataLoss("snapshot " + path + " shorter than its header");
  }
  char header[kHeaderSize];
  in.read(header, kHeaderSize);
  if (in.gcount() != static_cast<std::streamsize>(kHeaderSize)) {
    return Status::DataLoss("snapshot " + path + " shorter than its header");
  }
  if (std::memcmp(header, kMagic, 8) != 0) {
    return Status::DataLoss("snapshot " + path + " has a bad magic header");
  }
  Snapshot snapshot;
  snapshot.format_version = GetU32(header + 8);
  const uint64_t payload_size = GetU64(header + 12);
  const uint32_t expected_crc = GetU32(header + 20);
  // Validate the claimed size against the file before allocating: a corrupt
  // length field must not become a multi-gigabyte allocation (and any
  // size mismatch is data loss anyway — truncated payload or trailing
  // bytes from a torn write).
  const uint64_t available = static_cast<uint64_t>(file_size) - kHeaderSize;
  if (payload_size != available) {
    return Status::DataLoss("snapshot " + path + " payload size mismatch (" +
                            "header claims " + std::to_string(payload_size) +
                            " bytes, file holds " + std::to_string(available) +
                            ")");
  }
  snapshot.payload.resize(payload_size);
  if (payload_size > 0) {
    in.read(snapshot.payload.data(),
            static_cast<std::streamsize>(payload_size));
    if (in.gcount() != static_cast<std::streamsize>(payload_size)) {
      return Status::DataLoss("snapshot " + path + " payload truncated (" +
                              std::to_string(in.gcount()) + " of " +
                              std::to_string(payload_size) + " bytes)");
    }
  }
  const uint32_t actual_crc = Crc32(snapshot.payload);
  if (actual_crc != expected_crc) {
    return Status::DataLoss("snapshot " + path + " CRC mismatch (stored " +
                            std::to_string(expected_crc) + ", computed " +
                            std::to_string(actual_crc) + ")");
  }
  return snapshot;
}

}  // namespace

uint32_t Crc32(std::string_view data) {
  // Table-driven CRC-32 (reflected 0x04C11DB7, i.e. 0xEDB88320), the
  // zlib/PNG checksum. The table is built once, lazily.
  static const std::array<uint32_t, 256> table = [] {
    std::array<uint32_t, 256> t{};
    for (uint32_t i = 0; i < 256; ++i) {
      uint32_t c = i;
      for (int bit = 0; bit < 8; ++bit) {
        c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
      }
      t[i] = c;
    }
    return t;
  }();
  uint32_t crc = 0xFFFFFFFFu;
  for (const char ch : data) {
    crc = table[(crc ^ static_cast<unsigned char>(ch)) & 0xffu] ^ (crc >> 8);
  }
  return crc ^ 0xFFFFFFFFu;
}

Status WriteSnapshotFile(const std::string& path, std::string_view payload,
                         uint32_t format_version, const RetryPolicy* retry) {
  if (retry == nullptr) {
    return WriteSnapshotOnce(path, payload, format_version);
  }
  return RetryCall(*retry, [&]() {
    return WriteSnapshotOnce(path, payload, format_version);
  });
}

Result<Snapshot> ReadSnapshotFile(const std::string& path,
                                  const RetryPolicy* retry) {
  if (retry == nullptr) {
    return ReadSnapshotOnce(path);
  }
  return RetryResultCall<Snapshot>(
      *retry, [&]() { return ReadSnapshotOnce(path); });
}

Status WriteSnapshotRotating(const std::string& path, std::string_view payload,
                             uint32_t format_version,
                             const RetryPolicy* retry) {
  // Keep the previous good snapshot before the new one replaces it. The
  // rotation itself need not be atomic: every interleaving of a crash
  // leaves at least one of {path, path.prev} a complete valid snapshot,
  // which is exactly what ReadSnapshotWithFallback recovers.
  const std::string prev = path + ".prev";
  if (::access(path.c_str(), F_OK) == 0) {
    if (std::rename(path.c_str(), prev.c_str()) != 0) {
      return Status::IoError("rotate " + path + " -> " + prev + " failed: " +
                             std::strerror(errno));
    }
  }
  return WriteSnapshotFile(path, payload, format_version, retry);
}

Result<Snapshot> ReadSnapshotWithFallback(const std::string& path,
                                          const RetryPolicy* retry) {
  Result<Snapshot> current = ReadSnapshotFile(path, retry);
  if (current.ok()) {
    return current;
  }
  Result<Snapshot> previous = ReadSnapshotFile(path + ".prev", retry);
  if (previous.ok()) {
    return previous;
  }
  // Surface the more informative failure: corruption beats absence.
  if (current.status().code() == StatusCode::kNotFound &&
      previous.status().code() != StatusCode::kNotFound) {
    return previous.status();
  }
  return current.status();
}

}  // namespace wcop
