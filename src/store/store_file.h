#ifndef WCOP_STORE_STORE_FILE_H_
#define WCOP_STORE_STORE_FILE_H_

/// Out-of-core trajectory store — the on-disk substrate of the sharded
/// anonymization pipeline (DESIGN.md "Dataset store & sharding").
///
/// A store file holds one trajectory per block plus a metadata-rich index,
/// so a reader can partition or randomly access a multi-gigabyte dataset
/// without ever materializing it. Layout (all integers little-endian, all
/// doubles %.17g text in blocks / raw IEEE-754 bits in the index):
///
///   [0..8)    magic "WCOPSTR1"
///   [8..12)   format version (u32)
///   [12..16)  reserved (u32, zero)
///   blocks    one per trajectory, appended in write order:
///               u32 payload_size | u32 crc32(payload) | payload
///             payload is the text record of AppendTrajectoryRecord():
///               "traj <id> <object_id> <parent_id> <k> <delta> <n>\n"
///               then n lines "<x> <y> <t>\n", doubles printed %.17g so the
///               strtod round-trip is bit-exact.
///   index     "WCOPSIDX" | u64 count | count * 104-byte entries | u32 crc
///             each entry: id, offset, block_size, num_points (8 bytes
///             each), then k, delta, MBR min_x/min_y/max_x/max_y,
///             t_min, t_max as raw 8-byte values. The index alone carries
///             everything the spatio-temporal partitioner needs.
///   footer    u64 index_offset | magic "WCOPSEND"   (last 16 bytes)
///
/// Corruption anywhere (bit flip, truncation, torn write) surfaces as
/// kDataLoss — per-block CRCs mean a damaged block never yields a torn
/// trajectory, and undamaged blocks stay readable. Writes go to
/// `<path>.tmp` and rename into place on Finish(), matching the
/// common/snapshot atomicity conventions.

#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/artifact_registry.h"
#include "common/result.h"
#include "common/run_context.h"
#include "common/status.h"
#include "common/telemetry.h"
#include "traj/dataset.h"
#include "traj/trajectory.h"

namespace wcop {
namespace store {

/// Store file format version written by this build.
inline constexpr uint32_t kStoreFormatVersion = 1;

/// One index row: everything the partitioner and the random-access reader
/// need to know about a trajectory without touching its block.
struct StoreEntry {
  int64_t id = 0;
  uint64_t offset = 0;      ///< file offset of the block header
  uint64_t block_size = 0;  ///< 8-byte block header + payload
  uint64_t num_points = 0;
  int64_t k = 2;            ///< privacy requirement k_i
  double delta = 0.0;       ///< quality requirement delta_i (metres)
  double min_x = 0.0, min_y = 0.0, max_x = 0.0, max_y = 0.0;  ///< MBR
  double t_min = 0.0, t_max = 0.0;  ///< trajectory lifetime
};

/// Appends the %.17g-lossless text record of `t` to `*out`. Exposed so the
/// shard checkpoint codec can reuse the exact block encoding.
void AppendTrajectoryRecord(std::string* out, const Trajectory& t);

/// Parses one record starting at `*pos` in `payload`; advances `*pos` past
/// it. Returns kDataLoss on any malformed content.
Result<Trajectory> ParseTrajectoryRecord(std::string_view payload,
                                         size_t* pos);

/// Streaming store writer: Append() trajectories one at a time (nothing but
/// the index row is retained in memory), then Finish() writes the index and
/// footer and atomically renames the file into place. An unfinished writer
/// removes its temp file on destruction, so a crash or early error never
/// leaves a partial store at the target path.
class TrajectoryStoreWriter {
 public:
  static Result<TrajectoryStoreWriter> Create(const std::string& path);

  TrajectoryStoreWriter(TrajectoryStoreWriter&&) = default;
  TrajectoryStoreWriter& operator=(TrajectoryStoreWriter&&) = default;
  ~TrajectoryStoreWriter();

  /// Validates and appends one trajectory block.
  Status Append(const Trajectory& t);

  /// Writes index + footer, fsyncs, and renames `<path>.tmp` -> `path`.
  /// The writer is closed afterwards regardless of the outcome.
  Status Finish();

  size_t trajectories_written() const { return index_.size(); }
  const std::string& path() const { return path_; }

 private:
  TrajectoryStoreWriter() = default;

  struct FileCloser {
    void operator()(std::FILE* f) const {
      if (f != nullptr) {
        std::fclose(f);
      }
    }
  };

  std::string path_;
  std::string tmp_path_;
  // Marks the temp file live for the duration of the write so a concurrent
  // stale-artifact sweep never reclaims it from under the writer.
  ScopedLiveArtifact live_tmp_;
  std::unique_ptr<std::FILE, FileCloser> file_;
  std::vector<StoreEntry> index_;
  uint64_t offset_ = 0;
  bool finished_ = false;
};

/// Random-access store reader. Open() loads and verifies only the header
/// and the index; trajectory blocks are read (and CRC-checked) on demand,
/// so memory stays proportional to the index, not the dataset. All Read*
/// methods are thread-safe (reads are serialized on an internal mutex).
class TrajectoryStoreReader {
 public:
  static Result<TrajectoryStoreReader> Open(const std::string& path);

  size_t size() const { return index_.size(); }
  const std::vector<StoreEntry>& index() const { return index_; }
  const std::string& path() const { return path_; }
  uint64_t total_points() const { return total_points_; }

  /// Reads the trajectory at index position `i` (write order).
  Result<Trajectory> Read(size_t i) const;

  /// Random access by trajectory id; kNotFound when absent.
  Result<Trajectory> ReadById(int64_t id) const;

  /// Materializes the whole store (the monolithic path; the sharded
  /// pipeline reads per-shard subsets instead). Polls `context` every few
  /// hundred blocks.
  Result<Dataset> ReadAll(const RunContext* context = nullptr) const;

 private:
  TrajectoryStoreReader() = default;

  struct FileCloser {
    void operator()(std::FILE* f) const {
      if (f != nullptr) {
        std::fclose(f);
      }
    }
  };

  std::string path_;
  std::unique_ptr<std::FILE, FileCloser> file_;
  std::vector<StoreEntry> index_;
  std::unordered_map<int64_t, size_t> by_id_;
  uint64_t total_points_ = 0;
  // unique_ptr keeps the reader movable (Result<T> requires it).
  mutable std::unique_ptr<std::mutex> mutex_;
};

/// Writes every trajectory of `dataset` to a store file at `path`
/// (Create + Append* + Finish).
Status WriteDatasetStore(const Dataset& dataset, const std::string& path);

/// Stale-artifact janitor: removes every orphaned `*.tmp` entry in `dir`
/// and returns how many were swept. Every durable writer in the codebase
/// (snapshot envelope, store writer, the service's atomic output publish)
/// follows the write-`<path>.tmp` → fsync → rename protocol, so after a
/// crash anything still named `*.tmp` is an orphan of an interrupted
/// write — never a complete artifact. Temp files registered in the
/// process-wide live-artifact registry (common/artifact_registry.h) belong
/// to an in-flight writer and are skipped, so sweeping a directory a live
/// job is publishing into is safe: only true orphans are reclaimed. A
/// missing `dir` is not an error (nothing to sweep). Each removal is logged
/// and counted on the `janitor.stale_removed` telemetry counter; skipped
/// live files are counted on `janitor.live_skipped`.
Result<size_t> SweepStaleArtifacts(const std::string& dir,
                                   telemetry::Telemetry* telemetry = nullptr);

}  // namespace store
}  // namespace wcop

#endif  // WCOP_STORE_STORE_FILE_H_
