file(REMOVE_RECURSE
  "CMakeFiles/trajectory_store_test.dir/trajectory_store_test.cc.o"
  "CMakeFiles/trajectory_store_test.dir/trajectory_store_test.cc.o.d"
  "trajectory_store_test"
  "trajectory_store_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trajectory_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
