#include "common/signals.h"

#include <signal.h>

#include <atomic>
#include <mutex>

namespace wcop {

namespace {

std::atomic<int> g_last_signal{0};

/// The token the handler trips. RequestCancellation() is a shared_ptr
/// dereference plus one relaxed atomic store — no allocation, no locks —
/// so calling it from a signal handler is safe. The pointer itself is
/// published before the handlers are installed and only swapped by the
/// test-only reset, never freed (copies may outlive a reset).
std::atomic<CancellationToken*> g_token{nullptr};

std::mutex g_install_mu;
bool g_handlers_installed = false;

extern "C" void HandleShutdownSignal(int signo) {
  int expected = 0;
  if (!g_last_signal.compare_exchange_strong(expected, signo)) {
    // Second signal: the cooperative path is apparently wedged. Restore the
    // default disposition and re-raise so the process actually dies.
    ::signal(signo, SIG_DFL);
    ::raise(signo);
    return;
  }
  if (CancellationToken* token =
          g_token.load(std::memory_order_acquire);
      token != nullptr) {
    token->RequestCancellation();
  }
}

}  // namespace

CancellationToken InstallShutdownSignalHandlers() {
  std::lock_guard<std::mutex> lock(g_install_mu);
  if (g_token.load(std::memory_order_relaxed) == nullptr) {
    g_token.store(new CancellationToken(), std::memory_order_release);
  }
  if (!g_handlers_installed) {
    struct sigaction action = {};
    action.sa_handler = &HandleShutdownSignal;
    ::sigemptyset(&action.sa_mask);
    action.sa_flags = 0;  // no SA_RESTART: blocked accept()/read() wake up
    ::sigaction(SIGINT, &action, nullptr);
    ::sigaction(SIGTERM, &action, nullptr);
    g_handlers_installed = true;
  }
  return *g_token.load(std::memory_order_relaxed);
}

bool ShutdownSignalReceived() {
  return g_last_signal.load(std::memory_order_relaxed) != 0;
}

int LastShutdownSignal() {
  return g_last_signal.load(std::memory_order_relaxed);
}

void ResetShutdownSignalStateForTesting() {
  std::lock_guard<std::mutex> lock(g_install_mu);
  g_last_signal.store(0, std::memory_order_relaxed);
  // Old token copies stay tripped; future installs hand out a fresh flag.
  // The previous token object leaks by design — a handler racing the reset
  // may still dereference it.
  g_token.store(new CancellationToken(), std::memory_order_release);
}

}  // namespace wcop
