// Scenario: a mobility provider publishes traces of a user base in which a
// minority is privacy-conscious (journalists, clinicians: high k, tight
// delta) while the majority accepts relaxed settings. A universal-(k,delta)
// publisher must adopt the strictest preference for everyone; the WCOP
// personalized pipeline honours each preference individually.
//
// The example contrasts WCOP-NV (universal) with WCOP-CT (personalized) on
// the same dataset and reports the over-anonymization the universal policy
// causes.
//
// Run:  ./personalized_publishing [--trajectories=80] [--strict=0.15]

#include <cstdio>
#include <iostream>

#include "anon/wcop.h"
#include "common/arg_parser.h"
#include "common/table_printer.h"
#include "data/synthetic.h"

using namespace wcop;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const size_t n = static_cast<size_t>(args.GetInt("trajectories", 80));
  const double strict_fraction = args.GetDouble("strict", 0.15);

  SyntheticOptions gen;
  gen.seed = 21;
  gen.num_trajectories = n;
  gen.num_users = n / 2 + 1;
  gen.points_per_trajectory = 80;
  gen.region_half_diagonal = 15000.0;
  gen.dataset_duration_days = 30.0;
  Result<Dataset> maybe_dataset = GenerateSyntheticGeoLife(gen);
  if (!maybe_dataset.ok()) {
    std::cerr << maybe_dataset.status() << "\n";
    return 1;
  }
  Dataset dataset = std::move(maybe_dataset).value();

  RequirementProfile profile;
  profile.strict_fraction = strict_fraction;
  profile.strict_k = 8;
  profile.strict_delta = 80.0;
  profile.relaxed_k = 2;
  profile.relaxed_delta = 400.0;
  Rng rng(5);
  AssignProfileRequirements(&dataset, profile, &rng);

  size_t strict_users = 0;
  for (const Trajectory& t : dataset.trajectories()) {
    if (t.requirement().k == profile.strict_k) {
      ++strict_users;
    }
  }
  std::printf("dataset: %zu trajectories, %zu strict users (k=%d, d=%.0fm), "
              "%zu relaxed (k=%d, d=%.0fm)\n\n",
              dataset.size(), strict_users, profile.strict_k,
              profile.strict_delta, dataset.size() - strict_users,
              profile.relaxed_k, profile.relaxed_delta);

  WcopOptions options;
  options.seed = 17;
  Result<AnonymizationResult> nv = RunWcopNv(dataset, options);
  Result<AnonymizationResult> ct = RunWcopCt(dataset, options);
  if (!nv.ok() || !ct.ok()) {
    std::cerr << "anonymization failed: "
              << (!nv.ok() ? nv.status() : ct.status()) << "\n";
    return 1;
  }

  TablePrinter table({"metric", "WCOP-NV (universal)", "WCOP-CT (personal)"});
  auto row = [&](const char* name, double a, double b) {
    table.AddRow({name, FormatSignificant(a), FormatSignificant(b)});
  };
  row("clusters", nv->report.num_clusters, ct->report.num_clusters);
  row("suppressed trajectories", nv->report.trashed_trajectories,
      ct->report.trashed_trajectories);
  row("total distortion", nv->report.total_distortion,
      ct->report.total_distortion);
  row("discernibility (lower=better)", nv->report.discernibility,
      ct->report.discernibility);
  row("created points", nv->report.created_points,
      ct->report.created_points);
  row("deleted points", nv->report.deleted_points,
      ct->report.deleted_points);
  table.Print(std::cout);

  const double saved = nv->report.total_distortion > 0.0
                           ? 100.0 * (1.0 - ct->report.total_distortion /
                                                nv->report.total_distortion)
                           : 0.0;
  std::printf("\npersonalization avoided %.1f%% of the universal policy's "
              "distortion while honouring every preference\n", saved);
  return 0;
}
