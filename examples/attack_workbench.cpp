// Adversary workbench: how strong must an attacker be to re-identify users
// in the published dataset? Sweeps the three adversary knobs of the attack
// model — number of observations, observation noise, and location
// uncertainty (Definition 1 possible-motion-curve observations) — against
// both the raw data and its WCOP-CT anonymization.
//
// Run:  ./attack_workbench [--trajectories=60] [--kmax=5]

#include <cstdio>
#include <iostream>

#include "anon/wcop.h"
#include "common/arg_parser.h"
#include "common/table_printer.h"
#include "data/synthetic.h"

using namespace wcop;

namespace {

/// Returns whether the row could be computed; a failed attack run is
/// reported on stderr instead of silently dropping the row.
bool SweepRow(TablePrinter* table, const std::string& label,
              const Dataset& original, const Dataset& raw,
              const Dataset& anonymized, const AttackOptions& options) {
  Result<AttackResult> on_raw = SimulateLinkageAttack(original, raw, options);
  if (!on_raw.ok()) {
    std::cerr << "attack on raw data failed for row '" << label
              << "': " << on_raw.status() << "\n";
    return false;
  }
  Result<AttackResult> on_anon =
      SimulateLinkageAttack(original, anonymized, options);
  if (!on_anon.ok()) {
    std::cerr << "attack on anonymized data failed for row '" << label
              << "': " << on_anon.status() << "\n";
    return false;
  }
  table->AddRow({label, FormatSignificant(on_raw->top1_success_rate, 3),
                 FormatSignificant(on_anon->top1_success_rate, 3),
                 FormatSignificant(on_anon->mean_true_rank, 3)});
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);

  SyntheticOptions gen;
  gen.seed = 19;
  gen.num_trajectories = static_cast<size_t>(args.GetInt("trajectories", 60));
  gen.num_users = gen.num_trajectories / 3 + 1;
  gen.points_per_trajectory = 80;
  gen.region_half_diagonal = 15000.0;
  gen.dataset_duration_days = 30.0;
  Result<Dataset> maybe_dataset = GenerateSyntheticGeoLife(gen);
  if (!maybe_dataset.ok()) {
    std::cerr << maybe_dataset.status() << "\n";
    return 1;
  }
  Dataset dataset = std::move(maybe_dataset).value();
  Rng rng(3);
  AssignUniformRequirements(&dataset, 2,
                            static_cast<int>(args.GetInt("kmax", 5)), 50.0,
                            250.0, &rng);

  WcopOptions options;
  options.seed = 11;
  Result<AnonymizationResult> anonymized = RunWcopCt(dataset, options);
  if (!anonymized.ok()) {
    std::cerr << anonymized.status() << "\n";
    return 1;
  }
  std::printf("dataset: %zu trajectories; WCOP-CT produced %zu clusters\n\n",
              dataset.size(), anonymized->report.num_clusters);

  size_t rows_attempted = 0;
  size_t rows_ok = 0;
  {
    std::printf("adversary strength: number of observed (location, time) "
                "fixes\n");
    TablePrinter table({"observations", "top-1 on raw", "top-1 on anonymized",
                        "mean rank (anon)"});
    for (size_t obs : {1u, 2u, 5u, 10u, 25u}) {
      AttackOptions attack;
      attack.observations_per_victim = obs;
      attack.seed = 100 + obs;
      ++rows_attempted;
      rows_ok += SweepRow(&table, std::to_string(obs), dataset, dataset,
                          anonymized->sanitized, attack);
    }
    table.Print(std::cout);
  }
  {
    std::printf("\nadversary quality: GPS noise on the observations "
                "(metres)\n");
    TablePrinter table({"noise (m)", "top-1 on raw", "top-1 on anonymized",
                        "mean rank (anon)"});
    for (double noise : {0.0, 25.0, 100.0, 400.0, 1600.0}) {
      AttackOptions attack;
      attack.observation_noise = noise;
      attack.seed = 200 + static_cast<uint64_t>(noise);
      ++rows_attempted;
      rows_ok += SweepRow(&table, FormatSignificant(noise, 4), dataset,
                          dataset, anonymized->sanitized, attack);
    }
    table.Print(std::cout);
  }
  {
    std::printf("\nadversary knowledge model: observations from a possible "
                "motion curve of diameter delta (Definition 1)\n");
    TablePrinter table({"pmc delta (m)", "top-1 on raw",
                        "top-1 on anonymized", "mean rank (anon)"});
    for (double delta : {0.0, 50.0, 250.0, 1000.0, 4000.0}) {
      AttackOptions attack;
      attack.pmc_delta = delta;
      attack.seed = 300 + static_cast<uint64_t>(delta);
      ++rows_attempted;
      rows_ok += SweepRow(&table, FormatSignificant(delta, 4), dataset,
                          dataset, anonymized->sanitized, attack);
    }
    table.Print(std::cout);
  }

  std::printf("\ntakeaway: against raw data even one exact fix identifies "
              "most victims; the anonymized release holds linkage near the "
              "1/k floor until the adversary collects many precise fixes.\n");
  if (rows_ok == 0) {
    std::cerr << "all " << rows_attempted << " sweep rows failed\n";
    return 1;
  }
  if (rows_ok < rows_attempted) {
    std::cerr << (rows_attempted - rows_ok) << " of " << rows_attempted
              << " sweep rows failed (see above)\n";
  }
  return 0;
}
