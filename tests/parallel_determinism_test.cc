// The determinism contract of the parallel execution layer (DESIGN.md
// "Parallel execution"): the published dataset bytes and the report (minus
// wall-clock timings and throughput metrics) must be identical between
// --threads=1 and --threads=N, and the distance-call / budget accounting
// must agree exactly.

#include <gtest/gtest.h>

#include <cstring>
#include <filesystem>
#include <fstream>

#include "anon/verifier.h"
#include "anon/wcop_ct.h"
#include "anon/wcop_sa.h"
#include "common/telemetry.h"
#include "data/geolife_parser.h"
#include "segment/traclus.h"
#include "test_util.h"

namespace wcop {
namespace {

namespace fs = std::filesystem;
using testing_util::SmallSynthetic;

// Bitwise double equality: determinism means the same bits, not "close".
bool SameBits(double a, double b) {
  return std::memcmp(&a, &b, sizeof(double)) == 0;
}

void ExpectDatasetsBitIdentical(const Dataset& a, const Dataset& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    const Trajectory& ta = a[i];
    const Trajectory& tb = b[i];
    ASSERT_EQ(ta.id(), tb.id()) << "trajectory " << i;
    ASSERT_EQ(ta.requirement().k, tb.requirement().k);
    ASSERT_TRUE(SameBits(ta.requirement().delta, tb.requirement().delta));
    ASSERT_EQ(ta.size(), tb.size()) << "trajectory " << i;
    for (size_t p = 0; p < ta.size(); ++p) {
      ASSERT_TRUE(SameBits(ta[p].x, tb[p].x))
          << "traj " << i << " point " << p << ": " << ta[p].x << " vs "
          << tb[p].x;
      ASSERT_TRUE(SameBits(ta[p].y, tb[p].y)) << "traj " << i << " pt " << p;
      ASSERT_TRUE(SameBits(ta[p].t, tb[p].t)) << "traj " << i << " pt " << p;
    }
  }
}

// Everything in the report except runtime_seconds and the metrics snapshot
// (timings and queue gauges legitimately differ across thread counts).
void ExpectReportsEqual(const AnonymizationReport& a,
                        const AnonymizationReport& b) {
  EXPECT_EQ(a.input_trajectories, b.input_trajectories);
  EXPECT_EQ(a.num_clusters, b.num_clusters);
  EXPECT_EQ(a.trashed_trajectories, b.trashed_trajectories);
  EXPECT_EQ(a.trashed_points, b.trashed_points);
  EXPECT_EQ(a.created_points, b.created_points);
  EXPECT_EQ(a.deleted_points, b.deleted_points);
  EXPECT_TRUE(SameBits(a.discernibility, b.discernibility));
  EXPECT_TRUE(SameBits(a.total_spatial_translation,
                       b.total_spatial_translation));
  EXPECT_TRUE(SameBits(a.total_temporal_translation,
                       b.total_temporal_translation));
  EXPECT_TRUE(SameBits(a.omega, b.omega));
  EXPECT_TRUE(SameBits(a.ttd, b.ttd));
  EXPECT_TRUE(SameBits(a.total_distortion, b.total_distortion));
  EXPECT_EQ(a.clustering_rounds, b.clustering_rounds);
  EXPECT_TRUE(SameBits(a.final_radius, b.final_radius));
  EXPECT_EQ(a.degraded, b.degraded);
}

// The schedule-independent accounting counters (hits/calls/abandons); the
// queue/thread gauges and span timings are exempt by design.
void ExpectAccountingEqual(const telemetry::MetricsSnapshot& a,
                           const telemetry::MetricsSnapshot& b) {
  for (const char* counter :
       {"distance.calls.edr", "distance.cache_hits",
        "distance.early_abandoned", "cluster.attempts", "cluster.accepted",
        "cluster.leftover.assigned", "cluster.leftover.trashed",
        "translate.created_points", "translate.deleted_points",
        "translate.matched_points", "trash.trajectories"}) {
    EXPECT_EQ(a.CounterValue(counter), b.CounterValue(counter)) << counter;
  }
}

AnonymizationResult RunCt(const Dataset& d, int threads,
                          telemetry::Telemetry* tel,
                          WcopOptions options = {}) {
  options.seed = 1234;
  options.threads = threads;
  options.telemetry = tel;
  Result<AnonymizationResult> r = RunWcopCt(d, options);
  EXPECT_TRUE(r.ok()) << r.status();
  return std::move(r).value();
}

TEST(ParallelDeterminismTest, WcopCtSerialVsEightThreadsSynthetic) {
  const Dataset d = SmallSynthetic(60, 40);
  telemetry::Telemetry tel1, tel8;
  const AnonymizationResult serial = RunCt(d, 1, &tel1);
  const AnonymizationResult parallel = RunCt(d, 8, &tel8);
  ExpectDatasetsBitIdentical(serial.sanitized, parallel.sanitized);
  ExpectReportsEqual(serial.report, parallel.report);
  ExpectAccountingEqual(serial.report.metrics, parallel.report.metrics);
  // Both runs publish verifiable output.
  EXPECT_TRUE(VerifyAnonymity(d, parallel).ok);
}

TEST(ParallelDeterminismTest, WcopCtFarthestFirstPivotPolicy) {
  // The farthest-first scan exercises the exact-distance batch (Get) on top
  // of the cutoff batches.
  const Dataset d = SmallSynthetic(40, 30);
  WcopOptions options;
  options.pivot_policy = WcopOptions::PivotPolicy::kFarthestFirst;
  telemetry::Telemetry tel1, tel8;
  const AnonymizationResult serial = RunCt(d, 1, &tel1, options);
  const AnonymizationResult parallel = RunCt(d, 8, &tel8, options);
  ExpectDatasetsBitIdentical(serial.sanitized, parallel.sanitized);
  ExpectReportsEqual(serial.report, parallel.report);
  ExpectAccountingEqual(serial.report.metrics, parallel.report.metrics);
}

TEST(ParallelDeterminismTest, RepeatedParallelRunsAreIdentical) {
  // Not just serial==parallel: two parallel runs (different schedules) must
  // also agree with each other.
  const Dataset d = SmallSynthetic(40, 30);
  telemetry::Telemetry tel_a, tel_b;
  const AnonymizationResult a = RunCt(d, 8, &tel_a);
  const AnonymizationResult b = RunCt(d, 8, &tel_b);
  ExpectDatasetsBitIdentical(a.sanitized, b.sanitized);
  ExpectReportsEqual(a.report, b.report);
  ExpectAccountingEqual(a.report.metrics, b.report.metrics);
}

TEST(ParallelDeterminismTest, WcopSaTraclusSerialVsEightThreads) {
  const Dataset d = SmallSynthetic(30, 40);
  auto run = [&](int threads) {
    WcopOptions options;
    options.seed = 77;
    options.threads = threads;
    TraclusOptions traclus_options;
    traclus_options.threads = threads;
    TraclusSegmenter segmenter(traclus_options);
    Result<WcopSaResult> r = RunWcopSa(d, &segmenter, options);
    EXPECT_TRUE(r.ok()) << r.status();
    return std::move(r).value();
  };
  const WcopSaResult serial = run(1);
  const WcopSaResult parallel = run(8);
  ExpectDatasetsBitIdentical(serial.segmented, parallel.segmented);
  ExpectDatasetsBitIdentical(serial.anonymization.sanitized,
                             parallel.anonymization.sanitized);
  ExpectReportsEqual(serial.anonymization.report,
                     parallel.anonymization.report);
}

// ---------------------------------------------------------------------------
// GeoLife-format fixture: the same contract on parsed real-format data.
// ---------------------------------------------------------------------------

class GeoLifeDeterminismTest : public ::testing::Test {
 protected:
  void SetUp() override {
    root_ = fs::temp_directory_path() / "wcop_parallel_geolife";
    fs::remove_all(root_);
    fs::create_directories(root_);
  }
  void TearDown() override { fs::remove_all(root_); }

  void WritePlt(const std::string& user, const std::string& name,
                double lat0, double lon0, size_t points) {
    const fs::path dir = root_ / user / "Trajectory";
    fs::create_directories(dir);
    std::ofstream out(dir / name);
    out << "Geolife trajectory\nWGS 84\nAltitude is in Feet\nReserved 3\n"
           "0,2,255,My Track,0,0,2182,255\n0\n";
    for (size_t i = 0; i < points; ++i) {
      const double lat = lat0 + 1e-5 * static_cast<double>(i);
      const double lon = lon0 + 2e-5 * static_cast<double>(i);
      const double day = 39745.0 + 1e-4 * static_cast<double>(i);
      char line[160];
      std::snprintf(line, sizeof(line),
                    "%.6f,%.6f,0,492,%.6f,2008-10-24,04:07:%02zu\n", lat, lon,
                    day, i % 60);
      out << line;
    }
  }

  fs::path root_;
};

TEST_F(GeoLifeDeterminismTest, WcopCtSerialVsEightThreadsGeoLife) {
  // A handful of users with overlapping and disjoint routes.
  for (int u = 0; u < 8; ++u) {
    char user[8];
    std::snprintf(user, sizeof(user), "%03d", u);
    WritePlt(user, "a.plt", 39.9066 + 0.0002 * (u % 3),
             116.3855 + 0.0003 * (u % 4), 24);
    WritePlt(user, "b.plt", 39.9100 + 0.0001 * u, 116.3900, 18);
  }
  Result<Dataset> loaded = LoadGeoLifeDirectory(root_.string(), {});
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  Dataset d = std::move(loaded).value();
  ASSERT_GE(d.size(), 8u);
  Rng rng(5);
  AssignUniformRequirements(&d, 2, 4, 10.0, 200.0, &rng);

  telemetry::Telemetry tel1, tel8;
  const AnonymizationResult serial = RunCt(d, 1, &tel1);
  const AnonymizationResult parallel = RunCt(d, 8, &tel8);
  ExpectDatasetsBitIdentical(serial.sanitized, parallel.sanitized);
  ExpectReportsEqual(serial.report, parallel.report);
  ExpectAccountingEqual(serial.report.metrics, parallel.report.metrics);
}

}  // namespace
}  // namespace wcop
