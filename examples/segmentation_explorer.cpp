// Scenario: before anonymizing, an analyst wants to understand how the two
// dataset-aware segmentation strategies (TRACLUS: direction changes;
// Convoys: co-movement) would partition the data, and what each buys during
// anonymization. Mirrors Section 4.2 / Figure 2 of the paper.
//
// Run:  ./segmentation_explorer [--trajectories=50] [--points=100]

#include <cstdio>
#include <iostream>

#include "anon/wcop.h"
#include "common/arg_parser.h"
#include "common/table_printer.h"
#include "data/synthetic.h"
#include "segment/convoy.h"
#include "segment/traclus.h"

using namespace wcop;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const size_t n = static_cast<size_t>(args.GetInt("trajectories", 50));
  const size_t points = static_cast<size_t>(args.GetInt("points", 100));

  SyntheticOptions gen;
  gen.seed = 41;
  gen.num_trajectories = n;
  gen.num_users = n / 3 + 1;
  gen.points_per_trajectory = points;
  gen.region_half_diagonal = 15000.0;
  gen.dataset_duration_days = 20.0;
  gen.companion_prob = 0.5;  // encourage co-movement for convoy discovery
  Result<Dataset> maybe_dataset = GenerateSyntheticGeoLife(gen);
  if (!maybe_dataset.ok()) {
    std::cerr << maybe_dataset.status() << "\n";
    return 1;
  }
  Dataset dataset = std::move(maybe_dataset).value();
  Rng rng(13);
  AssignUniformRequirements(&dataset, 2, 5, 50.0, 250.0, &rng);

  // --- Segment with both strategies. ---
  TraclusSegmenter traclus;
  ConvoyOptions convoy_options;
  convoy_options.min_objects = 2;
  convoy_options.eps = 200.0;
  convoy_options.min_duration_snapshots = 3;
  convoy_options.snapshot_interval = 60.0;
  ConvoySegmenter convoys(convoy_options);

  Result<Dataset> by_traclus = traclus.Segment(dataset);
  Result<Dataset> by_convoys = convoys.Segment(dataset);
  if (!by_traclus.ok() || !by_convoys.ok()) {
    std::cerr << "segmentation failed\n";
    return 1;
  }

  Result<std::vector<Convoy>> found = DiscoverConvoys(dataset, convoy_options);
  std::printf("discovered %zu convoys (groups moving together)\n",
              found.ok() ? found->size() : 0);

  TablePrinter seg_table(
      {"segmenter", "sub-trajectories", "avg points/sub", "blow-up"});
  auto seg_row = [&](const char* name, const Dataset& segmented) {
    seg_table.AddRow(
        {name, std::to_string(segmented.size()),
         FormatSignificant(static_cast<double>(segmented.TotalPoints()) /
                           static_cast<double>(segmented.size())),
         FormatSignificant(static_cast<double>(segmented.size()) /
                           static_cast<double>(dataset.size())) + "x"});
  };
  seg_row("none", dataset);
  seg_row("traclus", *by_traclus);
  seg_row("convoys", *by_convoys);
  seg_table.Print(std::cout);

  // --- What segmentation buys: anonymize all three inputs. ---
  WcopOptions options;
  options.seed = 29;
  Result<AnonymizationResult> plain = RunWcopCt(dataset, options);
  Result<WcopSaResult> sa_traclus = RunWcopSa(dataset, &traclus, options);
  Result<WcopSaResult> sa_convoys = RunWcopSa(dataset, &convoys, options);
  if (!plain.ok() || !sa_traclus.ok() || !sa_convoys.ok()) {
    std::cerr << "anonymization failed\n";
    return 1;
  }

  std::printf("\n");
  TablePrinter anon_table({"pipeline", "clusters", "trashed",
                           "total distortion", "avg spatial transl."});
  auto anon_row = [&](const char* name, const AnonymizationReport& r) {
    anon_table.AddRow({name, std::to_string(r.num_clusters),
                       std::to_string(r.trashed_trajectories),
                       FormatSignificant(r.total_distortion),
                       FormatSignificant(r.avg_spatial_translation)});
  };
  anon_row("WCOP-CT (whole trajectories)", plain->report);
  anon_row("WCOP-SA Traclus", sa_traclus->anonymization.report);
  anon_row("WCOP-SA Convoys", sa_convoys->anonymization.report);
  anon_table.Print(std::cout);
  return 0;
}
