# Empty dependencies file for wcop_related.
# This may be replaced when dependencies are built.
