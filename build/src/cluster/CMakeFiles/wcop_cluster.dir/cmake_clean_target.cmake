file(REMOVE_RECURSE
  "libwcop_cluster.a"
)
