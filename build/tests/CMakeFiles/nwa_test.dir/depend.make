# Empty dependencies file for nwa_test.
# This may be replaced when dependencies are built.
