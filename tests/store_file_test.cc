#include "store/store_file.h"

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/failpoint.h"
#include "data/store_convert.h"
#include "test_util.h"
#include "traj/io.h"

namespace wcop {
namespace store {
namespace {

using testing_util::MakeLineWithReq;
using testing_util::SmallSynthetic;

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out << bytes;
  ASSERT_TRUE(out.good());
}

void ExpectBitExact(const Trajectory& a, const Trajectory& b) {
  EXPECT_EQ(a.id(), b.id());
  EXPECT_EQ(a.object_id(), b.object_id());
  EXPECT_EQ(a.parent_id(), b.parent_id());
  EXPECT_EQ(a.requirement().k, b.requirement().k);
  // Bitwise equality throughout: the %.17g text round-trip must be lossless.
  EXPECT_EQ(a.requirement().delta, b.requirement().delta);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a.points()[i].x, b.points()[i].x) << "point " << i;
    EXPECT_EQ(a.points()[i].y, b.points()[i].y) << "point " << i;
    EXPECT_EQ(a.points()[i].t, b.points()[i].t) << "point " << i;
  }
}

TEST(StoreFileTest, RoundTripIsBitExact) {
  const Dataset dataset = SmallSynthetic(24, 40);
  const std::string path = TempPath("store_roundtrip.wst");
  ASSERT_TRUE(WriteDatasetStore(dataset, path).ok());

  Result<TrajectoryStoreReader> reader = TrajectoryStoreReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status();
  ASSERT_EQ(reader->size(), dataset.size());
  EXPECT_EQ(reader->total_points(), dataset.TotalPoints());

  Result<Dataset> back = reader->ReadAll();
  ASSERT_TRUE(back.ok()) << back.status();
  ASSERT_EQ(back->size(), dataset.size());
  for (size_t i = 0; i < dataset.size(); ++i) {
    ExpectBitExact(dataset[i], (*back)[i]);
  }
  std::filesystem::remove(path);
}

TEST(StoreFileTest, IndexCarriesPartitionerMetadata) {
  Dataset dataset;
  dataset.Add(MakeLineWithReq(7, 100.0, 200.0, 5.0, -3.0, /*n=*/20,
                              /*k=*/4, /*delta=*/123.5, /*dt=*/2.0,
                              /*t0=*/50.0));
  const std::string path = TempPath("store_meta.wst");
  ASSERT_TRUE(WriteDatasetStore(dataset, path).ok());

  Result<TrajectoryStoreReader> reader = TrajectoryStoreReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status();
  ASSERT_EQ(reader->index().size(), 1u);
  const StoreEntry& e = reader->index()[0];
  const BoundingBox bounds = dataset[0].Bounds();
  EXPECT_EQ(e.id, 7);
  EXPECT_EQ(e.num_points, 20u);
  EXPECT_EQ(e.k, 4);
  EXPECT_EQ(e.delta, 123.5);
  EXPECT_EQ(e.min_x, bounds.min_x());
  EXPECT_EQ(e.min_y, bounds.min_y());
  EXPECT_EQ(e.max_x, bounds.max_x());
  EXPECT_EQ(e.max_y, bounds.max_y());
  EXPECT_EQ(e.t_min, dataset[0].StartTime());
  EXPECT_EQ(e.t_max, dataset[0].EndTime());
  std::filesystem::remove(path);
}

TEST(StoreFileTest, ReadByIdAndNotFound) {
  const Dataset dataset = SmallSynthetic(10, 12);
  const std::string path = TempPath("store_by_id.wst");
  ASSERT_TRUE(WriteDatasetStore(dataset, path).ok());

  Result<TrajectoryStoreReader> reader = TrajectoryStoreReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status();
  const int64_t want = dataset[3].id();
  Result<Trajectory> t = reader->ReadById(want);
  ASSERT_TRUE(t.ok()) << t.status();
  ExpectBitExact(dataset[3], *t);

  Result<Trajectory> missing = reader->ReadById(-12345);
  ASSERT_FALSE(missing.ok());
  EXPECT_EQ(missing.status().code(), StatusCode::kNotFound);
  std::filesystem::remove(path);
}

// CSV -> store -> CSV must reproduce the CSV byte-for-byte: the parsed
// doubles are stored losslessly, so re-printing them %.6f gives back the
// exact original text (coordinates, timestamps, and (k, delta) included).
TEST(StoreFileTest, CsvStoreCsvRoundTripIsByteIdentical) {
  const Dataset dataset = SmallSynthetic(16, 30);
  const std::string csv_in = TempPath("store_rt_in.csv");
  const std::string store_path = TempPath("store_rt.wst");
  const std::string csv_out = TempPath("store_rt_out.csv");
  ASSERT_TRUE(WriteDatasetCsv(dataset, csv_in).ok());

  Result<StoreConvertStats> to_store = ConvertCsvToStore(csv_in, store_path);
  ASSERT_TRUE(to_store.ok()) << to_store.status();
  EXPECT_EQ(to_store->trajectories, dataset.size());
  EXPECT_EQ(to_store->points, dataset.TotalPoints());

  Result<StoreConvertStats> to_csv = ConvertStoreToCsv(store_path, csv_out);
  ASSERT_TRUE(to_csv.ok()) << to_csv.status();
  EXPECT_EQ(ReadFileBytes(csv_in), ReadFileBytes(csv_out));

  std::filesystem::remove(csv_in);
  std::filesystem::remove(store_path);
  std::filesystem::remove(csv_out);
}

TEST(StoreFileTest, TruncationSurfacesDataLossNeverATornRead) {
  const Dataset dataset = SmallSynthetic(8, 16);
  const std::string path = TempPath("store_trunc.wst");
  ASSERT_TRUE(WriteDatasetStore(dataset, path).ok());
  const std::string bytes = ReadFileBytes(path);
  ASSERT_GT(bytes.size(), 64u);

  // Cut the file at a spread of lengths: every truncation must be rejected
  // at Open() (the index or footer is damaged) — never a partial dataset.
  for (const double frac : {0.1, 0.5, 0.9, 0.99}) {
    const size_t cut = static_cast<size_t>(bytes.size() * frac);
    WriteFileBytes(path, bytes.substr(0, cut));
    Result<TrajectoryStoreReader> reader = TrajectoryStoreReader::Open(path);
    ASSERT_FALSE(reader.ok()) << "cut at " << cut;
    EXPECT_EQ(reader.status().code(), StatusCode::kDataLoss)
        << reader.status();
  }
  // Dropping only the final footer byte must fail too.
  WriteFileBytes(path, bytes.substr(0, bytes.size() - 1));
  EXPECT_EQ(TrajectoryStoreReader::Open(path).status().code(),
            StatusCode::kDataLoss);
  std::filesystem::remove(path);
}

TEST(StoreFileTest, BitFlipInBlockIsIsolatedDataLoss) {
  const Dataset dataset = SmallSynthetic(6, 16);
  const std::string path = TempPath("store_flip.wst");
  ASSERT_TRUE(WriteDatasetStore(dataset, path).ok());

  Result<TrajectoryStoreReader> clean = TrajectoryStoreReader::Open(path);
  ASSERT_TRUE(clean.ok()) << clean.status();
  // Flip one bit in the middle of trajectory 2's payload.
  const StoreEntry victim = clean->index()[2];
  std::string bytes = ReadFileBytes(path);
  bytes[victim.offset + victim.block_size / 2] ^= 0x10;
  WriteFileBytes(path, bytes);

  Result<TrajectoryStoreReader> reader = TrajectoryStoreReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status();  // index is intact
  Result<Trajectory> damaged = reader->Read(2);
  ASSERT_FALSE(damaged.ok());
  EXPECT_EQ(damaged.status().code(), StatusCode::kDataLoss);
  // Undamaged blocks stay readable and exact.
  for (const size_t i : {size_t{0}, size_t{1}, size_t{3}, size_t{5}}) {
    Result<Trajectory> t = reader->Read(i);
    ASSERT_TRUE(t.ok()) << t.status();
    ExpectBitExact(dataset[i], *t);
  }
  // ReadAll must refuse the damaged store rather than return a torn subset.
  EXPECT_EQ(reader->ReadAll().status().code(), StatusCode::kDataLoss);
  std::filesystem::remove(path);
}

TEST(StoreFileTest, BitFlipInIndexRejectsAtOpen) {
  const Dataset dataset = SmallSynthetic(6, 16);
  const std::string path = TempPath("store_flip_idx.wst");
  ASSERT_TRUE(WriteDatasetStore(dataset, path).ok());
  std::string bytes = ReadFileBytes(path);
  // The index sits between the last block and the 16-byte footer; flip a
  // byte 40 bytes before the footer (inside some index entry).
  bytes[bytes.size() - 16 - 40] ^= 0x04;
  WriteFileBytes(path, bytes);
  Result<TrajectoryStoreReader> reader = TrajectoryStoreReader::Open(path);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kDataLoss) << reader.status();
  std::filesystem::remove(path);
}

TEST(StoreFileTest, UnsupportedVersionIsRejected) {
  const Dataset dataset = SmallSynthetic(4, 10);
  const std::string path = TempPath("store_version.wst");
  ASSERT_TRUE(WriteDatasetStore(dataset, path).ok());
  std::string bytes = ReadFileBytes(path);
  bytes[8] = 99;  // format version lives at [8..12), little-endian
  WriteFileBytes(path, bytes);
  Result<TrajectoryStoreReader> reader = TrajectoryStoreReader::Open(path);
  ASSERT_FALSE(reader.ok());
  EXPECT_EQ(reader.status().code(), StatusCode::kFailedPrecondition);
  std::filesystem::remove(path);
}

TEST(StoreFileTest, WriterFailpointsPropagateAndLeaveNoStore) {
  const Dataset dataset = SmallSynthetic(4, 10);
  const std::string path = TempPath("store_failpoint.wst");
  for (const char* site : {"store.create", "store.write_block",
                           "store.write_index", "store.fsync",
                           "store.rename"}) {
    ScopedFailpoint fp(site, Status::IoError("injected"));
    Status s = WriteDatasetStore(dataset, path);
    ASSERT_FALSE(s.ok()) << site;
    EXPECT_EQ(s.code(), StatusCode::kIoError) << site;
    // A failed write never leaves a (partial) store at the target path.
    EXPECT_FALSE(std::filesystem::exists(path)) << site;
    EXPECT_FALSE(std::filesystem::exists(path + ".tmp")) << site;
  }
  // Disarmed, the same write succeeds.
  ASSERT_TRUE(WriteDatasetStore(dataset, path).ok());
  std::filesystem::remove(path);
}

TEST(StoreFileTest, ReaderFailpointsPropagate) {
  const Dataset dataset = SmallSynthetic(4, 10);
  const std::string path = TempPath("store_failpoint_rd.wst");
  ASSERT_TRUE(WriteDatasetStore(dataset, path).ok());
  {
    ScopedFailpoint fp("store.open", Status::IoError("injected"));
    EXPECT_EQ(TrajectoryStoreReader::Open(path).status().code(),
              StatusCode::kIoError);
  }
  {
    ScopedFailpoint fp("store.read_index", Status::DataLoss("injected"));
    EXPECT_EQ(TrajectoryStoreReader::Open(path).status().code(),
              StatusCode::kDataLoss);
  }
  Result<TrajectoryStoreReader> reader = TrajectoryStoreReader::Open(path);
  ASSERT_TRUE(reader.ok()) << reader.status();
  {
    ScopedFailpoint fp("store.read_block", Status::DataLoss("injected"));
    EXPECT_EQ(reader->Read(0).status().code(), StatusCode::kDataLoss);
  }
  EXPECT_TRUE(reader->Read(0).ok());
  std::filesystem::remove(path);
}

TEST(StoreFileTest, EmptyAndMissingFiles) {
  const std::string path = TempPath("store_empty.wst");
  WriteFileBytes(path, "");
  EXPECT_EQ(TrajectoryStoreReader::Open(path).status().code(),
            StatusCode::kDataLoss);
  std::filesystem::remove(path);
  EXPECT_FALSE(TrajectoryStoreReader::Open(path).ok());
}

// ---------------------------------------------------------------------------
// Janitor vs live writers: SweepStaleArtifacts must reclaim only true
// orphans. A temp file owned by an in-flight writer (registered in the
// live-artifact registry) survives every sweep, even when the sweep runs in
// the same directory at the same time.
// ---------------------------------------------------------------------------

TEST(StoreFileTest, SweepSkipsLiveWriterTempFile) {
  const std::string dir = TempPath("janitor_live_dir");
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(std::filesystem::create_directories(dir));

  // A true orphan from a "crashed" writer and a live writer's temp file.
  WriteFileBytes(dir + "/orphan.wst.tmp", "torn bytes");
  Result<TrajectoryStoreWriter> writer =
      TrajectoryStoreWriter::Create(dir + "/live.wst");
  ASSERT_TRUE(writer.ok()) << writer.status();
  const Dataset dataset = SmallSynthetic(3, 10);
  ASSERT_TRUE(writer->Append(dataset.trajectories().front()).ok());

  Result<size_t> swept = SweepStaleArtifacts(dir);
  ASSERT_TRUE(swept.ok()) << swept.status();
  EXPECT_EQ(*swept, 1u);  // the orphan, nothing else
  EXPECT_FALSE(std::filesystem::exists(dir + "/orphan.wst.tmp"));
  EXPECT_TRUE(std::filesystem::exists(dir + "/live.wst.tmp"));

  // The surviving writer publishes normally...
  ASSERT_TRUE(writer->Finish().ok());
  EXPECT_TRUE(TrajectoryStoreReader::Open(dir + "/live.wst").ok());

  // ...and once finished, its name is no longer protected: a later orphan
  // under the same name is ordinary garbage again.
  WriteFileBytes(dir + "/live.wst.tmp", "leftover");
  swept = SweepStaleArtifacts(dir);
  ASSERT_TRUE(swept.ok()) << swept.status();
  EXPECT_EQ(*swept, 1u);
  std::filesystem::remove_all(dir);
}

TEST(StoreFileTest, SweepRacingActiveWriterNeverTearsThePublish) {
  const std::string dir = TempPath("janitor_race_dir");
  std::filesystem::remove_all(dir);
  ASSERT_TRUE(std::filesystem::create_directories(dir));

  const Dataset dataset = SmallSynthetic(32, 20);
  std::atomic<bool> done{false};
  std::thread sweeper([&]() {
    // Hammer the janitor for the whole life of the writer. Every sweep must
    // see the registered temp file and leave it alone.
    while (!done.load(std::memory_order_relaxed)) {
      Result<size_t> swept = SweepStaleArtifacts(dir);
      EXPECT_TRUE(swept.ok()) << swept.status();
    }
  });

  Result<TrajectoryStoreWriter> writer =
      TrajectoryStoreWriter::Create(dir + "/race.wst");
  ASSERT_TRUE(writer.ok()) << writer.status();
  for (const Trajectory& t : dataset.trajectories()) {
    ASSERT_TRUE(writer->Append(t).ok());
  }
  Status finish = writer->Finish();
  done.store(true, std::memory_order_relaxed);
  sweeper.join();
  ASSERT_TRUE(finish.ok()) << finish;

  // The publish survived the sweeps intact and round-trips bit-exactly.
  Result<TrajectoryStoreReader> reader =
      TrajectoryStoreReader::Open(dir + "/race.wst");
  ASSERT_TRUE(reader.ok()) << reader.status();
  ASSERT_EQ(reader->size(), dataset.size());
  Result<Trajectory> first = reader->Read(0);
  ASSERT_TRUE(first.ok()) << first.status();
  ExpectBitExact(*first, dataset.trajectories().front());
  std::filesystem::remove_all(dir);
}

TEST(StoreFileTest, LiveArtifactRegistryRefCounts) {
  const std::string path = TempPath("refcounted.tmp");
  RegisterLiveArtifact(path);
  RegisterLiveArtifact(path);
  EXPECT_TRUE(IsLiveArtifact(path));
  UnregisterLiveArtifact(path);
  EXPECT_TRUE(IsLiveArtifact(path));  // one registration still live
  UnregisterLiveArtifact(path);
  EXPECT_FALSE(IsLiveArtifact(path));
  // Relative and absolute spellings of the same file agree.
  ScopedLiveArtifact scoped("relative_name.tmp");
  EXPECT_TRUE(IsLiveArtifact(
      (std::filesystem::current_path() / "relative_name.tmp").string()));
}

}  // namespace
}  // namespace store
}  // namespace wcop
