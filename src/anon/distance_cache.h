#ifndef WCOP_ANON_DISTANCE_CACHE_H_
#define WCOP_ANON_DISTANCE_CACHE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>

#include "anon/types.h"
#include "traj/dataset.h"

namespace wcop {

/// Mutex-striped memo of symmetric pairwise trajectory distances, shared by
/// the coordinating thread and the ParallelFor workers of the clustering hot
/// path (the distance function is deterministic, so recomputation across
/// radius-relaxation rounds is pure waste).
///
/// Keys are the existing symmetric pair key (min(i,j) * n + max(i,j)); each
/// of the kShards stripes holds its own map + mutex, `reserve`d up front
/// from the expected pair count so the hot loop never rehashes under a lock.
///
/// Accounting is *exact* and thread-schedule-independent: every stored exact
/// distance charges RunContext::ChargeDistance and the per-kind
/// `distance.calls.*` counter exactly once (when two threads race on the
/// same uncached pair, only the insertion winner charges; the loser counts
/// as the cache hit it would have been under serial execution), lookups
/// satisfied from the map count `distance.cache_hits`, and early-abandoned
/// evaluations count `distance.early_abandoned` without charging the budget
/// (no DP table was filled).
///
/// Early-abandon entries: GetWithCutoff stores the length lower bound
/// (flagged, never mistaken for an exact distance) when the bound alone
/// exceeds the cutoff. A later GetWithCutoff whose cutoff the stored bound
/// still exceeds is served from the cache; any other access upgrades the
/// entry to the exact distance. Decisions made by comparing the returned
/// value against the cutoff are therefore identical to full computation.
class ShardedPairDistanceCache {
 public:
  static constexpr size_t kShards = 16;

  /// `expected_pairs` sizes the stripes up front (pass the anticipated
  /// candidate-pool volume; it is a reservation, not a limit). The context
  /// and telemetry pointers may be null; counter handles are resolved once
  /// here, never in the per-lookup path.
  ShardedPairDistanceCache(const Dataset& dataset,
                           const DistanceConfig& config,
                           const RunContext* context,
                           telemetry::Telemetry* telemetry,
                           size_t expected_pairs);

  /// Exact distance between trajectories i and j. Safe to call concurrently;
  /// concurrent calls for the *same uncached* pair both compute but charge
  /// once (see class comment).
  double Get(size_t i, size_t j);

  /// Distance usable for comparisons against `cutoff`: the result is either
  /// the exact distance or a lower bound that exceeds `cutoff` (so
  /// `result <= cutoff` implies the result is exact, and `result > cutoff`
  /// implies the exact distance also exceeds the cutoff).
  double GetWithCutoff(size_t i, size_t j, double cutoff);

  /// Number of full (DP) distance computations stored so far.
  uint64_t computed() const {
    return computed_.load(std::memory_order_relaxed);
  }

  /// Number of early-abandoned evaluations so far.
  uint64_t abandoned() const {
    return abandoned_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    double value = 0.0;
    bool is_bound = false;  ///< value is a length lower bound, not exact
  };

  struct Shard {
    std::mutex mu;
    std::unordered_map<uint64_t, Entry> map;
  };

  uint64_t KeyOf(size_t i, size_t j) const {
    return i < j ? static_cast<uint64_t>(i) * n_ + j
                 : static_cast<uint64_t>(j) * n_ + i;
  }
  Shard& ShardOf(uint64_t key) {
    // SplitMix64-style mix so consecutive keys spread across stripes.
    uint64_t z = key + 0x9E3779B97F4A7C15ull;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return shards_[(z ^ (z >> 31)) % kShards];
  }

  /// Stores an exact value, charging accounting only when this call wins
  /// the insertion/upgrade race. Returns the value to report (the already
  /// stored exact value when the race was lost).
  double StoreExact(Shard& shard, uint64_t key, double value);

  const Dataset& dataset_;
  const DistanceConfig& config_;
  const RunContext* context_;
  telemetry::Counter* distance_calls_ = nullptr;
  telemetry::Counter* cache_hits_ = nullptr;
  telemetry::Counter* early_abandoned_ = nullptr;
  uint64_t n_;
  Shard shards_[kShards];
  std::atomic<uint64_t> computed_{0};
  std::atomic<uint64_t> abandoned_{0};
};

}  // namespace wcop

#endif  // WCOP_ANON_DISTANCE_CACHE_H_
