# Empty dependencies file for wcop_common.
# This may be replaced when dependencies are built.
