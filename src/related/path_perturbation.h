#ifndef WCOP_RELATED_PATH_PERTURBATION_H_
#define WCOP_RELATED_PATH_PERTURBATION_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "traj/dataset.h"

namespace wcop {

/// Path Perturbation (Hoh & Gruteser, SecureComm 2005) — the data-
/// perturbation baseline of the paper's related work (Section 2).
///
/// Instead of clustering, the algorithm *confuses* an adversary's tracking
/// by creating fake crossing points between pairs of non-intersecting
/// trajectories that pass close to each other: whenever two trajectories
/// come within `radius` during a `time_window`, their paths are locally
/// bent so that they actually cross, making it ambiguous which user
/// continued on which path afterwards.
///
/// This gives *tracking confusion*, not k-anonymity: there is no guarantee
/// a trajectory is indistinguishable from k-1 others — which is exactly
/// why the (k,delta) line of work exists. The frontier bench quantifies
/// the difference.
struct PathPerturbationOptions {
  /// Maximum allowable perturbation / desired privacy radius (metres): two
  /// trajectories closer than this (at some common time) are candidates
  /// for a fake crossing, and no point moves further than this.
  double radius = 200.0;

  /// Candidate crossings must happen within this window of each other's
  /// samples (seconds).
  double time_window = 120.0;

  /// At most this many crossings are created per trajectory (the original
  /// algorithm perturbs each path segment at most once per encounter).
  size_t max_crossings_per_trajectory = 4;

  uint64_t seed = 7;
};

/// Summary of one perturbation run.
struct PathPerturbationReport {
  size_t candidate_pairs = 0;   ///< close-encounter pairs considered
  size_t crossings_created = 0;
  double total_displacement = 0.0;  ///< metres moved, summed over points
  double max_displacement = 0.0;
};

struct PathPerturbationResult {
  Dataset perturbed;
  PathPerturbationReport report;
};

/// Runs path perturbation over the dataset. Ids/metadata are preserved;
/// only point coordinates move (never further than options.radius).
Result<PathPerturbationResult> RunPathPerturbation(
    const Dataset& dataset, const PathPerturbationOptions& options = {});

}  // namespace wcop

#endif  // WCOP_RELATED_PATH_PERTURBATION_H_
