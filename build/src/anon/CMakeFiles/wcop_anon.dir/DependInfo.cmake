
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/anon/agglomerative.cc" "src/anon/CMakeFiles/wcop_anon.dir/agglomerative.cc.o" "gcc" "src/anon/CMakeFiles/wcop_anon.dir/agglomerative.cc.o.d"
  "/root/repo/src/anon/attack.cc" "src/anon/CMakeFiles/wcop_anon.dir/attack.cc.o" "gcc" "src/anon/CMakeFiles/wcop_anon.dir/attack.cc.o.d"
  "/root/repo/src/anon/colocalization.cc" "src/anon/CMakeFiles/wcop_anon.dir/colocalization.cc.o" "gcc" "src/anon/CMakeFiles/wcop_anon.dir/colocalization.cc.o.d"
  "/root/repo/src/anon/effective_anonymity.cc" "src/anon/CMakeFiles/wcop_anon.dir/effective_anonymity.cc.o" "gcc" "src/anon/CMakeFiles/wcop_anon.dir/effective_anonymity.cc.o.d"
  "/root/repo/src/anon/greedy_clustering.cc" "src/anon/CMakeFiles/wcop_anon.dir/greedy_clustering.cc.o" "gcc" "src/anon/CMakeFiles/wcop_anon.dir/greedy_clustering.cc.o.d"
  "/root/repo/src/anon/mahdavifar.cc" "src/anon/CMakeFiles/wcop_anon.dir/mahdavifar.cc.o" "gcc" "src/anon/CMakeFiles/wcop_anon.dir/mahdavifar.cc.o.d"
  "/root/repo/src/anon/metrics.cc" "src/anon/CMakeFiles/wcop_anon.dir/metrics.cc.o" "gcc" "src/anon/CMakeFiles/wcop_anon.dir/metrics.cc.o.d"
  "/root/repo/src/anon/nwa.cc" "src/anon/CMakeFiles/wcop_anon.dir/nwa.cc.o" "gcc" "src/anon/CMakeFiles/wcop_anon.dir/nwa.cc.o.d"
  "/root/repo/src/anon/report_json.cc" "src/anon/CMakeFiles/wcop_anon.dir/report_json.cc.o" "gcc" "src/anon/CMakeFiles/wcop_anon.dir/report_json.cc.o.d"
  "/root/repo/src/anon/streaming.cc" "src/anon/CMakeFiles/wcop_anon.dir/streaming.cc.o" "gcc" "src/anon/CMakeFiles/wcop_anon.dir/streaming.cc.o.d"
  "/root/repo/src/anon/translation.cc" "src/anon/CMakeFiles/wcop_anon.dir/translation.cc.o" "gcc" "src/anon/CMakeFiles/wcop_anon.dir/translation.cc.o.d"
  "/root/repo/src/anon/types.cc" "src/anon/CMakeFiles/wcop_anon.dir/types.cc.o" "gcc" "src/anon/CMakeFiles/wcop_anon.dir/types.cc.o.d"
  "/root/repo/src/anon/uncertainty.cc" "src/anon/CMakeFiles/wcop_anon.dir/uncertainty.cc.o" "gcc" "src/anon/CMakeFiles/wcop_anon.dir/uncertainty.cc.o.d"
  "/root/repo/src/anon/utility.cc" "src/anon/CMakeFiles/wcop_anon.dir/utility.cc.o" "gcc" "src/anon/CMakeFiles/wcop_anon.dir/utility.cc.o.d"
  "/root/repo/src/anon/verifier.cc" "src/anon/CMakeFiles/wcop_anon.dir/verifier.cc.o" "gcc" "src/anon/CMakeFiles/wcop_anon.dir/verifier.cc.o.d"
  "/root/repo/src/anon/wcop_b.cc" "src/anon/CMakeFiles/wcop_anon.dir/wcop_b.cc.o" "gcc" "src/anon/CMakeFiles/wcop_anon.dir/wcop_b.cc.o.d"
  "/root/repo/src/anon/wcop_ct.cc" "src/anon/CMakeFiles/wcop_anon.dir/wcop_ct.cc.o" "gcc" "src/anon/CMakeFiles/wcop_anon.dir/wcop_ct.cc.o.d"
  "/root/repo/src/anon/wcop_nv.cc" "src/anon/CMakeFiles/wcop_anon.dir/wcop_nv.cc.o" "gcc" "src/anon/CMakeFiles/wcop_anon.dir/wcop_nv.cc.o.d"
  "/root/repo/src/anon/wcop_sa.cc" "src/anon/CMakeFiles/wcop_anon.dir/wcop_sa.cc.o" "gcc" "src/anon/CMakeFiles/wcop_anon.dir/wcop_sa.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/traj/CMakeFiles/wcop_traj.dir/DependInfo.cmake"
  "/root/repo/build/src/distance/CMakeFiles/wcop_distance.dir/DependInfo.cmake"
  "/root/repo/build/src/segment/CMakeFiles/wcop_segment.dir/DependInfo.cmake"
  "/root/repo/build/src/cluster/CMakeFiles/wcop_cluster.dir/DependInfo.cmake"
  "/root/repo/build/src/index/CMakeFiles/wcop_index.dir/DependInfo.cmake"
  "/root/repo/build/src/geo/CMakeFiles/wcop_geo.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/wcop_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
