// Scenario: a fleet operator publishes anonymized movement data every hour
// rather than once at the end of the quarter — and the publisher has to
// survive being killed at any moment. This CLI drives the out-of-core
// continuous pipeline (pipeline/continuous.h) over a `.wst` trajectory
// store: each window is re-partitioned, anonymized through the sharded
// WCOP-CT runner, and published as an atomically-finished window store
// plus a manifest record.
//
// Run:  ./continuous_publication --output-dir=DIR
//         [--store=FILE.wst]            # default: generate synthetic data
//         [--trajectories=50] [--window=600] [--shards=2] [--max-windows=0]
//         [--verify] [--resume]
//
// Kill/resume quickstart (see README):
//   ./continuous_publication --output-dir=/tmp/pub &   # kill -9 it mid-run
//   ./continuous_publication --output-dir=/tmp/pub --resume
// The resumed run verifies every already-published window against its
// manifest (CRC of the actual bytes), adopts the valid prefix, and
// recomputes only from the first torn window — converging to output
// byte-identical to an uninterrupted run.

#include <cstdio>
#include <iostream>
#include <string>

#include "common/arg_parser.h"
#include "common/log.h"
#include "common/table_printer.h"
#include "data/synthetic.h"
#include "pipeline/continuous.h"
#include "store/store_file.h"

using namespace wcop;

namespace {

/// Deterministic demo feed: synthesize a half-day of traffic and persist
/// it as the pipeline's source store. Same flags -> same bytes, so a
/// killed run and its resume read an identical source.
Status WriteSyntheticStore(const ArgParser& args, const std::string& path) {
  SyntheticOptions gen;
  gen.seed = 23;
  gen.num_trajectories = static_cast<size_t>(args.GetInt("trajectories", 50));
  gen.num_users = gen.num_trajectories / 3 + 1;
  gen.points_per_trajectory = 90;
  gen.sampling_interval = 20.0;
  gen.region_half_diagonal = 15000.0;
  gen.dataset_duration_days = 0.5;
  WCOP_ASSIGN_OR_RETURN(Dataset dataset, GenerateSyntheticGeoLife(gen));
  Rng rng(9);
  AssignUniformRequirements(&dataset, 2, 4, 50.0, 300.0, &rng);
  return store::WriteDatasetStore(dataset, path);
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  if (args.Has("help") || !args.Has("output-dir")) {
    std::puts(
        "continuous_publication --output-dir=DIR [--store=FILE.wst]\n"
        "  [--trajectories=50] [--window=600] [--shards=2]\n"
        "  [--max-windows=0] [--verify] [--resume]\n"
        "  [--log-level=info] [--log-format=text|json]");
    return args.Has("help") ? 0 : 1;
  }
  if (!log::ConfigureFromArgs(args, "continuous_publication")) {
    return 1;
  }
  const std::string output_dir = args.GetString("output-dir", "");

  std::string store_path = args.GetString("store", "");
  if (store_path.empty()) {
    store_path = output_dir + ".source.wst";
    if (Status s = WriteSyntheticStore(args, store_path); !s.ok()) {
      log::Error("synthetic store generation failed",
                 {{"status", s.ToString()}});
      return 1;
    }
    std::printf("source store: %s (synthetic)\n", store_path.c_str());
  }

  pipeline::ContinuousPipelineOptions options;
  options.source_store = store_path;
  options.output_dir = output_dir;
  options.window_seconds = args.GetDouble("window", 600.0);
  options.max_windows = static_cast<size_t>(args.GetInt("max-windows", 0));
  options.resume = args.GetBool("resume", false);
  options.verify_shards = args.GetBool("verify", false);
  options.wcop.seed = 31;
  options.partition.num_shards =
      static_cast<size_t>(args.GetInt("shards", 2));
  RetryPolicy publish_retry;  // ride out transient I/O on publish
  options.publish_retry = &publish_retry;
  options.progress = [](const pipeline::PipelineProgress& p) {
    std::printf("[window %zu/%zu] published %llu, suppressed %llu, "
                "carried %llu (%.2fs)\n",
                p.windows_done, p.windows_total,
                static_cast<unsigned long long>(p.published_fragments),
                static_cast<unsigned long long>(p.suppressed_fragments),
                static_cast<unsigned long long>(p.carried),
                p.last_window_seconds);
    std::fflush(stdout);
  };

  Result<pipeline::ContinuousPipelineResult> result =
      pipeline::RunContinuousPipeline(options);
  if (!result.ok()) {
    log::Error("pipeline failed", {{"status", result.status().ToString()}});
    if (result.status().code() == StatusCode::kFailedPrecondition) {
      std::fprintf(stderr,
                   "hint: %s already holds published windows; "
                   "pass --resume to continue them\n",
                   output_dir.c_str());
    }
    return 1;
  }

  if (result->resumed_windows > 0) {
    std::printf("\nresumed: %zu window(s) verified and adopted from %s\n",
                result->resumed_windows, output_dir.c_str());
  }
  std::printf("\nwindows of %.0f s:\n\n", options.window_seconds);
  TablePrinter table({"window start", "in", "published", "carried",
                      "clusters", "TTD"});
  size_t shown = 0;
  for (const pipeline::WindowManifest& w : result->windows) {
    if (++shown > 12) {
      table.AddRow({"...", "", "", "", "", ""});
      break;
    }
    table.AddRow({FormatSignificant(w.window_start, 6),
                  std::to_string(w.input_fragments),
                  w.skipped ? "suppressed"
                            : std::to_string(w.published_fragments),
                  std::to_string(w.carried_out), std::to_string(w.clusters),
                  FormatSignificant(w.ttd, 4)});
  }
  table.Print(std::cout);

  std::printf("\npublished %llu fragments over %zu windows "
              "(%llu suppressed, total TTD %.4g)%s\n",
              static_cast<unsigned long long>(result->published_fragments),
              result->windows.size(),
              static_cast<unsigned long long>(result->suppressed_fragments),
              result->total_ttd, result->degraded ? " [degraded]" : "");
  std::printf("output: %s/window_*.wst + window_*.mfr\n", output_dir.c_str());
  return 0;
}
