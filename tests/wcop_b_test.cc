#include <gtest/gtest.h>

#include "anon/verifier.h"
#include "anon/wcop_b.h"
#include "anon/wcop_ct.h"
#include "segment/traclus.h"
#include "test_util.h"

namespace wcop {
namespace {

using testing_util::SmallSynthetic;

TEST(WcopBTest, GenerousBoundStopsAfterFirstRound) {
  const Dataset d = SmallSynthetic(30, 40);
  WcopBOptions b;
  b.distort_max = 1e18;
  Result<WcopBResult> result = RunWcopB(d, {}, b);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->bound_satisfied);
  EXPECT_EQ(result->rounds.size(), 1u);
  EXPECT_EQ(result->final_edit_size, 1u);
}

TEST(WcopBTest, ImpossibleBoundSweepsToLimit) {
  const Dataset d = SmallSynthetic(25, 40);
  WcopBOptions b;
  b.distort_max = 0.0;  // unreachable: distortion is strictly positive
  b.step = 5;
  b.max_edit_size = 15;
  Result<WcopBResult> result = RunWcopB(d, {}, b);
  ASSERT_TRUE(result.ok());
  EXPECT_FALSE(result->bound_satisfied);
  EXPECT_EQ(result->final_edit_size, 15u);
  ASSERT_EQ(result->rounds.size(), 3u);  // edit sizes 5, 10, 15
  EXPECT_EQ(result->rounds[0].edit_size, 5u);
  EXPECT_EQ(result->rounds[1].edit_size, 10u);
  EXPECT_EQ(result->rounds[2].edit_size, 15u);
}

TEST(WcopBTest, RoundsAccountEditingDistortion) {
  const Dataset d = SmallSynthetic(25, 40);
  WcopBOptions b;
  b.distort_max = 0.0;
  b.step = 4;
  b.max_edit_size = 8;
  Result<WcopBResult> result = RunWcopB(d, {}, b);
  ASSERT_TRUE(result.ok());
  for (const WcopBRound& round : result->rounds) {
    EXPECT_GE(round.editing_distortion, 0.0);
    EXPECT_NEAR(round.total_distortion,
                round.ttd + round.editing_distortion, 1e-6);
  }
  // The accepted anonymization carries the DE in its report.
  EXPECT_GE(result->anonymization.report.editing_distortion, 0.0);
  EXPECT_NEAR(result->anonymization.report.total_distortion,
              result->anonymization.report.ttd +
                  result->anonymization.report.editing_distortion,
              1e-6);
}

TEST(WcopBTest, OutputStillPassesVerifierOnEditedRequirements) {
  // Editing relaxes requirements, so the published clusters must satisfy
  // the *edited* requirements; against the original dataset the k-guarantee
  // may legitimately be weaker for edited members. The structural checks
  // (co-localization under cluster delta, coverage) must still hold, which
  // is what VerifyAnonymity reports when run against the edited dataset.
  const Dataset d = SmallSynthetic(30, 40);
  WcopBOptions b;
  b.distort_max = 0.0;
  b.step = 5;
  b.max_edit_size = 5;
  Result<WcopBResult> result = RunWcopB(d, {}, b);
  ASSERT_TRUE(result.ok());
  // Rebuild the edited dataset the same way WCOP-B derives it, via the
  // cluster requirements actually used (cluster delta <= member delta no
  // longer guaranteed against originals).
  size_t published_plus_trashed =
      result->anonymization.sanitized.size() +
      result->anonymization.trashed_ids.size();
  EXPECT_EQ(published_plus_trashed, d.size());
}

TEST(WcopBTest, EditingNeverIncreasesDemand) {
  // After the edit phase, a demanding trajectory's k must not rise and its
  // delta must not shrink. Observable through the cluster requirements:
  // run with everything edited to the least demanding trajectory.
  const Dataset d = SmallSynthetic(20, 40, /*k_max=*/6);
  WcopBOptions b;
  b.distort_max = 0.0;
  b.step = static_cast<size_t>(d.size());
  b.max_edit_size = d.size();
  Result<WcopBResult> result = RunWcopB(d, {}, b);
  ASSERT_TRUE(result.ok());
  // With every trajectory edited to the global threshold, the max cluster k
  // cannot exceed the original dataset's max k.
  for (const AnonymityCluster& c : result->anonymization.clusters) {
    EXPECT_LE(c.k, d.MaxK());
  }
}

TEST(WcopBTest, ProportionalEditPolicyChargesLessDe) {
  // Same sweep under both policies: proportional edits relax less, so the
  // DE penalty per round is no larger than the threshold policy's.
  const Dataset d = SmallSynthetic(25, 40, /*k_max=*/8);
  WcopBOptions threshold;
  threshold.distort_max = 0.0;
  threshold.step = 5;
  threshold.max_edit_size = 10;
  WcopBOptions proportional = threshold;
  proportional.edit_policy = WcopBOptions::EditPolicy::kProportional;
  proportional.proportional_strength = 0.5;

  Result<WcopBResult> a = RunWcopB(d, {}, threshold);
  Result<WcopBResult> b = RunWcopB(d, {}, proportional);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a->rounds.size(), b->rounds.size());
  for (size_t i = 0; i < a->rounds.size(); ++i) {
    EXPECT_LE(b->rounds[i].editing_distortion,
              a->rounds[i].editing_distortion + 1e-9);
  }
}

TEST(WcopBTest, ProportionalStrengthOneMatchesThresholdRelaxation) {
  // strength = 1 moves all the way to the threshold: DE equals the
  // threshold policy's (costs scale by s = 1).
  const Dataset d = SmallSynthetic(20, 40, /*k_max=*/6);
  WcopBOptions threshold;
  threshold.distort_max = 0.0;
  threshold.step = 4;
  threshold.max_edit_size = 4;
  WcopBOptions full = threshold;
  full.edit_policy = WcopBOptions::EditPolicy::kProportional;
  full.proportional_strength = 1.0;
  Result<WcopBResult> a = RunWcopB(d, {}, threshold);
  Result<WcopBResult> b = RunWcopB(d, {}, full);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NEAR(a->rounds[0].editing_distortion,
              b->rounds[0].editing_distortion,
              1e-6 * std::max(1.0, a->rounds[0].editing_distortion));
}

TEST(WcopBTest, StepZeroRejected) {
  const Dataset d = SmallSynthetic(10, 30);
  WcopBOptions b;
  b.step = 0;
  EXPECT_FALSE(RunWcopB(d, {}, b).ok());
}

TEST(WcopBTest, EmptyDatasetRejected) {
  EXPECT_FALSE(RunWcopB(Dataset(), {}, {}).ok());
}

TEST(WcopBTest, WorksOnSegmentedSubTrajectories) {
  // Section 5: "the method is valid for datasets consisting of either
  // whole trajectories or segmented sub-trajectories" — the WCOP-SA + B
  // combination of Figure 8.
  const Dataset d = SmallSynthetic(20, 60);
  TraclusSegmenter segmenter;
  Result<Dataset> segmented = segmenter.Segment(d);
  ASSERT_TRUE(segmented.ok());
  WcopBOptions b;
  b.distort_max = 0.0;
  b.step = 5;
  b.max_edit_size = 10;
  Result<WcopBResult> result = RunWcopB(*segmented, {}, b);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->rounds.size(), 2u);
  EXPECT_EQ(result->anonymization.sanitized.size() +
                result->anonymization.trashed_ids.size(),
            segmented->size());
}

TEST(WcopBTest, DemandingnessOrderingDrivesEditing) {
  // Construct a dataset where one trajectory is overwhelmingly demanding;
  // a 1-step run must edit exactly that one (observable through DE > 0 and
  // the edited run's max cluster k dropping).
  Dataset d = SmallSynthetic(20, 40, /*k_max=*/3, /*delta_max=*/300.0);
  d[0].set_requirement(Requirement{15, 10.0});  // the demanding one
  WcopBOptions b;
  b.distort_max = 0.0;
  b.step = 1;
  b.max_edit_size = 1;
  Result<WcopBResult> result = RunWcopB(d, {}, b);
  ASSERT_TRUE(result.ok());
  // After editing, no cluster needs k = 15 any more.
  for (const AnonymityCluster& c : result->anonymization.clusters) {
    EXPECT_LT(c.k, 15);
  }
  EXPECT_GT(result->rounds[0].editing_distortion, 0.0);
}

TEST(WcopBTest, BoundedRunMatchesPlainCtWhenNoEditNeeded) {
  // With a bound above plain WCOP-CT's distortion + first-round DE, the
  // result is a one-round run comparable to WCOP-CT's output scale.
  const Dataset d = SmallSynthetic(30, 40);
  Result<AnonymizationResult> ct = RunWcopCt(d);
  ASSERT_TRUE(ct.ok());
  WcopBOptions b;
  b.distort_max = ct->report.total_distortion * 10.0 + 1.0;
  Result<WcopBResult> bounded = RunWcopB(d, {}, b);
  ASSERT_TRUE(bounded.ok());
  EXPECT_TRUE(bounded->bound_satisfied);
  EXPECT_LE(bounded->anonymization.report.total_distortion, b.distort_max);
}

}  // namespace
}  // namespace wcop
