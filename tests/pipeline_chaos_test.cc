// Chaos harness for the continuous publication pipeline: prove that a
// publisher killed at ANY window lifecycle point — or starved of disk mid
// publish — recovers on restart to byte-identical published output.
//
// The binary doubles as its own crash victim. Invoked as
//
//   pipeline_chaos_test --child=run <source.wst> <output_dir> <dump_path>
//
// it runs the pipeline over the source store (resume always on, per-window
// retry armed) and, only on success, writes the concatenated raw bytes of
// every published window_*.wst and window_*.mfr to <dump_path>. The dump IS
// the robustness contract: two runs publish identical output iff their
// dumps are byte-equal.
//
// The gtest side fork/execs that child under three fault regimes:
//   1. kill matrix: WCOP_FAILPOINTS=<site>:abort@N (and sigterm@N) at every
//      window lifecycle site -> expect death by the exact signal, then a
//      clean restart whose dump equals the uninterrupted baseline;
//   2. errno schedules: <site>:errno=ENOSPC@N -> the per-window RetryCall
//      must absorb the injected failure and the run still exits 0 with a
//      baseline-identical dump;
//   3. seeded multi-crash schedules: a deterministic xorshift RNG derives a
//      sequence of (site, hit) crash specs per seed, the child is crashed
//      repeatedly mid-recovery, and the final clean restart must still
//      converge to the baseline bytes.

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/retry.h"
#include "pipeline/continuous.h"
#include "store/store_file.h"
#include "test_util.h"

namespace wcop {
namespace {

using testing_util::MakeLineWithReq;

namespace fs = std::filesystem;

// ---------------------------------------------------------------------------
// Shared between parent and child: the deterministic workload.
// ---------------------------------------------------------------------------

// Three groups of three co-travelling lines with staggered start times
// (t0 = 0 / 90 / 190 s). Windows of 100 s give five windows, and the
// stagger lands single-point fragments at window boundaries, so the
// carry-over chain is genuinely exercised: crashing between "carry saved"
// and "manifest saved" leaves exactly the torn state resume must repair.
Dataset ChaosDataset() {
  std::vector<Trajectory> trajectories;
  const double starts[3] = {0.0, 90.0, 190.0};
  int64_t id = 0;
  for (int g = 0; g < 3; ++g) {
    for (int i = 0; i < 3; ++i) {
      Trajectory t = MakeLineWithReq(id, 2000.0 * g, 30.0 * i, 5.0, 0.0,
                                     /*n=*/30, /*k=*/2, /*delta=*/300.0,
                                     /*dt=*/10.0, /*t0=*/starts[g]);
      t.set_object_id(id);
      trajectories.push_back(std::move(t));
      ++id;
    }
  }
  return Dataset(std::move(trajectories));
}

// Concatenated raw bytes of every published artifact, in filename order.
// Includes the manifests, so a run that "recovers" by rewriting different
// stats (not just different trajectories) also fails the comparison.
int DumpPublished(const std::string& output_dir,
                  const std::string& dump_path) {
  std::vector<std::string> names;
  for (const auto& entry : fs::directory_iterator(output_dir)) {
    if (!entry.is_regular_file()) {
      continue;
    }
    const std::string name = entry.path().filename().string();
    if (name.rfind("window_", 0) == 0) {
      names.push_back(name);
    }
  }
  std::sort(names.begin(), names.end());
  std::ofstream out(dump_path, std::ios::binary | std::ios::trunc);
  for (const std::string& name : names) {
    std::ifstream in(output_dir + "/" + name, std::ios::binary);
    out << name << "\n" << in.rdbuf();
  }
  out.close();
  if (!out) {
    std::fprintf(stderr, "child: cannot write %s\n", dump_path.c_str());
    return 4;
  }
  return 0;
}

int RunPipelineChild(const std::string& source, const std::string& output_dir,
                     const std::string& dump_path) {
  pipeline::ContinuousPipelineOptions options;
  options.source_store = source;
  options.output_dir = output_dir;
  options.window_seconds = 100.0;
  options.resume = true;  // a restarted publisher always resumes
  options.verify_shards = true;
  options.wcop.seed = 7;
  RetryPolicy retry;
  retry.max_attempts = 3;
  retry.initial_backoff = std::chrono::milliseconds(1);
  options.publish_retry = &retry;

  Result<pipeline::ContinuousPipelineResult> result =
      pipeline::RunContinuousPipeline(options);
  if (!result.ok()) {
    std::fprintf(stderr, "child: pipeline failed: %s\n",
                 result.status().ToString().c_str());
    return 2;
  }
  return DumpPublished(output_dir, dump_path);
}

// ---------------------------------------------------------------------------
// Parent-side process harness.
// ---------------------------------------------------------------------------

struct ChildOutcome {
  bool signalled = false;
  int signal = 0;
  int exit_code = -1;
};

ChildOutcome SpawnChild(const std::string& source,
                        const std::string& output_dir,
                        const std::string& dump_path,
                        const std::string& failpoints) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    if (failpoints.empty()) {
      ::unsetenv("WCOP_FAILPOINTS");
    } else {
      ::setenv("WCOP_FAILPOINTS", failpoints.c_str(), 1);
    }
    ::execl("/proc/self/exe", "pipeline_chaos_test", "--child=run",
            source.c_str(), output_dir.c_str(), dump_path.c_str(),
            static_cast<char*>(nullptr));
    _exit(127);  // exec failed
  }
  ChildOutcome outcome;
  if (pid < 0) {
    return outcome;  // fork failed -> exit_code stays -1
  }
  int status = 0;
  if (::waitpid(pid, &status, 0) != pid) {
    return outcome;
  }
  if (WIFSIGNALED(status)) {
    outcome.signalled = true;
    outcome.signal = WTERMSIG(status);
  } else if (WIFEXITED(status)) {
    outcome.exit_code = WEXITSTATUS(status);
  }
  return outcome;
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

class PipelineChaosTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::path(::testing::TempDir()) /
           ("pipeline_chaos_" + std::string(::testing::UnitTest::GetInstance()
                                                ->current_test_info()
                                                ->name()));
    fs::remove_all(dir_);
    fs::create_directories(dir_);
    source_ = Path("source.wst");
    ASSERT_TRUE(store::WriteDatasetStore(ChaosDataset(), source_).ok());
    // Uninterrupted reference run: every faulted run must converge to
    // exactly these bytes.
    const ChildOutcome baseline =
        SpawnChild(source_, Path("baseline"), Path("baseline.dump"), "");
    ASSERT_FALSE(baseline.signalled) << "baseline died: " << baseline.signal;
    ASSERT_EQ(baseline.exit_code, 0);
    expected_ = ReadFileBytes(Path("baseline.dump"));
    ASSERT_FALSE(expected_.empty());
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  /// Crash the child at `spec` (expecting death by `expect_signal`), then
  /// restart it clean over the same output dir and require baseline bytes.
  void CrashAndRecover(const std::string& spec, int expect_signal,
                       const std::string& tag) {
    SCOPED_TRACE("killed at " + spec);
    const std::string out_dir = Path("out_" + tag);
    const std::string dump = Path("dump_" + tag);

    const ChildOutcome crash = SpawnChild(source_, out_dir, dump, spec);
    ASSERT_TRUE(crash.signalled)
        << "expected a signal, child exited with " << crash.exit_code;
    EXPECT_EQ(crash.signal, expect_signal);
    EXPECT_TRUE(ReadFileBytes(dump).empty())
        << "crashed child must not have published a dump";

    const ChildOutcome restart = SpawnChild(source_, out_dir, dump, "");
    ASSERT_FALSE(restart.signalled)
        << "restart died with signal " << restart.signal;
    ASSERT_EQ(restart.exit_code, 0);
    EXPECT_EQ(ReadFileBytes(dump), expected_)
        << "resumed output differs from the uninterrupted run";
  }

  fs::path dir_;
  std::string source_;
  std::string expected_;
};

// kill -9-equivalent (abort leaves no atexit cleanup, like SIGKILL minus
// the unkillability) at every window lifecycle boundary and inside every
// layer underneath it: extraction, carry spill, store block writes, the
// atomic rename, the manifest snapshot, and the shard checkpoint.
TEST_F(PipelineChaosTest, SurvivesAbortAtEveryLifecyclePoint) {
  const std::vector<std::string> specs = {
      "pipeline.window_start:abort@2",
      "pipeline.window_extracted:abort@1",
      "pipeline.window_extracted:abort@4",
      "pipeline.window_anonymized:abort@2",
      "pipeline.window_published:abort@1",
      "pipeline.window_published:abort@3",
      "pipeline.manifest_saved:abort@2",
      "pipeline.manifest_saved:abort@5",
      "window_io.extract:abort@3",
      "window_io.carry_saved:abort@1",
      "window_io.carry_saved:abort@2",
      "store.write_block:abort@4",
      "store.rename:abort@3",
      "snapshot.rename:abort@2",
      "shard.checkpoint_saved:abort@1",
  };
  for (size_t i = 0; i < specs.size(); ++i) {
    CrashAndRecover(specs[i], SIGABRT, "abort_" + std::to_string(i));
  }
}

// SIGTERM (graceful-shutdown path of an init system or container runtime)
// delivered at torn-rename-adjacent points must be just as recoverable.
TEST_F(PipelineChaosTest, SurvivesSigtermMidPublish) {
  const std::vector<std::string> specs = {
      "pipeline.window_published:sigterm@2",
      "window_io.carry_saved:sigterm@1",
      "snapshot.rename:sigterm@3",
  };
  for (size_t i = 0; i < specs.size(); ++i) {
    CrashAndRecover(specs[i], SIGTERM, "term_" + std::to_string(i));
  }
}

// Injected ENOSPC / EIO / EDQUOT on a specific write in the publish
// sequence: the per-window RetryCall must absorb it — the run exits 0 on
// the first invocation and the published bytes match the clean baseline.
TEST_F(PipelineChaosTest, RetryAbsorbsInjectedDiskErrors) {
  const std::vector<std::string> specs = {
      "store.fsync:errno=ENOSPC@2",
      "store.write_block:errno=EIO@3",
      "snapshot.write:errno=ENOSPC@1",
      "snapshot.fsync:errno=EDQUOT@2",
  };
  for (size_t i = 0; i < specs.size(); ++i) {
    SCOPED_TRACE("errno spec " + specs[i]);
    const std::string tag = std::to_string(i);
    const ChildOutcome run = SpawnChild(source_, Path("out_e" + tag),
                                        Path("dump_e" + tag), specs[i]);
    ASSERT_FALSE(run.signalled) << "died with signal " << run.signal;
    ASSERT_EQ(run.exit_code, 0)
        << "retry policy failed to absorb the injected error";
    EXPECT_EQ(ReadFileBytes(Path("dump_e" + tag)), expected_);
  }
}

// ENOSPC that outlasts the retry budget is a clean failure (no dump, no
// torn published window) and a later restart on the healed disk converges.
TEST_F(PipelineChaosTest, ExhaustedRetriesFailCleanThenRecover) {
  // errno on three consecutive attempts of the same window: fire on hits
  // 2, 3 and 4 would need three armed specs; the registry arms one errno
  // shot per site, so stack three different sites inside one window's
  // publish sequence instead.
  const std::string spec =
      "store.fsync:errno=ENOSPC@2,store.write_block:errno=ENOSPC@4,"
      "snapshot.write:errno=ENOSPC@1,snapshot.fsync:errno=ENOSPC@1,"
      "snapshot.rename:errno=ENOSPC@1";
  const std::string out_dir = Path("out");
  const std::string dump = Path("dump");
  const ChildOutcome starved = SpawnChild(source_, out_dir, dump, spec);
  ASSERT_FALSE(starved.signalled);
  if (starved.exit_code != 0) {
    EXPECT_EQ(starved.exit_code, 2) << "pipeline error, not a dump error";
    EXPECT_TRUE(ReadFileBytes(dump).empty());
  }
  const ChildOutcome healed = SpawnChild(source_, out_dir, dump, "");
  ASSERT_FALSE(healed.signalled);
  ASSERT_EQ(healed.exit_code, 0);
  EXPECT_EQ(ReadFileBytes(dump), expected_);
}

// Seed-reproducible multi-crash schedules: each seed derives a fixed
// sequence of (site, hit) crash points via xorshift64, the publisher is
// crashed at each in turn (every restart resuming the last one's wreckage),
// and the final clean restart must still produce baseline bytes. A child
// that survives a scheduled crash (the resumed run no longer reaches that
// hit count) must already have converged.
TEST_F(PipelineChaosTest, SeededCrashSchedulesConverge) {
  const std::vector<std::string> sites = {
      "pipeline.window_start",     "pipeline.window_extracted",
      "pipeline.window_anonymized", "pipeline.window_published",
      "pipeline.manifest_saved",   "window_io.carry_saved",
      "store.write_block",         "store.rename",
      "snapshot.rename",
  };
  for (const uint64_t seed : {1ull, 7ull, 23ull}) {
    SCOPED_TRACE("schedule seed " + std::to_string(seed));
    uint64_t state = seed * 0x9e3779b97f4a7c15ULL + 1;
    const auto next = [&state]() {
      state ^= state << 13;
      state ^= state >> 7;
      state ^= state << 17;
      return state;
    };
    const std::string out_dir = Path("out_s" + std::to_string(seed));
    const std::string dump = Path("dump_s" + std::to_string(seed));
    for (int crash = 0; crash < 3; ++crash) {
      const std::string& site = sites[next() % sites.size()];
      const int hit = static_cast<int>(next() % 4) + 1;
      const std::string spec =
          site + ":abort@" + std::to_string(hit);
      SCOPED_TRACE("crash " + std::to_string(crash) + " at " + spec);
      const ChildOutcome outcome = SpawnChild(source_, out_dir, dump, spec);
      if (!outcome.signalled) {
        // Resume adopted enough windows that the site never reached the
        // scheduled hit: the run completed; it must already be converged.
        ASSERT_EQ(outcome.exit_code, 0);
        EXPECT_EQ(ReadFileBytes(dump), expected_);
        continue;
      }
      EXPECT_EQ(outcome.signal, SIGABRT);
    }
    const ChildOutcome final_run = SpawnChild(source_, out_dir, dump, "");
    ASSERT_FALSE(final_run.signalled)
        << "final restart died with signal " << final_run.signal;
    ASSERT_EQ(final_run.exit_code, 0);
    EXPECT_EQ(ReadFileBytes(dump), expected_)
        << "multi-crash schedule failed to converge";
  }
}

}  // namespace
}  // namespace wcop

// Custom main: child mode must not run the test suite.
int main(int argc, char** argv) {
  if (argc == 5 && std::string(argv[1]) == "--child=run") {
    return wcop::RunPipelineChild(argv[2], argv[3], argv[4]);
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
