#ifndef WCOP_COMMON_STOPWATCH_H_
#define WCOP_COMMON_STOPWATCH_H_

#include <chrono>
#include <cstdint>

#include "common/telemetry.h"

namespace wcop {

/// Wall-clock stopwatch used by the benchmark harness to report algorithm
/// runtimes (the "runtime (seconds)" row of Table 3).
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  /// Restarts the stopwatch.
  void Reset() { start_ = Clock::now(); }

  /// Seconds elapsed since construction or the last Reset().
  double ElapsedSeconds() const {
    return std::chrono::duration<double>(Clock::now() - start_).count();
  }

  /// Milliseconds elapsed since construction or the last Reset().
  double ElapsedMillis() const { return ElapsedSeconds() * 1e3; }

  /// Nanoseconds elapsed since construction or the last Reset(), as the
  /// integer a telemetry histogram records.
  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(Clock::now() -
                                                                start_)
        .count();
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

/// RAII timer: records the elapsed nanoseconds into a telemetry histogram
/// when the scope closes. A null histogram disables it, so call sites can
/// write
///
///   ScopedTimer timer(tel ? tel->metrics().GetHistogram("phase.x_ns")
///                         : nullptr);
///
/// and pay nothing when telemetry is detached.
class ScopedTimer {
 public:
  explicit ScopedTimer(telemetry::Histogram* histogram)
      : histogram_(histogram) {}
  ~ScopedTimer() {
    if (histogram_ != nullptr) {
      histogram_->Record(static_cast<uint64_t>(watch_.ElapsedNanos()));
    }
  }

  ScopedTimer(const ScopedTimer&) = delete;
  ScopedTimer& operator=(const ScopedTimer&) = delete;

  /// The underlying stopwatch (e.g. to also print the elapsed time).
  const Stopwatch& watch() const { return watch_; }

 private:
  telemetry::Histogram* histogram_;
  Stopwatch watch_;
};

}  // namespace wcop

#endif  // WCOP_COMMON_STOPWATCH_H_
