#ifndef WCOP_CLUSTER_DBSCAN_H_
#define WCOP_CLUSTER_DBSCAN_H_

#include <cstdint>
#include <functional>
#include <vector>

namespace wcop {

/// Generic DBSCAN (Ester et al. 1996) over `num_items` abstract items.
///
/// The caller supplies a neighbour provider: given an item index, return the
/// indices of all items within eps (the item itself may or may not be
/// included — DBSCAN adds it). This keeps the algorithm independent of the
/// metric/index: TRACLUS runs it over line segments with the three-component
/// segment distance, convoy discovery runs it over per-snapshot object
/// positions with a grid index.
///
/// Label semantics in the result: >= 0 cluster id, kNoise for noise.
struct DbscanResult {
  static constexpr int kNoise = -1;

  std::vector<int> labels;   ///< one label per item
  int num_clusters = 0;

  /// Items grouped per cluster (noise excluded).
  std::vector<std::vector<size_t>> Clusters() const;
};

using NeighborProvider = std::function<std::vector<size_t>(size_t item)>;

/// Runs DBSCAN. `min_points` counts the item itself (the classic MinPts):
/// an item is a core point when |N_eps(item)| >= min_points, where the
/// neighbourhood includes the item.
DbscanResult Dbscan(size_t num_items, size_t min_points,
                    const NeighborProvider& neighbors);

}  // namespace wcop

#endif  // WCOP_CLUSTER_DBSCAN_H_
