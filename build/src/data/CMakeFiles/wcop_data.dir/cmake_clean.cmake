file(REMOVE_RECURSE
  "CMakeFiles/wcop_data.dir/geolife_parser.cc.o"
  "CMakeFiles/wcop_data.dir/geolife_parser.cc.o.d"
  "CMakeFiles/wcop_data.dir/synthetic.cc.o"
  "CMakeFiles/wcop_data.dir/synthetic.cc.o.d"
  "libwcop_data.a"
  "libwcop_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wcop_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
