#ifndef WCOP_COMMON_SIGNALS_H_
#define WCOP_COMMON_SIGNALS_H_

#include "common/run_context.h"

namespace wcop {

/// Signal-aware cooperative shutdown (DESIGN.md "Service operation").
///
/// InstallShutdownSignalHandlers() registers SIGINT/SIGTERM handlers that do
/// nothing but flip the process-wide cancellation flag — the only
/// async-signal-safe thing worth doing. Long-running work threads the
/// returned CancellationToken through a RunContext; the next cooperative
/// Check() trips with kCancelled, the drivers flush their final checkpoint,
/// and the process exits cleanly instead of losing in-flight progress (the
/// behaviour `kill -9` tests separately through the crash-recovery path).
///
/// The handlers are installed once per process; repeated calls return a
/// token sharing the same flag. A second signal while shutdown is already
/// requested restores the default disposition and re-raises, so a wedged
/// process can still be killed with a double Ctrl-C.

/// Installs the SIGINT/SIGTERM handlers (idempotent) and returns a token
/// that trips when either signal arrives.
CancellationToken InstallShutdownSignalHandlers();

/// True once a shutdown signal has been observed.
bool ShutdownSignalReceived();

/// The last shutdown signal observed (SIGINT/SIGTERM), 0 when none.
int LastShutdownSignal();

/// Testing hook: forgets the observed signal and binds future
/// InstallShutdownSignalHandlers() calls to a fresh flag. Tokens handed out
/// before the reset keep their (possibly tripped) state.
void ResetShutdownSignalStateForTesting();

}  // namespace wcop

#endif  // WCOP_COMMON_SIGNALS_H_
