file(REMOVE_RECURSE
  "CMakeFiles/fig8_bounded_editing.dir/fig8_bounded_editing.cpp.o"
  "CMakeFiles/fig8_bounded_editing.dir/fig8_bounded_editing.cpp.o.d"
  "fig8_bounded_editing"
  "fig8_bounded_editing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_bounded_editing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
