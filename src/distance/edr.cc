#include "distance/edr.h"

#include <algorithm>
#include <cmath>
#include <cstdint>

#include "distance/edr_kernel.h"

namespace wcop {

EdrTolerance EdrTolerance::FromDeltaMax(double delta_max, double avg_speed) {
  EdrTolerance tol;
  tol.dx = 10.0 * delta_max;
  tol.dy = 10.0 * delta_max;
  tol.dt = avg_speed > 0.0 ? 10.0 * delta_max / avg_speed
                           : std::numeric_limits<double>::infinity();
  return tol;
}

bool EdrTolerance::Matches(const Point& a, const Point& b) const {
  return std::abs(a.x - b.x) <= dx && std::abs(a.y - b.y) <= dy &&
         std::abs(a.t - b.t) <= dt;
}

double EdrDistance(const Trajectory& a, const Trajectory& b,
                   const EdrTolerance& tolerance) {
  // Full-width evaluation through the kernel dispatch (scalar DP for small
  // shapes, bit-parallel for long ones); every kernel is bit-identical to
  // the classic two-row DP.
  const uint32_t full =
      static_cast<uint32_t>(std::max(a.size(), b.size()));
  return static_cast<double>(EdrOps(a, b, tolerance, full).ops);
}

double EdrDistance(const Trajectory& a, const Trajectory& b,
                   const EdrTolerance& tolerance, double cutoff,
                   bool* abandoned) {
  const double bound = a.size() >= b.size()
                           ? static_cast<double>(a.size() - b.size())
                           : static_cast<double>(b.size() - a.size());
  if (bound > cutoff) {
    if (abandoned != nullptr) {
      *abandoned = true;
    }
    return bound;
  }
  if (abandoned != nullptr) {
    *abandoned = false;
  }
  return EdrDistance(a, b, tolerance);
}

double NormalizedEdrDistance(const Trajectory& a, const Trajectory& b,
                             const EdrTolerance& tolerance) {
  const size_t longest = std::max(a.size(), b.size());
  if (longest == 0) {
    return 0.0;
  }
  return EdrDistance(a, b, tolerance) / static_cast<double>(longest);
}

double NormalizedEdrDistance(const Trajectory& a, const Trajectory& b,
                             const EdrTolerance& tolerance, double cutoff,
                             bool* abandoned) {
  const size_t longest = std::max(a.size(), b.size());
  if (longest == 0) {
    if (abandoned != nullptr) {
      *abandoned = false;
    }
    return 0.0;
  }
  const size_t shortest = std::min(a.size(), b.size());
  const double bound = static_cast<double>(longest - shortest) /
                       static_cast<double>(longest);
  if (bound > cutoff) {
    if (abandoned != nullptr) {
      *abandoned = true;
    }
    return bound;
  }
  if (abandoned != nullptr) {
    *abandoned = false;
  }
  return NormalizedEdrDistance(a, b, tolerance);
}

std::vector<EdrOp> EdrOpSequence(const Trajectory& traj,
                                 const Trajectory& pivot,
                                 const EdrTolerance& tolerance) {
  const size_t n = traj.size();
  const size_t m = pivot.size();
  // Full DP table for backtracking. dp[i][j] = EDR(traj[0..i), pivot[0..j)).
  std::vector<std::vector<uint32_t>> dp(n + 1, std::vector<uint32_t>(m + 1));
  for (size_t i = 0; i <= n; ++i) {
    dp[i][0] = static_cast<uint32_t>(i);
  }
  for (size_t j = 0; j <= m; ++j) {
    dp[0][j] = static_cast<uint32_t>(j);
  }
  for (size_t i = 1; i <= n; ++i) {
    const Point& pa = traj[i - 1];
    for (size_t j = 1; j <= m; ++j) {
      const uint32_t subcost = tolerance.Matches(pa, pivot[j - 1]) ? 0u : 1u;
      dp[i][j] = std::min(
          {dp[i - 1][j - 1] + subcost, dp[i - 1][j] + 1u, dp[i][j - 1] + 1u});
    }
  }

  // Backtrack from (n, m). Prefer true matches; among edits prefer the one
  // that keeps the alignment balanced (diagonal substitutions are decomposed
  // into a delete-from-traj plus a delete-from-pivot so that Algorithm 4 sees
  // only match/delete ops, mirroring how W4M replays the script).
  std::vector<EdrOp> reversed;
  size_t i = n, j = m;
  while (i > 0 || j > 0) {
    if (i > 0 && j > 0 && tolerance.Matches(traj[i - 1], pivot[j - 1]) &&
        dp[i][j] == dp[i - 1][j - 1]) {
      reversed.push_back(EdrOp{EdrOp::Kind::kMatch, i - 1, j - 1});
      --i;
      --j;
      continue;
    }
    if (i > 0 && j > 0 && dp[i][j] == dp[i - 1][j - 1] + 1) {
      // Substitution: traj point replaced by a fresh point near the pivot's.
      reversed.push_back(EdrOp{EdrOp::Kind::kDeleteFromPivot, 0, j - 1});
      reversed.push_back(EdrOp{EdrOp::Kind::kDeleteFromTraj, i - 1, 0});
      --i;
      --j;
      continue;
    }
    if (i > 0 && dp[i][j] == dp[i - 1][j] + 1) {
      reversed.push_back(EdrOp{EdrOp::Kind::kDeleteFromTraj, i - 1, 0});
      --i;
      continue;
    }
    // j > 0 must hold here.
    reversed.push_back(EdrOp{EdrOp::Kind::kDeleteFromPivot, 0, j - 1});
    --j;
  }
  std::reverse(reversed.begin(), reversed.end());
  return reversed;
}

bool IsValidOpSequence(const std::vector<EdrOp>& ops, size_t traj_size,
                       size_t pivot_size) {
  size_t next_traj = 0;
  size_t next_pivot = 0;
  for (const EdrOp& op : ops) {
    switch (op.kind) {
      case EdrOp::Kind::kMatch:
        if (op.traj_index != next_traj || op.pivot_index != next_pivot) {
          return false;
        }
        ++next_traj;
        ++next_pivot;
        break;
      case EdrOp::Kind::kDeleteFromTraj:
        if (op.traj_index != next_traj) {
          return false;
        }
        ++next_traj;
        break;
      case EdrOp::Kind::kDeleteFromPivot:
        if (op.pivot_index != next_pivot) {
          return false;
        }
        ++next_pivot;
        break;
    }
  }
  return next_traj == traj_size && next_pivot == pivot_size;
}

}  // namespace wcop
