# Empty compiler generated dependencies file for continuous_publication.
# This may be replaced when dependencies are built.
