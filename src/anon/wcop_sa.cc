#include "anon/wcop_sa.h"

#include "anon/wcop_ct.h"
#include "common/stopwatch.h"

namespace wcop {

Result<WcopSaResult> RunWcopSa(const Dataset& dataset, Segmenter* segmenter,
                               const WcopOptions& options) {
  if (segmenter == nullptr) {
    return Status::InvalidArgument("segmenter must not be null");
  }
  WCOP_RETURN_IF_ERROR(dataset.Validate());
  WCOP_RETURN_IF_ERROR(CheckRunContext(options.run_context));
  telemetry::Telemetry* tel = options.telemetry;
  WCOP_TRACE_SPAN(tel, "wcop_sa/run");
  Stopwatch timer;
  Dataset segmented;
  {
    WCOP_TRACE_SPAN(tel, "wcop_sa/segment");
    WCOP_ASSIGN_OR_RETURN(segmented, segmenter->Segment(dataset));
  }
  if (segmented.empty()) {
    return Status::Internal("segmentation produced an empty dataset");
  }
  if (tel != nullptr) {
    telemetry::CounterAdd(
        tel->metrics().GetCounter("segment.sub_trajectories"),
        segmented.size());
  }
  // Between phases: segmentation may have consumed the whole budget. The
  // anonymization phase below handles mid-run trips itself (including the
  // allow_partial_results degradation).
  if (!options.allow_partial_results) {
    WCOP_RETURN_IF_ERROR(CheckRunContext(options.run_context));
  }
  WCOP_ASSIGN_OR_RETURN(AnonymizationResult anonymization,
                        RunWcopCt(segmented, options));
  // Report the full pipeline runtime (segmentation + anonymization), as the
  // paper's Table 3 does for the SA variants.
  anonymization.report.runtime_seconds = timer.ElapsedSeconds();
  // Re-snapshot so counters added by the segmenter show in the final report.
  SnapshotTelemetry(options, &anonymization.report);
  WcopSaResult result;
  result.anonymization = std::move(anonymization);
  result.segmented = std::move(segmented);
  return result;
}

}  // namespace wcop
