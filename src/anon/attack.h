#ifndef WCOP_ANON_ATTACK_H_
#define WCOP_ANON_ATTACK_H_

#include <cstddef>
#include <cstdint>

#include "common/result.h"
#include "common/run_context.h"
#include "common/telemetry.h"
#include "traj/dataset.h"

namespace wcop {

/// Empirical privacy validation: a re-identification (record linkage)
/// attack against a published dataset.
///
/// Threat model (the one motivating (k,delta)-anonymity): the adversary has
/// observed a handful of timestamped locations of a victim — a subsample of
/// the victim's *original* trajectory — and tries to identify the victim's
/// record in the published dataset by picking the published trajectory
/// closest to the observations. If the victim is hidden in a
/// (k,delta)-anonymity set, the k co-localized members are near-
/// indistinguishable under such observations and top-1 linkage should
/// succeed with probability about 1/k.
struct AttackOptions {
  /// How many (location, time) observations the adversary holds per victim.
  size_t observations_per_victim = 5;

  /// How many victims to attack (0 = every original trajectory).
  size_t num_victims = 0;

  /// Observation noise: GPS-style Gaussian jitter applied to the observed
  /// locations (metres). 0 = adversary sees exact original fixes.
  double observation_noise = 0.0;

  /// Uncertainty-aware adversary (Definition 1): when > 0, the observations
  /// are drawn from a random *possible motion curve* of the victim within a
  /// cylinder of this diameter, instead of the exact recorded fixes — the
  /// adversary only knows the victim up to location uncertainty.
  double pmc_delta = 0.0;

  uint64_t seed = 99;

  /// Thread count for the candidate scan (wcop::parallel resolution
  /// rules; 1 = exact serial path). The result is identical across thread
  /// counts: this entry point routes through wcop::attack's deterministic
  /// re-identification engine (see src/attack/reident.h).
  int threads = 1;

  /// Optional deadline / cancellation / budget, honored at per-victim
  /// granularity; candidate scans charge candidate pairs and exact
  /// scorings charge distance computations. Null = unbounded.
  const RunContext* run_context = nullptr;

  /// Optional metric sink (`attack.victims`, `attack.candidates`,
  /// `attack.candidates.pruned`, `attack.matches.top1`, `attack.rank`).
  telemetry::Telemetry* telemetry = nullptr;
};

struct AttackResult {
  size_t victims_attacked = 0;
  size_t top1_hits = 0;          ///< expected successful top-1 guesses,
                                 ///< rounded (ties broken uniformly)
  double top1_success_rate = 0.0;
  double mean_true_rank = 0.0;   ///< 1 = always first; higher = safer;
                                 ///< exact ties score the block midpoint
  /// Mean over victims of 1/rank — an adversary's expected linkage
  /// confidence; approaches 1 when anonymization is broken and 1/k within
  /// intact anonymity sets.
  double mean_reciprocal_rank = 0.0;
};

/// Runs the linkage attack: for each victim, draw observations from its
/// trajectory in `original`, then rank every trajectory in `published` by
/// mean spatial distance to the observations (at the observed timestamps,
/// with linear interpolation). Victims whose trajectory was suppressed
/// from `published` are skipped (nothing to link to). Fails on empty
/// inputs or zero observations.
Result<AttackResult> SimulateLinkageAttack(const Dataset& original,
                                           const Dataset& published,
                                           const AttackOptions& options = {});

/// The *tracking* adversary of the path-confusion literature (Hoh &
/// Gruteser): the attacker knows where the victim started and follows the
/// published data forward in time, at each step continuing with the
/// published trajectory closest to the tracked position. Crossing paths
/// (fake or real) make the tracker switch onto the wrong user — the
/// confusion that Path Perturbation creates and that pure linkage metrics
/// cannot see.
struct TrackingAttackOptions {
  double step_seconds = 60.0;  ///< tracker update cadence
  size_t num_victims = 0;      ///< 0 = every original trajectory
  uint64_t seed = 99;

  /// Optional deadline / cancellation / budget, honored per victim; each
  /// tracking step charges the candidate scan as candidate pairs.
  const RunContext* run_context = nullptr;

  /// Optional metric sink (`attack.tracking.victims`,
  /// `attack.tracking.steps`, `attack.tracking.switches`).
  telemetry::Telemetry* telemetry = nullptr;
};

struct TrackingAttackResult {
  size_t victims_tracked = 0;
  size_t end_on_victim = 0;       ///< tracker finished on the right user
  double tracking_success_rate = 0.0;
  double mean_path_switches = 0.0;  ///< how often the tracker changed
                                    ///< trajectories mid-chase
  /// Fraction of tracking steps spent on the correct trajectory, averaged
  /// over victims — the robust exposure measure (a tracker can lose the
  /// target at the very end and still have observed the entire journey).
  double mean_time_on_target = 0.0;
};

Result<TrackingAttackResult> SimulateTrackingAttack(
    const Dataset& original, const Dataset& published,
    const TrackingAttackOptions& options = {});

}  // namespace wcop

#endif  // WCOP_ANON_ATTACK_H_
