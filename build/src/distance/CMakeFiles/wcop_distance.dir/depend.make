# Empty dependencies file for wcop_distance.
# This may be replaced when dependencies are built.
