#ifndef WCOP_ANON_WCOP_B_H_
#define WCOP_ANON_WCOP_B_H_

#include <string>
#include <vector>

#include "anon/types.h"
#include "common/result.h"
#include "common/retry.h"
#include "traj/dataset.h"

namespace wcop {

/// Parameters of the Bounded Personalized (K,Delta)-anonymity solver.
struct WcopBOptions {
  /// Accepted total distortion (Eq. 7). Set to 0 to force the full editing
  /// sweep (useful to chart distortion vs edit size, Figure 8).
  double distort_max = 0.0;

  /// How many additional trajectories get their requirements relaxed per
  /// round (Algorithm 6's `step`; the paper's experiments use 1).
  size_t step = 1;

  /// Demandingness weights of Eq. 3 (the paper uses 1/2, 1/2).
  double w1 = 0.5;
  double w2 = 0.5;

  /// Optional cap on the editing sweep (0 = no cap, i.e. up to |D|).
  /// Algorithm 6 stops at |D| anyway; benchmarks use a cap to chart a
  /// bounded edit-size range.
  size_t max_edit_size = 0;

  /// How requirements are relaxed — the "alternative editing methods" of
  /// the paper's future-work list:
  ///  * kThreshold (Algorithm 6): edited trajectories adopt the threshold
  ///    trajectory's k and delta outright;
  ///  * kProportional: they move only a `proportional_strength` fraction
  ///    of the way towards the threshold (gentler edits, smaller DE).
  enum class EditPolicy { kThreshold, kProportional };
  EditPolicy edit_policy = EditPolicy::kThreshold;
  double proportional_strength = 0.5;

  /// Durable checkpoint/resume (DESIGN.md "Crash recovery"). When set, the
  /// driver persists its state through the atomic snapshot layer after
  /// every `checkpoint_every_rounds` completed edit-and-re-anonymize
  /// rounds, and on startup resumes from the checkpoint: completed rounds
  /// are spliced back in and the sweep continues from the next edit size
  /// instead of iteration 0. A terminal checkpoint (bound satisfied or
  /// editing exhausted) replays the stored result directly. A corrupt
  /// current checkpoint falls back to `checkpoint_path`.prev; with no
  /// readable checkpoint the sweep starts from scratch. A fingerprint
  /// mismatch (different dataset/options) fails with kFailedPrecondition.
  std::string checkpoint_path;
  size_t checkpoint_every_rounds = 1;
  /// Optional retry policy for checkpoint snapshot I/O (null = no retries).
  const RetryPolicy* snapshot_retry = nullptr;
};

/// One editing-and-anonymization round of Algorithm 6.
struct WcopBRound {
  size_t edit_size = 0;
  double ttd = 0.0;                ///< translation distortion of this round
  double editing_distortion = 0.0; ///< DE of this round (Eq. 6)
  double total_distortion = 0.0;   ///< Eq. 7
  size_t num_clusters = 0;
  size_t trashed = 0;
};

/// Full output of WCOP-B.
struct WcopBResult {
  AnonymizationResult anonymization;  ///< the round that was accepted
  std::vector<WcopBRound> rounds;     ///< every round, in execution order
  size_t final_edit_size = 0;
  bool bound_satisfied = false;       ///< false when even editing the whole
                                      ///< dataset could not meet distort_max
  /// Resume provenance: true when this run restored completed rounds from
  /// a checkpoint instead of recomputing them (resumed_rounds of them).
  bool resumed = false;
  size_t resumed_rounds = 0;
};

/// WCOP-B (Algorithm 6): ranks trajectories by dataset-aware demandingness
/// (Eq. 3), then repeatedly relaxes the (k,delta) requirements of the
/// `edit_size` most demanding trajectories to the threshold trajectory's
/// values (k decreases, delta increases — editing never tightens), re-runs
/// WCOP-CT, and accounts the editing penalty DE (Eq. 5-6) on top of the
/// translation distortion, growing edit_size by `step` until the bound is
/// met or the whole dataset has been edited.
///
/// Works on whole trajectories or on pre-segmented sub-trajectories alike
/// (feed it the output of a Segmenter for the WCOP-SA + B combination).
Result<WcopBResult> RunWcopB(const Dataset& dataset,
                             const WcopOptions& options = {},
                             const WcopBOptions& b_options = {});

}  // namespace wcop

#endif  // WCOP_ANON_WCOP_B_H_
