#include "common/parallel.h"

#include <algorithm>
#include <cstdlib>

namespace wcop {
namespace parallel {

int HardwareThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

namespace {

/// WCOP_THREADS, parsed strictly: a positive decimal integer (clamped to a
/// sane ceiling). Anything else means "not set".
int ParseThreadsEnv() {
  const char* env = std::getenv("WCOP_THREADS");
  if (env == nullptr || *env == '\0') {
    return 0;
  }
  char* end = nullptr;
  const long value = std::strtol(env, &end, 10);
  if (end == env || *end != '\0' || value <= 0) {
    return 0;
  }
  return static_cast<int>(std::min<long>(value, 1024));
}

}  // namespace

int DefaultThreads() {
  static const int kDefault = [] {
    const int env = ParseThreadsEnv();
    return env > 0 ? env : HardwareThreads();
  }();
  return kDefault;
}

int ResolveThreads(int requested) {
  return requested > 0 ? requested : DefaultThreads();
}

struct ThreadPool::Batch {
  size_t n = 0;
  size_t grain = 1;
  size_t num_chunks = 0;
  const std::function<void(size_t)>* fn = nullptr;
  const RunContext* context = nullptr;
  telemetry::Telemetry* telemetry = nullptr;
  telemetry::Counter* tasks_counter = nullptr;

  /// Next unclaimed chunk; workers and the coordinator race fetch_add on it
  /// (the work-distribution decision — never a result-ordering decision).
  std::atomic<size_t> next_chunk{0};
  /// Set on the first trip/exception: no further chunks are claimed.
  std::atomic<bool> stopped{false};

  std::mutex mu;
  std::condition_variable done;
  int runners = 0;               ///< threads inside RunChunks (guarded by mu)
  Status status;                 ///< first context trip (guarded by mu)
  std::exception_ptr exception;  ///< first thrown exception (guarded by mu)

  bool exhausted() const {
    return stopped.load(std::memory_order_acquire) ||
           next_chunk.load(std::memory_order_relaxed) >= num_chunks;
  }
};

namespace {

/// Claims and runs chunks until the batch is exhausted or stopped. Shared
/// by pool workers and the coordinating thread. The final lock of b.mu
/// publishes every result slot written here to the coordinator, which
/// reacquires b.mu while waiting for runners == 0.
void RunChunks(ThreadPool::Batch& b) {
  {
    std::lock_guard<std::mutex> lock(b.mu);
    ++b.runners;
  }
  // Lifetime guard: fn/context/telemetry are owned by the coordinator's
  // caller. A worker that registered *before* the coordinator saw
  // runners == 0 keeps the coordinator waiting (state alive for the whole
  // body); one that registered after necessarily observes the batch
  // exhausted here (exhaustion is monotonic and the runners mutex orders
  // the accesses) and must not touch any caller-owned pointer.
  if (!b.exhausted()) {
    WCOP_TRACE_SPAN(b.telemetry, "parallel/worker");
    for (;;) {
      if (b.stopped.load(std::memory_order_acquire)) {
        break;
      }
      // Cooperative yield point: one deadline/cancellation/budget check per
      // chunk boundary, identical on the serial path.
      if (b.context != nullptr) {
        if (Status s = b.context->Check(); !s.ok()) {
          std::lock_guard<std::mutex> lock(b.mu);
          if (b.status.ok() && b.exception == nullptr) {
            b.status = std::move(s);
          }
          b.stopped.store(true, std::memory_order_release);
          break;
        }
      }
      const size_t chunk = b.next_chunk.fetch_add(1, std::memory_order_relaxed);
      if (chunk >= b.num_chunks) {
        break;
      }
      const size_t begin = chunk * b.grain;
      const size_t end = std::min(b.n, begin + b.grain);
      try {
        for (size_t i = begin; i < end; ++i) {
          (*b.fn)(i);
        }
      } catch (...) {
        std::lock_guard<std::mutex> lock(b.mu);
        if (b.exception == nullptr) {
          b.exception = std::current_exception();
        }
        b.stopped.store(true, std::memory_order_release);
        break;
      }
      telemetry::CounterAdd(b.tasks_counter);
    }
  }
  std::lock_guard<std::mutex> lock(b.mu);
  if (--b.runners == 0) {
    b.done.notify_all();
  }
}

}  // namespace

ThreadPool& ThreadPool::Global() {
  // Function-local static: lazily started on first use, workers joined by
  // the destructor during static teardown (idle by then — every ParallelFor
  // completes before its caller returns).
  static ThreadPool pool;
  return pool;
}

ThreadPool::~ThreadPool() { Shutdown(); }

void ThreadPool::EnsureWorkers(int count) {
  if (count <= 0) {
    return;
  }
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  while (static_cast<int>(workers_.size()) < count) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void ThreadPool::Shutdown() {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (workers_.empty()) {
      return;
    }
    shutdown_ = true;
  }
  wake_.notify_all();
  for (std::thread& worker : workers_) {
    worker.join();
  }
  workers_.clear();
  std::lock_guard<std::mutex> lock(mu_);
  shutdown_ = false;  // a later EnsureWorkers restarts the pool
}

int ThreadPool::worker_count() const {
  std::lock_guard<std::mutex> lifecycle(lifecycle_mu_);
  return static_cast<int>(workers_.size());
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::shared_ptr<Batch> batch;
    {
      std::unique_lock<std::mutex> lock(mu_);
      wake_.wait(lock, [this] { return shutdown_ || !batches_.empty(); });
      if (shutdown_) {
        return;
      }
      batch = batches_.front();
    }
    RunChunks(*batch);
    if (batch->exhausted()) {
      Retire(batch);
    }
  }
}

void ThreadPool::Submit(const std::shared_ptr<Batch>& batch) {
  std::lock_guard<std::mutex> lock(mu_);
  batches_.push_back(batch);
  if (batch->telemetry != nullptr) {
    batch->telemetry->metrics().GetGauge("parallel.queue_depth")
        ->Set(static_cast<double>(batches_.size()));
  }
  wake_.notify_all();
}

void ThreadPool::Retire(const std::shared_ptr<Batch>& batch) {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto it = batches_.begin(); it != batches_.end(); ++it) {
    if (it->get() == batch.get()) {
      batches_.erase(it);
      break;
    }
  }
}

Status ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                   const ParallelOptions& options) {
  if (n == 0) {
    return Status::OK();
  }
  const int requested = ResolveThreads(options.threads);
  const size_t grain =
      options.grain > 0
          ? options.grain
          : std::max<size_t>(
                1, n / (static_cast<size_t>(requested) * 4));
  const size_t num_chunks = (n + grain - 1) / grain;
  const int threads = static_cast<int>(
      std::min<size_t>(static_cast<size_t>(requested), num_chunks));

  telemetry::Counter* tasks_counter = nullptr;
  if (options.telemetry != nullptr) {
    tasks_counter = options.telemetry->metrics().GetCounter("parallel.tasks");
    options.telemetry->metrics().GetCounter("parallel.batches")->Add(1);
    options.telemetry->metrics().GetGauge("parallel.threads")
        ->Set(static_cast<double>(threads));
  }

  if (threads <= 1) {
    // The exact serial code path: same chunk boundaries and the same
    // per-chunk context checks as the parallel path, on this thread, in
    // index order. The pool is never touched.
    for (size_t chunk = 0; chunk < num_chunks; ++chunk) {
      if (Status s = CheckRunContext(options.context); !s.ok()) {
        return s;
      }
      const size_t begin = chunk * grain;
      const size_t end = std::min(n, begin + grain);
      for (size_t i = begin; i < end; ++i) {
        fn(i);
      }
      telemetry::CounterAdd(tasks_counter);
    }
    return Status::OK();
  }

  auto batch = std::make_shared<ThreadPool::Batch>();
  batch->n = n;
  batch->grain = grain;
  batch->num_chunks = num_chunks;
  batch->fn = &fn;
  batch->context = options.context;
  batch->telemetry = options.telemetry;
  batch->tasks_counter = tasks_counter;

  ThreadPool& pool = ThreadPool::Global();
  pool.EnsureWorkers(threads - 1);
  pool.Submit(batch);
  RunChunks(*batch);  // the coordinator is always one of the runners
  {
    std::unique_lock<std::mutex> lock(batch->mu);
    batch->done.wait(lock, [&batch] { return batch->runners == 0; });
  }
  pool.Retire(batch);
  if (batch->exception != nullptr) {
    std::rethrow_exception(batch->exception);
  }
  return batch->status;
}

}  // namespace parallel
}  // namespace wcop
