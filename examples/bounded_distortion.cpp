// Scenario: an analyst has a utility budget — the published dataset may
// lose at most a given fraction of fidelity. WCOP-B meets the budget by
// relaxing the (k,delta) requirements of the most *demanding* trajectories
// (high k, tight delta) until Distortion = TTD + DE fits the bound.
//
// The example first measures the unedited WCOP-CT distortion, then asks
// WCOP-B for a 25% tighter bound and prints the editing rounds.
//
// Run:  ./bounded_distortion [--trajectories=60] [--budget=0.75]

#include <cstdio>
#include <iostream>

#include "anon/wcop.h"
#include "common/arg_parser.h"
#include "common/table_printer.h"
#include "data/synthetic.h"

using namespace wcop;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const size_t n = static_cast<size_t>(args.GetInt("trajectories", 60));
  const double budget_fraction = args.GetDouble("budget", 0.75);

  SyntheticOptions gen;
  gen.seed = 31;
  gen.num_trajectories = n;
  gen.num_users = n / 3 + 1;
  gen.points_per_trajectory = 80;
  gen.region_half_diagonal = 15000.0;
  gen.dataset_duration_days = 30.0;
  Result<Dataset> maybe_dataset = GenerateSyntheticGeoLife(gen);
  if (!maybe_dataset.ok()) {
    std::cerr << maybe_dataset.status() << "\n";
    return 1;
  }
  Dataset dataset = std::move(maybe_dataset).value();
  Rng rng(3);
  AssignUniformRequirements(&dataset, 2, 10, 20.0, 300.0, &rng);

  WcopOptions options;
  options.seed = 23;

  // Step 1: the unedited baseline tells the analyst what the data costs.
  Result<AnonymizationResult> baseline = RunWcopCt(dataset, options);
  if (!baseline.ok()) {
    std::cerr << baseline.status() << "\n";
    return 1;
  }
  const double baseline_distortion = baseline->report.total_distortion;
  std::printf("unedited WCOP-CT distortion: %.4g\n", baseline_distortion);

  // Step 2: request a tighter bound.
  WcopBOptions b_options;
  b_options.distort_max = baseline_distortion * budget_fraction;
  b_options.step = 1;
  std::printf("requested bound:             %.4g  (%.0f%% of baseline)\n\n",
              b_options.distort_max, budget_fraction * 100.0);

  Result<WcopBResult> bounded = RunWcopB(dataset, options, b_options);
  if (!bounded.ok()) {
    std::cerr << bounded.status() << "\n";
    return 1;
  }

  TablePrinter table({"edit size", "TTD", "DE", "total", "clusters"});
  for (const WcopBRound& round : bounded->rounds) {
    table.AddRow({std::to_string(round.edit_size),
                  FormatSignificant(round.ttd),
                  FormatSignificant(round.editing_distortion),
                  FormatSignificant(round.total_distortion),
                  std::to_string(round.num_clusters)});
  }
  table.Print(std::cout);

  if (bounded->bound_satisfied) {
    std::printf("\nbound met after editing the %zu most demanding "
                "trajectories (distortion %.4g <= %.4g)\n",
                bounded->final_edit_size,
                bounded->anonymization.report.total_distortion,
                b_options.distort_max);
  } else {
    std::printf("\nbound NOT reachable: even after editing %zu trajectories "
                "distortion is %.4g — the data/requirements combination is "
                "too demanding (Section 5 of the paper predicts this case)\n",
                bounded->final_edit_size,
                bounded->anonymization.report.total_distortion);
  }
  return 0;
}
