#ifndef WCOP_GEO_PROJECTION_H_
#define WCOP_GEO_PROJECTION_H_

#include "geo/point.h"

namespace wcop {

/// Equirectangular projection from WGS-84 (lat, lon) to local metric
/// coordinates, anchored at a reference latitude/longitude.
///
/// GeoLife .plt files record raw GPS latitude/longitude; every distance in
/// the paper (delta in metres, radius(D) in metres, speeds in m/s) assumes a
/// metric plane, so the parser projects through this class. The
/// equirectangular approximation is accurate to well under 0.1% over a
/// city-scale extent such as Beijing's, which is far below the uncertainty
/// thresholds the algorithms operate with.
class LocalProjection {
 public:
  /// Anchors the projection at (ref_lat_deg, ref_lon_deg); that geographic
  /// point maps to the metric origin (0, 0).
  LocalProjection(double ref_lat_deg, double ref_lon_deg);

  /// (lat, lon) in degrees -> metric (x east, y north) in metres.
  Point ToMetric(double lat_deg, double lon_deg, double time) const;

  /// Inverse transform: metric point -> (lat, lon) in degrees.
  void ToGeographic(const Point& p, double* lat_deg, double* lon_deg) const;

  double reference_latitude() const { return ref_lat_deg_; }
  double reference_longitude() const { return ref_lon_deg_; }

 private:
  double ref_lat_deg_;
  double ref_lon_deg_;
  double metres_per_deg_lat_;
  double metres_per_deg_lon_;
};

}  // namespace wcop

#endif  // WCOP_GEO_PROJECTION_H_
