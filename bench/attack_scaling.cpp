// Red-team scaling bench: re-identification audit throughput against
// growing out-of-core corpora. The store is generated tile by tile and
// never materialized in memory; the attack walks the index and block-reads
// only candidates that survive the certified MBR lower bound, so audit
// cost per victim grows with the *surviving* candidate set, not the
// corpus. The bench reports candidates/sec at each scale and fails if
//
//   - the exact-observation adversary does not pin its victim on raw data
//     (top-1 < 0.99: the attack engine itself is broken), or
//   - peak RSS exceeds --rss-budget-mb (the audit stopped being
//     out-of-core).
//
// Usage:
//   ./attack_scaling [--trajectories=8000] [--victims=128] [--threads=0]
//                    [--rss-budget-mb=2048] [--keep-store]
//                    [--json-out=FILE]

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "attack/adversary.h"
#include "attack/candidate_source.h"
#include "attack/reident.h"
#include "bench_util.h"
#include "common/arg_parser.h"
#include "common/stopwatch.h"
#include "data/synthetic.h"
#include "store/store_file.h"

using namespace wcop;
using bench::JsonOut;

namespace {

constexpr size_t kPerTile = 125;      // trajectories per synthetic city
constexpr size_t kPointsPerTraj = 12;
constexpr double kTileSpacing = 200000.0;  // metres between city origins

// Peak resident set (VmHWM) in MiB from /proc/self/status; 0 off Linux.
double PeakRssMb() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return std::strtod(line.c_str() + 6, nullptr) / 1024.0;
    }
  }
  return 0.0;
}

// Tile `tile` of the corpus. Deterministic in `tile` alone, so a smaller
// corpus is an exact prefix of a larger one and scaling curves compare
// like with like.
Result<Dataset> MakeTile(size_t tile, size_t grid_dim) {
  SyntheticOptions gen;
  gen.seed = 7 + 0x9e3779b97f4a7c15ull * (tile + 1);
  gen.num_users = kPerTile / 3 + 1;
  gen.num_trajectories = kPerTile;
  gen.points_per_trajectory = kPointsPerTraj;
  gen.sampling_interval = 60.0;
  gen.region_half_diagonal = 6000.0;
  gen.dataset_duration_days = 10.0;
  WCOP_ASSIGN_OR_RETURN(Dataset city, GenerateSyntheticGeoLife(gen));
  Rng rng(1000 + tile);
  AssignUniformRequirements(&city, 2, 5, 10.0, 200.0, &rng);
  const double dx = static_cast<double>(tile % grid_dim) * kTileSpacing;
  const double dy = static_cast<double>(tile / grid_dim) * kTileSpacing;
  const int64_t id_base = static_cast<int64_t>(tile * kPerTile);
  for (Trajectory& t : city.mutable_trajectories()) {
    for (Point& p : t.mutable_points()) {
      p.x += dx;
      p.y += dy;
    }
    t.set_id(id_base + t.id());
    t.set_object_id(id_base + t.object_id());
  }
  return city;
}

Status WriteCorpus(const std::string& path, size_t tiles, size_t grid_dim) {
  WCOP_ASSIGN_OR_RETURN(store::TrajectoryStoreWriter writer,
                        store::TrajectoryStoreWriter::Create(path));
  for (size_t tile = 0; tile < tiles; ++tile) {
    WCOP_ASSIGN_OR_RETURN(Dataset city, MakeTile(tile, grid_dim));
    for (const Trajectory& t : city.trajectories()) {
      WCOP_RETURN_IF_ERROR(writer.Append(t));
    }
  }
  return writer.Finish();
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const size_t max_trajectories =
      static_cast<size_t>(args.GetInt("trajectories", 8000));
  const size_t victims = static_cast<size_t>(args.GetInt("victims", 128));
  const int threads = static_cast<int>(args.GetInt("threads", 0));
  const double rss_budget_mb = args.GetDouble("rss-budget-mb", 2048.0);
  JsonOut json_out(args);

  bench::PrintHeader("Re-identification audit scaling (out-of-core)");

  // Sweep three corpus sizes up to the requested scale.
  std::vector<size_t> sizes;
  for (const size_t divisor : {16u, 4u, 1u}) {
    const size_t n =
        std::max(kPerTile, (max_trajectories / divisor / kPerTile) * kPerTile);
    if (sizes.empty() || n > sizes.back()) {
      sizes.push_back(n);
    }
  }

  bool ok = true;
  for (const size_t n : sizes) {
    const size_t tiles = n / kPerTile;
    size_t grid_dim = 1;
    while (grid_dim * grid_dim < tiles) {
      ++grid_dim;
    }
    const std::string store_path =
        "attack_scaling_" + std::to_string(n) + ".wst";
    Stopwatch gen_watch;
    if (Status s = WriteCorpus(store_path, tiles, grid_dim); !s.ok()) {
      std::fprintf(stderr, "corpus %zu failed: %s\n", n,
                   s.ToString().c_str());
      return 1;
    }
    const double gen_seconds = gen_watch.ElapsedSeconds();

    Result<attack::StoreCandidateSource> source =
        attack::StoreCandidateSource::Open(store_path);
    if (!source.ok()) {
      std::fprintf(stderr, "open failed: %s\n",
                   source.status().ToString().c_str());
      return 1;
    }

    // Exact-fix adversary against the raw corpus: measures engine
    // throughput, and its top-1 rate doubles as a correctness gate.
    telemetry::Telemetry telemetry;
    attack::ReidentOptions options;
    options.adversary.observations = 5;
    options.adversary.noise = 0.0;
    options.adversary.seed = 99;
    options.num_victims = std::min(victims, n);
    options.threads = threads;
    options.telemetry = &telemetry;
    Stopwatch watch;
    Result<attack::ReidentResult> result =
        RunReidentAttack(*source, *source, options);
    const double seconds = watch.ElapsedSeconds();
    if (!result.ok()) {
      std::fprintf(stderr, "attack failed at %zu: %s\n", n,
                   result.status().ToString().c_str());
      return 1;
    }
    const double walked = static_cast<double>(result->candidates_total);
    const double candidates_per_sec = walked / std::max(seconds, 1e-9);
    const double pruned_fraction =
        result->candidates_total == 0
            ? 0.0
            : static_cast<double>(result->candidates_pruned) / walked;
    const double peak_rss_mb = PeakRssMb();
    std::printf("n=%zu: %zu victims in %.2fs (gen %.1fs) — %.3g cand/s, "
                "pruned %.1f%%, top-1 %.3f, RSS %.0f MiB\n",
                n, result->victims_attacked, seconds, gen_seconds,
                candidates_per_sec, 100.0 * pruned_fraction,
                result->top1_success, peak_rss_mb);

    json_out.Add("attack_scaling/reident",
                 {{"trajectories", static_cast<double>(n)},
                  {"points", static_cast<double>(kPointsPerTraj)},
                  {"victims", static_cast<double>(result->victims_attacked)},
                  {"threads", static_cast<double>(threads)},
                  {"candidates_per_sec", candidates_per_sec},
                  {"pruned_fraction", pruned_fraction},
                  {"top1_success", result->top1_success},
                  {"generate_seconds", gen_seconds},
                  {"peak_rss_mb", peak_rss_mb}},
                 seconds, telemetry.metrics().Snapshot());

    if (result->top1_success < 0.99) {
      std::fprintf(stderr,
                   "FAIL: exact adversary top-1 %.3f < 0.99 on raw data "
                   "(n=%zu)\n",
                   result->top1_success, n);
      ok = false;
    }
    if (peak_rss_mb > rss_budget_mb) {
      std::fprintf(stderr, "FAIL: peak RSS %.0f MiB exceeds budget %.0f MiB\n",
                   peak_rss_mb, rss_budget_mb);
      ok = false;
    }
    if (!args.GetBool("keep-store", false)) {
      std::filesystem::remove(store_path);
    }
  }

  if (!json_out.Flush()) {
    return 1;
  }
  if (!ok) {
    return 1;
  }
  std::printf("PASS: audited %zu scales within %.0f MiB\n", sizes.size(),
              rss_budget_mb);
  return 0;
}
