#include "anon/distance_cache.h"

namespace wcop {

ShardedPairDistanceCache::ShardedPairDistanceCache(
    const Dataset& dataset, const DistanceConfig& config,
    const RunContext* context, telemetry::Telemetry* telemetry,
    size_t expected_pairs)
    : dataset_(dataset), config_(config), context_(context),
      n_(dataset.size()) {
  if (telemetry != nullptr) {
    // Resolve the counters once; the per-lookup path then pays one atomic
    // add per event — cache hits touch nothing budget-related, matching
    // the RunContext accounting exactly.
    distance_calls_ =
        telemetry->metrics().GetCounter(DistanceCallCounterName(config));
    cache_hits_ = telemetry->metrics().GetCounter("distance.cache_hits");
    early_abandoned_ =
        telemetry->metrics().GetCounter("distance.early_abandoned");
  }
  const size_t per_shard = expected_pairs / kShards + 1;
  for (Shard& shard : shards_) {
    shard.map.reserve(per_shard);
  }
}

double ShardedPairDistanceCache::StoreExact(Shard& shard, uint64_t key,
                                            double value) {
  bool winner = false;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto [it, inserted] = shard.map.try_emplace(key, Entry{value, false});
    if (inserted) {
      winner = true;
    } else if (it->second.is_bound) {
      it->second = Entry{value, false};  // upgrade a lower bound
      winner = true;
    } else {
      value = it->second.value;  // lost the race to an exact value
    }
  }
  if (winner) {
    if (context_ != nullptr) {
      context_->ChargeDistance();
    }
    telemetry::CounterAdd(distance_calls_);
    computed_.fetch_add(1, std::memory_order_relaxed);
  } else {
    // Under serial execution this call would have been the cache hit.
    telemetry::CounterAdd(cache_hits_);
  }
  return value;
}

double ShardedPairDistanceCache::Get(size_t i, size_t j) {
  if (i == j) {
    return 0.0;
  }
  const uint64_t key = KeyOf(i, j);
  Shard& shard = ShardOf(key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end() && !it->second.is_bound) {
      telemetry::CounterAdd(cache_hits_);
      return it->second.value;
    }
  }
  const double d = ClusterDistance(dataset_[i], dataset_[j], config_);
  return StoreExact(shard, key, d);
}

double ShardedPairDistanceCache::GetWithCutoff(size_t i, size_t j,
                                               double cutoff) {
  if (i == j) {
    return 0.0;
  }
  const uint64_t key = KeyOf(i, j);
  Shard& shard = ShardOf(key);
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    auto it = shard.map.find(key);
    if (it != shard.map.end() &&
        (!it->second.is_bound || it->second.value > cutoff)) {
      telemetry::CounterAdd(cache_hits_);
      return it->second.value;
    }
  }
  bool was_abandoned = false;
  const double d = ClusterDistanceWithCutoff(dataset_[i], dataset_[j],
                                             config_, cutoff, &was_abandoned);
  if (!was_abandoned) {
    return StoreExact(shard, key, d);
  }
  telemetry::CounterAdd(early_abandoned_);
  abandoned_.fetch_add(1, std::memory_order_relaxed);
  std::lock_guard<std::mutex> lock(shard.mu);
  // A racing exact insert wins over our bound; racing bounds are equal (the
  // bound depends only on the two lengths), so either store is fine.
  auto it = shard.map.try_emplace(key, Entry{d, true}).first;
  return it->second.is_bound ? d : it->second.value;
}

}  // namespace wcop
