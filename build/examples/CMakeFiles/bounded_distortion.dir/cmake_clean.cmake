file(REMOVE_RECURSE
  "CMakeFiles/bounded_distortion.dir/bounded_distortion.cpp.o"
  "CMakeFiles/bounded_distortion.dir/bounded_distortion.cpp.o.d"
  "bounded_distortion"
  "bounded_distortion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bounded_distortion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
