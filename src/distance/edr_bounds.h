#ifndef WCOP_DISTANCE_EDR_BOUNDS_H_
#define WCOP_DISTANCE_EDR_BOUNDS_H_

#include <cstdint>

#include "distance/edr.h"
#include "traj/trajectory.h"

namespace wcop {

/// Precomputed per-trajectory summary powering the EDR lower-bound cascade:
/// spatial MBR, temporal extent, length, and whether the timestamps are
/// sorted (Trajectory::Validate guarantees strictly increasing times, but
/// the bounds never *assume* it — unsorted inputs degrade to the length
/// bound instead of returning a wrong certificate).
struct EdrBoundsProfile {
  double min_x = 0.0;
  double max_x = 0.0;
  double min_y = 0.0;
  double max_y = 0.0;
  double min_t = 0.0;
  double max_t = 0.0;
  uint32_t length = 0;
  bool sorted = false;  ///< timestamps non-decreasing (envelope usable)

  static EdrBoundsProfile Of(const Trajectory& t);
};

/// Separation certificate: when the two MBRs, dilated by the matching
/// tolerance on the corresponding axis (dx for x, dy for y, dt for t), are
/// disjoint on *any* axis, no point of `a` can match any point of `b`.
/// Every alignment then costs exactly max(|a|,|b|) operations (substitute
/// min(|a|,|b|) pairs, delete the rest), so the EDR is not merely bounded —
/// it is known: EDR(a, b) = max(|a|, |b|). Degenerate profiles (length 0)
/// report separated, which keeps the same identity (EDR = other length).
bool EdrSeparated(const EdrBoundsProfile& a, const EdrBoundsProfile& b,
                  const EdrTolerance& tolerance);

/// The PR-4 length bound: every alignment deletes/creates >= ||a|-|b||
/// points, so EDR >= ||a|-|b||. O(1) from the profiles.
uint32_t EdrLengthLowerBound(const EdrBoundsProfile& a,
                             const EdrBoundsProfile& b);

/// Result of the envelope bound. `bound` is a certified lower bound on the
/// EDR op count; `exact` is true when the bound is additionally known to be
/// the exact distance (zero matchable points on one side forces the
/// all-substitution alignment, cost max(|a|,|b|)).
struct EdrEnvelopeBound {
  uint32_t bound = 0;
  bool exact = false;
};

/// Keogh-style envelope bound adapted to the EDR tolerance triple.
///
/// Let M be the number of matched pairs in an optimal alignment and S the
/// substitutions. Matches and substitutions each consume one point from
/// both sides, so M + S <= min(n, m), and the cost n + m - 2M - S can be
/// rewritten as (n + m - M - (M + S)) >= max(n, m) - M. Any upper bound
/// M_ub on the achievable matches therefore certifies
/// EDR >= max(n, m) - M_ub.
///
/// M_ub here counts, per side, the points that could match *anything* on
/// the other side: point p matches only inside its time window
/// [p.t - dt, p.t + dt], and within that window only if p's coordinates
/// fall inside the window's bounding box dilated by (dx, dy). Both sides'
/// counts are computed in O(n + m) with a two-pointer sweep and monotonic
/// min/max deques over the other trajectory, and
/// M_ub = min(count_a, count_b, min(n, m)).
///
/// Falls back to the plain length bound (never wrong, just weak) when
/// either profile reports unsorted timestamps.
EdrEnvelopeBound EdrEnvelopeLowerBound(const Trajectory& a,
                                       const EdrBoundsProfile& pa,
                                       const Trajectory& b,
                                       const EdrBoundsProfile& pb,
                                       const EdrTolerance& tolerance);

}  // namespace wcop

#endif  // WCOP_DISTANCE_EDR_BOUNDS_H_
