#include "mod/trajectory_store.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <set>

#include "geo/segment_geometry.h"

namespace wcop {

namespace {

/// Exact predicate: does the trajectory's interpolated movement intersect
/// the window? (Mirror of the utility module's range-query semantics, but
/// evaluated per candidate segment by the index.)
bool SegmentInWindow(const Point& a, const Point& b, const StRange& r) {
  if (b.t < r.t_lo || a.t > r.t_hi) {
    return false;
  }
  const double span = b.t - a.t;
  const double alpha_lo =
      span > 0.0 ? std::clamp((r.t_lo - a.t) / span, 0.0, 1.0) : 0.0;
  const double alpha_hi =
      span > 0.0 ? std::clamp((r.t_hi - a.t) / span, 0.0, 1.0) : 1.0;
  const double ax = a.x + alpha_lo * (b.x - a.x);
  const double ay = a.y + alpha_lo * (b.y - a.y);
  const double bx = a.x + alpha_hi * (b.x - a.x);
  const double by = a.y + alpha_hi * (b.y - a.y);
  return SegmentIntersectsRect(ax, ay, bx, by, r.x_lo, r.x_hi, r.y_lo,
                               r.y_hi);
}

}  // namespace

size_t TrajectoryStore::CellKeyHash::operator()(const CellKey& key) const {
  uint64_t h = static_cast<uint64_t>(key.cx) * 0x9E3779B97F4A7C15ull;
  h ^= static_cast<uint64_t>(key.cy) + 0x9E3779B97F4A7C15ull + (h << 6) +
       (h >> 2);
  h ^= static_cast<uint64_t>(key.ct) + 0x9E3779B97F4A7C15ull + (h << 6) +
       (h >> 2);
  return static_cast<size_t>(h);
}

TrajectoryStore::CellKey TrajectoryStore::KeyFor(double x, double y,
                                                 double t) const {
  return CellKey{static_cast<int64_t>(std::floor(x / cell_size_)),
                 static_cast<int64_t>(std::floor(y / cell_size_)),
                 static_cast<int64_t>(std::floor(t / time_bucket_))};
}

void TrajectoryStore::InsertSegment(uint32_t trajectory, uint32_t segment) {
  const Trajectory& traj = dataset_[trajectory];
  const Point& a = traj[segment];
  const Point& b = traj[segment + 1];
  const int64_t cx_lo =
      static_cast<int64_t>(std::floor(std::min(a.x, b.x) / cell_size_));
  const int64_t cx_hi =
      static_cast<int64_t>(std::floor(std::max(a.x, b.x) / cell_size_));
  const int64_t cy_lo =
      static_cast<int64_t>(std::floor(std::min(a.y, b.y) / cell_size_));
  const int64_t cy_hi =
      static_cast<int64_t>(std::floor(std::max(a.y, b.y) / cell_size_));
  const int64_t ct_lo = static_cast<int64_t>(std::floor(a.t / time_bucket_));
  const int64_t ct_hi = static_cast<int64_t>(std::floor(b.t / time_bucket_));
  for (int64_t cx = cx_lo; cx <= cx_hi; ++cx) {
    for (int64_t cy = cy_lo; cy <= cy_hi; ++cy) {
      for (int64_t ct = ct_lo; ct <= ct_hi; ++ct) {
        cells_[CellKey{cx, cy, ct}].push_back(
            SegmentRef{trajectory, segment});
        ++segment_entries_;
      }
    }
  }
}

Result<TrajectoryStore> TrajectoryStore::Build(
    Dataset dataset, const TrajectoryStoreOptions& options) {
  WCOP_RETURN_IF_ERROR(dataset.Validate());
  TrajectoryStore store;
  store.dataset_ = std::move(dataset);

  const BoundingBox bounds = store.dataset_.Bounds();
  double t_min = std::numeric_limits<double>::infinity();
  double t_max = -std::numeric_limits<double>::infinity();
  for (const Trajectory& t : store.dataset_.trajectories()) {
    if (!t.empty()) {
      t_min = std::min(t_min, t.StartTime());
      t_max = std::max(t_max, t.EndTime());
    }
  }
  store.cell_size_ =
      options.cell_size > 0.0
          ? options.cell_size
          : std::max(1.0, std::max(bounds.width(), bounds.height()) / 64.0);
  store.time_bucket_ =
      options.time_bucket > 0.0
          ? options.time_bucket
          : std::max(1.0, (t_max > t_min ? t_max - t_min : 1.0) / 64.0);

  for (uint32_t i = 0; i < store.dataset_.size(); ++i) {
    const Trajectory& t = store.dataset_[i];
    for (uint32_t s = 0; s + 1 < t.size(); ++s) {
      store.InsertSegment(i, s);
    }
    // Single-point trajectories are registered by their lone point so
    // range queries can still find them.
    if (t.size() == 1) {
      const Point& p = t.front();
      store.cells_[store.KeyFor(p.x, p.y, p.t)].push_back(SegmentRef{i, 0});
      ++store.segment_entries_;
    }
  }
  return store;
}

std::vector<int64_t> TrajectoryStore::RangeQuery(const StRange& range) const {
  std::set<uint32_t> verified;
  const int64_t cx_lo =
      static_cast<int64_t>(std::floor(range.x_lo / cell_size_));
  const int64_t cx_hi =
      static_cast<int64_t>(std::floor(range.x_hi / cell_size_));
  const int64_t cy_lo =
      static_cast<int64_t>(std::floor(range.y_lo / cell_size_));
  const int64_t cy_hi =
      static_cast<int64_t>(std::floor(range.y_hi / cell_size_));
  const int64_t ct_lo =
      static_cast<int64_t>(std::floor(range.t_lo / time_bucket_));
  const int64_t ct_hi =
      static_cast<int64_t>(std::floor(range.t_hi / time_bucket_));

  for (int64_t cx = cx_lo; cx <= cx_hi; ++cx) {
    for (int64_t cy = cy_lo; cy <= cy_hi; ++cy) {
      for (int64_t ct = ct_lo; ct <= ct_hi; ++ct) {
        auto it = cells_.find(CellKey{cx, cy, ct});
        if (it == cells_.end()) {
          continue;
        }
        for (const SegmentRef& ref : it->second) {
          if (verified.count(ref.trajectory)) {
            continue;
          }
          const Trajectory& t = dataset_[ref.trajectory];
          bool hit;
          if (t.size() == 1) {
            const Point& p = t.front();
            hit = p.t >= range.t_lo && p.t <= range.t_hi &&
                  p.x >= range.x_lo && p.x <= range.x_hi &&
                  p.y >= range.y_lo && p.y <= range.y_hi;
          } else {
            hit = SegmentInWindow(t[ref.segment], t[ref.segment + 1], range);
          }
          if (hit) {
            verified.insert(ref.trajectory);
          }
        }
      }
    }
  }
  std::vector<int64_t> ids;
  ids.reserve(verified.size());
  for (uint32_t idx : verified) {
    ids.push_back(dataset_[idx].id());
  }
  std::sort(ids.begin(), ids.end());
  return ids;
}

std::vector<StNeighbor> TrajectoryStore::NearestAt(double x, double y,
                                                   double t,
                                                   size_t k) const {
  // Expanding-ring search over the time bucket containing t. Because an
  // alive trajectory's position at t lies on a segment spanning t, that
  // segment is registered in the cell of (position, t)'s neighbourhood —
  // rings expand until k candidates are confirmed closer than the next
  // ring's minimum possible distance.
  std::vector<StNeighbor> heap;  // collected candidates
  std::set<uint32_t> seen;
  const int64_t ct = static_cast<int64_t>(std::floor(t / time_bucket_));
  const int64_t cx0 = static_cast<int64_t>(std::floor(x / cell_size_));
  const int64_t cy0 = static_cast<int64_t>(std::floor(y / cell_size_));

  auto consider_cell = [&](int64_t cx, int64_t cy, int64_t bucket) {
    auto it = cells_.find(CellKey{cx, cy, bucket});
    if (it == cells_.end()) {
      return;
    }
    for (const SegmentRef& ref : it->second) {
      if (!seen.insert(ref.trajectory).second) {
        continue;
      }
      const Trajectory& traj = dataset_[ref.trajectory];
      if (t < traj.StartTime() || t > traj.EndTime()) {
        continue;
      }
      const Point pos = traj.PositionAt(t);
      const double dx = pos.x - x;
      const double dy = pos.y - y;
      heap.push_back(StNeighbor{traj.id(), std::sqrt(dx * dx + dy * dy)});
    }
  };

  // A segment spanning time t may sit in the bucket of t or the adjacent
  // ones (segments longer than one bucket are registered in all covered
  // buckets, so t's own bucket suffices; include neighbours defensively
  // for boundary timestamps).
  const int64_t buckets[3] = {ct - 1, ct, ct + 1};
  size_t ring = 0;
  // Rings beyond the dataset extent cannot contain anything new.
  const BoundingBox bounds = dataset_.Bounds();
  const size_t max_ring =
      2 + static_cast<size_t>(std::ceil(
              std::max(bounds.width(), bounds.height()) / cell_size_));
  while (true) {
    for (int64_t bucket : buckets) {
      if (ring == 0) {
        consider_cell(cx0, cy0, bucket);
      } else {
        const int64_t r = static_cast<int64_t>(ring);
        for (int64_t d = -r; d <= r; ++d) {
          consider_cell(cx0 + d, cy0 - r, bucket);
          consider_cell(cx0 + d, cy0 + r, bucket);
          if (d != -r && d != r) {
            consider_cell(cx0 - r, cy0 + d, bucket);
            consider_cell(cx0 + r, cy0 + d, bucket);
          }
        }
      }
    }
    // Confirmed when the k-th best distance is within the guaranteed-
    // covered radius of the rings explored so far.
    std::sort(heap.begin(), heap.end(),
              [](const StNeighbor& a, const StNeighbor& b) {
                return a.distance < b.distance;
              });
    const double covered = static_cast<double>(ring) * cell_size_;
    if ((heap.size() >= k && heap[k - 1].distance <= covered) ||
        ring > max_ring || seen.size() >= dataset_.size()) {
      break;
    }
    ++ring;
  }
  if (heap.size() > k) {
    heap.resize(k);
  }
  return heap;
}

std::vector<StNeighbor> TrajectoryStore::MostSimilar(
    const Trajectory& probe, size_t k, const DistanceConfig& config) const {
  std::vector<StNeighbor> all;
  all.reserve(dataset_.size());
  for (const Trajectory& t : dataset_.trajectories()) {
    all.push_back(StNeighbor{t.id(), ClusterDistance(probe, t, config)});
  }
  std::sort(all.begin(), all.end(),
            [](const StNeighbor& a, const StNeighbor& b) {
              return a.distance < b.distance;
            });
  if (all.size() > k) {
    all.resize(k);
  }
  return all;
}

}  // namespace wcop
