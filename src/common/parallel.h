#ifndef WCOP_COMMON_PARALLEL_H_
#define WCOP_COMMON_PARALLEL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "common/result.h"
#include "common/run_context.h"
#include "common/status.h"
#include "common/telemetry.h"

namespace wcop {
namespace parallel {

/// Deterministic parallel execution layer of the WCOP pipeline
/// (DESIGN.md "Parallel execution").
///
/// The EDR hot paths (pivot candidate scans, per-cluster translation, the
/// TRACLUS segment-distance matrix) fan their *pure* computations out over a
/// lazily-started process-wide thread pool while every ordering and
/// tie-breaking decision stays on the coordinating thread. Results are
/// written to caller-indexed slots, so the published output is byte-identical
/// between `threads == 1` and `threads == N` — see the determinism contract
/// in DESIGN.md.
///
/// Thread-count resolution, everywhere in the code base:
///   * `threads <= 0` — auto: the WCOP_THREADS environment variable when set
///     to a positive integer, otherwise std::thread::hardware_concurrency().
///   * `threads == 1` — the exact serial code path; the pool is never
///     touched (nor even started).
///   * `threads == N` — the calling thread plus N-1 pool workers cooperate.

/// std::thread::hardware_concurrency() clamped below at 1.
int HardwareThreads();

/// The process-wide default: WCOP_THREADS (parsed once, first call) when it
/// holds a positive integer, otherwise HardwareThreads().
int DefaultThreads();

/// Resolves a requested thread count: values <= 0 mean DefaultThreads().
int ResolveThreads(int requested);

/// Per-call configuration of ParallelFor / ParallelMap.
struct ParallelOptions {
  /// Total concurrency for this call (coordinator included); see the
  /// resolution rules above.
  int threads = 0;

  /// Minimum items per claimed chunk. 0 = auto (targets ~4 chunks per
  /// thread). Use 1 for heavy per-item work (EDR distances) so stragglers
  /// balance; larger grains amortize claiming overhead for cheap items.
  size_t grain = 0;

  /// Checked at every chunk boundary (cooperatively, coordinator and
  /// workers alike): a tripped context stops the claiming of further chunks
  /// and ParallelFor returns the trip Status. In-flight chunks complete, so
  /// callers that continue after a trip must treat completed slots as
  /// unordered partial output. Null = unbounded.
  const RunContext* context = nullptr;

  /// Optional sink for `parallel.tasks` / `parallel.batches` counters, the
  /// `parallel.queue_depth` / `parallel.threads` gauges, and per-worker
  /// "parallel/worker" trace spans. Null disables instrumentation.
  telemetry::Telemetry* telemetry = nullptr;
};

/// Lazily-started, process-wide worker pool. Use through ParallelFor /
/// ParallelMap; direct access exists for tests and for warm-up.
///
/// The pool is grow-only while running: EnsureWorkers(n) starts workers
/// until at least `n` are live. Shutdown() joins every worker (idempotent);
/// a later EnsureWorkers restarts the pool, so start/stop cycles are safe.
/// The process-exit destructor shuts the pool down cleanly.
class ThreadPool {
 public:
  static ThreadPool& Global();

  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Ensures at least `count` workers are running. Thread-safe; growing an
  /// already-running pool and re-requesting the current size are no-ops.
  void EnsureWorkers(int count);

  /// Joins all workers. Idempotent; concurrent ParallelFor calls finish
  /// their claimed chunks first (the coordinator always makes progress on
  /// its own thread, so no batch can deadlock against Shutdown).
  void Shutdown();

  int worker_count() const;

  /// Shared state of one ParallelFor call; defined in parallel.cc.
  struct Batch;

 private:
  friend Status ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                            const ParallelOptions& options);

  ThreadPool() = default;
  void WorkerLoop();
  void Submit(const std::shared_ptr<Batch>& batch);
  void Retire(const std::shared_ptr<Batch>& batch);

  /// Serializes start/stop cycles and guards `workers_`.
  mutable std::mutex lifecycle_mu_;
  std::vector<std::thread> workers_;

  /// Guards the batch queue and the shutdown flag; `wake_` signals both.
  mutable std::mutex mu_;
  std::condition_variable wake_;
  std::deque<std::shared_ptr<Batch>> batches_;
  bool shutdown_ = false;
};

/// Runs `fn(i)` for every i in [0, n), fanning chunks of `options.grain`
/// indices out across `options.threads` threads (the caller participates).
///
/// Guarantees:
///  * every index runs at most once; with an OK return, exactly once;
///  * `fn` must be safe to call concurrently for distinct indices — all
///    cross-item ordering belongs on the calling thread, after the return;
///  * the first exception thrown by `fn` is rethrown on the calling thread
///    (remaining chunks are abandoned);
///  * a tripped `options.context` stops chunk claiming and surfaces here as
///    the trip Status; with `threads == 1` the checks happen at the same
///    chunk boundaries, keeping serial and parallel trip behaviour aligned.
Status ParallelFor(size_t n, const std::function<void(size_t)>& fn,
                   const ParallelOptions& options = {});

/// Chunked map: out[i] = fn(i) with results in index order (determinism is
/// the caller-visible property: the output never depends on scheduling).
/// T must be default-constructible and movable.
template <typename T>
Result<std::vector<T>> ParallelMap(size_t n,
                                   const std::function<T(size_t)>& fn,
                                   const ParallelOptions& options = {}) {
  std::vector<T> out(n);
  Status status = ParallelFor(
      n, [&out, &fn](size_t i) { out[i] = fn(i); }, options);
  if (!status.ok()) {
    return status;
  }
  return out;
}

}  // namespace parallel
}  // namespace wcop

#endif  // WCOP_COMMON_PARALLEL_H_
