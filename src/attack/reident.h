#ifndef WCOP_ATTACK_REIDENT_H_
#define WCOP_ATTACK_REIDENT_H_

#include <cstddef>
#include <cstdint>
#include <functional>

#include "attack/adversary.h"
#include "attack/candidate_source.h"
#include "common/result.h"
#include "common/run_context.h"
#include "common/telemetry.h"

namespace wcop {
namespace attack {

/// Configuration of the partial-background-knowledge re-identification
/// attack (DESIGN.md §14). Victims are drawn from the *original* source;
/// the attack ranks every *published* candidate by mean spatial distance
/// to the adversary's observations at the observed timestamps.
struct ReidentOptions {
  AdversaryModel adversary;

  /// How many victims to attack (0 = every original trajectory). When a
  /// subset is requested it is chosen by a deterministic shuffle of
  /// `adversary.seed`, independent of thread count.
  size_t num_victims = 0;

  /// Thread count (wcop::parallel resolution rules; 1 = exact serial
  /// path). Results are byte-identical across thread counts.
  int threads = 1;

  /// Optional deadline / cancellation / budget; checked per victim and at
  /// every parallel chunk boundary. Candidate index walks charge
  /// candidate pairs; exact scorings charge distance computations.
  const RunContext* run_context = nullptr;

  /// Optional metric sink: `attack.victims`, `attack.candidates`,
  /// `attack.candidates.pruned`, `attack.matches.top1`, and the
  /// `attack.rank` histogram.
  telemetry::Telemetry* telemetry = nullptr;

  /// Optional progress callback, invoked on the coordinating thread after
  /// each victim block: (victims done, victims total).
  std::function<void(size_t, size_t)> progress;
};

struct ReidentResult {
  size_t victims_attacked = 0;    ///< victims present in the publication
  size_t victims_suppressed = 0;  ///< victims with nothing to link to
  /// Expected success rates under uniform tie-breaking: an exactly
  /// collapsed k-anonymity set scores top-1 at 1/k, as it should.
  double top1_success = 0.0;
  double top5_success = 0.0;
  double mean_true_rank = 0.0;  ///< 1 = always first; ties score the
                                ///< block midpoint
  double mean_reciprocal_rank = 0.0;
  uint64_t candidates_total = 0;   ///< victims x candidate universe
  uint64_t candidates_scored = 0;  ///< exact (block-read) scorings
  uint64_t candidates_pruned = 0;  ///< skipped via the MBR lower bound
};

/// Runs the attack. The scan is out-of-core: for each victim the true
/// candidate's exact score s_true is computed first, then every other
/// candidate is tested against the certified index-walk lower bound
/// (mean observation-to-MBR distance, see PointToEntryDistance) and only
/// candidates whose bound does not exceed s_true are read and scored —
/// a pruned candidate's exact score is provably > s_true, so its relative
/// rank is known without touching its block and the result is identical
/// to the exhaustive scan. Victims whose truth key is absent from
/// `published` count as suppressed. Fails on empty sources or a
/// zero-observation adversary.
Result<ReidentResult> RunReidentAttack(const CandidateSource& original,
                                       const CandidateSource& published,
                                       const ReidentOptions& options);

}  // namespace attack
}  // namespace wcop

#endif  // WCOP_ATTACK_REIDENT_H_
