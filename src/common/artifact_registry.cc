#include "common/artifact_registry.h"

#include <filesystem>
#include <mutex>
#include <system_error>
#include <unordered_map>

namespace wcop {

namespace {

struct Registry {
  std::mutex mu;
  // path -> registration count (a path registered twice stays live until
  // both registrations are released).
  std::unordered_map<std::string, size_t> live;
};

Registry& GetRegistry() {
  static Registry* registry = new Registry();
  return *registry;
}

/// Normalizes `path` so relative and absolute spellings of the same file
/// compare equal. Falls back to the raw string when the filesystem refuses
/// (e.g. current directory unlinked) — a miss then degrades to the old
/// behavior, never to a crash.
std::string NormalizePath(const std::string& path) {
  std::error_code ec;
  std::filesystem::path absolute = std::filesystem::absolute(path, ec);
  if (ec) {
    return path;
  }
  return absolute.lexically_normal().string();
}

}  // namespace

void RegisterLiveArtifact(const std::string& path) {
  Registry& registry = GetRegistry();
  const std::string key = NormalizePath(path);
  std::lock_guard<std::mutex> lock(registry.mu);
  ++registry.live[key];
}

void UnregisterLiveArtifact(const std::string& path) {
  Registry& registry = GetRegistry();
  const std::string key = NormalizePath(path);
  std::lock_guard<std::mutex> lock(registry.mu);
  auto it = registry.live.find(key);
  if (it == registry.live.end()) {
    return;
  }
  if (--it->second == 0) {
    registry.live.erase(it);
  }
}

bool IsLiveArtifact(const std::string& path) {
  Registry& registry = GetRegistry();
  const std::string key = NormalizePath(path);
  std::lock_guard<std::mutex> lock(registry.mu);
  return registry.live.find(key) != registry.live.end();
}

size_t LiveArtifactCount() {
  Registry& registry = GetRegistry();
  std::lock_guard<std::mutex> lock(registry.mu);
  return registry.live.size();
}

}  // namespace wcop
