file(REMOVE_RECURSE
  "CMakeFiles/wcop_common.dir/arg_parser.cc.o"
  "CMakeFiles/wcop_common.dir/arg_parser.cc.o.d"
  "CMakeFiles/wcop_common.dir/status.cc.o"
  "CMakeFiles/wcop_common.dir/status.cc.o.d"
  "CMakeFiles/wcop_common.dir/table_printer.cc.o"
  "CMakeFiles/wcop_common.dir/table_printer.cc.o.d"
  "libwcop_common.a"
  "libwcop_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wcop_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
