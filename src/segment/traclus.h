#ifndef WCOP_SEGMENT_TRACLUS_H_
#define WCOP_SEGMENT_TRACLUS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "common/run_context.h"
#include "common/telemetry.h"
#include "geo/segment_geometry.h"
#include "segment/segmenter.h"
#include "traj/dataset.h"

namespace wcop {

/// Options of the TRACLUS partition-and-group framework (Lee, Han & Whang,
/// SIGMOD 2007).
struct TraclusOptions {
  /// MDL partitioning: a point becomes a characteristic point when the cost
  /// of partitioning exceeds the cost of not partitioning by more than this
  /// margin (bits). 0 reproduces the paper's rule; higher values yield
  /// coarser partitionings (fewer, longer sub-trajectories).
  double mdl_advantage = 0.0;

  /// Minimum number of points per emitted sub-trajectory.
  size_t min_sub_trajectory_points = 2;

  /// Segment-clustering parameters (only used by ClusterSegments /
  /// RepresentativeTrajectories): DBSCAN eps over the weighted segment
  /// distance, and MinLns (minimum segments per cluster).
  double eps = 50.0;
  size_t min_lines = 3;

  /// Weights of the three segment-distance components.
  double w_perpendicular = 1.0;
  double w_parallel = 1.0;
  double w_angular = 1.0;

  /// Minimum number of contributing segments for a representative point
  /// (the TRACLUS paper's MinLns sweep threshold).
  size_t min_representative_lines = 3;

  /// Worker threads for the per-trajectory MDL partitioning and the
  /// segment-distance neighbourhood precompute (0 = the process-wide
  /// default, 1 = serial). Results are identical for every value — see
  /// DESIGN.md "Parallel execution".
  int threads = 0;

  /// Optional execution context (deadline / cancellation / budget), polled
  /// per trajectory by TraclusSegmenter::Segment. Null means unbounded.
  const RunContext* run_context = nullptr;

  /// Optional telemetry sink: `segment.characteristic_points` /
  /// `segment.segments_clustered` counters plus a `segment/traclus` span.
  /// Null (the default) disables instrumentation. Non-owning.
  telemetry::Telemetry* telemetry = nullptr;
};

/// MDL-based approximate trajectory partitioning: returns the indices of the
/// characteristic points of `t` (always includes 0 and size-1; empty input
/// yields an empty list).
std::vector<size_t> TraclusCharacteristicPoints(const Trajectory& t,
                                                const TraclusOptions& options);

/// A directed segment tagged with its provenance (used by segment
/// clustering and representative-trajectory generation).
struct TaggedSegment {
  LineSegment segment;
  int64_t trajectory_id = 0;
  size_t point_index = 0;  ///< index of segment.start within the trajectory
};

/// Extracts the characteristic segments (between consecutive characteristic
/// points) of every trajectory in the dataset.
std::vector<TaggedSegment> ExtractCharacteristicSegments(
    const Dataset& dataset, const TraclusOptions& options);

/// Groups characteristic segments with DBSCAN under the weighted segment
/// distance. Returns per-segment cluster labels (-1 = noise) and the number
/// of clusters.
struct SegmentClustering {
  std::vector<int> labels;
  int num_clusters = 0;
};
SegmentClustering ClusterSegments(const std::vector<TaggedSegment>& segments,
                                  const TraclusOptions& options);

/// Computes the representative trajectory of one segment cluster using the
/// TRACLUS sweep: rotate onto the cluster's average direction, sweep the
/// sorted projected endpoints, and average the segments crossing each sweep
/// line (only where at least min_representative_lines segments participate).
/// The `t` fields of the returned points carry the sweep parameter, not real
/// time. Returns an empty trajectory when the cluster is too sparse.
Trajectory RepresentativeTrajectory(const std::vector<TaggedSegment>& segments,
                                    const std::vector<size_t>& member_indices,
                                    const TraclusOptions& options);

/// The complete TRACLUS partition-and-group pipeline over a dataset:
/// MDL partitioning into characteristic segments, density-based segment
/// clustering, and one representative trajectory per cluster. This is the
/// full framework of Lee et al. (WCOP-SA only consumes the partitioning
/// step; the full pipeline backs pattern-exploration tooling and the
/// segmentation ablations).
struct TraclusClusteringResult {
  std::vector<TaggedSegment> segments;   ///< all characteristic segments
  SegmentClustering clustering;          ///< labels aligned with `segments`
  std::vector<Trajectory> representatives;  ///< one per cluster (may be
                                            ///< empty for sparse clusters)
};
TraclusClusteringResult RunTraclus(const Dataset& dataset,
                                   const TraclusOptions& options = {});

/// The Segmenter used by WCOP-SA-Traclus: partitions every trajectory at its
/// MDL characteristic points and emits the pieces as sub-trajectories.
class TraclusSegmenter : public Segmenter {
 public:
  explicit TraclusSegmenter(TraclusOptions options = {})
      : options_(options) {}

  std::string name() const override { return "traclus"; }
  Result<Dataset> Segment(const Dataset& dataset) override;

  const TraclusOptions& options() const { return options_; }

 private:
  TraclusOptions options_;
};

}  // namespace wcop

#endif  // WCOP_SEGMENT_TRACLUS_H_
