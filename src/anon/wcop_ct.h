#ifndef WCOP_ANON_WCOP_CT_H_
#define WCOP_ANON_WCOP_CT_H_

#include "anon/greedy_clustering.h"
#include "anon/types.h"
#include "common/result.h"
#include "traj/dataset.h"

namespace wcop {

/// WCOP-CT (Algorithm 2): personalized (K,Delta)-anonymization by greedy
/// Clustering and EDR-driven spatio-temporal Translation.
///
/// Each cluster produced by WCOP-Clustering is transformed into its own
/// (k,delta)-anonymity set: delta_c is the minimum delta_i among its
/// members, and every member is translated onto the pivot's timeline with
/// all points inside the delta_c/2 disk around the corresponding pivot
/// point. Option defaults that are left at their zero values are filled
/// from the dataset (radius_max := radius(D); EDR tolerance := the paper's
/// heuristic from max delta_i and the dataset average speed; edr_scale :=
/// radius(D)).
Result<AnonymizationResult> RunWcopCt(const Dataset& dataset,
                                      const WcopOptions& options = {});

/// Fills the auto (zero-valued) fields of `options` from the dataset, as
/// described above. Exposed so that callers who run several algorithms on
/// the same data can pin identical resolved parameters.
WcopOptions ResolveOptions(const Dataset& dataset, WcopOptions options);

/// Shared second phase: turns a clustering outcome into the sanitized
/// dataset plus the full report (translation, distortion, discernibility,
/// runtime fields other than runtime_seconds which the caller owns).
/// `dataset` must be the dataset the clustering was computed on.
///
/// Honours `resolved_options.run_context` at per-cluster granularity: a
/// trip mid-translation either propagates as a Status or — with
/// `allow_partial_results` — suppresses the not-yet-translated clusters
/// (their members join the trash) and flags the result degraded.
Result<AnonymizationResult> AnonymizeClusters(
    const Dataset& dataset, const ClusteringOutcome& outcome,
    const WcopOptions& resolved_options);

/// Publishes the run-wide telemetry gauges (RunContext budget consumption,
/// process failpoint fires) and stores a metrics snapshot on `report`.
/// No-op when `options.telemetry` is null. Drivers that wrap RunWcopCt
/// (WCOP-SA/B, streaming) call this again after adding their own counters
/// so the final report carries the complete totals.
void SnapshotTelemetry(const WcopOptions& options,
                       AnonymizationReport* report);

}  // namespace wcop

#endif  // WCOP_ANON_WCOP_CT_H_
