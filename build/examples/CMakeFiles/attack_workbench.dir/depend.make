# Empty dependencies file for attack_workbench.
# This may be replaced when dependencies are built.
