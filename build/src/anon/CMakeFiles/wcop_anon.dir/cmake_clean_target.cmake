file(REMOVE_RECURSE
  "libwcop_anon.a"
)
