#include "server/job_ledger.h"

#include <dirent.h>
#include <sys/stat.h>

#include <cerrno>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <utility>

#include "common/failpoint.h"
#include "common/log.h"
#include "common/snapshot.h"
#include "store/store_file.h"

namespace wcop {
namespace server {

namespace {

Status MakeDir(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IoError("mkdir '" + path +
                           "': " + std::string(std::strerror(errno)));
  }
  return Status::OK();
}

/// `job_00000042.jrec` -> 42; nullopt for anything else (including the
/// `.prev` rotation siblings and stray files).
bool ParseRecordName(const std::string& name, int64_t* id) {
  static constexpr char kPrefix[] = "job_";
  static constexpr char kSuffix[] = ".jrec";
  if (name.size() <= std::strlen(kPrefix) + std::strlen(kSuffix)) {
    return false;
  }
  if (name.compare(0, std::strlen(kPrefix), kPrefix) != 0) {
    return false;
  }
  if (name.compare(name.size() - std::strlen(kSuffix), std::strlen(kSuffix),
                   kSuffix) != 0) {
    return false;
  }
  const std::string digits = name.substr(
      std::strlen(kPrefix),
      name.size() - std::strlen(kPrefix) - std::strlen(kSuffix));
  if (digits.empty()) {
    return false;
  }
  int64_t parsed = 0;
  for (const char c : digits) {
    if (c < '0' || c > '9') {
      return false;
    }
    parsed = parsed * 10 + (c - '0');
  }
  *id = parsed;
  return true;
}

}  // namespace

Result<std::unique_ptr<JobLedger>> JobLedger::Open(
    const std::string& dir, telemetry::Telemetry* telemetry,
    const RetryPolicy* retry) {
  if (dir.empty()) {
    return Status::InvalidArgument("job ledger directory is required");
  }
  WCOP_RETURN_IF_ERROR(MakeDir(dir));
  // Janitor first: a crash between a record's write-tmp and its rename
  // leaves `*.tmp` orphans that must never shadow future writes.
  WCOP_RETURN_IF_ERROR(store::SweepStaleArtifacts(dir, telemetry).status());

  auto ledger = std::unique_ptr<JobLedger>(new JobLedger());
  ledger->dir_ = dir;
  ledger->telemetry_ = telemetry;
  ledger->retry_ = retry;

  // Enumerate record files, then load each through the snapshot envelope
  // (with .prev fallback). Corrupt records are skipped, not trusted.
  std::vector<int64_t> ids;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) {
    return Status::IoError("opendir '" + dir +
                           "': " + std::string(std::strerror(errno)));
  }
  for (struct dirent* entry = ::readdir(d); entry != nullptr;
       entry = ::readdir(d)) {
    int64_t id = 0;
    if (ParseRecordName(entry->d_name, &id)) {
      ids.push_back(id);
      // Ids advance past every record *file*, decodable or not: a corrupt
      // record must keep its id reserved so a fresh append can never
      // overwrite the evidence (or impersonate the lost job).
      if (id + 1 > ledger->next_id_) {
        ledger->next_id_ = id + 1;
      }
    }
  }
  ::closedir(d);

  for (const int64_t id : ids) {
    const std::string path = ledger->RecordPath(id);
    Result<Snapshot> snapshot = ReadSnapshotWithFallback(path, retry);
    Result<JobRecord> record =
        snapshot.ok() ? DecodeJobRecord(snapshot->payload)
                      : Result<JobRecord>(snapshot.status());
    if (!record.ok()) {
      if (record.status().code() == StatusCode::kDataLoss ||
          record.status().code() == StatusCode::kNotFound) {
        log::Warn("ledger: skipping corrupt record",
                  {{"path", path}, {"status", record.status().ToString()}});
        ++ledger->corrupt_records_;
        if (telemetry != nullptr) {
          telemetry->metrics().GetCounter("server.ledger.corrupt")->Add();
        }
        continue;
      }
      return record.status();
    }
    ledger->records_[record->id] = std::move(*record);
  }
  return ledger;
}

std::string JobLedger::RecordPath(int64_t id) const {
  char name[32];
  std::snprintf(name, sizeof(name), "job_%08" PRId64 ".jrec", id);
  return dir_ + "/" + name;
}

Status JobLedger::WriteRecord(const JobRecord& record) {
  return WriteSnapshotRotating(RecordPath(record.id),
                               EncodeJobRecord(record), kJobRecordVersion,
                               retry_);
}

Status JobLedger::Append(JobRecord* record) {
  std::lock_guard<std::mutex> lock(mu_);
  // Crash window under test: a kill here loses the job *before* the client
  // heard an id, which is the contract — accepted means durable.
  WCOP_FAILPOINT("server.ledger_append");
  record->id = next_id_;
  WCOP_RETURN_IF_ERROR(WriteRecord(*record));
  next_id_ += 1;
  records_[record->id] = *record;
  if (telemetry_ != nullptr) {
    telemetry_->metrics().GetCounter("server.ledger.appends")->Add();
  }
  return Status::OK();
}

Status JobLedger::Update(const JobRecord& record) {
  std::lock_guard<std::mutex> lock(mu_);
  WCOP_FAILPOINT("server.ledger_update");
  auto it = records_.find(record.id);
  if (it == records_.end()) {
    return Status::NotFound("job ledger has no record with id " +
                            std::to_string(record.id));
  }
  WCOP_RETURN_IF_ERROR(WriteRecord(record));
  it->second = record;
  if (telemetry_ != nullptr) {
    telemetry_->metrics().GetCounter("server.ledger.updates")->Add();
  }
  return Status::OK();
}

std::vector<JobRecord> JobLedger::Records() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<JobRecord> out;
  out.reserve(records_.size());
  for (const auto& [id, record] : records_) {
    out.push_back(record);
  }
  return out;
}

}  // namespace server
}  // namespace wcop
