#include "data/geolife_parser.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "common/failpoint.h"

namespace wcop {

namespace fs = std::filesystem;

Result<Trajectory> ParsePltFile(const std::string& path,
                                const LocalProjection& projection,
                                const GeoLifeOptions& options) {
  WCOP_TRACE_SPAN(options.telemetry, "parse/plt_file");
  std::ifstream in(path);
  if (!in) {
    return Status::IoError("cannot open .plt file: " + path);
  }
  std::string line;
  // Skip the six header lines (tolerate files that omit some of them by
  // detecting the first record-looking line).
  std::vector<std::string> buffered;
  for (int i = 0; i < 6 && std::getline(in, line); ++i) {
    // A record line starts with a latitude ([-]dd.dddd,), has >= 6 commas,
    // and contains no letters (the track-name header line does).
    char* end = nullptr;
    const double maybe_lat = std::strtod(line.c_str(), &end);
    const bool has_alpha = std::any_of(line.begin(), line.end(), [](char c) {
      return std::isalpha(static_cast<unsigned char>(c)) != 0;
    });
    if (end != line.c_str() && *end == ',' && std::abs(maybe_lat) <= 90.0 &&
        !has_alpha && std::count(line.begin(), line.end(), ',') >= 6) {
      buffered.push_back(line);
      break;
    }
  }

  Trajectory traj;
  double last_time = -std::numeric_limits<double>::infinity();
  size_t records_since_check = 0;
  auto consume = [&](const std::string& record) -> Status {
    WCOP_FAILPOINT("geolife.read_line");
    // Poll the context with a stride: a record is microseconds of work, so
    // per-record clock reads would dominate the parse.
    if (++records_since_check >= 4096) {
      records_since_check = 0;
      WCOP_RETURN_IF_ERROR(CheckRunContext(options.run_context));
    }
    std::istringstream ss(record);
    std::string cell;
    double lat = 0.0, lon = 0.0, days = 0.0;
    for (int field = 0; std::getline(ss, cell, ','); ++field) {
      char* end = nullptr;
      switch (field) {
        case 0:
          lat = std::strtod(cell.c_str(), &end);
          if (end == cell.c_str()) {
            return Status::ParseError("bad latitude in " + path);
          }
          break;
        case 1:
          lon = std::strtod(cell.c_str(), &end);
          if (end == cell.c_str()) {
            return Status::ParseError("bad longitude in " + path);
          }
          break;
        case 4:
          days = std::strtod(cell.c_str(), &end);
          if (end == cell.c_str()) {
            return Status::ParseError("bad timestamp in " + path);
          }
          break;
        default:
          break;  // altitude/date/time fields are not needed
      }
    }
    const double t = days * 86400.0;
    if (t <= last_time) {
      return Status::OK();  // drop duplicate / out-of-order fixes
    }
    const Point p = projection.ToMetric(lat, lon, t);
    if (options.filter_outliers &&
        (std::abs(p.x) > options.max_offset_metres ||
         std::abs(p.y) > options.max_offset_metres)) {
      return Status::OK();
    }
    traj.AppendPoint(p);
    last_time = t;
    return Status::OK();
  };

  for (const std::string& record : buffered) {
    WCOP_RETURN_IF_ERROR(consume(record));
  }
  while (std::getline(in, line)) {
    if (line.empty()) {
      continue;
    }
    WCOP_RETURN_IF_ERROR(consume(line));
  }
  if (traj.size() < options.min_points) {
    return Status::NotFound("trajectory in " + path + " has only " +
                            std::to_string(traj.size()) + " usable points");
  }
  if (options.telemetry != nullptr) {
    telemetry::CounterAdd(
        options.telemetry->metrics().GetCounter("parse.plt_files"));
    telemetry::CounterAdd(
        options.telemetry->metrics().GetCounter("parse.plt_points"),
        traj.size());
  }
  return traj;
}

Result<Dataset> LoadGeoLifeDirectory(const std::string& root,
                                     const GeoLifeOptions& options) {
  WCOP_TRACE_SPAN(options.telemetry, "parse/geolife_dir");
  std::error_code ec;
  if (!fs::is_directory(root, ec)) {
    return Status::NotFound("GeoLife root is not a directory: " + root);
  }
  const LocalProjection projection(options.ref_lat, options.ref_lon);

  // Users are subdirectories (conventionally zero-padded numbers).
  std::vector<fs::path> user_dirs;
  for (const auto& entry : fs::directory_iterator(root, ec)) {
    if (entry.is_directory()) {
      user_dirs.push_back(entry.path());
    }
  }
  std::sort(user_dirs.begin(), user_dirs.end());
  if (options.max_users > 0 && user_dirs.size() > options.max_users) {
    user_dirs.resize(options.max_users);
  }

  Dataset dataset;
  int64_t next_traj_id = 0;
  int64_t user_index = 0;
  for (const fs::path& user_dir : user_dirs) {
    const fs::path traj_dir = user_dir / "Trajectory";
    if (!fs::is_directory(traj_dir, ec)) {
      ++user_index;
      continue;
    }
    std::vector<fs::path> plt_files;
    for (const auto& entry : fs::directory_iterator(traj_dir, ec)) {
      if (entry.is_regular_file() && entry.path().extension() == ".plt") {
        plt_files.push_back(entry.path());
      }
    }
    std::sort(plt_files.begin(), plt_files.end());
    for (const fs::path& plt : plt_files) {
      WCOP_FAILPOINT("geolife.open_file");
      // Cooperative yield point: one check per .plt file.
      WCOP_RETURN_IF_ERROR(CheckRunContext(options.run_context));
      if (options.max_trajectories > 0 &&
          dataset.size() >= options.max_trajectories) {
        return dataset;
      }
      Result<Trajectory> parsed = ParsePltFile(plt.string(), projection,
                                               options);
      if (!parsed.ok()) {
        if (parsed.status().code() == StatusCode::kNotFound) {
          continue;  // too-short trajectory; skip silently
        }
        return parsed.status();
      }
      Trajectory t = std::move(parsed).value();
      t.set_id(next_traj_id++);
      t.set_object_id(user_index);
      dataset.Add(std::move(t));
    }
    ++user_index;
  }
  if (dataset.empty()) {
    return Status::NotFound("no .plt trajectories found under " + root);
  }
  return dataset;
}

Status WritePltFile(const Trajectory& trajectory,
                    const LocalProjection& projection,
                    const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot open .plt for writing: " + path);
  }
  out << "Geolife trajectory\n"
         "WGS 84\n"
         "Altitude is in Feet\n"
         "Reserved 3\n"
         "0,2,255,My Track,0,0,2182,255\n"
      << trajectory.size() << "\n";
  char line[160];
  for (const Point& p : trajectory.points()) {
    double lat = 0.0, lon = 0.0;
    projection.ToGeographic(p, &lat, &lon);
    const double days = p.t / 86400.0;
    // The textual date/time fields are informational duplicates of the
    // days-since-1899 field; the parser only reads the numeric field, so a
    // fixed placeholder keeps the format valid.
    std::snprintf(line, sizeof(line), "%.7f,%.7f,0,0,%.10f,1970-01-01,00:00:00\n",
                  lat, lon, days);
    out << line;
  }
  if (!out) {
    return Status::IoError("write failed: " + path);
  }
  return Status::OK();
}

Status WriteGeoLifeDirectory(const Dataset& dataset,
                             const LocalProjection& projection,
                             const std::string& root) {
  std::error_code ec;
  for (const Trajectory& t : dataset.trajectories()) {
    char user[32];
    std::snprintf(user, sizeof(user), "%03lld",
                  static_cast<long long>(t.object_id()));
    const fs::path dir = fs::path(root) / user / "Trajectory";
    fs::create_directories(dir, ec);
    if (ec) {
      return Status::IoError("cannot create " + dir.string() + ": " +
                             ec.message());
    }
    const fs::path path =
        dir / (std::to_string(t.id()) + ".plt");
    WCOP_RETURN_IF_ERROR(WritePltFile(t, projection, path.string()));
  }
  return Status::OK();
}

}  // namespace wcop
