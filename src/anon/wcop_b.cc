#include "anon/wcop_b.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "anon/checkpoint.h"
#include "anon/metrics.h"
#include "anon/wcop_ct.h"
#include "common/failpoint.h"
#include "common/snapshot.h"
#include "common/stopwatch.h"

namespace wcop {

namespace {

Status SaveWcopBCheckpoint(const WcopBOptions& b_options,
                           const WcopBCheckpoint& checkpoint) {
  WCOP_RETURN_IF_ERROR(WriteSnapshotRotating(
      b_options.checkpoint_path, EncodeWcopBCheckpoint(checkpoint),
      kWcopBCheckpointVersion, b_options.snapshot_retry));
  WCOP_FAILPOINT("wcop_b.checkpoint_saved");
  return Status::OK();
}

}  // namespace

Result<WcopBResult> RunWcopB(const Dataset& dataset,
                             const WcopOptions& options,
                             const WcopBOptions& b_options) {
  WCOP_RETURN_IF_ERROR(dataset.Validate());
  if (dataset.empty()) {
    return Status::InvalidArgument("cannot anonymize an empty dataset");
  }
  if (b_options.step == 0) {
    return Status::InvalidArgument("step must be positive");
  }
  Stopwatch timer;
  const size_t n = dataset.size();
  // Resolve shared parameters once against the original dataset so every
  // round runs with identical clustering settings.
  const WcopOptions resolved = ResolveOptions(dataset, options);
  telemetry::Telemetry* tel = resolved.telemetry;
  WCOP_TRACE_SPAN(tel, "wcop_b/run");
  telemetry::Counter* rounds_counter = nullptr;
  telemetry::Counter* edited_counter = nullptr;
  if (tel != nullptr) {
    rounds_counter = tel->metrics().GetCounter("wcop_b.rounds");
    edited_counter = tel->metrics().GetCounter("wcop_b.edited_requirements");
  }

  // Lines 1-5: score and rank by demandingness (most demanding first).
  const std::vector<double> demand =
      DatasetDemandingness(dataset, b_options.w1, b_options.w2);
  std::vector<size_t> ranked(n);
  std::iota(ranked.begin(), ranked.end(), 0);
  std::stable_sort(ranked.begin(), ranked.end(), [&](size_t a, size_t b) {
    return demand[a] > demand[b];
  });
  const double max_demand = demand[ranked.front()];

  WcopBResult result;
  const size_t edit_limit =
      b_options.max_edit_size == 0 ? n : std::min(b_options.max_edit_size, n);
  size_t edit_size = b_options.step;
  bool have_round = false;

  const bool checkpointing = !b_options.checkpoint_path.empty();
  const uint64_t fingerprint =
      checkpointing ? WcopBConfigFingerprint(dataset, options, b_options) : 0;
  if (checkpointing) {
    Result<Snapshot> snapshot = ReadSnapshotWithFallback(
        b_options.checkpoint_path, b_options.snapshot_retry);
    if (snapshot.ok()) {
      Result<WcopBCheckpoint> decoded =
          DecodeWcopBCheckpoint(snapshot->payload);
      if (!decoded.ok() && decoded.status().code() != StatusCode::kDataLoss) {
        return decoded.status();
      }
      if (!decoded.ok()) {
        if (tel != nullptr) {
          tel->metrics().GetCounter("checkpoint.corrupt_discarded")->Add();
        }
      } else {
        if (decoded->fingerprint != fingerprint) {
          return Status::FailedPrecondition(
              "checkpoint at " + b_options.checkpoint_path +
              " was written for a different dataset or options "
              "(fingerprint mismatch)");
        }
        result.rounds = std::move(decoded->rounds);
        result.anonymization = std::move(decoded->anonymization);
        result.final_edit_size = decoded->final_edit_size;
        result.bound_satisfied = decoded->bound_satisfied;
        result.resumed = true;
        result.resumed_rounds = result.rounds.size();
        have_round = !result.rounds.empty();
        edit_size = decoded->next_edit_size;
        if (tel != nullptr) {
          for (const auto& [name, value] : decoded->counters) {
            tel->metrics().GetCounter(name)->Add(value);
          }
          tel->metrics().GetCounter("checkpoint.resumes")->Add();
        }
        if (decoded->terminal) {
          // The sweep had already finished when this checkpoint was
          // written; replay its result instead of recomputing anything.
          result.anonymization.report.runtime_seconds =
              timer.ElapsedSeconds();
          SnapshotTelemetry(resolved, &result.anonymization.report);
          return result;
        }
      }
    } else if (snapshot.status().code() == StatusCode::kDataLoss) {
      if (tel != nullptr) {
        tel->metrics().GetCounter("checkpoint.corrupt_discarded")->Add();
      }
    } else if (snapshot.status().code() != StatusCode::kNotFound) {
      return snapshot.status();
    }
  }

  while (true) {
    WCOP_FAILPOINT("wcop_b.round");
    // Cooperative yield point: one check per requirement-editing round. A
    // trip after at least one completed round keeps that round's output
    // (flagged degraded) when partial results are allowed.
    if (Status s = CheckRunContext(resolved.run_context); !s.ok()) {
      if (checkpointing && have_round) {
        // Final flush: persist every completed round before surfacing the
        // trip, regardless of the checkpoint cadence and of whether partial
        // results are allowed. A signal-driven shutdown (SIGINT/SIGTERM via
        // the cancellation token) must never discard finished rounds; the
        // flush is best-effort — the trip status, not a flush I/O error, is
        // what the caller needs to see.
        WcopBCheckpoint checkpoint;
        checkpoint.fingerprint = fingerprint;
        checkpoint.next_edit_size = edit_size;
        checkpoint.terminal = false;
        checkpoint.bound_satisfied = result.bound_satisfied;
        checkpoint.final_edit_size = result.final_edit_size;
        checkpoint.rounds = result.rounds;
        checkpoint.anonymization = result.anonymization;
        if (tel != nullptr) {
          checkpoint.counters = tel->metrics().Snapshot().counters;
        }
        (void)SaveWcopBCheckpoint(b_options, checkpoint);
      }
      if (!resolved.allow_partial_results || !have_round) {
        return s;
      }
      result.anonymization.report.degraded = true;
      result.anonymization.report.degraded_reason = s.ToString();
      result.bound_satisfied = false;
      break;
    }
    WCOP_TRACE_SPAN(tel, "wcop_b/round");
    telemetry::CounterAdd(rounds_counter);
    edit_size = std::min(edit_size, edit_limit);
    telemetry::CounterAdd(edited_counter, edit_size);
    // Line 7: reset to the original requirements, then edit the top
    // edit_size trajectories towards the threshold trajectory (the first
    // non-edited one in the ranking).
    Dataset edited = dataset;
    const size_t threshold_rank = std::min(edit_size, n - 1);
    const Requirement threshold_req =
        dataset[ranked[threshold_rank]].requirement();
    const double threshold_demand = demand[ranked[threshold_rank]];

    std::vector<double> edit_costs;  // aligned with ranked[0..edit_size)
    edit_costs.reserve(edit_size);
    for (size_t r = 0; r < edit_size; ++r) {
      const size_t idx = ranked[r];
      double cost = EditCost(demand[idx], threshold_demand, max_demand);
      Requirement& req = edited[idx].mutable_requirement();
      if (b_options.edit_policy == WcopBOptions::EditPolicy::kProportional) {
        // Move only part of the way towards the threshold requirement; the
        // DE penalty shrinks by the same factor (less relaxation applied).
        const double s =
            std::clamp(b_options.proportional_strength, 0.0, 1.0);
        if (req.k > threshold_req.k) {
          req.k -= static_cast<int>(
              std::llround(s * static_cast<double>(req.k - threshold_req.k)));
        }
        if (req.delta < threshold_req.delta) {
          req.delta += s * (threshold_req.delta - req.delta);
        }
        cost *= s;
      } else {
        req.k = std::min(req.k, threshold_req.k);             // line 13
        req.delta = std::max(req.delta, threshold_req.delta);  // line 14
      }
      edit_costs.push_back(cost);
    }

    // Line 19: anonymization phase.
    WCOP_ASSIGN_OR_RETURN(AnonymizationResult round_result,
                          RunWcopCt(edited, resolved));

    // Line 20: Distortion = TTD + DE (Eq. 7), with Ω taken from this
    // round's anonymization.
    double de = 0.0;
    for (size_t r = 0; r < edit_size; ++r) {
      de += EditingDistortion(dataset[ranked[r]].size(),
                              round_result.report.omega, edit_costs[r]);
    }
    round_result.report.editing_distortion = de;
    round_result.report.total_distortion = round_result.report.ttd + de;

    WcopBRound round;
    round.edit_size = edit_size;
    round.ttd = round_result.report.ttd;
    round.editing_distortion = de;
    round.total_distortion = round_result.report.total_distortion;
    round.num_clusters = round_result.report.num_clusters;
    round.trashed = round_result.report.trashed_trajectories;
    result.rounds.push_back(round);

    const bool satisfied =
        round_result.report.total_distortion <= b_options.distort_max;
    const bool exhausted = edit_size >= edit_limit;
    const bool degraded = round_result.report.degraded;
    // Keep the most recent round's output (the accepted one when satisfied;
    // the fully-edited one otherwise, matching Algorithm 6's return).
    result.anonymization = std::move(round_result);
    result.final_edit_size = edit_size;
    have_round = true;
    // Durable progress: after a full-quality round, persist the sweep state
    // so a crashed process resumes from here instead of iteration 0. A
    // degraded round is deliberately NOT checkpointed — it exists only
    // because *this* run's context tripped; a restart with a fresh context
    // should redo it at full quality (the previous round's checkpoint
    // already covers everything before it).
    if (checkpointing && !degraded) {
      const bool terminal = satisfied || exhausted;
      const size_t cadence =
          std::max<size_t>(b_options.checkpoint_every_rounds, 1);
      if (terminal || result.rounds.size() % cadence == 0) {
        WcopBCheckpoint checkpoint;
        checkpoint.fingerprint = fingerprint;
        checkpoint.next_edit_size = edit_size + b_options.step;
        checkpoint.terminal = terminal;
        checkpoint.bound_satisfied = satisfied;
        checkpoint.final_edit_size = edit_size;
        checkpoint.rounds = result.rounds;
        checkpoint.anonymization = result.anonymization;
        if (tel != nullptr) {
          checkpoint.counters = tel->metrics().Snapshot().counters;
        }
        WCOP_RETURN_IF_ERROR(SaveWcopBCheckpoint(b_options, checkpoint));
      }
    }
    if (degraded) {
      // The inner anonymization already ran out of deadline/budget; further
      // rounds could only repeat the trip. Keep the partial round.
      result.bound_satisfied = satisfied;
      break;
    }
    if (satisfied || exhausted) {
      result.bound_satisfied = satisfied;
      break;
    }
    edit_size += b_options.step;  // line 21
  }

  if (!have_round) {
    return Status::Internal("WCOP-B performed no rounds");
  }
  result.anonymization.report.runtime_seconds = timer.ElapsedSeconds();
  // Re-snapshot so wcop_b.* counters from every round reach the report.
  SnapshotTelemetry(resolved, &result.anonymization.report);
  return result;
}

}  // namespace wcop
