#ifndef WCOP_ANON_MAHDAVIFAR_H_
#define WCOP_ANON_MAHDAVIFAR_H_

#include "anon/types.h"
#include "common/result.h"
#include "traj/dataset.h"

namespace wcop {

/// The clustering-based personalized baseline of Mahdavifar, Abadi, Kahani
/// & Mahdikhani (NSS 2012) — the closest prior work the paper compares
/// against conceptually (Section 2).
///
/// Differences from WCOP: each trajectory has a personal privacy level k_i
/// but *no* quality bound delta_i. Trajectories are grouped by privacy
/// level; clusters grow around random centroids with nearest neighbours
/// (EDR distance below a threshold), drawing from progressively
/// lower-privacy groups until the cluster's maximum k is satisfied.
/// Each cluster is then anonymized by *full generalization*: a matching-
/// point representative trajectory replaces every member.
///
/// The paper's critique — which this implementation lets you measure — is
/// the compulsory privacy/quality trade-off: members cannot bound their
/// displacement, so users with strict k suffer unbounded utility loss.
struct MahdavifarOptions {
  /// Neighbour admission threshold as a fraction of the dataset radius
  /// (applied to normalized EDR x radius, as in DistanceConfig).
  double distance_threshold_fraction = 0.5;

  /// Relaxation factor applied to the threshold when clusters cannot be
  /// completed (mirrors WCOP's radius relaxation).
  double threshold_growth = 1.5;
  size_t max_rounds = 16;

  double trash_fraction = 0.10;
  uint64_t seed = 7;
};

/// Runs the baseline. The returned report fills the same fields as the
/// WCOP algorithms (distortion, discernibility, ...) so benches can compare
/// rows directly. Cluster `delta` in the result is the *achieved*
/// co-localization diameter (max member-to-representative distance x2),
/// since the algorithm has no delta input.
Result<AnonymizationResult> RunMahdavifar(const Dataset& dataset,
                                          const MahdavifarOptions& options = {});

}  // namespace wcop

#endif  // WCOP_ANON_MAHDAVIFAR_H_
