#ifndef WCOP_DATA_GEOLIFE_PARSER_H_
#define WCOP_DATA_GEOLIFE_PARSER_H_

#include <cstdint>
#include <string>

#include "common/result.h"
#include "common/run_context.h"
#include "common/telemetry.h"
#include "geo/projection.h"
#include "traj/dataset.h"

namespace wcop {

/// Reader for the Microsoft GeoLife GPS trajectory dataset (Zheng et al.),
/// the dataset of the paper's experimental study.
///
/// A .plt file has six header lines followed by records of the form
///   latitude,longitude,0,altitude_ft,days_since_1899,date,time
/// The directory layout is  <root>/<user_id>/Trajectory/<timestamp>.plt.
///
/// All points are projected into local metric coordinates (metres) through
/// a LocalProjection anchored at central Beijing by default; timestamps are
/// converted to seconds (days-since-1899 * 86400).
struct GeoLifeOptions {
  /// Projection anchor (defaults: central Beijing).
  double ref_lat = 39.9057;
  double ref_lon = 116.3913;

  /// Stop after this many users / trajectories (0 = no limit). The paper
  /// uses a 238-trajectory, 72-user sample.
  size_t max_users = 0;
  size_t max_trajectories = 0;

  /// Skip trajectories with fewer points than this.
  size_t min_points = 2;

  /// Drop obviously broken fixes (outside a generous lat/lon window around
  /// the anchor).
  bool filter_outliers = true;
  double max_offset_metres = 500000.0;  ///< 500 km window

  /// Optional execution context (deadline / cancellation), polled per file
  /// and every few thousand records. Null means unbounded.
  const RunContext* run_context = nullptr;

  /// Optional telemetry sink: `parse.plt_files` / `parse.plt_points`
  /// counters plus `parse/geolife_dir` and `parse/plt_file` spans. Null
  /// (the default) disables instrumentation. Non-owning.
  telemetry::Telemetry* telemetry = nullptr;
};

/// Parses a single .plt file into a Trajectory (id/object id must be set by
/// the caller; the function leaves them 0).
Result<Trajectory> ParsePltFile(const std::string& path,
                                const LocalProjection& projection,
                                const GeoLifeOptions& options = {});

/// Walks a GeoLife-layout directory and loads every .plt found, assigning
/// sequential trajectory ids and per-directory user ids.
Result<Dataset> LoadGeoLifeDirectory(const std::string& root,
                                     const GeoLifeOptions& options = {});

/// Writes a trajectory as a GeoLife-format .plt file (six-line header +
/// lat,lon,0,altitude,days,date,time records), re-projecting metric
/// coordinates through `projection`. Round-trips with ParsePltFile.
Status WritePltFile(const Trajectory& trajectory,
                    const LocalProjection& projection,
                    const std::string& path);

/// Writes the whole dataset in GeoLife directory layout:
/// <root>/<object_id>/Trajectory/<traj_id>.plt. Creates directories as
/// needed; round-trips with LoadGeoLifeDirectory.
Status WriteGeoLifeDirectory(const Dataset& dataset,
                             const LocalProjection& projection,
                             const std::string& root);

}  // namespace wcop

#endif  // WCOP_DATA_GEOLIFE_PARSER_H_
