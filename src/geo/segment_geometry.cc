#include "geo/segment_geometry.h"

#include <algorithm>
#include <cmath>

namespace wcop {

double ProjectionParameter(const Point& p, const LineSegment& seg) {
  const double vx = seg.end.x - seg.start.x;
  const double vy = seg.end.y - seg.start.y;
  const double len_sq = vx * vx + vy * vy;
  if (len_sq == 0.0) {
    return 0.0;
  }
  const double wx = p.x - seg.start.x;
  const double wy = p.y - seg.start.y;
  return (wx * vx + wy * vy) / len_sq;
}

namespace {

/// Point on the infinite supporting line at parameter u.
Point PointAtParameter(const LineSegment& seg, double u) {
  return Point(seg.start.x + u * (seg.end.x - seg.start.x),
               seg.start.y + u * (seg.end.y - seg.start.y), 0.0);
}

}  // namespace

Point ClosestPointOnSegment(const Point& p, const LineSegment& seg) {
  const double u = std::clamp(ProjectionParameter(p, seg), 0.0, 1.0);
  return PointAtParameter(seg, u);
}

double PointToSegmentDistance(const Point& p, const LineSegment& seg) {
  return SpatialDistance(p, ClosestPointOnSegment(p, seg));
}

double PointToLineDistance(const Point& p, const LineSegment& seg) {
  const double u = ProjectionParameter(p, seg);
  return SpatialDistance(p, PointAtParameter(seg, u));
}

double AngleBetween(const LineSegment& a, const LineSegment& b) {
  const double ax = a.end.x - a.start.x;
  const double ay = a.end.y - a.start.y;
  const double bx = b.end.x - b.start.x;
  const double by = b.end.y - b.start.y;
  const double la = std::sqrt(ax * ax + ay * ay);
  const double lb = std::sqrt(bx * bx + by * by);
  if (la == 0.0 || lb == 0.0) {
    return 0.0;
  }
  const double cosine = std::clamp((ax * bx + ay * by) / (la * lb), -1.0, 1.0);
  return std::acos(cosine);
}

SegmentDistanceComponents ComputeSegmentDistanceComponents(
    const LineSegment& a, const LineSegment& b) {
  // Follow the TRACLUS convention: the longer segment is Li, the shorter Lj.
  const LineSegment& longer = a.Length() >= b.Length() ? a : b;
  const LineSegment& shorter = a.Length() >= b.Length() ? b : a;

  SegmentDistanceComponents out;

  // Perpendicular: Lehmer mean of the two projection offsets.
  const double u_s = ProjectionParameter(shorter.start, longer);
  const double u_e = ProjectionParameter(shorter.end, longer);
  const Point ps = Point(longer.start.x + u_s * (longer.end.x - longer.start.x),
                         longer.start.y + u_s * (longer.end.y - longer.start.y),
                         0.0);
  const Point pe = Point(longer.start.x + u_e * (longer.end.x - longer.start.x),
                         longer.start.y + u_e * (longer.end.y - longer.start.y),
                         0.0);
  const double l_perp1 = SpatialDistance(shorter.start, ps);
  const double l_perp2 = SpatialDistance(shorter.end, pe);
  const double denom = l_perp1 + l_perp2;
  out.perpendicular =
      denom == 0.0 ? 0.0 : (l_perp1 * l_perp1 + l_perp2 * l_perp2) / denom;

  // Parallel: smaller overhang of the two projections beyond Li's endpoints.
  const double longer_len = longer.Length();
  auto overhang = [&](double u) {
    // Distance from the projected point to the nearer endpoint of Li,
    // measured along Li; zero when the projection falls inside Li.
    if (u < 0.0) {
      return -u * longer_len;
    }
    if (u > 1.0) {
      return (u - 1.0) * longer_len;
    }
    return 0.0;
  };
  out.parallel = std::min(overhang(u_s), overhang(u_e));

  // Angular: ||Lj|| * sin(theta) for theta < 90 degrees, ||Lj|| otherwise
  // (opposite-pointing segments are maximally dissimilar).
  const double theta = AngleBetween(longer, shorter);
  const double shorter_len = shorter.Length();
  out.angular = theta < M_PI / 2.0 ? shorter_len * std::sin(theta)
                                   : shorter_len;
  return out;
}

bool SegmentIntersectsRect(double ax, double ay, double bx, double by,
                           double x_lo, double x_hi, double y_lo,
                           double y_hi) {
  double t0 = 0.0, t1 = 1.0;
  const double dx = bx - ax;
  const double dy = by - ay;
  auto clip = [&](double p, double v) {
    // Clip against p * t <= v (one rectangle edge).
    if (p == 0.0) {
      return v >= 0.0;  // parallel: fully inside or fully outside
    }
    const double r = v / p;
    if (p < 0.0) {
      if (r > t1) {
        return false;
      }
      t0 = std::max(t0, r);
    } else {
      if (r < t0) {
        return false;
      }
      t1 = std::min(t1, r);
    }
    return t0 <= t1;
  };
  return clip(-dx, ax - x_lo) && clip(dx, x_hi - ax) && clip(-dy, ay - y_lo) &&
         clip(dy, y_hi - ay);
}

double SegmentDistance(const LineSegment& a, const LineSegment& b,
                       double w_perpendicular, double w_parallel,
                       double w_angular) {
  const SegmentDistanceComponents c = ComputeSegmentDistanceComponents(a, b);
  return w_perpendicular * c.perpendicular + w_parallel * c.parallel +
         w_angular * c.angular;
}

}  // namespace wcop
