#include "server/service.h"

#include <sys/stat.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <utility>

#include "anon/report_json.h"
#include "attack/audit.h"
#include "common/artifact_registry.h"
#include "common/failpoint.h"
#include "common/log.h"
#include "common/stopwatch.h"
#include "pipeline/continuous.h"
#include "store/shard_runner.h"
#include "store/store_file.h"
#include "traj/io.h"

namespace wcop {
namespace server {

namespace {

Status MakeDir(const std::string& path) {
  if (::mkdir(path.c_str(), 0755) != 0 && errno != EEXIST) {
    return Status::IoError("mkdir '" + path +
                           "': " + std::string(std::strerror(errno)));
  }
  return Status::OK();
}

/// Trace ids are minted from the job name (the idempotency key, unique per
/// job) so a crash-recovered job keeps the identity its first admission
/// minted, and every retry of the same job lands in the same trace.
std::string MintTraceId(std::string_view job_name) {
  uint64_t h = 1469598103934665603ull;  // FNV-1a
  for (const char c : job_name) {
    h ^= static_cast<unsigned char>(c);
    h *= 1099511628211ull;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%016llx",
                static_cast<unsigned long long>(h));
  return "wcop-job-" + std::string(buf);
}

/// Context fields every log line about a job carries.
log::ContextLogger JobLogger(const JobRecord& record) {
  return log::ContextLogger()
      .With({"job", record.id})
      .With({"name", record.spec.name})
      .With({"trace_id", record.trace_id});
}

}  // namespace

Result<std::unique_ptr<AnonymizationService>> AnonymizationService::Start(
    const ServiceOptions& options) {
  if (options.job_dir.empty()) {
    return Status::InvalidArgument("ServiceOptions.job_dir is required");
  }
  auto service =
      std::unique_ptr<AnonymizationService>(new AnonymizationService());
  service->options_ = options;
  service->options_.queue_capacity =
      std::max<size_t>(options.queue_capacity, 1);
  service->options_.workers = std::max(options.workers, 1);
  service->options_.job_threads = std::max(options.job_threads, 1);
  service->retry_ = options.store_retry;
  service->retry_.metrics = &service->telemetry_.metrics();

  WCOP_RETURN_IF_ERROR(MakeDir(options.job_dir));
  WCOP_RETURN_IF_ERROR(MakeDir(options.job_dir + "/out"));
  WCOP_RETURN_IF_ERROR(MakeDir(options.job_dir + "/traces"));
  // Trace files publish by write-tmp -> rename too; sweep their orphans.
  WCOP_ASSIGN_OR_RETURN(
      size_t traces_swept,
      store::SweepStaleArtifacts(options.job_dir + "/traces",
                                 &service->telemetry_));
  // Janitor pass over the default output directory: a kill between a
  // published CSV's write-tmp and its rename leaves an orphan that must
  // not be mistaken for output.
  WCOP_ASSIGN_OR_RETURN(
      size_t out_swept,
      store::SweepStaleArtifacts(options.job_dir + "/out",
                                 &service->telemetry_));
  service->telemetry_.metrics()
      .GetGauge("server.janitor.swept")
      ->Set(static_cast<double>(traces_swept + out_swept));
  WCOP_ASSIGN_OR_RETURN(
      service->ledger_,
      JobLedger::Open(options.job_dir + "/ledger", &service->telemetry_,
                      &service->retry_));
  // Durable-state health on /metrics: records the startup scan could not
  // trust (skipped, never silently re-run) and the artifacts it swept.
  service->telemetry_.metrics()
      .GetGauge("server.ledger.corrupt_records")
      ->Set(static_cast<double>(service->ledger_->corrupt_records()));
  service->queue_ = std::make_unique<BoundedQueue<int64_t>>(
      service->options_.queue_capacity);

  // Recovery: every job the previous life accepted but did not finish is
  // re-enqueued in admission (id) order, past the live capacity check —
  // recovered jobs were admitted once already.
  telemetry::Counter* recovered_counter =
      service->telemetry_.metrics().GetCounter("server.jobs.recovered");
  for (JobRecord& record : service->ledger_->Records()) {
    service->by_name_[record.spec.name] = record.id;
    if (record.state == JobState::kQueued ||
        record.state == JobState::kRunning) {
      record.state = JobState::kQueued;  // a mid-crash "running" job is
                                         // just queued work again
      service->admitted_at_[record.id] =
          std::chrono::steady_clock::now();
      WCOP_RETURN_IF_ERROR(service->queue_->ForcePush(record.id));
      service->recovered_jobs_ += 1;
      recovered_counter->Add();
      if (record.trace_id.empty()) {
        // Record written before trace ids existed: mint now, same id every
        // recovery (derived from the name).
        record.trace_id = MintTraceId(record.spec.name);
      }
      JobLogger(record).Info("recovered unfinished job, re-enqueued");
    }
    service->jobs_[record.id] = std::move(record);
  }
  service->telemetry_.metrics()
      .GetGauge("server.queue.capacity")
      ->Set(static_cast<double>(service->options_.queue_capacity));
  service->telemetry_.metrics()
      .GetGauge("server.queue.depth")
      ->Set(static_cast<double>(service->queue_->size()));

  for (int i = 0; i < service->options_.workers; ++i) {
    service->workers_.emplace_back(&AnonymizationService::WorkerLoop,
                                   service.get());
  }
  return service;
}

AnonymizationService::~AnonymizationService() {
  BeginShutdown(/*drain=*/false);
  AwaitTermination();
}

void AnonymizationService::ApplyTenantPolicy(JobSpec* spec) const {
  const TenantPolicy* policy = &options_.default_policy;
  auto it = options_.tenants.find(spec->tenant);
  if (it != options_.tenants.end()) {
    policy = &it->second;
  }
  if (spec->assign_k == 0 && policy->default_k > 0) {
    spec->assign_k = policy->default_k;
  }
  if (spec->assign_delta <= 0.0 && policy->default_delta > 0.0) {
    spec->assign_delta = policy->default_delta;
  }
  if (spec->deadline_ms == 0) {
    spec->deadline_ms = policy->default_deadline_ms;
  }
  if (spec->max_distance_computations == 0) {
    spec->max_distance_computations =
        policy->default_max_distance_computations;
  }
  spec->allow_partial = spec->allow_partial || policy->allow_partial_default;
}

Result<int64_t> AnonymizationService::Submit(JobSpec spec) {
  telemetry::MetricsRegistry& metrics = telemetry_.metrics();
  // Status-injection window for admission-path fault tests.
  WCOP_FAILPOINT("server.admit");
  if (!accepting_.load(std::memory_order_relaxed)) {
    return Status::FailedPrecondition("service is shutting down");
  }
  if (Status s = ValidateJobSpec(spec); !s.ok()) {
    metrics.GetCounter("server.jobs.invalid")->Add();
    return s;
  }
  ApplyTenantPolicy(&spec);
  if (Status s = ValidateJobSpec(spec); !s.ok()) {
    // Tenant defaults are configuration, but they still pass the same
    // gate: a bad policy must not smuggle a bad job in.
    metrics.GetCounter("server.jobs.invalid")->Add();
    return s;
  }
  if (spec.output_csv.empty()) {
    spec.output_csv = spec.kind == "audit"
                          ? options_.job_dir + "/out/" + spec.name +
                                ".audit.json"
                          : DefaultOutputPath(spec.name);
  }
  if (spec.kind == "continuous" && spec.output_dir.empty()) {
    spec.output_dir = options_.job_dir + "/out/" + spec.name + ".windows";
  }

  // Request validation touches the input store once: it must open (valid
  // header + index) and be non-empty before we promise anything.
  Result<store::TrajectoryStoreReader> probe =
      RetryResultCall<store::TrajectoryStoreReader>(retry_, [&] {
        return store::TrajectoryStoreReader::Open(spec.input_store);
      });
  if (!probe.ok()) {
    metrics.GetCounter("server.jobs.invalid")->Add();
    return Status::InvalidArgument("input store rejected: " +
                                   probe.status().ToString());
  }
  if (probe->size() == 0) {
    metrics.GetCounter("server.jobs.invalid")->Add();
    return Status::InvalidArgument("input store is empty");
  }

  std::lock_guard<std::mutex> admit_lock(admit_mu_);
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto existing = by_name_.find(spec.name);
    if (existing != by_name_.end()) {
      // Idempotent resubmit: the name is the dedup key, so a client that
      // crashed between submit and response can retry safely.
      metrics.GetCounter("server.jobs.deduped")->Add();
      return existing->second;
    }
  }
  if (queue_->size() >= queue_->capacity()) {
    // Explicit backpressure: reject now, loudly, rather than queueing
    // unboundedly or blocking the client.
    metrics.GetCounter("server.jobs.rejected")->Add();
    return Status::ResourceExhausted(
        "submission queue is at capacity (" +
        std::to_string(queue_->capacity()) + " jobs); retry later");
  }

  JobRecord record;
  record.state = JobState::kQueued;
  record.spec = std::move(spec);
  // Trace identity is part of admission: it is durable with the record,
  // so the job's whole life — including crash-recovered retries — shares
  // one trace id.
  record.trace_id = MintTraceId(record.spec.name);
  // Durable-before-visible: the ledger append is the acceptance point.
  // A crash after it re-enqueues the job on restart; a crash before it
  // means the client never got an id.
  WCOP_RETURN_IF_ERROR(ledger_->Append(&record));
  const int64_t id = record.id;
  log::Info("job accepted", {{"job", id},
                             {"name", record.spec.name},
                             {"tenant", record.spec.tenant},
                             {"trace_id", record.trace_id},
                             {"shards", record.spec.shards}});
  {
    std::lock_guard<std::mutex> lock(mu_);
    by_name_[record.spec.name] = id;
    admitted_at_[id] = std::chrono::steady_clock::now();
    jobs_[id] = std::move(record);
  }
  metrics.GetCounter("server.jobs.accepted")->Add();
  if (Status push = queue_->TryPush(id); !push.ok()) {
    // Shutdown raced the admission: the job is durable and will run on
    // the next start, which is exactly what "accepted" promises.
    log::Warn("job accepted but not scheduled; it will run on restart",
              {{"job", id}, {"status", push.ToString()}});
  }
  metrics.GetGauge("server.queue.depth")
      ->Set(static_cast<double>(queue_->size()));
  return id;
}

Result<JobRecord> AnonymizationService::GetJob(int64_t id) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = jobs_.find(id);
  if (it == jobs_.end()) {
    return Status::NotFound("no job with id " + std::to_string(id));
  }
  return it->second;
}

std::vector<JobRecord> AnonymizationService::Jobs() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<JobRecord> out;
  out.reserve(jobs_.size());
  for (const auto& [id, record] : jobs_) {
    out.push_back(record);
  }
  return out;
}

AnonymizationService::Health AnonymizationService::GetHealth() const {
  Health health;
  health.accepting = accepting_.load(std::memory_order_relaxed);
  health.queued = queue_->size();
  health.running = running_.load(std::memory_order_relaxed);
  health.queue_capacity = queue_->capacity();
  health.recovered = recovered_jobs_;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [id, record] : jobs_) {
    if (record.state == JobState::kDone) {
      ++health.done;
    } else if (record.state == JobState::kFailed) {
      ++health.failed;
    }
  }
  return health;
}

void AnonymizationService::BeginShutdown(bool drain) {
  accepting_.store(false, std::memory_order_relaxed);
  if (!drain) {
    // Cooperative cancellation: running jobs trip at their next yield
    // point, flush their checkpoints, and are requeued unpublished.
    shutdown_token_.RequestCancellation();
  }
  queue_->Close(drain);
}

void AnonymizationService::AwaitTermination() {
  for (std::thread& worker : workers_) {
    if (worker.joinable()) {
      worker.join();
    }
  }
}

void AnonymizationService::AwaitIdle() {
  std::unique_lock<std::mutex> lock(mu_);
  idle_.wait(lock, [&] {
    if (queue_->size() != 0 ||
        running_.load(std::memory_order_relaxed) != 0) {
      return false;
    }
    for (const auto& [id, record] : jobs_) {
      if (record.state == JobState::kRunning) {
        return false;
      }
    }
    return true;
  });
}

void AnonymizationService::StoreRecord(const JobRecord& record) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    jobs_[record.id] = record;
  }
  idle_.notify_all();
}

std::string AnonymizationService::WorkDir(int64_t id) const {
  return options_.job_dir + "/work_" + std::to_string(id);
}

std::string AnonymizationService::DefaultOutputPath(
    const std::string& name) const {
  return options_.job_dir + "/out/" + name + ".csv";
}

Status AnonymizationService::PersistTransition(const JobRecord& record,
                                               const char* site) {
  WCOP_FAILPOINT(site);
  return ledger_->Update(record);
}

void AnonymizationService::WorkerLoop() {
  telemetry::MetricsRegistry& metrics = telemetry_.metrics();
  telemetry::Gauge* depth = metrics.GetGauge("server.queue.depth");
  while (std::optional<int64_t> id = queue_->Pop()) {
    depth->Set(static_cast<double>(queue_->size()));
    JobRecord record;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = jobs_.find(*id);
      if (it == jobs_.end()) {
        continue;
      }
      record = it->second;
    }
    if (record.state == JobState::kDone ||
        record.state == JobState::kFailed) {
      continue;  // stale queue entry (deduped resubmit of a finished job)
    }
    if (shutdown_token_.cancellation_requested()) {
      // Immediate shutdown won the race to this job: leave it queued in
      // the ledger for the next start.
      continue;
    }
    running_.fetch_add(1, std::memory_order_relaxed);

    record.state = JobState::kRunning;
    record.attempts += 1;
    if (record.trace_id.empty()) {
      record.trace_id = MintTraceId(record.spec.name);
    }
    const log::ContextLogger jlog = JobLogger(record);
    // The job's own telemetry bundle: its span buffer becomes the
    // persisted trace, its metrics roll up into the service registry once
    // the job finishes (either way).
    telemetry::Telemetry job_tel;
    job_tel.trace().set_trace_id(record.trace_id);
    Status run = PersistTransition(record, "server.job_claim");
    if (run.ok()) {
      StoreRecord(record);
      jlog.Info("job running", {{"attempt", record.attempts},
                                {"shards", record.spec.shards}});
      Stopwatch timer;
      run = ExecuteJob(&record, &job_tel);
      metrics.GetHistogram("server.job.exec_ns")
          ->Record(static_cast<uint64_t>(timer.ElapsedSeconds() * 1e9));
      telemetry::AccumulateSnapshot(&metrics, job_tel.metrics().Snapshot());
      PersistJobTrace(record.id, job_tel);
    }

    if (run.ok()) {
      record.state = JobState::kDone;
      metrics.GetCounter("server.jobs.completed")->Add();
      if (record.outcome.degraded) {
        metrics.GetCounter("server.jobs.degraded")->Add();
      }
      jlog.Info("job done",
                {{"published", record.outcome.published},
                 {"clusters", record.outcome.clusters},
                 {"degraded", record.outcome.degraded},
                 {"resumed_shards", record.outcome.resumed_shards}});
    } else if (run.code() == StatusCode::kCancelled &&
               shutdown_token_.cancellation_requested()) {
      // Service teardown, not a job failure: requeue for the next life.
      record.state = JobState::kQueued;
      record.outcome = JobOutcome{};
      record.progress = JobProgress{};
      metrics.GetCounter("server.jobs.requeued")->Add();
      jlog.Info("job requeued by shutdown");
      if (Status s = ledger_->Update(record); !s.ok()) {
        // Best-effort: a still-"running" ledger record recovers the same
        // way a requeued one does.
        jlog.Warn("requeue not recorded in ledger",
                  {{"status", s.ToString()}});
      }
      StoreRecord(record);
      running_.fetch_sub(1, std::memory_order_relaxed);
      idle_.notify_all();
      continue;
    } else {
      record.state = JobState::kFailed;
      record.outcome.error = run.ToString();
      metrics.GetCounter("server.jobs.failed")->Add();
      if (run.code() == StatusCode::kDeadlineExceeded) {
        metrics.GetCounter("server.jobs.deadline_exceeded")->Add();
      }
      jlog.Error("job failed", {{"status", run.ToString()},
                                {"attempt", record.attempts}});
    }
    if (Status fin = PersistTransition(record, "server.job_done");
        !fin.ok()) {
      // The terminal state is in memory but not durable; a restart re-runs
      // the job, which is idempotent (deterministic output, atomic
      // publish).
      jlog.Warn("final ledger write failed; job will re-run on restart",
                {{"status", fin.ToString()}});
    }
    StoreRecord(record);
    running_.fetch_sub(1, std::memory_order_relaxed);
    idle_.notify_all();
  }
}

std::string AnonymizationService::TracePath(int64_t id) const {
  return options_.job_dir + "/traces/job_" + std::to_string(id) + ".json";
}

void AnonymizationService::PersistJobTrace(
    int64_t id, const telemetry::Telemetry& job_tel) {
  // Same atomic-publish discipline as every other artifact: the served
  // path either holds a complete JSON document or nothing.
  const std::string path = TracePath(id);
  const std::string tmp = path + ".tmp";
  if (Status s = job_tel.WriteChromeTrace(tmp); !s.ok()) {
    log::Warn("job trace not persisted",
              {{"job", id}, {"status", s.ToString()}});
    return;
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    log::Warn("job trace rename failed",
              {{"job", id}, {"error", std::strerror(errno)}});
    std::remove(tmp.c_str());
  }
}

Status AnonymizationService::MaterializeWithRequirements(
    const JobSpec& spec, const std::string& path) const {
  WCOP_ASSIGN_OR_RETURN(
      store::TrajectoryStoreReader reader,
      RetryResultCall<store::TrajectoryStoreReader>(retry_, [&] {
        return store::TrajectoryStoreReader::Open(spec.input_store);
      }));
  WCOP_ASSIGN_OR_RETURN(store::TrajectoryStoreWriter writer,
                        store::TrajectoryStoreWriter::Create(path));
  for (size_t i = 0; i < reader.size(); ++i) {
    WCOP_ASSIGN_OR_RETURN(Trajectory t, reader.Read(i));
    Requirement req;
    req.k = spec.assign_k;
    req.delta =
        spec.assign_delta > 0.0 ? spec.assign_delta : t.requirement().delta;
    t.set_requirement(req);
    WCOP_RETURN_IF_ERROR(writer.Append(t));
  }
  return writer.Finish();
}

Status AnonymizationService::ExecuteJob(JobRecord* record,
                                        telemetry::Telemetry* job_tel) {
  const JobSpec& spec = record->spec;
  WCOP_TRACE_SPAN(job_tel, "server/job");

  RunContext ctx;
  ctx.set_trace_id(record->trace_id);
  ctx.set_cancellation_token(shutdown_token_);
  if (spec.deadline_ms > 0) {
    // The deadline clock started at admission: time spent waiting in the
    // queue counts, so an overloaded service fails deadlined jobs fast
    // instead of running them pointlessly late.
    std::chrono::steady_clock::time_point admitted;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = admitted_at_.find(record->id);
      admitted = it != admitted_at_.end()
                     ? it->second
                     : std::chrono::steady_clock::now();
    }
    const auto total = std::chrono::milliseconds(spec.deadline_ms);
    const auto elapsed = std::chrono::steady_clock::now() - admitted;
    if (elapsed >= total) {
      return Status::DeadlineExceeded("job deadline (" +
                                      std::to_string(spec.deadline_ms) +
                                      " ms) expired while queued");
    }
    ctx.set_deadline_after(
        std::chrono::duration_cast<std::chrono::nanoseconds>(total -
                                                             elapsed));
  }
  if (spec.max_distance_computations > 0) {
    ResourceBudget budget;
    budget.max_distance_computations = spec.max_distance_computations;
    ctx.set_budget(budget);
  }

  const std::string work_dir = WorkDir(record->id);
  WCOP_RETURN_IF_ERROR(MakeDir(work_dir));
  WCOP_FAILPOINT("server.job_prepare");

  std::string input_path = spec.input_store;
  // Audit jobs measure the publication as-is: a requirement override (or
  // a tenant default_k) must not rewrite what the red team sees.
  if (spec.assign_k > 0 && spec.kind != "audit") {
    input_path = work_dir + "/input.wst";
    WCOP_RETURN_IF_ERROR(MaterializeWithRequirements(spec, input_path));
  }
  if (spec.kind == "continuous") {
    return ExecuteContinuousJob(record, job_tel, &ctx, input_path);
  }
  if (spec.kind == "audit") {
    return ExecuteAuditJob(record, job_tel, &ctx, input_path);
  }

  WCOP_ASSIGN_OR_RETURN(
      store::TrajectoryStoreReader reader,
      RetryResultCall<store::TrajectoryStoreReader>(retry_, [&] {
        return store::TrajectoryStoreReader::Open(input_path);
      }));

  store::ShardRunOptions run;
  run.wcop.seed = spec.seed;
  run.wcop.threads = options_.job_threads;
  run.wcop.run_context = &ctx;
  run.wcop.telemetry = job_tel;
  run.wcop.allow_partial_results = spec.allow_partial;
  run.partition.num_shards = spec.shards;
  run.partition.overlap_margin = spec.overlap_margin;
  run.shard_dir = work_dir + "/shards";
  // Per-job checkpoints are what make kill -9 cheap: a restarted job
  // resumes past every shard that already finished.
  run.checkpoint_dir = work_dir + "/ckpt";
  run.verify_shards = options_.verify_jobs;

  // Live progress: every completed shard updates the in-memory record
  // (what GET /jobs/<id> serves) and the service progress gauges. The
  // shard runner serializes callbacks, so shards_done is monotone.
  telemetry::MetricsRegistry& metrics = telemetry_.metrics();
  telemetry::Gauge* g_done = metrics.GetGauge("server.progress.shards_done");
  telemetry::Gauge* g_total =
      metrics.GetGauge("server.progress.shards_total");
  telemetry::Gauge* g_distance =
      metrics.GetGauge("server.progress.distance_calls");
  telemetry::Gauge* g_eta = metrics.GetGauge("server.progress.eta_seconds");
  Stopwatch progress_timer;
  run.progress = [&](const store::ShardProgress& p) {
    JobProgress jp;
    jp.shards_done = p.shards_done;
    jp.shards_total = p.shards_total;
    jp.distance_calls = p.distance_calls;
    if (p.shards_done > 0 && p.shards_done < p.shards_total) {
      const double elapsed = progress_timer.ElapsedSeconds();
      jp.eta_seconds = elapsed / static_cast<double>(p.shards_done) *
                       static_cast<double>(p.shards_total - p.shards_done);
    }
    record->progress = jp;  // worker-local copy; safe, callbacks serialized
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = jobs_.find(record->id);
      if (it != jobs_.end()) {
        it->second.progress = jp;
      }
    }
    g_done->Set(static_cast<double>(jp.shards_done));
    g_total->Set(static_cast<double>(jp.shards_total));
    g_distance->Set(static_cast<double>(jp.distance_calls));
    g_eta->Set(jp.eta_seconds);
  };

  Result<store::ShardedRunResult> result =
      store::RunShardedWcopCt(reader, run);
  WCOP_RETURN_IF_ERROR(result.status());
  if (shutdown_token_.cancellation_requested()) {
    // The run finished (possibly degraded) under the shutdown token, but
    // teardown must never publish: the job requeues and republishes
    // deterministically on the next start.
    return Status::Cancelled("service shutting down before publication");
  }
  if (!result->all_verified) {
    return Status::Internal(
        "anonymity audit rejected the output; nothing published");
  }

  JobOutcome* out = &record->outcome;
  const AnonymizationReport& report = result->merged.report;
  out->degraded = report.degraded;
  out->degraded_reason = report.degraded_reason;
  out->verified = options_.verify_jobs;
  out->published = result->merged.sanitized.size();
  out->suppressed = report.trashed_trajectories;
  out->clusters = report.num_clusters;
  out->total_distortion = report.total_distortion;
  out->resumed_shards = result->resumed_shards;

  // Atomic publication: the output path never holds partial bytes, and a
  // kill between the tmp write and the rename leaves an orphan the
  // startup janitor sweeps.
  const std::string tmp = spec.output_csv + ".tmp";
  // Visible to the in-process janitor as live for the duration of the
  // publish, so no sweep can tear it out from under the rename.
  const ScopedLiveArtifact live_tmp(tmp);
  WCOP_RETURN_IF_ERROR(RetryCall(retry_, [&] {
    return WriteDatasetCsv(result->merged.sanitized, tmp);
  }));
  WCOP_FAILPOINT("server.job_output");
  if (std::rename(tmp.c_str(), spec.output_csv.c_str()) != 0) {
    return Status::IoError("rename '" + tmp + "' -> '" + spec.output_csv +
                           "': " + std::string(std::strerror(errno)));
  }
  WCOP_FAILPOINT("server.job_commit");
  return Status::OK();
}

Status AnonymizationService::ExecuteContinuousJob(
    JobRecord* record, telemetry::Telemetry* job_tel, RunContext* ctx,
    const std::string& input_path) {
  const JobSpec& spec = record->spec;
  WCOP_TRACE_SPAN(job_tel, "server/continuous_job");

  pipeline::ContinuousPipelineOptions popts;
  popts.source_store = input_path;
  popts.output_dir = spec.output_dir;
  popts.work_dir = WorkDir(record->id) + "/pipeline";
  popts.window_seconds = spec.window_seconds;
  // Always resume: the output dir is job-private and windows are
  // deterministic, so a crash-recovered attempt adopts every window the
  // previous life committed instead of recomputing it.
  popts.resume = true;
  popts.wcop.seed = spec.seed;
  popts.wcop.threads = options_.job_threads;
  popts.wcop.run_context = ctx;
  popts.wcop.telemetry = job_tel;
  popts.wcop.allow_partial_results = spec.allow_partial;
  popts.partition.num_shards = spec.shards;
  popts.partition.overlap_margin = spec.overlap_margin;
  popts.verify_shards = options_.verify_jobs;
  popts.publish_retry = &retry_;

  // Live window progress: the record reuses its shard fields window-wise
  // (what GET /jobs/<id> serves) and the service registry carries the
  // pipeline.* gauges for /metrics.
  telemetry::MetricsRegistry& metrics = telemetry_.metrics();
  telemetry::Gauge* g_done = metrics.GetGauge("pipeline.windows_done");
  telemetry::Gauge* g_total = metrics.GetGauge("pipeline.windows_total");
  telemetry::Gauge* g_published =
      metrics.GetGauge("pipeline.published_fragments");
  telemetry::Gauge* g_carry = metrics.GetGauge("pipeline.carry_records");
  Stopwatch progress_timer;
  popts.progress = [&](const pipeline::PipelineProgress& p) {
    JobProgress jp;
    jp.shards_done = p.windows_done;
    jp.shards_total = p.windows_total;
    if (p.windows_done > 0 && p.windows_done < p.windows_total) {
      const double elapsed = progress_timer.ElapsedSeconds();
      jp.eta_seconds =
          elapsed / static_cast<double>(p.windows_done) *
          static_cast<double>(p.windows_total - p.windows_done);
    }
    record->progress = jp;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = jobs_.find(record->id);
      if (it != jobs_.end()) {
        it->second.progress = jp;
      }
    }
    g_done->Set(static_cast<double>(p.windows_done));
    g_total->Set(static_cast<double>(p.windows_total));
    g_published->Set(static_cast<double>(p.published_fragments));
    g_carry->Set(static_cast<double>(p.carried));
  };

  WCOP_ASSIGN_OR_RETURN(pipeline::ContinuousPipelineResult result,
                        pipeline::RunContinuousPipeline(popts));

  JobOutcome* out = &record->outcome;
  out->degraded = result.degraded;
  out->verified = options_.verify_jobs;
  out->published = result.published_fragments;
  out->suppressed = result.suppressed_fragments;
  out->clusters = result.total_clusters;
  out->total_distortion = result.total_ttd;
  out->resumed_shards = result.resumed_windows;
  WCOP_FAILPOINT("server.job_commit");
  return Status::OK();
}

Status AnonymizationService::ExecuteAuditJob(JobRecord* record,
                                             telemetry::Telemetry* job_tel,
                                             RunContext* ctx,
                                             const std::string& input_path) {
  const JobSpec& spec = record->spec;
  WCOP_TRACE_SPAN(job_tel, "server/audit_job");

  attack::AuditOptions aopts;
  WCOP_ASSIGN_OR_RETURN(aopts.adversary,
                        attack::AdversaryPreset(spec.audit_adversary));
  aopts.adversary.seed = spec.seed;
  if (spec.audit_windows_dir.empty()) {
    // Single release: the job's input store is the publication under
    // audit; the optional original enables re-identification.
    aopts.published_store = input_path;
    aopts.original_store = spec.audit_original_store;
  } else {
    // Continuous: audit the window directory against the source store the
    // windows were published from.
    aopts.windows_dir = spec.audit_windows_dir;
    aopts.original_store = input_path;
  }
  aopts.victims = static_cast<size_t>(spec.audit_victims);
  aopts.threads = options_.job_threads;
  aopts.run_context = ctx;
  aopts.telemetry = job_tel;

  // Live progress: attacked units update the record (GET /jobs/<id>, the
  // wcop_top AUDIT column) and the service attack.progress.* gauges.
  telemetry::MetricsRegistry& metrics = telemetry_.metrics();
  telemetry::Gauge* g_done = metrics.GetGauge("attack.progress.done");
  telemetry::Gauge* g_total = metrics.GetGauge("attack.progress.total");
  Stopwatch progress_timer;
  aopts.progress = [&](const char* phase, size_t done, size_t total) {
    (void)phase;
    JobProgress jp;
    jp.shards_done = done;
    jp.shards_total = total;
    if (done > 0 && done < total) {
      const double elapsed = progress_timer.ElapsedSeconds();
      jp.eta_seconds = elapsed / static_cast<double>(done) *
                       static_cast<double>(total - done);
    }
    record->progress = jp;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = jobs_.find(record->id);
      if (it != jobs_.end()) {
        it->second.progress = jp;
      }
    }
    g_done->Set(static_cast<double>(done));
    g_total->Set(static_cast<double>(total));
  };

  WCOP_ASSIGN_OR_RETURN(attack::AuditReport report, attack::RunAudit(aopts));
  if (shutdown_token_.cancellation_requested()) {
    return Status::Cancelled("service shutting down before publication");
  }

  // Outcome mapping: `published` counts audited users, `verified` means
  // the publication delivered every requested k (no effective-k
  // violations and nothing re-identified above the 1/k floor is not
  // checkable here, so violations are the gate).
  JobOutcome* out = &record->outcome;
  out->published = report.has_effective_k
                       ? report.effective_k.users_measured
                       : report.reident.victims_attacked;
  out->suppressed = report.has_reident ? report.reident.victims_suppressed : 0;
  out->verified = report.has_effective_k &&
                  report.effective_k.violation_fraction == 0.0;
  out->total_distortion = report.has_distortion ? report.distortion.ttd : 0.0;

  // Atomic publication of the report JSON (same tmp + rename + janitor
  // protocol as batch CSV output).
  const std::string tmp = spec.output_csv + ".tmp";
  const ScopedLiveArtifact live_tmp(tmp);
  WCOP_RETURN_IF_ERROR(RetryCall(retry_, [&] {
    return WriteJsonFile(attack::AuditReportToJson(report), tmp);
  }));
  WCOP_FAILPOINT("server.job_output");
  if (std::rename(tmp.c_str(), spec.output_csv.c_str()) != 0) {
    return Status::IoError("rename '" + tmp + "' -> '" + spec.output_csv +
                           "': " + std::string(std::strerror(errno)));
  }
  WCOP_FAILPOINT("server.job_commit");
  return Status::OK();
}

}  // namespace server
}  // namespace wcop
