// Crash-recovery harness for the anonymization service: kill -9 (well,
// SIGABRT via failpoint) at every job-lifecycle transition, restart on the
// same job directory, and require that every accepted job still completes
// with byte-identical published output.
//
// The binary doubles as its own crash victim. Invoked as
//
//   server_crash_test --child=serve <job_dir> <dump_path>
//
// it starts an in-process AnonymizationService rooted at <job_dir>, submits
// two deterministic jobs by fixed names (the name is the idempotency key,
// so the restarted child's resubmission dedupes against ledger-recovered
// jobs instead of duplicating them), waits for completion, and dumps the
// published CSV bytes plus the stable outcome fields to <dump_path>.
// `attempts` and `resumed_shards` are deliberately excluded: they encode
// how often the job crashed, not what it produced.
//
// The gtest side fork/execs that child three ways per armed site:
//   1. baseline: fresh job_dir, no failpoints -> reference dump;
//   2. crash: WCOP_FAILPOINTS=<site>:abort@N -> expect death by SIGABRT
//      mid-lifecycle, dump never written;
//   3. restart: same job_dir, no failpoints -> must exit cleanly with a
//      dump byte-identical to the baseline.

#include <signal.h>
#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "server/service.h"
#include "store/store_file.h"
#include "test_util.h"

namespace wcop {
namespace {

using testing_util::SmallSynthetic;

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

// ---------------------------------------------------------------------------
// Child: one service life on <job_dir>.
// ---------------------------------------------------------------------------

int RunServeChild(const std::string& job_dir, const std::string& out_path) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(job_dir, ec);

  // The input store is created once, before the service starts: on restart
  // the recovered jobs begin executing immediately and must find it.
  const std::string store_path = job_dir + "/input.wst";
  if (!fs::exists(store_path)) {
    if (Status s = store::WriteDatasetStore(SmallSynthetic(24, 24),
                                            store_path);
        !s.ok()) {
      std::fprintf(stderr, "child: store write failed: %s\n",
                   s.ToString().c_str());
      return 2;
    }
  }

  server::ServiceOptions options;
  options.job_dir = job_dir + "/service";
  options.queue_capacity = 8;
  options.workers = 1;
  Result<std::unique_ptr<server::AnonymizationService>> service =
      server::AnonymizationService::Start(options);
  if (!service.ok()) {
    std::fprintf(stderr, "child: start failed: %s\n",
                 service.status().ToString().c_str());
    return 2;
  }

  // Two jobs exercising distinct execution paths: a sharded run and a
  // requirement-override (materialized input) run. Fixed names: a restarted
  // child resubmits the same names and dedup makes that a no-op for any
  // job the ledger already knows.
  server::JobSpec alpha;
  alpha.name = "alpha";
  alpha.input_store = store_path;
  alpha.shards = 2;
  server::JobSpec beta;
  beta.name = "beta";
  beta.input_store = store_path;
  beta.assign_k = 3;
  beta.assign_delta = 400.0;
  for (const server::JobSpec& spec : {alpha, beta}) {
    Result<int64_t> id = (*service)->Submit(spec);
    if (!id.ok()) {
      std::fprintf(stderr, "child: submit '%s' failed: %s\n",
                   spec.name.c_str(), id.status().ToString().c_str());
      return 2;
    }
  }

  (*service)->AwaitIdle();
  std::vector<server::JobRecord> jobs = (*service)->Jobs();
  (*service)->BeginShutdown(/*drain=*/true);
  (*service)->AwaitTermination();

  if (jobs.size() != 2) {
    std::fprintf(stderr, "child: expected 2 jobs, have %zu\n", jobs.size());
    return 3;
  }
  std::sort(jobs.begin(), jobs.end(),
            [](const server::JobRecord& a, const server::JobRecord& b) {
              return a.spec.name < b.spec.name;
            });

  std::string dump;
  char buf[256];
  for (const server::JobRecord& job : jobs) {
    if (job.state != server::JobState::kDone) {
      std::fprintf(stderr, "child: job '%s' ended %s: %s\n",
                   job.spec.name.c_str(),
                   std::string(server::JobStateName(job.state)).c_str(),
                   job.outcome.error.c_str());
      return 3;
    }
    std::snprintf(buf, sizeof(buf),
                  "job %s degraded %d verified %d published %" PRIu64
                  " suppressed %" PRIu64 " clusters %" PRIu64
                  " distortion %.17g\n",
                  job.spec.name.c_str(), job.outcome.degraded ? 1 : 0,
                  job.outcome.verified ? 1 : 0, job.outcome.published,
                  job.outcome.suppressed, job.outcome.clusters,
                  job.outcome.total_distortion);
    dump.append(buf);
    const std::string csv = ReadFileBytes(job.spec.output_csv);
    if (csv.empty()) {
      std::fprintf(stderr, "child: job '%s' published no output at %s\n",
                   job.spec.name.c_str(), job.spec.output_csv.c_str());
      return 3;
    }
    std::snprintf(buf, sizeof(buf), "csv %s %zu\n", job.spec.name.c_str(),
                  csv.size());
    dump.append(buf);
    dump.append(csv);
  }

  std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
  out.write(dump.data(), static_cast<std::streamsize>(dump.size()));
  out.close();
  if (!out) {
    std::fprintf(stderr, "child: cannot write %s\n", out_path.c_str());
    return 4;
  }
  return 0;
}

// ---------------------------------------------------------------------------
// Parent-side process harness.
// ---------------------------------------------------------------------------

struct ChildOutcome {
  bool signalled = false;
  int signal = 0;
  int exit_code = -1;
};

ChildOutcome SpawnChild(const std::string& job_dir,
                        const std::string& out_path,
                        const std::string& failpoints) {
  const pid_t pid = ::fork();
  if (pid == 0) {
    if (failpoints.empty()) {
      ::unsetenv("WCOP_FAILPOINTS");
    } else {
      ::setenv("WCOP_FAILPOINTS", failpoints.c_str(), 1);
    }
    ::execl("/proc/self/exe", "server_crash_test", "--child=serve",
            job_dir.c_str(), out_path.c_str(), static_cast<char*>(nullptr));
    _exit(127);  // exec failed
  }
  ChildOutcome outcome;
  if (pid < 0) {
    return outcome;  // fork failed -> exit_code stays -1
  }
  int status = 0;
  if (::waitpid(pid, &status, 0) != pid) {
    return outcome;
  }
  if (WIFSIGNALED(status)) {
    outcome.signalled = true;
    outcome.signal = WTERMSIG(status);
  } else if (WIFEXITED(status)) {
    outcome.exit_code = WEXITSTATUS(status);
  }
  return outcome;
}

class ServerCrashTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::path(::testing::TempDir()) /
           ("server_crash_" + std::string(::testing::UnitTest::GetInstance()
                                              ->current_test_info()
                                              ->name()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) { return (dir_ / name).string(); }

  std::string Baseline() {
    const std::string baseline_out = Path("baseline.dump");
    const ChildOutcome baseline =
        SpawnChild(Path("jobs_baseline"), baseline_out, "");
    EXPECT_FALSE(baseline.signalled) << "baseline died: " << baseline.signal;
    EXPECT_EQ(baseline.exit_code, 0);
    const std::string expected = ReadFileBytes(baseline_out);
    EXPECT_FALSE(expected.empty());
    return expected;
  }

  std::filesystem::path dir_;
};

// The kill matrix: every transition of the job lifecycle state machine
// (DESIGN.md "Service operation & fault tolerance"), plus the snapshot
// envelope under the ledger and the shard checkpoints under execution.
TEST_F(ServerCrashTest, EveryLifecycleTransitionSurvivesKillAndRestart) {
  const std::string expected = Baseline();
  ASSERT_FALSE(expected.empty());

  const std::vector<std::string> kill_specs = {
      "server.admit:abort@2",          // mid-admission of the second job
      "server.ledger_append:abort@1",  // first durable append
      "snapshot.rename:abort@1",       // inside the ledger's atomic write
      "server.job_claim:abort@1",      // queued -> running transition
      "server.ledger_update:abort@1",  // the ledger half of the claim
      "server.job_prepare:abort@1",    // work dir staged, nothing run
      "shard.checkpoint_saved:abort@1",  // mid-execution checkpoint
      "server.job_output:abort@1",     // output staged as .tmp, not renamed
      "server.job_commit:abort@1",     // output renamed, state not yet done
      "server.job_done:abort@1",       // running -> done transition, job 1
      "server.job_done:abort@2",       // running -> done transition, job 2
  };
  for (size_t i = 0; i < kill_specs.size(); ++i) {
    const std::string& spec = kill_specs[i];
    SCOPED_TRACE("killed at " + spec);
    const std::string job_dir = Path("jobs_" + std::to_string(i));
    const std::string out = Path("out_" + std::to_string(i));

    const ChildOutcome crash = SpawnChild(job_dir, out, spec);
    ASSERT_TRUE(crash.signalled)
        << "expected SIGABRT, child exited with " << crash.exit_code;
    EXPECT_EQ(crash.signal, SIGABRT);
    EXPECT_TRUE(ReadFileBytes(out).empty())
        << "crashed child must not have published a dump";

    const ChildOutcome restart = SpawnChild(job_dir, out, "");
    ASSERT_FALSE(restart.signalled)
        << "restart died with signal " << restart.signal;
    ASSERT_EQ(restart.exit_code, 0);
    EXPECT_EQ(ReadFileBytes(out), expected)
        << "recovered service output differs from the uninterrupted run";
  }
}

// Crashing twice — once with the output staged, once with it committed but
// the ledger still saying "running" — must still converge.
TEST_F(ServerCrashTest, RepeatedCrashesStillConverge) {
  const std::string expected = Baseline();
  ASSERT_FALSE(expected.empty());

  const std::string job_dir = Path("jobs");
  const std::string out = Path("out");
  const ChildOutcome first =
      SpawnChild(job_dir, out, "server.job_output:abort@1");
  ASSERT_TRUE(first.signalled);
  EXPECT_EQ(first.signal, SIGABRT);
  const ChildOutcome second =
      SpawnChild(job_dir, out, "server.job_commit:abort@1");
  ASSERT_TRUE(second.signalled);
  EXPECT_EQ(second.signal, SIGABRT);

  const ChildOutcome restart = SpawnChild(job_dir, out, "");
  ASSERT_FALSE(restart.signalled)
      << "restart died with signal " << restart.signal;
  ASSERT_EQ(restart.exit_code, 0);
  EXPECT_EQ(ReadFileBytes(out), expected);
}

}  // namespace
}  // namespace wcop

// Custom main: child mode must not run the test suite.
int main(int argc, char** argv) {
  if (argc == 4 && std::string(argv[1]) == "--child=serve") {
    return wcop::RunServeChild(argv[2], argv[3]);
  }
  ::testing::InitGoogleTest(&argc, argv);
  return RUN_ALL_TESTS();
}
