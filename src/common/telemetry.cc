#include "common/telemetry.h"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <fstream>

namespace wcop {
namespace telemetry {

namespace {

/// Per-thread span nesting depth. Shared across recorders on the same
/// thread, which is fine: a thread participates in one pipeline run at a
/// time, and depth is only used to annotate events.
thread_local uint32_t t_span_depth = 0;

void AppendEscaped(std::string* out, std::string_view in) {
  for (char c : in) {
    switch (c) {
      case '"':
        *out += "\\\"";
        break;
      case '\\':
        *out += "\\\\";
        break;
      case '\n':
        *out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          *out += c;
        }
    }
  }
}

}  // namespace

size_t Histogram::BucketFor(uint64_t value) {
  return static_cast<size_t>(std::bit_width(value));
}

uint64_t Histogram::BucketLowerBound(size_t b) {
  return b == 0 ? 0 : uint64_t{1} << (b - 1);
}

void Histogram::Record(uint64_t value) {
  buckets_[BucketFor(value)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(value, std::memory_order_relaxed);
  uint64_t seen_min = min_.load(std::memory_order_relaxed);
  while (value < seen_min &&
         !min_.compare_exchange_weak(seen_min, value,
                                     std::memory_order_relaxed)) {
  }
  uint64_t seen_max = max_.load(std::memory_order_relaxed);
  while (value > seen_max &&
         !max_.compare_exchange_weak(seen_max, value,
                                     std::memory_order_relaxed)) {
  }
}

uint64_t Histogram::min() const {
  const uint64_t m = min_.load(std::memory_order_relaxed);
  return m == UINT64_MAX ? 0 : m;
}

void Histogram::MergeCounts(const uint64_t* bucket_counts,
                            size_t num_buckets, uint64_t count, uint64_t sum,
                            uint64_t min_v, uint64_t max_v) {
  const size_t n = num_buckets < kBuckets ? num_buckets : kBuckets;
  for (size_t b = 0; b < n; ++b) {
    if (bucket_counts[b] != 0) {
      buckets_[b].fetch_add(bucket_counts[b], std::memory_order_relaxed);
    }
  }
  count_.fetch_add(count, std::memory_order_relaxed);
  sum_.fetch_add(sum, std::memory_order_relaxed);
  if (count > 0) {
    uint64_t seen_min = min_.load(std::memory_order_relaxed);
    while (min_v < seen_min &&
           !min_.compare_exchange_weak(seen_min, min_v,
                                       std::memory_order_relaxed)) {
    }
    uint64_t seen_max = max_.load(std::memory_order_relaxed);
    while (max_v > seen_max &&
           !max_.compare_exchange_weak(seen_max, max_v,
                                       std::memory_order_relaxed)) {
    }
  }
}

Counter* MetricsRegistry::GetCounter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_.emplace(std::string(name), std::make_unique<Counter>())
             .first;
  }
  return it->second.get();
}

Gauge* MetricsRegistry::GetGauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  }
  return it->second.get();
}

Histogram* MetricsRegistry::GetHistogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(std::string(name), std::make_unique<Histogram>())
             .first;
  }
  return it->second.get();
}

namespace {

/// Percentile by cumulative bucket walk with linear interpolation inside
/// the bucket; exact below-minimum / above-maximum clamping.
double Percentile(const std::array<uint64_t, Histogram::kBuckets>& buckets,
                  uint64_t count, uint64_t min_v, uint64_t max_v, double p) {
  if (count == 0) {
    return 0.0;
  }
  const double target = p * static_cast<double>(count);
  double cumulative = 0.0;
  for (size_t b = 0; b < Histogram::kBuckets; ++b) {
    if (buckets[b] == 0) {
      continue;
    }
    const double before = cumulative;
    cumulative += static_cast<double>(buckets[b]);
    if (cumulative >= target) {
      const double lo = static_cast<double>(Histogram::BucketLowerBound(b));
      const double hi =
          b == 0 ? 0.0
                 : static_cast<double>(Histogram::BucketLowerBound(b)) * 2.0;
      const double frac = buckets[b] == 0
                              ? 0.0
                              : (target - before) /
                                    static_cast<double>(buckets[b]);
      const double value = lo + frac * (hi - lo);
      return std::clamp(value, static_cast<double>(min_v),
                        static_cast<double>(max_v));
    }
  }
  return static_cast<double>(max_v);
}

}  // namespace

MetricsSnapshot MetricsRegistry::Snapshot() const {
  MetricsSnapshot snapshot;
  std::lock_guard<std::mutex> lock(mu_);
  snapshot.counters.reserve(counters_.size());
  for (const auto& [name, counter] : counters_) {
    snapshot.counters.emplace_back(name, counter->value());
  }
  snapshot.gauges.reserve(gauges_.size());
  for (const auto& [name, gauge] : gauges_) {
    snapshot.gauges.emplace_back(name, gauge->value());
  }
  snapshot.histograms.reserve(histograms_.size());
  for (const auto& [name, histogram] : histograms_) {
    HistogramSummary summary;
    summary.name = name;
    summary.count = histogram->count();
    summary.sum = histogram->sum();
    summary.min = histogram->min();
    summary.max = histogram->max();
    summary.mean = summary.count == 0
                       ? 0.0
                       : static_cast<double>(summary.sum) /
                             static_cast<double>(summary.count);
    std::array<uint64_t, Histogram::kBuckets> buckets;
    summary.buckets.resize(Histogram::kBuckets);
    for (size_t b = 0; b < Histogram::kBuckets; ++b) {
      buckets[b] = histogram->bucket_count(b);
      summary.buckets[b] = buckets[b];
    }
    summary.p50 = Percentile(buckets, summary.count, summary.min, summary.max,
                             0.50);
    summary.p90 = Percentile(buckets, summary.count, summary.min, summary.max,
                             0.90);
    summary.p99 = Percentile(buckets, summary.count, summary.min, summary.max,
                             0.99);
    snapshot.histograms.push_back(std::move(summary));
  }
  return snapshot;
}

uint64_t MetricsSnapshot::CounterValue(std::string_view name) const {
  for (const auto& [n, v] : counters) {
    if (n == name) {
      return v;
    }
  }
  return 0;
}

double MetricsSnapshot::GaugeValue(std::string_view name) const {
  for (const auto& [n, v] : gauges) {
    if (n == name) {
      return v;
    }
  }
  return 0.0;
}

const HistogramSummary* MetricsSnapshot::FindHistogram(
    std::string_view name) const {
  for (const HistogramSummary& h : histograms) {
    if (h.name == name) {
      return &h;
    }
  }
  return nullptr;
}

void AccumulateSnapshot(MetricsRegistry* registry,
                        const MetricsSnapshot& snapshot) {
  if (registry == nullptr) {
    return;
  }
  for (const auto& [name, value] : snapshot.counters) {
    if (value != 0) {
      registry->GetCounter(name)->Add(value);
    }
  }
  for (const auto& [name, value] : snapshot.gauges) {
    registry->GetGauge(name)->Set(value);
  }
  for (const HistogramSummary& h : snapshot.histograms) {
    if (h.count == 0) {
      continue;
    }
    registry->GetHistogram(h.name)->MergeCounts(
        h.buckets.data(), h.buckets.size(), h.count, h.sum, h.min, h.max);
  }
}

uint32_t TraceRecorder::TidForCurrentThread() {
  const std::thread::id id = std::this_thread::get_id();
  auto it = thread_numbers_.find(id);
  if (it == thread_numbers_.end()) {
    it = thread_numbers_
             .emplace(id, static_cast<uint32_t>(thread_numbers_.size()))
             .first;
  }
  return it->second;
}

void TraceRecorder::Record(const char* name, uint64_t start_ns,
                           uint64_t end_ns, uint32_t depth) {
  std::lock_guard<std::mutex> lock(mu_);
  TraceEvent event;
  event.name = name;
  event.start_ns = start_ns;
  event.dur_ns = end_ns >= start_ns ? end_ns - start_ns : 0;
  event.tid = TidForCurrentThread();
  event.depth = depth;
  events_.push_back(event);
}

std::vector<TraceEvent> TraceRecorder::Events() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_;
}

size_t TraceRecorder::event_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return events_.size();
}

void TraceRecorder::set_trace_id(std::string id) {
  std::lock_guard<std::mutex> lock(mu_);
  trace_id_ = std::move(id);
}

std::string TraceRecorder::trace_id() const {
  std::lock_guard<std::mutex> lock(mu_);
  return trace_id_;
}

void TraceRecorder::MergeFrom(const TraceRecorder& other, uint32_t pid) {
  // `other`'s timestamps are relative to its own origin; re-base them onto
  // this recorder's origin so both timelines share one clock. Both origins
  // come from the same steady clock, so the offset is exact.
  const int64_t offset_ns =
      std::chrono::duration_cast<std::chrono::nanoseconds>(other.origin_ -
                                                           origin_)
          .count();
  std::vector<TraceEvent> merged = other.Events();
  std::lock_guard<std::mutex> lock(mu_);
  events_.reserve(events_.size() + merged.size());
  for (TraceEvent event : merged) {
    const int64_t start =
        static_cast<int64_t>(event.start_ns) + offset_ns;
    event.start_ns = start > 0 ? static_cast<uint64_t>(start) : 0;
    event.pid = pid;
    events_.push_back(event);
  }
}

std::string TraceRecorder::ToChromeTraceJson() const {
  std::vector<TraceEvent> events = Events();
  // Spans are recorded at close time, so siblings arrive child-before-
  // parent; sort by start for a stable, chronological file.
  std::stable_sort(events.begin(), events.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.start_ns < b.start_ns;
                   });
  std::string out = "{\"traceEvents\":[";
  char buf[160];
  bool first = true;
  for (const TraceEvent& e : events) {
    if (!first) {
      out += ",";
    }
    first = false;
    out += "{\"name\":\"";
    AppendEscaped(&out, e.name);
    // Complete ("X") events; timestamps/durations in microseconds as the
    // trace_event format requires.
    std::snprintf(buf, sizeof(buf),
                  "\",\"cat\":\"wcop\",\"ph\":\"X\",\"ts\":%.3f,"
                  "\"dur\":%.3f,\"pid\":%u,\"tid\":%u,"
                  "\"args\":{\"depth\":%u}}",
                  static_cast<double>(e.start_ns) / 1e3,
                  static_cast<double>(e.dur_ns) / 1e3, e.pid, e.tid, e.depth);
    out += buf;
  }
  out += "],\"displayTimeUnit\":\"ms\"";
  const std::string id = trace_id();
  if (!id.empty()) {
    out += ",\"traceId\":\"";
    AppendEscaped(&out, id);
    out += "\"";
  }
  out += "}";
  return out;
}

std::string TraceRecorder::Summary(size_t n) const {
  struct Aggregate {
    uint64_t count = 0;
    uint64_t total_ns = 0;
    uint64_t max_ns = 0;
  };
  std::map<std::string_view, Aggregate> by_name;
  const std::vector<TraceEvent> events = Events();
  for (const TraceEvent& e : events) {
    Aggregate& agg = by_name[e.name];
    ++agg.count;
    agg.total_ns += e.dur_ns;
    agg.max_ns = std::max(agg.max_ns, e.dur_ns);
  }
  std::vector<std::pair<std::string_view, Aggregate>> rows(by_name.begin(),
                                                           by_name.end());
  std::sort(rows.begin(), rows.end(), [](const auto& a, const auto& b) {
    return a.second.total_ns > b.second.total_ns;
  });
  if (rows.size() > n) {
    rows.resize(n);
  }
  std::string out;
  char line[160];
  std::snprintf(line, sizeof(line), "%-32s %10s %12s %12s %12s\n", "span",
                "count", "total_ms", "avg_us", "max_us");
  out += line;
  for (const auto& [name, agg] : rows) {
    const double avg_us =
        agg.count == 0
            ? 0.0
            : static_cast<double>(agg.total_ns) /
                  static_cast<double>(agg.count) / 1e3;
    std::snprintf(line, sizeof(line), "%-32.*s %10llu %12.3f %12.1f %12.1f\n",
                  static_cast<int>(name.size()), name.data(),
                  static_cast<unsigned long long>(agg.count),
                  static_cast<double>(agg.total_ns) / 1e6, avg_us,
                  static_cast<double>(agg.max_ns) / 1e3);
    out += line;
  }
  return out;
}

Status Telemetry::WriteChromeTrace(const std::string& path) const {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot open for writing: " + path);
  }
  out << trace_.ToChromeTraceJson() << "\n";
  if (!out) {
    return Status::IoError("write failed: " + path);
  }
  return Status::OK();
}

ScopedSpan::ScopedSpan(Telemetry* telemetry, const char* name) {
  if (telemetry == nullptr) {
    return;
  }
  recorder_ = &telemetry->trace();
  name_ = name;
  start_ns_ = recorder_->NowNs();
  depth_ = t_span_depth++;
}

ScopedSpan::~ScopedSpan() {
  if (recorder_ == nullptr) {
    return;
  }
  --t_span_depth;
  recorder_->Record(name_, start_ns_, recorder_->NowNs(), depth_);
}

}  // namespace telemetry
}  // namespace wcop
