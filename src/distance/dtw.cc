#include "distance/dtw.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

namespace wcop {

double DtwDistance(const Trajectory& a, const Trajectory& b, size_t window) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0 || m == 0) {
    return std::numeric_limits<double>::infinity();
  }
  // A band narrower than the length difference admits no path; widen to
  // the minimum feasible band (standard Sakoe-Chiba adjustment).
  size_t band = window == 0 ? std::max(n, m)
                            : std::max(window, n > m ? n - m : m - n);

  const double kInf = std::numeric_limits<double>::infinity();
  std::vector<double> prev(m + 1, kInf), curr(m + 1, kInf);
  prev[0] = 0.0;
  for (size_t i = 1; i <= n; ++i) {
    std::fill(curr.begin(), curr.end(), kInf);
    const size_t j_lo = i > band ? i - band : 1;
    const size_t j_hi = std::min(m, i + band);
    for (size_t j = j_lo; j <= j_hi; ++j) {
      const double cost = SpatialDistance(a[i - 1], b[j - 1]);
      const double best =
          std::min({prev[j - 1], prev[j], curr[j - 1]});
      curr[j] = best == kInf ? kInf : cost + best;
    }
    std::swap(prev, curr);
  }
  return prev[m];
}

double NormalizedDtwDistance(const Trajectory& a, const Trajectory& b,
                             size_t window) {
  const double d = DtwDistance(a, b, window);
  const size_t denom = a.size() + b.size();
  if (denom == 0 || !std::isfinite(d)) {
    return d;
  }
  return d / static_cast<double>(denom);
}

}  // namespace wcop
