#include <gtest/gtest.h>

#include <cmath>

#include "anon/colocalization.h"
#include "anon/translation.h"
#include "geo/disk.h"
#include "test_util.h"

namespace wcop {
namespace {

using testing_util::MakeLine;

EdrTolerance Tol(double dx, double dy, double dt) {
  EdrTolerance t;
  t.dx = dx;
  t.dy = dy;
  t.dt = dt;
  return t;
}

TEST(TranslationTest, OutputAlignsWithPivotTimeline) {
  const Trajectory traj = MakeLine(1, 0, 0, 1, 0, 8);
  const Trajectory pivot = MakeLine(2, 100, 100, 1, 0, 12);
  Rng rng(1);
  TranslationStats stats;
  const Trajectory out =
      TranslateToPivot(traj, pivot, 50.0, Tol(5, 5, 5), &rng, &stats);
  ASSERT_EQ(out.size(), pivot.size());
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_DOUBLE_EQ(out[i].t, pivot[i].t);
    EXPECT_TRUE(InsideDisk(out[i], pivot[i], 25.0));
  }
  EXPECT_TRUE(out.Validate().ok());
}

TEST(TranslationTest, SelfTranslationIsIdentityUpToDisk) {
  const Trajectory pivot = MakeLine(2, 10, 10, 3, 1, 15);
  Rng rng(1);
  TranslationStats stats;
  const Trajectory out =
      TranslateToPivot(pivot, pivot, 40.0, Tol(1, 1, 0.5), &rng, &stats);
  ASSERT_EQ(out.size(), pivot.size());
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_DOUBLE_EQ(out[i].x, pivot[i].x);
    EXPECT_DOUBLE_EQ(out[i].y, pivot[i].y);
  }
  EXPECT_EQ(stats.created_points, 0u);
  EXPECT_EQ(stats.deleted_points, 0u);
  EXPECT_EQ(stats.matched_points, pivot.size());
  EXPECT_DOUBLE_EQ(stats.spatial_translation, 0.0);
}

TEST(TranslationTest, MembersBecomeColocalizedPairwise) {
  // Several members translated to the same pivot are pairwise co-localized
  // w.r.t. delta (each within delta/2 of the pivot point).
  const Trajectory pivot = MakeLine(0, 0, 0, 2, 1, 20);
  const double delta = 30.0;
  Rng rng(5);
  TranslationStats stats;
  std::vector<Trajectory> members;
  for (int i = 1; i <= 4; ++i) {
    const Trajectory m = MakeLine(i, i * 100.0, -i * 50.0, 2, 1, 10 + i * 3);
    members.push_back(
        TranslateToPivot(m, pivot, delta, Tol(10, 10, 5), &rng, &stats));
  }
  for (size_t i = 0; i < members.size(); ++i) {
    for (size_t j = i + 1; j < members.size(); ++j) {
      EXPECT_TRUE(Colocalized(members[i], members[j], delta));
    }
  }
}

TEST(TranslationTest, StatsAccountForAllPoints) {
  const Trajectory traj = MakeLine(1, 1000, 1000, 1, 0, 9);
  const Trajectory pivot = MakeLine(2, 0, 0, 1, 0, 6);
  Rng rng(7);
  TranslationStats stats;
  const Trajectory out =
      TranslateToPivot(traj, pivot, 10.0, Tol(1, 1, 1e9), &rng, &stats);
  // Every traj point is matched or deleted; every pivot point matched or
  // recreated.
  EXPECT_EQ(stats.matched_points + stats.deleted_points, traj.size());
  EXPECT_EQ(stats.matched_points + stats.created_points, pivot.size());
  EXPECT_EQ(out.size(), pivot.size());
}

TEST(TranslationTest, MaxTranslationBoundsIndividualMoves) {
  const Trajectory traj = MakeLine(1, 500, 0, 1, 0, 10);
  const Trajectory pivot = MakeLine(2, 0, 0, 1, 0, 10);
  Rng rng(2);
  TranslationStats stats;
  TranslateToPivot(traj, pivot, 20.0, Tol(1e6, 1e6, 1e6), &rng, &stats);
  // Matched moves are ~490 m (pull to 10 m disk boundary).
  EXPECT_NEAR(stats.max_translation, 490.0, 1.0);
  EXPECT_GE(stats.max_translation * stats.matched_points,
            stats.spatial_translation);
}

TEST(TranslationTest, TemporalTranslationCountsTimeShifts) {
  // Same spatial line, shifted 3 s in time; huge tolerances force matches.
  const Trajectory traj = MakeLine(1, 0, 0, 1, 0, 10, 1.0, 3.0);
  const Trajectory pivot = MakeLine(2, 0, 0, 1, 0, 10, 1.0, 0.0);
  Rng rng(2);
  TranslationStats stats;
  const Trajectory out =
      TranslateToPivot(traj, pivot, 10.0, Tol(1e6, 1e6, 1e6), &rng, &stats);
  EXPECT_EQ(stats.matched_points, 10u);
  EXPECT_NEAR(stats.temporal_translation, 30.0, 1e-9);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_DOUBLE_EQ(out[i].t, pivot[i].t);
  }
}

TEST(TranslationTest, ZeroDeltaCollapsesOntoPivot) {
  const Trajectory traj = MakeLine(1, 50, 50, 1, 0, 10);
  const Trajectory pivot = MakeLine(2, 0, 0, 1, 0, 10);
  Rng rng(2);
  TranslationStats stats;
  const Trajectory out =
      TranslateToPivot(traj, pivot, 0.0, Tol(1e6, 1e6, 1e6), &rng, &stats);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_NEAR(out[i].x, pivot[i].x, 1e-9);
    EXPECT_NEAR(out[i].y, pivot[i].y, 1e-9);
  }
}

TEST(TranslationTest, PreservesIdentityMetadata) {
  Trajectory traj = MakeLine(1, 0, 0, 1, 0, 5);
  traj.set_object_id(77);
  traj.set_requirement(Requirement{4, 60.0});
  const Trajectory pivot = MakeLine(2, 10, 0, 1, 0, 5);
  Rng rng(2);
  TranslationStats stats;
  const Trajectory out =
      TranslateToPivot(traj, pivot, 30.0, Tol(20, 20, 5), &rng, &stats);
  EXPECT_EQ(out.id(), 1);
  EXPECT_EQ(out.object_id(), 77);
  EXPECT_EQ(out.requirement().k, 4);
}

TEST(TranslationTest, NullStatsPointerIsAllowed) {
  const Trajectory traj = MakeLine(1, 0, 0, 1, 0, 5);
  const Trajectory pivot = MakeLine(2, 10, 0, 1, 0, 5);
  Rng rng(2);
  const Trajectory out =
      TranslateToPivot(traj, pivot, 30.0, Tol(20, 20, 5), &rng, nullptr);
  EXPECT_EQ(out.size(), pivot.size());
}

}  // namespace
}  // namespace wcop
