#include <gtest/gtest.h>

#include <sstream>

#include "exp/grid_sweep.h"

namespace wcop {
namespace {

TEST(GridSweepTest, RunsEveryCellOnce) {
  size_t calls = 0;
  Result<GridSweepResult> result = RunGridSweep(
      {2, 4}, {10.0, 20.0, 30.0},
      [&](const SweepCell& cell) -> Result<std::map<std::string, double>> {
        ++calls;
        return std::map<std::string, double>{
            {"product", static_cast<double>(cell.k_max) * cell.delta_max}};
      });
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(calls, 6u);
  EXPECT_DOUBLE_EQ(result->Get("product", 0, 0), 20.0);   // k=2, d=10
  EXPECT_DOUBLE_EQ(result->Get("product", 2, 1), 120.0);  // k=4, d=30
}

TEST(GridSweepTest, CollectsMultipleMetrics) {
  Result<GridSweepResult> result = RunGridSweep(
      {1}, {1.0},
      [](const SweepCell&) -> Result<std::map<std::string, double>> {
        return std::map<std::string, double>{{"a", 1.0}, {"b", 2.0}};
      });
  ASSERT_TRUE(result.ok());
  const std::vector<std::string> metrics = result->Metrics();
  ASSERT_EQ(metrics.size(), 2u);
  EXPECT_EQ(metrics[0], "a");
  EXPECT_EQ(metrics[1], "b");
  // Absent metric / out-of-range reads are safe zeros.
  EXPECT_DOUBLE_EQ(result->Get("missing", 0, 0), 0.0);
  EXPECT_DOUBLE_EQ(result->Get("a", 9, 9), 0.0);
}

TEST(GridSweepTest, PropagatesCellFailure) {
  Result<GridSweepResult> result = RunGridSweep(
      {2, 4}, {10.0},
      [](const SweepCell& cell) -> Result<std::map<std::string, double>> {
        if (cell.k_max == 4) {
          return Status::Unsatisfiable("boom");
        }
        return std::map<std::string, double>{{"x", 1.0}};
      });
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnsatisfiable);
  EXPECT_NE(result.status().message().find("kmax=4"), std::string::npos);
}

TEST(GridSweepTest, RejectsBadInputs) {
  auto ok_fn = [](const SweepCell&) -> Result<std::map<std::string, double>> {
    return std::map<std::string, double>{};
  };
  EXPECT_FALSE(RunGridSweep({}, {1.0}, ok_fn).ok());
  EXPECT_FALSE(RunGridSweep({1}, {}, ok_fn).ok());
  EXPECT_FALSE(RunGridSweep({1}, {1.0}, SweepFn()).ok());
}

TEST(GridSweepTest, PrintTableMatchesPaperLayout) {
  Result<GridSweepResult> result = RunGridSweep(
      {5, 10}, {50.0},
      [](const SweepCell& cell) -> Result<std::map<std::string, double>> {
        return std::map<std::string, double>{
            {"m", static_cast<double>(cell.k_max)}};
      });
  ASSERT_TRUE(result.ok());
  std::ostringstream os;
  result->PrintTable("m", os);
  const std::string table = os.str();
  EXPECT_NE(table.find("kmax=5"), std::string::npos);
  EXPECT_NE(table.find("kmax=10"), std::string::npos);
  EXPECT_NE(table.find("dmax=50"), std::string::npos);
}

TEST(GridSweepTest, NonMonotoneDetection) {
  GridSweepResult grid({1, 2, 3}, {1.0});
  grid.Set("up", 0, 0, 1.0);
  grid.Set("up", 0, 1, 2.0);
  grid.Set("up", 0, 2, 3.0);
  EXPECT_FALSE(grid.AnySeriesNonMonotone("up"));
  grid.Set("bump", 0, 0, 1.0);
  grid.Set("bump", 0, 1, 3.0);
  grid.Set("bump", 0, 2, 2.0);
  EXPECT_TRUE(grid.AnySeriesNonMonotone("bump"));
  // Tolerance can absorb the dip.
  EXPECT_FALSE(grid.AnySeriesNonMonotone("bump", 1.5));
}

TEST(GridSweepTest, PaperAxesMatchSection63) {
  EXPECT_EQ(PaperKValues(), (std::vector<int>{5, 10, 25, 50, 100}));
  EXPECT_EQ(PaperDeltaValues(),
            (std::vector<double>{50, 100, 250, 500, 1000, 1400}));
}

}  // namespace
}  // namespace wcop
