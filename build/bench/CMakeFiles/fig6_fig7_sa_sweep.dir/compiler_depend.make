# Empty compiler generated dependencies file for fig6_fig7_sa_sweep.
# This may be replaced when dependencies are built.
