# Empty dependencies file for wcop_data.
# This may be replaced when dependencies are built.
