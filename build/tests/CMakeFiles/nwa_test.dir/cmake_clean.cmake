file(REMOVE_RECURSE
  "CMakeFiles/nwa_test.dir/nwa_test.cc.o"
  "CMakeFiles/nwa_test.dir/nwa_test.cc.o.d"
  "nwa_test"
  "nwa_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nwa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
