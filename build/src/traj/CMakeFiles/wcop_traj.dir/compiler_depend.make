# Empty compiler generated dependencies file for wcop_traj.
# This may be replaced when dependencies are built.
