#ifndef WCOP_ANON_EFFECTIVE_ANONYMITY_H_
#define WCOP_ANON_EFFECTIVE_ANONYMITY_H_

#include <cstddef>
#include <vector>

#include "traj/dataset.h"

namespace wcop {

/// Measures the anonymity a published dataset *actually* provides, without
/// trusting any cluster metadata: for each published trajectory, count the
/// published trajectories (including itself) it is co-localized with
/// w.r.t. delta over a shared timeline. A trajectory published inside an
/// intact (k,delta)-anonymity set scores >= k; a trajectory that ended up
/// alone scores 1 — a privacy leak this auditor surfaces no matter what
/// the publisher claims.
struct EffectiveAnonymityReport {
  std::vector<size_t> counts;     ///< aligned with the published dataset
  size_t min_anonymity = 0;
  double mean_anonymity = 0.0;
  /// Fraction of trajectories whose effective anonymity is below their own
  /// declared k requirement (0 = the publication honours everyone).
  double violation_fraction = 0.0;
};

/// Computes the report. `delta` is the co-localization diameter to audit
/// at; pass each trajectory's own requirement delta by setting
/// `use_personal_delta` (then `delta` is ignored).
EffectiveAnonymityReport MeasureEffectiveAnonymity(
    const Dataset& published, double delta, bool use_personal_delta = false);

}  // namespace wcop

#endif  // WCOP_ANON_EFFECTIVE_ANONYMITY_H_
