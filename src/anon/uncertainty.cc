#include "anon/uncertainty.h"

#include <algorithm>
#include <cmath>

#include "geo/disk.h"

namespace wcop {

bool InsideTrajectoryVolume(const Trajectory& tau, double delta,
                            const Point& p, double epsilon) {
  if (tau.empty()) {
    return false;
  }
  if (p.t < tau.StartTime() - epsilon || p.t > tau.EndTime() + epsilon) {
    return false;
  }
  const Point expected = tau.PositionAt(p.t);
  return SpatialDistance(expected, p) <= delta / 2.0 + epsilon;
}

bool IsPossibleMotionCurve(const Trajectory& pmc, const Trajectory& tau,
                           double delta, double epsilon) {
  if (pmc.empty() || tau.empty()) {
    return false;
  }
  if (std::abs(pmc.StartTime() - tau.StartTime()) > epsilon ||
      std::abs(pmc.EndTime() - tau.EndTime()) > epsilon) {
    return false;
  }
  // Offsets between two piecewise-linear curves are extremal at the union
  // of both curves' vertex times.
  for (const Point& p : pmc.points()) {
    if (!InsideTrajectoryVolume(tau, delta, p, epsilon)) {
      return false;
    }
  }
  for (const Point& q : tau.points()) {
    if (!InsideTrajectoryVolume(tau, delta, pmc.PositionAt(q.t), epsilon)) {
      return false;
    }
  }
  return true;
}

Trajectory SamplePossibleMotionCurve(const Trajectory& tau, double delta,
                                     Rng* rng, double smoothness) {
  const double radius = std::max(delta, 0.0) / 2.0;
  const double s = std::clamp(smoothness, 0.0, 1.0);
  std::vector<Point> points;
  points.reserve(tau.size());
  double ox = 0.0, oy = 0.0;  // current offset inside the disk
  bool first = true;
  for (const Point& p : tau.points()) {
    if (first || s >= 1.0) {
      const Point sample = RandomPointInDisk(Point(0, 0, 0), radius, 0, *rng);
      ox = sample.x;
      oy = sample.y;
      first = false;
    } else {
      // Smooth random walk: Gaussian step scaled by smoothness, clamped
      // back into the disk (offsets at the vertices bound the offset of the
      // whole linear interpolant by convexity).
      ox += rng->Gaussian(0.0, s * radius);
      oy += rng->Gaussian(0.0, s * radius);
      const double norm = std::sqrt(ox * ox + oy * oy);
      if (norm > radius && norm > 0.0) {
        ox *= radius / norm;
        oy *= radius / norm;
      }
    }
    points.push_back(Point(p.x + ox, p.y + oy, p.t));
  }
  Trajectory pmc(tau.id(), std::move(points), tau.requirement());
  pmc.set_object_id(tau.object_id());
  pmc.set_parent_id(tau.parent_id());
  return pmc;
}

}  // namespace wcop
