#ifndef WCOP_ANON_TRANSLATION_H_
#define WCOP_ANON_TRANSLATION_H_

#include "common/rng.h"
#include "distance/edr.h"
#include "traj/trajectory.h"

namespace wcop {

/// Per-call statistics of the spatio-temporal translation phase, aggregated
/// into the Table 3 rows.
struct TranslationStats {
  size_t created_points = 0;   ///< points invented for unmatched pivot points
  size_t deleted_points = 0;   ///< tau points dropped by the edit script
  size_t matched_points = 0;
  double spatial_translation = 0.0;   ///< sum of spatial displacements (m)
  double temporal_translation = 0.0;  ///< sum of |t - t_pivot| over matches
  double max_translation = 0.0;       ///< max single displacement (feeds Ω)

  void Accumulate(const TranslationStats& other) {
    created_points += other.created_points;
    deleted_points += other.deleted_points;
    matched_points += other.matched_points;
    spatial_translation += other.spatial_translation;
    temporal_translation += other.temporal_translation;
    max_translation = std::max(max_translation, other.max_translation);
  }
};

/// WCOP-Translation (Algorithm 4): edits `traj` into a sanitized trajectory
/// co-localized with `pivot` w.r.t. the cluster's delta.
///
/// The EDR edit script between traj and pivot is replayed:
///  * delete-from-pivot ops *create* a random point inside the
///    delta/2-radius disk around the pivot point (line 6);
///  * match ops translate the trajectory point the minimum distance needed
///    to fall inside that disk, adopting the pivot's timestamp when the two
///    differ (lines 9-12);
///  * delete-from-traj ops drop the trajectory point (lines 13-14).
///
/// The result therefore has exactly the pivot's timestamps, every point
/// within delta/2 of the corresponding pivot point — so all members of a
/// cluster are pairwise co-localized w.r.t. delta (Definition 2, by the
/// triangle inequality), and the id/requirement metadata of `traj` is
/// preserved.
Trajectory TranslateToPivot(const Trajectory& traj, const Trajectory& pivot,
                            double delta, const EdrTolerance& tolerance,
                            Rng* rng, TranslationStats* stats);

}  // namespace wcop

#endif  // WCOP_ANON_TRANSLATION_H_
