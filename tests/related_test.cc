#include <gtest/gtest.h>

#include <cmath>

#include "related/awo.h"
#include "related/path_perturbation.h"
#include "related/suppression.h"
#include "test_util.h"

namespace wcop {
namespace {

using testing_util::MakeLine;
using testing_util::MakeLineWithReq;
using testing_util::SmallSynthetic;

// ---------------------------------------------------------------------------
// Path Perturbation (Hoh & Gruteser)
// ---------------------------------------------------------------------------

TEST(PathPerturbationTest, CreatesCrossingsForCloseNonIntersectingPaths) {
  Dataset d;
  // Two parallel co-temporal lanes 50 m apart: a classic confusion target.
  d.Add(MakeLine(0, 0, 0, 10, 0, 40));
  d.Add(MakeLine(1, 0, 50, 10, 0, 40));
  PathPerturbationOptions options;
  options.radius = 100.0;
  Result<PathPerturbationResult> r = RunPathPerturbation(d, options);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_GE(r->report.crossings_created, 1u);
  EXPECT_GT(r->report.total_displacement, 0.0);
  // At the crossing time the two perturbed paths actually meet (within a
  // small epsilon: both were bent towards the same point).
  double min_gap = 1e18;
  for (const Point& p : r->perturbed[0].points()) {
    min_gap = std::min(min_gap,
                       SpatialDistance(p, r->perturbed[1].PositionAt(p.t)));
  }
  EXPECT_LT(min_gap, 10.0);
}

TEST(PathPerturbationTest, DisplacementNeverExceedsRadius) {
  const Dataset d = SmallSynthetic(20, 40);
  PathPerturbationOptions options;
  options.radius = 150.0;
  Result<PathPerturbationResult> r = RunPathPerturbation(d, options);
  ASSERT_TRUE(r.ok());
  EXPECT_LE(r->report.max_displacement, options.radius + 1e-9);
  // Structure preserved: same ids, sizes, timestamps.
  ASSERT_EQ(r->perturbed.size(), d.size());
  for (size_t i = 0; i < d.size(); ++i) {
    EXPECT_EQ(r->perturbed[i].id(), d[i].id());
    ASSERT_EQ(r->perturbed[i].size(), d[i].size());
    for (size_t j = 0; j < d[i].size(); ++j) {
      EXPECT_DOUBLE_EQ(r->perturbed[i][j].t, d[i][j].t);
      EXPECT_LE(SpatialDistance(r->perturbed[i][j], d[i][j]),
                options.radius + 1e-9);
    }
  }
}

TEST(PathPerturbationTest, FarApartPathsUntouched) {
  Dataset d;
  d.Add(MakeLine(0, 0, 0, 10, 0, 20));
  d.Add(MakeLine(1, 0, 1e6, 10, 0, 20));
  Result<PathPerturbationResult> r = RunPathPerturbation(d, {});
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->report.crossings_created, 0u);
  EXPECT_DOUBLE_EQ(r->report.total_displacement, 0.0);
}

TEST(PathPerturbationTest, CrossingCapRespected) {
  Dataset d;
  for (int i = 0; i < 6; ++i) {
    d.Add(MakeLine(i, 0, i * 30.0, 10, 0, 40));
  }
  PathPerturbationOptions options;
  options.radius = 100.0;
  options.max_crossings_per_trajectory = 1;
  Result<PathPerturbationResult> r = RunPathPerturbation(d, options);
  ASSERT_TRUE(r.ok());
  // With a per-trajectory cap of 1 over 6 trajectories, at most 3 pairs.
  EXPECT_LE(r->report.crossings_created, 3u);
}

TEST(PathPerturbationTest, RejectsBadOptions) {
  const Dataset d = SmallSynthetic(5, 20);
  PathPerturbationOptions options;
  options.radius = 0.0;
  EXPECT_FALSE(RunPathPerturbation(d, options).ok());
}

// ---------------------------------------------------------------------------
// Suppression (Terrovitis & Mamoulis style)
// ---------------------------------------------------------------------------

TEST(SuppressionTest, RarePlacesAreRemoved) {
  Dataset d;
  // Five trajectories share a corridor; one detours through a unique cell.
  for (int i = 0; i < 5; ++i) {
    d.Add(MakeLineWithReq(i, 0, i * 10.0, 100, 0, 20, 2, 100.0));
  }
  Trajectory detour = MakeLineWithReq(5, 0, 50.0, 100, 0, 20, 2, 100.0);
  detour.mutable_points()[10].x = 50000.0;  // a place nobody else visits
  detour.mutable_points()[10].y = 50000.0;
  d.Add(detour);
  SuppressionOptions options;
  options.cell_size = 1000.0;
  options.k = 2;
  Result<SuppressionResult> r = RunSuppression(d, options);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_GE(r->report.places_suppressed, 1u);
  EXPECT_GE(r->report.points_suppressed, 1u);
  // The detour point is gone from the published trajectory 5.
  const Trajectory* published = r->sanitized.FindById(5);
  ASSERT_NE(published, nullptr);
  for (const Point& p : published->points()) {
    EXPECT_LT(p.x, 40000.0);
  }
}

TEST(SuppressionTest, EveryRemainingPlaceHasSupportK) {
  const Dataset d = SmallSynthetic(30, 40);
  SuppressionOptions options;
  options.cell_size = 2000.0;
  options.k = 3;
  options.max_loss_fraction = 1.0;  // keep everything that has >= 2 points
  Result<SuppressionResult> r = RunSuppression(d, options);
  ASSERT_TRUE(r.ok());
  // Re-derive place support over the published data: every place must be
  // visited by >= k trajectories.
  std::map<std::pair<int64_t, int64_t>, std::set<int64_t>> support;
  for (const Trajectory& t : r->sanitized.trajectories()) {
    for (const Point& p : t.points()) {
      support[{static_cast<int64_t>(std::floor(p.x / options.cell_size)),
               static_cast<int64_t>(std::floor(p.y / options.cell_size))}]
          .insert(t.id());
    }
  }
  for (const auto& [place, visitors] : support) {
    EXPECT_GE(visitors.size(), 3u);
  }
}

TEST(SuppressionTest, OverdamagedTrajectoriesAreTrashed) {
  Dataset d;
  // One loner far away: all of its places are unique -> fully suppressed.
  for (int i = 0; i < 4; ++i) {
    d.Add(MakeLineWithReq(i, 0, i * 10.0, 100, 0, 20, 2, 100.0));
  }
  d.Add(MakeLineWithReq(9, 9e6, 9e6, 100, 0, 20, 2, 100.0));
  SuppressionOptions options;
  options.cell_size = 1000.0;
  options.k = 2;
  Result<SuppressionResult> r = RunSuppression(d, options);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->report.trajectories_suppressed, 1u);
  ASSERT_EQ(r->trashed_ids.size(), 1u);
  EXPECT_EQ(r->trashed_ids[0], 9);
}

TEST(SuppressionTest, PairAdversarySuppressesMore) {
  const Dataset d = SmallSynthetic(30, 40);
  SuppressionOptions single;
  single.cell_size = 2000.0;
  single.k = 3;
  SuppressionOptions pairs = single;
  pairs.adversary_pairs = true;
  Result<SuppressionResult> a = RunSuppression(d, single);
  Result<SuppressionResult> b = RunSuppression(d, pairs);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_GE(b->report.places_suppressed, a->report.places_suppressed);
  EXPECT_GE(b->report.points_suppressed, a->report.points_suppressed);
}

TEST(SuppressionTest, RejectsBadOptions) {
  const Dataset d = SmallSynthetic(5, 20);
  SuppressionOptions options;
  options.k = 0;
  EXPECT_FALSE(RunSuppression(d, options).ok());
  EXPECT_FALSE(RunSuppression(Dataset(), {}).ok());
}

// ---------------------------------------------------------------------------
// AWO-style generalization (Nergiz et al.)
// ---------------------------------------------------------------------------

Dataset CoTemporalBundle(size_t n, size_t points) {
  Dataset d = SmallSynthetic(n, points);
  for (Trajectory& t : d.mutable_trajectories()) {
    const double t0 = t.StartTime();
    for (Point& p : t.mutable_points()) {
      p.t -= t0;
    }
  }
  return d;
}

TEST(AwoTest, GroupsOfKAndReconstructedOutputs) {
  const Dataset d = CoTemporalBundle(20, 40);
  AwoOptions options;
  options.k = 4;
  options.region_interval = 60.0;
  Result<AwoResult> r = RunAwo(d, options);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_GE(r->report.num_groups, 1u);
  for (const AwoRegionSeries& group : r->groups) {
    EXPECT_EQ(group.members.size(), 4u);
    EXPECT_EQ(group.regions.size(), group.times.size());
    EXPECT_GE(group.regions.size(), 1u);
  }
  EXPECT_EQ(r->sanitized.size() + r->trashed_ids.size(), d.size());
}

TEST(AwoTest, ReconstructedPointsLieInsideRegions) {
  const Dataset d = CoTemporalBundle(12, 40);
  AwoOptions options;
  options.k = 3;
  options.region_interval = 60.0;
  Result<AwoResult> r = RunAwo(d, options);
  ASSERT_TRUE(r.ok());
  for (const AwoRegionSeries& group : r->groups) {
    // Every published trajectory of the group samples within the regions.
    for (size_t m : group.members) {
      const Trajectory* out = r->sanitized.FindById(d[m].id());
      ASSERT_NE(out, nullptr);
      for (const Point& p : out->points()) {
        // Find the region at this timestamp.
        bool found = false;
        for (size_t ridx = 0; ridx < group.times.size(); ++ridx) {
          if (std::abs(group.times[ridx] - p.t) < 1e-6) {
            EXPECT_TRUE(group.regions[ridx].Contains(p));
            found = true;
            break;
          }
        }
        if (!found) {
          // Padded degenerate outputs are allowed to fall outside.
          EXPECT_LE(out->size(), 2u);
        }
      }
    }
  }
}

TEST(AwoTest, GeneralizationCoarsenessReported) {
  const Dataset d = CoTemporalBundle(15, 40);
  AwoOptions options;
  options.k = 3;
  Result<AwoResult> r = RunAwo(d, options);
  ASSERT_TRUE(r.ok());
  EXPECT_GT(r->report.mean_region_diagonal, 0.0);
}

TEST(AwoTest, FailsWhenNoTemporalOverlap) {
  // Trajectories scattered over months: no group of k overlaps.
  const Dataset d = SmallSynthetic(10, 30);
  AwoOptions options;
  options.k = 5;
  options.trash_fraction = 0.0;
  Result<AwoResult> r = RunAwo(d, options);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kUnsatisfiable);
}

TEST(AwoTest, RejectsBadOptions) {
  const Dataset d = CoTemporalBundle(6, 20);
  AwoOptions options;
  options.k = 1;
  EXPECT_FALSE(RunAwo(d, options).ok());
  EXPECT_FALSE(RunAwo(Dataset(), {}).ok());
}

}  // namespace
}  // namespace wcop
