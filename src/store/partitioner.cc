#include "store/partitioner.h"

#include <algorithm>
#include <cmath>
#include <iterator>
#include <map>
#include <utility>

namespace wcop {
namespace store {

namespace {

struct Cell {
  // Geometric cell box (split domain) — distinct from `occupied`, the
  // union of member MBRs, which is what the margin tests use: a member's
  // MBR routinely extends far beyond the cell its centroid hashed into.
  double box_min_x = 0.0, box_min_y = 0.0, box_max_x = 0.0, box_max_y = 0.0;
  std::vector<size_t> members;  // ascending source positions
  int depth = 0;
};

struct Component {
  std::vector<size_t> members;  // ascending source positions
  BoundingBox occupied;
  int max_k = 0;
  double max_delta = 0.0;
  uint64_t total_points = 0;
};

BoundingBox EntryBox(const StoreEntry& e) {
  return BoundingBox(e.min_x, e.min_y, e.max_x, e.max_y);
}

void AbsorbEntry(Component* c, const StoreEntry& e) {
  c->occupied.Extend(EntryBox(e));
  c->max_k = std::max(c->max_k, static_cast<int>(e.k));
  c->max_delta = std::max(c->max_delta, e.delta);
  c->total_points += e.num_points;
}

// Merges two ascending position lists into one ascending list.
std::vector<size_t> MergeSorted(const std::vector<size_t>& a,
                                const std::vector<size_t>& b) {
  std::vector<size_t> out;
  out.reserve(a.size() + b.size());
  std::merge(a.begin(), a.end(), b.begin(), b.end(),
             std::back_inserter(out));
  return out;
}

size_t Find(std::vector<size_t>* parent, size_t i) {
  while ((*parent)[i] != i) {
    (*parent)[i] = (*parent)[(*parent)[i]];
    i = (*parent)[i];
  }
  return i;
}

}  // namespace

double BoxGap(const BoundingBox& a, const BoundingBox& b) {
  const double dx =
      std::max({0.0, a.min_x() - b.max_x(), b.min_x() - a.max_x()});
  const double dy =
      std::max({0.0, a.min_y() - b.max_y(), b.min_y() - a.max_y()});
  return std::hypot(dx, dy);
}

Result<Partition> PartitionStoreIndex(const std::vector<StoreEntry>& index,
                                      const PartitionOptions& options) {
  if (index.empty()) {
    return Status::InvalidArgument("cannot partition an empty store");
  }
  if (options.overlap_margin < 0.0 ||
      !std::isfinite(options.overlap_margin)) {
    return Status::InvalidArgument("overlap margin must be finite and >= 0");
  }
  const size_t n = index.size();

  Partition partition;
  double max_delta = 0.0;
  for (const StoreEntry& e : index) {
    max_delta = std::max(max_delta, e.delta);
  }
  partition.margin = std::max(options.overlap_margin, max_delta);
  const double margin = partition.margin;

  size_t target = options.target_shard_size;
  if (options.num_shards > 0) {
    target = (n + options.num_shards - 1) / options.num_shards;
  }

  auto single_shard = [&]() {
    ShardSpec shard;
    shard.shard_index = 0;
    shard.members.resize(n);
    for (size_t i = 0; i < n; ++i) {
      shard.members[i] = i;
      shard.bounds.Extend(EntryBox(index[i]));
      shard.max_k = std::max(shard.max_k, static_cast<int>(index[i].k));
      shard.max_delta = std::max(shard.max_delta, index[i].delta);
      shard.total_points += index[i].num_points;
    }
    partition.shards.push_back(std::move(shard));
    partition.grid_cells = 1;
    return partition;
  };
  if (target == 0 || target >= n || options.num_shards == 1) {
    return single_shard();
  }

  const size_t max_size =
      options.max_shard_size > 0 ? options.max_shard_size : 2 * target;
  const size_t min_size = options.min_shard_size > 0
                              ? options.min_shard_size
                              : std::max<size_t>(2, target / 8);

  // --- Initial uniform grid over MBR centroids -------------------------
  BoundingBox region;
  std::vector<Point> centroids(n);
  for (size_t i = 0; i < n; ++i) {
    centroids[i] = Point{(index[i].min_x + index[i].max_x) / 2.0,
                         (index[i].min_y + index[i].max_y) / 2.0, 0.0};
    region.Extend(centroids[i]);
  }
  const double span_x = region.max_x() - region.min_x();
  const double span_y = region.max_y() - region.min_y();
  const size_t cells_wanted = (n + target - 1) / target;
  const double grid_dim =
      std::ceil(std::sqrt(static_cast<double>(cells_wanted)));
  double edge = std::max(span_x, span_y) / std::max(1.0, grid_dim);
  edge = std::max({edge, 2.0 * margin, 1e-9});
  const size_t cols =
      static_cast<size_t>(std::floor(span_x / edge)) + 1;
  const size_t rows =
      static_cast<size_t>(std::floor(span_y / edge)) + 1;

  std::map<std::pair<size_t, size_t>, Cell> grid;
  for (size_t i = 0; i < n; ++i) {
    size_t cx = static_cast<size_t>(
        std::floor((centroids[i].x - region.min_x()) / edge));
    size_t cy = static_cast<size_t>(
        std::floor((centroids[i].y - region.min_y()) / edge));
    cx = std::min(cx, cols - 1);
    cy = std::min(cy, rows - 1);
    Cell& cell = grid[{cx, cy}];
    if (cell.members.empty()) {
      cell.box_min_x = region.min_x() + static_cast<double>(cx) * edge;
      cell.box_min_y = region.min_y() + static_cast<double>(cy) * edge;
      cell.box_max_x = cell.box_min_x + edge;
      cell.box_max_y = cell.box_min_y + edge;
    }
    cell.members.push_back(i);  // ascending because i is
  }

  // --- Recursive split of oversized cells ------------------------------
  // A cell splits while it is oversized and at least one axis is still
  // wider than 2*margin (below that, children could separate pairs the
  // margin invariant must keep together). Depth-capped as a backstop for
  // pathological coincident centroids with margin ~ 0.
  constexpr int kMaxSplitDepth = 48;
  std::vector<Cell> work;
  work.reserve(grid.size());
  for (auto& [key, cell] : grid) {
    (void)key;
    work.push_back(std::move(cell));
  }
  std::vector<Cell> leaves;
  while (!work.empty()) {
    Cell cell = std::move(work.back());
    work.pop_back();
    const double w = cell.box_max_x - cell.box_min_x;
    const double h = cell.box_max_y - cell.box_min_y;
    const bool split_x = w > 2.0 * margin && w > 1e-9;
    const bool split_y = h > 2.0 * margin && h > 1e-9;
    if (cell.members.size() <= max_size || (!split_x && !split_y) ||
        cell.depth >= kMaxSplitDepth) {
      leaves.push_back(std::move(cell));
      continue;
    }
    ++partition.cells_split;
    const double mid_x = (cell.box_min_x + cell.box_max_x) / 2.0;
    const double mid_y = (cell.box_min_y + cell.box_max_y) / 2.0;
    Cell children[4];
    for (int c = 0; c < 4; ++c) {
      const bool hi_x = (c & 1) != 0;
      const bool hi_y = (c & 2) != 0;
      children[c].box_min_x =
          split_x && hi_x ? mid_x : cell.box_min_x;
      children[c].box_max_x =
          split_x && !hi_x ? mid_x : cell.box_max_x;
      children[c].box_min_y =
          split_y && hi_y ? mid_y : cell.box_min_y;
      children[c].box_max_y =
          split_y && !hi_y ? mid_y : cell.box_max_y;
      children[c].depth = cell.depth + 1;
    }
    for (size_t pos : cell.members) {
      const int cx = split_x && centroids[pos].x >= mid_x ? 1 : 0;
      const int cy = split_y && centroids[pos].y >= mid_y ? 2 : 0;
      children[cx + cy].members.push_back(pos);
    }
    // Even a child that inherited every member goes back on the work list:
    // its box halved, so the recursion still terminates (depth cap aside).
    for (int c = 0; c < 4; ++c) {
      if (!children[c].members.empty()) {
        work.push_back(std::move(children[c]));
      }
    }
  }
  // Deterministic leaf order regardless of split scheduling.
  std::sort(leaves.begin(), leaves.end(), [](const Cell& a, const Cell& b) {
    return a.members.front() < b.members.front();
  });
  partition.grid_cells = leaves.size();

  // --- Margin-connected union of cells ---------------------------------
  const size_t num_cells = leaves.size();
  std::vector<BoundingBox> occupied(num_cells);
  for (size_t c = 0; c < num_cells; ++c) {
    for (size_t pos : leaves[c].members) {
      occupied[c].Extend(EntryBox(index[pos]));
    }
  }
  std::vector<size_t> parent(num_cells);
  for (size_t c = 0; c < num_cells; ++c) {
    parent[c] = c;
  }
  for (size_t a = 0; a < num_cells; ++a) {
    for (size_t b = a + 1; b < num_cells; ++b) {
      if (Find(&parent, a) == Find(&parent, b)) {
        continue;
      }
      // Union-of-MBRs gap is a lower bound on every member-pair gap, so a
      // far pair of cells needs no exact tests.
      if (BoxGap(occupied[a], occupied[b]) > margin) {
        continue;
      }
      bool connected = false;
      for (size_t pa : leaves[a].members) {
        const BoundingBox box_a = EntryBox(index[pa]);
        for (size_t pb : leaves[b].members) {
          if (BoxGap(box_a, EntryBox(index[pb])) <= margin) {
            connected = true;
            break;
          }
        }
        if (connected) {
          break;
        }
      }
      if (connected) {
        // Root toward the smaller first-member cell for determinism.
        const size_t ra = Find(&parent, a);
        const size_t rb = Find(&parent, b);
        parent[std::max(ra, rb)] = std::min(ra, rb);
      }
    }
  }

  std::map<size_t, Component> by_root;
  for (size_t c = 0; c < num_cells; ++c) {
    Component& comp = by_root[Find(&parent, c)];
    comp.members = MergeSorted(comp.members, leaves[c].members);
    for (size_t pos : leaves[c].members) {
      AbsorbEntry(&comp, index[pos]);
    }
  }
  std::vector<Component> components;
  components.reserve(by_root.size());
  for (auto& [root, comp] : by_root) {
    (void)root;
    components.push_back(std::move(comp));
  }
  std::sort(components.begin(), components.end(),
            [](const Component& a, const Component& b) {
              return a.members.front() < b.members.front();
            });

  // --- Merge undersized components -------------------------------------
  // A shard must be able to satisfy its own members' strictest k (a k=5
  // trajectory alone in a 3-member shard is unsatisfiable by construction),
  // so any component below max(min_size, its max k) folds into the nearest
  // surviving component, smallest first.
  auto required_min = [&](const Component& c) {
    return std::max<size_t>(min_size, static_cast<size_t>(c.max_k));
  };
  while (components.size() > 1) {
    size_t victim = components.size();
    for (size_t i = 0; i < components.size(); ++i) {
      if (components[i].members.size() >= required_min(components[i])) {
        continue;
      }
      if (victim == components.size() ||
          components[i].members.size() <
              components[victim].members.size() ||
          (components[i].members.size() ==
               components[victim].members.size() &&
           components[i].members.front() <
               components[victim].members.front())) {
        victim = i;
      }
    }
    if (victim == components.size()) {
      break;
    }
    size_t nearest = components.size();
    double best_gap = 0.0;
    for (size_t i = 0; i < components.size(); ++i) {
      if (i == victim) {
        continue;
      }
      const double gap =
          BoxGap(components[victim].occupied, components[i].occupied);
      if (nearest == components.size() || gap < best_gap ||
          (gap == best_gap && components[i].members.front() <
                                  components[nearest].members.front())) {
        nearest = i;
        best_gap = gap;
      }
    }
    Component merged;
    merged.members = MergeSorted(components[victim].members,
                                 components[nearest].members);
    merged.occupied = components[victim].occupied;
    merged.occupied.Extend(components[nearest].occupied);
    merged.max_k =
        std::max(components[victim].max_k, components[nearest].max_k);
    merged.max_delta =
        std::max(components[victim].max_delta, components[nearest].max_delta);
    merged.total_points = components[victim].total_points +
                          components[nearest].total_points;
    const size_t lo = std::min(victim, nearest);
    const size_t hi = std::max(victim, nearest);
    components.erase(components.begin() + hi);
    components[lo] = std::move(merged);
    std::sort(components.begin(), components.end(),
              [](const Component& a, const Component& b) {
                return a.members.front() < b.members.front();
              });
    ++partition.components_merged;
  }

  partition.shards.reserve(components.size());
  for (size_t i = 0; i < components.size(); ++i) {
    ShardSpec shard;
    shard.shard_index = i;
    shard.members = std::move(components[i].members);
    shard.bounds = components[i].occupied;
    shard.max_k = components[i].max_k;
    shard.max_delta = components[i].max_delta;
    shard.total_points = components[i].total_points;
    partition.shards.push_back(std::move(shard));
  }
  return partition;
}

}  // namespace store
}  // namespace wcop
