// Long-running anonymization daemon — the fault-tolerant service front of
// the WCOP pipeline (DESIGN.md "Service operation & fault tolerance").
//
// Accepts trajectory-batch anonymization jobs over a unix-domain socket,
// executes them through the sharded store pipeline under per-job deadlines
// and budgets, and records every accepted job in a durable ledger: kill -9
// the daemon at any instant, restart it, and every in-flight job resumes
// (via its shard checkpoints) to byte-identical output.
//
// Usage:
//   ./wcop_serve --job-dir=/var/wcop/jobs [--socket=/var/wcop/wcop.sock]
//                [--queue-capacity=8] [--workers=1] [--job-threads=1]
//                [--default-deadline-ms=0] [--default-budget=0]
//                [--default-k=0 --default-delta=0] [--allow-partial-default]
//                [--no-verify]
//                [--tenants="alice:8:250:60000:1;bob:4:100:0:0"]
//                  (name:k:delta:deadline_ms:allow_partial per entry)
//
// SIGINT/SIGTERM shut down gracefully: running jobs are cancelled at their
// next yield point (their checkpoints flushed), requeued in the ledger,
// and resumed on the next start. A client POST /shutdown with "mode drain"
// finishes the queue first instead.

#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <thread>

#include "common/arg_parser.h"
#include "common/log.h"
#include "common/signals.h"
#include "server/endpoint.h"
#include "server/service.h"

using namespace wcop;
using namespace wcop::server;

namespace {

// "alice:8:250:60000:1;bob:4:100:0:0" -> per-tenant policies.
bool ParseTenantPolicies(const std::string& spec,
                         std::map<std::string, TenantPolicy>* out) {
  size_t pos = 0;
  while (pos < spec.size()) {
    size_t end = spec.find(';', pos);
    if (end == std::string::npos) {
      end = spec.size();
    }
    const std::string entry = spec.substr(pos, end - pos);
    pos = end + 1;
    if (entry.empty()) {
      continue;
    }
    std::vector<std::string> fields;
    size_t fpos = 0;
    while (fpos <= entry.size()) {
      size_t fend = entry.find(':', fpos);
      if (fend == std::string::npos) {
        fend = entry.size();
      }
      fields.push_back(entry.substr(fpos, fend - fpos));
      fpos = fend + 1;
    }
    if (fields.size() != 5 || fields[0].empty()) {
      return false;
    }
    TenantPolicy policy;
    policy.default_k = std::atoi(fields[1].c_str());
    policy.default_delta = std::atof(fields[2].c_str());
    policy.default_deadline_ms = std::atoll(fields[3].c_str());
    policy.allow_partial_default = fields[4] == "1";
    (*out)[fields[0]] = policy;
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  if (args.Has("help") || !args.Has("job-dir")) {
    std::puts(
        "wcop_serve --job-dir=DIR [--socket=PATH] [--queue-capacity=8]\n"
        "           [--workers=1] [--job-threads=1] [--no-verify]\n"
        "           [--default-k=0 --default-delta=0]\n"
        "           [--default-deadline-ms=0] [--default-budget=0]\n"
        "           [--allow-partial-default]\n"
        "           [--tenants=\"name:k:delta:deadline_ms:allow_partial;"
        "...\"]\n"
        "           [--log-level=info] [--log-format=text|json] "
        "[--log-out=PATH]");
    return args.Has("help") ? 0 : 1;
  }
  if (!log::ConfigureFromArgs(args, "wcop_serve")) {
    return 1;
  }

  ServiceOptions options;
  options.job_dir = args.GetString("job-dir", "");
  options.queue_capacity =
      static_cast<size_t>(args.GetInt("queue-capacity", 8));
  options.workers = static_cast<int>(args.GetInt("workers", 1));
  options.job_threads = static_cast<int>(args.GetInt("job-threads", 1));
  options.verify_jobs = !args.GetBool("no-verify", false);
  options.default_policy.default_k =
      static_cast<int>(args.GetInt("default-k", 0));
  options.default_policy.default_delta = args.GetDouble("default-delta", 0.0);
  options.default_policy.default_deadline_ms =
      args.GetInt("default-deadline-ms", 0);
  options.default_policy.default_max_distance_computations =
      static_cast<uint64_t>(args.GetInt("default-budget", 0));
  options.default_policy.allow_partial_default =
      args.GetBool("allow-partial-default", false);
  if (args.Has("tenants") &&
      !ParseTenantPolicies(args.GetString("tenants", ""), &options.tenants)) {
    log::Error(
        "bad --tenants spec (want name:k:delta:deadline_ms:allow_partial;"
        "...)");
    return 1;
  }

  // Graceful shutdown: first SIGINT/SIGTERM cancels running jobs
  // cooperatively (checkpoints flushed, jobs requeued); a second one
  // force-kills via the default disposition.
  const CancellationToken shutdown = InstallShutdownSignalHandlers();

  Result<std::unique_ptr<AnonymizationService>> service =
      AnonymizationService::Start(options);
  if (!service.ok()) {
    log::Error("service start failed",
               {{"status", service.status().ToString()}});
    return 1;
  }
  if ((*service)->recovered_jobs() > 0) {
    // "recovered" stays in the message verbatim: CI greps daemon logs
    // for it after a kill -9 / restart cycle.
    log::Info("recovered unfinished job(s) from the ledger",
              {{"count", static_cast<unsigned long long>(
                             (*service)->recovered_jobs())}});
  }

  HttpServer::Options http;
  http.socket_path =
      args.GetString("socket", options.job_dir + "/wcop.sock");
  Result<std::unique_ptr<ServiceEndpoint>> endpoint =
      ServiceEndpoint::Attach(service->get(), http);
  if (!endpoint.ok()) {
    log::Error("endpoint start failed",
               {{"status", endpoint.status().ToString()}});
    return 1;
  }
  log::Info("listening",
            {{"socket", http.socket_path},
             {"queue_capacity",
              static_cast<unsigned long long>(options.queue_capacity)},
             {"workers", options.workers},
             {"job_dir", options.job_dir}});

  while (!shutdown.cancellation_requested() &&
         !(*endpoint)->shutdown_requested()) {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
  const bool drain =
      (*endpoint)->drain_requested() && !shutdown.cancellation_requested();
  log::Info("shutting down", {{"mode", drain ? "drain" : "immediate"}});

  (*endpoint)->Stop();  // stop intake before tearing the service down
  (*service)->BeginShutdown(drain);
  (*service)->AwaitTermination();
  log::Info("bye");  // CI greps daemon logs for "bye" after a drain
  return 0;
}
