#include "traj/dataset.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <unordered_set>

namespace wcop {

int Dataset::MaxK() const {
  int max_k = 0;
  for (const Trajectory& t : trajectories_) {
    max_k = std::max(max_k, t.requirement().k);
  }
  return max_k;
}

double Dataset::MinDelta() const {
  if (trajectories_.empty()) {
    return 0.0;
  }
  double min_delta = std::numeric_limits<double>::infinity();
  for (const Trajectory& t : trajectories_) {
    min_delta = std::min(min_delta, t.requirement().delta);
  }
  return min_delta;
}

size_t Dataset::TotalPoints() const {
  size_t total = 0;
  for (const Trajectory& t : trajectories_) {
    total += t.size();
  }
  return total;
}

BoundingBox Dataset::Bounds() const {
  BoundingBox box;
  for (const Trajectory& t : trajectories_) {
    box.Extend(t.Bounds());
  }
  return box;
}

DatasetStats Dataset::ComputeStats() const {
  DatasetStats stats;
  stats.num_trajectories = trajectories_.size();
  stats.num_points = TotalPoints();
  stats.radius = Bounds().HalfDiagonal();

  std::unordered_set<int64_t> objects;
  double min_time = std::numeric_limits<double>::infinity();
  double max_time = -std::numeric_limits<double>::infinity();
  double weighted_speed = 0.0;
  double total_duration = 0.0;
  for (const Trajectory& t : trajectories_) {
    objects.insert(t.object_id());
    if (!t.empty()) {
      min_time = std::min(min_time, t.StartTime());
      max_time = std::max(max_time, t.EndTime());
      weighted_speed += t.AverageSpeed() * t.Duration();
      total_duration += t.Duration();
    }
  }
  stats.num_objects = objects.size();
  stats.avg_speed = total_duration > 0.0 ? weighted_speed / total_duration : 0.0;
  stats.duration_days =
      max_time > min_time ? (max_time - min_time) / 86400.0 : 0.0;
  stats.avg_points_per_traj =
      stats.num_trajectories > 0
          ? static_cast<double>(stats.num_points) / stats.num_trajectories
          : 0.0;
  return stats;
}

Status Dataset::Validate() const {
  std::unordered_set<int64_t> ids;
  for (const Trajectory& t : trajectories_) {
    WCOP_RETURN_IF_ERROR(t.Validate());
    if (!ids.insert(t.id()).second) {
      return Status::InvalidArgument("duplicate trajectory id " +
                                     std::to_string(t.id()));
    }
  }
  return Status::OK();
}

const Trajectory* Dataset::FindById(int64_t id) const {
  for (const Trajectory& t : trajectories_) {
    if (t.id() == id) {
      return &t;
    }
  }
  return nullptr;
}

std::string Dataset::DebugString() const {
  const DatasetStats stats = ComputeStats();
  std::ostringstream os;
  os << "Dataset{objects=" << stats.num_objects
     << ", trajectories=" << stats.num_trajectories
     << ", points=" << stats.num_points << ", avg_speed=" << stats.avg_speed
     << " m/s, radius=" << stats.radius
     << " m, duration=" << stats.duration_days << " days}";
  return os.str();
}

}  // namespace wcop
