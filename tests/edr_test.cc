#include <gtest/gtest.h>

#include <algorithm>
#include <functional>

#include "common/rng.h"
#include "distance/edr.h"
#include "test_util.h"

namespace wcop {
namespace {

using testing_util::MakeLine;

EdrTolerance Tol(double dx, double dy, double dt) {
  EdrTolerance t;
  t.dx = dx;
  t.dy = dy;
  t.dt = dt;
  return t;
}

/// Exponential-time reference EDR for cross-checking the DP.
double BruteForceEdr(const Trajectory& a, const Trajectory& b,
                     const EdrTolerance& tol, size_t i, size_t j) {
  if (i == a.size()) {
    return static_cast<double>(b.size() - j);
  }
  if (j == b.size()) {
    return static_cast<double>(a.size() - i);
  }
  const double subcost = tol.Matches(a[i], b[j]) ? 0.0 : 1.0;
  return std::min({BruteForceEdr(a, b, tol, i + 1, j + 1) + subcost,
                   BruteForceEdr(a, b, tol, i + 1, j) + 1.0,
                   BruteForceEdr(a, b, tol, i, j + 1) + 1.0});
}

TEST(EdrToleranceTest, FromDeltaMaxHeuristic) {
  const EdrTolerance tol = EdrTolerance::FromDeltaMax(250.0, 5.0);
  EXPECT_DOUBLE_EQ(tol.dx, 2500.0);
  EXPECT_DOUBLE_EQ(tol.dy, 2500.0);
  EXPECT_DOUBLE_EQ(tol.dt, 500.0);
}

TEST(EdrToleranceTest, ZeroSpeedYieldsInfiniteTimeTolerance) {
  const EdrTolerance tol = EdrTolerance::FromDeltaMax(250.0, 0.0);
  EXPECT_TRUE(std::isinf(tol.dt));
}

TEST(EdrToleranceTest, MatchesRespectsAllAxes) {
  const EdrTolerance tol = Tol(1.0, 1.0, 1.0);
  EXPECT_TRUE(tol.Matches(Point(0, 0, 0), Point(1, 1, 1)));
  EXPECT_FALSE(tol.Matches(Point(0, 0, 0), Point(1.01, 0, 0)));
  EXPECT_FALSE(tol.Matches(Point(0, 0, 0), Point(0, 1.01, 0)));
  EXPECT_FALSE(tol.Matches(Point(0, 0, 0), Point(0, 0, 1.01)));
}

TEST(EdrDistanceTest, IdenticalIsZero) {
  const Trajectory t = MakeLine(1, 0, 0, 5, 0, 20);
  EXPECT_DOUBLE_EQ(EdrDistance(t, t, Tol(1, 1, 1)), 0.0);
}

TEST(EdrDistanceTest, EmptyCostsOtherLength) {
  const Trajectory t = MakeLine(1, 0, 0, 5, 0, 7);
  const Trajectory empty;
  EXPECT_DOUBLE_EQ(EdrDistance(t, empty, Tol(1, 1, 1)), 7.0);
  EXPECT_DOUBLE_EQ(EdrDistance(empty, t, Tol(1, 1, 1)), 7.0);
}

TEST(EdrDistanceTest, CompletelyDisjointCostsMaxLength) {
  // No point of a matches any of b -> distance = max(|a|, |b|)
  // (substitutions for the overlap, deletions for the overhang).
  const Trajectory a = MakeLine(1, 0, 0, 1, 0, 4);
  const Trajectory b = MakeLine(2, 1000, 1000, 1, 0, 6);
  EXPECT_DOUBLE_EQ(EdrDistance(a, b, Tol(1, 1, 1e9)), 6.0);
}

TEST(EdrDistanceTest, SymmetricUnderSwap) {
  Rng rng(5);
  for (int round = 0; round < 20; ++round) {
    Trajectory a = MakeLine(1, rng.UniformReal(0, 10), 0, 1, 0,
                            3 + rng.UniformIndex(6));
    Trajectory b = MakeLine(2, rng.UniformReal(0, 10), 0, 1, 0,
                            3 + rng.UniformIndex(6));
    const EdrTolerance tol = Tol(2, 2, 3);
    EXPECT_DOUBLE_EQ(EdrDistance(a, b, tol), EdrDistance(b, a, tol));
  }
}

TEST(EdrDistanceTest, MatchesBruteForceOnRandomSmallInputs) {
  Rng rng(99);
  for (int round = 0; round < 50; ++round) {
    std::vector<Point> pa, pb;
    const size_t na = 1 + rng.UniformIndex(6);
    const size_t nb = 1 + rng.UniformIndex(6);
    for (size_t i = 0; i < na; ++i) {
      pa.emplace_back(rng.UniformReal(0, 5), rng.UniformReal(0, 5),
                      static_cast<double>(i));
    }
    for (size_t i = 0; i < nb; ++i) {
      pb.emplace_back(rng.UniformReal(0, 5), rng.UniformReal(0, 5),
                      static_cast<double>(i));
    }
    const Trajectory a(1, pa), b(2, pb);
    const EdrTolerance tol = Tol(1.5, 1.5, 2.0);
    EXPECT_DOUBLE_EQ(EdrDistance(a, b, tol),
                     BruteForceEdr(a, b, tol, 0, 0));
  }
}

TEST(EdrDistanceTest, NormalizedIsWithinUnitInterval) {
  Rng rng(3);
  for (int round = 0; round < 30; ++round) {
    Trajectory a = MakeLine(1, rng.UniformReal(0, 100), 0, 1, 0,
                            2 + rng.UniformIndex(20));
    Trajectory b = MakeLine(2, rng.UniformReal(0, 100), 0, 1, 0,
                            2 + rng.UniformIndex(20));
    const double d = NormalizedEdrDistance(a, b, Tol(1, 1, 1));
    EXPECT_GE(d, 0.0);
    EXPECT_LE(d, 1.0);
  }
}

TEST(EdrOpSequenceTest, IdenticalYieldsAllMatches) {
  const Trajectory t = MakeLine(1, 0, 0, 1, 0, 10);
  const std::vector<EdrOp> ops = EdrOpSequence(t, t, Tol(0.5, 0.5, 0.5));
  ASSERT_EQ(ops.size(), 10u);
  for (const EdrOp& op : ops) {
    EXPECT_EQ(op.kind, EdrOp::Kind::kMatch);
  }
  EXPECT_TRUE(IsValidOpSequence(ops, 10, 10));
}

TEST(EdrOpSequenceTest, ValidOnRandomInputs) {
  Rng rng(42);
  for (int round = 0; round < 50; ++round) {
    std::vector<Point> pa, pb;
    const size_t na = 1 + rng.UniformIndex(15);
    const size_t nb = 1 + rng.UniformIndex(15);
    for (size_t i = 0; i < na; ++i) {
      pa.emplace_back(rng.UniformReal(0, 8), rng.UniformReal(0, 8),
                      static_cast<double>(i));
    }
    for (size_t i = 0; i < nb; ++i) {
      pb.emplace_back(rng.UniformReal(0, 8), rng.UniformReal(0, 8),
                      static_cast<double>(i));
    }
    const Trajectory a(1, pa), b(2, pb);
    const std::vector<EdrOp> ops = EdrOpSequence(a, b, Tol(2, 2, 3));
    EXPECT_TRUE(IsValidOpSequence(ops, na, nb));
  }
}

TEST(EdrOpSequenceTest, MatchesOnlyWhereToleranceAllows) {
  Rng rng(17);
  for (int round = 0; round < 30; ++round) {
    std::vector<Point> pa, pb;
    for (size_t i = 0; i < 8; ++i) {
      pa.emplace_back(rng.UniformReal(0, 4), 0, static_cast<double>(i));
      pb.emplace_back(rng.UniformReal(0, 4), 0, static_cast<double>(i));
    }
    const Trajectory a(1, pa), b(2, pb);
    const EdrTolerance tol = Tol(1, 1, 2);
    for (const EdrOp& op : EdrOpSequence(a, b, tol)) {
      if (op.kind == EdrOp::Kind::kMatch) {
        EXPECT_TRUE(tol.Matches(a[op.traj_index], b[op.pivot_index]));
      }
    }
  }
}

TEST(EdrOpSequenceTest, PivotSideAlwaysFullyCovered) {
  // Every pivot index must appear exactly once (as match or delete-from-
  // pivot): the translation phase relies on this to produce |pivot| points.
  const Trajectory a = MakeLine(1, 0, 0, 1, 0, 5);
  const Trajectory b = MakeLine(2, 100, 100, 1, 0, 9);
  const std::vector<EdrOp> ops = EdrOpSequence(a, b, Tol(1, 1, 1));
  std::vector<int> pivot_seen(9, 0);
  for (const EdrOp& op : ops) {
    if (op.kind != EdrOp::Kind::kDeleteFromTraj) {
      ++pivot_seen[op.pivot_index];
    }
  }
  for (int c : pivot_seen) {
    EXPECT_EQ(c, 1);
  }
}

TEST(IsValidOpSequenceTest, RejectsBadSequences) {
  // Skipping an index is invalid.
  std::vector<EdrOp> ops = {{EdrOp::Kind::kMatch, 0, 0},
                            {EdrOp::Kind::kMatch, 2, 1}};
  EXPECT_FALSE(IsValidOpSequence(ops, 3, 2));
  // Incomplete coverage is invalid.
  ops = {{EdrOp::Kind::kMatch, 0, 0}};
  EXPECT_FALSE(IsValidOpSequence(ops, 2, 1));
  // Correct full coverage passes.
  ops = {{EdrOp::Kind::kMatch, 0, 0}, {EdrOp::Kind::kDeleteFromTraj, 1, 0}};
  EXPECT_TRUE(IsValidOpSequence(ops, 2, 1));
}

}  // namespace
}  // namespace wcop
