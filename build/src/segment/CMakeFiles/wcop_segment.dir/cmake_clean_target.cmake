file(REMOVE_RECURSE
  "libwcop_segment.a"
)
