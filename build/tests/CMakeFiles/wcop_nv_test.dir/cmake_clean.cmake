file(REMOVE_RECURSE
  "CMakeFiles/wcop_nv_test.dir/wcop_nv_test.cc.o"
  "CMakeFiles/wcop_nv_test.dir/wcop_nv_test.cc.o.d"
  "wcop_nv_test"
  "wcop_nv_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wcop_nv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
