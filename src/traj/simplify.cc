#include "traj/simplify.h"

#include <algorithm>
#include <vector>

#include "geo/segment_geometry.h"

namespace wcop {

namespace {

/// Iterative Douglas-Peucker over index range [lo, hi]: marks kept points.
void MarkKeepers(const std::vector<Point>& points, double epsilon,
                 std::vector<bool>* keep) {
  std::vector<std::pair<size_t, size_t>> stack = {{0, points.size() - 1}};
  while (!stack.empty()) {
    const auto [lo, hi] = stack.back();
    stack.pop_back();
    if (hi <= lo + 1) {
      continue;
    }
    const LineSegment chord(points[lo], points[hi]);
    double worst = -1.0;
    size_t worst_index = lo;
    for (size_t i = lo + 1; i < hi; ++i) {
      const double d = PointToSegmentDistance(points[i], chord);
      if (d > worst) {
        worst = d;
        worst_index = i;
      }
    }
    if (worst > epsilon) {
      (*keep)[worst_index] = true;
      stack.emplace_back(lo, worst_index);
      stack.emplace_back(worst_index, hi);
    }
  }
}

}  // namespace

Trajectory SimplifyDouglasPeucker(const Trajectory& t, double epsilon) {
  if (epsilon <= 0.0 || t.size() <= 2) {
    return t;
  }
  std::vector<bool> keep(t.size(), false);
  keep.front() = keep.back() = true;
  MarkKeepers(t.points(), epsilon, &keep);

  std::vector<Point> kept;
  for (size_t i = 0; i < t.size(); ++i) {
    if (keep[i]) {
      kept.push_back(t[i]);
    }
  }
  Trajectory out(t.id(), std::move(kept), t.requirement());
  out.set_object_id(t.object_id());
  out.set_parent_id(t.parent_id());
  return out;
}

Dataset SimplifyDataset(const Dataset& dataset, double epsilon) {
  std::vector<Trajectory> out;
  out.reserve(dataset.size());
  for (const Trajectory& t : dataset.trajectories()) {
    out.push_back(SimplifyDouglasPeucker(t, epsilon));
  }
  return Dataset(std::move(out));
}

double MaxSimplificationError(const Trajectory& original,
                              const Trajectory& simplified) {
  if (original.empty() || simplified.size() < 2) {
    return 0.0;
  }
  double worst = 0.0;
  size_t seg = 0;  // current simplified segment, advanced by timestamp
  for (const Point& p : original.points()) {
    while (seg + 2 < simplified.size() && simplified[seg + 1].t < p.t) {
      ++seg;
    }
    const LineSegment chord(simplified[seg], simplified[seg + 1]);
    worst = std::max(worst, PointToSegmentDistance(p, chord));
  }
  return worst;
}

}  // namespace wcop
