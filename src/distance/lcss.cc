#include "distance/lcss.h"

#include <algorithm>
#include <cstdint>
#include <vector>

namespace wcop {

size_t LcssLength(const Trajectory& a, const Trajectory& b,
                  const EdrTolerance& tolerance) {
  const size_t n = a.size();
  const size_t m = b.size();
  if (n == 0 || m == 0) {
    return 0;
  }
  std::vector<uint32_t> prev(m + 1, 0), curr(m + 1, 0);
  for (size_t i = 1; i <= n; ++i) {
    const Point& pa = a[i - 1];
    for (size_t j = 1; j <= m; ++j) {
      if (tolerance.Matches(pa, b[j - 1])) {
        curr[j] = prev[j - 1] + 1;
      } else {
        curr[j] = std::max(prev[j], curr[j - 1]);
      }
    }
    std::swap(prev, curr);
  }
  return prev[m];
}

double LcssDistance(const Trajectory& a, const Trajectory& b,
                    const EdrTolerance& tolerance) {
  const size_t shortest = std::min(a.size(), b.size());
  if (shortest == 0) {
    return a.size() == b.size() ? 0.0 : 1.0;
  }
  return 1.0 - static_cast<double>(LcssLength(a, b, tolerance)) /
                   static_cast<double>(shortest);
}

}  // namespace wcop
