#include "segment/segmenter.h"

#include <algorithm>

namespace wcop {

Result<Dataset> FixedLengthSegmenter::Segment(const Dataset& dataset) {
  WCOP_RETURN_IF_ERROR(dataset.Validate());
  std::vector<Trajectory> out;
  int64_t next_id = 0;
  for (const Trajectory& t : dataset.trajectories()) {
    std::vector<size_t> cuts;
    for (size_t idx = piece_points_; idx < t.size(); idx += piece_points_) {
      cuts.push_back(idx);
    }
    CutAtIndices(t, cuts, /*min_points=*/2, &next_id, &out);
  }
  return Dataset(std::move(out));
}

void CutAtIndices(const Trajectory& t, const std::vector<size_t>& cut_indices,
                  size_t min_points, int64_t* next_id,
                  std::vector<Trajectory>* out) {
  std::vector<size_t> cuts;
  cuts.reserve(cut_indices.size() + 2);
  cuts.push_back(0);
  for (size_t idx : cut_indices) {
    if (idx > 0 && idx < t.size()) {
      cuts.push_back(idx);
    }
  }
  cuts.push_back(t.size());
  std::sort(cuts.begin(), cuts.end());
  cuts.erase(std::unique(cuts.begin(), cuts.end()), cuts.end());

  // Merge short pieces forward: walk boundaries and drop a boundary whenever
  // the piece it closes would be too small.
  std::vector<size_t> kept;
  kept.push_back(cuts.front());
  for (size_t i = 1; i + 1 < cuts.size(); ++i) {
    if (cuts[i] - kept.back() >= min_points) {
      kept.push_back(cuts[i]);
    }
  }
  // Final piece must also be big enough; if not, merge it into the previous.
  if (t.size() - kept.back() < min_points && kept.size() > 1) {
    kept.pop_back();
  }
  kept.push_back(t.size());

  for (size_t i = 0; i + 1 < kept.size(); ++i) {
    Trajectory piece = t.Slice(kept[i], kept[i + 1], (*next_id)++);
    out->push_back(std::move(piece));
  }
}

}  // namespace wcop
