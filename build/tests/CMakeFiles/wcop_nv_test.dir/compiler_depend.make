# Empty compiler generated dependencies file for wcop_nv_test.
# This may be replaced when dependencies are built.
