#ifndef WCOP_TRAJ_TRAJECTORY_H_
#define WCOP_TRAJ_TRAJECTORY_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "geo/bounding_box.h"
#include "geo/point.h"

namespace wcop {

/// Per-trajectory privacy and quality preferences: the (k_i, delta_i) pair of
/// Problem 1. `k` is the anonymity threshold (hide among >= k-1 others);
/// `delta` is the uncertainty-cylinder diameter in metres, acting as a
/// service-quality bound (larger delta = more tolerated displacement).
struct Requirement {
  int k = 2;
  double delta = 0.0;

  bool operator==(const Requirement& other) const {
    return k == other.k && delta == other.delta;
  }
};

/// A moving-object trajectory: a polyline in (x, y, t) space, i.e. a sequence
/// of timestamped locations with strictly increasing timestamps and linear
/// interpolation in between (Section 3 of the paper).
///
/// Each trajectory carries its personalized Requirement and remembers its
/// provenance: `object_id` identifies the moving object (several trajectories
/// can belong to one user) and, for sub-trajectories produced by the
/// segmentation phase, `parent_id` points at the original trajectory.
class Trajectory {
 public:
  static constexpr int64_t kNoParent = -1;

  Trajectory() = default;
  Trajectory(int64_t id, std::vector<Point> points)
      : id_(id), points_(std::move(points)) {}
  Trajectory(int64_t id, std::vector<Point> points, Requirement requirement)
      : id_(id), requirement_(requirement), points_(std::move(points)) {}

  int64_t id() const { return id_; }
  void set_id(int64_t id) { id_ = id; }

  int64_t object_id() const { return object_id_; }
  void set_object_id(int64_t object_id) { object_id_ = object_id; }

  int64_t parent_id() const { return parent_id_; }
  void set_parent_id(int64_t parent_id) { parent_id_ = parent_id; }
  bool is_sub_trajectory() const { return parent_id_ != kNoParent; }

  const Requirement& requirement() const { return requirement_; }
  Requirement& mutable_requirement() { return requirement_; }
  void set_requirement(Requirement r) { requirement_ = r; }

  const std::vector<Point>& points() const { return points_; }
  std::vector<Point>& mutable_points() { return points_; }
  size_t size() const { return points_.size(); }
  bool empty() const { return points_.empty(); }
  const Point& front() const { return points_.front(); }
  const Point& back() const { return points_.back(); }
  const Point& operator[](size_t i) const { return points_[i]; }

  void AppendPoint(const Point& p) { points_.push_back(p); }

  /// Trajectory lifetime [t_1, t_n]; zero-point trajectories report 0.
  double StartTime() const { return empty() ? 0.0 : points_.front().t; }
  double EndTime() const { return empty() ? 0.0 : points_.back().t; }
  double Duration() const { return EndTime() - StartTime(); }

  /// Total spatial path length in metres.
  double PathLength() const;

  /// Mean speed = path length / duration; 0 for degenerate trajectories.
  double AverageSpeed() const;

  /// Spatial bounding box of the points.
  BoundingBox Bounds() const;

  /// Linearly interpolated position at time `t` (Section 3: the object moves
  /// along a straight line with constant speed between recorded points).
  /// Times outside [t_1, t_n] clamp to the first/last point.
  Point PositionAt(double t) const;

  /// Checks the structural invariant: at least one point and strictly
  /// increasing timestamps, all coordinates finite.
  Status Validate() const;

  /// Extracts the sub-trajectory covering point indices [begin, end)
  /// (inherits requirement and object id; parent_id is set to this->id()).
  Trajectory Slice(size_t begin, size_t end, int64_t new_id) const;

  std::string DebugString() const;

 private:
  int64_t id_ = 0;
  int64_t object_id_ = 0;
  int64_t parent_id_ = kNoParent;
  Requirement requirement_;
  std::vector<Point> points_;
};

}  // namespace wcop

#endif  // WCOP_TRAJ_TRAJECTORY_H_
