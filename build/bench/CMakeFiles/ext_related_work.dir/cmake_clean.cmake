file(REMOVE_RECURSE
  "CMakeFiles/ext_related_work.dir/ext_related_work.cpp.o"
  "CMakeFiles/ext_related_work.dir/ext_related_work.cpp.o.d"
  "ext_related_work"
  "ext_related_work.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ext_related_work.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
