#ifndef WCOP_MOD_TRAJECTORY_STORE_H_
#define WCOP_MOD_TRAJECTORY_STORE_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "anon/types.h"
#include "common/result.h"
#include "traj/dataset.h"

namespace wcop {

/// Moving-objects-database substrate: an indexed, queryable trajectory
/// store. The anonymization pipeline treats datasets as flat vectors; this
/// store is what a *consumer* of published (or raw) trajectory data would
/// actually query — and what makes utility evaluation fast at scale.
///
/// The index is a uniform spatiotemporal grid: every recorded segment is
/// registered in the (x, y) cells its bounding box covers, within its time
/// bucket. Queries gather candidate trajectories from covering cells and
/// verify exactly under the linear-interpolation movement model.
struct TrajectoryStoreOptions {
  /// Spatial cell edge length in metres. 0 = auto: the dataset bounding
  /// box is split into ~64 cells per axis.
  double cell_size = 0.0;

  /// Time bucket length in seconds. 0 = auto: the dataset duration is
  /// split into ~64 buckets.
  double time_bucket = 0.0;
};

/// A spatiotemporal window: the store's native query volume.
struct StRange {
  double x_lo = 0.0, x_hi = 0.0;
  double y_lo = 0.0, y_hi = 0.0;
  double t_lo = 0.0, t_hi = 0.0;
};

/// One nearest-neighbour answer.
struct StNeighbor {
  int64_t trajectory_id = 0;
  double distance = 0.0;
};

class TrajectoryStore {
 public:
  /// Builds the store over a copy of `dataset`. Fails on invalid data.
  static Result<TrajectoryStore> Build(
      Dataset dataset, const TrajectoryStoreOptions& options = {});

  const Dataset& dataset() const { return dataset_; }
  size_t size() const { return dataset_.size(); }

  /// Ids of all trajectories whose interpolated movement intersects the
  /// window. Exact (index-accelerated, then verified).
  std::vector<int64_t> RangeQuery(const StRange& range) const;

  /// The k trajectories alive at time `t` whose interpolated position is
  /// closest to (x, y), nearest first. Trajectories not alive at `t` are
  /// excluded. Returns fewer than k when fewer are alive.
  std::vector<StNeighbor> NearestAt(double x, double y, double t,
                                    size_t k) const;

  /// The k most similar stored trajectories to `probe` under the given
  /// trajectory distance, nearest first (linear scan — trajectory-level
  /// similarity admits no exact cheap index; used by linkage tooling and
  /// analysis, not hot paths).
  std::vector<StNeighbor> MostSimilar(const Trajectory& probe, size_t k,
                                      const DistanceConfig& config) const;

  /// Index statistics (for tests and tuning).
  size_t num_cells() const { return cells_.size(); }
  size_t num_segment_entries() const { return segment_entries_; }

 private:
  TrajectoryStore() = default;

  struct CellKey {
    int64_t cx, cy, ct;
    bool operator==(const CellKey& o) const {
      return cx == o.cx && cy == o.cy && ct == o.ct;
    }
  };
  struct CellKeyHash {
    size_t operator()(const CellKey& key) const;
  };
  struct SegmentRef {
    uint32_t trajectory;
    uint32_t segment;
  };

  CellKey KeyFor(double x, double y, double t) const;
  void InsertSegment(uint32_t trajectory, uint32_t segment);

  Dataset dataset_;
  double cell_size_ = 1.0;
  double time_bucket_ = 1.0;
  size_t segment_entries_ = 0;
  std::unordered_map<CellKey, std::vector<SegmentRef>, CellKeyHash> cells_;
};

}  // namespace wcop

#endif  // WCOP_MOD_TRAJECTORY_STORE_H_
