#include <gtest/gtest.h>

#include "anon/verifier.h"
#include "anon/wcop_sa.h"
#include "segment/convoy.h"
#include "segment/traclus.h"
#include "test_util.h"

namespace wcop {
namespace {

using testing_util::SmallSynthetic;

TEST(WcopSaTest, TraclusVariantPassesVerifierOnSegmentedInput) {
  const Dataset d = SmallSynthetic(25, 60, /*k_max=*/4);
  TraclusSegmenter segmenter;
  Result<WcopSaResult> result = RunWcopSa(d, &segmenter);
  ASSERT_TRUE(result.ok()) << result.status();
  // The anonymization's guarantees are stated over the segmented dataset.
  const VerificationReport report =
      VerifyAnonymity(result->segmented, result->anonymization);
  EXPECT_TRUE(report.ok) << (report.messages.empty()
                                 ? "no messages"
                                 : report.messages.front());
  EXPECT_GE(result->segmented.size(), d.size());
  EXPECT_EQ(result->anonymization.report.input_trajectories,
            result->segmented.size());
}

TEST(WcopSaTest, ConvoyVariantRuns) {
  const Dataset d = SmallSynthetic(25, 60, /*k_max=*/4);
  ConvoyOptions convoy_options;
  convoy_options.min_objects = 2;
  convoy_options.eps = 300.0;
  convoy_options.min_duration_snapshots = 3;
  convoy_options.snapshot_interval = 30.0;
  ConvoySegmenter segmenter(convoy_options);
  Result<WcopSaResult> result = RunWcopSa(d, &segmenter);
  ASSERT_TRUE(result.ok()) << result.status();
  const VerificationReport report =
      VerifyAnonymity(result->segmented, result->anonymization);
  EXPECT_TRUE(report.ok);
  // Convoy segmentation preserves the point count.
  EXPECT_EQ(result->segmented.TotalPoints(), d.TotalPoints());
}

TEST(WcopSaTest, SubTrajectoriesKeepParentRequirements) {
  const Dataset d = SmallSynthetic(15, 60);
  TraclusSegmenter segmenter;
  Result<WcopSaResult> result = RunWcopSa(d, &segmenter);
  ASSERT_TRUE(result.ok());
  for (const Trajectory& sub : result->segmented.trajectories()) {
    ASSERT_TRUE(sub.is_sub_trajectory());
    const Trajectory* parent = d.FindById(sub.parent_id());
    ASSERT_NE(parent, nullptr);
    EXPECT_EQ(sub.requirement().k, parent->requirement().k);
    EXPECT_DOUBLE_EQ(sub.requirement().delta, parent->requirement().delta);
  }
}

TEST(WcopSaTest, NullSegmenterRejected) {
  const Dataset d = SmallSynthetic(10, 30);
  EXPECT_FALSE(RunWcopSa(d, nullptr).ok());
}

TEST(WcopSaTest, RuntimeCoversBothPhases) {
  const Dataset d = SmallSynthetic(15, 50);
  TraclusSegmenter segmenter;
  Result<WcopSaResult> result = RunWcopSa(d, &segmenter);
  ASSERT_TRUE(result.ok());
  EXPECT_GE(result->anonymization.report.runtime_seconds, 0.0);
}

}  // namespace
}  // namespace wcop
