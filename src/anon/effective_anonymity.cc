#include "anon/effective_anonymity.h"

#include <algorithm>
#include <limits>

#include "distance/euclidean.h"

namespace wcop {

EffectiveAnonymityReport MeasureEffectiveAnonymity(const Dataset& published,
                                                   double delta,
                                                   bool use_personal_delta) {
  EffectiveAnonymityReport report;
  const size_t n = published.size();
  report.counts.assign(n, 0);
  if (n == 0) {
    return report;
  }
  // Co-localization here uses the synchronized max distance over the
  // temporal overlap: the from-first-principles reading of Definition 2
  // that also works when trajectories have different timelines (unlike the
  // aligned-timestamp fast path used inside the pipeline).
  for (size_t i = 0; i < n; ++i) {
    const double threshold =
        use_personal_delta ? published[i].requirement().delta : delta;
    size_t count = 0;
    for (size_t j = 0; j < n; ++j) {
      if (i == j) {
        ++count;
        continue;
      }
      // Both must cover the same lifetime for Definition 2 to apply over
      // [t1, tn]; tolerate small boundary mismatch.
      if (std::abs(published[i].StartTime() - published[j].StartTime()) >
              1.0 ||
          std::abs(published[i].EndTime() - published[j].EndTime()) > 1.0) {
        continue;
      }
      if (MaxSynchronizedDistance(published[i], published[j]) <= threshold) {
        ++count;
      }
    }
    report.counts[i] = count;
  }

  size_t min_count = std::numeric_limits<size_t>::max();
  double sum = 0.0;
  size_t violations = 0;
  for (size_t i = 0; i < n; ++i) {
    min_count = std::min(min_count, report.counts[i]);
    sum += static_cast<double>(report.counts[i]);
    if (report.counts[i] <
        static_cast<size_t>(published[i].requirement().k)) {
      ++violations;
    }
  }
  report.min_anonymity = min_count;
  report.mean_anonymity = sum / static_cast<double>(n);
  report.violation_fraction =
      static_cast<double>(violations) / static_cast<double>(n);
  return report;
}

}  // namespace wcop
