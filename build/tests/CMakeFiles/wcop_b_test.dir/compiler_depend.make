# Empty compiler generated dependencies file for wcop_b_test.
# This may be replaced when dependencies are built.
