file(REMOVE_RECURSE
  "CMakeFiles/wcop_related.dir/awo.cc.o"
  "CMakeFiles/wcop_related.dir/awo.cc.o.d"
  "CMakeFiles/wcop_related.dir/path_perturbation.cc.o"
  "CMakeFiles/wcop_related.dir/path_perturbation.cc.o.d"
  "CMakeFiles/wcop_related.dir/suppression.cc.o"
  "CMakeFiles/wcop_related.dir/suppression.cc.o.d"
  "libwcop_related.a"
  "libwcop_related.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wcop_related.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
