#ifndef WCOP_COMMON_PROMETHEUS_H_
#define WCOP_COMMON_PROMETHEUS_H_

#include <string>
#include <string_view>

#include "common/telemetry.h"

namespace wcop {
namespace telemetry {

/// Prometheus text exposition (format version 0.0.4) of a MetricsSnapshot.
///
/// Mapping from the internal dot-separated catalog (DESIGN.md §7) to the
/// Prometheus data model:
///  * names are sanitized to `[a-zA-Z_:][a-zA-Z0-9_:]*` (dots and other
///    illegal characters become `_`, a leading digit gains a `_` prefix)
///    and prefixed `wcop_` — except `process.*` metrics which map to the
///    conventional unprefixed `process_*` family;
///  * counters gain the `_total` suffix (not doubled if already present);
///  * histograms emit cumulative `_bucket{le="..."}` series derived from
///    the power-of-two buckets (exact upper bounds, since recorded values
///    are integers), then `_sum` and `_count`;
///  * NaN / +Inf / -Inf gauge values are emitted as the literal tokens
///    `NaN` / `+Inf` / `-Inf` the format defines.
///
/// Serve with `Content-Type: text/plain; version=0.0.4`.

/// Sanitizes one metric name (without prefix policy): every character
/// outside [a-zA-Z0-9_:] becomes '_', and a leading digit gains a '_'
/// prefix. An empty input yields "_".
std::string SanitizeMetricName(std::string_view name);

/// Escapes a label value per the exposition format: backslash, double
/// quote and newline are escaped.
std::string EscapeLabelValue(std::string_view value);

/// Renders `snapshot` in the exposition format. Deterministic: series
/// appear in snapshot order (the registry snapshots in name order). An
/// empty snapshot produces an empty string, which is a valid exposition.
std::string ToPrometheusText(const MetricsSnapshot& snapshot);

}  // namespace telemetry
}  // namespace wcop

#endif  // WCOP_COMMON_PROMETHEUS_H_
