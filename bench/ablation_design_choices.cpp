// Ablation benches for the design choices DESIGN.md calls out:
//   1. per-cluster delta = min of members (paper) vs mean of members;
//   2. pivot selection: random (Algorithm 3) vs farthest-first (W4M text);
//   3. EDR tolerance heuristic: the paper's 10x delta_max factor vs
//      tighter/looser factors;
//   4. demandingness weights w1/w2 in WCOP-B (Eq. 3);
//   5. segmentation strategy: TRACLUS MDL granularity vs naive fixed-length
//      splitting.
//
// Run:  ./ablation_design_choices [--points=100] [--trajectories=150]
//                                  [--json-out=FILE]

#include <cstdio>
#include <iostream>
#include <vector>

#include "anon/wcop.h"
#include "bench_util.h"
#include "common/table_printer.h"

using namespace wcop;
using namespace wcop::bench;

namespace {

std::string Fmt(double v) { return FormatSignificant(v, 4); }

void AblateDeltaPolicy(const Dataset& dataset, uint64_t seed,
                       JsonOut* json_out) {
  PrintHeader("Ablation 1: cluster delta = min(members) vs mean(members)");
  TablePrinter table({"delta policy", "total distortion", "avg transl.",
                      "preference violations"});
  for (auto policy :
       {WcopOptions::DeltaPolicy::kMin, WcopOptions::DeltaPolicy::kMean}) {
    WcopOptions options;
    options.seed = seed;
    options.delta_policy = policy;
    telemetry::Telemetry tel;
    options.telemetry = &tel;
    Result<AnonymizationResult> r = RunWcopCt(dataset, options);
    if (!r.ok()) {
      std::cerr << r.status() << "\n";
      return;
    }
    const VerificationReport audit = VerifyAnonymity(dataset, *r);
    json_out->Add("ablation/delta_policy",
                  {{"mean_policy",
                    policy == WcopOptions::DeltaPolicy::kMean ? 1.0 : 0.0},
                   {"total_distortion", r->report.total_distortion},
                   {"violations", static_cast<double>(audit.violations)}},
                  r->report.runtime_seconds, r->report.metrics);
    table.AddRow({policy == WcopOptions::DeltaPolicy::kMin ? "min (paper)"
                                                           : "mean",
                  Fmt(r->report.total_distortion),
                  Fmt(r->report.avg_spatial_translation),
                  std::to_string(audit.violations)});
  }
  table.Print(std::cout);
  std::printf("mean delta loosens translation (lower distortion) but "
              "violates strict members' delta_i — min is the only policy "
              "honouring every preference\n");
}

void AblatePivotPolicy(const Dataset& dataset, uint64_t seed,
                       JsonOut* json_out) {
  PrintHeader("Ablation 2: pivot selection random vs farthest-first");
  TablePrinter table({"pivot policy", "clusters", "trashed",
                      "total distortion", "runtime (s)"});
  for (auto policy : {WcopOptions::PivotPolicy::kRandom,
                      WcopOptions::PivotPolicy::kFarthestFirst}) {
    WcopOptions options;
    options.seed = seed;
    options.pivot_policy = policy;
    telemetry::Telemetry tel;
    options.telemetry = &tel;
    Result<AnonymizationResult> r = RunWcopCt(dataset, options);
    if (!r.ok()) {
      std::cerr << r.status() << "\n";
      return;
    }
    json_out->Add("ablation/pivot_policy",
                  {{"farthest_first",
                    policy == WcopOptions::PivotPolicy::kFarthestFirst
                        ? 1.0 : 0.0},
                   {"clusters", static_cast<double>(r->report.num_clusters)},
                   {"total_distortion", r->report.total_distortion}},
                  r->report.runtime_seconds, r->report.metrics);
    table.AddRow({policy == WcopOptions::PivotPolicy::kRandom
                      ? "random (paper)"
                      : "farthest-first (W4M)",
                  std::to_string(r->report.num_clusters),
                  std::to_string(r->report.trashed_trajectories),
                  Fmt(r->report.total_distortion),
                  Fmt(r->report.runtime_seconds)});
  }
  table.Print(std::cout);
}

void AblateEdrTolerance(const Dataset& dataset, uint64_t seed,
                        JsonOut* json_out) {
  PrintHeader("Ablation 3: EDR tolerance factor (paper uses 10x delta_max)");
  double delta_max = 0.0;
  for (const Trajectory& t : dataset.trajectories()) {
    delta_max = std::max(delta_max, t.requirement().delta);
  }
  const double avg_speed = dataset.ComputeStats().avg_speed;
  TablePrinter table({"factor", "clusters", "trashed", "total distortion",
                      "created points"});
  for (double factor : {1.0, 5.0, 10.0, 20.0, 50.0}) {
    WcopOptions options;
    options.seed = seed;
    options.distance.tolerance =
        EdrTolerance::FromDeltaMax(factor / 10.0 * delta_max, avg_speed);
    telemetry::Telemetry tel;
    options.telemetry = &tel;
    Result<AnonymizationResult> r = RunWcopCt(dataset, options);
    if (!r.ok()) {
      std::cerr << r.status() << "\n";
      return;
    }
    json_out->Add("ablation/edr_tolerance",
                  {{"factor", factor},
                   {"clusters", static_cast<double>(r->report.num_clusters)},
                   {"trashed",
                    static_cast<double>(r->report.trashed_trajectories)},
                   {"total_distortion", r->report.total_distortion}},
                  r->report.runtime_seconds, r->report.metrics);
    table.AddRow({Fmt(factor) + "x", std::to_string(r->report.num_clusters),
                  std::to_string(r->report.trashed_trajectories),
                  Fmt(r->report.total_distortion),
                  std::to_string(r->report.created_points)});
  }
  table.Print(std::cout);
}

void AblateDemandWeights(const Dataset& dataset, uint64_t seed,
                         JsonOut* json_out) {
  PrintHeader("Ablation 4: WCOP-B demandingness weights (paper uses "
              "w1=w2=1/2)");
  TablePrinter table({"w1 (k-weight)", "best distortion in sweep",
                      "best edit size"});
  for (double w1 : {0.0, 0.25, 0.5, 0.75, 1.0}) {
    WcopOptions options;
    options.seed = seed;
    WcopBOptions b_options;
    b_options.distort_max = 0.0;
    b_options.step = 2;
    b_options.max_edit_size = 10;
    b_options.w1 = w1;
    b_options.w2 = 1.0 - w1;
    Result<WcopBResult> r = RunWcopB(dataset, options, b_options);
    if (!r.ok()) {
      std::cerr << r.status() << "\n";
      return;
    }
    double best = 1e300;
    size_t best_size = 0;
    for (const WcopBRound& round : r->rounds) {
      if (round.total_distortion < best) {
        best = round.total_distortion;
        best_size = round.edit_size;
      }
    }
    json_out->Add("ablation/demand_weights",
                  {{"w1", w1},
                   {"best_distortion", best},
                   {"best_edit_size", static_cast<double>(best_size)}},
                  r->anonymization.report.runtime_seconds,
                  r->anonymization.report.metrics);
    table.AddRow({Fmt(w1), Fmt(best), std::to_string(best_size)});
  }
  table.Print(std::cout);
}

void AblateSegmentation(const Dataset& dataset, uint64_t seed,
                        JsonOut* json_out) {
  PrintHeader("Ablation 5: segmentation strategy and granularity");
  TablePrinter table({"segmenter", "sub-trajectories", "clusters",
                      "total distortion"});
  struct Entry {
    std::string name;
    Segmenter* segmenter;
  };
  TraclusOptions fine;
  fine.mdl_advantage = 0.0;
  fine.min_sub_trajectory_points = 2;
  TraclusOptions coarse;
  coarse.mdl_advantage = 8.0;
  coarse.min_sub_trajectory_points = 8;
  TraclusSegmenter traclus_fine(fine);
  TraclusSegmenter traclus_coarse(coarse);
  FixedLengthSegmenter fixed_short(10);
  FixedLengthSegmenter fixed_long(40);
  const std::vector<Entry> entries = {
      {"traclus fine (mdl_adv=0)", &traclus_fine},
      {"traclus coarse (mdl_adv=8)", &traclus_coarse},
      {"fixed length 10", &fixed_short},
      {"fixed length 40", &fixed_long},
  };
  size_t variant = 0;
  for (const Entry& entry : entries) {
    WcopOptions options;
    options.seed = seed;
    telemetry::Telemetry tel;
    options.telemetry = &tel;
    Result<WcopSaResult> r = RunWcopSa(dataset, entry.segmenter, options);
    ++variant;
    if (!r.ok()) {
      std::cerr << entry.name << ": " << r.status() << "\n";
      continue;
    }
    json_out->Add("ablation/segmentation",
                  {{"variant", static_cast<double>(variant)},
                   {"sub_trajectories",
                    static_cast<double>(r->segmented.size())},
                   {"clusters",
                    static_cast<double>(
                        r->anonymization.report.num_clusters)},
                   {"total_distortion",
                    r->anonymization.report.total_distortion}},
                  r->anonymization.report.runtime_seconds,
                  r->anonymization.report.metrics);
    table.AddRow({entry.name,
                  std::to_string(r->segmented.size()),
                  std::to_string(r->anonymization.report.num_clusters),
                  Fmt(r->anonymization.report.total_distortion)});
  }
  table.Print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  BenchScale scale = BenchScale::FromArgs(args);
  if (!args.Has("trajectories")) {
    scale.trajectories = 150;  // ablations run many variants; keep each fast
  }
  if (!args.Has("points")) {
    scale.points = 100;
  }
  JsonOut json_out(args);
  Dataset dataset = MakeBenchDataset(scale);
  AssignPaperRequirements(&dataset, /*k_max=*/10, /*delta_max=*/250.0,
                          scale.seed + 1);

  AblateDeltaPolicy(dataset, scale.seed + 2, &json_out);
  AblatePivotPolicy(dataset, scale.seed + 2, &json_out);
  AblateEdrTolerance(dataset, scale.seed + 2, &json_out);
  AblateDemandWeights(dataset, scale.seed + 2, &json_out);
  AblateSegmentation(dataset, scale.seed + 2, &json_out);
  if (!json_out.Flush()) {
    return 1;
  }
  return 0;
}
