#include "anon/nwa.h"

#include <algorithm>
#include <cmath>

#include <map>
#include <unordered_map>
#include <unordered_set>

#include "anon/greedy_clustering.h"
#include "anon/metrics.h"
#include "anon/wcop_ct.h"
#include "common/stopwatch.h"
#include "geo/disk.h"

namespace wcop {

namespace {

/// NWA's spatial-only translation: resample onto the pivot's timeline and
/// clamp into the delta/2 disk.
struct StatsLite {
  double spatial = 0.0;
  double max_move = 0.0;
  size_t points = 0;
};

Trajectory SpatialTranslateImpl(const Trajectory& traj,
                                const Trajectory& pivot, double delta,
                                StatsLite* stats) {
  const double radius = std::max(delta, 0.0) / 2.0;
  std::vector<Point> out;
  out.reserve(pivot.size());
  for (const Point& pc : pivot.points()) {
    const Point original = traj.PositionAt(pc.t);
    const Point moved = ClampIntoDisk(original, pc, radius, pc.t);
    const double displacement = SpatialDistance(original, moved);
    stats->spatial += displacement;
    stats->max_move = std::max(stats->max_move, displacement);
    ++stats->points;
    out.push_back(moved);
  }
  Trajectory sanitized(traj.id(), std::move(out), traj.requirement());
  sanitized.set_object_id(traj.object_id());
  sanitized.set_parent_id(traj.parent_id());
  return sanitized;
}

}  // namespace

Result<AnonymizationResult> RunNwa(const Dataset& dataset, int k, double delta,
                                   const WcopOptions& options) {
  WCOP_RETURN_IF_ERROR(dataset.Validate());
  if (dataset.empty()) {
    return Status::InvalidArgument("cannot anonymize an empty dataset");
  }
  if (k < 1 || delta < 0.0) {
    return Status::InvalidArgument("need k >= 1 and delta >= 0");
  }
  Stopwatch timer;

  Dataset uniform = dataset;
  for (Trajectory& t : uniform.mutable_trajectories()) {
    t.set_requirement(Requirement{k, delta});
  }

  WcopOptions resolved = options;
  resolved.distance.kind = DistanceConfig::Kind::kSynchronizedEuclidean;
  resolved = ResolveOptions(uniform, resolved);
  const size_t trash_max = std::min(
      resolved.trash_max_override,
      static_cast<size_t>(resolved.trash_fraction *
                          static_cast<double>(uniform.size())));

  WCOP_ASSIGN_OR_RETURN(ClusteringOutcome outcome,
                        GreedyClustering(uniform, trash_max, resolved));

  // Spatial-only translation phase.
  StatsLite stats;
  std::vector<const Trajectory*> sanitized_of(uniform.size(), nullptr);
  std::vector<Trajectory> storage;
  size_t published = 0;
  for (const AnonymityCluster& c : outcome.clusters) {
    published += c.members.size();
  }
  storage.reserve(published);
  for (const AnonymityCluster& cluster : outcome.clusters) {
    const Trajectory& pivot = uniform[cluster.pivot];
    for (size_t member : cluster.members) {
      storage.push_back(
          SpatialTranslateImpl(uniform[member], pivot, cluster.delta, &stats));
      sanitized_of[member] = &storage.back();
    }
  }

  double omega = stats.max_move;
  if (omega <= 0.0) {
    omega = std::max(uniform.Bounds().HalfDiagonal(), 1.0);
  }

  AnonymizationResult result;
  result.clusters = outcome.clusters;
  for (size_t idx : outcome.trash) {
    result.trashed_ids.push_back(uniform[idx].id());
    result.report.trashed_points += uniform[idx].size();
  }
  AnonymizationReport& report = result.report;
  report.input_trajectories = uniform.size();
  report.num_clusters = outcome.clusters.size();
  report.trashed_trajectories = outcome.trash.size();
  report.discernibility =
      Discernibility(outcome.clusters, outcome.trash.size(), uniform.size());
  report.total_spatial_translation = stats.spatial;
  report.avg_spatial_translation =
      stats.spatial / std::max<double>(1.0, static_cast<double>(published));
  report.omega = omega;
  report.ttd = TotalTranslationDistortion(uniform, sanitized_of, omega);
  report.total_distortion = report.ttd;
  report.clustering_rounds = outcome.rounds;
  report.final_radius = outcome.final_radius;

  std::vector<Trajectory> published_trajectories;
  published_trajectories.reserve(published);
  for (size_t i = 0; i < uniform.size(); ++i) {
    if (sanitized_of[i] != nullptr) {
      published_trajectories.push_back(*sanitized_of[i]);
    }
  }
  result.sanitized = Dataset(std::move(published_trajectories));
  result.report.runtime_seconds = timer.ElapsedSeconds();
  return result;
}

NwaPreprocessResult NwaPreprocess(const Dataset& dataset,
                                  double period_seconds, size_t min_points,
                                  size_t min_class_size) {
  NwaPreprocessResult result;
  if (period_seconds <= 0.0) {
    period_seconds = 1.0;
  }
  // Class key: (first whole period, last whole period).
  std::map<std::pair<int64_t, int64_t>, std::vector<Trajectory>> classes;
  for (const Trajectory& t : dataset.trajectories()) {
    // Trim to whole periods: keep points in [ceil(start/p)*p,
    // floor(end/p)*p].
    const double lo =
        std::ceil(t.StartTime() / period_seconds) * period_seconds;
    const double hi =
        std::floor(t.EndTime() / period_seconds) * period_seconds;
    std::vector<Point> kept;
    for (const Point& p : t.points()) {
      if (p.t >= lo && p.t <= hi) {
        kept.push_back(p);
      } else {
        ++result.trimmed_points;
      }
    }
    if (kept.size() < std::max<size_t>(min_points, 2)) {
      ++result.dropped_trajectories;
      result.trimmed_points += kept.size();
      continue;
    }
    const int64_t first_period =
        static_cast<int64_t>(std::llround(lo / period_seconds));
    const int64_t last_period =
        static_cast<int64_t>(std::llround(hi / period_seconds));
    Trajectory trimmed(t.id(), std::move(kept), t.requirement());
    trimmed.set_object_id(t.object_id());
    trimmed.set_parent_id(t.parent_id());
    classes[{first_period, last_period}].push_back(std::move(trimmed));
  }
  for (auto& [key, members] : classes) {
    if (members.size() < min_class_size) {
      result.dropped_trajectories += members.size();
      continue;
    }
    result.classes.push_back(Dataset(std::move(members)));
  }
  return result;
}

Result<AnonymizationResult> RunNwaWithPreprocessing(
    const Dataset& dataset, int k, double delta, double period_seconds,
    const WcopOptions& options) {
  WCOP_RETURN_IF_ERROR(dataset.Validate());
  if (dataset.empty()) {
    return Status::InvalidArgument("cannot anonymize an empty dataset");
  }
  Stopwatch timer;
  NwaPreprocessResult pre = NwaPreprocess(dataset, period_seconds,
                                          /*min_points=*/2,
                                          /*min_class_size=*/
                                          static_cast<size_t>(std::max(1, k)));

  AnonymizationResult merged;
  AnonymizationReport& report = merged.report;
  report.input_trajectories = dataset.size();
  std::vector<Trajectory> published;
  std::unordered_set<int64_t> published_ids;

  // Classes are trimmed copies; cluster member indices in the merged
  // result must refer to the *original* dataset, so build an id -> index
  // map once.
  std::unordered_map<int64_t, size_t> index_of;
  for (size_t i = 0; i < dataset.size(); ++i) {
    index_of[dataset[i].id()] = i;
  }

  for (const Dataset& klass : pre.classes) {
    // A class can still be unsatisfiable (too spread out); treat a failed
    // class as fully trashed rather than failing the whole run.
    WcopOptions class_options = options;
    class_options.trash_max_override = klass.size();
    Result<AnonymizationResult> r = RunNwa(klass, k, delta, class_options);
    if (!r.ok()) {
      for (const Trajectory& t : klass.trajectories()) {
        merged.trashed_ids.push_back(t.id());
        report.trashed_points += t.size();
      }
      continue;
    }
    for (const Trajectory& t : r->sanitized.trajectories()) {
      published.push_back(t);
      published_ids.insert(t.id());
    }
    for (int64_t id : r->trashed_ids) {
      merged.trashed_ids.push_back(id);
    }
    for (const AnonymityCluster& c : r->clusters) {
      AnonymityCluster remapped;
      remapped.k = c.k;
      remapped.delta = c.delta;
      remapped.pivot = index_of.at(klass[c.pivot].id());
      for (size_t m : c.members) {
        remapped.members.push_back(index_of.at(klass[m].id()));
      }
      merged.clusters.push_back(std::move(remapped));
    }
    report.trashed_points += r->report.trashed_points;
    report.total_spatial_translation += r->report.total_spatial_translation;
    report.ttd += r->report.ttd;
    report.omega = std::max(report.omega, r->report.omega);
    report.clustering_rounds =
        std::max(report.clustering_rounds, r->report.clustering_rounds);
    report.final_radius = std::max(report.final_radius, r->report.final_radius);
  }

  // Everything the preprocessing dropped is trash in the merged view.
  for (const Trajectory& t : dataset.trajectories()) {
    if (!published_ids.count(t.id()) &&
        std::find(merged.trashed_ids.begin(), merged.trashed_ids.end(),
                  t.id()) == merged.trashed_ids.end()) {
      merged.trashed_ids.push_back(t.id());
      report.trashed_points += t.size();
    }
  }
  report.num_clusters = merged.clusters.size();
  report.trashed_trajectories = merged.trashed_ids.size();
  report.discernibility = Discernibility(
      merged.clusters, merged.trashed_ids.size(), dataset.size());
  // Charge the trimmed points at Ω, like suppressed points (the price of
  // NWA's preprocessing).
  if (report.omega <= 0.0) {
    report.omega = std::max(dataset.Bounds().HalfDiagonal(), 1.0);
  }
  report.ttd += static_cast<double>(pre.trimmed_points) * report.omega;
  report.deleted_points = pre.trimmed_points;
  report.total_distortion = report.ttd;
  const double published_count =
      std::max<double>(1.0, static_cast<double>(published.size()));
  report.avg_spatial_translation =
      report.total_spatial_translation / published_count;
  merged.sanitized = Dataset(std::move(published));
  report.runtime_seconds = timer.ElapsedSeconds();
  return merged;
}

}  // namespace wcop
