#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "test_util.h"
#include "traj/dataset.h"
#include "traj/io.h"

namespace wcop {
namespace {

using testing_util::MakeLineWithReq;

Dataset ThreeTrajectories() {
  Dataset d;
  d.Add(MakeLineWithReq(0, 0, 0, 1, 0, 10, /*k=*/2, /*delta=*/100.0));
  d.Add(MakeLineWithReq(1, 5, 5, 0, 1, 20, /*k=*/7, /*delta=*/50.0));
  d.Add(MakeLineWithReq(2, -5, 0, 1, 1, 15, /*k=*/3, /*delta=*/400.0));
  return d;
}

TEST(DatasetTest, MaxKAndMinDelta) {
  const Dataset d = ThreeTrajectories();
  EXPECT_EQ(d.MaxK(), 7);
  EXPECT_DOUBLE_EQ(d.MinDelta(), 50.0);
}

TEST(DatasetTest, EmptyDatasetDefaults) {
  const Dataset d;
  EXPECT_EQ(d.MaxK(), 0);
  EXPECT_DOUBLE_EQ(d.MinDelta(), 0.0);
  EXPECT_EQ(d.TotalPoints(), 0u);
  EXPECT_TRUE(d.Validate().ok());
}

TEST(DatasetTest, TotalPoints) {
  EXPECT_EQ(ThreeTrajectories().TotalPoints(), 45u);
}

TEST(DatasetTest, ComputeStatsCountsDistinctObjects) {
  Dataset d = ThreeTrajectories();
  d[0].set_object_id(1);
  d[1].set_object_id(1);
  d[2].set_object_id(2);
  const DatasetStats stats = d.ComputeStats();
  EXPECT_EQ(stats.num_objects, 2u);
  EXPECT_EQ(stats.num_trajectories, 3u);
  EXPECT_EQ(stats.num_points, 45u);
  EXPECT_GT(stats.avg_speed, 0.0);
  EXPECT_GT(stats.radius, 0.0);
  EXPECT_NEAR(stats.avg_points_per_traj, 15.0, 1e-9);
}

TEST(DatasetTest, ValidateCatchesDuplicateIds) {
  Dataset d = ThreeTrajectories();
  d.Add(MakeLineWithReq(1, 0, 0, 1, 0, 5, 2, 10.0));  // duplicate id 1
  EXPECT_FALSE(d.Validate().ok());
}

TEST(DatasetTest, FindById) {
  const Dataset d = ThreeTrajectories();
  ASSERT_NE(d.FindById(1), nullptr);
  EXPECT_EQ(d.FindById(1)->requirement().k, 7);
  EXPECT_EQ(d.FindById(99), nullptr);
}

TEST(DatasetIoTest, CsvRoundTrip) {
  Dataset d = ThreeTrajectories();
  d[1].set_object_id(4);
  d[2].set_parent_id(77);
  const std::string path =
      (std::filesystem::temp_directory_path() / "wcop_io_test.csv").string();
  ASSERT_TRUE(WriteDatasetCsv(d, path).ok());

  Result<Dataset> loaded = ReadDatasetCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  ASSERT_EQ(loaded->size(), 3u);
  for (size_t i = 0; i < 3; ++i) {
    EXPECT_EQ((*loaded)[i].id(), d[i].id());
    EXPECT_EQ((*loaded)[i].object_id(), d[i].object_id());
    EXPECT_EQ((*loaded)[i].parent_id(), d[i].parent_id());
    EXPECT_EQ((*loaded)[i].requirement().k, d[i].requirement().k);
    EXPECT_NEAR((*loaded)[i].requirement().delta, d[i].requirement().delta,
                1e-5);
    ASSERT_EQ((*loaded)[i].size(), d[i].size());
    for (size_t j = 0; j < d[i].size(); ++j) {
      EXPECT_NEAR((*loaded)[i][j].x, d[i][j].x, 1e-5);
      EXPECT_NEAR((*loaded)[i][j].y, d[i][j].y, 1e-5);
      EXPECT_NEAR((*loaded)[i][j].t, d[i][j].t, 1e-5);
    }
  }
  std::remove(path.c_str());
}

TEST(DatasetIoTest, ReadRejectsMissingFile) {
  EXPECT_EQ(ReadDatasetCsv("/nonexistent/file.csv").status().code(),
            StatusCode::kIoError);
}

TEST(DatasetIoTest, ReadRejectsMalformedRow) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "wcop_io_bad.csv").string();
  {
    std::FILE* f = std::fopen(path.c_str(), "w");
    ASSERT_NE(f, nullptr);
    std::fputs("traj_id,object_id,parent_id,k,delta,x,y,t\n1,2,3,4\n", f);
    std::fclose(f);
  }
  EXPECT_EQ(ReadDatasetCsv(path).status().code(), StatusCode::kParseError);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace wcop
