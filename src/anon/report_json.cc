#include "anon/report_json.h"

#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace wcop {

namespace {

/// Single point of float formatting: JSON has no NaN/Inf literals, so
/// non-finite values are emitted as null (every consumer that parses the
/// report would otherwise reject the whole document).
void AppendDouble(std::ostringstream& os, double value) {
  if (!std::isfinite(value)) {
    os << "null";
    return;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", value);
  os << buf;
}

void AppendField(std::ostringstream& os, const char* key, double value,
                 bool* first) {
  if (!*first) {
    os << ",";
  }
  *first = false;
  os << "\"" << key << "\":";
  AppendDouble(os, value);
}

void AppendField(std::ostringstream& os, const char* key, size_t value,
                 bool* first) {
  if (!*first) {
    os << ",";
  }
  *first = false;
  os << "\"" << key << "\":" << value;
}

std::string EscapeJson(const std::string& in) {
  std::string out;
  out.reserve(in.size() + 8);
  for (char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string MetricsToJson(const telemetry::MetricsSnapshot& snapshot) {
  std::ostringstream os;
  os << "{\"counters\":{";
  for (size_t i = 0; i < snapshot.counters.size(); ++i) {
    if (i != 0) {
      os << ",";
    }
    os << "\"" << EscapeJson(snapshot.counters[i].first)
       << "\":" << snapshot.counters[i].second;
  }
  os << "},\"gauges\":{";
  for (size_t i = 0; i < snapshot.gauges.size(); ++i) {
    if (i != 0) {
      os << ",";
    }
    os << "\"" << EscapeJson(snapshot.gauges[i].first) << "\":";
    AppendDouble(os, snapshot.gauges[i].second);
  }
  os << "},\"histograms\":{";
  for (size_t i = 0; i < snapshot.histograms.size(); ++i) {
    const telemetry::HistogramSummary& h = snapshot.histograms[i];
    if (i != 0) {
      os << ",";
    }
    os << "\"" << EscapeJson(h.name) << "\":{\"count\":" << h.count
       << ",\"sum\":" << h.sum << ",\"min\":" << h.min
       << ",\"max\":" << h.max << ",\"mean\":";
    AppendDouble(os, h.mean);
    os << ",\"p50\":";
    AppendDouble(os, h.p50);
    os << ",\"p90\":";
    AppendDouble(os, h.p90);
    os << ",\"p99\":";
    AppendDouble(os, h.p99);
    os << "}";
  }
  os << "}}";
  return os.str();
}

std::string ReportToJson(const AnonymizationReport& report) {
  std::ostringstream os;
  os << "{";
  bool first = true;
  AppendField(os, "input_trajectories", report.input_trajectories, &first);
  AppendField(os, "num_clusters", report.num_clusters, &first);
  AppendField(os, "trashed_trajectories", report.trashed_trajectories,
              &first);
  AppendField(os, "trashed_points", report.trashed_points, &first);
  AppendField(os, "discernibility", report.discernibility, &first);
  AppendField(os, "created_points", report.created_points, &first);
  AppendField(os, "deleted_points", report.deleted_points, &first);
  AppendField(os, "total_spatial_translation",
              report.total_spatial_translation, &first);
  AppendField(os, "total_temporal_translation",
              report.total_temporal_translation, &first);
  AppendField(os, "avg_spatial_translation", report.avg_spatial_translation,
              &first);
  AppendField(os, "avg_temporal_translation",
              report.avg_temporal_translation, &first);
  AppendField(os, "omega", report.omega, &first);
  AppendField(os, "ttd", report.ttd, &first);
  AppendField(os, "editing_distortion", report.editing_distortion, &first);
  AppendField(os, "total_distortion", report.total_distortion, &first);
  AppendField(os, "runtime_seconds", report.runtime_seconds, &first);
  AppendField(os, "clustering_rounds", report.clustering_rounds, &first);
  AppendField(os, "final_radius", report.final_radius, &first);
  os << ",\"degraded\":" << (report.degraded ? "true" : "false");
  if (report.degraded) {
    os << ",\"degraded_reason\":\"" << EscapeJson(report.degraded_reason)
       << "\"";
  }
  if (!report.metrics.empty()) {
    os << ",\"metrics\":" << MetricsToJson(report.metrics);
  }
  os << "}";
  return os.str();
}

std::string ResultToJson(const AnonymizationResult& result) {
  std::ostringstream os;
  os << "{\"report\":" << ReportToJson(result.report) << ",\"clusters\":[";
  for (size_t i = 0; i < result.clusters.size(); ++i) {
    const AnonymityCluster& c = result.clusters[i];
    if (i != 0) {
      os << ",";
    }
    os << "{\"pivot\":" << c.pivot << ",\"size\":" << c.members.size()
       << ",\"k\":" << c.k << ",\"delta\":";
    AppendDouble(os, c.delta);
    os << "}";
  }
  os << "],\"trashed_ids\":[";
  for (size_t i = 0; i < result.trashed_ids.size(); ++i) {
    if (i != 0) {
      os << ",";
    }
    os << result.trashed_ids[i];
  }
  os << "]}";
  return os.str();
}

std::string VerificationToJson(const VerificationReport& report) {
  std::ostringstream os;
  os << "{\"ok\":" << (report.ok ? "true" : "false")
     << ",\"clusters_checked\":" << report.clusters_checked
     << ",\"violations\":" << report.violations << ",\"messages\":[";
  for (size_t i = 0; i < report.messages.size(); ++i) {
    if (i != 0) {
      os << ",";
    }
    os << "\"" << EscapeJson(report.messages[i]) << "\"";
  }
  os << "]}";
  return os.str();
}

Status WriteJsonFile(const std::string& json, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot open for writing: " + path);
  }
  out << json << "\n";
  if (!out) {
    return Status::IoError("write failed: " + path);
  }
  return Status::OK();
}

}  // namespace wcop
