// Privacy red-team auditor: what does an adversary actually achieve
// against a published `.wst` release (or the window sequence of a
// continuous publication)? Runs the wcop::attack subsystem end-to-end —
// partial-background-knowledge re-identification, cross-release linkage,
// and the k^{τ,ε} effective-anonymity quantifier — and reports attack
// success next to the distortion the publication paid (DESIGN.md §14).
//
// Single release:    ./wcop_audit --store=published.wst --original=src.wst
// Continuous output: ./wcop_audit --windows-dir=DIR --original=src.wst
//
// Flags:
//   --adversary=weak|moderate|strong   preset (default moderate); individual
//     knobs override: --observations=N --noise=M --pmc-delta=M --tau=SEC
//     --epsilon=M --seed=N
//   --victims=N      cap on re-identification victims / effective-k users
//                    (0 = everyone; cap this on large stores)
//   --samples=N      timestamps per τ-interval in the effective-k test
//   --max-gap=SEC --gate-radius=M   linkage join gates
//   --threads=N      parallelism (JSON output is byte-identical across N)
//   --json-out=FILE  deterministic machine-readable report
//   --metrics-out=FILE  telemetry snapshot (not deterministic across N)
//   --deadline-ms=N --max-distance=N --max-pairs=N   RunContext limits
//   --progress       per-phase progress lines on stderr

#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>

#include "anon/report_json.h"
#include "attack/audit.h"
#include "common/arg_parser.h"
#include "common/stopwatch.h"

using namespace wcop;

namespace {

int Fail(const Status& status) {
  std::cerr << "wcop_audit: " << status << "\n";
  return 1;
}

void PrintReident(const attack::ReidentResult& r) {
  std::printf("re-identification (%zu victims, %zu suppressed)\n",
              r.victims_attacked, r.victims_suppressed);
  std::printf("  top-1 success        %.4f\n", r.top1_success);
  std::printf("  top-5 success        %.4f\n", r.top5_success);
  std::printf("  mean true rank       %.2f\n", r.mean_true_rank);
  std::printf("  mean reciprocal rank %.4f\n", r.mean_reciprocal_rank);
  std::printf("  candidates           %llu scored, %llu pruned of %llu\n",
              static_cast<unsigned long long>(r.candidates_scored),
              static_cast<unsigned long long>(r.candidates_pruned),
              static_cast<unsigned long long>(r.candidates_total));
}

void PrintLinkage(const attack::LinkageResult& r) {
  std::printf("cross-release linkage (%zu windows, %zu boundaries)\n",
              r.windows, r.boundaries);
  std::printf("  joins                %llu correct of %llu attempted "
              "(rate %.4f)\n",
              static_cast<unsigned long long>(r.joins_correct),
              static_cast<unsigned long long>(r.joins_attempted),
              r.linkage_rate);
  std::printf("  trackable users      %zu of %zu (%.4f)\n", r.users_tracked,
              r.users_total, r.trackable_fraction);
}

void PrintEffectiveK(const attack::EffectiveKResult& r) {
  std::printf("effective anonymity k^{tau,eps} (%zu users)\n",
              r.users_measured);
  std::printf("  mean effective k     %.2f\n", r.mean_effective_k);
  std::printf("  violation fraction   %.4f\n", r.violation_fraction);
  for (const attack::PolicyEffectiveK& p : r.policies) {
    std::printf("  policy k=%d delta=%g: %zu users, p5=%g p25=%g p50=%g "
                "mean=%.2f, %zu violations\n",
                p.k, p.delta, p.users, p.p5, p.p25, p.p50, p.mean,
                p.violations);
  }
}

void PrintDistortion(const attack::DistortionSummary& d) {
  std::printf("distortion context (%zu windows, %zu degraded, %zu "
              "skipped)\n",
              d.windows, d.degraded_windows, d.skipped_windows);
  std::printf("  published            %llu of %llu fragments "
              "(%llu suppressed, %llu clusters)\n",
              static_cast<unsigned long long>(d.published_fragments),
              static_cast<unsigned long long>(d.input_fragments),
              static_cast<unsigned long long>(d.suppressed_fragments),
              static_cast<unsigned long long>(d.clusters));
  std::printf("  total ttd            %.1f\n", d.ttd);
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  if (args.Has("help") ||
      (!args.Has("store") && !args.Has("windows-dir"))) {
    std::puts(
        "usage: wcop_audit (--store=FILE.wst | --windows-dir=DIR)\n"
        "         [--original=FILE.wst] [--adversary=weak|moderate|strong]\n"
        "         [--observations=N] [--noise=M] [--pmc-delta=M]\n"
        "         [--tau=SEC] [--epsilon=M] [--seed=N] [--victims=N]\n"
        "         [--samples=N] [--max-gap=SEC] [--gate-radius=M]\n"
        "         [--threads=N] [--json-out=FILE] [--metrics-out=FILE]\n"
        "         [--deadline-ms=N] [--max-distance=N] [--max-pairs=N]\n"
        "         [--progress]");
    return args.Has("help") ? 0 : 2;
  }

  Result<attack::AdversaryModel> preset =
      attack::AdversaryPreset(args.GetString("adversary", "moderate"));
  if (!preset.ok()) {
    return Fail(preset.status());
  }
  attack::AuditOptions options;
  options.adversary = *preset;
  options.adversary.observations = static_cast<size_t>(args.GetInt(
      "observations", static_cast<int64_t>(options.adversary.observations)));
  options.adversary.noise = args.GetDouble("noise", options.adversary.noise);
  options.adversary.pmc_delta =
      args.GetDouble("pmc-delta", options.adversary.pmc_delta);
  options.adversary.tau_seconds =
      args.GetDouble("tau", options.adversary.tau_seconds);
  options.adversary.epsilon =
      args.GetDouble("epsilon", options.adversary.epsilon);
  options.adversary.seed = static_cast<uint64_t>(
      args.GetInt("seed", static_cast<int64_t>(options.adversary.seed)));

  options.published_store = args.GetString("store", "");
  options.windows_dir = args.GetString("windows-dir", "");
  options.original_store = args.GetString("original", "");
  options.victims = static_cast<size_t>(args.GetInt("victims", 0));
  options.effective_k_samples =
      static_cast<size_t>(args.GetInt("samples", 8));
  options.linkage.max_gap_seconds =
      args.GetDouble("max-gap", options.linkage.max_gap_seconds);
  options.linkage.gate_radius =
      args.GetDouble("gate-radius", options.linkage.gate_radius);
  options.threads = static_cast<int>(args.GetInt("threads", 1));

  RunContext context;
  const int64_t deadline_ms = args.GetInt("deadline-ms", 0);
  if (deadline_ms > 0) {
    context.set_deadline_after(std::chrono::milliseconds(deadline_ms));
  }
  ResourceBudget budget;
  budget.max_distance_computations =
      static_cast<uint64_t>(args.GetInt("max-distance", 0));
  budget.max_candidate_pairs =
      static_cast<uint64_t>(args.GetInt("max-pairs", 0));
  context.set_budget(budget);
  options.run_context = &context;

  telemetry::Telemetry telemetry;
  options.telemetry = &telemetry;

  if (args.Has("progress")) {
    options.progress = [](const char* phase, size_t done, size_t total) {
      std::fprintf(stderr, "wcop_audit: %s %zu/%zu\n", phase, done, total);
    };
  }

  Stopwatch stopwatch;
  Result<attack::AuditReport> report = attack::RunAudit(options);
  if (!report.ok()) {
    return Fail(report.status());
  }

  if (report->has_reident) {
    PrintReident(report->reident);
  }
  if (report->has_linkage) {
    PrintLinkage(report->linkage);
  }
  if (report->has_effective_k) {
    PrintEffectiveK(report->effective_k);
  }
  if (report->has_distortion) {
    PrintDistortion(report->distortion);
  }
  std::printf("audit finished in %.2fs\n", stopwatch.ElapsedSeconds());

  // The JSON report is deterministic (no timings, no thread-dependent
  // values): byte-identical across --threads, which CI gates on.
  const std::string json_out = args.GetString("json-out", "");
  if (!json_out.empty()) {
    Status status =
        WriteJsonFile(attack::AuditReportToJson(*report), json_out);
    if (!status.ok()) {
      return Fail(status);
    }
  }
  const std::string metrics_out = args.GetString("metrics-out", "");
  if (!metrics_out.empty()) {
    Status status = WriteJsonFile(
        MetricsToJson(telemetry.metrics().Snapshot()), metrics_out);
    if (!status.ok()) {
      return Fail(status);
    }
  }
  return 0;
}
