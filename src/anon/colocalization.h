#ifndef WCOP_ANON_COLOCALIZATION_H_
#define WCOP_ANON_COLOCALIZATION_H_

#include <vector>

#include "traj/trajectory.h"

namespace wcop {

/// Definition 2: two trajectories defined over the same interval are
/// co-localized w.r.t. delta when their synchronized spatial distance never
/// exceeds delta. Because the library's translation phase aligns every
/// member onto the pivot's timestamps and both sides interpolate linearly,
/// checking at the shared sample timestamps is exact (the distance between
/// two linear interpolants on a common segment is maximized at an endpoint).
///
/// Returns false when the trajectories have different sizes or timestamp
/// sequences (they are not aligned, hence not a translation-phase output).
bool Colocalized(const Trajectory& a, const Trajectory& b, double delta,
                 double epsilon = 1e-6);

/// Definition 3: S is a (k,delta)-anonymity set iff |S| >= k and all pairs
/// are co-localized w.r.t. delta.
bool IsAnonymitySet(const std::vector<const Trajectory*>& members, int k,
                    double delta, double epsilon = 1e-6);

}  // namespace wcop

#endif  // WCOP_ANON_COLOCALIZATION_H_
