#ifndef WCOP_STORE_SHARD_RUNNER_H_
#define WCOP_STORE_SHARD_RUNNER_H_

/// Sharded anonymization pipeline: partition a trajectory store, anonymize
/// every shard independently with WCOP-CT, audit each shard with the
/// verifier, and merge the published outputs and reports (DESIGN.md
/// "Dataset store & sharding").
///
/// Memory stays bounded by the largest shard plus the merged output; with
/// `stream_output_store` set, the merged output streams to disk too and
/// peak memory is just the largest shard — the out-of-core path the
/// shard_scaling bench exercises at 500k+ trajectories.
///
/// Determinism: shards are derived from the store index deterministically
/// (see partitioner.h), each shard preserves source order, per-shard runs
/// are deterministic in `wcop.threads` (PR 4's guarantee), and the merge
/// concatenates in shard order — so the published bytes and the merged
/// report (minus timings) are identical across thread counts, and a
/// single-shard run is byte-identical to the monolithic driver.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "anon/types.h"
#include "anon/verifier.h"
#include "common/result.h"
#include "store/partitioner.h"
#include "store/store_file.h"

namespace wcop {
namespace store {

/// Point-in-time progress of a sharded run, published through
/// ShardRunOptions::progress. `shards_done` counts completed shards
/// (checkpoint-restored ones included) and is monotonically increasing
/// across callbacks; `distance_calls` is the cumulative exact-distance
/// count of the completed shards.
struct ShardProgress {
  size_t shards_done = 0;
  size_t shards_total = 0;
  uint64_t distance_calls = 0;
};

struct ShardRunOptions {
  /// Base driver options. Per-shard copies get their own RunContext slice
  /// (parent deadline + cancellation token shared, resource budget divided
  /// evenly) and their own telemetry sink when `wcop.telemetry` is set.
  WcopOptions wcop;

  PartitionOptions partition;

  /// Directory for the per-shard store files (created if missing).
  /// Empty = derive `<source>.shards/` next to the source store.
  std::string shard_dir;

  /// Audit every shard's output against its input (VerifyAnonymity).
  bool verify_shards = true;

  /// Keep the per-shard store files after the run (default: removed).
  bool keep_shard_stores = false;

  /// When non-empty, each completed shard persists a checkpoint
  /// (`shard_NNNN.ckpt`, snapshot envelope) and a re-run with the same
  /// inputs and options resumes past it instead of re-anonymizing.
  std::string checkpoint_dir;

  /// Concurrent shards (scheduled over wcop::parallel). Values > 1 force
  /// the per-shard `wcop.threads` to 1 so the two parallelism layers do
  /// not oversubscribe. Output is identical for every value.
  int shard_parallelism = 1;

  /// When non-empty, published trajectories stream to this store file in
  /// shard order instead of accumulating in `merged.sanitized` (which then
  /// stays empty). Requires shard_parallelism == 1.
  std::string stream_output_store;

  /// Live progress sink, invoked once with (0, total, 0) before the shard
  /// phase starts and once after each shard completes. Callbacks are
  /// serialized (never concurrent) but may arrive from worker threads;
  /// keep the callback cheap and do not call back into the runner.
  std::function<void(const ShardProgress&)> progress;
};

/// Per-shard outcome retained by the merge.
struct ShardOutcome {
  size_t shard_index = 0;
  size_t input_trajectories = 0;
  AnonymizationReport report;
  VerificationReport verification;
  bool from_checkpoint = false;  ///< restored, not recomputed
};

struct ShardedRunResult {
  /// Concatenated published outputs + summed report. Cluster member
  /// indices are remapped to positions in the concatenated input order of
  /// all shards. `sanitized` is empty when `stream_output_store` is set.
  AnonymizationResult merged;
  Partition partition;
  std::vector<ShardOutcome> shards;
  bool all_verified = true;   ///< every shard audit passed (or audits off)
  size_t resumed_shards = 0;  ///< restored from checkpoints
};

/// Runs the full pipeline over `source`. The source store must validate
/// (Open() succeeded); shard stores are written under `shard_dir`.
Result<ShardedRunResult> RunShardedWcopCt(const TrajectoryStoreReader& source,
                                          const ShardRunOptions& options);

/// Merges `b` into `a` the way the shard merger does: totals summed,
/// averages recomputed from the summed totals, omega / rounds / radius
/// maxed, degraded flags OR-ed, metrics counters summed. Exposed for tests.
void MergeReportInto(AnonymizationReport* a, const AnonymizationReport& b);

}  // namespace store
}  // namespace wcop

#endif  // WCOP_STORE_SHARD_RUNNER_H_
