file(REMOVE_RECURSE
  "CMakeFiles/wcop_traj.dir/dataset.cc.o"
  "CMakeFiles/wcop_traj.dir/dataset.cc.o.d"
  "CMakeFiles/wcop_traj.dir/geojson.cc.o"
  "CMakeFiles/wcop_traj.dir/geojson.cc.o.d"
  "CMakeFiles/wcop_traj.dir/io.cc.o"
  "CMakeFiles/wcop_traj.dir/io.cc.o.d"
  "CMakeFiles/wcop_traj.dir/resample.cc.o"
  "CMakeFiles/wcop_traj.dir/resample.cc.o.d"
  "CMakeFiles/wcop_traj.dir/simplify.cc.o"
  "CMakeFiles/wcop_traj.dir/simplify.cc.o.d"
  "CMakeFiles/wcop_traj.dir/trajectory.cc.o"
  "CMakeFiles/wcop_traj.dir/trajectory.cc.o.d"
  "libwcop_traj.a"
  "libwcop_traj.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wcop_traj.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
