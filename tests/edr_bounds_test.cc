// Property tests for the EDR lower-bound cascade and the vectorized DP
// kernels. The filter-and-refine distance engine is only sound if every
// bound really is a lower bound and every kernel agrees bit-for-bit with
// the reference scalar DP — both are checked here over seeded random
// trajectories (including multi-word lengths for the bit-parallel kernel)
// and over the degenerate corners: empty, single-point, identical, fully
// separated, infinite dt, and zero tolerance.

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <limits>
#include <vector>

#include "common/rng.h"
#include "distance/edr.h"
#include "distance/edr_bounds.h"
#include "distance/edr_kernel.h"
#include "test_util.h"

namespace wcop {
namespace {

using testing_util::MakeLine;

EdrTolerance Tol(double dx, double dy, double dt) {
  EdrTolerance t;
  t.dx = dx;
  t.dy = dy;
  t.dt = dt;
  return t;
}

/// Random trajectory with increasing timestamps; lengths, spatial spread
/// and time steps are drawn so that some pairs overlap heavily, others
/// barely, and a few not at all.
Trajectory RandomTrajectory(Rng* rng, uint64_t id, size_t max_len,
                            double spread) {
  const size_t n = rng->UniformIndex(max_len + 1);
  std::vector<Point> pts;
  pts.reserve(n);
  double t = rng->UniformReal(0, 100);
  const double cx = rng->UniformReal(-spread, spread);
  const double cy = rng->UniformReal(-spread, spread);
  for (size_t i = 0; i < n; ++i) {
    pts.emplace_back(cx + rng->UniformReal(-spread / 4, spread / 4),
                     cy + rng->UniformReal(-spread / 4, spread / 4), t);
    t += rng->UniformReal(0.5, 20.0);
  }
  return Trajectory(id, std::move(pts));
}

EdrTolerance RandomTolerance(Rng* rng) {
  const double dt = (rng->UniformIndex(4) == 0)
                        ? std::numeric_limits<double>::infinity()
                        : rng->UniformReal(1.0, 200.0);
  return Tol(rng->UniformReal(0.5, 30.0), rng->UniformReal(0.5, 30.0), dt);
}

// ---------------------------------------------------------------------------
// Lower bounds never exceed the exact distance; certificates are exact.
// ---------------------------------------------------------------------------

TEST(EdrBoundsTest, EveryBoundIsALowerBoundOnRandomPairs) {
  Rng rng(2024);
  for (int round = 0; round < 400; ++round) {
    const Trajectory a = RandomTrajectory(&rng, 1, 40, 50.0);
    const Trajectory b = RandomTrajectory(&rng, 2, 40, 50.0);
    const EdrTolerance tol = RandomTolerance(&rng);
    const uint32_t exact = EdrOpsScalar(a, b, tol);
    const uint32_t maxlen =
        static_cast<uint32_t>(std::max(a.size(), b.size()));
    const EdrBoundsProfile pa = EdrBoundsProfile::Of(a);
    const EdrBoundsProfile pb = EdrBoundsProfile::Of(b);

    EXPECT_LE(EdrLengthLowerBound(pa, pb), exact) << "round " << round;

    if (EdrSeparated(pa, pb, tol)) {
      // Separation is not merely a bound: it pins the exact distance.
      EXPECT_EQ(exact, maxlen) << "round " << round;
    }

    const EdrEnvelopeBound env = EdrEnvelopeLowerBound(a, pa, b, pb, tol);
    EXPECT_LE(env.bound, exact) << "round " << round;
    if (env.exact) {
      EXPECT_EQ(env.bound, exact) << "round " << round;
    }
  }
}

TEST(EdrBoundsTest, SeparationFiresOnDisjointGeometry) {
  // Far apart in space (tight dt irrelevant).
  const Trajectory a = MakeLine(1, 0, 0, 1, 0, 8);
  const Trajectory b = MakeLine(2, 10000, 10000, 1, 0, 12);
  const EdrBoundsProfile pa = EdrBoundsProfile::Of(a);
  const EdrBoundsProfile pb = EdrBoundsProfile::Of(b);
  EXPECT_TRUE(EdrSeparated(pa, pb, Tol(5, 5, 1e9)));
  EXPECT_EQ(EdrOpsScalar(a, b, Tol(5, 5, 1e9)), 12u);

  // Same place, hours apart in time: only finite dt separates.
  const Trajectory c = MakeLine(3, 0, 0, 1, 0, 8, 1.0, 0.0);
  const Trajectory e = MakeLine(4, 0, 0, 1, 0, 8, 1.0, 50000.0);
  const EdrBoundsProfile pc = EdrBoundsProfile::Of(c);
  const EdrBoundsProfile pe = EdrBoundsProfile::Of(e);
  EXPECT_TRUE(EdrSeparated(pc, pe, Tol(1e9, 1e9, 600)));
  EXPECT_FALSE(EdrSeparated(
      pc, pe, Tol(1e9, 1e9, std::numeric_limits<double>::infinity())));
}

TEST(EdrBoundsTest, EnvelopeIsExactWhenNothingMatches) {
  // Interleaved in time but spatially disjoint: separation fires on the
  // spatial axis *and* the envelope independently certifies zero matches.
  const Trajectory a = MakeLine(1, 0, 0, 1, 0, 10);
  const Trajectory b = MakeLine(2, 5000, 0, 1, 0, 6);
  const EdrBoundsProfile pa = EdrBoundsProfile::Of(a);
  const EdrBoundsProfile pb = EdrBoundsProfile::Of(b);
  const EdrTolerance tol = Tol(2, 2, 3);
  const EdrEnvelopeBound env = EdrEnvelopeLowerBound(a, pa, b, pb, tol);
  EXPECT_TRUE(env.exact);
  EXPECT_EQ(env.bound, 10u);
  EXPECT_EQ(EdrOpsScalar(a, b, tol), 10u);
}

TEST(EdrBoundsTest, CornersBehave) {
  const Trajectory empty;
  const Trajectory one(1, std::vector<Point>{Point(1, 2, 3)});
  const Trajectory line = MakeLine(2, 0, 0, 1, 0, 9);
  const EdrTolerance tol = Tol(1, 1, 1);
  const EdrBoundsProfile p_empty = EdrBoundsProfile::Of(empty);
  const EdrBoundsProfile p_one = EdrBoundsProfile::Of(one);
  const EdrBoundsProfile p_line = EdrBoundsProfile::Of(line);

  // Empty vs anything: bound = exact = other length.
  EXPECT_EQ(EdrLengthLowerBound(p_empty, p_line), 9u);
  EXPECT_EQ(EdrOpsScalar(empty, line, tol), 9u);
  EXPECT_TRUE(EdrSeparated(p_empty, p_line, tol));

  // Identical trajectories: every bound must be zero-compatible.
  EXPECT_EQ(EdrLengthLowerBound(p_line, p_line), 0u);
  EXPECT_FALSE(EdrSeparated(p_line, p_line, tol));
  const EdrEnvelopeBound env =
      EdrEnvelopeLowerBound(line, p_line, line, p_line, tol);
  EXPECT_LE(env.bound, EdrOpsScalar(line, line, tol));
  EXPECT_EQ(EdrOpsScalar(line, line, tol), 0u);

  // Single points, matching and not.
  EXPECT_EQ(EdrOpsScalar(one, one, tol), 0u);
  const Trajectory far(3, std::vector<Point>{Point(100, 2, 3)});
  EXPECT_EQ(EdrOpsScalar(one, far, tol), 1u);
  EXPECT_TRUE(EdrSeparated(p_one, EdrBoundsProfile::Of(far), tol));
}

// ---------------------------------------------------------------------------
// Kernel agreement: bit-parallel and banded are bit-identical to scalar.
// ---------------------------------------------------------------------------

TEST(EdrKernelTest, BitParallelMatchesScalarAcrossWordBoundaries) {
  Rng rng(7);
  // Lengths straddling 64 and 128 exercise the multi-block carry chain.
  const size_t lengths[] = {0, 1, 5, 31, 63, 64, 65, 100, 127, 128, 130, 200};
  for (size_t la : lengths) {
    for (size_t lb : lengths) {
      std::vector<Point> pa, pb;
      double t = 0;
      for (size_t i = 0; i < la; ++i) {
        pa.emplace_back(rng.UniformReal(0, 20), rng.UniformReal(0, 20), t);
        t += rng.UniformReal(0.5, 3.0);
      }
      t = rng.UniformReal(0, 30);
      for (size_t i = 0; i < lb; ++i) {
        pb.emplace_back(rng.UniformReal(0, 20), rng.UniformReal(0, 20), t);
        t += rng.UniformReal(0.5, 3.0);
      }
      const Trajectory a(1, pa), b(2, pb);
      const EdrTolerance tol = Tol(4, 4, 10);
      EXPECT_EQ(EdrOpsBitParallel(a, b, tol), EdrOpsScalar(a, b, tol))
          << la << "x" << lb;
    }
  }
}

TEST(EdrKernelTest, BitParallelMatchesScalarOnRandomPairs) {
  Rng rng(99);
  for (int round = 0; round < 300; ++round) {
    const Trajectory a = RandomTrajectory(&rng, 1, 150, 40.0);
    const Trajectory b = RandomTrajectory(&rng, 2, 150, 40.0);
    const EdrTolerance tol = RandomTolerance(&rng);
    EXPECT_EQ(EdrOpsBitParallel(a, b, tol), EdrOpsScalar(a, b, tol))
        << "round " << round;
  }
}

TEST(EdrKernelTest, BandedIsExactOrCertifiesTheBand) {
  Rng rng(31);
  for (int round = 0; round < 300; ++round) {
    const Trajectory a = RandomTrajectory(&rng, 1, 50, 40.0);
    const Trajectory b = RandomTrajectory(&rng, 2, 50, 40.0);
    const EdrTolerance tol = RandomTolerance(&rng);
    const uint32_t exact = EdrOpsScalar(a, b, tol);
    const uint32_t band = static_cast<uint32_t>(rng.UniformIndex(60));
    const EdrKernelResult r = EdrOpsBanded(a, b, tol, band);
    if (r.exact) {
      EXPECT_EQ(r.ops, exact) << "round " << round << " band " << band;
    } else {
      // Abandoning is only legal when the true distance exceeds the band,
      // and the returned value must still be a valid lower bound.
      EXPECT_GT(exact, band) << "round " << round << " band " << band;
      EXPECT_LE(r.ops, exact) << "round " << round << " band " << band;
    }
    // A band at or above max(|a|,|b|) can never abandon.
    const uint32_t full =
        static_cast<uint32_t>(std::max(a.size(), b.size()));
    const EdrKernelResult wide = EdrOpsBanded(a, b, tol, full);
    EXPECT_TRUE(wide.exact);
    EXPECT_EQ(wide.ops, exact);
  }
}

TEST(EdrKernelTest, DispatchAgreesWithScalarAtFullBand) {
  Rng rng(55);
  for (int round = 0; round < 300; ++round) {
    const Trajectory a = RandomTrajectory(&rng, 1, 120, 50.0);
    const Trajectory b = RandomTrajectory(&rng, 2, 120, 50.0);
    const EdrTolerance tol = RandomTolerance(&rng);
    const uint32_t full =
        static_cast<uint32_t>(std::max(a.size(), b.size()));
    const EdrKernelResult r = EdrOps(a, b, tol, full);
    EXPECT_TRUE(r.exact) << "round " << round;
    EXPECT_EQ(r.ops, EdrOpsScalar(a, b, tol)) << "round " << round;
  }
}

TEST(EdrKernelTest, DispatchWithNarrowBandNeverUnderestimates) {
  Rng rng(77);
  for (int round = 0; round < 200; ++round) {
    const Trajectory a = RandomTrajectory(&rng, 1, 80, 50.0);
    const Trajectory b = RandomTrajectory(&rng, 2, 80, 50.0);
    const EdrTolerance tol = RandomTolerance(&rng);
    const uint32_t exact = EdrOpsScalar(a, b, tol);
    const uint32_t band = static_cast<uint32_t>(rng.UniformIndex(30));
    const EdrKernelResult r = EdrOps(a, b, tol, band);
    if (r.exact) {
      EXPECT_EQ(r.ops, exact) << "round " << round;
    } else {
      EXPECT_LE(r.ops, exact) << "round " << round;
      EXPECT_GT(exact, band) << "round " << round;
    }
  }
}

TEST(EdrKernelTest, LegacyEntryPointStillExact) {
  // EdrDistance routes through the kernel dispatch; spot-check it against
  // the scalar kernel on shapes around the dispatch thresholds.
  Rng rng(13);
  for (int round = 0; round < 100; ++round) {
    const Trajectory a = RandomTrajectory(&rng, 1, 90, 40.0);
    const Trajectory b = RandomTrajectory(&rng, 2, 90, 40.0);
    const EdrTolerance tol = RandomTolerance(&rng);
    EXPECT_DOUBLE_EQ(EdrDistance(a, b, tol),
                     static_cast<double>(EdrOpsScalar(a, b, tol)))
        << "round " << round;
  }
}

TEST(EdrKernelTest, ZeroToleranceAndInfiniteDt) {
  // Zero spatial tolerance: only exactly coincident points match.
  const Trajectory a = MakeLine(1, 0, 0, 1, 0, 70);
  const Trajectory b = MakeLine(2, 0, 0, 1, 0, 70);
  const EdrTolerance zero = Tol(0, 0, 0);
  EXPECT_EQ(EdrOpsScalar(a, b, zero), 0u);
  EXPECT_EQ(EdrOpsBitParallel(a, b, zero), 0u);

  // Infinite dt disables the windowed mask build; results must not change.
  const EdrTolerance inf_dt =
      Tol(2, 2, std::numeric_limits<double>::infinity());
  EXPECT_EQ(EdrOpsBitParallel(a, b, inf_dt), EdrOpsScalar(a, b, inf_dt));
}

}  // namespace
}  // namespace wcop
