#ifndef WCOP_GEO_BOUNDING_BOX_H_
#define WCOP_GEO_BOUNDING_BOX_H_

#include <algorithm>
#include <cmath>
#include <limits>

#include "geo/point.h"

namespace wcop {

/// Axis-aligned spatial bounding box (time is not part of the box).
///
/// Used for dataset statistics — radius(D) in Table 2 is the half-diagonal of
/// the minimum bounding box of the entire space covered by the dataset.
class BoundingBox {
 public:
  BoundingBox()
      : min_x_(std::numeric_limits<double>::infinity()),
        min_y_(std::numeric_limits<double>::infinity()),
        max_x_(-std::numeric_limits<double>::infinity()),
        max_y_(-std::numeric_limits<double>::infinity()) {}

  BoundingBox(double min_x, double min_y, double max_x, double max_y)
      : min_x_(min_x), min_y_(min_y), max_x_(max_x), max_y_(max_y) {}

  /// True until the first Extend().
  bool empty() const { return min_x_ > max_x_ || min_y_ > max_y_; }

  /// Grows the box to cover `p`.
  void Extend(const Point& p) {
    min_x_ = std::min(min_x_, p.x);
    min_y_ = std::min(min_y_, p.y);
    max_x_ = std::max(max_x_, p.x);
    max_y_ = std::max(max_y_, p.y);
  }

  /// Grows the box to cover `other`.
  void Extend(const BoundingBox& other) {
    if (other.empty()) {
      return;
    }
    min_x_ = std::min(min_x_, other.min_x_);
    min_y_ = std::min(min_y_, other.min_y_);
    max_x_ = std::max(max_x_, other.max_x_);
    max_y_ = std::max(max_y_, other.max_y_);
  }

  bool Contains(const Point& p) const {
    return !empty() && p.x >= min_x_ && p.x <= max_x_ && p.y >= min_y_ &&
           p.y <= max_y_;
  }

  double width() const { return empty() ? 0.0 : max_x_ - min_x_; }
  double height() const { return empty() ? 0.0 : max_y_ - min_y_; }

  /// Half the diagonal length — the radius(D) statistic of Table 2.
  double HalfDiagonal() const {
    if (empty()) {
      return 0.0;
    }
    return 0.5 * std::sqrt(width() * width() + height() * height());
  }

  double min_x() const { return min_x_; }
  double min_y() const { return min_y_; }
  double max_x() const { return max_x_; }
  double max_y() const { return max_y_; }

 private:
  double min_x_, min_y_, max_x_, max_y_;
};

}  // namespace wcop

#endif  // WCOP_GEO_BOUNDING_BOX_H_
