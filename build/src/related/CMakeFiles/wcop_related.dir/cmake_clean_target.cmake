file(REMOVE_RECURSE
  "libwcop_related.a"
)
