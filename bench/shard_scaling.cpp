// Out-of-core scaling bench: anonymize a 500k-trajectory synthetic corpus
// through the sharded pipeline under a fixed memory budget the monolithic
// driver cannot honour.
//
// The corpus is generated tile by tile (independent far-apart synthetic
// cities, the shape of real multi-region trajectory releases) and streamed
// straight into a trajectory store — it is never materialized in memory.
// The sharded pipeline partitions the store index, anonymizes shard by
// shard, audits every shard, and streams the published output to a second
// store; peak RSS stays bounded by the index plus the largest shard.
//
// The monolithic comparison cannot be run at 500k: WCOP-CT's clustering is
// quadratic in the dataset (2.5e11 pair distances at 500k), so the bench
// times monolithic runs on increasing prefixes of the same corpus, fits
// t = c * n^2, and reports the extrapolated full-scale time. The bench
// fails (non-zero exit) if peak RSS exceeds --rss-budget-mb or the
// extrapolated monolithic time is not at least 4x the sharded wall time.
//
// Usage:
//   ./shard_scaling [--trajectories=500000] [--rss-budget-mb=2048]
//                   [--store=shard_scaling.wst] [--keep-store]
//                   [--json-out=FILE]

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "anon/wcop.h"
#include "bench_util.h"
#include "common/arg_parser.h"
#include "common/stopwatch.h"
#include "data/synthetic.h"
#include "store/partitioner.h"
#include "store/shard_runner.h"
#include "store/store_file.h"

using namespace wcop;
using bench::JsonOut;

namespace {

constexpr size_t kPerTile = 125;       // trajectories per synthetic city
constexpr size_t kPointsPerTraj = 8;   // short tracks keep EDR cheap
constexpr double kTileSpacing = 200000.0;  // metres between city origins

// Peak resident set (VmHWM) in MiB from /proc/self/status; 0 off Linux.
double PeakRssMb() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      return std::strtod(line.c_str() + 6, nullptr) / 1024.0;
    }
  }
  return 0.0;
}

SyntheticOptions TileOptions(uint64_t seed) {
  SyntheticOptions options;
  options.seed = seed;
  options.num_users = kPerTile / 3 + 1;
  options.num_trajectories = kPerTile;
  options.points_per_trajectory = kPointsPerTraj;
  options.sampling_interval = 60.0;
  options.region_half_diagonal = 6000.0;
  options.num_hubs = 5;
  options.num_routes = 4;
  options.dataset_duration_days = 10.0;
  return options;
}

// Generates tile `tile` of the corpus (the same derivation for the
// streaming writer and the monolithic-prefix runs, so both paths see the
// exact same data).
Result<Dataset> MakeTile(size_t tile, size_t grid_dim) {
  Dataset city;
  WCOP_ASSIGN_OR_RETURN(
      city, GenerateSyntheticGeoLife(
                TileOptions(7 + 0x9e3779b97f4a7c15ull * (tile + 1))));
  Rng rng(1000 + tile);
  AssignUniformRequirements(&city, 2, 5, 10.0, 200.0, &rng);
  const double dx = static_cast<double>(tile % grid_dim) * kTileSpacing;
  const double dy = static_cast<double>(tile / grid_dim) * kTileSpacing;
  const int64_t id_base = static_cast<int64_t>(tile * kPerTile);
  for (Trajectory& t : city.mutable_trajectories()) {
    for (Point& p : t.mutable_points()) {
      p.x += dx;
      p.y += dy;
    }
    t.set_id(id_base + t.id());
    t.set_object_id(id_base + t.object_id());
  }
  return city;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const size_t total =
      static_cast<size_t>(args.GetInt("trajectories", 500000));
  const double rss_budget_mb = args.GetDouble("rss-budget-mb", 2048.0);
  const std::string store_path =
      args.GetString("store", "shard_scaling.wst");
  const std::string out_store_path = store_path + ".out";
  JsonOut json_out(args);

  const size_t tiles = (total + kPerTile - 1) / kPerTile;
  size_t grid_dim = 1;
  while (grid_dim * grid_dim < tiles) {
    ++grid_dim;
  }

  bench::PrintHeader("Out-of-core sharded scaling (WCOP-CT)");
  std::printf("corpus: %zu trajectories (%zu tiles x %zu, %zu points each), "
              "RSS budget %.0f MiB\n",
              tiles * kPerTile, tiles, kPerTile, kPointsPerTraj,
              rss_budget_mb);

  // ---- Stream-generate the corpus into the store: one tile in memory. --
  Stopwatch gen_watch;
  {
    Result<store::TrajectoryStoreWriter> writer =
        store::TrajectoryStoreWriter::Create(store_path);
    if (!writer.ok()) {
      std::fprintf(stderr, "store create failed: %s\n",
                   writer.status().ToString().c_str());
      return 1;
    }
    for (size_t tile = 0; tile < tiles; ++tile) {
      Result<Dataset> city = MakeTile(tile, grid_dim);
      if (!city.ok()) {
        std::fprintf(stderr, "tile %zu failed: %s\n", tile,
                     city.status().ToString().c_str());
        return 1;
      }
      for (const Trajectory& t : city->trajectories()) {
        Status s = writer->Append(t);
        if (!s.ok()) {
          std::fprintf(stderr, "append failed: %s\n", s.ToString().c_str());
          return 1;
        }
      }
      if ((tile + 1) % 200 == 0) {
        std::printf("  generated %zu / %zu tiles (%.1fs, RSS %.0f MiB)\n",
                    tile + 1, tiles, gen_watch.ElapsedSeconds(),
                    PeakRssMb());
      }
    }
    Status s = writer->Finish();
    if (!s.ok()) {
      std::fprintf(stderr, "store finish failed: %s\n",
                   s.ToString().c_str());
      return 1;
    }
  }
  const double gen_seconds = gen_watch.ElapsedSeconds();
  std::printf("generated + stored in %.1fs (%ju bytes)\n", gen_seconds,
              static_cast<uintmax_t>(
                  std::filesystem::file_size(store_path)));

  Result<store::TrajectoryStoreReader> reader =
      store::TrajectoryStoreReader::Open(store_path);
  if (!reader.ok()) {
    std::fprintf(stderr, "store open failed: %s\n",
                 reader.status().ToString().c_str());
    return 1;
  }

  // ---- Sharded run: stream the published output to a second store. -----
  telemetry::Telemetry telemetry;
  store::ShardRunOptions run;
  run.wcop.seed = 7;
  run.wcop.threads = 1;
  run.wcop.telemetry = &telemetry;
  run.partition.target_shard_size = 256;
  run.partition.max_shard_size = 512;
  run.stream_output_store = out_store_path;
  Stopwatch shard_watch;
  Result<store::ShardedRunResult> sharded = RunShardedWcopCt(*reader, run);
  const double sharded_seconds = shard_watch.ElapsedSeconds();
  if (!sharded.ok()) {
    std::fprintf(stderr, "sharded run failed: %s\n",
                 sharded.status().ToString().c_str());
    return 1;
  }
  const double peak_rss_mb = PeakRssMb();
  std::printf("sharded: %zu shards, %.1fs, verified %s, peak RSS %.0f MiB "
              "(budget %.0f)\n",
              sharded->partition.shards.size(), sharded_seconds,
              sharded->all_verified ? "clean" : "FAILED", peak_rss_mb,
              rss_budget_mb);
  if (!sharded->all_verified) {
    std::fprintf(stderr, "FAIL: a shard failed its anonymity audit\n");
    return 1;
  }

  // ---- Monolithic prefixes: time t(n), fit t = c * n^2, extrapolate. ---
  double fit_c = 0.0;
  size_t fit_samples = 0;
  std::vector<std::pair<size_t, double>> prefix_times;
  for (const size_t prefix : {size_t{2000}, size_t{4000}, size_t{8000}}) {
    if (prefix > reader->size()) {
      break;
    }
    Dataset subset;
    for (size_t i = 0; i < prefix; ++i) {
      Result<Trajectory> t = reader->Read(i);
      if (!t.ok()) {
        std::fprintf(stderr, "read failed: %s\n",
                     t.status().ToString().c_str());
        return 1;
      }
      subset.Add(std::move(*t));
    }
    WcopOptions mono;
    mono.seed = 7;
    mono.threads = 1;
    Stopwatch watch;
    Result<AnonymizationResult> r = RunWcopCt(subset, mono);
    const double seconds = watch.ElapsedSeconds();
    if (!r.ok()) {
      std::fprintf(stderr, "monolithic %zu failed: %s\n", prefix,
                   r.status().ToString().c_str());
      return 1;
    }
    std::printf("monolithic prefix %zu: %.2fs\n", prefix, seconds);
    prefix_times.emplace_back(prefix, seconds);
    fit_c += seconds / (static_cast<double>(prefix) *
                        static_cast<double>(prefix));
    ++fit_samples;
  }
  if (fit_samples == 0) {
    std::fprintf(stderr, "corpus too small for the monolithic fit\n");
    return 1;
  }
  fit_c /= static_cast<double>(fit_samples);
  const double n = static_cast<double>(reader->size());
  const double mono_extrapolated = fit_c * n * n;
  const double speedup = mono_extrapolated / sharded_seconds;
  std::printf("monolithic extrapolation (t = c*n^2): %.0fs at n=%zu — "
              "%.0fx the sharded wall time\n",
              mono_extrapolated, reader->size(), speedup);

  for (const auto& [prefix, seconds] : prefix_times) {
    json_out.Add("shard_scaling/monolithic_prefix",
                 {{"trajectories", static_cast<double>(prefix)},
                  {"points", static_cast<double>(kPointsPerTraj)}},
                 seconds, {});
  }
  json_out.Add(
      "shard_scaling/sharded",
      {{"trajectories", n},
       {"points", static_cast<double>(kPointsPerTraj)},
       {"shards", static_cast<double>(sharded->partition.shards.size())},
       {"published",
        static_cast<double>(sharded->merged.report.input_trajectories -
                            sharded->merged.report.trashed_trajectories)},
       {"clusters", static_cast<double>(sharded->merged.report.num_clusters)},
       {"all_verified", sharded->all_verified ? 1.0 : 0.0},
       {"generate_seconds", gen_seconds},
       {"peak_rss_mb", peak_rss_mb},
       {"rss_budget_mb", rss_budget_mb},
       {"monolithic_extrapolated_seconds", mono_extrapolated},
       {"speedup_vs_monolithic", speedup}},
      sharded_seconds, sharded->merged.report.metrics);
  if (!json_out.Flush()) {
    return 1;
  }

  if (!args.GetBool("keep-store", false)) {
    std::filesystem::remove(store_path);
    std::filesystem::remove(out_store_path);
  }
  if (peak_rss_mb > rss_budget_mb) {
    std::fprintf(stderr, "FAIL: peak RSS %.0f MiB exceeds budget %.0f MiB\n",
                 peak_rss_mb, rss_budget_mb);
    return 1;
  }
  if (speedup < 4.0) {
    std::fprintf(stderr, "FAIL: sharded speedup %.1fx below 4x\n", speedup);
    return 1;
  }
  std::printf("PASS: %zu trajectories sharded within %.0f MiB; monolithic "
              "infeasible at this scale (extrapolated %.0fx slower)\n",
              reader->size(), rss_budget_mb, speedup);
  return 0;
}
