file(REMOVE_RECURSE
  "libwcop_mod.a"
)
