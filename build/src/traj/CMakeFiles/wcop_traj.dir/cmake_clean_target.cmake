file(REMOVE_RECURSE
  "libwcop_traj.a"
)
