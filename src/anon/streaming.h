#ifndef WCOP_ANON_STREAMING_H_
#define WCOP_ANON_STREAMING_H_

#include <cstdint>
#include <string>
#include <vector>

#include "anon/types.h"
#include "common/result.h"
#include "traj/dataset.h"

namespace wcop {

/// Windowed (streaming-style) publication: a provider that releases data
/// continuously cannot wait for the full history — it anonymizes and
/// publishes one time window at a time. This driver partitions the dataset
/// into fixed windows, runs WCOP-CT independently per window (each
/// trajectory contributes the sub-trajectory falling inside the window,
/// inheriting its (k_i, delta_i)), and concatenates the sanitized windows.
///
/// The per-window guarantee is the full personalized (K,Delta)-anonymity
/// within that window; the deliberate trade-off (measurable through the
/// report) is that window boundaries fragment trajectories, so total
/// distortion and trash are typically higher than one offline pass — the
/// price of bounded publication latency.
struct StreamingOptions {
  double window_seconds = 3600.0;
  /// Window fragments with fewer points than this are dropped (counted as
  /// trashed points in the report).
  size_t min_fragment_points = 2;
  WcopOptions wcop;  ///< per-window anonymization settings
};

struct StreamingWindowSummary {
  double window_start = 0.0;
  size_t input_fragments = 0;
  size_t published_fragments = 0;
  size_t clusters = 0;
  double ttd = 0.0;
  bool skipped = false;  ///< window unsatisfiable -> fully suppressed
};

struct StreamingResult {
  /// All sanitized window fragments (ids are fresh; parent_id links each
  /// fragment to its source trajectory).
  Dataset sanitized;
  std::vector<StreamingWindowSummary> windows;
  size_t total_clusters = 0;
  size_t suppressed_fragments = 0;
  double total_ttd = 0.0;
  /// Set when the run context tripped and `wcop.allow_partial_results`
  /// turned the trip into early termination: windows processed so far are
  /// published (each individually verified-safe), the rest are suppressed.
  bool degraded = false;
  std::string degraded_reason;

  /// Final metrics snapshot over the entire stream (all windows), when a
  /// telemetry sink was attached through `StreamingOptions::wcop`.
  telemetry::MetricsSnapshot metrics;
};

Result<StreamingResult> RunStreamingWcop(const Dataset& dataset,
                                         const StreamingOptions& options = {});

}  // namespace wcop

#endif  // WCOP_ANON_STREAMING_H_
