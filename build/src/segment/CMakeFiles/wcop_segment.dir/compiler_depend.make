# Empty compiler generated dependencies file for wcop_segment.
# This may be replaced when dependencies are built.
