// Client CLI for the wcop_serve daemon: submit anonymization jobs, poll
// their state, read health/metrics, and trigger shutdown — all over the
// daemon's unix socket.
//
// Usage:
//   ./wcop_submit --socket=PATH --name=run1 --input=data.wst [--output=o.csv]
//                 [--tenant=alice] [--k=5 --delta=250] [--shards=4]
//                 [--deadline-ms=60000] [--budget=N] [--allow-partial]
//                 [--seed=7] [--wait --wait-ms=600000] [--follow]
//   ./wcop_submit --socket=PATH --job=ID [--wait | --follow]
//   ./wcop_submit --socket=PATH --jobs
//   ./wcop_submit --socket=PATH --trace=ID
//   ./wcop_submit --socket=PATH --health | --metrics [--metrics-format=text]
//   ./wcop_submit --socket=PATH --shutdown=drain|now
//
// --follow polls the job and prints each state transition (queued ->
// running -> done/failed) with elapsed time and live shard progress.
// --trace prints the job's Chrome trace JSON (load it in a trace viewer).
//
// Exit code: 0 on success (job done), 2 on backpressure (retry later),
// 3 on a failed/deadline-exceeded job, 1 on any other error.

#include <chrono>
#include <cstdio>
#include <iostream>
#include <string>
#include <thread>

#include "common/arg_parser.h"
#include "common/log.h"
#include "common/retry.h"
#include "server/client.h"

using namespace wcop;
using namespace wcop::server;

namespace {

void PrintRecord(const JobRecord& record) {
  std::printf("job %lld '%s': %s (attempts %llu)\n",
              static_cast<long long>(record.id), record.spec.name.c_str(),
              std::string(JobStateName(record.state)).c_str(),
              static_cast<unsigned long long>(record.attempts));
  if (!record.trace_id.empty()) {
    std::printf("  trace: %s\n", record.trace_id.c_str());
  }
  if (record.state == JobState::kDone) {
    std::printf(
        "  published %llu, suppressed %llu, clusters %llu, distortion "
        "%.4g%s\n",
        static_cast<unsigned long long>(record.outcome.published),
        static_cast<unsigned long long>(record.outcome.suppressed),
        static_cast<unsigned long long>(record.outcome.clusters),
        record.outcome.total_distortion,
        record.outcome.degraded ? " [degraded]" : "");
    std::printf("  output: %s\n", record.spec.kind == "continuous"
                                      ? record.spec.output_dir.c_str()
                                      : record.spec.output_csv.c_str());
    if (record.outcome.degraded) {
      std::printf("  degraded: %s\n",
                  record.outcome.degraded_reason.c_str());
    }
  } else if (record.state == JobState::kFailed) {
    std::printf("  error: %s\n", record.outcome.error.c_str());
  }
}

int TerminalExitCode(const JobRecord& record) {
  return record.state == JobState::kDone ? 0 : 3;
}

/// --follow: poll the job, printing one line per state transition
/// (queued -> running -> done) and per shard-progress advance, each
/// stamped with elapsed time since the follow began.
///
/// A follow outlives daemon restarts: transport failures (connection
/// refused / reset while the daemon is down — surfaced as kIoError) are
/// retried with bounded exponential backoff instead of aborting, because
/// the job itself survives the restart through the ledger. Only after
/// `reconnect.max_attempts` consecutive failures does the follow give up —
/// the signal that the daemon is gone rather than restarting.
Result<JobRecord> FollowJob(const ServiceClient& client, int64_t id,
                            std::chrono::milliseconds timeout) {
  const auto start = std::chrono::steady_clock::now();
  const auto deadline = start + timeout;
  RetryPolicy reconnect;
  reconnect.max_attempts = 8;
  reconnect.initial_backoff = std::chrono::milliseconds(100);
  reconnect.max_backoff = std::chrono::seconds(5);
  JobState last_state = JobState::kQueued;
  bool printed_any = false;
  uint64_t last_done = 0;
  int down_attempts = 0;
  while (true) {
    Result<JobRecord> record = client.GetJob(id);
    if (!record.ok()) {
      if (record.status().code() != StatusCode::kIoError ||
          down_attempts >= reconnect.max_attempts ||
          std::chrono::steady_clock::now() >= deadline) {
        return record.status();
      }
      const auto pause = BackoffForAttempt(reconnect, down_attempts);
      std::printf("[reconnect] daemon unreachable (%s); retry %d/%d in "
                  "%.1fs\n",
                  record.status().ToString().c_str(), down_attempts + 1,
                  reconnect.max_attempts,
                  std::chrono::duration<double>(pause).count());
      std::fflush(stdout);
      std::this_thread::sleep_for(pause);
      ++down_attempts;
      continue;
    }
    down_attempts = 0;  // the daemon answered; the budget resets
    const double elapsed =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      start)
            .count();
    const bool transition = !printed_any || record->state != last_state;
    const bool progressed = record->state == JobState::kRunning &&
                            record->progress.shards_done != last_done;
    if (transition || progressed) {
      std::printf("[%7.2fs] job %lld %s", elapsed,
                  static_cast<long long>(id),
                  std::string(JobStateName(record->state)).c_str());
      if (record->progress.shards_total > 0 &&
          record->state != JobState::kQueued) {
        std::printf("  shards %llu/%llu  distance_calls %llu",
                    static_cast<unsigned long long>(
                        record->progress.shards_done),
                    static_cast<unsigned long long>(
                        record->progress.shards_total),
                    static_cast<unsigned long long>(
                        record->progress.distance_calls));
        if (record->state == JobState::kRunning &&
            record->progress.eta_seconds > 0) {
          std::printf("  eta %.1fs", record->progress.eta_seconds);
        }
      }
      std::printf("\n");
      std::fflush(stdout);
      printed_any = true;
      last_state = record->state;
      last_done = record->progress.shards_done;
    }
    if (record->state == JobState::kDone ||
        record->state == JobState::kFailed) {
      return record;
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      return Status::DeadlineExceeded(
          "job " + std::to_string(id) + " still " +
          std::string(JobStateName(record->state)) + " after follow timeout");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
  }
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  if (args.Has("help") || !args.Has("socket")) {
    std::puts(
        "wcop_submit --socket=PATH\n"
        "  --name=N --input=FILE.wst [--output=FILE.csv] [--tenant=T]\n"
        "    [--k=K --delta=D] [--shards=S] [--deadline-ms=MS] "
        "[--budget=B]\n"
        "    [--allow-partial] [--seed=7] [--wait] [--wait-ms=600000]\n"
        "    [--kind=continuous --window-seconds=W --output-dir=DIR]\n"
        "    [--kind=audit [--original=FILE.wst | --windows-dir=DIR]\n"
        "      [--adversary=weak|moderate|strong] [--victims=N]]\n"
        "  --job=ID [--wait | --follow]  |  --jobs  |  --trace=ID\n"
        "  --health  |  --metrics [--metrics-format=text]  |  "
        "--shutdown=drain|now\n"
        "  [--log-level=info] [--log-format=text|json] [--log-out=PATH]");
    return args.Has("help") ? 0 : 1;
  }
  if (!log::ConfigureFromArgs(args, "wcop_submit")) {
    return 1;
  }
  const ServiceClient client(args.GetString("socket", ""));
  const bool wait = args.GetBool("wait", false);
  const bool follow = args.GetBool("follow", false);
  const auto wait_ms =
      std::chrono::milliseconds(args.GetInt("wait-ms", 600000));

  if (args.Has("health")) {
    Result<std::string> health = client.Health();
    if (!health.ok()) {
      std::cerr << health.status() << "\n";
      return 1;
    }
    std::fputs(health->c_str(), stdout);
    return 0;
  }
  if (args.Has("metrics")) {
    Result<std::string> metrics =
        client.Metrics(args.GetString("metrics-format", "") == "text");
    if (!metrics.ok()) {
      std::cerr << metrics.status() << "\n";
      return 1;
    }
    std::fputs(metrics->c_str(), stdout);
    return 0;
  }
  if (args.Has("jobs")) {
    Result<std::vector<JobRecord>> jobs = client.ListJobs();
    if (!jobs.ok()) {
      std::cerr << jobs.status() << "\n";
      return 1;
    }
    for (const JobRecord& record : *jobs) {
      PrintRecord(record);
    }
    return 0;
  }
  if (args.Has("trace")) {
    Result<std::string> trace = client.Trace(args.GetInt("trace", 0));
    if (!trace.ok()) {
      std::cerr << trace.status() << "\n";
      return 1;
    }
    std::fputs(trace->c_str(), stdout);
    return 0;
  }
  if (args.Has("shutdown")) {
    const Status s =
        client.Shutdown(args.GetString("shutdown", "drain") == "drain");
    if (!s.ok()) {
      std::cerr << s << "\n";
      return 1;
    }
    std::puts("shutdown requested");
    return 0;
  }
  if (args.Has("job")) {
    const int64_t id = args.GetInt("job", 0);
    Result<JobRecord> record =
        follow ? FollowJob(client, id, wait_ms)
               : (wait ? client.WaitForJob(id, wait_ms) : client.GetJob(id));
    if (!record.ok()) {
      std::cerr << record.status() << "\n";
      return 1;
    }
    PrintRecord(*record);
    return TerminalExitCode(*record);
  }

  if (!args.Has("name") || !args.Has("input")) {
    std::cerr << "submit needs --name and --input (see --help)\n";
    return 1;
  }
  JobSpec spec;
  spec.name = args.GetString("name", "");
  spec.tenant = args.GetString("tenant", "");
  spec.input_store = args.GetString("input", "");
  spec.output_csv = args.GetString("output", "");
  spec.assign_k = static_cast<int>(args.GetInt("k", 0));
  spec.assign_delta = args.GetDouble("delta", 0.0);
  spec.shards = static_cast<size_t>(args.GetInt("shards", 1));
  spec.overlap_margin = args.GetDouble("margin", 0.0);
  spec.deadline_ms = args.GetInt("deadline-ms", 0);
  spec.max_distance_computations =
      static_cast<uint64_t>(args.GetInt("budget", 0));
  spec.allow_partial = args.GetBool("allow-partial", false);
  spec.seed = static_cast<uint64_t>(args.GetInt("seed", 7));
  spec.kind = args.GetString("kind", "");
  spec.window_seconds = args.GetDouble("window-seconds", 3600.0);
  spec.output_dir = args.GetString("output-dir", "");
  spec.audit_windows_dir = args.GetString("windows-dir", "");
  spec.audit_original_store = args.GetString("original", "");
  spec.audit_adversary = args.GetString("adversary", "");
  spec.audit_victims = static_cast<uint64_t>(args.GetInt("victims", 0));

  Result<JobRecord> submitted = client.Submit(spec);
  if (!submitted.ok()) {
    std::cerr << submitted.status() << "\n";
    // Backpressure is an expected, retryable outcome — give scripts a
    // distinct exit code.
    return submitted.status().code() == StatusCode::kResourceExhausted ? 2
                                                                       : 1;
  }
  PrintRecord(*submitted);
  if (!wait && !follow) {
    return 0;
  }
  Result<JobRecord> finished =
      follow ? FollowJob(client, submitted->id, wait_ms)
             : client.WaitForJob(submitted->id, wait_ms);
  if (!finished.ok()) {
    std::cerr << finished.status() << "\n";
    return 1;
  }
  PrintRecord(*finished);
  return TerminalExitCode(*finished);
}
