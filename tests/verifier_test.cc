#include <gtest/gtest.h>

#include "anon/verifier.h"
#include "anon/wcop_ct.h"
#include "test_util.h"

namespace wcop {
namespace {

using testing_util::SmallSynthetic;

class VerifierTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dataset_ = SmallSynthetic(30, 40);
    Result<AnonymizationResult> result = RunWcopCt(dataset_);
    ASSERT_TRUE(result.ok()) << result.status();
    result_ = std::move(result).value();
    ASSERT_TRUE(VerifyAnonymity(dataset_, result_).ok);
  }

  Dataset dataset_;
  AnonymizationResult result_;
};

TEST_F(VerifierTest, DetectsDisplacedPoint) {
  // Teleport one published point far away: some pair in its cluster stops
  // being co-localized.
  ASSERT_FALSE(result_.sanitized.empty());
  result_.sanitized[0].mutable_points()[0].x += 1e7;
  const VerificationReport report = VerifyAnonymity(dataset_, result_);
  EXPECT_FALSE(report.ok);
  EXPECT_GT(report.violations, 0u);
}

TEST_F(VerifierTest, DetectsMissingPublication) {
  // Drop a published trajectory without recording it as trash.
  auto& trajectories = result_.sanitized.mutable_trajectories();
  trajectories.pop_back();
  const VerificationReport report = VerifyAnonymity(dataset_, result_);
  EXPECT_FALSE(report.ok);
}

TEST_F(VerifierTest, DetectsDoubleAccounting) {
  // Mark a published trajectory as trashed too.
  result_.trashed_ids.push_back(result_.sanitized[0].id());
  const VerificationReport report = VerifyAnonymity(dataset_, result_);
  EXPECT_FALSE(report.ok);
}

TEST_F(VerifierTest, DetectsUndersizedCluster) {
  // Claim a higher k than the cluster can honour.
  ASSERT_FALSE(result_.clusters.empty());
  result_.clusters[0].k =
      static_cast<int>(result_.clusters[0].members.size()) + 5;
  const VerificationReport report = VerifyAnonymity(dataset_, result_);
  EXPECT_FALSE(report.ok);
}

TEST_F(VerifierTest, DetectsDeltaAboveMemberPreference) {
  // Inflate a cluster's delta beyond some member's personal delta.
  ASSERT_FALSE(result_.clusters.empty());
  result_.clusters[0].delta = 1e9;
  const VerificationReport report = VerifyAnonymity(dataset_, result_);
  EXPECT_FALSE(report.ok);
}

TEST_F(VerifierTest, DetectsTamperedObjectId) {
  result_.sanitized[0].set_object_id(result_.sanitized[0].object_id() + 1);
  const VerificationReport report = VerifyAnonymity(dataset_, result_);
  EXPECT_FALSE(report.ok);
}

TEST_F(VerifierTest, MessageCapRespected) {
  // Corrupt everything by *different* amounts (a uniform shift would leave
  // pairwise distances intact); messages stay capped while violations keep
  // counting.
  double shift = 1e7;
  for (Trajectory& t : result_.sanitized.mutable_trajectories()) {
    t.mutable_points()[0].x += shift;
    shift *= 2.0;
  }
  const VerificationReport report =
      VerifyAnonymity(dataset_, result_, /*max_messages=*/3);
  EXPECT_FALSE(report.ok);
  EXPECT_LE(report.messages.size(), 3u);
  EXPECT_GE(report.violations, report.messages.size());
}

}  // namespace
}  // namespace wcop
