# Empty compiler generated dependencies file for mod_queries.
# This may be replaced when dependencies are built.
