#include "attack/linkage.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>
#include <map>
#include <sys/stat.h>
#include <utility>
#include <vector>

#include "common/parallel.h"
#include "geo/point.h"

namespace wcop {
namespace attack {

namespace {

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

/// Last `n` / first `n` points as a standalone trajectory for the EDR
/// tail-to-head refinement.
Trajectory TailOf(const Trajectory& t, size_t n) {
  const size_t count = std::min(n, t.size());
  std::vector<Point> points(t.points().end() - count, t.points().end());
  return Trajectory(0, std::move(points));
}

Trajectory HeadOf(const Trajectory& t, size_t n) {
  const size_t count = std::min(n, t.size());
  std::vector<Point> points(t.points().begin(),
                            t.points().begin() + count);
  return Trajectory(0, std::move(points));
}

/// One fragment's join verdict at one boundary.
struct JoinOutcome {
  Status status;
  int64_t user = 0;            ///< truth key of the fragment
  bool has_continuation = false;
  bool predicted = false;      ///< the attack committed to some candidate
  bool correct = false;
  uint64_t gated = 0;
};

JoinOutcome JoinFragment(const CandidateSource& from,
                         const CandidateSource& to, size_t i,
                         const LinkageOptions& options) {
  JoinOutcome out;
  out.user = from.KeyOf(i);
  out.has_continuation = to.FindByKey(out.user).ok();

  Result<Trajectory> frag = from.Read(i);
  if (!frag.ok()) {
    out.status = frag.status();
    return out;
  }
  if (frag->empty()) {
    return out;
  }
  const Point tail = frag->back();
  // Constant-velocity motion model from the fragment's last leg.
  double vx = 0.0, vy = 0.0;
  if (frag->size() >= 2) {
    const Point& prev = (*frag)[frag->size() - 2];
    const double dt = tail.t - prev.t;
    if (dt > 0.0) {
      vx = (tail.x - prev.x) / dt;
      vy = (tail.y - prev.y) / dt;
    }
  }

  // Gate the next release's index by time and dilated MBR; only survivors
  // are read.
  struct Scored {
    double coarse;  ///< predicted-position error at the candidate's start
    int64_t key;    ///< deterministic tie-break
    size_t index;
  };
  std::vector<Scored> gated;
  for (size_t j = 0; j < to.size(); ++j) {
    const store::StoreEntry& e = to.entry(j);
    if (e.t_min < tail.t - options.overlap_slack_seconds ||
        e.t_min > tail.t + options.max_gap_seconds) {
      continue;
    }
    const double dt = std::max(e.t_min - tail.t, 0.0);
    const Point predicted{tail.x + vx * dt, tail.y + vy * dt, e.t_min};
    if (PointToEntryDistance(e, predicted) > options.gate_radius) {
      continue;
    }
    gated.push_back({0.0, to.KeyOf(j), j});
  }
  out.gated = gated.size();
  if (gated.empty()) {
    return out;
  }
  if (options.run_context != nullptr) {
    options.run_context->ChargeCandidatePairs(gated.size());
  }

  // Coarse score: exact predicted-position error at each survivor's first
  // fix (one block read each).
  for (Scored& s : gated) {
    Result<Trajectory> candidate = to.Read(s.index);
    if (!candidate.ok()) {
      out.status = candidate.status();
      return out;
    }
    const Point& head = candidate->front();
    const double dt = std::max(head.t - tail.t, 0.0);
    const Point predicted{tail.x + vx * dt, tail.y + vy * dt, head.t};
    s.coarse = SpatialDistance(predicted, head);
  }
  std::sort(gated.begin(), gated.end(), [](const Scored& a, const Scored& b) {
    if (a.coarse != b.coarse) {
      return a.coarse < b.coarse;
    }
    if (a.key != b.key) {
      return a.key < b.key;
    }
    return a.index < b.index;
  });

  // EDR refinement over the beam: align the fragment's tail with each
  // finalist's head under the best-so-far cutoff (early-abandoned), and
  // commit to the lowest (edr, coarse, key).
  const size_t beam = std::min(options.beam, gated.size());
  const Trajectory tail_traj = TailOf(*frag, options.edr_points);
  size_t best = 0;
  double best_edr = std::numeric_limits<double>::infinity();
  for (size_t b = 0; b < beam; ++b) {
    Result<Trajectory> candidate = to.Read(gated[b].index);
    if (!candidate.ok()) {
      out.status = candidate.status();
      return out;
    }
    if (options.run_context != nullptr) {
      options.run_context->ChargeDistance();
    }
    const Trajectory head_traj = HeadOf(*candidate, options.edr_points);
    bool abandoned = false;
    const double edr =
        EdrDistance(tail_traj, head_traj, options.tolerance,
                    std::isfinite(best_edr) ? best_edr
                                            : std::numeric_limits<double>::max(),
                    &abandoned);
    if (edr < best_edr) {
      best_edr = edr;
      best = b;
    }
  }
  out.predicted = true;
  out.correct = gated[best].key == out.user;
  return out;
}

}  // namespace

Result<std::vector<std::string>> ListWindowStores(const std::string& dir) {
  // The pipeline publishes windows as a contiguous window_NNNNN.wst
  // sequence from 0 (manifest replay guarantees no holes), so an existence
  // scan is both simpler and more deterministic than directory order.
  std::vector<std::string> paths;
  for (size_t w = 0;; ++w) {
    char name[64];
    std::snprintf(name, sizeof(name), "/window_%05llu.wst",
                  static_cast<unsigned long long>(w));
    const std::string path = dir + name;
    if (!FileExists(path)) {
      break;
    }
    paths.push_back(path);
  }
  if (paths.empty()) {
    return Status::NotFound("no window_NNNNN.wst stores under " + dir);
  }
  return paths;
}

Result<LinkageResult> RunLinkageAttack(
    const std::vector<std::string>& window_paths,
    const LinkageOptions& options) {
  WCOP_RETURN_IF_ERROR(CheckRunContext(options.run_context));
  WCOP_TRACE_SPAN(options.telemetry, "attack/linkage");
  telemetry::Counter* attempted_counter = nullptr;
  telemetry::Counter* joined_counter = nullptr;
  if (options.telemetry != nullptr) {
    attempted_counter =
        options.telemetry->metrics().GetCounter("attack.linkage.attempted");
    joined_counter =
        options.telemetry->metrics().GetCounter("attack.linkage.joined");
  }

  LinkageResult result;
  result.windows = window_paths.size();
  if (window_paths.size() < 2) {
    return result;
  }
  result.boundaries = window_paths.size() - 1;

  // Per-user consecutive-pair tally across all boundaries (ordered map:
  // deterministic iteration for the trackability fold).
  std::map<int64_t, std::pair<uint64_t, uint64_t>> user_pairs;

  parallel::ParallelOptions popts;
  popts.threads = options.threads;
  popts.grain = 1;
  popts.context = options.run_context;
  popts.telemetry = options.telemetry;

  // Two windows are open at a time; the later one of boundary b is reused
  // as the earlier one of boundary b+1.
  WCOP_ASSIGN_OR_RETURN(
      StoreCandidateSource from,
      StoreCandidateSource::Open(window_paths[0],
                                 StoreCandidateSource::TruthKey::kParentId,
                                 options.run_context));
  for (size_t b = 0; b + 1 < window_paths.size(); ++b) {
    WCOP_ASSIGN_OR_RETURN(
        StoreCandidateSource to,
        StoreCandidateSource::Open(window_paths[b + 1],
                                   StoreCandidateSource::TruthKey::kParentId,
                                   options.run_context));
    Result<std::vector<JoinOutcome>> outcomes =
        parallel::ParallelMap<JoinOutcome>(
            from.size(),
            [&](size_t i) { return JoinFragment(from, to, i, options); },
            popts);
    if (!outcomes.ok()) {
      return outcomes.status();
    }
    for (const JoinOutcome& out : *outcomes) {
      if (!out.status.ok()) {
        return out.status;
      }
      ++result.fragments;
      result.pairs_gated += out.gated;
      if (out.has_continuation) {
        ++result.joins_attempted;
        auto& tally = user_pairs[out.user];
        ++tally.first;
        if (out.predicted && out.correct) {
          ++result.joins_correct;
          ++tally.second;
        }
      }
    }
    if (options.progress) {
      options.progress(b + 1, result.boundaries);
    }
    WCOP_RETURN_IF_ERROR(CheckRunContext(options.run_context));
    from = std::move(to);
  }

  if (result.joins_attempted > 0) {
    result.linkage_rate = static_cast<double>(result.joins_correct) /
                          static_cast<double>(result.joins_attempted);
  }
  for (const auto& [user, tally] : user_pairs) {
    (void)user;
    ++result.users_total;
    if (tally.second == tally.first) {
      ++result.users_tracked;
    }
  }
  if (result.users_total > 0) {
    result.trackable_fraction = static_cast<double>(result.users_tracked) /
                                static_cast<double>(result.users_total);
  }
  telemetry::CounterAdd(attempted_counter, result.joins_attempted);
  telemetry::CounterAdd(joined_counter, result.joins_correct);
  return result;
}

}  // namespace attack
}  // namespace wcop
