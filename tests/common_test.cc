#include <gtest/gtest.h>

#include <sstream>

#include "common/arg_parser.h"
#include "common/result.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/table_printer.h"

namespace wcop {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad k");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad k");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad k");
}

TEST(StatusTest, AllFactoryCodesRoundTrip) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::IoError("x").code(), StatusCode::kIoError);
  EXPECT_EQ(Status::ParseError("x").code(), StatusCode::kParseError);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unsatisfiable("x").code(), StatusCode::kUnsatisfiable);
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

Status FailIfNegative(int x) {
  if (x < 0) {
    return Status::InvalidArgument("negative");
  }
  return Status::OK();
}

Status UsesReturnIfError(int x) {
  WCOP_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorPropagates) {
  EXPECT_TRUE(UsesReturnIfError(1).ok());
  EXPECT_EQ(UsesReturnIfError(-1).code(), StatusCode::kInvalidArgument);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(-1), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nothing");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.value_or(-1), -1);
}

Result<int> Half(int x) {
  if (x % 2 != 0) {
    return Status::InvalidArgument("odd");
  }
  return x / 2;
}

Result<int> Quarter(int x) {
  WCOP_ASSIGN_OR_RETURN(int half, Half(x));
  return Half(half);
}

TEST(ResultTest, AssignOrReturnChains) {
  Result<int> ok = Quarter(8);
  ASSERT_TRUE(ok.ok());
  EXPECT_EQ(*ok, 2);
  EXPECT_FALSE(Quarter(6).ok());  // 6/2 = 3 is odd
  EXPECT_FALSE(Quarter(5).ok());
}

TEST(RngTest, DeterministicAcrossInstances) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.UniformInt(0, 1000), b.UniformInt(0, 1000));
  }
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(-3, 9);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, UniformRealInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const double v = rng.UniformReal(2.5, 3.5);
    EXPECT_GE(v, 2.5);
    EXPECT_LT(v, 3.5);
  }
}

TEST(RngTest, UniformIndexCoversAll) {
  Rng rng(5);
  std::vector<int> hits(10, 0);
  for (int i = 0; i < 5000; ++i) {
    ++hits[rng.UniformIndex(10)];
  }
  for (int h : hits) {
    EXPECT_GT(h, 0);
  }
}

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter t({"name", "value"});
  t.AddRow({"alpha", "1"});
  t.AddRow({"b", "20000"});
  std::ostringstream os;
  t.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("| alpha | 1     |"), std::string::npos);
  EXPECT_NE(out.find("| b     | 20000 |"), std::string::npos);
}

TEST(TablePrinterTest, PadsShortRowsAndTruncatesLongRows) {
  TablePrinter t({"a", "b", "c"});
  t.AddRow({"1"});                      // short: padded with empty cells
  t.AddRow({"1", "2", "3", "extra"});   // long: truncated to header width
  EXPECT_EQ(t.num_rows(), 2u);
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_EQ(os.str(), "a,b,c\n1,,\n1,2,3\n");
}

TEST(TablePrinterTest, CsvQuotesSpecialCells) {
  TablePrinter t({"a", "b"});
  t.AddRow({"x,y", "say \"hi\""});
  std::ostringstream os;
  t.PrintCsv(os);
  EXPECT_EQ(os.str(), "a,b\n\"x,y\",\"say \"\"hi\"\"\"\n");
}

TEST(FormatSignificantTest, Basics) {
  EXPECT_EQ(FormatSignificant(1234.5678, 4), "1235");
  EXPECT_EQ(FormatSignificant(0.00012345, 3), "0.000123");
  EXPECT_EQ(FormatSignificant(1e13, 4), "1e+13");
}

TEST(ArgParserTest, ParsesAllForms) {
  const char* argv[] = {"prog", "--alpha=3", "--flag", "pos1", "--gamma=x y"};
  ArgParser args(5, const_cast<char**>(argv));
  EXPECT_EQ(args.GetInt("alpha", 0), 3);
  EXPECT_TRUE(args.GetBool("flag", false));
  EXPECT_EQ(args.GetString("gamma", ""), "x y");
  ASSERT_EQ(args.positional().size(), 1u);
  EXPECT_EQ(args.positional()[0], "pos1");
}

TEST(ArgParserTest, FallbacksOnMissingOrMalformed) {
  const char* argv[] = {"prog", "--num=abc"};
  ArgParser args(2, const_cast<char**>(argv));
  EXPECT_EQ(args.GetInt("num", 5), 5);
  EXPECT_EQ(args.GetDouble("absent", 2.5), 2.5);
  EXPECT_FALSE(args.Has("absent"));
  EXPECT_TRUE(args.Has("num"));
}

TEST(ArgParserTest, BoolParsing) {
  const char* argv[] = {"prog", "--a=true", "--b=0", "--c=yes", "--d=weird"};
  ArgParser args(5, const_cast<char**>(argv));
  EXPECT_TRUE(args.GetBool("a", false));
  EXPECT_FALSE(args.GetBool("b", true));
  EXPECT_TRUE(args.GetBool("c", false));
  EXPECT_TRUE(args.GetBool("d", true));  // unparsable -> fallback
}

}  // namespace
}  // namespace wcop
