#include "traj/trajectory.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace wcop {

double Trajectory::PathLength() const {
  double total = 0.0;
  for (size_t i = 1; i < points_.size(); ++i) {
    total += SpatialDistance(points_[i - 1], points_[i]);
  }
  return total;
}

double Trajectory::AverageSpeed() const {
  const double duration = Duration();
  if (duration <= 0.0) {
    return 0.0;
  }
  return PathLength() / duration;
}

BoundingBox Trajectory::Bounds() const {
  BoundingBox box;
  for (const Point& p : points_) {
    box.Extend(p);
  }
  return box;
}

Point Trajectory::PositionAt(double t) const {
  if (points_.empty()) {
    return Point();
  }
  if (t <= points_.front().t) {
    return Point(points_.front().x, points_.front().y, t);
  }
  if (t >= points_.back().t) {
    return Point(points_.back().x, points_.back().y, t);
  }
  // Binary search for the first point with timestamp > t.
  auto it = std::upper_bound(
      points_.begin(), points_.end(), t,
      [](double value, const Point& p) { return value < p.t; });
  const Point& next = *it;
  const Point& prev = *(it - 1);
  const double span = next.t - prev.t;
  if (span <= 0.0) {
    return Point(prev.x, prev.y, t);
  }
  const double alpha = (t - prev.t) / span;
  return Point(prev.x + alpha * (next.x - prev.x),
               prev.y + alpha * (next.y - prev.y), t);
}

Status Trajectory::Validate() const {
  if (points_.empty()) {
    return Status::InvalidArgument("trajectory " + std::to_string(id_) +
                                   " has no points");
  }
  for (size_t i = 0; i < points_.size(); ++i) {
    const Point& p = points_[i];
    if (!std::isfinite(p.x) || !std::isfinite(p.y) || !std::isfinite(p.t)) {
      return Status::InvalidArgument(
          "trajectory " + std::to_string(id_) + " has non-finite point at " +
          std::to_string(i));
    }
    if (i > 0 && points_[i - 1].t >= p.t) {
      return Status::InvalidArgument(
          "trajectory " + std::to_string(id_) +
          " has non-increasing timestamps at index " + std::to_string(i));
    }
  }
  if (requirement_.k < 1) {
    return Status::InvalidArgument("trajectory " + std::to_string(id_) +
                                   " has k < 1");
  }
  if (requirement_.delta < 0.0) {
    return Status::InvalidArgument("trajectory " + std::to_string(id_) +
                                   " has negative delta");
  }
  return Status::OK();
}

Trajectory Trajectory::Slice(size_t begin, size_t end, int64_t new_id) const {
  begin = std::min(begin, points_.size());
  end = std::min(end, points_.size());
  std::vector<Point> slice;
  if (begin < end) {
    slice.assign(points_.begin() + begin, points_.begin() + end);
  }
  Trajectory out(new_id, std::move(slice), requirement_);
  out.set_object_id(object_id_);
  out.set_parent_id(id_);
  return out;
}

std::string Trajectory::DebugString() const {
  std::ostringstream os;
  os << "Trajectory{id=" << id_ << ", object=" << object_id_;
  if (is_sub_trajectory()) {
    os << ", parent=" << parent_id_;
  }
  os << ", k=" << requirement_.k << ", delta=" << requirement_.delta
     << ", points=" << points_.size();
  if (!points_.empty()) {
    os << ", span=[" << StartTime() << ", " << EndTime() << "]";
  }
  os << "}";
  return os.str();
}

}  // namespace wcop
