#ifndef WCOP_DISTANCE_EDR_KERNEL_H_
#define WCOP_DISTANCE_EDR_KERNEL_H_

#include <cstdint>

#include "distance/edr.h"
#include "traj/trajectory.h"

namespace wcop {

/// Outcome of one EDR kernel evaluation. When `exact` is true, `ops` is the
/// EDR op count; otherwise `ops` is a certified lower bound on it (the
/// banded kernel proved the distance exceeds its band).
struct EdrKernelResult {
  uint32_t ops = 0;
  bool exact = true;
};

/// Reference kernel: the classic two-row scalar DP. O(n*m) time, O(m)
/// scratch (thread-local, reused across calls). Always exact.
uint32_t EdrOpsScalar(const Trajectory& a, const Trajectory& b,
                      const EdrTolerance& tolerance);

/// Bit-parallel kernel (Myers 1999 / Hyyrö 2003): EDR is unit-cost edit
/// distance under the tolerance match predicate, so each DP row collapses
/// to O(ceil(m/64)) word operations on vertical-delta bit vectors. Match
/// masks are rebuilt per row from the row point's time window over `b`
/// (two-pointer sweep; sorted timestamps) — or over all of `b` when a
/// sequence is unsorted or dt covers everything. Always exact and
/// bit-identical to the scalar DP.
uint32_t EdrOpsBitParallel(const Trajectory& a, const Trajectory& b,
                           const EdrTolerance& tolerance);

/// Banded (Ukkonen) kernel: evaluates only cells with |i - j| <= band,
/// clamping values above band + 1. If the true distance is <= band the
/// optimal path never leaves the band and the result is exact; otherwise
/// the clamp certifies EDR >= band + 1 and {band + 1, false} is returned.
/// O(n * min(2*band + 1, m)) time.
EdrKernelResult EdrOpsBanded(const Trajectory& a, const Trajectory& b,
                             const EdrTolerance& tolerance, uint32_t band);

/// Dispatch: picks the cheapest kernel for the shapes involved. `band`
/// caps the useful distance — pass max(|a|,|b|) (or anything >= it) for an
/// unconditionally exact answer; a smaller band permits the banded kernel
/// to abandon with a certified lower bound when the distance exceeds it.
/// All kernels agree bit-for-bit on exact results.
EdrKernelResult EdrOps(const Trajectory& a, const Trajectory& b,
                       const EdrTolerance& tolerance, uint32_t band);

}  // namespace wcop

#endif  // WCOP_DISTANCE_EDR_KERNEL_H_
