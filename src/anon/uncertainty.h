#ifndef WCOP_ANON_UNCERTAINTY_H_
#define WCOP_ANON_UNCERTAINTY_H_

#include "common/rng.h"
#include "traj/trajectory.h"

namespace wcop {

/// Definition 1 of the paper: the uncertain counterpart of a trajectory.
///
/// Under uncertainty threshold delta, an object's location at time t is not
/// tau(t) but anywhere inside the horizontal disk of *diameter* delta
/// centred at tau(t); the trajectory volume Vol(tau^delta) is the union of
/// those disks over the lifetime, and a possible motion curve (PMC) is any
/// continuous function staying inside the volume. This module implements
/// the membership predicate and a PMC sampler — the machinery that makes
/// (k,delta)-anonymity meaningful: published cylinders stand for *sets* of
/// plausible motions, not single polylines.

/// True iff the spatiotemporal point `p` lies inside Vol(tau^delta):
/// p.t within the lifetime and the spatial distance to tau(p.t) at most
/// delta / 2.
bool InsideTrajectoryVolume(const Trajectory& tau, double delta,
                            const Point& p, double epsilon = 1e-9);

/// True iff `pmc` is a valid possible motion curve of `tau` w.r.t. delta:
/// same lifetime (within epsilon) and every vertex inside the volume.
/// Because both curves interpolate linearly and the offset of a linear
/// interpolant is a convex combination of the endpoint offsets, checking
/// the vertices of `pmc` (plus tau's own vertex times) is exact.
bool IsPossibleMotionCurve(const Trajectory& pmc, const Trajectory& tau,
                           double delta, double epsilon = 1e-6);

/// Samples a random possible motion curve of `tau` w.r.t. delta: the
/// vertex offsets follow a smooth random walk inside the delta/2 disk
/// (`smoothness` in (0,1]: small = slowly drifting offset, 1 = independent
/// per-vertex draws). The result has tau's timestamps and metadata.
Trajectory SamplePossibleMotionCurve(const Trajectory& tau, double delta,
                                     Rng* rng, double smoothness = 0.3);

}  // namespace wcop

#endif  // WCOP_ANON_UNCERTAINTY_H_
