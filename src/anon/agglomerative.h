#ifndef WCOP_ANON_AGGLOMERATIVE_H_
#define WCOP_ANON_AGGLOMERATIVE_H_

#include "anon/greedy_clustering.h"
#include "anon/types.h"
#include "common/result.h"
#include "traj/dataset.h"

namespace wcop {

/// Personalized agglomerative clustering — the "more sophisticated
/// clustering method" the paper's conclusion lists as future work,
/// implemented as a drop-in alternative to WCOP-Clustering.
///
/// Every trajectory starts as a singleton cluster carrying its own (k_i,
/// delta_i). While any cluster's size is below its k (the max over its
/// members), the most-deficient cluster merges with its nearest neighbour
/// cluster (medoid-to-medoid distance) within radius_max. Merging updates
/// k (max), delta (min) and re-elects the medoid (the member minimizing
/// the sum of distances to the other members), which then serves as the
/// translation pivot. Clusters that cannot reach their k within radius_max
/// fall into the trash; radius_max relaxes geometrically like Algorithm 3
/// when the trash overflows.
///
/// Compared to the paper's random-pivot greedy pass, this trades runtime
/// (more distance evaluations) for better pivots — medoids instead of
/// random seeds — and for deficit-driven merge order.
Result<ClusteringOutcome> AgglomerativeClustering(const Dataset& dataset,
                                                  size_t trash_max,
                                                  const WcopOptions& options);

}  // namespace wcop

#endif  // WCOP_ANON_AGGLOMERATIVE_H_
