#include "server/http.h"

#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cctype>
#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string_view>

namespace wcop {
namespace server {

namespace {

constexpr size_t kMaxHeaderBytes = 16 * 1024;
constexpr size_t kMaxBodyBytes = 1024 * 1024;

void SetIoTimeouts(int fd, int timeout_ms) {
  struct timeval tv;
  tv.tv_sec = timeout_ms / 1000;
  tv.tv_usec = (timeout_ms % 1000) * 1000;
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof(tv));
}

/// Writes all of `data`, tolerating short writes. False on error/timeout.
bool WriteAll(int fd, std::string_view data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n = ::send(fd, data.data() + sent, data.size() - sent,
                             MSG_NOSIGNAL);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      return false;
    }
    sent += static_cast<size_t>(n);
  }
  return true;
}

/// Reads until `raw` contains the header terminator or a cap/timeout
/// trips. Returns false on connection error.
bool ReadUntilHeaderEnd(int fd, std::string* raw, size_t* header_end) {
  char buf[4096];
  while (raw->size() < kMaxHeaderBytes) {
    const size_t at = raw->find("\r\n\r\n");
    if (at != std::string::npos) {
      *header_end = at + 4;
      return true;
    }
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      return false;  // timeout (slow client), reset, or premature close
    }
    raw->append(buf, static_cast<size_t>(n));
  }
  return false;  // header cap exceeded
}

bool EqualsIgnoreCase(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) {
    return false;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i]))) {
      return false;
    }
  }
  return true;
}

/// Content-Length from the raw header block; 0 when absent or malformed.
size_t ParseContentLength(std::string_view headers) {
  size_t pos = 0;
  while (pos < headers.size()) {
    size_t eol = headers.find("\r\n", pos);
    if (eol == std::string_view::npos) {
      eol = headers.size();
    }
    const std::string_view line = headers.substr(pos, eol - pos);
    pos = eol + 2;
    const size_t colon = line.find(':');
    if (colon == std::string_view::npos) {
      continue;
    }
    if (!EqualsIgnoreCase(line.substr(0, colon), "content-length")) {
      continue;
    }
    size_t value = 0;
    bool any = false;
    for (size_t i = colon + 1; i < line.size(); ++i) {
      const char c = line[i];
      if (c == ' ' && !any) {
        continue;
      }
      if (c < '0' || c > '9') {
        return any ? value : 0;
      }
      value = value * 10 + static_cast<size_t>(c - '0');
      any = true;
    }
    return value;
  }
  return 0;
}

std::string SerializeResponse(const HttpResponse& response) {
  std::string out = "HTTP/1.0 " + std::to_string(response.status) + " " +
                    HttpReasonPhrase(response.status) + "\r\n";
  out += "Content-Type: " +
         (response.content_type.empty() ? std::string("text/plain")
                                        : response.content_type) +
         "\r\n";
  out += "Content-Length: " + std::to_string(response.body.size()) + "\r\n";
  out += "Connection: close\r\n\r\n";
  out += response.body;
  return out;
}

Status BindUnixSocket(const std::string& path, int* out_fd) {
  if (path.empty()) {
    return Status::InvalidArgument("socket_path is required");
  }
  struct sockaddr_un addr;
  if (path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("socket path too long: '" + path + "'");
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError("socket(): " + std::string(std::strerror(errno)));
  }
  // A crashed daemon leaves its socket file behind; rebinding over it is
  // the socket-flavoured janitor sweep.
  ::unlink(path.c_str());
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, path.c_str(), path.size());
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IoError("bind '" + path + "': " + err);
  }
  if (::listen(fd, 64) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    ::unlink(path.c_str());
    return Status::IoError("listen '" + path + "': " + err);
  }
  *out_fd = fd;
  return Status::OK();
}

}  // namespace

const char* HttpReasonPhrase(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 202:
      return "Accepted";
    case 400:
      return "Bad Request";
    case 404:
      return "Not Found";
    case 429:
      return "Too Many Requests";
    case 500:
      return "Internal Server Error";
    case 503:
      return "Service Unavailable";
    default:
      return "Unknown";
  }
}

Result<std::unique_ptr<HttpServer>> HttpServer::Listen(
    const Options& options, Handler handler) {
  if (handler == nullptr) {
    return Status::InvalidArgument("handler is required");
  }
  auto server = std::unique_ptr<HttpServer>(new HttpServer());
  server->options_ = options;
  server->handler_ = std::move(handler);
  WCOP_RETURN_IF_ERROR(
      BindUnixSocket(options.socket_path, &server->listen_fd_));
  server->accept_thread_ =
      std::thread(&HttpServer::AcceptLoop, server.get());
  return server;
}

HttpServer::~HttpServer() { Stop(); }

void HttpServer::Stop() {
  if (stopping_.exchange(true)) {
    if (accept_thread_.joinable()) {
      accept_thread_.join();
    }
    return;
  }
  if (accept_thread_.joinable()) {
    accept_thread_.join();
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  ::unlink(options_.socket_path.c_str());
}

void HttpServer::AcceptLoop() {
  while (!stopping_.load(std::memory_order_relaxed)) {
    struct pollfd pfd;
    pfd.fd = listen_fd_;
    pfd.events = POLLIN;
    pfd.revents = 0;
    // Short poll so Stop() is observed promptly without needing a
    // self-pipe.
    const int ready = ::poll(&pfd, 1, 100);
    if (ready <= 0) {
      continue;
    }
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      continue;
    }
    HandleConnection(fd);
    ::close(fd);
  }
}

void HttpServer::HandleConnection(int fd) {
  SetIoTimeouts(fd, options_.io_timeout_ms);
  std::string raw;
  size_t header_end = 0;
  if (!ReadUntilHeaderEnd(fd, &raw, &header_end)) {
    // Slow, dead, or oversized client: drop the connection; the loop
    // moves on to the next one.
    return;
  }
  const size_t line_end = raw.find("\r\n");
  const std::string request_line = raw.substr(0, line_end);
  const size_t sp1 = request_line.find(' ');
  const size_t sp2 =
      sp1 == std::string::npos ? std::string::npos
                               : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    HttpResponse bad;
    bad.status = 400;
    bad.body = "malformed request line\n";
    WriteAll(fd, SerializeResponse(bad));
    return;
  }
  HttpRequest request;
  request.method = request_line.substr(0, sp1);
  request.path = request_line.substr(sp1 + 1, sp2 - sp1 - 1);

  const size_t content_length = ParseContentLength(
      std::string_view(raw).substr(line_end + 2, header_end - line_end - 2));
  if (content_length > kMaxBodyBytes) {
    HttpResponse bad;
    bad.status = 400;
    bad.body = "request body too large\n";
    WriteAll(fd, SerializeResponse(bad));
    return;
  }
  request.body = raw.substr(header_end);
  char buf[4096];
  while (request.body.size() < content_length) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {
      if (n < 0 && errno == EINTR) {
        continue;
      }
      return;  // body never arrived in time
    }
    request.body.append(buf, static_cast<size_t>(n));
  }
  request.body.resize(content_length);

  const HttpResponse response = handler_(request);
  WriteAll(fd, SerializeResponse(response));
}

Result<HttpResponse> UnixHttpCall(const std::string& socket_path,
                                  const std::string& method,
                                  const std::string& path,
                                  const std::string& body, int timeout_ms) {
  struct sockaddr_un addr;
  if (socket_path.empty() || socket_path.size() >= sizeof(addr.sun_path)) {
    return Status::InvalidArgument("bad socket path '" + socket_path + "'");
  }
  const int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (fd < 0) {
    return Status::IoError("socket(): " + std::string(std::strerror(errno)));
  }
  SetIoTimeouts(fd, timeout_ms);
  std::memset(&addr, 0, sizeof(addr));
  addr.sun_family = AF_UNIX;
  std::memcpy(addr.sun_path, socket_path.c_str(), socket_path.size());
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IoError("connect '" + socket_path + "': " + err);
  }
  std::string request = method + " " + path + " HTTP/1.0\r\n";
  request += "Content-Length: " + std::to_string(body.size()) + "\r\n";
  request += "Connection: close\r\n\r\n";
  request += body;
  if (!WriteAll(fd, request)) {
    ::close(fd);
    return Status::IoError("send to '" + socket_path + "' failed");
  }

  std::string raw;
  char buf[4096];
  while (raw.size() < kMaxHeaderBytes + kMaxBodyBytes) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n < 0 && errno == EINTR) {
      continue;
    }
    if (n < 0) {
      ::close(fd);
      return Status::IoError("recv from '" + socket_path +
                             "': " + std::string(std::strerror(errno)));
    }
    if (n == 0) {
      break;  // Connection: close — EOF ends the response
    }
    raw.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);

  const size_t header_end = raw.find("\r\n\r\n");
  if (header_end == std::string::npos) {
    return Status::IoError("truncated HTTP response");
  }
  // Status line: "HTTP/1.0 <code> <reason>".
  const size_t sp = raw.find(' ');
  if (sp == std::string::npos || sp + 4 > raw.size()) {
    return Status::ParseError("malformed HTTP status line");
  }
  HttpResponse response;
  response.status = std::atoi(raw.c_str() + sp + 1);
  if (response.status < 100 || response.status > 599) {
    return Status::ParseError("malformed HTTP status code");
  }
  // Surface the Content-Type header so clients (and tests) can check
  // e.g. the Prometheus exposition version without re-parsing raw bytes.
  {
    const std::string_view headers =
        std::string_view(raw).substr(0, header_end);
    size_t pos = headers.find("\r\n");
    while (pos != std::string_view::npos && pos + 2 < headers.size()) {
      pos += 2;
      size_t eol = headers.find("\r\n", pos);
      if (eol == std::string_view::npos) {
        eol = headers.size();
      }
      const std::string_view line = headers.substr(pos, eol - pos);
      const size_t colon = line.find(':');
      if (colon != std::string_view::npos &&
          EqualsIgnoreCase(line.substr(0, colon), "content-type")) {
        size_t v = colon + 1;
        while (v < line.size() && line[v] == ' ') {
          ++v;
        }
        response.content_type = std::string(line.substr(v));
        break;
      }
      pos = eol;
    }
  }
  response.body = raw.substr(header_end + 4);
  return response;
}

}  // namespace server
}  // namespace wcop
