#include "common/process_stats.h"

#include <cstdio>
#include <cstring>
#include <string>

#ifdef __linux__
#include <dirent.h>
#include <sys/time.h>
#include <unistd.h>
#endif

namespace wcop {
namespace telemetry {

#ifdef __linux__
namespace {

// Boot time (Unix epoch seconds) from /proc/stat's btime line; 0 on
// failure. Needed to turn /proc/self/stat's starttime (clock ticks since
// boot) into an epoch timestamp.
long ReadBootTimeSeconds() {
  FILE* f = std::fopen("/proc/stat", "r");
  if (f == nullptr) {
    return 0;
  }
  char line[256];
  long btime = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::sscanf(line, "btime %ld", &btime) == 1) {
      break;
    }
  }
  std::fclose(f);
  return btime;
}

int CountOpenFds() {
  DIR* dir = opendir("/proc/self/fd");
  if (dir == nullptr) {
    return -1;
  }
  int count = 0;
  while (readdir(dir) != nullptr) {
    ++count;
  }
  closedir(dir);
  // Subtract ".", ".." and the fd opendir itself holds.
  return count >= 3 ? count - 3 : 0;
}

}  // namespace

bool ReadProcessStats(ProcessStats* out) {
  *out = ProcessStats{};
  FILE* f = std::fopen("/proc/self/stat", "r");
  if (f == nullptr) {
    return false;
  }
  char buf[1024];
  const size_t n = std::fread(buf, 1, sizeof(buf) - 1, f);
  std::fclose(f);
  if (n == 0) {
    return false;
  }
  buf[n] = '\0';
  // Field 2 (comm) may contain spaces; parse from after the closing ')'.
  const char* after = std::strrchr(buf, ')');
  if (after == nullptr) {
    return false;
  }
  ++after;
  // Fields after comm, 1-indexed from field 3 (state). We need:
  // utime=14, stime=15, num_threads=20, starttime=22, vsize=23, rss=24.
  unsigned long long utime = 0, stime = 0, starttime = 0, vsize = 0;
  long long num_threads = 0, rss_pages = 0;
  char state = '\0';
  const int matched = std::sscanf(
      after,
      " %c %*d %*d %*d %*d %*d %*u %*u %*u %*u %*u %llu %llu %*d %*d %*d "
      "%*d %lld %*d %llu %llu %lld",
      &state, &utime, &stime, &num_threads, &starttime, &vsize, &rss_pages);
  if (matched != 7) {
    return false;
  }
  const double ticks_per_s =
      static_cast<double>(sysconf(_SC_CLK_TCK) > 0 ? sysconf(_SC_CLK_TCK)
                                                   : 100);
  const double page_bytes =
      static_cast<double>(sysconf(_SC_PAGESIZE) > 0 ? sysconf(_SC_PAGESIZE)
                                                    : 4096);
  out->cpu_seconds_total =
      (static_cast<double>(utime) + static_cast<double>(stime)) / ticks_per_s;
  out->threads = static_cast<double>(num_threads);
  out->virtual_memory_bytes = static_cast<double>(vsize);
  out->resident_memory_bytes = static_cast<double>(rss_pages) * page_bytes;
  const long btime = ReadBootTimeSeconds();
  if (btime > 0) {
    out->start_time_seconds =
        static_cast<double>(btime) + static_cast<double>(starttime) / ticks_per_s;
    struct timeval tv;
    if (gettimeofday(&tv, nullptr) == 0) {
      const double now = static_cast<double>(tv.tv_sec) +
                         static_cast<double>(tv.tv_usec) / 1e6;
      out->uptime_seconds =
          now > out->start_time_seconds ? now - out->start_time_seconds : 0.0;
    }
  }
  const int fds = CountOpenFds();
  if (fds >= 0) {
    out->open_fds = static_cast<double>(fds);
  }
  return true;
}

#else  // !__linux__

bool ReadProcessStats(ProcessStats* out) {
  *out = ProcessStats{};
  return false;
}

#endif  // __linux__

bool PublishProcessMetrics(MetricsRegistry* registry) {
  if (registry == nullptr) {
    return false;
  }
  ProcessStats stats;
  if (!ReadProcessStats(&stats)) {
    return false;
  }
  registry->GetGauge("process.resident_memory_bytes")
      ->Set(stats.resident_memory_bytes);
  registry->GetGauge("process.virtual_memory_bytes")
      ->Set(stats.virtual_memory_bytes);
  registry->GetGauge("process.cpu_seconds_total")->Set(stats.cpu_seconds_total);
  registry->GetGauge("process.open_fds")->Set(stats.open_fds);
  registry->GetGauge("process.threads")->Set(stats.threads);
  registry->GetGauge("process.start_time_seconds")
      ->Set(stats.start_time_seconds);
  registry->GetGauge("process.uptime_seconds")->Set(stats.uptime_seconds);
  return true;
}

}  // namespace telemetry
}  // namespace wcop
