#include "anon/types.h"

#include "distance/euclidean.h"

namespace wcop {

double ClusterDistance(const Trajectory& a, const Trajectory& b,
                       const DistanceConfig& config) {
  switch (config.kind) {
    case DistanceConfig::Kind::kEdr:
      return NormalizedEdrDistance(a, b, config.tolerance) * config.edr_scale;
    case DistanceConfig::Kind::kSynchronizedEuclidean:
      return SynchronizedEuclideanDistance(a, b);
  }
  return 0.0;
}

double ClusterDistanceWithCutoff(const Trajectory& a, const Trajectory& b,
                                 const DistanceConfig& config, double cutoff,
                                 bool* abandoned) {
  if (config.kind == DistanceConfig::Kind::kEdr && config.edr_scale > 0.0) {
    const double d = NormalizedEdrDistance(
        a, b, config.tolerance, cutoff / config.edr_scale, abandoned);
    return d * config.edr_scale;
  }
  if (abandoned != nullptr) {
    *abandoned = false;
  }
  return ClusterDistance(a, b, config);
}

const char* DistanceCallCounterName(const DistanceConfig& config) {
  switch (config.kind) {
    case DistanceConfig::Kind::kEdr:
      return "distance.calls.edr";
    case DistanceConfig::Kind::kSynchronizedEuclidean:
      return "distance.calls.sync_euclidean";
  }
  return "distance.calls.unknown";
}

}  // namespace wcop
