#ifndef WCOP_EXP_GRID_SWEEP_H_
#define WCOP_EXP_GRID_SWEEP_H_

#include <functional>
#include <map>
#include <ostream>
#include <string>
#include <vector>

#include "common/result.h"

namespace wcop {

/// Experiment-harness substrate: the paper's Figures 5-8 are all grids of
/// metrics over (k_max, delta_max) combinations. GridSweep runs a caller
/// function over the grid once, collects every named metric, and renders
/// the paper-style series tables (one row per delta_max, one column per
/// k_max) — so each bench states only *what* it measures.

/// One grid cell's parameters.
struct SweepCell {
  int k_max = 0;
  double delta_max = 0.0;
  size_t k_index = 0;
  size_t delta_index = 0;
};

/// The caller's measurement: metric name -> value for one cell.
using SweepFn =
    std::function<Result<std::map<std::string, double>>(const SweepCell&)>;

class GridSweepResult {
 public:
  GridSweepResult(std::vector<int> k_values, std::vector<double> delta_values)
      : k_values_(std::move(k_values)),
        delta_values_(std::move(delta_values)) {}

  /// Stores one metric value for a cell (overwrites).
  void Set(const std::string& metric, size_t delta_index, size_t k_index,
           double value);

  /// Value of a metric at a cell; 0 when absent.
  double Get(const std::string& metric, size_t delta_index,
             size_t k_index) const;

  /// Names of all collected metrics, sorted.
  std::vector<std::string> Metrics() const;

  /// Prints the paper-style table of one metric ("| dmax=... | v v v |").
  void PrintTable(const std::string& metric, std::ostream& os) const;

  /// True iff some delta series of the metric both rises and falls along
  /// k_max — the non-monotonicity the paper highlights in Figures 5 and 8.
  bool AnySeriesNonMonotone(const std::string& metric,
                            double tolerance = 0.0) const;

  const std::vector<int>& k_values() const { return k_values_; }
  const std::vector<double>& delta_values() const { return delta_values_; }

 private:
  std::vector<int> k_values_;
  std::vector<double> delta_values_;
  std::map<std::string, std::vector<std::vector<double>>> grids_;
};

/// Runs `fn` over every (k_max, delta_max) combination. Stops at the first
/// failing cell and propagates its status.
Result<GridSweepResult> RunGridSweep(const std::vector<int>& k_values,
                                     const std::vector<double>& delta_values,
                                     const SweepFn& fn);

/// The paper's standard sweep axes (Section 6.3).
std::vector<int> PaperKValues();
std::vector<double> PaperDeltaValues();

}  // namespace wcop

#endif  // WCOP_EXP_GRID_SWEEP_H_
