// Scenario: a data consumer received the anonymized release and loads it
// into the moving-objects store to answer the questions trajectory data
// exists for — "who passed through here at rush hour?", "what was moving
// near this incident?", "which published tracks resemble this probe?" —
// and compares the answers against what the raw data would have said.
//
// Run:  ./mod_queries [--trajectories=60]

#include <cstdio>
#include <iostream>

#include "anon/wcop.h"
#include "common/arg_parser.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"
#include "data/synthetic.h"
#include "mod/trajectory_store.h"

using namespace wcop;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);

  SyntheticOptions gen;
  gen.seed = 37;
  gen.num_trajectories = static_cast<size_t>(args.GetInt("trajectories", 60));
  gen.num_users = gen.num_trajectories / 3 + 1;
  gen.points_per_trajectory = 100;
  gen.region_half_diagonal = 15000.0;
  gen.dataset_duration_days = 10.0;
  Result<Dataset> maybe_dataset = GenerateSyntheticGeoLife(gen);
  if (!maybe_dataset.ok()) {
    std::cerr << maybe_dataset.status() << "\n";
    return 1;
  }
  Dataset dataset = std::move(maybe_dataset).value();
  Rng rng(5);
  AssignUniformRequirements(&dataset, 2, 5, 50.0, 250.0, &rng);

  Result<AnonymizationResult> anonymized = RunWcopCt(dataset);
  if (!anonymized.ok()) {
    std::cerr << anonymized.status() << "\n";
    return 1;
  }

  Stopwatch build_timer;
  Result<TrajectoryStore> raw_store = TrajectoryStore::Build(dataset);
  Result<TrajectoryStore> anon_store =
      TrajectoryStore::Build(anonymized->sanitized);
  if (!raw_store.ok() || !anon_store.ok()) {
    std::cerr << "store build failed\n";
    return 1;
  }
  std::printf("built 2 stores over %zu + %zu trajectories in %.1f ms "
              "(%zu index cells)\n\n",
              raw_store->size(), anon_store->size(),
              build_timer.ElapsedMillis(),
              raw_store->num_cells() + anon_store->num_cells());

  // Q1: range queries — who passed through a busy area?
  {
    TablePrinter table({"query window", "raw matches", "anonymized matches"});
    Rng qrng(11);
    for (int q = 0; q < 5; ++q) {
      const Trajectory& t = dataset[qrng.UniformIndex(dataset.size())];
      const Point& c = t[qrng.UniformIndex(t.size())];
      StRange range;
      range.x_lo = c.x - 800;
      range.x_hi = c.x + 800;
      range.y_lo = c.y - 800;
      range.y_hi = c.y + 800;
      range.t_lo = c.t - 600;
      range.t_hi = c.t + 600;
      // Named temporary sidesteps a GCC 12 -Wrestrict false positive
      // (PR 105329) on `const char* + std::string&&`.
      std::string label = "#";
      label += std::to_string(q + 1);
      label += " (800m x 20min)";
      table.AddRow({label,
                    std::to_string(raw_store->RangeQuery(range).size()),
                    std::to_string(anon_store->RangeQuery(range).size())});
    }
    std::printf("Q1: spatiotemporal range counts\n");
    table.Print(std::cout);
  }

  // Q2: who was nearest to an incident?
  {
    const Trajectory& witness = dataset[3];
    const Point incident = witness[witness.size() / 2];
    const auto raw_nn = raw_store->NearestAt(incident.x, incident.y,
                                             incident.t, 3);
    const auto anon_nn = anon_store->NearestAt(incident.x, incident.y,
                                               incident.t, 3);
    std::printf("\nQ2: 3 nearest to the incident at t=%.0f\n", incident.t);
    TablePrinter table({"rank", "raw id (dist m)", "anonymized id (dist m)"});
    const size_t rows = std::max(raw_nn.size(), anon_nn.size());
    for (size_t i = 0; i < 3 && i < rows; ++i) {
      auto cell = [&](const std::vector<StNeighbor>& nn) -> std::string {
        if (i >= nn.size()) {
          return "-";
        }
        return std::to_string(nn[i].trajectory_id) + " (" +
               FormatSignificant(nn[i].distance, 3) + ")";
      };
      table.AddRow({std::to_string(i + 1), cell(raw_nn), cell(anon_nn)});
    }
    table.Print(std::cout);
    if (anon_nn.empty()) {
      std::printf("no published track is alive at the incident instant: the\n"
                  "witness's anonymity set adopted its pivot's timeline, so\n"
                  "the whole cluster was translated *temporally* — exactly\n"
                  "the spatio-temporal editing W4M/WCOP perform.\n");
    } else {
      std::printf("note: inside the incident's anonymity set the nearest "
                  "published track is deliberately ambiguous.\n");
    }
  }

  // Q3: similarity search with a probe trajectory.
  {
    DistanceConfig config;
    config.kind = DistanceConfig::Kind::kEdr;
    config.edr_scale = dataset.Bounds().HalfDiagonal();
    config.tolerance = EdrTolerance::FromDeltaMax(
        250.0, dataset.ComputeStats().avg_speed);
    const Trajectory& probe = dataset[0];
    const auto similar = anon_store->MostSimilar(probe, 4, config);
    std::printf("\nQ3: published tracks most similar to probe (id 0)\n");
    for (const StNeighbor& n : similar) {
      std::printf("  id %lld at EDR-scaled distance %.3g\n",
                  static_cast<long long>(n.trajectory_id), n.distance);
    }
    std::printf("the probe's own anonymity-set companions rank first — "
                "useful analytics survive, identities stay ambiguous.\n");
  }
  return 0;
}
