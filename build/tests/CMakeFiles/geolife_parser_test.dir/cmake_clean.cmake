file(REMOVE_RECURSE
  "CMakeFiles/geolife_parser_test.dir/geolife_parser_test.cc.o"
  "CMakeFiles/geolife_parser_test.dir/geolife_parser_test.cc.o.d"
  "geolife_parser_test"
  "geolife_parser_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/geolife_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
