#include <gtest/gtest.h>

#include <cmath>

#include "anon/verifier.h"
#include "anon/wcop_ct.h"
#include "test_util.h"

namespace wcop {
namespace {

using testing_util::MakeLine;
using testing_util::SmallSynthetic;

TEST(ClusterDistanceTest, EdrKindUsesNormalizedScaledValue) {
  const Trajectory a = MakeLine(1, 0, 0, 1, 0, 10);
  const Trajectory b = MakeLine(2, 1e6, 1e6, 1, 0, 10);  // nothing matches
  DistanceConfig config;
  config.kind = DistanceConfig::Kind::kEdr;
  config.tolerance.dx = 1.0;
  config.tolerance.dy = 1.0;
  config.tolerance.dt = 1.0;
  config.edr_scale = 500.0;
  // Fully unalignable -> normalized EDR 1.0 -> scaled to 500.
  EXPECT_DOUBLE_EQ(ClusterDistance(a, b, config), 500.0);
  EXPECT_DOUBLE_EQ(ClusterDistance(a, a, config), 0.0);
}

TEST(ClusterDistanceTest, EuclideanKindIgnoresEdrFields) {
  const Trajectory a = MakeLine(1, 0, 0, 1, 0, 10);
  const Trajectory b = MakeLine(2, 0, 7, 1, 0, 10);
  DistanceConfig config;
  config.kind = DistanceConfig::Kind::kSynchronizedEuclidean;
  EXPECT_NEAR(ClusterDistance(a, b, config), 7.0, 1e-9);
}

TEST(PivotPolicyTest, FarthestFirstKeepsInvariants) {
  const Dataset d = SmallSynthetic(40, 45, /*k_max=*/5);
  WcopOptions options;
  options.pivot_policy = WcopOptions::PivotPolicy::kFarthestFirst;
  Result<AnonymizationResult> result = RunWcopCt(d, options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(VerifyAnonymity(d, *result).ok);
}

TEST(PivotPolicyTest, FarthestFirstIsDeterministicAfterFirstPivot) {
  const Dataset d = SmallSynthetic(30, 40);
  WcopOptions options;
  options.pivot_policy = WcopOptions::PivotPolicy::kFarthestFirst;
  options.seed = 42;
  const auto a = RunWcopCt(d, options);
  const auto b = RunWcopCt(d, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->report.ttd, b->report.ttd);
}

TEST(DeltaPolicyTest, MeanDeltaLoosensTranslationButBreaksGuarantee) {
  const Dataset d = SmallSynthetic(40, 45, /*k_max=*/5, /*delta_max=*/400.0);
  WcopOptions min_options;
  min_options.seed = 9;
  WcopOptions mean_options = min_options;
  mean_options.delta_policy = WcopOptions::DeltaPolicy::kMean;

  Result<AnonymizationResult> with_min = RunWcopCt(d, min_options);
  Result<AnonymizationResult> with_mean = RunWcopCt(d, mean_options);
  ASSERT_TRUE(with_min.ok());
  ASSERT_TRUE(with_mean.ok());

  // The paper's min policy always honours every member's delta.
  EXPECT_TRUE(VerifyAnonymity(d, *with_min).ok);

  // With the same clustering, the mean policy's cluster deltas are >= the
  // min policy's (looser disks).
  ASSERT_EQ(with_min->clusters.size(), with_mean->clusters.size());
  bool any_looser = false;
  for (size_t i = 0; i < with_min->clusters.size(); ++i) {
    EXPECT_GE(with_mean->clusters[i].delta,
              with_min->clusters[i].delta - 1e-9);
    any_looser |= with_mean->clusters[i].delta >
                  with_min->clusters[i].delta + 1e-9;
  }
  EXPECT_TRUE(any_looser);

  // And the verifier catches the preference violations the mean policy
  // introduces whenever a multi-member cluster has heterogeneous deltas.
  if (any_looser) {
    EXPECT_FALSE(VerifyAnonymity(d, *with_mean).ok);
  }
}

TEST(OptionsTest, DefaultsAreThePaperSettings) {
  const WcopOptions options;
  EXPECT_DOUBLE_EQ(options.trash_fraction, 0.10);
  EXPECT_EQ(options.pivot_policy, WcopOptions::PivotPolicy::kRandom);
  EXPECT_EQ(options.delta_policy, WcopOptions::DeltaPolicy::kMin);
  EXPECT_EQ(options.distance.kind, DistanceConfig::Kind::kEdr);
}

}  // namespace
}  // namespace wcop
