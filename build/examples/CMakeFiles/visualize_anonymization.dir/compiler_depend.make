# Empty compiler generated dependencies file for visualize_anonymization.
# This may be replaced when dependencies are built.
