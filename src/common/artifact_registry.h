#ifndef WCOP_COMMON_ARTIFACT_REGISTRY_H_
#define WCOP_COMMON_ARTIFACT_REGISTRY_H_

#include <cstddef>
#include <string>
#include <utility>

namespace wcop {

/// Process-wide registry of in-flight temp files.
///
/// Every durable writer follows write-`<path>.tmp` → fsync → rename, and the
/// stale-artifact janitor (store::SweepStaleArtifacts) reclaims orphaned
/// `*.tmp` files after a crash. Those two conventions collide when a sweep
/// runs in a directory where a writer is currently mid-flight — e.g. a
/// restarted service sweeping the shared output directory while an older
/// sibling process, or a concurrently admitted job, is still publishing.
/// Writers therefore register their temp path for the duration of the write;
/// the janitor skips registered paths, so it can only ever reclaim files no
/// live writer owns.
///
/// Paths are normalized (absolute, lexically normal) before comparison, so a
/// writer registering a relative path and a janitor sweeping the absolute
/// directory agree. All operations are thread-safe.
void RegisterLiveArtifact(const std::string& path);

/// Removes `path` from the registry; no-op when absent. A path registered
/// N times stays live until unregistered N times (two writers racing on the
/// same target keep it protected until both finish).
void UnregisterLiveArtifact(const std::string& path);

/// True when `path` is currently registered by some writer.
bool IsLiveArtifact(const std::string& path);

/// Number of distinct live artifact paths (diagnostics / tests).
size_t LiveArtifactCount();

/// RAII registration: registers in the constructor, unregisters in the
/// destructor. Movable so writer classes holding one stay movable.
class ScopedLiveArtifact {
 public:
  ScopedLiveArtifact() = default;
  explicit ScopedLiveArtifact(std::string path) : path_(std::move(path)) {
    if (!path_.empty()) {
      RegisterLiveArtifact(path_);
    }
  }
  ~ScopedLiveArtifact() { Release(); }

  ScopedLiveArtifact(ScopedLiveArtifact&& other) noexcept
      : path_(std::move(other.path_)) {
    other.path_.clear();
  }
  ScopedLiveArtifact& operator=(ScopedLiveArtifact&& other) noexcept {
    if (this != &other) {
      Release();
      path_ = std::move(other.path_);
      other.path_.clear();
    }
    return *this;
  }

  ScopedLiveArtifact(const ScopedLiveArtifact&) = delete;
  ScopedLiveArtifact& operator=(const ScopedLiveArtifact&) = delete;

  /// Unregisters now (idempotent); used when the write completes before the
  /// holder goes out of scope.
  void Release() {
    if (!path_.empty()) {
      UnregisterLiveArtifact(path_);
      path_.clear();
    }
  }

 private:
  std::string path_;
};

}  // namespace wcop

#endif  // WCOP_COMMON_ARTIFACT_REGISTRY_H_
