#ifndef WCOP_COMMON_RUN_CONTEXT_H_
#define WCOP_COMMON_RUN_CONTEXT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "common/status.h"

namespace wcop {

/// Cooperative cancellation handle in the std::stop_token tradition.
///
/// Copies share one flag: a service thread keeps a copy and calls
/// RequestCancellation() while the worker polls cancellation_requested()
/// (through RunContext::Check) at per-cluster / per-trajectory granularity.
/// All operations are thread-safe and lock-free.
class CancellationToken {
 public:
  CancellationToken() : cancelled_(std::make_shared<std::atomic<bool>>(false)) {}

  /// Requests cancellation; idempotent, callable from any thread.
  void RequestCancellation() {
    cancelled_->store(true, std::memory_order_relaxed);
  }

  bool cancellation_requested() const {
    return cancelled_->load(std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<std::atomic<bool>> cancelled_;
};

/// Hard caps on the superlinear cost drivers of the pipeline. A value of 0
/// means "unlimited". The caps bound *work*, not memory directly, but the
/// distance matrix and the candidate-pair pools are exactly the structures
/// that grow quadratically with |D|.
struct ResourceBudget {
  uint64_t max_distance_computations = 0;  ///< pairwise trajectory distances
  uint64_t max_candidate_pairs = 0;        ///< pivot-candidate pool entries
};

/// Cross-cutting execution context threaded (as an optional const pointer)
/// through the hot loops of the WCOP pipeline: a monotonic deadline, a
/// cooperative cancellation token, and a resource budget.
///
/// Long-running phases call Check() at natural yield points (per cluster,
/// per trajectory, per window, per file) and propagate the non-OK Status;
/// drivers with `WcopOptions::allow_partial_results` instead degrade
/// gracefully (see DESIGN.md "Robustness"). A null RunContext pointer means
/// "unbounded" everywhere, so existing call sites keep their behaviour.
///
/// The charge counters are mutable atomics so that a `const RunContext*`
/// can be shared across helper layers; the object itself is not copyable.
class RunContext {
 public:
  using Clock = std::chrono::steady_clock;

  RunContext() = default;
  RunContext(const RunContext&) = delete;
  RunContext& operator=(const RunContext&) = delete;

  /// Sets an absolute monotonic deadline.
  void set_deadline(Clock::time_point deadline) { deadline_ = deadline; }

  /// Sets the deadline `budget` from now.
  void set_deadline_after(std::chrono::nanoseconds budget) {
    deadline_ = Clock::now() + budget;
  }

  void clear_deadline() { deadline_.reset(); }
  bool has_deadline() const { return deadline_.has_value(); }

  /// The absolute deadline, if any — lets a coordinator derive per-shard
  /// child contexts that share the parent's wall-clock bound.
  std::optional<Clock::time_point> deadline() const { return deadline_; }

  bool deadline_exceeded() const {
    return deadline_.has_value() && Clock::now() >= *deadline_;
  }

  /// Attaches a cancellation token (a copy; the caller keeps the original
  /// to request cancellation from another thread).
  void set_cancellation_token(CancellationToken token) {
    token_ = std::move(token);
  }

  bool cancelled() const {
    return token_.has_value() && token_->cancellation_requested();
  }

  /// The attached token, if any (a copy shares the underlying flag) — lets
  /// a coordinator propagate one cancellation signal to child contexts.
  const std::optional<CancellationToken>& cancellation_token() const {
    return token_;
  }

  void set_budget(ResourceBudget budget) { budget_ = budget; }
  const ResourceBudget& budget() const { return budget_; }

  /// Records `n` pairwise distance computations against the budget.
  void ChargeDistance(uint64_t n = 1) const {
    distance_computations_.fetch_add(n, std::memory_order_relaxed);
  }

  /// Records `n` candidate-pair pool entries against the budget.
  void ChargeCandidatePairs(uint64_t n = 1) const {
    candidate_pairs_.fetch_add(n, std::memory_order_relaxed);
  }

  uint64_t distance_computations() const {
    return distance_computations_.load(std::memory_order_relaxed);
  }
  uint64_t candidate_pairs() const {
    return candidate_pairs_.load(std::memory_order_relaxed);
  }

  bool budget_exhausted() const {
    return (budget_.max_distance_computations != 0 &&
            distance_computations() > budget_.max_distance_computations) ||
           (budget_.max_candidate_pairs != 0 &&
            candidate_pairs() > budget_.max_candidate_pairs);
  }

  /// Trace identity (DESIGN.md §7): minted once at job admission and
  /// propagated — through child contexts derived by the shard runner —
  /// so every span buffer produced under this context can be correlated
  /// into one timeline. Empty = no trace. Set before the run starts;
  /// read-only (and therefore safe) once worker threads share the context.
  void set_trace_id(std::string id) { trace_id_ = std::move(id); }
  const std::string& trace_id() const { return trace_id_; }

  /// The cooperative yield point: OK while the run may continue, otherwise
  /// the most urgent trip reason — kCancelled before kDeadlineExceeded
  /// before kResourceExhausted.
  Status Check() const;

 private:
  std::string trace_id_;
  std::optional<Clock::time_point> deadline_;
  std::optional<CancellationToken> token_;
  ResourceBudget budget_;
  mutable std::atomic<uint64_t> distance_computations_{0};
  mutable std::atomic<uint64_t> candidate_pairs_{0};
};

/// Check() through an optional context: null means unbounded (always OK).
inline Status CheckRunContext(const RunContext* context) {
  return context == nullptr ? Status::OK() : context->Check();
}

}  // namespace wcop

#endif  // WCOP_COMMON_RUN_CONTEXT_H_
