#include "anon/colocalization.h"

#include <cmath>

namespace wcop {

bool Colocalized(const Trajectory& a, const Trajectory& b, double delta,
                 double epsilon) {
  if (a.size() != b.size() || a.empty()) {
    return false;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::abs(a[i].t - b[i].t) > epsilon) {
      return false;
    }
    if (SpatialDistance(a[i], b[i]) > delta + epsilon) {
      return false;
    }
  }
  return true;
}

bool IsAnonymitySet(const std::vector<const Trajectory*>& members, int k,
                    double delta, double epsilon) {
  if (members.size() < static_cast<size_t>(k)) {
    return false;
  }
  for (size_t i = 0; i < members.size(); ++i) {
    for (size_t j = i + 1; j < members.size(); ++j) {
      if (!Colocalized(*members[i], *members[j], delta, epsilon)) {
        return false;
      }
    }
  }
  return true;
}

}  // namespace wcop
