file(REMOVE_RECURSE
  "CMakeFiles/colocalization_test.dir/colocalization_test.cc.o"
  "CMakeFiles/colocalization_test.dir/colocalization_test.cc.o.d"
  "colocalization_test"
  "colocalization_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/colocalization_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
