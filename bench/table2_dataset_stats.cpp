// Reproduces Table 2: statistics of the (synthetic stand-in for the)
// GeoLife sample. Runs at the paper's full 343k-point scale by default —
// generation is cheap; only the anonymization benches downsample.
//
// Run:  ./table2_dataset_stats [--trajectories=238] [--points=1442]
//                              [--json-out=FILE]

#include <cstdio>
#include <iostream>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"

using namespace wcop;
using namespace wcop::bench;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  BenchScale scale = BenchScale::FromArgs(args);
  if (!args.Has("points")) {
    scale.points = 1442;  // Table 2 is about the full dataset
  }
  JsonOut json_out(args);
  Stopwatch watch;
  const Dataset dataset = MakeBenchDataset(scale);
  const DatasetStats stats = dataset.ComputeStats();
  const double seconds = watch.ElapsedSeconds();

  PrintHeader("Table 2: dataset statistics (paper GeoLife sample vs this "
              "synthetic stand-in)");
  TablePrinter table({"statistic", "paper", "measured"});
  table.AddRow({"# objects (users)", "72", std::to_string(stats.num_objects)});
  table.AddRow({"# trajectories |D|", "238",
                std::to_string(stats.num_trajectories)});
  table.AddRow({"# spatiotemporal points", "343,129",
                std::to_string(stats.num_points)});
  table.AddRow({"avg. speed (m/s)", "6.36",
                FormatSignificant(stats.avg_speed, 3)});
  table.AddRow({"radius(D) (m)", "51,982",
                FormatSignificant(stats.radius, 5)});
  table.AddRow({"duration (days)", "1,477",
                FormatSignificant(stats.duration_days, 4)});
  table.Print(std::cout);

  std::printf("\nderived parameters used throughout the evaluation:\n");
  std::printf("  delta_max = 3%% of radius(D) = %.0f m\n", 0.03 * stats.radius);
  std::printf("  trash_max = 10%% of |D| = %zu trajectories\n",
              stats.num_trajectories / 10);
  std::printf("  radius_max = radius(D) = %.0f m\n", stats.radius);

  json_out.Add("table2/dataset_stats",
               {{"trajectories", static_cast<double>(scale.trajectories)},
                {"points_per_trajectory",
                 static_cast<double>(scale.points)},
                {"objects", static_cast<double>(stats.num_objects)},
                {"total_points", static_cast<double>(stats.num_points)},
                {"avg_speed", stats.avg_speed},
                {"radius", stats.radius},
                {"duration_days", stats.duration_days}},
               seconds, {});
  if (!json_out.Flush()) {
    return 1;
  }
  return 0;
}
