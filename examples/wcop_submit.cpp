// Client CLI for the wcop_serve daemon: submit anonymization jobs, poll
// their state, read health/metrics, and trigger shutdown — all over the
// daemon's unix socket.
//
// Usage:
//   ./wcop_submit --socket=PATH --name=run1 --input=data.wst [--output=o.csv]
//                 [--tenant=alice] [--k=5 --delta=250] [--shards=4]
//                 [--deadline-ms=60000] [--budget=N] [--allow-partial]
//                 [--seed=7] [--wait --wait-ms=600000]
//   ./wcop_submit --socket=PATH --job=ID [--wait]
//   ./wcop_submit --socket=PATH --health | --metrics
//   ./wcop_submit --socket=PATH --shutdown=drain|now
//
// Exit code: 0 on success (job done), 2 on backpressure (retry later),
// 3 on a failed/deadline-exceeded job, 1 on any other error.

#include <cstdio>
#include <iostream>
#include <string>

#include "common/arg_parser.h"
#include "server/client.h"

using namespace wcop;
using namespace wcop::server;

namespace {

void PrintRecord(const JobRecord& record) {
  std::printf("job %lld '%s': %s (attempts %llu)\n",
              static_cast<long long>(record.id), record.spec.name.c_str(),
              std::string(JobStateName(record.state)).c_str(),
              static_cast<unsigned long long>(record.attempts));
  if (record.state == JobState::kDone) {
    std::printf(
        "  published %llu, suppressed %llu, clusters %llu, distortion "
        "%.4g%s\n",
        static_cast<unsigned long long>(record.outcome.published),
        static_cast<unsigned long long>(record.outcome.suppressed),
        static_cast<unsigned long long>(record.outcome.clusters),
        record.outcome.total_distortion,
        record.outcome.degraded ? " [degraded]" : "");
    std::printf("  output: %s\n", record.spec.output_csv.c_str());
    if (record.outcome.degraded) {
      std::printf("  degraded: %s\n",
                  record.outcome.degraded_reason.c_str());
    }
  } else if (record.state == JobState::kFailed) {
    std::printf("  error: %s\n", record.outcome.error.c_str());
  }
}

int TerminalExitCode(const JobRecord& record) {
  return record.state == JobState::kDone ? 0 : 3;
}

}  // namespace

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  if (args.Has("help") || !args.Has("socket")) {
    std::puts(
        "wcop_submit --socket=PATH\n"
        "  --name=N --input=FILE.wst [--output=FILE.csv] [--tenant=T]\n"
        "    [--k=K --delta=D] [--shards=S] [--deadline-ms=MS] "
        "[--budget=B]\n"
        "    [--allow-partial] [--seed=7] [--wait] [--wait-ms=600000]\n"
        "  --job=ID [--wait]  |  --health  |  --metrics  |  "
        "--shutdown=drain|now");
    return args.Has("help") ? 0 : 1;
  }
  const ServiceClient client(args.GetString("socket", ""));
  const bool wait = args.GetBool("wait", false);
  const auto wait_ms =
      std::chrono::milliseconds(args.GetInt("wait-ms", 600000));

  if (args.Has("health")) {
    Result<std::string> health = client.Health();
    if (!health.ok()) {
      std::cerr << health.status() << "\n";
      return 1;
    }
    std::fputs(health->c_str(), stdout);
    return 0;
  }
  if (args.Has("metrics")) {
    Result<std::string> metrics = client.Metrics();
    if (!metrics.ok()) {
      std::cerr << metrics.status() << "\n";
      return 1;
    }
    std::fputs(metrics->c_str(), stdout);
    return 0;
  }
  if (args.Has("shutdown")) {
    const Status s =
        client.Shutdown(args.GetString("shutdown", "drain") == "drain");
    if (!s.ok()) {
      std::cerr << s << "\n";
      return 1;
    }
    std::puts("shutdown requested");
    return 0;
  }
  if (args.Has("job")) {
    const int64_t id = args.GetInt("job", 0);
    Result<JobRecord> record =
        wait ? client.WaitForJob(id, wait_ms) : client.GetJob(id);
    if (!record.ok()) {
      std::cerr << record.status() << "\n";
      return 1;
    }
    PrintRecord(*record);
    return TerminalExitCode(*record);
  }

  if (!args.Has("name") || !args.Has("input")) {
    std::cerr << "submit needs --name and --input (see --help)\n";
    return 1;
  }
  JobSpec spec;
  spec.name = args.GetString("name", "");
  spec.tenant = args.GetString("tenant", "");
  spec.input_store = args.GetString("input", "");
  spec.output_csv = args.GetString("output", "");
  spec.assign_k = static_cast<int>(args.GetInt("k", 0));
  spec.assign_delta = args.GetDouble("delta", 0.0);
  spec.shards = static_cast<size_t>(args.GetInt("shards", 1));
  spec.overlap_margin = args.GetDouble("margin", 0.0);
  spec.deadline_ms = args.GetInt("deadline-ms", 0);
  spec.max_distance_computations =
      static_cast<uint64_t>(args.GetInt("budget", 0));
  spec.allow_partial = args.GetBool("allow-partial", false);
  spec.seed = static_cast<uint64_t>(args.GetInt("seed", 7));

  Result<JobRecord> submitted = client.Submit(spec);
  if (!submitted.ok()) {
    std::cerr << submitted.status() << "\n";
    // Backpressure is an expected, retryable outcome — give scripts a
    // distinct exit code.
    return submitted.status().code() == StatusCode::kResourceExhausted ? 2
                                                                       : 1;
  }
  PrintRecord(*submitted);
  if (!wait) {
    return 0;
  }
  Result<JobRecord> finished = client.WaitForJob(submitted->id, wait_ms);
  if (!finished.ok()) {
    std::cerr << finished.status() << "\n";
    return 1;
  }
  PrintRecord(*finished);
  return TerminalExitCode(*finished);
}
