#include "distance/edr_bounds.h"

#include <algorithm>
#include <cmath>
#include <vector>

namespace wcop {

EdrBoundsProfile EdrBoundsProfile::Of(const Trajectory& t) {
  EdrBoundsProfile p;
  p.length = static_cast<uint32_t>(t.size());
  if (t.empty()) {
    return p;
  }
  p.min_x = p.max_x = t[0].x;
  p.min_y = p.max_y = t[0].y;
  p.min_t = p.max_t = t[0].t;
  p.sorted = true;
  for (size_t i = 1; i < t.size(); ++i) {
    const Point& pt = t[i];
    p.min_x = std::min(p.min_x, pt.x);
    p.max_x = std::max(p.max_x, pt.x);
    p.min_y = std::min(p.min_y, pt.y);
    p.max_y = std::max(p.max_y, pt.y);
    p.min_t = std::min(p.min_t, pt.t);
    p.max_t = std::max(p.max_t, pt.t);
    if (pt.t < t[i - 1].t) {
      p.sorted = false;
    }
  }
  return p;
}

bool EdrSeparated(const EdrBoundsProfile& a, const EdrBoundsProfile& b,
                  const EdrTolerance& tolerance) {
  if (a.length == 0 || b.length == 0) {
    return true;  // no matchable pair exists; EDR = max length exactly
  }
  // An axis separates when even the closest pair of coordinates is farther
  // apart than the tolerance. Infinite dt never separates (inf < x is
  // false), so no special case is needed.
  if (a.max_x + tolerance.dx < b.min_x || b.max_x + tolerance.dx < a.min_x) {
    return true;
  }
  if (a.max_y + tolerance.dy < b.min_y || b.max_y + tolerance.dy < a.min_y) {
    return true;
  }
  if (a.max_t + tolerance.dt < b.min_t || b.max_t + tolerance.dt < a.min_t) {
    return true;
  }
  return false;
}

uint32_t EdrLengthLowerBound(const EdrBoundsProfile& a,
                             const EdrBoundsProfile& b) {
  return a.length >= b.length ? a.length - b.length : b.length - a.length;
}

namespace {

/// Sliding min/max over one coordinate of `other` as the time window
/// advances: a pair of monotonic deques (indices into `other`), amortized
/// O(1) per push/pop across the whole sweep.
class MinMaxWindow {
 public:
  void Reset(size_t capacity) {
    min_idx_.clear();
    max_idx_.clear();
    min_idx_.reserve(capacity);
    max_idx_.reserve(capacity);
    if (values_.size() < capacity) {
      values_.resize(capacity);
    }
    min_head_ = max_head_ = 0;
  }

  void Push(size_t idx, double value) {
    while (min_idx_.size() > min_head_ && values_at(min_idx_.back()) >= value) {
      min_idx_.pop_back();
    }
    while (max_idx_.size() > max_head_ && values_at(max_idx_.back()) <= value) {
      max_idx_.pop_back();
    }
    values_[idx] = value;
    min_idx_.push_back(idx);
    max_idx_.push_back(idx);
  }

  void EvictBelow(size_t lo) {
    while (min_head_ < min_idx_.size() && min_idx_[min_head_] < lo) {
      ++min_head_;
    }
    while (max_head_ < max_idx_.size() && max_idx_[max_head_] < lo) {
      ++max_head_;
    }
  }

  bool empty() const { return min_head_ >= min_idx_.size(); }
  double Min() const { return values_[min_idx_[min_head_]]; }
  double Max() const { return values_[max_idx_[max_head_]]; }

 private:
  double values_at(size_t idx) const { return values_[idx]; }

  std::vector<size_t> min_idx_;
  std::vector<size_t> max_idx_;
  std::vector<double> values_;
  size_t min_head_ = 0;
  size_t max_head_ = 0;
};

/// Number of points of `a` whose time window over `b` is non-empty and
/// whose coordinates fall inside the window's dilated bounding box — an
/// upper bound on how many points of `a` can participate in a match.
/// Requires both point sequences sorted by time.
uint32_t CountMatchable(const Trajectory& a, const Trajectory& b,
                        const EdrTolerance& tolerance) {
  const size_t n = a.size();
  const size_t m = b.size();
  thread_local MinMaxWindow win_x;
  thread_local MinMaxWindow win_y;
  win_x.Reset(m);
  win_y.Reset(m);
  uint32_t count = 0;
  size_t lo = 0;
  size_t hi = 0;
  for (size_t i = 0; i < n; ++i) {
    const Point& pa = a[i];
    while (hi < m && b[hi].t <= pa.t + tolerance.dt) {
      win_x.Push(hi, b[hi].x);
      win_y.Push(hi, b[hi].y);
      ++hi;
    }
    while (lo < hi && b[lo].t < pa.t - tolerance.dt) {
      ++lo;
    }
    win_x.EvictBelow(lo);
    win_y.EvictBelow(lo);
    if (lo < hi && pa.x >= win_x.Min() - tolerance.dx &&
        pa.x <= win_x.Max() + tolerance.dx &&
        pa.y >= win_y.Min() - tolerance.dy &&
        pa.y <= win_y.Max() + tolerance.dy) {
      ++count;
    }
  }
  return count;
}

}  // namespace

EdrEnvelopeBound EdrEnvelopeLowerBound(const Trajectory& a,
                                       const EdrBoundsProfile& pa,
                                       const Trajectory& b,
                                       const EdrBoundsProfile& pb,
                                       const EdrTolerance& tolerance) {
  EdrEnvelopeBound result;
  const uint32_t maxlen = std::max(pa.length, pb.length);
  const uint32_t minlen = std::min(pa.length, pb.length);
  if (minlen == 0) {
    result.bound = maxlen;
    result.exact = true;
    return result;
  }
  if (!pa.sorted || !pb.sorted) {
    result.bound = maxlen - minlen;  // weak but never wrong
    return result;
  }
  const uint32_t matchable_a = CountMatchable(a, b, tolerance);
  uint32_t m_ub = std::min(matchable_a, minlen);
  if (m_ub > 0) {
    m_ub = std::min(m_ub, CountMatchable(b, a, tolerance));
  }
  result.bound = maxlen - m_ub;
  result.exact = m_ub == 0;  // no match possible: all-substitution optimum
  return result;
}

}  // namespace wcop
