#include "anon/types.h"

#include "distance/euclidean.h"

namespace wcop {

double ClusterDistance(const Trajectory& a, const Trajectory& b,
                       const DistanceConfig& config) {
  switch (config.kind) {
    case DistanceConfig::Kind::kEdr:
      return NormalizedEdrDistance(a, b, config.tolerance) * config.edr_scale;
    case DistanceConfig::Kind::kSynchronizedEuclidean:
      return SynchronizedEuclideanDistance(a, b);
  }
  return 0.0;
}

const char* DistanceCallCounterName(const DistanceConfig& config) {
  switch (config.kind) {
    case DistanceConfig::Kind::kEdr:
      return "distance.calls.edr";
    case DistanceConfig::Kind::kSynchronizedEuclidean:
      return "distance.calls.sync_euclidean";
  }
  return "distance.calls.unknown";
}

}  // namespace wcop
