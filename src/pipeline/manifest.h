#ifndef WCOP_PIPELINE_MANIFEST_H_
#define WCOP_PIPELINE_MANIFEST_H_

/// Per-window manifest records — the durable commit log of the continuous
/// publication pipeline (DESIGN.md "Continuous publication pipeline").
///
/// A window is published in two steps: its output store is atomically
/// finished at `window_NNNNN.wst`, then a manifest record is atomically
/// written at `window_NNNNN.mfr` (snapshot envelope: magic, version,
/// payload CRC). The manifest is the commit point. On restart the pipeline
/// replays manifests from window 0; the first missing or invalid record —
/// bad envelope, fingerprint mismatch, or an output/carry store whose bytes
/// no longer match the recorded CRC — marks the window to recompute.
/// Because every window is deterministic given the source store, the
/// options, and the carry-over chain, recomputation rewrites byte-identical
/// stores over any torn leftovers, which is what makes `kill -9` at any
/// lifecycle point recoverable to byte-identical published output.
///
/// The payload is the whitespace text codec used by the shard checkpoint
/// (%.17g doubles, lossless round-trip) and carries no timestamps or paths,
/// so manifests themselves are byte-identical across interrupted and
/// uninterrupted runs.

#include <cstdint>
#include <string>
#include <string_view>

#include "common/result.h"
#include "common/retry.h"

namespace wcop {
namespace pipeline {

/// Snapshot-envelope format_version for window manifest records.
inline constexpr uint32_t kWindowManifestVersion = 1;

struct WindowManifest {
  uint64_t config_fingerprint = 0;  ///< source index + pipeline options
  uint64_t window_index = 0;
  double window_start = 0.0;
  double window_end = 0.0;

  uint64_t input_fragments = 0;   ///< fragments fed to the anonymizer
  uint64_t published_fragments = 0;
  uint64_t suppressed_delta = 0;  ///< fragments this window suppressed
  uint64_t carried_in = 0;        ///< carry records merged from window-1
  uint64_t carried_out = 0;       ///< carry records spilled to window+1
  uint64_t clusters = 0;
  double ttd = 0.0;
  bool skipped = false;   ///< window unsatisfiable -> fully suppressed
  bool degraded = false;  ///< per-window anonymization degraded

  int64_t next_fragment_id = 0;  ///< first id unused after this window

  uint64_t input_crc = 0;  ///< CRC32/size of the window input store file
  uint64_t input_size = 0;
  uint64_t output_crc = 0;  ///< CRC32/size of the published output store
  uint64_t output_size = 0;
  uint64_t carry_crc = 0;  ///< CRC32/size of the carry-over store
  uint64_t carry_size = 0;
};

/// Text payload codec (deterministic; no timestamps, no paths).
std::string EncodeWindowManifest(const WindowManifest& manifest);
Result<WindowManifest> DecodeWindowManifest(std::string_view payload);

/// Atomic read/write through the snapshot envelope. Write failures leave
/// any previous record intact; reads return kNotFound / kDataLoss exactly
/// like ReadSnapshotFile.
Status WriteWindowManifest(const std::string& path,
                           const WindowManifest& manifest,
                           const RetryPolicy* retry = nullptr);
Result<WindowManifest> ReadWindowManifest(const std::string& path);

/// CRC32 and size of a whole file's bytes — the manifest's store
/// fingerprints. kNotFound when the file does not exist.
struct FileDigest {
  uint64_t crc = 0;
  uint64_t size = 0;
};
Result<FileDigest> DigestFile(const std::string& path);

}  // namespace pipeline
}  // namespace wcop

#endif  // WCOP_PIPELINE_MANIFEST_H_
