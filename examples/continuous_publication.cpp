// Scenario: a fleet operator publishes anonymized movement data every hour
// rather than once at the end of the quarter. The streaming driver
// anonymizes each time window independently (full personalized
// (K,Delta)-anonymity within the window) and this example reports the
// per-window outcomes plus what the bounded latency costs compared to one
// offline pass.
//
// Run:  ./continuous_publication [--trajectories=50] [--window=600]
//       [--checkpoint=FILE --checkpoint-every=1]
//
// With --checkpoint=FILE the streaming driver persists its progress after
// each published window; re-running the same command after a crash resumes
// from the last completed window instead of re-anonymizing the whole feed.

#include <cstdio>
#include <iostream>

#include "anon/report_json.h"
#include "anon/wcop.h"
#include "common/arg_parser.h"
#include "common/log.h"
#include "common/table_printer.h"
#include "data/synthetic.h"

using namespace wcop;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  if (!log::ConfigureFromArgs(args, "continuous_publication")) {
    return 1;
  }

  SyntheticOptions gen;
  gen.seed = 23;
  gen.num_trajectories = static_cast<size_t>(args.GetInt("trajectories", 50));
  gen.num_users = gen.num_trajectories / 3 + 1;
  gen.points_per_trajectory = 90;
  gen.sampling_interval = 20.0;
  gen.region_half_diagonal = 15000.0;
  gen.dataset_duration_days = 0.5;  // a busy half-day of traffic
  Result<Dataset> maybe_dataset = GenerateSyntheticGeoLife(gen);
  if (!maybe_dataset.ok()) {
    log::Error("synthetic generation failed",
               {{"status", maybe_dataset.status().ToString()}});
    return 1;
  }
  Dataset dataset = std::move(maybe_dataset).value();
  Rng rng(9);
  AssignUniformRequirements(&dataset, 2, 4, 50.0, 300.0, &rng);

  // Offline reference: one pass over the whole history.
  WcopOptions wcop;
  wcop.seed = 31;
  Result<AnonymizationResult> offline = RunWcopCt(dataset, wcop);
  if (!offline.ok()) {
    log::Error("offline reference run failed",
               {{"status", offline.status().ToString()}});
    return 1;
  }

  // Streaming: publish every `window` seconds.
  StreamingOptions streaming;
  streaming.window_seconds = args.GetDouble("window", 600.0);
  streaming.wcop = wcop;
  streaming.checkpoint_path = args.GetString("checkpoint", "");
  streaming.checkpoint_every_windows =
      static_cast<size_t>(args.GetInt("checkpoint-every", 1));
  Result<StreamingResult> live = RunStreamingWcop(dataset, streaming);
  if (!live.ok()) {
    log::Error("streaming run failed", {{"status", live.status().ToString()}});
    return 1;
  }
  if (live->resumed) {
    std::printf("resumed from %s: %zu windows restored\n\n",
                streaming.checkpoint_path.c_str(), live->resumed_windows);
  }

  std::printf("windows of %.0f s over %zu trajectories:\n\n",
              streaming.window_seconds, dataset.size());
  TablePrinter table({"window start", "fragments in", "published",
                      "clusters", "TTD"});
  size_t shown = 0;
  for (const StreamingWindowSummary& w : live->windows) {
    if (++shown > 12) {
      table.AddRow({"...", "", "", "", ""});
      break;
    }
    table.AddRow({FormatSignificant(w.window_start, 6),
                  std::to_string(w.input_fragments),
                  w.skipped ? "suppressed" : std::to_string(
                                                 w.published_fragments),
                  std::to_string(w.clusters), FormatSignificant(w.ttd, 4)});
  }
  table.Print(std::cout);

  std::printf("\nlatency cost: streaming TTD %.4g over %zu windows vs "
              "offline TTD %.4g in one pass (%zu fragments suppressed at "
              "window boundaries)\n",
              live->total_ttd, live->windows.size(), offline->report.ttd,
              live->suppressed_fragments);

  // Machine-readable footprint of the offline run, for pipelines.
  const std::string json_path = args.GetString("json", "");
  if (!json_path.empty()) {
    if (WriteJsonFile(ResultToJson(*offline), json_path).ok()) {
      std::printf("wrote %s\n", json_path.c_str());
    }
  } else {
    std::printf("\noffline run report as JSON:\n%s\n",
                ReportToJson(offline->report).c_str());
  }
  return 0;
}
