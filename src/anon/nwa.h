#ifndef WCOP_ANON_NWA_H_
#define WCOP_ANON_NWA_H_

#include <vector>

#include "anon/types.h"
#include "common/result.h"
#include "traj/dataset.h"

namespace wcop {

/// Never Walk Alone (Abul, Bonchi & Nanni, ICDE 2008): the original
/// (k,delta)-anonymizer that W4M extends. Differences from W4M / WCOP-CT:
///
///  * the clustering distance is synchronized Euclidean (not EDR), so two
///    trajectories must overlap in time to share a cluster;
///  * the translation is purely *spatial*: each member is resampled onto
///    the pivot's timestamps by linear interpolation and clamped into the
///    delta/2 disk — timestamps are never edited and no EDR script is
///    replayed.
///
/// Exposed as a first-class baseline for the ablation benchmarks (the
/// paper compares against the W4M behaviour via WCOP-NV; NWA completes the
/// lineage). Uses universal (k, delta) like the original algorithm.
Result<AnonymizationResult> RunNwa(const Dataset& dataset, int k, double delta,
                                   const WcopOptions& options = {});

/// NWA's preprocessing: partition the dataset into *equivalence classes* of
/// trajectories sharing the same quantized time span. Each trajectory is
/// trimmed to whole periods of `period_seconds` (its first/last partial
/// periods are dropped) and grouped by its (first period, last period)
/// pair; trajectories left with fewer than `min_points` points are
/// discarded. Only classes of at least `min_class_size` trajectories are
/// emitted (smaller ones cannot host a k-anonymity set anyway and are
/// reported in `dropped_trajectories`).
struct NwaPreprocessResult {
  std::vector<Dataset> classes;
  size_t dropped_trajectories = 0;
  size_t trimmed_points = 0;  ///< points removed by period trimming
};
NwaPreprocessResult NwaPreprocess(const Dataset& dataset,
                                  double period_seconds, size_t min_points,
                                  size_t min_class_size);

/// Full NWA: preprocessing into co-temporal equivalence classes, then the
/// (k,delta) clustering-and-spatial-translation pass per class, with the
/// per-class results merged. Trajectories dropped by preprocessing or
/// belonging to undersized classes are reported as trash. Unlike the bare
/// RunNwa (which requires temporally overlapping input), this runs on any
/// dataset — at the price NWA pays: trimmed data.
Result<AnonymizationResult> RunNwaWithPreprocessing(
    const Dataset& dataset, int k, double delta, double period_seconds,
    const WcopOptions& options = {});

}  // namespace wcop

#endif  // WCOP_ANON_NWA_H_
