// Extension experiment: scalability of the pipeline — runtime of each
// phase as the dataset grows in (a) number of trajectories and (b) points
// per trajectory. Complements the paper's single runtime row (Table 3) by
// exposing the quadratic EDR-clustering core and the near-linear
// segmentation/translation phases.
//
// Run:  ./ext_scalability [--max-trajectories=238] [--threads=N]

#include <cstdio>
#include <iostream>
#include <vector>

#include "anon/wcop.h"
#include "bench_util.h"
#include "common/stopwatch.h"
#include "common/table_printer.h"

using namespace wcop;
using namespace wcop::bench;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const size_t max_trajectories =
      static_cast<size_t>(args.GetInt("max-trajectories", 238));
  const int threads = static_cast<int>(args.GetInt("threads", 0));
  JsonOut json_out(args);

  // One sink for the whole sweep holds the aggregated phase-timing
  // histograms; each configuration additionally gets its own sink so its
  // json metrics record stands alone.
  telemetry::Telemetry tel;
  telemetry::Histogram* ct_hist = tel.metrics().GetHistogram("bench.wcop_ct_ns");
  telemetry::Histogram* sa_hist = tel.metrics().GetHistogram("bench.wcop_sa_ns");

  PrintHeader("Extension: runtime vs number of trajectories (80 pts each)");
  {
    TablePrinter table({"|D|", "clustering+translation (s)",
                        "SA-Traclus pipeline (s)", "clusters"});
    for (size_t n : {30u, 60u, 120u, 238u}) {
      if (n > max_trajectories) {
        break;
      }
      BenchScale scale;
      scale.trajectories = n;
      scale.points = 80;
      Dataset d = MakeBenchDataset(scale);
      AssignPaperRequirements(&d, 5, 250.0, 11);
      WcopOptions options;
      options.seed = 3;
      options.threads = threads;
      telemetry::Telemetry run_tel;
      options.telemetry = &run_tel;

      double ct_seconds = 0.0;
      Result<AnonymizationResult> ct = Status::Internal("not run");
      {
        ScopedTimer timer(ct_hist);
        ct = RunWcopCt(d, options);
        ct_seconds = timer.watch().ElapsedSeconds();
      }

      TraclusSegmenter segmenter(BenchTraclusOptions());
      double sa_seconds = 0.0;
      {
        ScopedTimer timer(sa_hist);
        Result<WcopSaResult> sa = RunWcopSa(d, &segmenter, options);
        sa_seconds = timer.watch().ElapsedSeconds();
        (void)sa;
      }

      if (ct.ok()) {
        json_out.Add("ext_scalability/trajectories",
                     {{"trajectories", static_cast<double>(n)},
                      {"points", 80.0}},
                     ct_seconds, ct->report.metrics);
      }
      table.AddRow({std::to_string(n), FormatSignificant(ct_seconds, 3),
                    FormatSignificant(sa_seconds, 3),
                    ct.ok() ? std::to_string(ct->report.num_clusters)
                            : "fail"});
    }
    table.Print(std::cout);
  }

  PrintHeader("Extension: runtime vs points per trajectory (120 traj.)");
  {
    TablePrinter table({"points/traj", "clustering+translation (s)",
                        "EDR cells (relative)"});
    double base = 0.0;
    for (size_t points : {40u, 80u, 160u, 320u}) {
      BenchScale scale;
      scale.trajectories = 120;
      scale.points = points;
      Dataset d = MakeBenchDataset(scale);
      AssignPaperRequirements(&d, 5, 250.0, 11);
      WcopOptions options;
      options.seed = 3;
      options.threads = threads;
      telemetry::Telemetry run_tel;
      options.telemetry = &run_tel;
      double seconds = 0.0;
      Result<AnonymizationResult> r = Status::Internal("not run");
      {
        ScopedTimer timer(ct_hist);
        r = RunWcopCt(d, options);
        seconds = timer.watch().ElapsedSeconds();
      }
      if (base == 0.0) {
        base = seconds;
      }
      if (r.ok()) {
        json_out.Add("ext_scalability/points",
                     {{"trajectories", 120.0},
                      {"points", static_cast<double>(points)}},
                     seconds, r->report.metrics);
      }
      table.AddRow({std::to_string(points), FormatSignificant(seconds, 3),
                    FormatSignificant(seconds / base, 3) + "x"});
    }
    table.Print(std::cout);
    std::printf("expected shape: ~4x runtime per point-count doubling (the\n"
                "EDR dynamic program is quadratic in trajectory length).\n");
  }

  // The aggregated phase-timing distribution over every configuration run.
  const telemetry::MetricsSnapshot snapshot = tel.metrics().Snapshot();
  if (const telemetry::HistogramSummary* h =
          snapshot.FindHistogram("bench.wcop_ct_ns");
      h != nullptr && h->count > 0) {
    std::printf("\nWCOP-CT timing over %llu runs: mean %.3fs, p50 %.3fs, "
                "max %.3fs\n",
                static_cast<unsigned long long>(h->count), h->mean * 1e-9,
                h->p50 * 1e-9, static_cast<double>(h->max) * 1e-9);
  }
  if (!json_out.Flush()) {
    return 1;
  }
  return 0;
}
