#ifndef WCOP_STORE_PARTITIONER_H_
#define WCOP_STORE_PARTITIONER_H_

/// Spatio-temporal partitioner over a store index: groups trajectories into
/// shards that can be anonymized independently (DESIGN.md "Dataset store &
/// sharding").
///
/// The partitioner works on `StoreEntry` metadata only (MBR, lifetime,
/// (k, delta)) — never on the trajectories themselves — so partitioning a
/// multi-gigabyte store costs memory proportional to the index.
///
/// Safety invariant: with margin m = max(options.overlap_margin, max delta_i
/// in the index), any two trajectories whose MBR gap is <= m end up in the
/// SAME shard. Every trajectory distance used by the pipeline (EDR with
/// per-point matching tolerance <= delta) is bounded below by the MBR gap,
/// so co-localization candidate pairs are never split across shards and a
/// per-shard run publishes exactly what a monolithic run over that shard
/// would. The price is honesty about dense data: one connected blob of
/// trajectories within the margin is one shard, however large — out-of-core
/// scaling comes from datasets whose regions (cities, districts, days) are
/// separated by more than the margin, which is how large corpora are
/// published (see Gramaglia et al.; Yu et al. in PAPERS.md).
///
/// Mechanics: centroids are hashed onto a uniform grid (cell edge >= 2m);
/// oversized cells split recursively (quadtree) while they stay splittable;
/// margin-connected cells are unioned (union-find over occupied boxes, then
/// exact member-pair gap tests); components too small to satisfy their own
/// members' max k merge into their nearest neighbour. Everything is
/// deterministic: stable orderings, no RNG, no time.

#include <cstddef>
#include <vector>

#include "common/result.h"
#include "geo/bounding_box.h"
#include "store/store_file.h"

namespace wcop {
namespace store {

struct PartitionOptions {
  /// Overlap margin in metres; raised to the index's max delta_i when
  /// smaller (0 = auto). See the safety invariant above.
  double overlap_margin = 0.0;

  /// Aimed-for trajectories per shard. 0 = everything in one shard.
  size_t target_shard_size = 4096;

  /// Hard split threshold; cells above it split recursively while their
  /// edge stays above 2*margin. 0 = 2 * target_shard_size.
  size_t max_shard_size = 0;

  /// Components below max(min_shard_size, own max k) merge into their
  /// nearest neighbour. 0 = max(2, target_shard_size / 8).
  size_t min_shard_size = 0;

  /// Convenience: when > 0, overrides target_shard_size with
  /// ceil(n / num_shards). num_shards == 1 is the degenerate single-shard
  /// partition whose pipeline output is byte-identical to the monolithic
  /// path.
  size_t num_shards = 0;
};

/// One shard: positions into the source store index, in source order (the
/// pipeline depends on that order for cross-thread determinism and for the
/// single-shard byte-identity guarantee).
struct ShardSpec {
  size_t shard_index = 0;
  std::vector<size_t> members;  ///< positions in the source index, ascending
  BoundingBox bounds;           ///< union of member MBRs
  int max_k = 0;
  double max_delta = 0.0;
  uint64_t total_points = 0;
};

struct Partition {
  std::vector<ShardSpec> shards;
  double margin = 0.0;          ///< resolved overlap margin (metres)
  size_t grid_cells = 0;        ///< leaf cells after splitting
  size_t cells_split = 0;       ///< recursive splits performed
  size_t components_merged = 0; ///< undersized-component merges
};

/// Euclidean gap between two axis-aligned boxes (0 when they intersect).
/// The lower bound that backs the partitioner's safety invariant.
double BoxGap(const BoundingBox& a, const BoundingBox& b);

/// Partitions `index` (the reader's index() vector). kInvalidArgument on an
/// empty index or a negative margin.
Result<Partition> PartitionStoreIndex(const std::vector<StoreEntry>& index,
                                      const PartitionOptions& options);

}  // namespace store
}  // namespace wcop

#endif  // WCOP_STORE_PARTITIONER_H_
