#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "geo/bounding_box.h"
#include "geo/disk.h"
#include "geo/point.h"
#include "geo/projection.h"
#include "geo/segment_geometry.h"

namespace wcop {
namespace {

TEST(PointTest, SpatialDistanceIgnoresTime) {
  const Point a(0, 0, 0), b(3, 4, 999);
  EXPECT_DOUBLE_EQ(SpatialDistance(a, b), 5.0);
  EXPECT_DOUBLE_EQ(SpatialDistanceSquared(a, b), 25.0);
  EXPECT_DOUBLE_EQ(TemporalDistance(a, b), 999.0);
}

TEST(BoundingBoxTest, EmptyUntilExtended) {
  BoundingBox box;
  EXPECT_TRUE(box.empty());
  EXPECT_DOUBLE_EQ(box.HalfDiagonal(), 0.0);
  box.Extend(Point(1, 2, 0));
  EXPECT_FALSE(box.empty());
  EXPECT_TRUE(box.Contains(Point(1, 2, 5)));
}

TEST(BoundingBoxTest, HalfDiagonal) {
  BoundingBox box;
  box.Extend(Point(0, 0, 0));
  box.Extend(Point(6, 8, 0));
  EXPECT_DOUBLE_EQ(box.HalfDiagonal(), 5.0);
  EXPECT_DOUBLE_EQ(box.width(), 6.0);
  EXPECT_DOUBLE_EQ(box.height(), 8.0);
}

TEST(BoundingBoxTest, ExtendWithBox) {
  BoundingBox a;
  a.Extend(Point(0, 0, 0));
  BoundingBox b;
  b.Extend(Point(10, -5, 0));
  a.Extend(b);
  EXPECT_TRUE(a.Contains(Point(10, -5, 0)));
  EXPECT_TRUE(a.Contains(Point(5, -2, 0)));
  // Extending with an empty box is a no-op.
  BoundingBox empty;
  a.Extend(empty);
  EXPECT_DOUBLE_EQ(a.max_x(), 10.0);
}

TEST(SegmentGeometryTest, ProjectionParameter) {
  const LineSegment seg(Point(0, 0, 0), Point(10, 0, 0));
  EXPECT_DOUBLE_EQ(ProjectionParameter(Point(5, 3, 0), seg), 0.5);
  EXPECT_DOUBLE_EQ(ProjectionParameter(Point(-5, 0, 0), seg), -0.5);
  EXPECT_DOUBLE_EQ(ProjectionParameter(Point(20, 1, 0), seg), 2.0);
  // Degenerate segment.
  const LineSegment degenerate(Point(1, 1, 0), Point(1, 1, 0));
  EXPECT_DOUBLE_EQ(ProjectionParameter(Point(9, 9, 0), degenerate), 0.0);
}

TEST(SegmentGeometryTest, PointToSegmentDistanceClampsToEndpoints) {
  const LineSegment seg(Point(0, 0, 0), Point(10, 0, 0));
  EXPECT_DOUBLE_EQ(PointToSegmentDistance(Point(5, 3, 0), seg), 3.0);
  EXPECT_DOUBLE_EQ(PointToSegmentDistance(Point(-3, 4, 0), seg), 5.0);
  EXPECT_DOUBLE_EQ(PointToSegmentDistance(Point(13, 4, 0), seg), 5.0);
}

TEST(SegmentGeometryTest, PointToLineDistanceDoesNotClamp) {
  const LineSegment seg(Point(0, 0, 0), Point(10, 0, 0));
  EXPECT_DOUBLE_EQ(PointToLineDistance(Point(-3, 4, 0), seg), 4.0);
}

TEST(SegmentGeometryTest, AngleBetween) {
  const LineSegment east(Point(0, 0, 0), Point(1, 0, 0));
  const LineSegment north(Point(0, 0, 0), Point(0, 1, 0));
  const LineSegment west(Point(0, 0, 0), Point(-1, 0, 0));
  EXPECT_NEAR(AngleBetween(east, north), M_PI / 2, 1e-12);
  EXPECT_NEAR(AngleBetween(east, west), M_PI, 1e-12);
  EXPECT_NEAR(AngleBetween(east, east), 0.0, 1e-12);
}

TEST(SegmentGeometryTest, ParallelSegmentsPerpendicularComponent) {
  // Two parallel horizontal segments 4 apart: d_perp = (16+16)/(4+4) = 4.
  const LineSegment a(Point(0, 0, 0), Point(10, 0, 0));
  const LineSegment b(Point(2, 4, 0), Point(8, 4, 0));
  const SegmentDistanceComponents c = ComputeSegmentDistanceComponents(a, b);
  EXPECT_NEAR(c.perpendicular, 4.0, 1e-12);
  EXPECT_NEAR(c.angular, 0.0, 1e-12);
  EXPECT_NEAR(c.parallel, 0.0, 1e-12);  // projections fall inside a
}

TEST(SegmentGeometryTest, ParallelComponentMeasuresOverhang) {
  // b sits entirely beyond a's end: both projections overhang.
  const LineSegment a(Point(0, 0, 0), Point(10, 0, 0));
  const LineSegment b(Point(12, 0, 0), Point(15, 0, 0));
  const SegmentDistanceComponents c = ComputeSegmentDistanceComponents(a, b);
  EXPECT_NEAR(c.parallel, 2.0, 1e-9);  // nearer overhang: 12 - 10
}

TEST(SegmentGeometryTest, AngularComponentUsesShorterLength) {
  // Perpendicular segments: d_theta = |shorter| * sin(90deg) = 4.
  const LineSegment a(Point(0, 0, 0), Point(10, 0, 0));
  const LineSegment b(Point(5, 0, 0), Point(5, 4, 0));
  const SegmentDistanceComponents c = ComputeSegmentDistanceComponents(a, b);
  EXPECT_NEAR(c.angular, 4.0, 1e-12);
}

TEST(SegmentGeometryTest, OppositeDirectionIsMaximallyAngular) {
  const LineSegment a(Point(0, 0, 0), Point(10, 0, 0));
  const LineSegment b(Point(8, 1, 0), Point(2, 1, 0));  // pointing west
  const SegmentDistanceComponents c = ComputeSegmentDistanceComponents(a, b);
  EXPECT_NEAR(c.angular, 6.0, 1e-12);  // full |b|
}

TEST(SegmentGeometryTest, DistanceIsSymmetric) {
  const LineSegment a(Point(0, 0, 0), Point(10, 3, 0));
  const LineSegment b(Point(2, 7, 0), Point(6, 5, 0));
  EXPECT_NEAR(SegmentDistance(a, b), SegmentDistance(b, a), 1e-9);
}

TEST(SegmentGeometryTest, IdenticalSegmentsAreAtZero) {
  const LineSegment a(Point(1, 2, 0), Point(8, 9, 0));
  EXPECT_NEAR(SegmentDistance(a, a), 0.0, 1e-12);
}

TEST(DiskTest, ClampKeepsInsidePointsUntouched) {
  const Point center(0, 0, 0);
  const Point inside(1, 1, 5);
  const Point out = ClampIntoDisk(inside, center, 3.0, 7.0);
  EXPECT_DOUBLE_EQ(out.x, 1.0);
  EXPECT_DOUBLE_EQ(out.y, 1.0);
  EXPECT_DOUBLE_EQ(out.t, 7.0);  // time is always replaced
}

TEST(DiskTest, ClampPullsOutsidePointsToBoundary) {
  const Point center(0, 0, 0);
  const Point far(10, 0, 0);
  const Point out = ClampIntoDisk(far, center, 3.0, 0.0);
  EXPECT_NEAR(out.x, 3.0, 1e-12);
  EXPECT_NEAR(out.y, 0.0, 1e-12);
  EXPECT_TRUE(InsideDisk(out, center, 3.0));
}

TEST(DiskTest, ClampIsMinimumDisplacement) {
  Rng rng(3);
  const Point center(5, -2, 0);
  for (int i = 0; i < 200; ++i) {
    const Point p(rng.UniformReal(-50, 50), rng.UniformReal(-50, 50), 0);
    const Point clamped = ClampIntoDisk(p, center, 4.0, 0.0);
    EXPECT_TRUE(InsideDisk(clamped, center, 4.0));
    // Displacement equals max(0, dist - radius): the analytic minimum.
    const double expect = std::max(0.0, SpatialDistance(p, center) - 4.0);
    EXPECT_NEAR(SpatialDistance(p, clamped), expect, 1e-9);
  }
}

TEST(DiskTest, RandomPointsStayInDisk) {
  Rng rng(9);
  const Point center(100, 200, 0);
  for (int i = 0; i < 500; ++i) {
    const Point p = RandomPointInDisk(center, 7.5, 42.0, rng);
    EXPECT_TRUE(InsideDisk(p, center, 7.5));
    EXPECT_DOUBLE_EQ(p.t, 42.0);
  }
}

TEST(DiskTest, RandomPointsCoverTheDisk) {
  // Area-uniformity smoke check: about half the draws should land outside
  // the radius/sqrt(2) inner circle (equal-area split).
  Rng rng(17);
  const Point center(0, 0, 0);
  int outer = 0;
  const int kDraws = 4000;
  for (int i = 0; i < kDraws; ++i) {
    const Point p = RandomPointInDisk(center, 1.0, 0.0, rng);
    if (SpatialDistance(p, center) > 1.0 / std::sqrt(2.0)) {
      ++outer;
    }
  }
  EXPECT_NEAR(static_cast<double>(outer) / kDraws, 0.5, 0.05);
}

TEST(ProjectionTest, AnchorMapsToOrigin) {
  const LocalProjection proj(39.9057, 116.3913);
  const Point p = proj.ToMetric(39.9057, 116.3913, 10.0);
  EXPECT_NEAR(p.x, 0.0, 1e-9);
  EXPECT_NEAR(p.y, 0.0, 1e-9);
  EXPECT_DOUBLE_EQ(p.t, 10.0);
}

TEST(ProjectionTest, RoundTrip) {
  const LocalProjection proj(39.9057, 116.3913);
  const Point p = proj.ToMetric(39.99, 116.5, 0.0);
  double lat = 0.0, lon = 0.0;
  proj.ToGeographic(p, &lat, &lon);
  EXPECT_NEAR(lat, 39.99, 1e-9);
  EXPECT_NEAR(lon, 116.5, 1e-9);
}

TEST(ProjectionTest, OneDegreeLatitudeIsAbout111Km) {
  const LocalProjection proj(39.9057, 116.3913);
  const Point p = proj.ToMetric(40.9057, 116.3913, 0.0);
  EXPECT_NEAR(p.y, 111195.0, 200.0);
  EXPECT_NEAR(p.x, 0.0, 1e-6);
}

}  // namespace
}  // namespace wcop
