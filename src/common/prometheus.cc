#include "common/prometheus.h"

#include <cmath>
#include <cstdio>
#include <cstring>

namespace wcop {
namespace telemetry {
namespace {

bool IsLegalFirst(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
         c == ':';
}

bool IsLegal(char c) {
  return IsLegalFirst(c) || (c >= '0' && c <= '9');
}

// Exposition sample value: integers print exactly, non-finite values use
// the format's literal tokens.
std::string FormatValue(double v) {
  if (std::isnan(v)) {
    return "NaN";
  }
  if (std::isinf(v)) {
    return v > 0 ? "+Inf" : "-Inf";
  }
  char buf[64];
  if (v == static_cast<double>(static_cast<long long>(v)) &&
      std::fabs(v) < 9.0e15) {
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(v));
  } else {
    std::snprintf(buf, sizeof(buf), "%.17g", v);
  }
  return buf;
}

std::string FormatUint(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%llu", static_cast<unsigned long long>(v));
  return buf;
}

// Maps an internal catalog name to its exposition family name: process.*
// metrics keep the conventional unprefixed process_* spelling, everything
// else gains the wcop_ prefix.
std::string FamilyName(std::string_view internal_name) {
  std::string sanitized = SanitizeMetricName(internal_name);
  if (sanitized.rfind("process_", 0) == 0) {
    return sanitized;
  }
  return "wcop_" + sanitized;
}

void AppendHeader(std::string* out, const std::string& family,
                  const char* type, std::string_view internal_name) {
  *out += "# HELP ";
  *out += family;
  *out += " WCOP metric ";
  // The HELP line carries the internal catalog name; escape per format
  // rules (backslash and newline).
  for (char c : internal_name) {
    if (c == '\\') {
      *out += "\\\\";
    } else if (c == '\n') {
      *out += "\\n";
    } else {
      *out += c;
    }
  }
  *out += " (see DESIGN.md section 7)\n";
  *out += "# TYPE ";
  *out += family;
  *out += " ";
  *out += type;
  *out += "\n";
}

}  // namespace

std::string SanitizeMetricName(std::string_view name) {
  std::string out;
  out.reserve(name.size() + 1);
  for (char c : name) {
    out += IsLegal(c) ? c : '_';
  }
  if (out.empty()) {
    out.push_back('_');
  } else if (!IsLegalFirst(out[0])) {
    out.insert(out.begin(), '_');
  }
  return out;
}

std::string EscapeLabelValue(std::string_view value) {
  std::string out;
  out.reserve(value.size());
  for (char c : value) {
    if (c == '\\') {
      out += "\\\\";
    } else if (c == '"') {
      out += "\\\"";
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string ToPrometheusText(const MetricsSnapshot& snapshot) {
  std::string out;
  for (const auto& [name, value] : snapshot.counters) {
    std::string family = FamilyName(name);
    // Counters carry the _total suffix; don't double it for catalog names
    // that already end in "total".
    if (family.size() < 6 ||
        family.compare(family.size() - 6, 6, "_total") != 0) {
      family += "_total";
    }
    AppendHeader(&out, family, "counter", name);
    out += family;
    out += " ";
    out += FormatUint(value);
    out += "\n";
  }
  for (const auto& [name, value] : snapshot.gauges) {
    std::string family = FamilyName(name);
    // A gauge that is semantically cumulative (the /proc collector's
    // process_cpu_seconds_total) keeps its conventional counter type.
    const bool cumulative =
        family.size() >= 6 &&
        family.compare(family.size() - 6, 6, "_total") == 0;
    AppendHeader(&out, family, cumulative ? "counter" : "gauge", name);
    out += family;
    out += " ";
    out += FormatValue(value);
    out += "\n";
  }
  for (const HistogramSummary& h : snapshot.histograms) {
    const std::string family = FamilyName(h.name);
    AppendHeader(&out, family, "histogram", h.name);
    // Cumulative buckets. Recorded values are non-negative integers and
    // internal bucket b covers [2^(b-1), 2^b) (bucket 0 = {0}), so the
    // inclusive upper bound of bucket b is 2^b - 1 — emitting `le` at
    // those bounds keeps the cumulative counts exact, not approximated.
    uint64_t cumulative = 0;
    for (size_t b = 0; b < h.buckets.size(); ++b) {
      if (h.buckets[b] == 0) {
        continue;  // keep the exposition compact: only non-empty buckets
      }
      cumulative += h.buckets[b];
      const uint64_t upper = b == 0 ? 0 : ((uint64_t{1} << b) - 1);
      out += family;
      out += "_bucket{le=\"";
      out += FormatUint(upper);
      out += "\"} ";
      out += FormatUint(cumulative);
      out += "\n";
    }
    // Under concurrent recording a bucket increment can land before the
    // count increment is visible, so pin +Inf (and _count, which must
    // equal it) to at least the cumulative bucket total to keep the
    // series monotone.
    const uint64_t total = cumulative > h.count ? cumulative : h.count;
    out += family;
    out += "_bucket{le=\"+Inf\"} ";
    out += FormatUint(total);
    out += "\n";
    out += family;
    out += "_sum ";
    out += FormatUint(h.sum);
    out += "\n";
    out += family;
    out += "_count ";
    out += FormatUint(total);
    out += "\n";
  }
  return out;
}

}  // namespace telemetry
}  // namespace wcop
