// Property-style parameterized sweeps over the (k_max, delta_max, seed)
// grid: the library's hard guarantees must hold at every operating point,
// not just the defaults.

#include <gtest/gtest.h>

#include <tuple>

#include "anon/wcop.h"
#include "distance/dtw.h"
#include "distance/lcss.h"
#include "related/path_perturbation.h"
#include "related/suppression.h"
#include "segment/convoy.h"
#include "segment/traclus.h"
#include "test_util.h"

namespace wcop {
namespace {

using testing_util::SmallSynthetic;

// ---------------------------------------------------------------------------
// WCOP-CT guarantees across the requirement grid.
// ---------------------------------------------------------------------------

class CtGuarantees
    : public ::testing::TestWithParam<std::tuple<int, double, uint64_t>> {};

TEST_P(CtGuarantees, HoldAtEveryOperatingPoint) {
  const auto [k_max, delta_max, seed] = GetParam();
  const Dataset d = SmallSynthetic(36, 40, k_max, delta_max, seed);
  WcopOptions options;
  options.seed = seed + 1;
  Result<AnonymizationResult> result = RunWcopCt(d, options);
  ASSERT_TRUE(result.ok()) << result.status();

  // 1. Independent anonymity audit.
  const VerificationReport audit = VerifyAnonymity(d, *result);
  EXPECT_TRUE(audit.ok) << (audit.messages.empty() ? "?"
                                                   : audit.messages[0]);
  // 2. Coverage accounting.
  EXPECT_EQ(result->sanitized.size() + result->trashed_ids.size(), d.size());
  // 3. Trash bound (10% default).
  EXPECT_LE(result->report.trashed_trajectories, d.size() / 10);
  // 4. Published trajectories are structurally valid.
  EXPECT_TRUE(result->sanitized.Validate().ok());
  // 5. Report arithmetic.
  EXPECT_GE(result->report.ttd, 0.0);
  EXPECT_DOUBLE_EQ(result->report.total_distortion, result->report.ttd);
}

INSTANTIATE_TEST_SUITE_P(
    RequirementGrid, CtGuarantees,
    ::testing::Combine(::testing::Values(2, 5, 10),
                       ::testing::Values(50.0, 250.0, 1000.0),
                       ::testing::Values(3u, 17u)),
    [](const auto& info) {
      // Built by appending into a named string: the one-expression
      // operator+ chain trips GCC 12's -Wrestrict false positive
      // (PR 105329) depending on inlining.
      std::string name = "k";
      name += std::to_string(std::get<0>(info.param));
      name += "_d";
      name += std::to_string(static_cast<int>(std::get<1>(info.param)));
      name += "_s";
      name += std::to_string(std::get<2>(info.param));
      return name;
    });

// ---------------------------------------------------------------------------
// Translation co-localization property across delta values.
// ---------------------------------------------------------------------------

class TranslationProperty : public ::testing::TestWithParam<double> {};

TEST_P(TranslationProperty, MembersAlwaysWithinHalfDelta) {
  const double delta = GetParam();
  const Dataset d = SmallSynthetic(12, 30, /*k_max=*/3, /*delta_max=*/500.0,
                                   5);
  EdrTolerance tol;
  tol.dx = tol.dy = 1000.0;
  tol.dt = 1e6;
  Rng rng(8);
  const Trajectory& pivot = d[0];
  for (size_t i = 1; i < d.size(); ++i) {
    TranslationStats stats;
    const Trajectory out =
        TranslateToPivot(d[i], pivot, delta, tol, &rng, &stats);
    ASSERT_EQ(out.size(), pivot.size());
    for (size_t j = 0; j < out.size(); ++j) {
      EXPECT_LE(SpatialDistance(out[j], pivot[j]), delta / 2.0 + 1e-6)
          << "delta=" << delta << " member=" << i << " point=" << j;
      EXPECT_DOUBLE_EQ(out[j].t, pivot[j].t);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(DeltaSweep, TranslationProperty,
                         ::testing::Values(0.0, 1.0, 10.0, 100.0, 1000.0),
                         [](const auto& info) {
                           return "delta" +
                                  std::to_string(static_cast<int>(info.param));
                         });

// ---------------------------------------------------------------------------
// Distance-function sanity across random trajectory pairs.
// ---------------------------------------------------------------------------

class DistanceProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DistanceProperty, MetricLikeInvariants) {
  const uint64_t seed = GetParam();
  const Dataset d = SmallSynthetic(8, 25, 3, 200.0, seed);
  EdrTolerance tol = EdrTolerance::FromDeltaMax(200.0, 6.0);
  for (size_t i = 0; i < d.size(); ++i) {
    // Identity of indiscernibles (one direction).
    EXPECT_DOUBLE_EQ(EdrDistance(d[i], d[i], tol), 0.0);
    EXPECT_DOUBLE_EQ(DtwDistance(d[i], d[i]), 0.0);
    EXPECT_EQ(LcssLength(d[i], d[i], tol), d[i].size());
    for (size_t j = i + 1; j < d.size(); ++j) {
      // Symmetry.
      EXPECT_DOUBLE_EQ(EdrDistance(d[i], d[j], tol),
                       EdrDistance(d[j], d[i], tol));
      EXPECT_DOUBLE_EQ(DtwDistance(d[i], d[j]), DtwDistance(d[j], d[i]));
      // Non-negativity and bounds.
      EXPECT_GE(EdrDistance(d[i], d[j], tol), 0.0);
      const double nedr = NormalizedEdrDistance(d[i], d[j], tol);
      EXPECT_GE(nedr, 0.0);
      EXPECT_LE(nedr, 1.0);
      // Op-sequence replay validity.
      EXPECT_TRUE(IsValidOpSequence(EdrOpSequence(d[i], d[j], tol),
                                    d[i].size(), d[j].size()));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DistanceProperty,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

// ---------------------------------------------------------------------------
// Segmentation conservation property across both segmenters and seeds.
// ---------------------------------------------------------------------------

class SegmentationProperty
    : public ::testing::TestWithParam<std::tuple<std::string, uint64_t>> {};

TEST_P(SegmentationProperty, PointConservationAndMetadata) {
  const auto [which, seed] = GetParam();
  const Dataset d = SmallSynthetic(15, 60, 4, 300.0, seed);
  std::unique_ptr<Segmenter> segmenter;
  if (which == "traclus") {
    segmenter = std::make_unique<TraclusSegmenter>();
  } else if (which == "convoy") {
    ConvoyOptions options;
    options.min_objects = 2;
    options.eps = 300.0;
    options.snapshot_interval = 30.0;
    segmenter = std::make_unique<ConvoySegmenter>(options);
  } else {
    segmenter = std::make_unique<FixedLengthSegmenter>(12);
  }
  Result<Dataset> segmented = segmenter->Segment(d);
  ASSERT_TRUE(segmented.ok()) << segmented.status();
  EXPECT_EQ(segmented->TotalPoints(), d.TotalPoints());
  EXPECT_TRUE(segmented->Validate().ok());
  for (const Trajectory& sub : segmented->trajectories()) {
    const Trajectory* parent = d.FindById(sub.parent_id());
    ASSERT_NE(parent, nullptr);
    EXPECT_EQ(sub.requirement().k, parent->requirement().k);
    EXPECT_EQ(sub.object_id(), parent->object_id());
    EXPECT_GE(sub.size(), 2u);
  }
}

INSTANTIATE_TEST_SUITE_P(
    SegmentersAndSeeds, SegmentationProperty,
    ::testing::Combine(::testing::Values("traclus", "convoy", "fixed"),
                       ::testing::Values(2u, 9u, 23u)),
    [](const auto& info) {
      return std::get<0>(info.param) + "_s" +
             std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------------
// Related-work baseline invariants across seeds.
// ---------------------------------------------------------------------------

class RelatedBaselineProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RelatedBaselineProperty, SuppressionNeverInventsPoints) {
  const uint64_t seed = GetParam();
  const Dataset d = SmallSynthetic(25, 40, 4, 300.0, seed);
  SuppressionOptions options;
  options.cell_size = 2000.0;
  options.k = 3;
  Result<SuppressionResult> r = RunSuppression(d, options);
  ASSERT_TRUE(r.ok()) << r.status();
  // Published points are a subset of original points (suppression never
  // moves or creates anything).
  for (const Trajectory& pub : r->sanitized.trajectories()) {
    const Trajectory* orig = d.FindById(pub.id());
    ASSERT_NE(orig, nullptr);
    size_t oi = 0;
    for (const Point& p : pub.points()) {
      while (oi < orig->size() && !((*orig)[oi] == p)) {
        ++oi;
      }
      ASSERT_LT(oi, orig->size())
          << "published point not present in the original";
    }
  }
  // Accounting: published + trashed = input.
  EXPECT_EQ(r->sanitized.size() + r->trashed_ids.size(), d.size());
}

TEST_P(RelatedBaselineProperty, PathPerturbationBoundsDisplacement) {
  const uint64_t seed = GetParam();
  const Dataset d = SmallSynthetic(25, 40, 4, 300.0, seed);
  PathPerturbationOptions options;
  options.radius = 120.0;
  options.seed = seed;
  Result<PathPerturbationResult> r = RunPathPerturbation(d, options);
  ASSERT_TRUE(r.ok());
  ASSERT_EQ(r->perturbed.size(), d.size());
  for (size_t i = 0; i < d.size(); ++i) {
    ASSERT_EQ(r->perturbed[i].size(), d[i].size());
    for (size_t j = 0; j < d[i].size(); ++j) {
      EXPECT_LE(SpatialDistance(r->perturbed[i][j], d[i][j]),
                options.radius + 1e-9);
    }
  }
  EXPECT_TRUE(r->perturbed.Validate().ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, RelatedBaselineProperty,
                         ::testing::Values(3u, 13u, 31u));

// ---------------------------------------------------------------------------
// Attack-vs-k property: larger k should not make linkage easier.
// ---------------------------------------------------------------------------

class AttackProperty : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AttackProperty, StricterKDoesNotIncreaseLinkage) {
  const uint64_t seed = GetParam();
  AttackOptions attack;
  attack.seed = seed + 100;

  auto success_for = [&](int k) {
    Dataset d = SmallSynthetic(36, 40, /*k_max=*/2, /*delta_max=*/300.0,
                               seed);
    for (Trajectory& t : d.mutable_trajectories()) {
      t.set_requirement(Requirement{k, 300.0});
    }
    WcopOptions options;
    options.seed = seed + 1;
    Result<AnonymizationResult> r = RunWcopCt(d, options);
    EXPECT_TRUE(r.ok()) << r.status();
    Result<AttackResult> a = SimulateLinkageAttack(d, r->sanitized, attack);
    EXPECT_TRUE(a.ok());
    return a.ok() ? a->top1_success_rate : 1.0;
  };

  const double at_k2 = success_for(2);
  const double at_k6 = success_for(6);
  // Allow a small tolerance: linkage is stochastic, but the trend must not
  // invert badly.
  EXPECT_LE(at_k6, at_k2 + 0.15) << "seed " << seed;
}

INSTANTIATE_TEST_SUITE_P(Seeds, AttackProperty, ::testing::Values(4u, 11u));

}  // namespace
}  // namespace wcop
