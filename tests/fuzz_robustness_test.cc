// Robustness: the file parsers must never crash or loop on malformed
// input — they fail with a Status or skip garbage records gracefully —
// and the anonymization pipeline must survive adversarial datasets
// (non-finite coordinates, broken timelines, degenerate trajectories)
// by returning a non-OK Status or a structurally valid result.

#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>
#include <fstream>
#include <limits>
#include <string>
#include <vector>

#include "anon/verifier.h"
#include "anon/wcop_ct.h"
#include "common/rng.h"
#include "data/geolife_parser.h"
#include "test_util.h"
#include "traj/io.h"

namespace wcop {
namespace {

namespace fs = std::filesystem;

class FuzzRobustnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = fs::temp_directory_path() / "wcop_fuzz";
    fs::create_directories(dir_);
  }
  void TearDown() override { fs::remove_all(dir_); }

  std::string WriteBytes(const std::string& name, const std::string& bytes) {
    const fs::path path = dir_ / name;
    std::ofstream out(path, std::ios::binary);
    out << bytes;
    return path.string();
  }

  fs::path dir_;
};

std::string RandomBytes(Rng* rng, size_t n, bool printable) {
  std::string out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(printable
                      ? static_cast<char>(rng->UniformInt(32, 126))
                      : static_cast<char>(rng->UniformInt(0, 255)));
  }
  return out;
}

TEST_F(FuzzRobustnessTest, PltParserSurvivesRandomBytes) {
  const LocalProjection proj(39.9057, 116.3913);
  Rng rng(101);
  for (int round = 0; round < 40; ++round) {
    const std::string path = WriteBytes(
        "fuzz_" + std::to_string(round) + ".plt",
        RandomBytes(&rng, 64 + rng.UniformIndex(2048), round % 2 == 0));
    // Must return (any status) without crashing; a parsed result must be
    // structurally valid.
    Result<Trajectory> r = ParsePltFile(path, proj);
    if (r.ok()) {
      EXPECT_TRUE(r->Validate().ok());
    }
  }
}

TEST_F(FuzzRobustnessTest, CsvReaderSurvivesRandomBytes) {
  Rng rng(202);
  for (int round = 0; round < 40; ++round) {
    const std::string path = WriteBytes(
        "fuzz_" + std::to_string(round) + ".csv",
        RandomBytes(&rng, 64 + rng.UniformIndex(2048), round % 2 == 0));
    Result<Dataset> r = ReadDatasetCsv(path);
    if (r.ok()) {
      EXPECT_TRUE(r->Validate().ok());
    }
  }
}

TEST_F(FuzzRobustnessTest, CsvReaderSurvivesTruncatedValidFile) {
  // A valid file cut at every prefix length must parse or error cleanly.
  const std::string full =
      "traj_id,object_id,parent_id,k,delta,x,y,t\n"
      "1,2,-1,3,100.5,10.25,20.5,1000\n"
      "1,2,-1,3,100.5,11.25,21.5,1010\n"
      "2,3,-1,2,50.0,0,0,5\n"
      "2,3,-1,2,50.0,1,1,6\n";
  for (size_t len = 0; len <= full.size(); len += 7) {
    const std::string path =
        WriteBytes("trunc_" + std::to_string(len) + ".csv",
                   full.substr(0, len));
    Result<Dataset> r = ReadDatasetCsv(path);
    if (r.ok()) {
      EXPECT_TRUE(r->Validate().ok());
    }
  }
}

TEST_F(FuzzRobustnessTest, PltParserSurvivesPathologicalNumbers) {
  const LocalProjection proj(39.9057, 116.3913);
  const std::string path = WriteBytes(
      "patho.plt",
      "90.0,180.0,0,0,1e308,x,y\n"
      "-90.0,-180.0,0,0,-1e308,x,y\n"
      "nan,inf,0,0,nan,x,y\n"
      "1e-320,5,0,0,39745.2,2008-10-24,04:48:00\n"
      "39.9,116.4,0,0,39745.3,2008-10-24,07:12:00\n"
      "39.91,116.41,0,0,39745.4,2008-10-24,09:36:00\n");
  Result<Trajectory> r = ParsePltFile(path, proj);
  if (r.ok()) {
    EXPECT_TRUE(r->Validate().ok());  // non-finite points must not survive
  }
}

// ---------------------------------------------------------------------------
// Adversarial end-to-end runs: RunWcopCt must either reject the dataset with
// a clean Status or publish a result the independent verifier accepts. It
// must never crash, hang, or publish structurally invalid trajectories.
// ---------------------------------------------------------------------------

using testing_util::MakeLineWithReq;

// Shared contract check for every adversarial dataset below.
void ExpectCleanRejectionOrValidResult(const Dataset& dataset) {
  WcopOptions options;
  options.seed = 13;
  Result<AnonymizationResult> r = RunWcopCt(dataset, options);
  if (!r.ok()) {
    EXPECT_FALSE(r.status().message().empty()) << r.status();
    return;
  }
  EXPECT_TRUE(r->sanitized.Validate().ok());
  VerificationReport verification = VerifyAnonymity(dataset, *r);
  EXPECT_TRUE(verification.ok)
      << (verification.messages.empty() ? "" : verification.messages.front());
}

TEST(AdversarialPipelineTest, NanCoordinates) {
  Dataset d;
  for (int i = 0; i < 8; ++i) {
    d.Add(MakeLineWithReq(i + 1, i * 10.0, 0.0, 1.0, 1.0, 20, 2, 500.0));
  }
  std::vector<Point> points;
  for (int i = 0; i < 20; ++i) {
    points.emplace_back(std::nan(""), 5.0, 10.0 * i);
  }
  Trajectory poisoned(100, std::move(points), Requirement{2, 500.0});
  d.Add(std::move(poisoned));
  ExpectCleanRejectionOrValidResult(d);
}

TEST(AdversarialPipelineTest, InfiniteCoordinates) {
  Dataset d;
  for (int i = 0; i < 8; ++i) {
    d.Add(MakeLineWithReq(i + 1, i * 10.0, 0.0, 1.0, 1.0, 20, 2, 500.0));
  }
  std::vector<Point> points;
  const double inf = std::numeric_limits<double>::infinity();
  for (int i = 0; i < 20; ++i) {
    points.emplace_back(i % 2 == 0 ? inf : -inf, 5.0, 10.0 * i);
  }
  d.Add(Trajectory(100, std::move(points), Requirement{2, 500.0}));
  ExpectCleanRejectionOrValidResult(d);
}

TEST(AdversarialPipelineTest, NonMonotoneTimestamps) {
  Dataset d;
  for (int i = 0; i < 8; ++i) {
    d.Add(MakeLineWithReq(i + 1, i * 10.0, 0.0, 1.0, 1.0, 20, 2, 500.0));
  }
  std::vector<Point> points;
  for (int i = 0; i < 20; ++i) {
    // Timeline zig-zags backwards every third sample.
    points.emplace_back(1.0 * i, 1.0 * i, i % 3 == 0 ? 100.0 - i : 1.0 * i);
  }
  d.Add(Trajectory(100, std::move(points), Requirement{2, 500.0}));
  ExpectCleanRejectionOrValidResult(d);
}

TEST(AdversarialPipelineTest, ZeroPointTrajectory) {
  Dataset d;
  for (int i = 0; i < 8; ++i) {
    d.Add(MakeLineWithReq(i + 1, i * 10.0, 0.0, 1.0, 1.0, 20, 2, 500.0));
  }
  d.Add(Trajectory(100, {}, Requirement{2, 500.0}));
  ExpectCleanRejectionOrValidResult(d);
}

TEST(AdversarialPipelineTest, SinglePointTrajectory) {
  Dataset d;
  for (int i = 0; i < 8; ++i) {
    d.Add(MakeLineWithReq(i + 1, i * 10.0, 0.0, 1.0, 1.0, 20, 2, 500.0));
  }
  d.Add(Trajectory(100, {Point(3.0, 4.0, 50.0)}, Requirement{2, 500.0}));
  ExpectCleanRejectionOrValidResult(d);
}

TEST(AdversarialPipelineTest, DuplicateTrajectoryIds) {
  Dataset d;
  for (int i = 0; i < 8; ++i) {
    d.Add(MakeLineWithReq(i + 1, i * 10.0, 0.0, 1.0, 1.0, 20, 2, 500.0));
  }
  // Same id as trajectory 1, different geometry.
  d.Add(MakeLineWithReq(1, 500.0, 500.0, -1.0, 0.5, 20, 3, 400.0));
  ExpectCleanRejectionOrValidResult(d);
}

TEST(AdversarialPipelineTest, DuplicateObjectIds) {
  Dataset d;
  for (int i = 0; i < 8; ++i) {
    Trajectory t = MakeLineWithReq(i + 1, i * 10.0, 0.0, 1.0, 1.0, 20, 2,
                                   500.0);
    t.set_object_id(7);  // every trajectory claims the same moving object
    d.Add(std::move(t));
  }
  ExpectCleanRejectionOrValidResult(d);
}

TEST(AdversarialPipelineTest, EmptyDataset) {
  ExpectCleanRejectionOrValidResult(Dataset{});
}

TEST(AdversarialPipelineTest, UnsatisfiableRequirements) {
  // Three trajectories all demanding k = 50: no cluster can ever reach its
  // k, so everything must be trashed or the run must fail cleanly.
  Dataset d;
  for (int i = 0; i < 3; ++i) {
    d.Add(MakeLineWithReq(i + 1, i * 10.0, 0.0, 1.0, 1.0, 20, 50, 500.0));
  }
  ExpectCleanRejectionOrValidResult(d);
}

TEST(AdversarialPipelineTest, ExtremeCoordinateMagnitudes) {
  Dataset d;
  for (int i = 0; i < 8; ++i) {
    d.Add(MakeLineWithReq(i + 1, i * 10.0, 0.0, 1.0, 1.0, 20, 2, 500.0));
  }
  d.Add(MakeLineWithReq(100, 1e15, -1e15, 1e12, -1e12, 20, 2, 500.0));
  ExpectCleanRejectionOrValidResult(d);
}

}  // namespace
}  // namespace wcop
