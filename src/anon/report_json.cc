#include "anon/report_json.h"

#include <cstdio>
#include <fstream>
#include <sstream>

namespace wcop {

namespace {

void AppendField(std::ostringstream& os, const char* key, double value,
                 bool* first) {
  if (!*first) {
    os << ",";
  }
  *first = false;
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.10g", value);
  os << "\"" << key << "\":" << buf;
}

void AppendField(std::ostringstream& os, const char* key, size_t value,
                 bool* first) {
  if (!*first) {
    os << ",";
  }
  *first = false;
  os << "\"" << key << "\":" << value;
}

std::string EscapeJson(const std::string& in) {
  std::string out;
  out.reserve(in.size() + 8);
  for (char c : in) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

std::string ReportToJson(const AnonymizationReport& report) {
  std::ostringstream os;
  os << "{";
  bool first = true;
  AppendField(os, "input_trajectories", report.input_trajectories, &first);
  AppendField(os, "num_clusters", report.num_clusters, &first);
  AppendField(os, "trashed_trajectories", report.trashed_trajectories,
              &first);
  AppendField(os, "trashed_points", report.trashed_points, &first);
  AppendField(os, "discernibility", report.discernibility, &first);
  AppendField(os, "created_points", report.created_points, &first);
  AppendField(os, "deleted_points", report.deleted_points, &first);
  AppendField(os, "total_spatial_translation",
              report.total_spatial_translation, &first);
  AppendField(os, "total_temporal_translation",
              report.total_temporal_translation, &first);
  AppendField(os, "avg_spatial_translation", report.avg_spatial_translation,
              &first);
  AppendField(os, "avg_temporal_translation",
              report.avg_temporal_translation, &first);
  AppendField(os, "omega", report.omega, &first);
  AppendField(os, "ttd", report.ttd, &first);
  AppendField(os, "editing_distortion", report.editing_distortion, &first);
  AppendField(os, "total_distortion", report.total_distortion, &first);
  AppendField(os, "runtime_seconds", report.runtime_seconds, &first);
  AppendField(os, "clustering_rounds", report.clustering_rounds, &first);
  AppendField(os, "final_radius", report.final_radius, &first);
  os << ",\"degraded\":" << (report.degraded ? "true" : "false");
  if (report.degraded) {
    os << ",\"degraded_reason\":\"" << EscapeJson(report.degraded_reason)
       << "\"";
  }
  os << "}";
  return os.str();
}

std::string ResultToJson(const AnonymizationResult& result) {
  std::ostringstream os;
  os << "{\"report\":" << ReportToJson(result.report) << ",\"clusters\":[";
  for (size_t i = 0; i < result.clusters.size(); ++i) {
    const AnonymityCluster& c = result.clusters[i];
    if (i != 0) {
      os << ",";
    }
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.10g", c.delta);
    os << "{\"pivot\":" << c.pivot << ",\"size\":" << c.members.size()
       << ",\"k\":" << c.k << ",\"delta\":" << buf << "}";
  }
  os << "],\"trashed_ids\":[";
  for (size_t i = 0; i < result.trashed_ids.size(); ++i) {
    if (i != 0) {
      os << ",";
    }
    os << result.trashed_ids[i];
  }
  os << "]}";
  return os.str();
}

std::string VerificationToJson(const VerificationReport& report) {
  std::ostringstream os;
  os << "{\"ok\":" << (report.ok ? "true" : "false")
     << ",\"clusters_checked\":" << report.clusters_checked
     << ",\"violations\":" << report.violations << ",\"messages\":[";
  for (size_t i = 0; i < report.messages.size(); ++i) {
    if (i != 0) {
      os << ",";
    }
    os << "\"" << EscapeJson(report.messages[i]) << "\"";
  }
  os << "]}";
  return os.str();
}

Status WriteJsonFile(const std::string& json, const std::string& path) {
  std::ofstream out(path);
  if (!out) {
    return Status::IoError("cannot open for writing: " + path);
  }
  out << json << "\n";
  if (!out) {
    return Status::IoError("write failed: " + path);
  }
  return Status::OK();
}

}  // namespace wcop
