file(REMOVE_RECURSE
  "CMakeFiles/mahdavifar_test.dir/mahdavifar_test.cc.o"
  "CMakeFiles/mahdavifar_test.dir/mahdavifar_test.cc.o.d"
  "mahdavifar_test"
  "mahdavifar_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mahdavifar_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
