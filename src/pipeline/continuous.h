#ifndef WCOP_PIPELINE_CONTINUOUS_H_
#define WCOP_PIPELINE_CONTINUOUS_H_

/// Out-of-core, resumable continuous publication (DESIGN.md "Continuous
/// publication pipeline").
///
/// The engine reads a finished `.wst` trajectory store, slices it into
/// fixed-width time windows, and publishes each window as its own
/// atomically-finished output store plus a manifest record — the durable
/// commit point (see manifest.h). Per window it:
///
///   1. extracts the window's fragments out-of-core (store/window_io.h),
///      merging carry-over records spilled by the previous window and
///      spilling this window's own short-but-continuing fragments,
///   2. re-partitions and anonymizes the fragments through the sharded
///      WCOP-CT runner, streaming published trajectories straight to the
///      final window store (peak memory stays bounded by the largest
///      shard, never the window or the dataset),
///   3. commits the manifest, then garbage-collects scratch state older
///      than the two-window carry retention horizon.
///
/// Robustness contract: `kill -9`, SIGTERM, ENOSPC, short writes, or a
/// torn rename at ANY point of the window lifecycle must, on a restarted
/// run with `resume = true`, converge to byte-identical published output.
/// The mechanism is determinism + atomic commits: every window is a pure
/// function of (source store, options, carry-over chain), every store and
/// manifest is published via write-tmp/fsync/rename, and restart replays
/// manifests from window 0, recomputing from the first window whose
/// manifest, output bytes, or input carry chain fail their CRC checks.
/// tests/pipeline_chaos_test.cc enforces the contract with a seeded kill
/// matrix and errno-injection schedules over the pipeline.* failpoints.

#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "anon/types.h"
#include "common/result.h"
#include "common/retry.h"
#include "pipeline/manifest.h"
#include "store/partitioner.h"
#include "store/store_file.h"

namespace wcop {
namespace pipeline {

/// Live progress of a pipeline run, invoked after every committed window
/// (resumed windows included, so a resumed run replays its progress).
struct PipelineProgress {
  size_t windows_done = 0;
  size_t windows_total = 0;
  uint64_t published_fragments = 0;
  uint64_t suppressed_fragments = 0;
  uint64_t carried = 0;  ///< carry records spilled by the last window
  double last_window_seconds = 0.0;  ///< wall time of the last window
};

struct ContinuousPipelineOptions {
  /// Finished source store (`.wst`) holding the full history to publish.
  std::string source_store;

  /// Published windows land here as `window_NNNNN.wst` + `window_NNNNN.mfr`.
  /// Created if missing.
  std::string output_dir;

  /// Scratch space for window inputs, carry-over spills, shard stores and
  /// shard checkpoints. Empty = `<output_dir>/.work`. Safe to delete
  /// between runs (costs recomputation, never correctness).
  std::string work_dir;

  /// Window width in seconds of trajectory time.
  double window_seconds = 3600.0;

  /// Fragments shorter than this are spilled to the next window when their
  /// source trajectory continues, else suppressed (paper §6 semantics,
  /// same default as StreamingOptions).
  size_t min_fragment_points = 2;

  /// Publish at most this many windows (0 = the full grid). The manifest
  /// chain stays valid either way, so a capped run is a prefix of — and
  /// resumable into — the full run.
  size_t max_windows = 0;

  /// When false (the default) a non-empty output directory that already
  /// contains `window_00000.mfr` is kFailedPrecondition — refusing to
  /// silently adopt previous state. When true, valid published windows are
  /// verified and skipped and the run continues from the first window that
  /// is missing or fails verification.
  bool resume = false;

  /// Per-window anonymization options. `threads` is honored inside each
  /// shard; observability fields (telemetry) receive pipeline.* counters
  /// when set. Published bytes are independent of both (PR 4 guarantee).
  WcopOptions wcop;

  /// Per-window re-partitioning options (store/partitioner.h).
  store::PartitionOptions partition;

  /// Audit every shard of every window with VerifyAnonymity (slow; the
  /// chaos and e2e tests turn it on, production defaults off).
  bool verify_shards = false;

  /// Persist per-shard checkpoints under the work dir so a mid-window
  /// crash resumes shard-by-shard instead of re-anonymizing the window.
  bool shard_checkpoints = true;

  /// When set, each window's whole execute-and-publish step runs under
  /// RetryCall: transient kIoError failures (the injected-ENOSPC class)
  /// re-run the window from extraction, which is idempotent. Non-owning.
  const RetryPolicy* publish_retry = nullptr;

  /// Progress sink; called once per committed window. Keep it cheap.
  std::function<void(const PipelineProgress&)> progress;
};

struct ContinuousPipelineResult {
  size_t windows_total = 0;
  size_t resumed_windows = 0;  ///< verified and skipped, not recomputed
  uint64_t published_fragments = 0;
  uint64_t suppressed_fragments = 0;  ///< includes the trailing carry
  uint64_t total_clusters = 0;
  double total_ttd = 0.0;
  bool degraded = false;
  /// One committed manifest per window, in window order — the same records
  /// durably stored next to the output stores.
  std::vector<WindowManifest> windows;
};

/// Everything that must match for previously published windows to be
/// adopted on resume: the source store's index (ids, sizes, extents,
/// requirements), the window grid, and the anonymization/partition options.
uint64_t PipelineConfigFingerprint(const store::TrajectoryStoreReader& source,
                                   const ContinuousPipelineOptions& options);

/// Runs (or resumes) the pipeline. See the robustness contract above.
Result<ContinuousPipelineResult> RunContinuousPipeline(
    const ContinuousPipelineOptions& options);

}  // namespace pipeline
}  // namespace wcop

#endif  // WCOP_PIPELINE_CONTINUOUS_H_
