#ifndef WCOP_TRAJ_SIMPLIFY_H_
#define WCOP_TRAJ_SIMPLIFY_H_

#include "traj/dataset.h"
#include "traj/trajectory.h"

namespace wcop {

/// Douglas-Peucker trajectory simplification — the standard lossy
/// preprocessing of trajectory systems: drop points whose removal displaces
/// the polyline by less than a tolerance. Complements the uniform
/// downsampler in resample.h (which bounds the point *count*, not the
/// shape error); a GeoLife-scale pipeline typically simplifies before
/// feeding the quadratic EDR stages.

/// Simplifies `t` with spatial tolerance `epsilon` (metres): every removed
/// point lies within `epsilon` of the simplified polyline (distances
/// measured point-to-segment in space; timestamps ride along unchanged).
/// First and last points are always kept. Non-positive epsilon returns the
/// input unchanged.
Trajectory SimplifyDouglasPeucker(const Trajectory& t, double epsilon);

/// Applies SimplifyDouglasPeucker to every trajectory.
Dataset SimplifyDataset(const Dataset& dataset, double epsilon);

/// Maximum spatial deviation between `simplified` (a subset polyline of
/// `original`'s points) and the original: the largest distance from any
/// original point to the simplified polyline's corresponding segment.
/// Diagnostic companion to the simplifier (and its test oracle).
double MaxSimplificationError(const Trajectory& original,
                              const Trajectory& simplified);

}  // namespace wcop

#endif  // WCOP_TRAJ_SIMPLIFY_H_
