#include "anon/verifier.h"

#include <algorithm>
#include <cmath>
#include <unordered_map>
#include <unordered_set>

namespace wcop {

namespace {

void AddViolation(VerificationReport* report, size_t max_messages,
                  std::string message) {
  ++report->violations;
  if (report->messages.size() < max_messages) {
    report->messages.push_back(std::move(message));
  }
}

/// First-principles pairwise co-localization check at shared timestamps.
bool PairColocalized(const Trajectory& a, const Trajectory& b, double delta) {
  if (a.size() != b.size()) {
    return false;
  }
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::abs(a[i].t - b[i].t) > 1e-6) {
      return false;
    }
    const double dx = a[i].x - b[i].x;
    const double dy = a[i].y - b[i].y;
    if (std::sqrt(dx * dx + dy * dy) > delta + 1e-6) {
      return false;
    }
  }
  return true;
}

}  // namespace

VerificationReport VerifyAnonymity(const Dataset& original,
                                   const AnonymizationResult& result,
                                   size_t max_messages) {
  VerificationReport report;

  // Index the published trajectories by id.
  std::unordered_map<int64_t, const Trajectory*> published;
  for (const Trajectory& t : result.sanitized.trajectories()) {
    if (!published.emplace(t.id(), &t).second) {
      AddViolation(&report, max_messages,
                   "duplicate published id " + std::to_string(t.id()));
    }
  }
  std::unordered_set<int64_t> trashed(result.trashed_ids.begin(),
                                      result.trashed_ids.end());

  // Coverage: each original id is published XOR trashed.
  for (const Trajectory& t : original.trajectories()) {
    const bool is_published = published.count(t.id()) != 0;
    const bool is_trashed = trashed.count(t.id()) != 0;
    if (is_published == is_trashed) {
      AddViolation(&report, max_messages,
                   "trajectory " + std::to_string(t.id()) +
                       (is_published ? " both published and trashed"
                                     : " neither published nor trashed"));
    }
  }

  // Per-cluster anonymity-set audit.
  for (const AnonymityCluster& cluster : result.clusters) {
    ++report.clusters_checked;
    std::vector<const Trajectory*> members;
    int max_personal_k = 0;
    double min_personal_delta = std::numeric_limits<double>::infinity();
    for (size_t idx : cluster.members) {
      if (idx >= original.size()) {
        AddViolation(&report, max_messages,
                     "cluster references out-of-range index " +
                         std::to_string(idx));
        continue;
      }
      const Trajectory& orig = original[idx];
      max_personal_k = std::max(max_personal_k, orig.requirement().k);
      min_personal_delta =
          std::min(min_personal_delta, orig.requirement().delta);
      auto it = published.find(orig.id());
      if (it == published.end()) {
        AddViolation(&report, max_messages,
                     "cluster member " + std::to_string(orig.id()) +
                         " was not published");
        continue;
      }
      members.push_back(it->second);
      // Metadata preservation.
      if (it->second->object_id() != orig.object_id()) {
        AddViolation(&report, max_messages,
                     "object id changed for trajectory " +
                         std::to_string(orig.id()));
      }
    }
    // Personalization guarantee: the cluster satisfies every member.
    if (cluster.k < max_personal_k) {
      AddViolation(&report, max_messages,
                   "cluster k=" + std::to_string(cluster.k) +
                       " below a member's personal k=" +
                       std::to_string(max_personal_k));
    }
    if (cluster.delta > min_personal_delta + 1e-9) {
      AddViolation(&report, max_messages,
                   "cluster delta exceeds a member's personal delta");
    }
    if (members.size() < static_cast<size_t>(cluster.k)) {
      AddViolation(&report, max_messages,
                   "cluster of size " + std::to_string(members.size()) +
                       " cannot satisfy k=" + std::to_string(cluster.k));
    }
    // Definition 3: all pairs co-localized w.r.t. the cluster delta.
    for (size_t i = 0; i < members.size(); ++i) {
      for (size_t j = i + 1; j < members.size(); ++j) {
        if (!PairColocalized(*members[i], *members[j], cluster.delta)) {
          AddViolation(&report, max_messages,
                       "members " + std::to_string(members[i]->id()) +
                           " and " + std::to_string(members[j]->id()) +
                           " are not co-localized within cluster delta");
        }
      }
    }
  }

  report.ok = report.violations == 0;
  return report;
}

}  // namespace wcop
