// End-to-end tests of the anonymization service: admission, backpressure,
// deadlines/budgets, tenant policy, drain vs. immediate shutdown, in-process
// ledger recovery, and the HTTP endpoint + client over a real unix socket.
//
// Deterministic jamming: several tests need the single worker to be busy
// while the test probes the queue. They submit a "slow" job (a dataset big
// enough that its pairwise-distance phase dominates), wait until the health
// endpoint reports it running, and then interact with a queue that is
// guaranteed not to drain for the duration of the probe.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "common/telemetry.h"
#include "data/synthetic.h"
#include "server/client.h"
#include "server/endpoint.h"
#include "server/service.h"
#include "store/store_file.h"
#include "test_util.h"

namespace wcop {
namespace server {
namespace {

using testing_util::SmallSynthetic;

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = std::filesystem::path(::testing::TempDir()) /
           ("server_" + std::string(::testing::UnitTest::GetInstance()
                                        ->current_test_info()
                                        ->name()));
    std::filesystem::remove_all(dir_);
    std::filesystem::create_directories(dir_);
  }
  void TearDown() override { std::filesystem::remove_all(dir_); }

  std::string Path(const std::string& name) const {
    return (dir_ / name).string();
  }

  // Small input: anonymizes in a few milliseconds.
  std::string SmallStore() {
    const std::string path = Path("small.wst");
    if (!std::filesystem::exists(path)) {
      EXPECT_TRUE(
          store::WriteDatasetStore(SmallSynthetic(24, 24), path).ok());
    }
    return path;
  }

  // Big input: the O(n^2 m^2) distance phase keeps a worker busy long
  // enough (hundreds of milliseconds) for the test to probe a full queue.
  std::string SlowStore() {
    const std::string path = Path("slow.wst");
    if (!std::filesystem::exists(path)) {
      EXPECT_TRUE(
          store::WriteDatasetStore(SmallSynthetic(120, 80), path).ok());
    }
    return path;
  }

  // Four far-apart synthetic cities: the input shape the partitioner can
  // split into multiple shards (one dense city collapses to one shard by
  // design). Needed by the live-progress and trace tests.
  std::string TiledStore() {
    const std::string path = Path("tiled.wst");
    if (!std::filesystem::exists(path)) {
      SyntheticOptions options;
      options.seed = 21;
      options.num_users = 8;
      options.num_trajectories = 20;
      options.points_per_trajectory = 24;
      options.sampling_interval = 10.0;
      options.region_half_diagonal = 6000.0;
      options.num_hubs = 5;
      options.num_routes = 4;
      options.dataset_duration_days = 10.0;
      Dataset dataset =
          GenerateTiledSyntheticGeoLife(options, 4, 200000.0).value();
      Rng rng(22);
      AssignUniformRequirements(&dataset, 2, 4, 10.0, 200.0, &rng);
      EXPECT_TRUE(store::WriteDatasetStore(dataset, path).ok());
    }
    return path;
  }

  ServiceOptions BaseOptions() {
    ServiceOptions options;
    options.job_dir = Path("jobs");
    options.queue_capacity = 8;
    options.workers = 1;
    return options;
  }

  static JobSpec Spec(const std::string& name, const std::string& input) {
    JobSpec spec;
    spec.name = name;
    spec.input_store = input;
    return spec;
  }

  // Blocks until `service` reports a job executing (the jam is in place).
  static void AwaitRunning(AnonymizationService* service) {
    for (int i = 0; i < 10000; ++i) {
      if (service->GetHealth().running > 0) {
        return;
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
    }
    FAIL() << "no job started running within the wait budget";
  }

  std::filesystem::path dir_;
};

// ---------------------------------------------------------------------------
// The happy path.
// ---------------------------------------------------------------------------

TEST_F(ServerTest, SubmitRunsToVerifiedPublishedOutput) {
  Result<std::unique_ptr<AnonymizationService>> service =
      AnonymizationService::Start(BaseOptions());
  ASSERT_TRUE(service.ok()) << service.status();

  JobSpec spec = Spec("basic", SmallStore());
  spec.shards = 2;
  Result<int64_t> id = (*service)->Submit(spec);
  ASSERT_TRUE(id.ok()) << id.status();
  (*service)->AwaitIdle();

  Result<JobRecord> record = (*service)->GetJob(*id);
  ASSERT_TRUE(record.ok()) << record.status();
  EXPECT_EQ(record->state, JobState::kDone);
  EXPECT_EQ(record->attempts, 1u);
  EXPECT_TRUE(record->outcome.verified);
  EXPECT_FALSE(record->outcome.degraded);
  EXPECT_GT(record->outcome.published, 0u);
  // The default output path and atomic publication: the CSV exists, no
  // .tmp orphan remains.
  const std::string out = (*service)->job_dir() + "/out/basic.csv";
  EXPECT_EQ(record->spec.output_csv, out);
  EXPECT_TRUE(std::filesystem::exists(out));
  EXPECT_FALSE(std::filesystem::exists(out + ".tmp"));

  const telemetry::MetricsSnapshot metrics =
      (*service)->telemetry().metrics().Snapshot();
  EXPECT_EQ(metrics.CounterValue("server.jobs.accepted"), 1u);
  EXPECT_EQ(metrics.CounterValue("server.jobs.completed"), 1u);
  EXPECT_EQ(metrics.CounterValue("server.jobs.failed"), 0u);
  EXPECT_NE(metrics.FindHistogram("server.job.exec_ns"), nullptr);

  const AnonymizationService::Health health = (*service)->GetHealth();
  EXPECT_EQ(health.done, 1u);
  EXPECT_EQ(health.failed, 0u);
}

TEST_F(ServerTest, ResubmittingAKnownNameDedupes) {
  Result<std::unique_ptr<AnonymizationService>> service =
      AnonymizationService::Start(BaseOptions());
  ASSERT_TRUE(service.ok()) << service.status();
  Result<int64_t> first = (*service)->Submit(Spec("once", SmallStore()));
  ASSERT_TRUE(first.ok()) << first.status();
  Result<int64_t> again = (*service)->Submit(Spec("once", SmallStore()));
  ASSERT_TRUE(again.ok()) << again.status();
  EXPECT_EQ(*again, *first);
  (*service)->AwaitIdle();
  // And a third time after completion: still the same job, still done.
  Result<int64_t> after = (*service)->Submit(Spec("once", SmallStore()));
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_EQ(*after, *first);
  EXPECT_EQ((*service)
                ->telemetry()
                .metrics()
                .Snapshot()
                .CounterValue("server.jobs.deduped"),
            2u);
  EXPECT_EQ((*service)->Jobs().size(), 1u);
}

TEST_F(ServerTest, InvalidSubmissionsAreRejectedUpFront) {
  Result<std::unique_ptr<AnonymizationService>> service =
      AnonymizationService::Start(BaseOptions());
  ASSERT_TRUE(service.ok()) << service.status();

  JobSpec bad_name = Spec("no spaces allowed", SmallStore());
  EXPECT_EQ((*service)->Submit(bad_name).status().code(),
            StatusCode::kInvalidArgument);

  JobSpec missing_store = Spec("ghost", Path("does_not_exist.wst"));
  EXPECT_EQ((*service)->Submit(missing_store).status().code(),
            StatusCode::kInvalidArgument);

  // An empty (but structurally valid) store holds no work to anonymize.
  const std::string empty_path = Path("empty.wst");
  ASSERT_TRUE(store::WriteDatasetStore(Dataset(), empty_path).ok());
  JobSpec empty = Spec("empty", empty_path);
  EXPECT_EQ((*service)->Submit(empty).status().code(),
            StatusCode::kInvalidArgument);

  EXPECT_EQ((*service)
                ->telemetry()
                .metrics()
                .Snapshot()
                .CounterValue("server.jobs.invalid"),
            3u);
  EXPECT_TRUE((*service)->Jobs().empty());
}

TEST_F(ServerTest, TenantPolicyFillsUnsetFields) {
  ServiceOptions options = BaseOptions();
  TenantPolicy acme;
  acme.default_k = 3;
  acme.default_delta = 250.0;
  acme.allow_partial_default = true;
  options.tenants["acme"] = acme;
  Result<std::unique_ptr<AnonymizationService>> service =
      AnonymizationService::Start(options);
  ASSERT_TRUE(service.ok()) << service.status();

  JobSpec spec = Spec("acme-job", SmallStore());
  spec.tenant = "acme";
  Result<int64_t> id = (*service)->Submit(spec);
  ASSERT_TRUE(id.ok()) << id.status();
  (*service)->AwaitIdle();

  Result<JobRecord> record = (*service)->GetJob(*id);
  ASSERT_TRUE(record.ok()) << record.status();
  // The admitted record carries the applied policy, so the client can see
  // exactly what (k, delta) its job ran under.
  EXPECT_EQ(record->spec.assign_k, 3);
  EXPECT_EQ(record->spec.assign_delta, 250.0);
  EXPECT_TRUE(record->spec.allow_partial);
  EXPECT_EQ(record->state, JobState::kDone);

  // An unknown tenant gets the (empty) default policy: nothing overridden.
  Result<int64_t> other =
      (*service)->Submit(Spec("other-job", SmallStore()));
  ASSERT_TRUE(other.ok()) << other.status();
  Result<JobRecord> other_record = (*service)->GetJob(*other);
  ASSERT_TRUE(other_record.ok());
  EXPECT_EQ(other_record->spec.assign_k, 0);
  (*service)->AwaitIdle();
}

// ---------------------------------------------------------------------------
// Admission control and backpressure.
// ---------------------------------------------------------------------------

TEST_F(ServerTest, FullQueueRejectsWithExplicitBackpressure) {
  ServiceOptions options = BaseOptions();
  options.queue_capacity = 1;
  Result<std::unique_ptr<AnonymizationService>> service =
      AnonymizationService::Start(options);
  ASSERT_TRUE(service.ok()) << service.status();

  ASSERT_TRUE((*service)->Submit(Spec("jam", SlowStore())).ok());
  AwaitRunning(service->get());
  ASSERT_TRUE((*service)->Submit(Spec("queued", SlowStore())).ok());

  Result<int64_t> overflow = (*service)->Submit(Spec("bounced", SmallStore()));
  ASSERT_FALSE(overflow.ok());
  EXPECT_EQ(overflow.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(overflow.status().message().find("capacity"), std::string::npos)
      << overflow.status();
  EXPECT_EQ((*service)
                ->telemetry()
                .metrics()
                .Snapshot()
                .CounterValue("server.jobs.rejected"),
            1u);
  // Rejected means rejected: no ledger record, no job, no output.
  EXPECT_EQ((*service)->Jobs().size(), 2u);

  // Backpressure is transient by design: once the queue drains the same
  // submission is welcome.
  (*service)->AwaitIdle();
  Result<int64_t> retry = (*service)->Submit(Spec("bounced", SmallStore()));
  ASSERT_TRUE(retry.ok()) << retry.status();
  (*service)->AwaitIdle();
  Result<JobRecord> record = (*service)->GetJob(*retry);
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(record->state, JobState::kDone);
}

// ---------------------------------------------------------------------------
// Deadlines and budgets: degrade explicitly or fail closed — never silent
// partial output.
// ---------------------------------------------------------------------------

TEST_F(ServerTest, DeadlineExpiredInQueueFailsClosed) {
  Result<std::unique_ptr<AnonymizationService>> service =
      AnonymizationService::Start(BaseOptions());
  ASSERT_TRUE(service.ok()) << service.status();

  ASSERT_TRUE((*service)->Submit(Spec("jam", SlowStore())).ok());
  AwaitRunning(service->get());
  // 1 ms deadline, measured from admission: it expires while the job waits
  // behind the jam, so the worker fails it fast instead of running it late.
  JobSpec late = Spec("late", SmallStore());
  late.deadline_ms = 1;
  Result<int64_t> id = (*service)->Submit(late);
  ASSERT_TRUE(id.ok()) << id.status();
  (*service)->AwaitIdle();

  Result<JobRecord> record = (*service)->GetJob(*id);
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(record->state, JobState::kFailed);
  EXPECT_NE(record->outcome.error.find("deadline"), std::string::npos)
      << record->outcome.error;
  // Failing closed: nothing was published under the expired deadline.
  EXPECT_FALSE(std::filesystem::exists(record->spec.output_csv));
  EXPECT_EQ((*service)
                ->telemetry()
                .metrics()
                .Snapshot()
                .CounterValue("server.jobs.deadline_exceeded"),
            1u);
}

TEST_F(ServerTest, BudgetTripFailsClosedWithoutAllowPartial) {
  Result<std::unique_ptr<AnonymizationService>> service =
      AnonymizationService::Start(BaseOptions());
  ASSERT_TRUE(service.ok()) << service.status();
  JobSpec strict = Spec("strict", SmallStore());
  strict.max_distance_computations = 1;  // trips almost immediately
  Result<int64_t> id = (*service)->Submit(strict);
  ASSERT_TRUE(id.ok()) << id.status();
  (*service)->AwaitIdle();

  Result<JobRecord> record = (*service)->GetJob(*id);
  ASSERT_TRUE(record.ok());
  EXPECT_EQ(record->state, JobState::kFailed);
  EXPECT_FALSE(record->outcome.error.empty());
  EXPECT_FALSE(std::filesystem::exists(record->spec.output_csv))
      << "a failed job must not leave output behind";
}

TEST_F(ServerTest, BudgetTripDegradesGracefullyWithAllowPartial) {
  Result<std::unique_ptr<AnonymizationService>> service =
      AnonymizationService::Start(BaseOptions());
  ASSERT_TRUE(service.ok()) << service.status();
  JobSpec partial = Spec("partial", SmallStore());
  partial.max_distance_computations = 1;
  partial.allow_partial = true;
  Result<int64_t> id = (*service)->Submit(partial);
  ASSERT_TRUE(id.ok()) << id.status();
  (*service)->AwaitIdle();

  Result<JobRecord> record = (*service)->GetJob(*id);
  ASSERT_TRUE(record.ok());
  // Graceful degradation is explicit: the job completes, the output is
  // published (verified), and the degradation is flagged with its reason.
  EXPECT_EQ(record->state, JobState::kDone);
  EXPECT_TRUE(record->outcome.degraded);
  EXPECT_FALSE(record->outcome.degraded_reason.empty());
  EXPECT_TRUE(std::filesystem::exists(record->spec.output_csv));
  EXPECT_EQ((*service)
                ->telemetry()
                .metrics()
                .Snapshot()
                .CounterValue("server.jobs.degraded"),
            1u);
}

// ---------------------------------------------------------------------------
// Shutdown and recovery.
// ---------------------------------------------------------------------------

TEST_F(ServerTest, DrainShutdownFinishesQueuedJobs) {
  Result<std::unique_ptr<AnonymizationService>> service =
      AnonymizationService::Start(BaseOptions());
  ASSERT_TRUE(service.ok()) << service.status();
  Result<int64_t> jam = (*service)->Submit(Spec("jam", SlowStore()));
  ASSERT_TRUE(jam.ok());
  AwaitRunning(service->get());
  Result<int64_t> queued = (*service)->Submit(Spec("queued", SmallStore()));
  ASSERT_TRUE(queued.ok());

  (*service)->BeginShutdown(/*drain=*/true);
  // Intake is closed immediately...
  EXPECT_EQ((*service)->Submit(Spec("toolate", SmallStore())).status().code(),
            StatusCode::kFailedPrecondition);
  // ...but everything already accepted completes.
  (*service)->AwaitTermination();
  EXPECT_EQ((*service)->GetJob(*jam)->state, JobState::kDone);
  EXPECT_EQ((*service)->GetJob(*queued)->state, JobState::kDone);
}

TEST_F(ServerTest, ImmediateShutdownRequeuesAndRestartRecovers) {
  const std::string slow = SlowStore();
  const std::string small = SmallStore();
  ServiceOptions options = BaseOptions();
  int64_t jam_id = 0;
  {
    Result<std::unique_ptr<AnonymizationService>> service =
        AnonymizationService::Start(options);
    ASSERT_TRUE(service.ok()) << service.status();
    Result<int64_t> jam = (*service)->Submit(Spec("jam", slow));
    ASSERT_TRUE(jam.ok());
    jam_id = *jam;
    AwaitRunning(service->get());
    ASSERT_TRUE((*service)->Submit(Spec("q1", small)).ok());
    ASSERT_TRUE((*service)->Submit(Spec("q2", small)).ok());
    // Immediate shutdown: the running job trips on the cancellation token,
    // flushes its shard checkpoints, and is requeued; q1/q2 never start.
    (*service)->BeginShutdown(/*drain=*/false);
    (*service)->AwaitTermination();
    // Nothing may have been published during teardown.
    EXPECT_FALSE(
        std::filesystem::exists(options.job_dir + "/out/jam.csv"));
  }

  // A new life on the same job_dir finds all three in the ledger and runs
  // them to completion.
  Result<std::unique_ptr<AnonymizationService>> revived =
      AnonymizationService::Start(options);
  ASSERT_TRUE(revived.ok()) << revived.status();
  EXPECT_GE((*revived)->recovered_jobs(), 2u);
  EXPECT_EQ((*revived)->GetHealth().recovered, (*revived)->recovered_jobs());
  (*revived)->AwaitIdle();
  for (const JobRecord& record : (*revived)->Jobs()) {
    EXPECT_EQ(record.state, JobState::kDone) << record.spec.name;
    EXPECT_TRUE(std::filesystem::exists(record.spec.output_csv))
        << record.spec.name;
  }
  // The jammed job survived its interrupted first life.
  Result<JobRecord> jam = (*revived)->GetJob(jam_id);
  ASSERT_TRUE(jam.ok());
  EXPECT_EQ(jam->spec.name, "jam");
  EXPECT_GE(jam->attempts, 1u);
}

// ---------------------------------------------------------------------------
// The HTTP endpoint and client, over a real unix socket.
// ---------------------------------------------------------------------------

TEST_F(ServerTest, EndpointServesJobsHealthAndMetrics) {
  Result<std::unique_ptr<AnonymizationService>> service =
      AnonymizationService::Start(BaseOptions());
  ASSERT_TRUE(service.ok()) << service.status();
  HttpServer::Options http;
  http.socket_path = Path("wcop.sock");
  Result<std::unique_ptr<ServiceEndpoint>> endpoint =
      ServiceEndpoint::Attach(service->get(), http);
  ASSERT_TRUE(endpoint.ok()) << endpoint.status();

  const ServiceClient client(http.socket_path);
  Result<std::string> health = client.Health();
  ASSERT_TRUE(health.ok()) << health.status();
  EXPECT_EQ(health->rfind("ok\n", 0), 0u) << *health;
  EXPECT_NE(health->find("queue_capacity 8"), std::string::npos) << *health;

  JobSpec spec = Spec("via-http", SmallStore());
  Result<JobRecord> submitted = client.Submit(spec);
  ASSERT_TRUE(submitted.ok()) << submitted.status();
  EXPECT_GT(submitted->id, 0);
  Result<JobRecord> finished =
      client.WaitForJob(submitted->id, std::chrono::seconds(60));
  ASSERT_TRUE(finished.ok()) << finished.status();
  EXPECT_EQ(finished->state, JobState::kDone);
  EXPECT_GT(finished->outcome.published, 0u);
  EXPECT_TRUE(std::filesystem::exists(finished->spec.output_csv));

  // Transport error mapping: unknown job -> 404 -> kNotFound; invalid spec
  // -> 400 -> kInvalidArgument.
  EXPECT_EQ(client.GetJob(424242).status().code(), StatusCode::kNotFound);
  EXPECT_EQ(client.Submit(Spec("bad name", SmallStore())).status().code(),
            StatusCode::kInvalidArgument);

  // Default /metrics speaks Prometheus text exposition 0.0.4: typed
  // families, _total counters, cumulative histogram series, and the
  // process collector's gauges.
  Result<std::string> metrics = client.Metrics();
  ASSERT_TRUE(metrics.ok()) << metrics.status();
  EXPECT_NE(metrics->find("# TYPE wcop_server_jobs_accepted_total counter"),
            std::string::npos)
      << *metrics;
  EXPECT_NE(metrics->find("wcop_server_jobs_accepted_total 1"),
            std::string::npos)
      << *metrics;
  EXPECT_NE(metrics->find("wcop_server_job_exec_ns_bucket{le=\"+Inf\"}"),
            std::string::npos)
      << *metrics;
  EXPECT_NE(metrics->find("wcop_server_job_exec_ns_count"),
            std::string::npos)
      << *metrics;
#ifdef __linux__
  EXPECT_NE(metrics->find("process_resident_memory_bytes"),
            std::string::npos)
      << *metrics;
#endif

  // The pre-Prometheus human-readable dump survives under ?format=text.
  Result<std::string> legacy = client.Metrics(/*legacy_format=*/true);
  ASSERT_TRUE(legacy.ok()) << legacy.status();
  EXPECT_NE(legacy->find("counter server.jobs.accepted 1"),
            std::string::npos)
      << *legacy;
  EXPECT_NE(legacy->find("histogram server.job.exec_ns"), std::string::npos)
      << *legacy;

  // GET /jobs lists every record the service knows about.
  Result<std::vector<JobRecord>> listed = client.ListJobs();
  ASSERT_TRUE(listed.ok()) << listed.status();
  ASSERT_EQ(listed->size(), 1u);
  EXPECT_EQ((*listed)[0].spec.name, "via-http");
  EXPECT_EQ((*listed)[0].state, JobState::kDone);

  // POST /shutdown flips the flags the daemon's main loop polls.
  EXPECT_FALSE((*endpoint)->shutdown_requested());
  ASSERT_TRUE(client.Shutdown(/*drain=*/true).ok());
  EXPECT_TRUE((*endpoint)->shutdown_requested());
  EXPECT_TRUE((*endpoint)->drain_requested());

  (*endpoint)->Stop();
  (*service)->BeginShutdown(/*drain=*/true);
  (*service)->AwaitTermination();
}

// The PR-7 acceptance path: a 4-shard job submitted over HTTP exposes a
// monotone live progress sequence while running, and once done serves a
// Chrome trace JSON whose spans carry the job's trace id and come from at
// least two distinct shard lanes (pid = 2 + shard_index; coordinator = 1).
TEST_F(ServerTest, EndpointServesLiveProgressAndTrace) {
  Result<std::unique_ptr<AnonymizationService>> service =
      AnonymizationService::Start(BaseOptions());
  ASSERT_TRUE(service.ok()) << service.status();
  HttpServer::Options http;
  http.socket_path = Path("wcop.sock");
  Result<std::unique_ptr<ServiceEndpoint>> endpoint =
      ServiceEndpoint::Attach(service->get(), http);
  ASSERT_TRUE(endpoint.ok()) << endpoint.status();
  const ServiceClient client(http.socket_path);

  JobSpec spec = Spec("tiled", TiledStore());
  spec.shards = 4;
  Result<JobRecord> submitted = client.Submit(spec);
  ASSERT_TRUE(submitted.ok()) << submitted.status();
  // The trace identity exists from admission...
  EXPECT_EQ(submitted->trace_id.rfind("wcop-job-", 0), 0u)
      << submitted->trace_id;
  // ...but the span buffer does not: 404 until the job has executed, and
  // for jobs that never existed.
  EXPECT_EQ(client.Trace(submitted->id).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(client.Trace(424242).status().code(), StatusCode::kNotFound);

  // Poll the live record to completion, collecting the progress sequence.
  std::vector<uint64_t> done_seq;
  JobRecord final_record;
  for (int i = 0; i < 60000; ++i) {
    Result<JobRecord> record = client.GetJob(submitted->id);
    ASSERT_TRUE(record.ok()) << record.status();
    done_seq.push_back(record->progress.shards_done);
    if (record->state == JobState::kDone ||
        record->state == JobState::kFailed) {
      final_record = *record;
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  ASSERT_EQ(final_record.state, JobState::kDone)
      << final_record.outcome.error;
  for (size_t i = 1; i < done_seq.size(); ++i) {
    EXPECT_GE(done_seq[i], done_seq[i - 1]) << "progress went backwards";
  }
  EXPECT_EQ(final_record.progress.shards_total, 4u);
  EXPECT_EQ(final_record.progress.shards_done, 4u);
  EXPECT_GT(final_record.progress.distance_calls, 0u);

  // The persisted trace is one merged timeline under the job's trace id.
  Result<std::string> trace = client.Trace(submitted->id);
  ASSERT_TRUE(trace.ok()) << trace.status();
  ASSERT_FALSE(trace->empty());
  EXPECT_EQ(trace->front(), '{') << *trace;
  EXPECT_NE(trace->find("\"traceEvents\":["), std::string::npos) << *trace;
  EXPECT_NE(
      trace->find("\"traceId\":\"" + final_record.trace_id + "\""),
      std::string::npos)
      << *trace;
  std::set<int> shard_pids;
  for (size_t pos = trace->find("\"pid\":"); pos != std::string::npos;
       pos = trace->find("\"pid\":", pos + 1)) {
    const int pid =
        std::atoi(trace->c_str() + pos + sizeof("\"pid\":") - 1);
    if (pid >= 2) {
      shard_pids.insert(pid);
    }
  }
  EXPECT_GE(shard_pids.size(), 2u)
      << "expected spans from >= 2 shard lanes: " << *trace;

  (*endpoint)->Stop();
  (*service)->BeginShutdown(/*drain=*/true);
  (*service)->AwaitTermination();
}

TEST_F(ServerTest, EndpointSurfacesBackpressureAs429) {
  ServiceOptions options = BaseOptions();
  options.queue_capacity = 1;
  Result<std::unique_ptr<AnonymizationService>> service =
      AnonymizationService::Start(options);
  ASSERT_TRUE(service.ok()) << service.status();
  HttpServer::Options http;
  http.socket_path = Path("wcop.sock");
  Result<std::unique_ptr<ServiceEndpoint>> endpoint =
      ServiceEndpoint::Attach(service->get(), http);
  ASSERT_TRUE(endpoint.ok()) << endpoint.status();
  const ServiceClient client(http.socket_path);

  ASSERT_TRUE(client.Submit(Spec("jam", SlowStore())).ok());
  AwaitRunning(service->get());
  ASSERT_TRUE(client.Submit(Spec("queued", SlowStore())).ok());
  Result<JobRecord> bounced = client.Submit(Spec("bounced", SmallStore()));
  ASSERT_FALSE(bounced.ok());
  // 429 over the wire comes back as kResourceExhausted — the client-side
  // half of the backpressure contract.
  EXPECT_EQ(bounced.status().code(), StatusCode::kResourceExhausted);

  (*endpoint)->Stop();
  (*service)->BeginShutdown(/*drain=*/true);
  (*service)->AwaitTermination();
}

// ---------------------------------------------------------------------------
// Pure mapping units (no sockets, no service).
// ---------------------------------------------------------------------------

TEST(EndpointMappingTest, StatusToHttpAndBack) {
  EXPECT_EQ(HttpStatusForStatus(Status::OK()), 200);
  EXPECT_EQ(HttpStatusForStatus(Status::InvalidArgument("x")), 400);
  EXPECT_EQ(HttpStatusForStatus(Status::NotFound("x")), 404);
  EXPECT_EQ(HttpStatusForStatus(Status::ResourceExhausted("x")), 429);
  EXPECT_EQ(HttpStatusForStatus(Status::FailedPrecondition("x")), 503);
  EXPECT_EQ(HttpStatusForStatus(Status::Internal("x")), 500);

  HttpResponse response;
  response.status = 429;
  response.body = "queue full\n";
  const Status back = StatusForHttpResponse(response);
  EXPECT_EQ(back.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(back.message(), "queue full");
  response.status = 200;
  EXPECT_TRUE(StatusForHttpResponse(response).ok());
  response.status = 500;
  EXPECT_EQ(StatusForHttpResponse(response).code(), StatusCode::kInternal);
}

TEST(EndpointMappingTest, FormatMetricsEmitsOneLinePerMetric) {
  telemetry::MetricsRegistry registry;
  registry.GetCounter("server.jobs.accepted")->Add(3);
  registry.GetGauge("server.queue.depth")->Set(2.5);
  registry.GetHistogram("server.job.exec_ns")->Record(1000);
  const std::string text = FormatMetrics(registry.Snapshot());
  EXPECT_NE(text.find("counter server.jobs.accepted 3\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("gauge server.queue.depth 2.5\n"), std::string::npos)
      << text;
  EXPECT_NE(text.find("histogram server.job.exec_ns count=1 sum=1000"),
            std::string::npos)
      << text;
}

}  // namespace
}  // namespace server
}  // namespace wcop
