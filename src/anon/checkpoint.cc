#include "anon/checkpoint.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace wcop {

namespace {

// ---------------------------------------------------------------------------
// Fingerprinting (FNV-1a 64).
// ---------------------------------------------------------------------------

constexpr uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

void HashBytes(uint64_t* h, const void* data, size_t n) {
  const unsigned char* p = static_cast<const unsigned char*>(data);
  for (size_t i = 0; i < n; ++i) {
    *h ^= p[i];
    *h *= kFnvPrime;
  }
}

void HashU64(uint64_t* h, uint64_t v) { HashBytes(h, &v, sizeof(v)); }
void HashI64(uint64_t* h, int64_t v) { HashBytes(h, &v, sizeof(v)); }

void HashDouble(uint64_t* h, double v) {
  uint64_t bits;
  static_assert(sizeof(bits) == sizeof(v));
  std::memcpy(&bits, &v, sizeof(bits));
  HashU64(h, bits);
}

void HashWcopOptions(uint64_t* h, const WcopOptions& o) {
  HashDouble(h, o.trash_fraction);
  HashU64(h, o.trash_max_override);
  HashDouble(h, o.radius_max);
  HashDouble(h, o.radius_growth);
  HashU64(h, o.max_clustering_rounds);
  HashU64(h, static_cast<uint64_t>(o.distance.kind));
  HashDouble(h, o.distance.tolerance.dx);
  HashDouble(h, o.distance.tolerance.dy);
  HashDouble(h, o.distance.tolerance.dt);
  HashDouble(h, o.distance.edr_scale);
  HashU64(h, o.seed);
  HashU64(h, static_cast<uint64_t>(o.pivot_policy));
  HashU64(h, static_cast<uint64_t>(o.clustering_algo));
  HashU64(h, static_cast<uint64_t>(o.delta_policy));
}

// ---------------------------------------------------------------------------
// Text encoding helpers. Doubles print at %.17g, which strtod round-trips
// exactly, so resumed arithmetic matches the uninterrupted run bit-for-bit.
// ---------------------------------------------------------------------------

void AppendU64(std::string* out, uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRIu64, v);
  out->append(buf);
  out->push_back(' ');
}

void AppendI64(std::string* out, int64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%" PRId64, v);
  out->append(buf);
  out->push_back(' ');
}

void AppendDouble(std::string* out, double v) {
  char buf[48];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out->append(buf);
  out->push_back(' ');
}

void AppendWord(std::string* out, std::string_view word) {
  out->append(word);
  out->push_back(' ');
}

/// Length-prefixed raw bytes: "<len> <bytes>". Safe for arbitrary content
/// (degraded reasons quote Status messages).
void AppendBlob(std::string* out, std::string_view blob) {
  AppendU64(out, blob.size());
  out->append(blob);
  out->push_back(' ');
}

void EndLine(std::string* out) {
  if (!out->empty() && out->back() == ' ') {
    out->back() = '\n';
  } else {
    out->push_back('\n');
  }
}

class TokenReader {
 public:
  explicit TokenReader(std::string_view data) : data_(data) {}

  bool Word(std::string* out) {
    SkipSpace();
    const size_t start = pos_;
    while (pos_ < data_.size() && !IsSpace(data_[pos_])) {
      ++pos_;
    }
    if (pos_ == start) {
      return false;
    }
    out->assign(data_.substr(start, pos_ - start));
    return true;
  }

  bool Literal(std::string_view expect) {
    std::string word;
    return Word(&word) && word == expect;
  }

  bool U64(uint64_t* out) {
    std::string word;
    if (!Word(&word)) return false;
    char* end = nullptr;
    *out = std::strtoull(word.c_str(), &end, 10);
    return end != word.c_str() && *end == '\0';
  }

  bool I64(int64_t* out) {
    std::string word;
    if (!Word(&word)) return false;
    char* end = nullptr;
    *out = std::strtoll(word.c_str(), &end, 10);
    return end != word.c_str() && *end == '\0';
  }

  bool SizeT(size_t* out) {
    uint64_t v = 0;
    if (!U64(&v)) return false;
    *out = static_cast<size_t>(v);
    return true;
  }

  bool Int(int* out) {
    int64_t v = 0;
    if (!I64(&v)) return false;
    *out = static_cast<int>(v);
    return true;
  }

  bool Double(double* out) {
    std::string word;
    if (!Word(&word)) return false;
    char* end = nullptr;
    *out = std::strtod(word.c_str(), &end);
    return end != word.c_str() && *end == '\0';
  }

  bool Bool(bool* out) {
    uint64_t v = 0;
    if (!U64(&v) || v > 1) return false;
    *out = v == 1;
    return true;
  }

  bool Blob(std::string* out) {
    uint64_t len = 0;
    if (!U64(&len)) return false;
    // Exactly one separator between the length and the bytes.
    if (pos_ >= data_.size() || !IsSpace(data_[pos_])) return false;
    ++pos_;
    if (data_.size() - pos_ < len) return false;
    out->assign(data_.substr(pos_, len));
    pos_ += len;
    return true;
  }

 private:
  static bool IsSpace(char c) {
    return c == ' ' || c == '\n' || c == '\t' || c == '\r';
  }

  void SkipSpace() {
    while (pos_ < data_.size() && IsSpace(data_[pos_])) {
      ++pos_;
    }
  }

  std::string_view data_;
  size_t pos_ = 0;
};

Status Corrupt(std::string_view what) {
  return Status::DataLoss("checkpoint payload corrupt: " + std::string(what));
}

// Fixed-width trailer "end <020-digit total>\n" carrying the payload's final
// byte count (trailer included). Tokenized text can't otherwise notice losing
// trailing bytes — e.g. only the final newline — so the decoder checks the
// recorded total against the bytes it was actually handed.
constexpr size_t kEndMarkerSize = 25;  // "end " + 20 digits + '\n'

void AppendEndMarker(std::string* out) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "end %020" PRIu64 "\n",
                static_cast<uint64_t>(out->size() + kEndMarkerSize));
  out->append(buf);
}

bool CheckEndMarker(TokenReader* in, size_t payload_size) {
  std::string word;
  uint64_t total = 0;
  return in->Word(&word) && word == "end" && in->U64(&total) &&
         total == payload_size;
}

// ---------------------------------------------------------------------------
// Shared sub-encoders.
// ---------------------------------------------------------------------------

void AppendTrajectory(std::string* out, const Trajectory& t) {
  AppendWord(out, "traj");
  AppendI64(out, t.id());
  AppendI64(out, t.object_id());
  AppendI64(out, t.parent_id());
  AppendI64(out, t.requirement().k);
  AppendDouble(out, t.requirement().delta);
  AppendU64(out, t.size());
  for (const Point& p : t.points()) {
    AppendDouble(out, p.x);
    AppendDouble(out, p.y);
    AppendDouble(out, p.t);
  }
  EndLine(out);
}

bool ReadTrajectory(TokenReader* in, Trajectory* out) {
  int64_t id = 0, object_id = 0, parent_id = 0;
  int k = 0;
  double delta = 0.0;
  size_t npoints = 0;
  if (!in->Literal("traj") || !in->I64(&id) || !in->I64(&object_id) ||
      !in->I64(&parent_id) || !in->Int(&k) || !in->Double(&delta) ||
      !in->SizeT(&npoints)) {
    return false;
  }
  std::vector<Point> points;
  points.reserve(npoints);
  for (size_t i = 0; i < npoints; ++i) {
    double x = 0.0, y = 0.0, t = 0.0;
    if (!in->Double(&x) || !in->Double(&y) || !in->Double(&t)) {
      return false;
    }
    points.emplace_back(x, y, t);
  }
  *out = Trajectory(id, std::move(points), Requirement{k, delta});
  out->set_object_id(object_id);
  out->set_parent_id(parent_id);
  return true;
}

void AppendCounters(
    std::string* out,
    const std::vector<std::pair<std::string, uint64_t>>& counters) {
  AppendWord(out, "ncounters");
  AppendU64(out, counters.size());
  EndLine(out);
  for (const auto& [name, value] : counters) {
    AppendWord(out, "counter");
    AppendBlob(out, name);
    AppendU64(out, value);
    EndLine(out);
  }
}

bool ReadCounters(TokenReader* in,
                  std::vector<std::pair<std::string, uint64_t>>* out) {
  size_t n = 0;
  if (!in->Literal("ncounters") || !in->SizeT(&n)) {
    return false;
  }
  out->reserve(n);
  for (size_t i = 0; i < n; ++i) {
    std::string name;
    uint64_t value = 0;
    if (!in->Literal("counter") || !in->Blob(&name) || !in->U64(&value)) {
      return false;
    }
    out->emplace_back(std::move(name), value);
  }
  return true;
}

void AppendReport(std::string* out, const AnonymizationReport& r) {
  AppendWord(out, "report");
  AppendU64(out, r.input_trajectories);
  AppendU64(out, r.num_clusters);
  AppendU64(out, r.trashed_trajectories);
  AppendU64(out, r.trashed_points);
  AppendDouble(out, r.discernibility);
  AppendU64(out, r.created_points);
  AppendU64(out, r.deleted_points);
  AppendDouble(out, r.total_spatial_translation);
  AppendDouble(out, r.total_temporal_translation);
  AppendDouble(out, r.avg_spatial_translation);
  AppendDouble(out, r.avg_temporal_translation);
  AppendDouble(out, r.omega);
  AppendDouble(out, r.ttd);
  AppendDouble(out, r.editing_distortion);
  AppendDouble(out, r.total_distortion);
  AppendDouble(out, r.runtime_seconds);
  AppendU64(out, r.clustering_rounds);
  AppendDouble(out, r.final_radius);
  AppendU64(out, r.degraded ? 1 : 0);
  AppendBlob(out, r.degraded_reason);
  EndLine(out);
}

bool ReadReport(TokenReader* in, AnonymizationReport* r) {
  return in->Literal("report") && in->SizeT(&r->input_trajectories) &&
         in->SizeT(&r->num_clusters) && in->SizeT(&r->trashed_trajectories) &&
         in->SizeT(&r->trashed_points) && in->Double(&r->discernibility) &&
         in->SizeT(&r->created_points) && in->SizeT(&r->deleted_points) &&
         in->Double(&r->total_spatial_translation) &&
         in->Double(&r->total_temporal_translation) &&
         in->Double(&r->avg_spatial_translation) &&
         in->Double(&r->avg_temporal_translation) && in->Double(&r->omega) &&
         in->Double(&r->ttd) && in->Double(&r->editing_distortion) &&
         in->Double(&r->total_distortion) && in->Double(&r->runtime_seconds) &&
         in->SizeT(&r->clustering_rounds) && in->Double(&r->final_radius) &&
         in->Bool(&r->degraded) && in->Blob(&r->degraded_reason);
}

void AppendAnonymizationResult(std::string* out,
                               const AnonymizationResult& result) {
  AppendWord(out, "ntraj");
  AppendU64(out, result.sanitized.size());
  EndLine(out);
  for (const Trajectory& t : result.sanitized.trajectories()) {
    AppendTrajectory(out, t);
  }
  AppendWord(out, "ntrashed");
  AppendU64(out, result.trashed_ids.size());
  for (const int64_t id : result.trashed_ids) {
    AppendI64(out, id);
  }
  EndLine(out);
  AppendWord(out, "nclusters");
  AppendU64(out, result.clusters.size());
  EndLine(out);
  for (const AnonymityCluster& c : result.clusters) {
    AppendWord(out, "cluster");
    AppendU64(out, c.pivot);
    AppendI64(out, c.k);
    AppendDouble(out, c.delta);
    AppendU64(out, c.members.size());
    for (const size_t m : c.members) {
      AppendU64(out, m);
    }
    EndLine(out);
  }
  AppendReport(out, result.report);
}

bool ReadAnonymizationResult(TokenReader* in, AnonymizationResult* result) {
  size_t ntraj = 0;
  if (!in->Literal("ntraj") || !in->SizeT(&ntraj)) {
    return false;
  }
  std::vector<Trajectory> sanitized;
  sanitized.reserve(ntraj);
  for (size_t i = 0; i < ntraj; ++i) {
    Trajectory t;
    if (!ReadTrajectory(in, &t)) {
      return false;
    }
    sanitized.push_back(std::move(t));
  }
  result->sanitized = Dataset(std::move(sanitized));
  size_t ntrashed = 0;
  if (!in->Literal("ntrashed") || !in->SizeT(&ntrashed)) {
    return false;
  }
  result->trashed_ids.reserve(ntrashed);
  for (size_t i = 0; i < ntrashed; ++i) {
    int64_t id = 0;
    if (!in->I64(&id)) {
      return false;
    }
    result->trashed_ids.push_back(id);
  }
  size_t nclusters = 0;
  if (!in->Literal("nclusters") || !in->SizeT(&nclusters)) {
    return false;
  }
  result->clusters.reserve(nclusters);
  for (size_t i = 0; i < nclusters; ++i) {
    AnonymityCluster c;
    size_t nmembers = 0;
    if (!in->Literal("cluster") || !in->SizeT(&c.pivot) || !in->Int(&c.k) ||
        !in->Double(&c.delta) || !in->SizeT(&nmembers)) {
      return false;
    }
    c.members.reserve(nmembers);
    for (size_t m = 0; m < nmembers; ++m) {
      size_t member = 0;
      if (!in->SizeT(&member)) {
        return false;
      }
      c.members.push_back(member);
    }
    result->clusters.push_back(std::move(c));
  }
  return ReadReport(in, &result->report);
}

}  // namespace

uint64_t DatasetFingerprint(const Dataset& dataset) {
  uint64_t h = kFnvOffset;
  HashU64(&h, dataset.size());
  for (const Trajectory& t : dataset.trajectories()) {
    HashI64(&h, t.id());
    HashI64(&h, t.object_id());
    HashI64(&h, t.parent_id());
    HashI64(&h, t.requirement().k);
    HashDouble(&h, t.requirement().delta);
    HashU64(&h, t.size());
    for (const Point& p : t.points()) {
      HashDouble(&h, p.x);
      HashDouble(&h, p.y);
      HashDouble(&h, p.t);
    }
  }
  return h;
}

uint64_t WcopOptionsFingerprint(const WcopOptions& options) {
  uint64_t h = kFnvOffset;
  HashWcopOptions(&h, options);
  return h;
}

uint64_t StreamingConfigFingerprint(const Dataset& dataset,
                                    const StreamingOptions& options) {
  uint64_t h = DatasetFingerprint(dataset);
  HashU64(&h, 0x5354524dULL);  // "STRM" domain separator
  HashDouble(&h, options.window_seconds);
  HashU64(&h, options.min_fragment_points);
  HashWcopOptions(&h, options.wcop);
  return h;
}

uint64_t WcopBConfigFingerprint(const Dataset& dataset,
                                const WcopOptions& options,
                                const WcopBOptions& b_options) {
  uint64_t h = DatasetFingerprint(dataset);
  HashU64(&h, 0x57434f42ULL);  // "WCOB" domain separator
  HashWcopOptions(&h, options);
  HashDouble(&h, b_options.distort_max);
  HashU64(&h, b_options.step);
  HashDouble(&h, b_options.w1);
  HashDouble(&h, b_options.w2);
  HashU64(&h, b_options.max_edit_size);
  HashU64(&h, static_cast<uint64_t>(b_options.edit_policy));
  HashDouble(&h, b_options.proportional_strength);
  return h;
}

std::string EncodeStreamingCheckpoint(const StreamingCheckpoint& checkpoint) {
  std::string out;
  AppendWord(&out, "wcop-streaming-checkpoint");
  AppendU64(&out, kStreamingCheckpointVersion);
  EndLine(&out);
  AppendWord(&out, "fingerprint");
  AppendU64(&out, checkpoint.fingerprint);
  EndLine(&out);
  AppendWord(&out, "state");
  AppendU64(&out, checkpoint.windows_done);
  AppendI64(&out, checkpoint.next_fragment_id);
  AppendU64(&out, checkpoint.suppressed_fragments);
  AppendU64(&out, checkpoint.total_clusters);
  AppendDouble(&out, checkpoint.total_ttd);
  AppendU64(&out, checkpoint.degraded ? 1 : 0);
  AppendBlob(&out, checkpoint.degraded_reason);
  EndLine(&out);
  AppendWord(&out, "nwindows");
  AppendU64(&out, checkpoint.windows.size());
  EndLine(&out);
  for (const StreamingWindowSummary& w : checkpoint.windows) {
    AppendWord(&out, "window");
    AppendDouble(&out, w.window_start);
    AppendU64(&out, w.input_fragments);
    AppendU64(&out, w.published_fragments);
    AppendU64(&out, w.clusters);
    AppendDouble(&out, w.ttd);
    AppendU64(&out, w.skipped ? 1 : 0);
    EndLine(&out);
  }
  AppendWord(&out, "ntraj");
  AppendU64(&out, checkpoint.published.size());
  EndLine(&out);
  for (const Trajectory& t : checkpoint.published) {
    AppendTrajectory(&out, t);
  }
  AppendCounters(&out, checkpoint.counters);
  AppendEndMarker(&out);
  return out;
}

Result<StreamingCheckpoint> DecodeStreamingCheckpoint(
    std::string_view payload) {
  TokenReader in(payload);
  uint64_t version = 0;
  if (!in.Literal("wcop-streaming-checkpoint") || !in.U64(&version)) {
    return Corrupt("missing streaming preamble");
  }
  if (version != kStreamingCheckpointVersion) {
    return Status::FailedPrecondition(
        "streaming checkpoint version " + std::to_string(version) +
        " unsupported (expected " +
        std::to_string(kStreamingCheckpointVersion) + ")");
  }
  StreamingCheckpoint checkpoint;
  if (!in.Literal("fingerprint") || !in.U64(&checkpoint.fingerprint)) {
    return Corrupt("missing fingerprint");
  }
  if (!in.Literal("state") || !in.SizeT(&checkpoint.windows_done) ||
      !in.I64(&checkpoint.next_fragment_id) ||
      !in.SizeT(&checkpoint.suppressed_fragments) ||
      !in.SizeT(&checkpoint.total_clusters) ||
      !in.Double(&checkpoint.total_ttd) || !in.Bool(&checkpoint.degraded) ||
      !in.Blob(&checkpoint.degraded_reason)) {
    return Corrupt("bad streaming state line");
  }
  size_t nwindows = 0;
  if (!in.Literal("nwindows") || !in.SizeT(&nwindows)) {
    return Corrupt("bad window count");
  }
  checkpoint.windows.reserve(nwindows);
  for (size_t i = 0; i < nwindows; ++i) {
    StreamingWindowSummary w;
    if (!in.Literal("window") || !in.Double(&w.window_start) ||
        !in.SizeT(&w.input_fragments) || !in.SizeT(&w.published_fragments) ||
        !in.SizeT(&w.clusters) || !in.Double(&w.ttd) || !in.Bool(&w.skipped)) {
      return Corrupt("bad window summary");
    }
    checkpoint.windows.push_back(w);
  }
  size_t ntraj = 0;
  if (!in.Literal("ntraj") || !in.SizeT(&ntraj)) {
    return Corrupt("bad trajectory count");
  }
  checkpoint.published.reserve(ntraj);
  for (size_t i = 0; i < ntraj; ++i) {
    Trajectory t;
    if (!ReadTrajectory(&in, &t)) {
      return Corrupt("bad published trajectory");
    }
    checkpoint.published.push_back(std::move(t));
  }
  if (!ReadCounters(&in, &checkpoint.counters)) {
    return Corrupt("bad counters");
  }
  if (!CheckEndMarker(&in, payload.size())) {
    return Corrupt("bad end marker (truncated or trailing bytes)");
  }
  return checkpoint;
}

std::string EncodeWcopBCheckpoint(const WcopBCheckpoint& checkpoint) {
  std::string out;
  AppendWord(&out, "wcop-b-checkpoint");
  AppendU64(&out, kWcopBCheckpointVersion);
  EndLine(&out);
  AppendWord(&out, "fingerprint");
  AppendU64(&out, checkpoint.fingerprint);
  EndLine(&out);
  AppendWord(&out, "state");
  AppendU64(&out, checkpoint.next_edit_size);
  AppendU64(&out, checkpoint.terminal ? 1 : 0);
  AppendU64(&out, checkpoint.bound_satisfied ? 1 : 0);
  AppendU64(&out, checkpoint.final_edit_size);
  EndLine(&out);
  AppendWord(&out, "nrounds");
  AppendU64(&out, checkpoint.rounds.size());
  EndLine(&out);
  for (const WcopBRound& r : checkpoint.rounds) {
    AppendWord(&out, "round");
    AppendU64(&out, r.edit_size);
    AppendDouble(&out, r.ttd);
    AppendDouble(&out, r.editing_distortion);
    AppendDouble(&out, r.total_distortion);
    AppendU64(&out, r.num_clusters);
    AppendU64(&out, r.trashed);
    EndLine(&out);
  }
  AppendAnonymizationResult(&out, checkpoint.anonymization);
  AppendCounters(&out, checkpoint.counters);
  AppendEndMarker(&out);
  return out;
}

Result<WcopBCheckpoint> DecodeWcopBCheckpoint(std::string_view payload) {
  TokenReader in(payload);
  uint64_t version = 0;
  if (!in.Literal("wcop-b-checkpoint") || !in.U64(&version)) {
    return Corrupt("missing wcop-b preamble");
  }
  if (version != kWcopBCheckpointVersion) {
    return Status::FailedPrecondition(
        "wcop-b checkpoint version " + std::to_string(version) +
        " unsupported (expected " + std::to_string(kWcopBCheckpointVersion) +
        ")");
  }
  WcopBCheckpoint checkpoint;
  if (!in.Literal("fingerprint") || !in.U64(&checkpoint.fingerprint)) {
    return Corrupt("missing fingerprint");
  }
  if (!in.Literal("state") || !in.SizeT(&checkpoint.next_edit_size) ||
      !in.Bool(&checkpoint.terminal) || !in.Bool(&checkpoint.bound_satisfied) ||
      !in.SizeT(&checkpoint.final_edit_size)) {
    return Corrupt("bad wcop-b state line");
  }
  size_t nrounds = 0;
  if (!in.Literal("nrounds") || !in.SizeT(&nrounds)) {
    return Corrupt("bad round count");
  }
  checkpoint.rounds.reserve(nrounds);
  for (size_t i = 0; i < nrounds; ++i) {
    WcopBRound r;
    if (!in.Literal("round") || !in.SizeT(&r.edit_size) || !in.Double(&r.ttd) ||
        !in.Double(&r.editing_distortion) || !in.Double(&r.total_distortion) ||
        !in.SizeT(&r.num_clusters) || !in.SizeT(&r.trashed)) {
      return Corrupt("bad round");
    }
    checkpoint.rounds.push_back(r);
  }
  if (!ReadAnonymizationResult(&in, &checkpoint.anonymization)) {
    return Corrupt("bad anonymization result");
  }
  if (!ReadCounters(&in, &checkpoint.counters)) {
    return Corrupt("bad counters");
  }
  if (!CheckEndMarker(&in, payload.size())) {
    return Corrupt("bad end marker (truncated or trailing bytes)");
  }
  return checkpoint;
}

}  // namespace wcop
