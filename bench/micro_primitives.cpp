// Micro-benchmarks of the computational primitives behind the WCOP suite:
// EDR distance / op reconstruction, synchronized Euclidean distance, DBSCAN,
// grid-index range queries, TRACLUS MDL partitioning, greedy clustering and
// the translation phase. google-benchmark binary — runs standalone.
//
// `--json-out=FILE` (the shared bench_util flag) additionally captures every
// run as a machine-readable record; all other flags pass through to
// google-benchmark (--benchmark_filter=..., etc).

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>
#include <vector>

#include "anon/greedy_clustering.h"
#include "anon/translation.h"
#include "anon/wcop_ct.h"
#include "bench_util.h"
#include "cluster/dbscan.h"
#include "distance/edr.h"
#include "distance/edr_bounds.h"
#include "distance/edr_kernel.h"
#include "distance/euclidean.h"
#include "index/grid_index.h"
#include "mod/trajectory_store.h"
#include "segment/traclus.h"

using namespace wcop;
using namespace wcop::bench;

namespace {

Dataset SmallDataset(size_t n, size_t points) {
  BenchScale scale;
  scale.trajectories = n;
  scale.points = points;
  Dataset d = MakeBenchDataset(scale);
  AssignPaperRequirements(&d, 5, 250.0, 11);
  return d;
}

void BM_EdrDistance(benchmark::State& state) {
  const size_t points = static_cast<size_t>(state.range(0));
  const Dataset d = SmallDataset(2, points);
  const EdrTolerance tol = EdrTolerance::FromDeltaMax(250.0, 6.36);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EdrDistance(d[0], d[1], tol));
  }
  state.SetComplexityN(static_cast<int64_t>(points));
}
BENCHMARK(BM_EdrDistance)->Range(32, 512)->Complexity(benchmark::oNSquared);

void BM_EdrOpSequence(benchmark::State& state) {
  const size_t points = static_cast<size_t>(state.range(0));
  const Dataset d = SmallDataset(2, points);
  const EdrTolerance tol = EdrTolerance::FromDeltaMax(250.0, 6.36);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EdrOpSequence(d[0], d[1], tol));
  }
}
BENCHMARK(BM_EdrOpSequence)->Range(32, 256);

// The three EDR kernels head-to-head on the same pair: classic two-row
// scalar DP, the Hyyrö bit-parallel formulation, and the Ukkonen band (full
// width, so all three produce the exact distance). Divergence between the
// per-iteration times here is what the dispatch heuristic in EdrOps trades
// on.
void BM_EdrScalarKernel(benchmark::State& state) {
  const size_t points = static_cast<size_t>(state.range(0));
  const Dataset d = SmallDataset(2, points);
  const EdrTolerance tol = EdrTolerance::FromDeltaMax(250.0, 6.36);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EdrOpsScalar(d[0], d[1], tol));
  }
  state.SetComplexityN(static_cast<int64_t>(points));
}
BENCHMARK(BM_EdrScalarKernel)->Range(32, 512)
    ->Complexity(benchmark::oNSquared);

void BM_EdrBitParallelKernel(benchmark::State& state) {
  const size_t points = static_cast<size_t>(state.range(0));
  const Dataset d = SmallDataset(2, points);
  const EdrTolerance tol = EdrTolerance::FromDeltaMax(250.0, 6.36);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EdrOpsBitParallel(d[0], d[1], tol));
  }
  state.SetComplexityN(static_cast<int64_t>(points));
}
BENCHMARK(BM_EdrBitParallelKernel)->Range(32, 512)
    ->Complexity(benchmark::oNSquared);

// Banded kernel at a fixed narrow band (16): the shape the refine stage
// sees once the top-k threshold has tightened the cutoff. Cost is
// O(n * band) instead of O(n * m), and the kernel may abandon with a
// certified bound — both outcomes are representative.
void BM_EdrBandedKernel(benchmark::State& state) {
  const size_t points = static_cast<size_t>(state.range(0));
  const Dataset d = SmallDataset(2, points);
  const EdrTolerance tol = EdrTolerance::FromDeltaMax(250.0, 6.36);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EdrOpsBanded(d[0], d[1], tol, 16));
  }
  state.SetComplexityN(static_cast<int64_t>(points));
}
BENCHMARK(BM_EdrBandedKernel)->Range(32, 512)->Complexity(benchmark::oN);

// Per-pair cost of each cascade rung, for comparison against the kernels
// they shortcut. Profiles are built once (the cache amortizes them the
// same way), so these measure the incremental bound evaluation.
void BM_EdrSeparationCheck(benchmark::State& state) {
  const size_t points = static_cast<size_t>(state.range(0));
  const Dataset d = SmallDataset(2, points);
  const EdrTolerance tol = EdrTolerance::FromDeltaMax(250.0, 6.36);
  const EdrBoundsProfile pa = EdrBoundsProfile::Of(d[0]);
  const EdrBoundsProfile pb = EdrBoundsProfile::Of(d[1]);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EdrSeparated(pa, pb, tol));
    benchmark::DoNotOptimize(EdrLengthLowerBound(pa, pb));
  }
}
BENCHMARK(BM_EdrSeparationCheck)->Range(32, 512);

void BM_EdrEnvelopeBound(benchmark::State& state) {
  const size_t points = static_cast<size_t>(state.range(0));
  const Dataset d = SmallDataset(2, points);
  const EdrTolerance tol = EdrTolerance::FromDeltaMax(250.0, 6.36);
  const EdrBoundsProfile pa = EdrBoundsProfile::Of(d[0]);
  const EdrBoundsProfile pb = EdrBoundsProfile::Of(d[1]);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        EdrEnvelopeLowerBound(d[0], pa, d[1], pb, tol));
  }
  state.SetComplexityN(static_cast<int64_t>(points));
}
BENCHMARK(BM_EdrEnvelopeBound)->Range(32, 512)->Complexity(benchmark::oN);

void BM_EdrProfileBuild(benchmark::State& state) {
  const size_t points = static_cast<size_t>(state.range(0));
  const Dataset d = SmallDataset(2, points);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EdrBoundsProfile::Of(d[0]));
  }
}
BENCHMARK(BM_EdrProfileBuild)->Range(32, 512);

void BM_SynchronizedEuclidean(benchmark::State& state) {
  const size_t points = static_cast<size_t>(state.range(0));
  const Dataset d = SmallDataset(2, points);
  for (auto _ : state) {
    benchmark::DoNotOptimize(SynchronizedEuclideanDistance(d[0], d[1]));
  }
}
BENCHMARK(BM_SynchronizedEuclidean)->Range(32, 512);

void BM_GridIndexRangeQuery(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(3);
  GridIndex grid(100.0);
  for (size_t i = 0; i < n; ++i) {
    grid.Insert(i, rng.UniformReal(-50000, 50000),
                rng.UniformReal(-50000, 50000));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        grid.RangeQuery(rng.UniformReal(-50000, 50000),
                        rng.UniformReal(-50000, 50000), 500.0));
  }
}
BENCHMARK(BM_GridIndexRangeQuery)->Range(1024, 65536);

void BM_DbscanSnapshot(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  Rng rng(5);
  std::vector<std::pair<double, double>> pts;
  GridIndex grid(200.0);
  for (size_t i = 0; i < n; ++i) {
    const double x = rng.UniformReal(-20000, 20000);
    const double y = rng.UniformReal(-20000, 20000);
    pts.emplace_back(x, y);
    grid.Insert(i, x, y);
  }
  auto neighbors = [&](size_t item) {
    return grid.RangeQuery(pts[item].first, pts[item].second, 200.0);
  };
  for (auto _ : state) {
    benchmark::DoNotOptimize(Dbscan(n, 3, neighbors));
  }
}
BENCHMARK(BM_DbscanSnapshot)->Range(256, 4096);

void BM_TraclusPartitioning(benchmark::State& state) {
  const size_t points = static_cast<size_t>(state.range(0));
  const Dataset d = SmallDataset(1, points);
  for (auto _ : state) {
    benchmark::DoNotOptimize(TraclusCharacteristicPoints(d[0], {}));
  }
}
BENCHMARK(BM_TraclusPartitioning)->Range(64, 1024);

void BM_GreedyClustering(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Dataset d = SmallDataset(n, 80);
  const WcopOptions options = ResolveOptions(d, WcopOptions{});
  for (auto _ : state) {
    benchmark::DoNotOptimize(GreedyClustering(d, n / 10, options));
  }
}
BENCHMARK(BM_GreedyClustering)->Range(32, 256)
    ->Unit(benchmark::kMillisecond);

void BM_Translation(benchmark::State& state) {
  const size_t points = static_cast<size_t>(state.range(0));
  const Dataset d = SmallDataset(2, points);
  const EdrTolerance tol = EdrTolerance::FromDeltaMax(250.0, 6.36);
  Rng rng(9);
  for (auto _ : state) {
    TranslationStats stats;
    benchmark::DoNotOptimize(
        TranslateToPivot(d[0], d[1], 100.0, tol, &rng, &stats));
  }
}
BENCHMARK(BM_Translation)->Range(32, 256);

void BM_StoreRangeQuery(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Dataset d = SmallDataset(n, 80);
  Result<TrajectoryStore> store = TrajectoryStore::Build(d);
  Rng rng(7);
  const double radius = d.Bounds().HalfDiagonal();
  for (auto _ : state) {
    const Trajectory& t = d[rng.UniformIndex(d.size())];
    const Point& p = t[rng.UniformIndex(t.size())];
    StRange range;
    range.x_lo = p.x - 0.02 * radius;
    range.x_hi = p.x + 0.02 * radius;
    range.y_lo = p.y - 0.02 * radius;
    range.y_hi = p.y + 0.02 * radius;
    range.t_lo = p.t - 600.0;
    range.t_hi = p.t + 600.0;
    benchmark::DoNotOptimize(store->RangeQuery(range));
  }
}
BENCHMARK(BM_StoreRangeQuery)->Range(64, 512);

void BM_StoreNearestAt(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Dataset d = SmallDataset(n, 80);
  Result<TrajectoryStore> store = TrajectoryStore::Build(d);
  Rng rng(7);
  for (auto _ : state) {
    const Trajectory& t = d[rng.UniformIndex(d.size())];
    const Point& p = t[rng.UniformIndex(t.size())];
    benchmark::DoNotOptimize(store->NearestAt(p.x, p.y, p.t, 5));
  }
}
BENCHMARK(BM_StoreNearestAt)->Range(64, 512);

void BM_WcopCtEndToEnd(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Dataset d = SmallDataset(n, 60);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunWcopCt(d));
  }
}
BENCHMARK(BM_WcopCtEndToEnd)->Range(32, 128)->Unit(benchmark::kMillisecond);

// With a sink attached: the same pipeline paying for counters and spans.
// Comparing against BM_WcopCtEndToEnd quantifies the observability overhead
// on a real run (the acceptance bar is "negligible against the quadratic
// distance work", not zero).
void BM_WcopCtEndToEndTelemetry(benchmark::State& state) {
  const size_t n = static_cast<size_t>(state.range(0));
  const Dataset d = SmallDataset(n, 60);
  for (auto _ : state) {
    telemetry::Telemetry tel;
    WcopOptions options;
    options.telemetry = &tel;
    benchmark::DoNotOptimize(RunWcopCt(d, options));
  }
}
BENCHMARK(BM_WcopCtEndToEndTelemetry)
    ->Range(32, 128)
    ->Unit(benchmark::kMillisecond);

// Raw cost of the telemetry primitives themselves.
void BM_TelemetryCounterAdd(benchmark::State& state) {
  telemetry::Telemetry tel;
  telemetry::Counter* counter = tel.metrics().GetCounter("bench.counter");
  for (auto _ : state) {
    telemetry::CounterAdd(counter);
  }
  benchmark::DoNotOptimize(counter->value());
}
BENCHMARK(BM_TelemetryCounterAdd);

// The disabled path every instrumented call site pays without a sink.
void BM_TelemetryCounterAddNull(benchmark::State& state) {
  telemetry::Counter* counter = nullptr;
  for (auto _ : state) {
    telemetry::CounterAdd(counter);
    benchmark::DoNotOptimize(counter);
  }
}
BENCHMARK(BM_TelemetryCounterAddNull);

void BM_TelemetryHistogramRecord(benchmark::State& state) {
  telemetry::Telemetry tel;
  telemetry::Histogram* hist = tel.metrics().GetHistogram("bench.hist");
  uint64_t v = 1;
  for (auto _ : state) {
    hist->Record(v);
    v = (v * 2862933555777941757ull + 3037000493ull) >> 16;  // cheap lcg
  }
  benchmark::DoNotOptimize(hist->count());
}
BENCHMARK(BM_TelemetryHistogramRecord);

void BM_TelemetryScopedSpan(benchmark::State& state) {
  telemetry::Telemetry tel;
  for (auto _ : state) {
    WCOP_TRACE_SPAN(&tel, "bench/span");
  }
  benchmark::DoNotOptimize(tel.trace().event_count());
}
// Fixed iteration count: every span is kept in the recorder, so an
// auto-scaled run would grow the event vector into the hundreds of MB.
BENCHMARK(BM_TelemetryScopedSpan)->Iterations(1 << 16);

void BM_TelemetryScopedSpanNull(benchmark::State& state) {
  telemetry::Telemetry* tel = nullptr;
  for (auto _ : state) {
    WCOP_TRACE_SPAN(tel, "bench/span");
    benchmark::DoNotOptimize(tel);
  }
}
BENCHMARK(BM_TelemetryScopedSpanNull);

// Console reporting as usual, plus one JsonOut record per run so the
// harness's --json-out works here like in every other bench binary.
class JsonCaptureReporter : public benchmark::ConsoleReporter {
 public:
  explicit JsonCaptureReporter(JsonOut* out) : out_(out) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) {
        continue;
      }
      const double iterations =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      out_->Add("micro/" + run.benchmark_name(),
                {{"iterations", iterations},
                 {"per_iteration_seconds",
                  run.real_accumulated_time / iterations}},
                run.real_accumulated_time, {});
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  JsonOut* out_;
};

}  // namespace

int main(int argc, char** argv) {
  // google-benchmark rejects flags it does not know, so --json-out (and the
  // argv[0]-preserving remainder) is peeled off before Initialize().
  ArgParser args(argc, argv);
  JsonOut json_out(args);
  std::vector<char*> bench_argv;
  for (int i = 0; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json-out", 10) != 0) {
      bench_argv.push_back(argv[i]);
    }
  }
  int bench_argc = static_cast<int>(bench_argv.size());
  benchmark::Initialize(&bench_argc, bench_argv.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc,
                                             bench_argv.data())) {
    return 1;
  }
  JsonCaptureReporter reporter(&json_out);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();
  if (!json_out.Flush()) {
    return 1;
  }
  return 0;
}
