#include "store/shard_runner.h"

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <string>
#include <vector>

#include "anon/wcop.h"
#include "common/rng.h"
#include "common/run_context.h"
#include "common/telemetry.h"
#include "data/synthetic.h"
#include "store/store_file.h"
#include "test_util.h"

namespace wcop {
namespace store {
namespace {

using testing_util::SmallSynthetic;

std::string TempDirFor(const std::string& name) {
  const std::string dir =
      (std::filesystem::temp_directory_path() / name).string();
  std::filesystem::remove_all(dir);
  return dir;
}

std::string TempPath(const std::string& name) {
  return (std::filesystem::temp_directory_path() / name).string();
}

// Four far-apart synthetic cities: the input shape the partitioner can
// actually split (one dense city collapses to a single shard by design).
Dataset TiledDataset(size_t tiles = 4, size_t per_tile = 20) {
  SyntheticOptions options;
  options.seed = 21;
  options.num_users = 8;
  options.num_trajectories = per_tile;
  options.points_per_trajectory = 24;
  options.sampling_interval = 10.0;
  options.region_half_diagonal = 6000.0;
  options.num_hubs = 5;
  options.num_routes = 4;
  options.dataset_duration_days = 10.0;
  Dataset dataset =
      GenerateTiledSyntheticGeoLife(options, tiles, 200000.0).value();
  Rng rng(22);
  AssignUniformRequirements(&dataset, 2, 4, 10.0, 200.0, &rng);
  return dataset;
}

void ExpectTrajectoriesIdentical(const Trajectory& a, const Trajectory& b) {
  EXPECT_EQ(a.id(), b.id());
  EXPECT_EQ(a.object_id(), b.object_id());
  EXPECT_EQ(a.parent_id(), b.parent_id());
  EXPECT_EQ(a.requirement().k, b.requirement().k);
  EXPECT_EQ(a.requirement().delta, b.requirement().delta);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    // Bitwise: the determinism and byte-identity guarantees are exact.
    EXPECT_EQ(a.points()[i].x, b.points()[i].x) << i;
    EXPECT_EQ(a.points()[i].y, b.points()[i].y) << i;
    EXPECT_EQ(a.points()[i].t, b.points()[i].t) << i;
  }
}

void ExpectDatasetsIdentical(const Dataset& a, const Dataset& b) {
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    ExpectTrajectoriesIdentical(a[i], b[i]);
  }
}

// Everything except runtime_seconds and the metrics snapshot (wall times).
void ExpectReportsEqualMinusTimings(const AnonymizationReport& a,
                                    const AnonymizationReport& b) {
  EXPECT_EQ(a.input_trajectories, b.input_trajectories);
  EXPECT_EQ(a.num_clusters, b.num_clusters);
  EXPECT_EQ(a.trashed_trajectories, b.trashed_trajectories);
  EXPECT_EQ(a.trashed_points, b.trashed_points);
  EXPECT_EQ(a.discernibility, b.discernibility);
  EXPECT_EQ(a.created_points, b.created_points);
  EXPECT_EQ(a.deleted_points, b.deleted_points);
  EXPECT_EQ(a.total_spatial_translation, b.total_spatial_translation);
  EXPECT_EQ(a.total_temporal_translation, b.total_temporal_translation);
  EXPECT_EQ(a.avg_spatial_translation, b.avg_spatial_translation);
  EXPECT_EQ(a.avg_temporal_translation, b.avg_temporal_translation);
  EXPECT_EQ(a.omega, b.omega);
  EXPECT_EQ(a.ttd, b.ttd);
  EXPECT_EQ(a.editing_distortion, b.editing_distortion);
  EXPECT_EQ(a.total_distortion, b.total_distortion);
  EXPECT_EQ(a.clustering_rounds, b.clustering_rounds);
  EXPECT_EQ(a.final_radius, b.final_radius);
  EXPECT_EQ(a.degraded, b.degraded);
}

TEST(ShardedPipelineTest, SingleShardIsByteIdenticalToMonolithic) {
  const Dataset dataset = SmallSynthetic(36, 24);
  const std::string store_path = TempPath("shard_single.wst");
  ASSERT_TRUE(WriteDatasetStore(dataset, store_path).ok());
  Result<TrajectoryStoreReader> reader =
      TrajectoryStoreReader::Open(store_path);
  ASSERT_TRUE(reader.ok()) << reader.status();

  WcopOptions wcop;
  wcop.seed = 9;
  Result<AnonymizationResult> mono = RunWcopCt(dataset, wcop);
  ASSERT_TRUE(mono.ok()) << mono.status();

  ShardRunOptions run;
  run.wcop = wcop;
  run.partition.num_shards = 1;
  run.shard_dir = TempDirFor("shard_single.shards");
  Result<ShardedRunResult> sharded = RunShardedWcopCt(*reader, run);
  ASSERT_TRUE(sharded.ok()) << sharded.status();

  ASSERT_EQ(sharded->partition.shards.size(), 1u);
  EXPECT_TRUE(sharded->all_verified);
  ExpectDatasetsIdentical(mono->sanitized, sharded->merged.sanitized);
  ExpectReportsEqualMinusTimings(mono->report, sharded->merged.report);
  EXPECT_EQ(mono->trashed_ids, sharded->merged.trashed_ids);
  ASSERT_EQ(mono->clusters.size(), sharded->merged.clusters.size());
  for (size_t i = 0; i < mono->clusters.size(); ++i) {
    EXPECT_EQ(mono->clusters[i].pivot, sharded->merged.clusters[i].pivot);
    EXPECT_EQ(mono->clusters[i].members,
              sharded->merged.clusters[i].members);
    EXPECT_EQ(mono->clusters[i].k, sharded->merged.clusters[i].k);
    EXPECT_EQ(mono->clusters[i].delta, sharded->merged.clusters[i].delta);
  }
  std::filesystem::remove(store_path);
}

TEST(ShardedPipelineTest, MultiShardRunsVerifierCleanAndComplete) {
  const Dataset dataset = TiledDataset();
  const std::string store_path = TempPath("shard_multi.wst");
  ASSERT_TRUE(WriteDatasetStore(dataset, store_path).ok());
  Result<TrajectoryStoreReader> reader =
      TrajectoryStoreReader::Open(store_path);
  ASSERT_TRUE(reader.ok()) << reader.status();

  ShardRunOptions run;
  run.wcop.seed = 9;
  run.partition.num_shards = 4;
  run.shard_dir = TempDirFor("shard_multi.shards");
  Result<ShardedRunResult> r = RunShardedWcopCt(*reader, run);
  ASSERT_TRUE(r.ok()) << r.status();

  EXPECT_GT(r->partition.shards.size(), 1u);
  EXPECT_TRUE(r->all_verified);
  size_t shard_inputs = 0;
  for (const ShardOutcome& shard : r->shards) {
    EXPECT_TRUE(shard.verification.ok)
        << "shard " << shard.shard_index << " failed its audit";
    shard_inputs += shard.input_trajectories;
  }
  EXPECT_EQ(shard_inputs, dataset.size());
  // Published + trashed covers the whole input: nothing silently dropped.
  EXPECT_EQ(r->merged.sanitized.size() + r->merged.trashed_ids.size(),
            dataset.size());
  EXPECT_EQ(r->merged.report.input_trajectories, dataset.size());
  // Cluster member indices were remapped into the concatenated input
  // order: every index must be in range and used at most once.
  std::vector<bool> used(dataset.size(), false);
  for (const AnonymityCluster& cluster : r->merged.clusters) {
    for (size_t m : cluster.members) {
      ASSERT_LT(m, dataset.size());
      EXPECT_FALSE(used[m]);
      used[m] = true;
    }
  }
  std::filesystem::remove(store_path);
}

TEST(ShardedPipelineTest, ProgressCallbackIsMonotoneAndComplete) {
  const Dataset dataset = TiledDataset();
  const std::string store_path = TempPath("shard_progress.wst");
  ASSERT_TRUE(WriteDatasetStore(dataset, store_path).ok());
  Result<TrajectoryStoreReader> reader =
      TrajectoryStoreReader::Open(store_path);
  ASSERT_TRUE(reader.ok()) << reader.status();

  // Distance accounting flows into ShardProgress via the per-shard
  // RunContext children, so attach a context like the service does.
  RunContext ctx;
  ShardRunOptions run;
  run.wcop.seed = 9;
  run.wcop.run_context = &ctx;
  run.partition.num_shards = 4;
  run.shard_dir = TempDirFor("shard_progress.shards");
  std::vector<ShardProgress> updates;
  run.progress = [&updates](const ShardProgress& p) {
    updates.push_back(p);
  };
  Result<ShardedRunResult> r = RunShardedWcopCt(*reader, run);
  ASSERT_TRUE(r.ok()) << r.status();

  // One up-front (0, total, 0) report plus one per shard, all monotone.
  const size_t shards = r->partition.shards.size();
  ASSERT_EQ(updates.size(), shards + 1);
  EXPECT_EQ(updates.front().shards_done, 0u);
  EXPECT_EQ(updates.front().distance_calls, 0u);
  for (size_t i = 0; i < updates.size(); ++i) {
    EXPECT_EQ(updates[i].shards_total, shards);
    EXPECT_EQ(updates[i].shards_done, i);
    if (i > 0) {
      EXPECT_GE(updates[i].distance_calls, updates[i - 1].distance_calls);
    }
  }
  EXPECT_EQ(updates.back().shards_done, shards);
  EXPECT_GT(updates.back().distance_calls, 0u);
  std::filesystem::remove(store_path);
}

TEST(ShardedPipelineTest, ShardSpansMergeIntoParentTelemetry) {
  const Dataset dataset = TiledDataset();
  const std::string store_path = TempPath("shard_spans.wst");
  ASSERT_TRUE(WriteDatasetStore(dataset, store_path).ok());
  Result<TrajectoryStoreReader> reader =
      TrajectoryStoreReader::Open(store_path);
  ASSERT_TRUE(reader.ok()) << reader.status();

  telemetry::Telemetry tel;
  tel.trace().set_trace_id("wcop-job-feedfacefeedface");
  RunContext ctx;
  ctx.set_trace_id("wcop-job-feedfacefeedface");

  ShardRunOptions run;
  run.wcop.seed = 9;
  run.wcop.run_context = &ctx;
  run.wcop.telemetry = &tel;
  run.partition.num_shards = 4;
  run.shard_dir = TempDirFor("shard_spans.shards");
  Result<ShardedRunResult> r = RunShardedWcopCt(*reader, run);
  ASSERT_TRUE(r.ok()) << r.status();
  ASSERT_GT(r->partition.shards.size(), 1u);

  // The parent recorder holds span lanes from at least two distinct shards
  // (pid = 2 + shard_index; the coordinator records under pid 1).
  std::set<uint32_t> pids;
  for (const telemetry::TraceEvent& event : tel.trace().Events()) {
    pids.insert(event.pid);
  }
  size_t shard_lanes = 0;
  for (uint32_t pid : pids) {
    shard_lanes += pid >= 2;
  }
  EXPECT_GE(shard_lanes, 2u) << "expected spans from >= 2 shards";
  EXPECT_NE(tel.trace().ToChromeTraceJson().find(
                "\"traceId\":\"wcop-job-feedfacefeedface\""),
            std::string::npos);
  std::filesystem::remove(store_path);
}

TEST(ShardedPipelineTest, DeterministicAcrossThreadCounts) {
  const Dataset dataset = TiledDataset();
  const std::string store_path = TempPath("shard_threads.wst");
  ASSERT_TRUE(WriteDatasetStore(dataset, store_path).ok());
  Result<TrajectoryStoreReader> reader =
      TrajectoryStoreReader::Open(store_path);
  ASSERT_TRUE(reader.ok()) << reader.status();

  ShardRunOptions serial;
  serial.wcop.seed = 9;
  serial.wcop.threads = 1;
  serial.partition.num_shards = 4;
  serial.shard_dir = TempDirFor("shard_threads1.shards");
  Result<ShardedRunResult> a = RunShardedWcopCt(*reader, serial);
  ASSERT_TRUE(a.ok()) << a.status();

  ShardRunOptions threaded = serial;
  threaded.wcop.threads = 4;
  threaded.shard_dir = TempDirFor("shard_threads4.shards");
  Result<ShardedRunResult> b = RunShardedWcopCt(*reader, threaded);
  ASSERT_TRUE(b.ok()) << b.status();

  ExpectDatasetsIdentical(a->merged.sanitized, b->merged.sanitized);
  ExpectReportsEqualMinusTimings(a->merged.report, b->merged.report);
  EXPECT_EQ(a->merged.trashed_ids, b->merged.trashed_ids);

  // Shard-level parallelism must not change the output either.
  ShardRunOptions shard_par = serial;
  shard_par.shard_parallelism = 3;
  shard_par.shard_dir = TempDirFor("shard_threadsp.shards");
  Result<ShardedRunResult> c = RunShardedWcopCt(*reader, shard_par);
  ASSERT_TRUE(c.ok()) << c.status();
  ExpectDatasetsIdentical(a->merged.sanitized, c->merged.sanitized);
  ExpectReportsEqualMinusTimings(a->merged.report, c->merged.report);
  std::filesystem::remove(store_path);
}

TEST(ShardedPipelineTest, CheckpointResumeSkipsCompletedShards) {
  const Dataset dataset = TiledDataset();
  const std::string store_path = TempPath("shard_ckpt.wst");
  ASSERT_TRUE(WriteDatasetStore(dataset, store_path).ok());
  Result<TrajectoryStoreReader> reader =
      TrajectoryStoreReader::Open(store_path);
  ASSERT_TRUE(reader.ok()) << reader.status();

  ShardRunOptions run;
  run.wcop.seed = 9;
  run.partition.num_shards = 4;
  run.shard_dir = TempDirFor("shard_ckpt.shards");
  run.checkpoint_dir = TempDirFor("shard_ckpt.ckpts");
  Result<ShardedRunResult> first = RunShardedWcopCt(*reader, run);
  ASSERT_TRUE(first.ok()) << first.status();
  EXPECT_EQ(first->resumed_shards, 0u);
  const size_t num_shards = first->partition.shards.size();
  ASSERT_GT(num_shards, 1u);

  // Second run resumes every shard from its checkpoint, bit-for-bit.
  Result<ShardedRunResult> second = RunShardedWcopCt(*reader, run);
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(second->resumed_shards, num_shards);
  ExpectDatasetsIdentical(first->merged.sanitized,
                          second->merged.sanitized);
  ExpectReportsEqualMinusTimings(first->merged.report,
                                 second->merged.report);
  EXPECT_EQ(first->merged.trashed_ids, second->merged.trashed_ids);

  // Corrupt one checkpoint: that shard recomputes cleanly, others resume.
  const std::string victim = run.checkpoint_dir + "/shard_00001.ckpt";
  {
    std::fstream f(victim,
                   std::ios::binary | std::ios::in | std::ios::out);
    ASSERT_TRUE(f.good()) << victim;
    f.seekg(0, std::ios::end);
    const auto size = f.tellg();
    f.seekp(static_cast<std::streamoff>(size) / 2);
    f.put('\xff');
  }
  Result<ShardedRunResult> third = RunShardedWcopCt(*reader, run);
  ASSERT_TRUE(third.ok()) << third.status();
  EXPECT_EQ(third->resumed_shards, num_shards - 1);
  ExpectDatasetsIdentical(first->merged.sanitized, third->merged.sanitized);
  ExpectReportsEqualMinusTimings(first->merged.report,
                                 third->merged.report);

  // A changed option invalidates the fingerprints: nothing resumes.
  ShardRunOptions reseeded = run;
  reseeded.wcop.seed = 10;
  Result<ShardedRunResult> fourth = RunShardedWcopCt(*reader, reseeded);
  ASSERT_TRUE(fourth.ok()) << fourth.status();
  EXPECT_EQ(fourth->resumed_shards, 0u);

  std::filesystem::remove(store_path);
  std::filesystem::remove_all(run.checkpoint_dir);
}

TEST(ShardedPipelineTest, StreamedOutputMatchesInMemoryMerge) {
  const Dataset dataset = TiledDataset();
  const std::string store_path = TempPath("shard_stream.wst");
  ASSERT_TRUE(WriteDatasetStore(dataset, store_path).ok());
  Result<TrajectoryStoreReader> reader =
      TrajectoryStoreReader::Open(store_path);
  ASSERT_TRUE(reader.ok()) << reader.status();

  ShardRunOptions run;
  run.wcop.seed = 9;
  run.partition.num_shards = 4;
  run.shard_dir = TempDirFor("shard_stream.shards");
  Result<ShardedRunResult> in_memory = RunShardedWcopCt(*reader, run);
  ASSERT_TRUE(in_memory.ok()) << in_memory.status();

  ShardRunOptions streamed = run;
  streamed.shard_dir = TempDirFor("shard_stream2.shards");
  streamed.stream_output_store = TempPath("shard_stream.out.wst");
  Result<ShardedRunResult> r = RunShardedWcopCt(*reader, streamed);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_TRUE(r->merged.sanitized.empty());  // streamed to disk instead
  ExpectReportsEqualMinusTimings(in_memory->merged.report,
                                 r->merged.report);

  Result<TrajectoryStoreReader> out =
      TrajectoryStoreReader::Open(streamed.stream_output_store);
  ASSERT_TRUE(out.ok()) << out.status();
  Result<Dataset> published = out->ReadAll();
  ASSERT_TRUE(published.ok()) << published.status();
  ExpectDatasetsIdentical(in_memory->merged.sanitized, *published);

  // Streaming requires serial shard execution by contract.
  ShardRunOptions bad = streamed;
  bad.shard_parallelism = 2;
  EXPECT_EQ(RunShardedWcopCt(*reader, bad).status().code(),
            StatusCode::kInvalidArgument);

  std::filesystem::remove(store_path);
  std::filesystem::remove(streamed.stream_output_store);
}

TEST(ShardedPipelineTest, MergeReportSumsAndRecomputesAverages) {
  AnonymizationReport a;
  a.input_trajectories = 10;
  a.trashed_trajectories = 2;
  a.num_clusters = 3;
  a.total_spatial_translation = 80.0;
  a.total_temporal_translation = 16.0;
  a.omega = 2.0;
  a.clustering_rounds = 4;
  AnonymizationReport b;
  b.input_trajectories = 6;
  b.trashed_trajectories = 0;
  b.num_clusters = 2;
  b.total_spatial_translation = 20.0;
  b.total_temporal_translation = 4.0;
  b.omega = 5.0;
  b.clustering_rounds = 2;
  b.degraded = true;
  b.degraded_reason = "budget";
  MergeReportInto(&a, b);
  EXPECT_EQ(a.input_trajectories, 16u);
  EXPECT_EQ(a.num_clusters, 5u);
  EXPECT_EQ(a.trashed_trajectories, 2u);
  // Averages recomputed over the merged survivors (16 - 2 = 14), exactly
  // the monolithic formula.
  EXPECT_DOUBLE_EQ(a.avg_spatial_translation, 100.0 / 14.0);
  EXPECT_DOUBLE_EQ(a.avg_temporal_translation, 20.0 / 14.0);
  EXPECT_EQ(a.omega, 5.0);
  EXPECT_EQ(a.clustering_rounds, 4u);
  EXPECT_TRUE(a.degraded);
  EXPECT_EQ(a.degraded_reason, "budget");
}

}  // namespace
}  // namespace store
}  // namespace wcop
