#ifndef WCOP_COMMON_FAILPOINT_H_
#define WCOP_COMMON_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "common/status.h"

namespace wcop {

/// RocksDB-SyncPoint-style fault injection registry.
///
/// Production code marks its fallible boundaries with
///
///   WCOP_FAILPOINT("geolife.read_line");
///
/// inside any function returning Status or Result<T>. Disarmed (the normal
/// state) a failpoint costs two relaxed atomic loads. Tests arm a site —
/// programmatically through Arm()/ArmAbort()/ScopedFailpoint, or for whole
/// binaries via the WCOP_FAILPOINTS environment variable — and the next hit
/// either returns the injected Status from the enclosing function
/// (exercising the error-propagation path exactly as a real I/O failure
/// would) or, in abort mode, kills the process (exercising crash recovery).
///
/// WCOP_FAILPOINTS syntax: a comma-separated list of segments. Whitespace
/// around segments is trimmed and empty segments (trailing or duplicated
/// commas) are ignored. Each segment is
///
///   site            arm `site` to inject Status::Internal on every hit
///   site:abort      arm `site` to std::abort() on its first hit
///   site:abort@N    arm `site` to std::abort() on its N-th hit (N >= 1)
///   site:sigint@N   arm `site` to raise(SIGINT) on its N-th hit
///   site:sigterm@N  arm `site` to raise(SIGTERM) on its N-th hit
///   site:errno=E    arm `site` to inject an IoError carrying errno `E`
///                   (ENOSPC, EIO, EDQUOT, EACCES, EMFILE) on its first hit
///   site:errno=E@N  same, on its N-th hit
///
/// errno mode is one-shot: it lets the N-1 preceding hits through, injects
/// `Status::IoError("... <E> (<strerror>) ...")` exactly once — the way a
/// full disk fails one write and then "recovers" after the retry backoff or
/// an operator frees space — and disarms itself. Persistent device failure
/// is modelled programmatically via Arm() with max_fires = -1.
///
/// A malformed WCOP_FAILPOINTS value terminates the process with exit code
/// 2 and a clear diagnostic. Fault injection is only ever requested
/// explicitly; running without the requested faults would turn a chaos test
/// into a silent false-green, so misconfiguration is fatal, not a warning.
///
/// Signal mode delivers the signal synchronously at an exact pipeline
/// boundary and then lets execution continue — precisely how an operator's
/// Ctrl-C or a systemd SIGTERM lands mid-run — so the signal-shutdown tests
/// can assert the cooperative cancellation + final-checkpoint-flush path
/// deterministically.
///
/// All operations are thread-safe.
class FailpointRegistry {
 public:
  /// The process-wide registry. First access parses WCOP_FAILPOINTS.
  static FailpointRegistry& Instance();

  /// Arms `site` to return `status` on hits. `max_fires` > 0 limits the
  /// number of injected failures (the site disarms itself afterwards);
  /// -1 fires forever. Re-arming an armed site overwrites it.
  void Arm(std::string_view site, Status status, int max_fires = -1);

  /// Arms `site` to call std::abort() on its `on_hit`-th hit (1 = the next
  /// one). The crash-recovery harness uses this to kill a child process at
  /// an exact pipeline boundary.
  void ArmAbort(std::string_view site, int on_hit = 1);

  /// Arms `site` to raise(`signo`) on its `on_hit`-th hit and then continue
  /// normally. The signal-shutdown tests use this to deliver SIGINT/SIGTERM
  /// at an exact pipeline boundary.
  void ArmSignal(std::string_view site, int signo, int on_hit = 1);

  /// Arms `site` to inject Status::IoError carrying `errno_value` (message
  /// includes the errno name and strerror text) on its `on_hit`-th hit,
  /// letting earlier hits through, then disarms itself. This is how the
  /// chaos harness models ENOSPC/EIO striking one specific write in a
  /// multi-write publish sequence.
  void ArmErrno(std::string_view site, int errno_value, int on_hit = 1);

  /// Parses a WCOP_FAILPOINTS-style spec (see class comment) and arms every
  /// listed site. Returns InvalidArgument naming the first malformed
  /// segment; well-formed segments before it are still armed.
  Status ArmFromSpec(std::string_view spec);

  /// Disarms `site`; no-op when not armed.
  void Disarm(std::string_view site);

  /// Disarms every site and clears hit counts (test teardown). Leaves
  /// hit counting (EnableHitCounting) as-is.
  void DisarmAll();

  /// Enables counting *every* failpoint hit, armed or not. Off (the
  /// default), the disarmed fast path skips the registry entirely and
  /// HitCount only reflects hits made while some site was armed; tests
  /// that need exact hit counts turn this on.
  void EnableHitCounting(bool enabled) {
    count_all_hits_.store(enabled, std::memory_order_relaxed);
  }

  /// True when any site is armed anywhere in the process.
  bool any_armed() const {
    return armed_count_.load(std::memory_order_relaxed) > 0;
  }

  /// Fast path used by the WCOP_FAILPOINT macro: false when no site is
  /// armed and hit counting is off — the registry need not be consulted.
  bool active() const {
    return any_armed() || count_all_hits_.load(std::memory_order_relaxed);
  }

  /// Returns the injected Status when `site` is armed (aborting instead
  /// when the site is armed in abort mode and its hit countdown expires),
  /// OK otherwise.
  Status Fire(std::string_view site);

  /// Total hits observed at `site`. Exact while hit counting is enabled or
  /// some site is armed; the fully-disarmed fast path skips the registry,
  /// so hits made then are not counted.
  uint64_t HitCount(std::string_view site) const;

  /// Process-wide count of injected (non-OK) fires, across all sites and
  /// the whole process lifetime. Telemetry publishes this as the
  /// `failpoint.fires_total` gauge.
  uint64_t TotalFired() const {
    return fired_count_.load(std::memory_order_relaxed);
  }

  /// Names of the currently armed sites (diagnostics).
  std::vector<std::string> ArmedSites() const;

 private:
  FailpointRegistry();

  struct Entry {
    Status status;
    int remaining = -1;  ///< fires left; -1 = unlimited
    int skip_hits = 0;   ///< status-mode hits to let through before firing
    bool abort_mode = false;
    int abort_countdown = 0;  ///< abort when a hit decrements this to 0
    int signal_number = 0;    ///< raise this instead of aborting (signal mode)
  };

  mutable std::mutex mu_;
  std::unordered_map<std::string, Entry> sites_;
  std::unordered_map<std::string, uint64_t> hits_;
  std::atomic<int> armed_count_{0};
  std::atomic<bool> count_all_hits_{false};
  std::atomic<uint64_t> fired_count_{0};
};

/// RAII arming for tests: arms in the constructor, disarms in the
/// destructor (even when the test body throws or asserts).
class ScopedFailpoint {
 public:
  ScopedFailpoint(std::string site, Status status, int max_fires = -1)
      : site_(std::move(site)) {
    FailpointRegistry::Instance().Arm(site_, std::move(status), max_fires);
  }
  ~ScopedFailpoint() { FailpointRegistry::Instance().Disarm(site_); }

  ScopedFailpoint(const ScopedFailpoint&) = delete;
  ScopedFailpoint& operator=(const ScopedFailpoint&) = delete;

 private:
  std::string site_;
};

}  // namespace wcop

/// Fault-injection boundary marker. Usable in any function returning Status
/// or Result<T> (both implicitly construct from a non-OK Status). Near-zero
/// cost when no failpoint is armed and hit counting is off: two relaxed
/// atomic loads.
#define WCOP_FAILPOINT(site)                                         \
  do {                                                               \
    if (::wcop::FailpointRegistry::Instance().active()) {            \
      ::wcop::Status _wcop_fp_status =                               \
          ::wcop::FailpointRegistry::Instance().Fire(site);          \
      if (!_wcop_fp_status.ok()) {                                   \
        return _wcop_fp_status;                                      \
      }                                                              \
    }                                                                \
  } while (false)

#endif  // WCOP_COMMON_FAILPOINT_H_
