#include "common/run_context.h"

namespace wcop {

Status RunContext::Check() const {
  if (cancelled()) {
    return Status::Cancelled("run cancelled by caller");
  }
  if (deadline_exceeded()) {
    return Status::DeadlineExceeded("run deadline exceeded");
  }
  if (budget_exhausted()) {
    if (budget_.max_distance_computations != 0 &&
        distance_computations() > budget_.max_distance_computations) {
      return Status::ResourceExhausted(
          "distance-computation budget exhausted (" +
          std::to_string(distance_computations()) + " > " +
          std::to_string(budget_.max_distance_computations) + ")");
    }
    return Status::ResourceExhausted(
        "candidate-pair budget exhausted (" + std::to_string(candidate_pairs()) +
        " > " + std::to_string(budget_.max_candidate_pairs) + ")");
  }
  return Status::OK();
}

}  // namespace wcop
