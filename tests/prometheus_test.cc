// Prometheus text exposition: name/label sanitization, family mapping
// (wcop_ prefix, _total counters, process_* passthrough), cumulative
// histogram series with exact power-of-two bounds, NaN/Inf literals, the
// empty-registry edge case, and scrape-while-recording thread safety
// (meaningful under TSan).

#include "common/prometheus.h"

#include <atomic>
#include <cmath>
#include <cstdlib>
#include <limits>
#include <string>
#include <thread>
#include <vector>

#include "common/process_stats.h"
#include "common/telemetry.h"
#include "gtest/gtest.h"

namespace wcop {
namespace telemetry {
namespace {

// ---------------------------------------------------------------------------
// Sanitization
// ---------------------------------------------------------------------------

TEST(SanitizeMetricName, LegalNamesPassThrough) {
  EXPECT_EQ(SanitizeMetricName("server_jobs_accepted"),
            "server_jobs_accepted");
  EXPECT_EQ(SanitizeMetricName("a:b_c9"), "a:b_c9");
}

TEST(SanitizeMetricName, IllegalCharactersBecomeUnderscores) {
  EXPECT_EQ(SanitizeMetricName("server.jobs.accepted"),
            "server_jobs_accepted");
  EXPECT_EQ(SanitizeMetricName("weird-name with spaces/and#stuff"),
            "weird_name_with_spaces_and_stuff");
}

TEST(SanitizeMetricName, LeadingDigitGainsUnderscore) {
  EXPECT_EQ(SanitizeMetricName("9lives"), "_9lives");
  EXPECT_EQ(SanitizeMetricName("0"), "_0");
}

TEST(SanitizeMetricName, EmptyBecomesUnderscore) {
  EXPECT_EQ(SanitizeMetricName(""), "_");
}

TEST(EscapeLabelValue, EscapesBackslashQuoteNewline) {
  EXPECT_EQ(EscapeLabelValue("plain"), "plain");
  EXPECT_EQ(EscapeLabelValue("a\\b"), "a\\\\b");
  EXPECT_EQ(EscapeLabelValue("say \"hi\""), "say \\\"hi\\\"");
  EXPECT_EQ(EscapeLabelValue("two\nlines"), "two\\nlines");
}

// ---------------------------------------------------------------------------
// Family mapping
// ---------------------------------------------------------------------------

TEST(PrometheusText, EmptySnapshotIsEmptyExposition) {
  MetricsRegistry registry;
  EXPECT_EQ(ToPrometheusText(registry.Snapshot()), "");
}

TEST(PrometheusText, CountersGainPrefixAndTotalSuffix) {
  MetricsRegistry registry;
  registry.GetCounter("server.jobs.accepted")->Add(3);
  const std::string text = ToPrometheusText(registry.Snapshot());
  EXPECT_NE(text.find("# HELP wcop_server_jobs_accepted_total "),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("# TYPE wcop_server_jobs_accepted_total counter"),
            std::string::npos)
      << text;
  EXPECT_NE(text.find("\nwcop_server_jobs_accepted_total 3\n"),
            std::string::npos)
      << text;
}

TEST(PrometheusText, TotalSuffixIsNotDoubled) {
  MetricsRegistry registry;
  registry.GetCounter("distance.calls.total")->Add(1);
  const std::string text = ToPrometheusText(registry.Snapshot());
  EXPECT_NE(text.find("wcop_distance_calls_total 1"), std::string::npos)
      << text;
  EXPECT_EQ(text.find("_total_total"), std::string::npos) << text;
}

TEST(PrometheusText, ProcessMetricsKeepConventionalNames) {
  MetricsRegistry registry;
  registry.GetGauge("process.open_fds")->Set(12);
  registry.GetGauge("process.cpu_seconds_total")->Set(1.5);
  const std::string text = ToPrometheusText(registry.Snapshot());
  EXPECT_NE(text.find("\nprocess_open_fds 12\n"), std::string::npos) << text;
  EXPECT_EQ(text.find("wcop_process"), std::string::npos) << text;
  // The conventional process_cpu_seconds_total is a counter despite being
  // published through a gauge handle.
  EXPECT_NE(text.find("# TYPE process_cpu_seconds_total counter"),
            std::string::npos)
      << text;
}

// ---------------------------------------------------------------------------
// Values
// ---------------------------------------------------------------------------

TEST(PrometheusText, GaugeSpecialValuesUseFormatLiterals) {
  MetricsRegistry registry;
  registry.GetGauge("g.nan")->Set(std::nan(""));
  registry.GetGauge("g.pinf")->Set(std::numeric_limits<double>::infinity());
  registry.GetGauge("g.ninf")->Set(-std::numeric_limits<double>::infinity());
  registry.GetGauge("g.int")->Set(42.0);
  const std::string text = ToPrometheusText(registry.Snapshot());
  EXPECT_NE(text.find("wcop_g_nan NaN"), std::string::npos) << text;
  EXPECT_NE(text.find("wcop_g_pinf +Inf"), std::string::npos) << text;
  EXPECT_NE(text.find("wcop_g_ninf -Inf"), std::string::npos) << text;
  EXPECT_NE(text.find("wcop_g_int 42\n"), std::string::npos) << text;
}

TEST(PrometheusText, HistogramEmitsCumulativeBucketsSumCount) {
  MetricsRegistry registry;
  Histogram* h = registry.GetHistogram("op.ns");
  h->Record(0);  // bucket 0: le="0"
  h->Record(1);  // bucket 1: [1, 2) -> le="1"
  h->Record(5);  // bucket 3: [4, 8) -> le="7"
  h->Record(5);
  const std::string text = ToPrometheusText(registry.Snapshot());
  EXPECT_NE(text.find("# TYPE wcop_op_ns histogram"), std::string::npos)
      << text;
  // Cumulative: le="0" -> 1, le="1" -> 2, le="7" -> 4, +Inf -> 4.
  EXPECT_NE(text.find("wcop_op_ns_bucket{le=\"0\"} 1"), std::string::npos)
      << text;
  EXPECT_NE(text.find("wcop_op_ns_bucket{le=\"1\"} 2"), std::string::npos)
      << text;
  EXPECT_NE(text.find("wcop_op_ns_bucket{le=\"7\"} 4"), std::string::npos)
      << text;
  EXPECT_NE(text.find("wcop_op_ns_bucket{le=\"+Inf\"} 4"), std::string::npos)
      << text;
  EXPECT_NE(text.find("wcop_op_ns_sum 11"), std::string::npos) << text;
  EXPECT_NE(text.find("wcop_op_ns_count 4"), std::string::npos) << text;
}

// ---------------------------------------------------------------------------
// Scrape while recording (the interesting assertions run under TSan)
// ---------------------------------------------------------------------------

TEST(PrometheusText, ConcurrentScrapeWhileRecordingStaysWellFormed) {
  MetricsRegistry registry;
  Counter* counter = registry.GetCounter("hot.counter");
  Histogram* histogram = registry.GetHistogram("hot.ns");
  Gauge* gauge = registry.GetGauge("hot.gauge");
  std::atomic<bool> stop{false};

  std::vector<std::thread> writers;
  for (int t = 0; t < 4; ++t) {
    writers.emplace_back([&, t] {
      uint64_t v = static_cast<uint64_t>(t);
      while (!stop.load(std::memory_order_relaxed)) {
        counter->Add(1);
        histogram->Record(v++ % 1024);
        gauge->Set(static_cast<double>(v));
      }
    });
  }

  for (int scrape = 0; scrape < 200; ++scrape) {
    const std::string text = ToPrometheusText(registry.Snapshot());
    // Exposition stays parseable mid-flight: the cumulative +Inf bucket
    // equals _count (monotonicity is pinned even though bucket and count
    // increments are separate atomics).
    const size_t inf = text.find("wcop_hot_ns_bucket{le=\"+Inf\"} ");
    const size_t count = text.find("wcop_hot_ns_count ");
    ASSERT_NE(inf, std::string::npos) << text;
    ASSERT_NE(count, std::string::npos) << text;
    const uint64_t inf_value = std::strtoull(
        text.c_str() + inf + sizeof("wcop_hot_ns_bucket{le=\"+Inf\"} ") - 1,
        nullptr, 10);
    const uint64_t count_value = std::strtoull(
        text.c_str() + count + sizeof("wcop_hot_ns_count ") - 1, nullptr,
        10);
    EXPECT_EQ(inf_value, count_value) << text;
  }
  stop.store(true);
  for (std::thread& w : writers) {
    w.join();
  }
}

// ---------------------------------------------------------------------------
// /proc collector
// ---------------------------------------------------------------------------

TEST(ProcessStats, PublishesProcessGauges) {
  MetricsRegistry registry;
  PublishProcessMetrics(&registry);
  const MetricsSnapshot snapshot = registry.Snapshot();
#ifdef __linux__
  EXPECT_GT(snapshot.GaugeValue("process.resident_memory_bytes"), 0.0);
  EXPECT_GE(snapshot.GaugeValue("process.threads"), 1.0);
  EXPECT_GT(snapshot.GaugeValue("process.start_time_seconds"), 0.0);
  EXPECT_GE(snapshot.GaugeValue("process.open_fds"), 0.0);
  EXPECT_GE(snapshot.GaugeValue("process.uptime_seconds"), 0.0);
#else
  // Non-Linux: the collector is a stub and publishes nothing.
  EXPECT_EQ(snapshot.GaugeValue("process.resident_memory_bytes"), 0.0);
#endif
}

#ifdef __linux__
TEST(ProcessStats, ReadReportsLiveProcess) {
  ProcessStats stats;
  ASSERT_TRUE(ReadProcessStats(&stats));
  EXPECT_GT(stats.resident_memory_bytes, 0u);
  EXPECT_GT(stats.virtual_memory_bytes, stats.resident_memory_bytes / 8);
  EXPECT_GE(stats.threads, 1);
  EXPECT_GT(stats.start_time_seconds, 0.0);
  EXPECT_GE(stats.uptime_seconds, 0.0);
  EXPECT_GE(stats.cpu_seconds_total, 0.0);
}
#endif

}  // namespace
}  // namespace telemetry
}  // namespace wcop
