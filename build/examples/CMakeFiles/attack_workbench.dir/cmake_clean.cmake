file(REMOVE_RECURSE
  "CMakeFiles/attack_workbench.dir/attack_workbench.cpp.o"
  "CMakeFiles/attack_workbench.dir/attack_workbench.cpp.o.d"
  "attack_workbench"
  "attack_workbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/attack_workbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
