#ifndef WCOP_ATTACK_ADVERSARY_H_
#define WCOP_ATTACK_ADVERSARY_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/result.h"
#include "geo/point.h"
#include "traj/trajectory.h"

namespace wcop {
namespace attack {

/// The knobs of the partial-background-knowledge adversary audited by this
/// subsystem (DESIGN.md §14 "Attack subsystem").
///
/// The adversary holds `observations` timestamped fixes of a victim —
/// drawn from the victim's *original* trajectory, optionally perturbed two
/// ways: GPS-style Gaussian `noise`, and Definition-1 location uncertainty
/// (`pmc_delta` > 0 samples the fixes from a random possible motion curve
/// inside the victim's delta-cylinder instead of the recorded polyline).
/// `tau_seconds` / `epsilon` parameterize the k^{τ,ε}-style effective-
/// anonymity quantifier (Gramaglia et al.): the adversary knows a
/// τ-seconds-long sub-trajectory up to ε metres of spatial tolerance.
struct AdversaryModel {
  size_t observations = 5;    ///< fixes known per victim (s)
  double noise = 0.0;         ///< observation jitter stddev (metres)
  double pmc_delta = 0.0;     ///< Definition-1 uncertainty diameter (metres)
  double tau_seconds = 1800;  ///< sub-trajectory knowledge length (k^{τ,ε})
  double epsilon = 250.0;     ///< sub-trajectory spatial tolerance (metres)
  uint64_t seed = 99;         ///< base seed; per-victim streams are derived
                              ///< with MixSeed(seed, victim key)
};

/// Named presets for the CLI / daemon (`--adversary=`):
///   weak      3 observations, 100 m noise, 250 m uncertainty; τ=15 min,
///             ε=500 m — an opportunistic observer with poor fixes.
///   moderate  5 observations, 25 m noise, no uncertainty; τ=30 min,
///             ε=250 m — the default; a motivated adversary with consumer
///             GPS quality.
///   strong    10 exact observations; τ=1 h, ε=100 m — an insider with
///             clean fixes (the paper's worst-case Definition-1 observer).
/// kInvalidArgument for unknown names.
Result<AdversaryModel> AdversaryPreset(const std::string& name);

/// Samples the adversary's observations of `truth` deterministically from
/// the per-victim stream `MixSeed(model.seed, stream)`: the draw depends
/// only on (model, truth, stream), never on scheduling or on how many
/// victims were processed before this one — the keystone of the audit's
/// byte-identical-across-thread-counts guarantee. `truth` must be
/// non-empty.
std::vector<Point> SampleObservations(const Trajectory& truth,
                                      const AdversaryModel& model,
                                      uint64_t stream);

}  // namespace attack
}  // namespace wcop

#endif  // WCOP_ATTACK_ADVERSARY_H_
