# Empty dependencies file for wcop_ct_test.
# This may be replaced when dependencies are built.
