// Reproduces Figures 6 and 7: total distortion (Fig. 6) and discernibility
// (Fig. 7) of WCOP-SA with (a) Traclus and (b) Convoys segmentation, over
// the same (k_max, delta_max) grid as Figure 5.
//
// Both figures come from the same runs, so one binary regenerates all four
// panels. Expected shape (Section 6.4): segmentation — especially Traclus —
// substantially reduces distortion versus plain WCOP-CT while raising the
// discernibility metric (many more, smaller clusters).
//
// Run:  ./fig6_fig7_sa_sweep [--points=120] [--json-out=FILE]

#include <cstdio>
#include <iostream>
#include <vector>

#include "anon/wcop.h"
#include "bench_util.h"
#include "common/table_printer.h"

using namespace wcop;
using namespace wcop::bench;

int main(int argc, char** argv) {
  ArgParser args(argc, argv);
  const BenchScale scale = BenchScale::FromArgs(args);
  JsonOut json_out(args);
  const Dataset base = MakeBenchDataset(scale);

  const std::vector<int> k_values = {5, 10, 25, 50, 100};
  const std::vector<double> delta_values = {50, 100, 250, 500, 1000, 1400};

  struct Grid {
    std::vector<std::vector<double>> distortion;
    std::vector<std::vector<double>> discernibility;
  };
  auto make_grid = [&] {
    Grid g;
    g.distortion.assign(delta_values.size(),
                        std::vector<double>(k_values.size(), 0.0));
    g.discernibility = g.distortion;
    return g;
  };
  Grid traclus_grid = make_grid();
  Grid convoy_grid = make_grid();

  // Segment once per segmenter: the partitioning is requirement-independent
  // (requirements are assigned per sweep cell onto the parents and
  // propagated to the sub-trajectories afterwards).
  TraclusSegmenter traclus(BenchTraclusOptions());
  ConvoySegmenter convoys(BenchConvoyOptions());
  Result<Dataset> by_traclus = traclus.Segment(base);
  Result<Dataset> by_convoys = convoys.Segment(base);
  if (!by_traclus.ok() || !by_convoys.ok()) {
    std::cerr << "segmentation failed\n";
    return 1;
  }
  std::printf("segmented %zu trajectories into %zu (traclus) / %zu (convoys) "
              "sub-trajectories\n",
              base.size(), by_traclus->size(), by_convoys->size());

  auto run_sweep = [&](const Dataset& segmented, Grid* grid,
                       const char* name, const char* json_name) -> bool {
    for (size_t ki = 0; ki < k_values.size(); ++ki) {
      for (size_t di = 0; di < delta_values.size(); ++di) {
        // Assign requirements to the parents, propagate to children — every
        // sub-trajectory of a user inherits that user's preference.
        Dataset parents = base;
        AssignPaperRequirements(&parents, k_values[ki], delta_values[di],
                                scale.seed + 300 + ki * 16 + di);
        Dataset dataset = segmented;
        for (Trajectory& sub : dataset.mutable_trajectories()) {
          const Trajectory* parent = parents.FindById(sub.parent_id());
          if (parent != nullptr) {
            sub.set_requirement(parent->requirement());
          }
        }
        WcopOptions options;
        options.seed = scale.seed + 2;
        telemetry::Telemetry tel;
        options.telemetry = &tel;
        Result<AnonymizationResult> r = RunWcopCt(dataset, options);
        if (!r.ok()) {
          std::cerr << name << " failed at kmax=" << k_values[ki]
                    << " dmax=" << delta_values[di] << ": " << r.status()
                    << "\n";
          return false;
        }
        grid->distortion[di][ki] = r->report.total_distortion;
        grid->discernibility[di][ki] = r->report.discernibility;
        json_out.Add(json_name,
                     {{"points", static_cast<double>(scale.points)},
                      {"sub_trajectories",
                       static_cast<double>(dataset.size())},
                      {"kmax", static_cast<double>(k_values[ki])},
                      {"dmax", delta_values[di]}},
                     r->report.runtime_seconds, r->report.metrics);
      }
    }
    return true;
  };

  if (!run_sweep(*by_traclus, &traclus_grid, "SA-Traclus",
                 "fig6_fig7/sa_traclus") ||
      !run_sweep(*by_convoys, &convoy_grid, "SA-Convoys",
                 "fig6_fig7/sa_convoys")) {
    return 1;
  }

  auto print_grid = [&](const char* title,
                        const std::vector<std::vector<double>>& grid) {
    PrintHeader(title);
    std::vector<std::string> header = {"series"};
    for (int k : k_values) {
      header.push_back("kmax=" + std::to_string(k));
    }
    TablePrinter table(header);
    for (size_t di = 0; di < delta_values.size(); ++di) {
      std::vector<std::string> row = {
          "dmax=" + FormatSignificant(delta_values[di], 4)};
      for (size_t ki = 0; ki < k_values.size(); ++ki) {
        row.push_back(FormatSignificant(grid[di][ki], 4));
      }
      table.AddRow(row);
    }
    table.Print(std::cout);
  };

  print_grid("Figure 6(a): WCOP-SA-Traclus total distortion",
             traclus_grid.distortion);
  print_grid("Figure 6(b): WCOP-SA-Convoys total distortion",
             convoy_grid.distortion);
  print_grid("Figure 7(a): WCOP-SA-Traclus discernibility",
             traclus_grid.discernibility);
  print_grid("Figure 7(b): WCOP-SA-Convoys discernibility",
             convoy_grid.discernibility);
  if (!json_out.Flush()) {
    return 1;
  }
  return 0;
}
