# Empty dependencies file for segmentation_explorer.
# This may be replaced when dependencies are built.
