// Didactic reconstruction of the paper's Figure 1: five trajectories with
// personal privacy levels k = {3, 2, 2, 3, 2} (and matching deltas), run
// through the three publication strategies the figure contrasts:
//
//   (a/b) universal k = max(k_i) = 3   -> one coarse way of clustering,
//         the published data loses the two-lane structure;
//   (c)   personalized k_i             -> two clusters, trend preserved;
//   (d)   segmentation + personalized  -> sub-trajectory clusters, even
//         less translation.
//
// The example prints the cluster assignments and distortion of each
// strategy so the figure's story can be read off the terminal.
//
// Run:  ./figure1_walkthrough

#include <cstdio>
#include <iostream>

#include "anon/wcop.h"
#include "common/table_printer.h"
#include "segment/traclus.h"

using namespace wcop;

namespace {

/// Five trajectories evoking Figure 1(a): two groups travelling on nearby
/// lanes; trajectories 0-2 share a northern corridor, 3-4 a southern one
/// that first runs close to the northern group and then bends away —
/// giving the segmentation step a shared prefix to discover.
Dataset MakeFigure1Dataset() {
  Dataset d;
  const double kStep = 50.0;  // metres between samples
  auto lane = [&](int64_t id, double offset, bool bends, int k,
                  double delta) {
    std::vector<Point> points;
    double x = 0.0, y = offset;
    for (int i = 0; i < 40; ++i) {
      points.emplace_back(x, y, static_cast<double>(i) * 10.0);
      x += kStep;
      if (bends && i >= 20) {
        y -= kStep * 0.8;  // southern group bends away after half-way
      }
    }
    Trajectory t(id, std::move(points), Requirement{k, delta});
    t.set_object_id(id);
    return t;
  };
  // Figure 1's privacy levels: the northern corridor holds {k=3, k=2, k=2},
  // the southern pair {k=2, k=2} — so personalization can split them into
  // a 3-cluster and a 2-cluster.
  d.Add(lane(0, 0.0, false, 3, 200.0));
  d.Add(lane(1, 30.0, false, 2, 200.0));
  d.Add(lane(2, 60.0, false, 2, 200.0));
  d.Add(lane(3, 120.0, true, 2, 200.0));
  d.Add(lane(4, 150.0, true, 2, 200.0));
  return d;
}

void PrintClusters(const char* title, const Dataset& input,
                   const AnonymizationResult& result) {
  std::printf("%s\n", title);
  for (size_t c = 0; c < result.clusters.size(); ++c) {
    const AnonymityCluster& cluster = result.clusters[c];
    std::printf("  cluster %zu (k=%d, delta=%.0f): trajectories ", c,
                cluster.k, cluster.delta);
    for (size_t m : cluster.members) {
      std::printf("%lld ", static_cast<long long>(input[m].id()));
    }
    std::printf("\n");
  }
  std::printf("  total distortion: %.4g\n\n",
              result.report.total_distortion);
}

}  // namespace

int main() {
  const Dataset d = MakeFigure1Dataset();
  std::printf("Figure 1 walkthrough: 5 trajectories, k = {3,2,2,3,2}\n\n");

  WcopOptions options;
  options.seed = 4;
  // A toy this small needs a matching EDR tolerance (the auto heuristic of
  // 10x delta_max would declare all five lanes identical): points match
  // within 80 m and 30 s.
  options.distance.tolerance.dx = 80.0;
  options.distance.tolerance.dy = 80.0;
  options.distance.tolerance.dt = 30.0;

  // (b) universal k: WCOP-NV forces k = 3 on everyone.
  Result<AnonymizationResult> nv = RunWcopNv(d, options);
  if (!nv.ok()) {
    std::cerr << nv.status() << "\n";
    return 1;
  }
  PrintClusters("(b) universal k = 3 (WCOP-NV):", d, *nv);

  // (c) personalized k_i: WCOP-CT.
  Result<AnonymizationResult> ct = RunWcopCt(d, options);
  if (!ct.ok()) {
    std::cerr << ct.status() << "\n";
    return 1;
  }
  PrintClusters("(c) personalized k_i (WCOP-CT):", d, *ct);

  // (d) segmentation + personalized: WCOP-SA with TRACLUS.
  TraclusSegmenter segmenter;
  Result<WcopSaResult> sa = RunWcopSa(d, &segmenter, options);
  if (!sa.ok()) {
    std::cerr << sa.status() << "\n";
    return 1;
  }
  std::printf("(d) segmentation first: %zu sub-trajectories\n",
              sa->segmented.size());
  PrintClusters("    then personalized (WCOP-SA):", sa->segmented,
                sa->anonymization);

  TablePrinter summary({"strategy", "clusters", "total distortion"});
  summary.AddRow({"(b) universal", std::to_string(nv->report.num_clusters),
                  FormatSignificant(nv->report.total_distortion, 4)});
  summary.AddRow({"(c) personalized",
                  std::to_string(ct->report.num_clusters),
                  FormatSignificant(ct->report.total_distortion, 4)});
  summary.AddRow({"(d) segmented + personalized",
                  std::to_string(sa->anonymization.report.num_clusters),
                  FormatSignificant(
                      sa->anonymization.report.total_distortion, 4)});
  summary.Print(std::cout);
  std::printf("\nThe paper's Figure 1 claim, in numbers: each refinement "
              "preserves more of the original trend.\n");
  return 0;
}
