#ifndef WCOP_DISTANCE_DTW_H_
#define WCOP_DISTANCE_DTW_H_

#include <cstddef>

#include "traj/trajectory.h"

namespace wcop {

/// Dynamic Time Warping over the spatial components of two trajectories.
///
/// Complements EDR in the distance toolbox: DTW sums real distances along
/// the optimal alignment (scale-sensitive, no tolerance parameter), where
/// EDR counts tolerance-mismatched edits (robust to outliers). Provided
/// for distance-function ablations; the WCOP pipeline itself uses EDR as
/// the paper prescribes.

/// Classic DTW with optional Sakoe-Chiba band: alignment |i - j| is
/// limited to `window` when window > 0 (0 = unconstrained). Returns the
/// summed spatial distance along the optimal warping path, or +infinity
/// when either trajectory is empty (or the band admits no path).
double DtwDistance(const Trajectory& a, const Trajectory& b,
                   size_t window = 0);

/// DTW normalized by the warping path's worst-case length (|a| + |b|),
/// giving a per-step average displacement in metres.
double NormalizedDtwDistance(const Trajectory& a, const Trajectory& b,
                             size_t window = 0);

}  // namespace wcop

#endif  // WCOP_DISTANCE_DTW_H_
