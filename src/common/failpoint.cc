#include "common/failpoint.h"

#include <signal.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace wcop {

namespace {

/// Trims ASCII whitespace from both ends of `s`.
std::string_view Trim(std::string_view s) {
  auto is_space = [](char c) {
    return c == ' ' || c == '\t' || c == '\n' || c == '\r';
  };
  while (!s.empty() && is_space(s.front())) s.remove_prefix(1);
  while (!s.empty() && is_space(s.back())) s.remove_suffix(1);
  return s;
}

/// The errno names injectable from a WCOP_FAILPOINTS spec. Covers the
/// failures a publish sequence realistically meets: full disk, device
/// error, quota, permissions, fd exhaustion. Returns 0 for unknown names.
int ErrnoFromName(std::string_view name) {
  if (name == "ENOSPC") return ENOSPC;
  if (name == "EIO") return EIO;
  if (name == "EDQUOT") return EDQUOT;
  if (name == "EACCES") return EACCES;
  if (name == "EMFILE") return EMFILE;
  return 0;
}

const char* ErrnoName(int errno_value) {
  switch (errno_value) {
    case ENOSPC: return "ENOSPC";
    case EIO: return "EIO";
    case EDQUOT: return "EDQUOT";
    case EACCES: return "EACCES";
    case EMFILE: return "EMFILE";
    default: return "errno";
  }
}

}  // namespace

FailpointRegistry& FailpointRegistry::Instance() {
  static FailpointRegistry* registry = new FailpointRegistry();
  return *registry;
}

FailpointRegistry::FailpointRegistry() {
  // Environment-driven arming: WCOP_FAILPOINTS="site1,site2:abort@3" arms
  // each listed site (see the class comment for the segment syntax). Lets a
  // whole test binary (or a staging deployment, or the crash-recovery
  // harness's child process) run under injected faults without recompiling.
  const char* env = std::getenv("WCOP_FAILPOINTS");
  if (env == nullptr || *env == '\0') {
    return;
  }
  Status status = ArmFromSpec(env);
  if (!status.ok()) {
    // Fault injection is only ever requested explicitly. Running on despite
    // a typo would execute a chaos test with no faults armed — a silent
    // false-green — so a malformed spec is fatal, not a warning.
    std::fprintf(stderr, "WCOP_FAILPOINTS: %s\n", status.ToString().c_str());
    std::_Exit(2);
  }
}

Status FailpointRegistry::ArmFromSpec(std::string_view spec) {
  while (!spec.empty()) {
    const size_t comma = spec.find(',');
    std::string_view segment = spec.substr(0, comma);
    spec = comma == std::string_view::npos ? std::string_view()
                                           : spec.substr(comma + 1);
    segment = Trim(segment);
    if (segment.empty()) {
      continue;  // trailing / duplicated commas
    }
    const size_t colon = segment.find(':');
    const std::string_view site = Trim(segment.substr(0, colon));
    if (site.empty()) {
      return Status::InvalidArgument("failpoint segment '" +
                                     std::string(segment) + "' has no site");
    }
    if (colon == std::string_view::npos) {
      Arm(site, Status::Internal("injected fault (WCOP_FAILPOINTS) at " +
                                 std::string(site)));
      continue;
    }
    std::string_view mode = Trim(segment.substr(colon + 1));
    int on_hit = 1;
    if (const size_t at = mode.find('@'); at != std::string_view::npos) {
      const std::string count(Trim(mode.substr(at + 1)));
      mode = Trim(mode.substr(0, at));
      char* end = nullptr;
      const long parsed = std::strtol(count.c_str(), &end, 10);
      if (end == count.c_str() || *end != '\0' || parsed < 1) {
        return Status::InvalidArgument("failpoint segment '" +
                                       std::string(segment) +
                                       "' has a bad hit count");
      }
      on_hit = static_cast<int>(parsed);
    }
    if (mode == "abort") {
      ArmAbort(site, on_hit);
    } else if (mode == "sigint") {
      ArmSignal(site, SIGINT, on_hit);
    } else if (mode == "sigterm") {
      ArmSignal(site, SIGTERM, on_hit);
    } else if (mode.rfind("errno=", 0) == 0) {
      const std::string_view name = Trim(mode.substr(6));
      const int errno_value = ErrnoFromName(name);
      if (errno_value == 0) {
        return Status::InvalidArgument(
            "failpoint segment '" + std::string(segment) +
            "' has unknown errno name '" + std::string(name) +
            "' (supported: ENOSPC, EIO, EDQUOT, EACCES, EMFILE)");
      }
      ArmErrno(site, errno_value, on_hit);
    } else {
      return Status::InvalidArgument("failpoint segment '" +
                                     std::string(segment) +
                                     "' has unknown mode '" +
                                     std::string(mode) + "'");
    }
  }
  return Status::OK();
}

void FailpointRegistry::Arm(std::string_view site, Status status,
                            int max_fires) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry entry;
  entry.status = std::move(status);
  entry.remaining = max_fires;
  auto [it, inserted] =
      sites_.insert_or_assign(std::string(site), std::move(entry));
  (void)it;
  if (inserted) {
    armed_count_.fetch_add(1, std::memory_order_relaxed);
  }
}

void FailpointRegistry::ArmErrno(std::string_view site, int errno_value,
                                 int on_hit) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry entry;
  entry.status = Status::IoError(
      std::string("injected ") + ErrnoName(errno_value) + " (" +
      std::strerror(errno_value) + ") at " + std::string(site));
  entry.remaining = 1;  // one-shot: the disk "recovers" after this write
  entry.skip_hits = on_hit < 1 ? 0 : on_hit - 1;
  auto [it, inserted] =
      sites_.insert_or_assign(std::string(site), std::move(entry));
  (void)it;
  if (inserted) {
    armed_count_.fetch_add(1, std::memory_order_relaxed);
  }
}

void FailpointRegistry::ArmAbort(std::string_view site, int on_hit) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry entry;
  entry.status = Status::OK();
  entry.abort_mode = true;
  entry.abort_countdown = on_hit < 1 ? 1 : on_hit;
  auto [it, inserted] =
      sites_.insert_or_assign(std::string(site), std::move(entry));
  (void)it;
  if (inserted) {
    armed_count_.fetch_add(1, std::memory_order_relaxed);
  }
}

void FailpointRegistry::ArmSignal(std::string_view site, int signo,
                                  int on_hit) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry entry;
  entry.status = Status::OK();
  entry.abort_mode = true;  // reuse the countdown plumbing
  entry.abort_countdown = on_hit < 1 ? 1 : on_hit;
  entry.signal_number = signo;
  auto [it, inserted] =
      sites_.insert_or_assign(std::string(site), std::move(entry));
  (void)it;
  if (inserted) {
    armed_count_.fetch_add(1, std::memory_order_relaxed);
  }
}

void FailpointRegistry::Disarm(std::string_view site) {
  std::lock_guard<std::mutex> lock(mu_);
  if (sites_.erase(std::string(site)) > 0) {
    armed_count_.fetch_sub(1, std::memory_order_relaxed);
  }
}

void FailpointRegistry::DisarmAll() {
  std::lock_guard<std::mutex> lock(mu_);
  armed_count_.fetch_sub(static_cast<int>(sites_.size()),
                         std::memory_order_relaxed);
  sites_.clear();
  hits_.clear();
}

Status FailpointRegistry::Fire(std::string_view site) {
  std::lock_guard<std::mutex> lock(mu_);
  ++hits_[std::string(site)];
  auto it = sites_.find(std::string(site));
  if (it == sites_.end()) {
    return Status::OK();
  }
  if (it->second.abort_mode) {
    if (--it->second.abort_countdown <= 0) {
      if (it->second.signal_number != 0) {
        // Signal mode: deliver the shutdown signal at exactly this boundary
        // and keep going — the cooperative cancellation machinery, not the
        // failpoint, decides what happens next. One-shot: a disarm here
        // keeps a re-entrant handler or retry loop from re-raising.
        const int signo = it->second.signal_number;
        std::fprintf(stderr, "failpoint signal %d at '%.*s'\n", signo,
                     static_cast<int>(site.size()), site.data());
        sites_.erase(it);
        armed_count_.fetch_sub(1, std::memory_order_relaxed);
        ::raise(signo);
        return Status::OK();
      }
      // The whole point: die exactly here, the way a power cut or OOM kill
      // would, so the crash-recovery harness can assert that a restart
      // resumes cleanly from the last checkpoint.
      std::fprintf(stderr, "failpoint abort at '%.*s'\n",
                   static_cast<int>(site.size()), site.data());
      std::abort();
    }
    return Status::OK();
  }
  if (it->second.skip_hits > 0) {
    --it->second.skip_hits;
    return Status::OK();
  }
  Status injected = it->second.status;
  if (!injected.ok()) {
    fired_count_.fetch_add(1, std::memory_order_relaxed);
  }
  if (it->second.remaining > 0 && --it->second.remaining == 0) {
    sites_.erase(it);
    armed_count_.fetch_sub(1, std::memory_order_relaxed);
  }
  return injected;
}

uint64_t FailpointRegistry::HitCount(std::string_view site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = hits_.find(std::string(site));
  return it == hits_.end() ? 0 : it->second;
}

std::vector<std::string> FailpointRegistry::ArmedSites() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  out.reserve(sites_.size());
  for (const auto& [site, entry] : sites_) {
    out.push_back(site);
  }
  return out;
}

}  // namespace wcop
