#ifndef WCOP_ANON_UTILITY_H_
#define WCOP_ANON_UTILITY_H_

#include <cstddef>
#include <vector>

#include "common/rng.h"
#include "traj/dataset.h"

namespace wcop {

/// Utility metrics of a sanitized dataset beyond raw translation distortion.
///
/// The W4M line of work evaluates anonymization utility by *range query
/// distortion*: how differently the sanitized data answers spatiotemporal
/// count queries than the original. This module implements that metric plus
/// a spatial-density divergence, both over arbitrary dataset pairs — they
/// make no assumption about how the sanitized data was produced.

/// A spatiotemporal range query: "how many trajectories pass through the
/// box [x_lo,x_hi] x [y_lo,y_hi] during [t_lo, t_hi]?"
struct RangeQuery {
  double x_lo = 0.0, x_hi = 0.0;
  double y_lo = 0.0, y_hi = 0.0;
  double t_lo = 0.0, t_hi = 0.0;
};

/// True iff the (linearly interpolated) trajectory intersects the query
/// volume. Exact under the linear-interpolation model: each recorded
/// segment is clipped to the time window and the clipped spatial segment is
/// tested against the box.
bool TrajectoryMatchesQuery(const Trajectory& trajectory,
                            const RangeQuery& query);

/// Number of trajectories in `dataset` matching `query`.
size_t CountMatches(const Dataset& dataset, const RangeQuery& query);

/// Generates `count` random queries over the dataset's extent: each query
/// box is centred on a random recorded point, with spatial half-extent
/// `spatial_fraction` of the dataset radius and temporal half-extent
/// `temporal_fraction` of the dataset duration.
std::vector<RangeQuery> GenerateRangeQueries(const Dataset& dataset,
                                             size_t count,
                                             double spatial_fraction,
                                             double temporal_fraction,
                                             Rng* rng);

/// Aggregate outcome of a range-query workload evaluation.
struct RangeQueryDistortionResult {
  size_t num_queries = 0;
  double mean_absolute_error = 0.0;   ///< mean |orig - sanitized|
  double mean_relative_error = 0.0;   ///< mean |orig - san| / max(orig, 1)
  size_t total_original_matches = 0;
  size_t total_sanitized_matches = 0;
};

/// Evaluates how differently `sanitized` answers the query workload than
/// `original` — lower is better utility.
RangeQueryDistortionResult RangeQueryDistortion(
    const Dataset& original, const Dataset& sanitized,
    const std::vector<RangeQuery>& queries);

/// Spatial-density divergence: grid both datasets' points over the union
/// bounding box into `cells_per_axis`^2 cells, normalize to distributions,
/// and return half the L1 distance (total variation, in [0, 1]; 0 = same
/// spatial density everywhere).
double SpatialDensityDivergence(const Dataset& original,
                                const Dataset& sanitized,
                                size_t cells_per_axis = 32);

}  // namespace wcop

#endif  // WCOP_ANON_UTILITY_H_
