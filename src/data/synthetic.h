#ifndef WCOP_DATA_SYNTHETIC_H_
#define WCOP_DATA_SYNTHETIC_H_

#include <cstdint>

#include "common/result.h"
#include "common/rng.h"
#include "traj/dataset.h"

namespace wcop {

/// Deterministic synthetic stand-in for the paper's GeoLife sample
/// (Table 2). See DESIGN.md §4 for the substitution rationale.
///
/// The generator lays out a hub-and-route network over a Beijing-scale
/// region and lets synthetic users travel along (laterally offset, jittered)
/// shared routes, occasionally in companion groups that depart together —
/// giving the segmentation algorithms (TRACLUS direction changes, Convoy
/// co-movement) and the personalized clustering real structure to exploit.
struct SyntheticOptions {
  uint64_t seed = 42;

  // Table 2 targets.
  size_t num_users = 72;
  size_t num_trajectories = 238;
  size_t points_per_trajectory = 1442;   ///< 238 * 1442 ~= 343k points
  double sampling_interval = 3.0;        ///< seconds between fixes
  double region_half_diagonal = 51982.0; ///< metres
  double avg_speed = 6.36;               ///< m/s
  double speed_stddev = 1.5;
  double dataset_duration_days = 1477.0;

  // Road-network shape.
  size_t num_hubs = 16;
  size_t num_routes = 24;          ///< size of the popular-route pool
  size_t waypoints_per_leg = 8;    ///< wiggle points per hub-to-hub leg
  double route_wiggle_sigma = 250.0;  ///< lateral jitter of route waypoints

  // Behaviour.
  double popular_route_prob = 0.75;   ///< travel a popular route vs ad hoc
  double companion_prob = 0.35;       ///< depart together with previous user
  double route_lateral_sigma = 40.0;  ///< per-trajectory lane offset (m)
  double gps_noise_sigma = 6.0;       ///< per-fix GPS noise (m)

  /// Fraction of trajectories that are *outliers*: free random walks off
  /// the road network entirely (GeoLife has hikers, boats, flights). They
  /// resemble nothing else, so clustering-based anonymizers either drag
  /// them into distant clusters or trash them — the source of the paper's
  /// Table 3 trash counts.
  double outlier_fraction = 0.0;

  /// Convenience: a benchmark-scale copy of these options with
  /// `points` points per trajectory (and the same structure otherwise).
  SyntheticOptions WithPointsPerTrajectory(size_t points) const {
    SyntheticOptions out = *this;
    out.points_per_trajectory = points;
    return out;
  }
};

/// Generates the synthetic dataset. Fails on inconsistent options (zero
/// trajectories, non-positive interval, fewer than two hubs, ...).
Result<Dataset> GenerateSyntheticGeoLife(const SyntheticOptions& options);

/// Generates `tiles` independent synthetic cities laid out on a square
/// grid with `tile_spacing` metres between tile origins, each a
/// GenerateSyntheticGeoLife run with its own derived seed and
/// `options.num_trajectories` trajectories (ids and object ids are
/// renumbered globally). With a spacing comfortably above the anonymizers'
/// distance tolerances the tiles are genuinely independent — the shape of
/// real multi-region corpora, and the input that makes the sharded
/// pipeline (store/shard_runner.h) partition into more than one shard.
Result<Dataset> GenerateTiledSyntheticGeoLife(const SyntheticOptions& options,
                                              size_t tiles,
                                              double tile_spacing);

/// Assigns each trajectory an independent uniform requirement
/// k ~ U{k_min..k_max}, delta ~ U[delta_min, delta_max] — the distribution
/// of the paper's experiments (Section 6.2: k in [2,100], delta in
/// [10,1400]).
void AssignUniformRequirements(Dataset* dataset, int k_min, int k_max,
                               double delta_min, double delta_max, Rng* rng);

/// Requirement profiles for the example scenarios: a share of
/// privacy-conscious users gets high k / low delta; the rest are relaxed.
struct RequirementProfile {
  double strict_fraction = 0.2;
  int strict_k = 25;
  double strict_delta = 50.0;
  int relaxed_k = 3;
  double relaxed_delta = 500.0;
};
void AssignProfileRequirements(Dataset* dataset,
                               const RequirementProfile& profile, Rng* rng);

}  // namespace wcop

#endif  // WCOP_DATA_SYNTHETIC_H_
