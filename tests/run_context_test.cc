#include "common/run_context.h"

#include <gtest/gtest.h>

#include <chrono>

#include "anon/streaming.h"
#include "anon/verifier.h"
#include "anon/wcop_ct.h"
#include "anon/wcop_nv.h"
#include "test_util.h"

namespace wcop {
namespace {

using testing_util::SmallSynthetic;

// ---------------------------------------------------------------------------
// Unit semantics of the RunContext primitives.
// ---------------------------------------------------------------------------

TEST(RunContextTest, DefaultContextIsUnbounded) {
  RunContext context;
  EXPECT_FALSE(context.has_deadline());
  EXPECT_FALSE(context.deadline_exceeded());
  EXPECT_FALSE(context.cancelled());
  EXPECT_FALSE(context.budget_exhausted());
  EXPECT_TRUE(context.Check().ok());
  EXPECT_TRUE(CheckRunContext(&context).ok());
  EXPECT_TRUE(CheckRunContext(nullptr).ok());
}

TEST(RunContextTest, ExpiredDeadlineTrips) {
  RunContext context;
  context.set_deadline(RunContext::Clock::now() -
                       std::chrono::milliseconds(1));
  EXPECT_TRUE(context.deadline_exceeded());
  Status s = context.Check();
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded) << s;

  context.clear_deadline();
  EXPECT_FALSE(context.has_deadline());
  EXPECT_TRUE(context.Check().ok());
}

TEST(RunContextTest, FutureDeadlineDoesNotTrip) {
  RunContext context;
  context.set_deadline_after(std::chrono::hours(1));
  EXPECT_TRUE(context.has_deadline());
  EXPECT_FALSE(context.deadline_exceeded());
  EXPECT_TRUE(context.Check().ok());
}

TEST(RunContextTest, CancellationTokenSharesStateAcrossCopies) {
  CancellationToken token;
  CancellationToken copy = token;
  EXPECT_FALSE(copy.cancellation_requested());
  token.RequestCancellation();
  EXPECT_TRUE(copy.cancellation_requested());

  RunContext context;
  context.set_cancellation_token(copy);
  EXPECT_TRUE(context.cancelled());
  Status s = context.Check();
  EXPECT_EQ(s.code(), StatusCode::kCancelled) << s;
}

TEST(RunContextTest, BudgetChargesAndTrips) {
  RunContext context;
  ResourceBudget budget;
  budget.max_distance_computations = 10;
  context.set_budget(budget);

  context.ChargeDistance(10);
  EXPECT_EQ(context.distance_computations(), 10u);
  EXPECT_FALSE(context.budget_exhausted());  // at the cap is still fine
  EXPECT_TRUE(context.Check().ok());

  context.ChargeDistance();
  EXPECT_TRUE(context.budget_exhausted());
  Status s = context.Check();
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted) << s;
}

TEST(RunContextTest, CandidatePairBudgetTrips) {
  RunContext context;
  ResourceBudget budget;
  budget.max_candidate_pairs = 5;
  context.set_budget(budget);
  context.ChargeCandidatePairs(6);
  EXPECT_EQ(context.candidate_pairs(), 6u);
  EXPECT_EQ(context.Check().code(), StatusCode::kResourceExhausted);
}

TEST(RunContextTest, CancellationOutranksDeadlineAndBudget) {
  RunContext context;
  context.set_deadline(RunContext::Clock::now() -
                       std::chrono::milliseconds(1));
  ResourceBudget budget;
  budget.max_distance_computations = 1;
  context.set_budget(budget);
  context.ChargeDistance(2);
  CancellationToken token;
  token.RequestCancellation();
  context.set_cancellation_token(token);

  EXPECT_EQ(context.Check().code(), StatusCode::kCancelled);
}

// ---------------------------------------------------------------------------
// End-to-end: deadline through RunWcopCt (the ISSUE acceptance scenario).
// ---------------------------------------------------------------------------

TEST(RunContextTest, WcopCtDeadlineWithoutPartialResultsFails) {
  const Dataset d = SmallSynthetic(500, 30);
  RunContext context;
  context.set_deadline_after(std::chrono::milliseconds(1));
  WcopOptions options;
  options.run_context = &context;
  options.allow_partial_results = false;
  Result<AnonymizationResult> result = RunWcopCt(d, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded)
      << result.status();
}

TEST(RunContextTest, WcopCtDeadlineWithPartialResultsDegrades) {
  const Dataset d = SmallSynthetic(500, 30);
  RunContext context;
  context.set_deadline_after(std::chrono::milliseconds(1));
  WcopOptions options;
  options.run_context = &context;
  options.allow_partial_results = true;
  Result<AnonymizationResult> result = RunWcopCt(d, options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->report.degraded);
  EXPECT_FALSE(result->report.degraded_reason.empty());
  // Published + suppressed must still account for every input trajectory.
  EXPECT_EQ(result->sanitized.size() + result->trashed_ids.size(), d.size());
  // The partial result keeps the full anonymity guarantee for everything it
  // publishes: the independent verifier must accept it.
  VerificationReport verification = VerifyAnonymity(d, *result);
  EXPECT_TRUE(verification.ok)
      << (verification.messages.empty() ? "" : verification.messages.front());
  EXPECT_EQ(verification.violations, 0u);
}

TEST(RunContextTest, WcopCtDistanceBudgetDegradesDeterministically) {
  // A distance budget (unlike a wall-clock deadline) trips at the exact same
  // point on every run, giving a deterministic partial result with some
  // clusters already formed.
  const Dataset d = SmallSynthetic(60, 30);
  RunContext context;
  ResourceBudget budget;
  budget.max_distance_computations = 200;
  context.set_budget(budget);
  WcopOptions options;
  // The exhaustive (cascade-off) path: this test is about budget-trip
  // determinism and needs every pair to actually run the DP.
  options.distance.cascade = false;
  options.run_context = &context;
  options.allow_partial_results = true;
  Result<AnonymizationResult> result = RunWcopCt(d, options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->report.degraded);
  EXPECT_GT(context.distance_computations(), 200u);
  EXPECT_EQ(result->sanitized.size() + result->trashed_ids.size(), d.size());
  // The budget admits a few full cluster pools before tripping, and the
  // tripped context must not re-suppress them during translation: a partial
  // result actually publishes the clusters formed before the trip.
  EXPECT_GT(result->report.num_clusters, 0u);
  EXPECT_GT(result->sanitized.size(), 0u);
  VerificationReport verification = VerifyAnonymity(d, *result);
  EXPECT_TRUE(verification.ok)
      << (verification.messages.empty() ? "" : verification.messages.front());
}

TEST(RunContextTest, WcopCtBudgetWithoutPartialResultsFails) {
  const Dataset d = SmallSynthetic(60, 30);
  RunContext context;
  ResourceBudget budget;
  budget.max_distance_computations = 200;
  context.set_budget(budget);
  WcopOptions options;
  options.distance.cascade = false;  // see budget test above
  options.run_context = &context;
  Result<AnonymizationResult> result = RunWcopCt(d, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted)
      << result.status();
}

TEST(RunContextTest, WcopCtCancellationFails) {
  const Dataset d = SmallSynthetic(40, 30);
  CancellationToken token;
  token.RequestCancellation();  // cancelled before the run even starts
  RunContext context;
  context.set_cancellation_token(token);
  WcopOptions options;
  options.run_context = &context;
  Result<AnonymizationResult> result = RunWcopCt(d, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled) << result.status();
}

TEST(RunContextTest, AgglomerativeDeadlineDegrades) {
  const Dataset d = SmallSynthetic(80, 30);
  RunContext context;
  context.set_deadline_after(std::chrono::milliseconds(1));
  WcopOptions options;
  // Cascade off: with the lower-bound cascade the whole run can finish
  // inside the 1 ms deadline, leaving nothing to degrade.
  options.distance.cascade = false;
  options.clustering_algo = WcopOptions::ClusteringAlgo::kAgglomerative;
  options.run_context = &context;
  options.allow_partial_results = true;
  Result<AnonymizationResult> result = RunWcopCt(d, options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->report.degraded);
  VerificationReport verification = VerifyAnonymity(d, *result);
  EXPECT_TRUE(verification.ok)
      << (verification.messages.empty() ? "" : verification.messages.front());
}

TEST(RunContextTest, W4mHonoursCancellation) {
  const Dataset d = SmallSynthetic(30, 30);
  CancellationToken token;
  token.RequestCancellation();
  RunContext context;
  context.set_cancellation_token(token);
  WcopOptions options;
  options.run_context = &context;
  Result<AnonymizationResult> result = RunW4m(d, 3, 200.0, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kCancelled) << result.status();
}

TEST(RunContextTest, StreamingDeadlineDegrades) {
  const Dataset d = SmallSynthetic(40, 60);
  RunContext context;
  context.set_deadline_after(std::chrono::milliseconds(1));
  StreamingOptions options;
  options.window_seconds = 200.0;
  options.wcop.run_context = &context;
  options.wcop.allow_partial_results = true;
  Result<StreamingResult> result = RunStreamingWcop(d, options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->degraded);
  EXPECT_FALSE(result->degraded_reason.empty());
}

TEST(RunContextTest, StreamingDeadlineWithoutPartialResultsFails) {
  const Dataset d = SmallSynthetic(40, 60);
  RunContext context;
  context.set_deadline_after(std::chrono::milliseconds(1));
  StreamingOptions options;
  options.window_seconds = 200.0;
  options.wcop.run_context = &context;
  Result<StreamingResult> result = RunStreamingWcop(d, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded)
      << result.status();
}

// Untripped contexts must not change results: same dataset, same seed, the
// run with a generous context matches the run without one.
TEST(RunContextTest, UntrippedContextIsTransparent) {
  const Dataset d = SmallSynthetic(40, 30);
  WcopOptions plain;
  Result<AnonymizationResult> baseline = RunWcopCt(d, plain);
  ASSERT_TRUE(baseline.ok()) << baseline.status();

  RunContext context;
  context.set_deadline_after(std::chrono::hours(2));
  ResourceBudget budget;
  budget.max_distance_computations = 100000000;
  context.set_budget(budget);
  WcopOptions bounded = plain;
  bounded.run_context = &context;
  Result<AnonymizationResult> guarded = RunWcopCt(d, bounded);
  ASSERT_TRUE(guarded.ok()) << guarded.status();

  EXPECT_FALSE(guarded->report.degraded);
  EXPECT_EQ(guarded->sanitized.size(), baseline->sanitized.size());
  EXPECT_EQ(guarded->trashed_ids.size(), baseline->trashed_ids.size());
  EXPECT_EQ(guarded->report.num_clusters, baseline->report.num_clusters);
  EXPECT_GT(context.distance_computations(), 0u);  // charging happened
}

}  // namespace
}  // namespace wcop
