#include "anon/wcop_b.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "anon/metrics.h"
#include "anon/wcop_ct.h"
#include "common/failpoint.h"
#include "common/stopwatch.h"

namespace wcop {

Result<WcopBResult> RunWcopB(const Dataset& dataset,
                             const WcopOptions& options,
                             const WcopBOptions& b_options) {
  WCOP_RETURN_IF_ERROR(dataset.Validate());
  if (dataset.empty()) {
    return Status::InvalidArgument("cannot anonymize an empty dataset");
  }
  if (b_options.step == 0) {
    return Status::InvalidArgument("step must be positive");
  }
  Stopwatch timer;
  const size_t n = dataset.size();
  // Resolve shared parameters once against the original dataset so every
  // round runs with identical clustering settings.
  const WcopOptions resolved = ResolveOptions(dataset, options);
  telemetry::Telemetry* tel = resolved.telemetry;
  WCOP_TRACE_SPAN(tel, "wcop_b/run");
  telemetry::Counter* rounds_counter = nullptr;
  telemetry::Counter* edited_counter = nullptr;
  if (tel != nullptr) {
    rounds_counter = tel->metrics().GetCounter("wcop_b.rounds");
    edited_counter = tel->metrics().GetCounter("wcop_b.edited_requirements");
  }

  // Lines 1-5: score and rank by demandingness (most demanding first).
  const std::vector<double> demand =
      DatasetDemandingness(dataset, b_options.w1, b_options.w2);
  std::vector<size_t> ranked(n);
  std::iota(ranked.begin(), ranked.end(), 0);
  std::stable_sort(ranked.begin(), ranked.end(), [&](size_t a, size_t b) {
    return demand[a] > demand[b];
  });
  const double max_demand = demand[ranked.front()];

  WcopBResult result;
  const size_t edit_limit =
      b_options.max_edit_size == 0 ? n : std::min(b_options.max_edit_size, n);
  size_t edit_size = b_options.step;
  bool have_round = false;

  while (true) {
    WCOP_FAILPOINT("wcop_b.round");
    // Cooperative yield point: one check per requirement-editing round. A
    // trip after at least one completed round keeps that round's output
    // (flagged degraded) when partial results are allowed.
    if (Status s = CheckRunContext(resolved.run_context); !s.ok()) {
      if (!resolved.allow_partial_results || !have_round) {
        return s;
      }
      result.anonymization.report.degraded = true;
      result.anonymization.report.degraded_reason = s.ToString();
      result.bound_satisfied = false;
      break;
    }
    WCOP_TRACE_SPAN(tel, "wcop_b/round");
    telemetry::CounterAdd(rounds_counter);
    edit_size = std::min(edit_size, edit_limit);
    telemetry::CounterAdd(edited_counter, edit_size);
    // Line 7: reset to the original requirements, then edit the top
    // edit_size trajectories towards the threshold trajectory (the first
    // non-edited one in the ranking).
    Dataset edited = dataset;
    const size_t threshold_rank = std::min(edit_size, n - 1);
    const Requirement threshold_req =
        dataset[ranked[threshold_rank]].requirement();
    const double threshold_demand = demand[ranked[threshold_rank]];

    std::vector<double> edit_costs;  // aligned with ranked[0..edit_size)
    edit_costs.reserve(edit_size);
    for (size_t r = 0; r < edit_size; ++r) {
      const size_t idx = ranked[r];
      double cost = EditCost(demand[idx], threshold_demand, max_demand);
      Requirement& req = edited[idx].mutable_requirement();
      if (b_options.edit_policy == WcopBOptions::EditPolicy::kProportional) {
        // Move only part of the way towards the threshold requirement; the
        // DE penalty shrinks by the same factor (less relaxation applied).
        const double s =
            std::clamp(b_options.proportional_strength, 0.0, 1.0);
        if (req.k > threshold_req.k) {
          req.k -= static_cast<int>(
              std::llround(s * static_cast<double>(req.k - threshold_req.k)));
        }
        if (req.delta < threshold_req.delta) {
          req.delta += s * (threshold_req.delta - req.delta);
        }
        cost *= s;
      } else {
        req.k = std::min(req.k, threshold_req.k);             // line 13
        req.delta = std::max(req.delta, threshold_req.delta);  // line 14
      }
      edit_costs.push_back(cost);
    }

    // Line 19: anonymization phase.
    WCOP_ASSIGN_OR_RETURN(AnonymizationResult round_result,
                          RunWcopCt(edited, resolved));

    // Line 20: Distortion = TTD + DE (Eq. 7), with Ω taken from this
    // round's anonymization.
    double de = 0.0;
    for (size_t r = 0; r < edit_size; ++r) {
      de += EditingDistortion(dataset[ranked[r]].size(),
                              round_result.report.omega, edit_costs[r]);
    }
    round_result.report.editing_distortion = de;
    round_result.report.total_distortion = round_result.report.ttd + de;

    WcopBRound round;
    round.edit_size = edit_size;
    round.ttd = round_result.report.ttd;
    round.editing_distortion = de;
    round.total_distortion = round_result.report.total_distortion;
    round.num_clusters = round_result.report.num_clusters;
    round.trashed = round_result.report.trashed_trajectories;
    result.rounds.push_back(round);

    const bool satisfied =
        round_result.report.total_distortion <= b_options.distort_max;
    const bool exhausted = edit_size >= edit_limit;
    const bool degraded = round_result.report.degraded;
    // Keep the most recent round's output (the accepted one when satisfied;
    // the fully-edited one otherwise, matching Algorithm 6's return).
    result.anonymization = std::move(round_result);
    result.final_edit_size = edit_size;
    have_round = true;
    if (degraded) {
      // The inner anonymization already ran out of deadline/budget; further
      // rounds could only repeat the trip. Keep the partial round.
      result.bound_satisfied = satisfied;
      break;
    }
    if (satisfied || exhausted) {
      result.bound_satisfied = satisfied;
      break;
    }
    edit_size += b_options.step;  // line 21
  }

  if (!have_round) {
    return Status::Internal("WCOP-B performed no rounds");
  }
  result.anonymization.report.runtime_seconds = timer.ElapsedSeconds();
  // Re-snapshot so wcop_b.* counters from every round reach the report.
  SnapshotTelemetry(resolved, &result.anonymization.report);
  return result;
}

}  // namespace wcop
