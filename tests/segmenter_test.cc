#include <gtest/gtest.h>

#include "segment/segmenter.h"
#include "test_util.h"

namespace wcop {
namespace {

using testing_util::MakeLineWithReq;

TEST(CutAtIndicesTest, BasicCuts) {
  const Trajectory t = MakeLineWithReq(1, 0, 0, 1, 0, 10, 3, 50.0);
  std::vector<Trajectory> out;
  int64_t next_id = 100;
  CutAtIndices(t, {4, 7}, /*min_points=*/2, &next_id, &out);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(out[0].size(), 4u);
  EXPECT_EQ(out[1].size(), 3u);
  EXPECT_EQ(out[2].size(), 3u);
  EXPECT_EQ(out[0].id(), 100);
  EXPECT_EQ(out[2].id(), 102);
  EXPECT_EQ(next_id, 103);
  for (const Trajectory& sub : out) {
    EXPECT_EQ(sub.parent_id(), 1);
    EXPECT_EQ(sub.requirement().k, 3);
  }
}

TEST(CutAtIndicesTest, NoCutsYieldsWholeTrajectory) {
  const Trajectory t = MakeLineWithReq(1, 0, 0, 1, 0, 10, 2, 50.0);
  std::vector<Trajectory> out;
  int64_t next_id = 0;
  CutAtIndices(t, {}, 2, &next_id, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].size(), 10u);
}

TEST(CutAtIndicesTest, ShortPiecesMergeForward) {
  const Trajectory t = MakeLineWithReq(1, 0, 0, 1, 0, 10, 2, 50.0);
  std::vector<Trajectory> out;
  int64_t next_id = 0;
  // Cut at 1 would leave a 1-point head: merged into the next piece.
  CutAtIndices(t, {1, 5}, /*min_points=*/3, &next_id, &out);
  size_t total = 0;
  for (const Trajectory& sub : out) {
    EXPECT_GE(sub.size(), 3u);
    total += sub.size();
  }
  EXPECT_EQ(total, 10u);
}

TEST(CutAtIndicesTest, TrailingShortPieceMergesBackward) {
  const Trajectory t = MakeLineWithReq(1, 0, 0, 1, 0, 10, 2, 50.0);
  std::vector<Trajectory> out;
  int64_t next_id = 0;
  // Cut at 9 would leave a 1-point tail.
  CutAtIndices(t, {9}, /*min_points=*/2, &next_id, &out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out[0].size(), 10u);
}

TEST(CutAtIndicesTest, IgnoresOutOfRangeAndDuplicateIndices) {
  const Trajectory t = MakeLineWithReq(1, 0, 0, 1, 0, 10, 2, 50.0);
  std::vector<Trajectory> out;
  int64_t next_id = 0;
  CutAtIndices(t, {0, 5, 5, 10, 99}, 2, &next_id, &out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(out[0].size(), 5u);
  EXPECT_EQ(out[1].size(), 5u);
}

TEST(FixedLengthSegmenterTest, CutsIntoEqualPieces) {
  Dataset d;
  d.Add(MakeLineWithReq(1, 0, 0, 1, 0, 100, 4, 80.0));
  FixedLengthSegmenter segmenter(25);
  Result<Dataset> segmented = segmenter.Segment(d);
  ASSERT_TRUE(segmented.ok());
  EXPECT_EQ(segmented->size(), 4u);
  for (const Trajectory& sub : segmented->trajectories()) {
    EXPECT_EQ(sub.size(), 25u);
    EXPECT_EQ(sub.requirement().k, 4);
    EXPECT_EQ(sub.parent_id(), 1);
  }
  EXPECT_EQ(segmented->TotalPoints(), 100u);
}

TEST(FixedLengthSegmenterTest, ClampsTinyPieceLength) {
  FixedLengthSegmenter segmenter(0);
  EXPECT_EQ(segmenter.piece_points(), 2u);
  EXPECT_EQ(segmenter.name(), "fixed-length");
}

TEST(FixedLengthSegmenterTest, ShortTrajectoryPassesThrough) {
  Dataset d;
  d.Add(MakeLineWithReq(1, 0, 0, 1, 0, 5, 2, 50.0));
  FixedLengthSegmenter segmenter(25);
  Result<Dataset> segmented = segmenter.Segment(d);
  ASSERT_TRUE(segmented.ok());
  EXPECT_EQ(segmented->size(), 1u);
  EXPECT_EQ((*segmented)[0].size(), 5u);
}

}  // namespace
}  // namespace wcop
