#ifndef WCOP_ANON_DISTANCE_CACHE_H_
#define WCOP_ANON_DISTANCE_CACHE_H_

#include <atomic>
#include <cstdint>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "anon/types.h"
#include "distance/edr_bounds.h"
#include "traj/dataset.h"

namespace wcop {

/// Mutex-striped memo of symmetric pairwise trajectory distances, shared by
/// the coordinating thread and the ParallelFor workers of the clustering hot
/// path (the distance function is deterministic, so recomputation across
/// radius-relaxation rounds is pure waste).
///
/// Keys are the existing symmetric pair key (min(i,j) * n + max(i,j)); each
/// of the kShards stripes holds its own map + mutex, `reserve`d up front
/// from the expected pair count so the hot loop never rehashes under a lock.
///
/// ## Filter-and-refine (DistanceConfig::cascade, EDR only)
///
/// When the cascade is active, a cutoff lookup runs cheap certified lower
/// bounds before the DP: the length bound (O(1)), the MBR/tolerance
/// separation certificate (O(1), and when it fires the distance is *known*
/// — max length, stored as an analytic exact), and the envelope bound
/// (O(n+m); zero matchable points again yields an analytic exact). Only
/// survivors reach the DP kernel, banded to the width the cutoff still
/// permits — a banded abandon stores `band+1` as a certified bound. Every
/// returned value is either the exact distance or a lower bound > cutoff,
/// so decisions made by comparing against the cutoff are identical to full
/// computation. `CheapProbe` exposes the bound cascade alone (never runs
/// the DP) for callers that order candidates cheapest-first.
///
/// Accounting is *exact* and thread-schedule-independent: every stored
/// DP-computed distance charges RunContext::ChargeDistance and the per-kind
/// `distance.calls.*` counter exactly once (when two threads race on the
/// same uncached pair, only the insertion winner charges; the loser counts
/// as the cache hit it would have been under serial execution); analytic
/// exacts (separation / empty-envelope certificates) charge neither the
/// budget nor `distance.calls.*` — no DP table was filled. Lookups
/// satisfied from the map count `distance.cache_hits`.
/// `distance.early_abandoned` totals every lookup the cascade resolved
/// short of the exact DP — cutoff-certified bound serves *and* analytic
/// certificates — with `distance.lb.*_pruned` as the per-rung breakdown
/// (all winner-only, so the totals are thread-schedule-independent).
///
/// Early-abandon entries: bound entries are flagged, never mistaken for an
/// exact distance. A later lookup whose cutoff the stored bound still
/// exceeds is served from the cache; any other access upgrades the entry
/// (bound entries racing an exact store lose; racing bounds keep the max —
/// both are certified).
class ShardedPairDistanceCache {
 public:
  static constexpr size_t kShards = 16;

  /// Which rung of the cascade produced a CheapProbe value.
  enum class BoundRung { kCached, kLength, kSeparation, kEnvelope };

  /// Result of CheapProbe: either an exact distance (cached or analytic) or
  /// the best certified lower bound the cheap rungs could prove.
  struct ProbeResult {
    double value = 0.0;
    bool exact = false;
    BoundRung rung = BoundRung::kLength;
  };

  /// `expected_pairs` sizes the stripes up front (pass the anticipated
  /// candidate-pool volume; it is a reservation, not a limit). The context
  /// and telemetry pointers may be null; counter handles are resolved once
  /// here, never in the per-lookup path.
  ShardedPairDistanceCache(const Dataset& dataset,
                           const DistanceConfig& config,
                           const RunContext* context,
                           telemetry::Telemetry* telemetry,
                           size_t expected_pairs);

  /// Exact distance between trajectories i and j. Safe to call concurrently;
  /// concurrent calls for the *same uncached* pair both compute but charge
  /// once (see class comment).
  double Get(size_t i, size_t j);

  /// Distance usable for comparisons against `cutoff`: the result is either
  /// the exact distance or a lower bound that exceeds `cutoff` (so
  /// `result <= cutoff` implies the result is exact, and `result > cutoff`
  /// implies the exact distance also exceeds the cutoff).
  double GetWithCutoff(size_t i, size_t j, double cutoff);

  /// Runs only the cheap rungs (cache, length, separation, envelope) —
  /// never the DP. When the result is not exact, `value` is a certified
  /// lower bound; a caller that discards the pair on it must report the
  /// decision through CountBoundPrune so the abandon accounting stays
  /// exact. Requires cascade_active().
  ProbeResult CheapProbe(size_t i, size_t j);

  /// Records that the caller discarded a pair using a (non-exact)
  /// CheapProbe value: counts `distance.early_abandoned` plus the rung's
  /// `distance.lb.*_pruned` counter (a kCached rung counts a cache hit —
  /// the stored bound made the decision, as in a cutoff lookup served from
  /// the cache).
  void CountBoundPrune(BoundRung rung);

  /// True when the filter-and-refine cascade is in effect (EDR distance,
  /// positive scale, DistanceConfig::cascade set).
  bool cascade_active() const { return cascade_; }

  /// Number of full (DP) distance computations stored so far.
  uint64_t computed() const {
    return computed_.load(std::memory_order_relaxed);
  }

  /// Number of lookups resolved short of the exact DP so far (bound
  /// serves plus analytic certificates; superset of analytic()).
  uint64_t abandoned() const {
    return abandoned_.load(std::memory_order_relaxed);
  }

  /// Number of analytically certified exact distances stored without a DP
  /// run (separation / empty-envelope certificates).
  uint64_t analytic() const {
    return analytic_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    double value = 0.0;
    bool is_bound = false;  ///< value is a certified lower bound, not exact
  };

  struct Shard {
    std::mutex mu;
    std::unordered_map<uint64_t, Entry> map;
  };

  uint64_t KeyOf(size_t i, size_t j) const {
    return i < j ? static_cast<uint64_t>(i) * n_ + j
                 : static_cast<uint64_t>(j) * n_ + i;
  }
  Shard& ShardOf(uint64_t key) {
    // SplitMix64-style mix so consecutive keys spread across stripes.
    uint64_t z = key + 0x9E3779B97F4A7C15ull;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return shards_[(z ^ (z >> 31)) % kShards];
  }

  /// Normalized-and-scaled distance for an op count — the exact expression
  /// the legacy path evaluates, so cascade and non-cascade values agree
  /// bit-for-bit.
  double ToScaled(uint32_t ops, uint32_t maxlen) const {
    return static_cast<double>(ops) / static_cast<double>(maxlen) *
           config_.edr_scale;
  }

  /// Smallest band width such that ToScaled(band + 1) > cutoff (capped at
  /// maxlen): exact results <= cutoff always fit inside the band, and a
  /// banded abandon is certified to exceed the cutoff.
  uint32_t BandFor(double cutoff, uint32_t maxlen) const;

  /// Stores an exact value computed by the DP, charging accounting only
  /// when this call wins the insertion/upgrade race. Returns the value to
  /// report (the already stored exact value when the race was lost).
  double StoreExact(Shard& shard, uint64_t key, double value);

  /// Stores an analytically certified exact value (no DP ran): the winner
  /// counts `rung_counter` instead of budget/`distance.calls.*`.
  double StoreAnalyticExact(Shard& shard, uint64_t key, double value,
                            telemetry::Counter* rung_counter);

  /// Stores a certified lower bound and counts the abandon under
  /// `rung_counter`. Racing exact entries win; racing bounds keep the max.
  double StoreBound(Shard& shard, uint64_t key, double value,
                    telemetry::Counter* rung_counter);

  const Dataset& dataset_;
  const DistanceConfig& config_;
  const RunContext* context_;
  telemetry::Counter* distance_calls_ = nullptr;
  telemetry::Counter* cache_hits_ = nullptr;
  telemetry::Counter* early_abandoned_ = nullptr;
  telemetry::Counter* lb_length_ = nullptr;
  telemetry::Counter* lb_separation_ = nullptr;
  telemetry::Counter* lb_envelope_ = nullptr;
  telemetry::Counter* lb_band_ = nullptr;
  uint64_t n_;
  bool cascade_ = false;
  std::vector<EdrBoundsProfile> profiles_;  ///< cascade only; indexed as dataset
  Shard shards_[kShards];
  std::atomic<uint64_t> computed_{0};
  std::atomic<uint64_t> abandoned_{0};
  std::atomic<uint64_t> analytic_{0};
};

}  // namespace wcop

#endif  // WCOP_ANON_DISTANCE_CACHE_H_
