file(REMOVE_RECURSE
  "CMakeFiles/fig5_ct_sweep.dir/fig5_ct_sweep.cpp.o"
  "CMakeFiles/fig5_ct_sweep.dir/fig5_ct_sweep.cpp.o.d"
  "fig5_ct_sweep"
  "fig5_ct_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_ct_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
