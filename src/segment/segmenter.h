#ifndef WCOP_SEGMENT_SEGMENTER_H_
#define WCOP_SEGMENT_SEGMENTER_H_

#include <string>
#include <vector>

#include "common/result.h"
#include "traj/dataset.h"

namespace wcop {

/// Interface of the segmentation phase of WCOP-SA (Algorithm 5, line 1):
/// partition a dataset of trajectories into a dataset of sub-trajectories.
///
/// Contract for implementations:
///  * every input point appears in exactly one output sub-trajectory
///    (boundary points may be duplicated at cut positions when
///    `duplicate_boundaries` is chosen by the implementation — the default
///    implementations here cut without duplication);
///  * each sub-trajectory inherits its parent's (k_i, delta_i) requirement
///    and object id, and records parent_id = parent trajectory id;
///  * output ids are fresh and unique across the output dataset.
class Segmenter {
 public:
  virtual ~Segmenter() = default;

  /// Human-readable name ("traclus", "convoy", ...), used in reports.
  virtual std::string name() const = 0;

  /// Splits every trajectory of `dataset` into sub-trajectories.
  virtual Result<Dataset> Segment(const Dataset& dataset) = 0;
};

/// Trivial baseline segmenter used by the segmentation ablation: cuts every
/// trajectory into fixed-length pieces of `piece_points` points, ignoring
/// the data entirely. Useful to show that *dataset-aware* segmentation
/// (TRACLUS / Convoys) is what buys distortion, not splitting per se.
class FixedLengthSegmenter : public Segmenter {
 public:
  explicit FixedLengthSegmenter(size_t piece_points)
      : piece_points_(piece_points < 2 ? 2 : piece_points) {}

  std::string name() const override { return "fixed-length"; }
  Result<Dataset> Segment(const Dataset& dataset) override;

  size_t piece_points() const { return piece_points_; }

 private:
  size_t piece_points_;
};

/// Helper shared by segmenter implementations: cuts `t` at the given sorted
/// point indices (each index becomes the first point of the next piece) and
/// appends the resulting sub-trajectories — with fresh ids drawn from
/// `next_id` — to `out`. Pieces with fewer than `min_points` points are
/// merged into their predecessor. Cut indices outside (0, size) are ignored.
void CutAtIndices(const Trajectory& t, const std::vector<size_t>& cut_indices,
                  size_t min_points, int64_t* next_id,
                  std::vector<Trajectory>* out);

}  // namespace wcop

#endif  // WCOP_SEGMENT_SEGMENTER_H_
