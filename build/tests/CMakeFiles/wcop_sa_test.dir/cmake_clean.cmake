file(REMOVE_RECURSE
  "CMakeFiles/wcop_sa_test.dir/wcop_sa_test.cc.o"
  "CMakeFiles/wcop_sa_test.dir/wcop_sa_test.cc.o.d"
  "wcop_sa_test"
  "wcop_sa_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wcop_sa_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
