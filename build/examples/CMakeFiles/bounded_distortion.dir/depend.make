# Empty dependencies file for bounded_distortion.
# This may be replaced when dependencies are built.
