file(REMOVE_RECURSE
  "CMakeFiles/visualize_anonymization.dir/visualize_anonymization.cpp.o"
  "CMakeFiles/visualize_anonymization.dir/visualize_anonymization.cpp.o.d"
  "visualize_anonymization"
  "visualize_anonymization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/visualize_anonymization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
