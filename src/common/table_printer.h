#ifndef WCOP_COMMON_TABLE_PRINTER_H_
#define WCOP_COMMON_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace wcop {

/// Renders aligned text tables and CSV, used by the benchmark harness to
/// print rows in the same layout as the paper's tables and figure series.
///
/// Usage:
///   TablePrinter t({"kmax", "distortion", "discernibility"});
///   t.AddRow({"5", "1.05e13", "2500"});
///   t.Print(std::cout);
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  /// Appends one row. Rows with fewer cells than the header are padded with
  /// empty cells; rows with more are truncated to the header width.
  void AddRow(std::vector<std::string> row);

  /// Number of data rows added so far.
  size_t num_rows() const { return rows_.size(); }

  /// Writes an aligned, pipe-separated table.
  void Print(std::ostream& os) const;

  /// Writes RFC-4180-ish CSV (cells containing commas/quotes are quoted).
  void PrintCsv(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` significant digits (benchmark output
/// helper; keeps tables compact without losing the comparison shape).
std::string FormatSignificant(double value, int digits = 4);

}  // namespace wcop

#endif  // WCOP_COMMON_TABLE_PRINTER_H_
