file(REMOVE_RECURSE
  "CMakeFiles/wcop_geo.dir/disk.cc.o"
  "CMakeFiles/wcop_geo.dir/disk.cc.o.d"
  "CMakeFiles/wcop_geo.dir/projection.cc.o"
  "CMakeFiles/wcop_geo.dir/projection.cc.o.d"
  "CMakeFiles/wcop_geo.dir/segment_geometry.cc.o"
  "CMakeFiles/wcop_geo.dir/segment_geometry.cc.o.d"
  "libwcop_geo.a"
  "libwcop_geo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wcop_geo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
