file(REMOVE_RECURSE
  "CMakeFiles/wcop_mod.dir/trajectory_store.cc.o"
  "CMakeFiles/wcop_mod.dir/trajectory_store.cc.o.d"
  "libwcop_mod.a"
  "libwcop_mod.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wcop_mod.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
