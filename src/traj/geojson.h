#ifndef WCOP_TRAJ_GEOJSON_H_
#define WCOP_TRAJ_GEOJSON_H_

#include <string>

#include "common/status.h"
#include "geo/projection.h"
#include "traj/dataset.h"

namespace wcop {

/// GeoJSON export for map-based inspection of original vs anonymized data
/// (the paper's Figures 3-4 are exactly such plots).
///
/// Each trajectory becomes one LineString feature with properties
/// `traj_id`, `object_id`, `parent_id`, `k`, `delta`, `start_time`,
/// `end_time`. Coordinates are converted from the library's local metric
/// frame back to WGS-84 (lon, lat) through the given projection — use the
/// same anchor the data was loaded/generated with.

/// Serializes the dataset as a GeoJSON FeatureCollection string.
std::string DatasetToGeoJson(const Dataset& dataset,
                             const LocalProjection& projection);

/// Writes DatasetToGeoJson() to `path` (overwrites).
Status WriteDatasetGeoJson(const Dataset& dataset,
                           const LocalProjection& projection,
                           const std::string& path);

}  // namespace wcop

#endif  // WCOP_TRAJ_GEOJSON_H_
