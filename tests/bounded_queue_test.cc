#include "server/bounded_queue.h"

#include <gtest/gtest.h>

#include <atomic>
#include <mutex>
#include <set>
#include <thread>
#include <vector>

namespace wcop {
namespace server {
namespace {

// ---------------------------------------------------------------------------
// Single-threaded semantics: the admission contract.
// ---------------------------------------------------------------------------

TEST(BoundedQueueTest, FifoOrder) {
  BoundedQueue<int> queue(4);
  EXPECT_TRUE(queue.TryPush(1).ok());
  EXPECT_TRUE(queue.TryPush(2).ok());
  EXPECT_TRUE(queue.TryPush(3).ok());
  EXPECT_EQ(queue.size(), 3u);
  EXPECT_EQ(queue.Pop(), 1);
  EXPECT_EQ(queue.Pop(), 2);
  EXPECT_EQ(queue.Pop(), 3);
  EXPECT_EQ(queue.size(), 0u);
}

TEST(BoundedQueueTest, CapacityRejectionIsExplicitBackpressure) {
  BoundedQueue<int> queue(2);
  EXPECT_TRUE(queue.TryPush(1).ok());
  EXPECT_TRUE(queue.TryPush(2).ok());
  const Status rejected = queue.TryPush(3);
  ASSERT_FALSE(rejected.ok());
  // The backpressure signal: a distinct, retryable code — never a silent
  // drop, never a block.
  EXPECT_EQ(rejected.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(queue.size(), 2u);
  // Draining one slot re-opens admission.
  EXPECT_EQ(queue.Pop(), 1);
  EXPECT_TRUE(queue.TryPush(3).ok());
}

TEST(BoundedQueueTest, ZeroCapacityClampsToOne) {
  BoundedQueue<int> queue(0);
  EXPECT_EQ(queue.capacity(), 1u);
  EXPECT_TRUE(queue.TryPush(7).ok());
  EXPECT_EQ(queue.TryPush(8).code(), StatusCode::kResourceExhausted);
}

TEST(BoundedQueueTest, ClosedQueueRejectsPushes) {
  BoundedQueue<int> queue(4);
  queue.Close(/*drain=*/true);
  EXPECT_TRUE(queue.closed());
  EXPECT_EQ(queue.TryPush(1).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(queue.ForcePush(1).code(), StatusCode::kFailedPrecondition);
}

TEST(BoundedQueueTest, ForcePushBypassesCapacity) {
  // The recovery path: ledger-recovered jobs were admitted in a previous
  // life and must never be bounced by the live capacity check.
  BoundedQueue<int> queue(1);
  EXPECT_TRUE(queue.TryPush(1).ok());
  EXPECT_EQ(queue.TryPush(2).code(), StatusCode::kResourceExhausted);
  EXPECT_TRUE(queue.ForcePush(2).ok());
  EXPECT_TRUE(queue.ForcePush(3).ok());
  EXPECT_EQ(queue.size(), 3u);
  EXPECT_EQ(queue.Pop(), 1);
  EXPECT_EQ(queue.Pop(), 2);
  EXPECT_EQ(queue.Pop(), 3);
}

TEST(BoundedQueueTest, DrainCloseHandsOutRemainingItemsInOrder) {
  BoundedQueue<int> queue(4);
  EXPECT_TRUE(queue.TryPush(1).ok());
  EXPECT_TRUE(queue.TryPush(2).ok());
  queue.Close(/*drain=*/true);
  EXPECT_EQ(queue.Pop(), 1);
  EXPECT_EQ(queue.Pop(), 2);
  EXPECT_EQ(queue.Pop(), std::nullopt);
  EXPECT_EQ(queue.Pop(), std::nullopt);  // stays terminal
}

TEST(BoundedQueueTest, ImmediateCloseAbandonsQueuedItems) {
  BoundedQueue<int> queue(4);
  EXPECT_TRUE(queue.TryPush(1).ok());
  EXPECT_TRUE(queue.TryPush(2).ok());
  queue.Close(/*drain=*/false);
  // Items are abandoned in place (still durable in the ledger, service-side)
  // and consumers wake with "no more work".
  EXPECT_EQ(queue.Pop(), std::nullopt);
  EXPECT_EQ(queue.TryPop(), std::nullopt);
  EXPECT_EQ(queue.size(), 2u);
}

TEST(BoundedQueueTest, ImmediateCloseWinsOverDrain) {
  BoundedQueue<int> queue(4);
  EXPECT_TRUE(queue.TryPush(1).ok());
  queue.Close(/*drain=*/true);
  queue.Close(/*drain=*/false);  // escalation: drain -> immediate
  EXPECT_EQ(queue.Pop(), std::nullopt);
  // And the reverse order must not resurrect draining.
  queue.Close(/*drain=*/true);
  EXPECT_EQ(queue.Pop(), std::nullopt);
}

TEST(BoundedQueueTest, TryPopReturnsItemsWithoutBlocking) {
  BoundedQueue<int> queue(2);
  EXPECT_EQ(queue.TryPop(), std::nullopt);
  EXPECT_TRUE(queue.TryPush(5).ok());
  EXPECT_EQ(queue.TryPop(), 5);
  EXPECT_EQ(queue.TryPop(), std::nullopt);
}

// ---------------------------------------------------------------------------
// Concurrency: the shapes the service actually runs (stress these under
// TSan; the CI tsan job builds this binary).
// ---------------------------------------------------------------------------

TEST(BoundedQueueTest, PopBlocksUntilPush) {
  BoundedQueue<int> queue(1);
  std::atomic<bool> popped{false};
  std::thread consumer([&] {
    EXPECT_EQ(queue.Pop(), 42);
    popped.store(true);
  });
  // Not a timing assertion, just a handoff: the consumer parks until the
  // producer arrives.
  EXPECT_TRUE(queue.TryPush(42).ok());
  consumer.join();
  EXPECT_TRUE(popped.load());
}

TEST(BoundedQueueTest, ConcurrentProducersNeverOversubscribe) {
  // Many producers hammer a small queue while consumers drain it. Every
  // accepted item must come out exactly once; rejections must account for
  // the rest; the queue must never exceed capacity.
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 200;
  constexpr size_t kCapacity = 3;
  BoundedQueue<int> queue(kCapacity);

  std::atomic<int> accepted{0};
  std::atomic<int> rejected{0};
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        const int item = p * kPerProducer + i;
        const Status s = queue.TryPush(item);
        if (s.ok()) {
          accepted.fetch_add(1);
        } else {
          ASSERT_EQ(s.code(), StatusCode::kResourceExhausted);
          rejected.fetch_add(1);
        }
        ASSERT_LE(queue.size(), kCapacity);
      }
    });
  }

  std::mutex popped_mu;
  std::set<int> popped;
  std::vector<std::thread> consumers;
  for (int c = 0; c < 2; ++c) {
    consumers.emplace_back([&] {
      while (std::optional<int> item = queue.Pop()) {
        std::lock_guard<std::mutex> lock(popped_mu);
        const bool inserted = popped.insert(*item).second;
        ASSERT_TRUE(inserted) << "item " << *item << " popped twice";
      }
    });
  }

  for (std::thread& t : producers) {
    t.join();
  }
  queue.Close(/*drain=*/true);
  for (std::thread& t : consumers) {
    t.join();
  }

  EXPECT_EQ(accepted.load() + rejected.load(), kProducers * kPerProducer);
  EXPECT_EQ(popped.size(), static_cast<size_t>(accepted.load()));
  EXPECT_GT(rejected.load(), 0) << "capacity 3 under 4 producers must "
                                   "exercise the rejection path";
}

TEST(BoundedQueueTest, DrainShutdownDeliversEverythingAcceptedInFifoOrder) {
  // Single consumer so FIFO is observable end to end across the shutdown.
  BoundedQueue<int> queue(64);
  std::vector<int> received;
  std::thread consumer([&] {
    while (std::optional<int> item = queue.Pop()) {
      received.push_back(*item);
    }
  });
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(queue.TryPush(i).ok());
  }
  queue.Close(/*drain=*/true);
  consumer.join();
  ASSERT_EQ(received.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(received[static_cast<size_t>(i)], i);
  }
}

TEST(BoundedQueueTest, ImmediateShutdownWakesBlockedConsumers) {
  BoundedQueue<int> queue(1);
  std::vector<std::thread> consumers;
  std::atomic<int> woke{0};
  for (int c = 0; c < 3; ++c) {
    consumers.emplace_back([&] {
      EXPECT_EQ(queue.Pop(), std::nullopt);
      woke.fetch_add(1);
    });
  }
  queue.Close(/*drain=*/false);
  for (std::thread& t : consumers) {
    t.join();
  }
  EXPECT_EQ(woke.load(), 3);
}

}  // namespace
}  // namespace server
}  // namespace wcop
