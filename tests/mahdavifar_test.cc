#include <gtest/gtest.h>

#include <algorithm>

#include "anon/mahdavifar.h"
#include "anon/wcop_ct.h"
#include "test_util.h"

namespace wcop {
namespace {

using testing_util::SmallSynthetic;

TEST(MahdavifarTest, EveryClusterSatisfiesItsMembersK) {
  const Dataset d = SmallSynthetic(40, 50, /*k_max=*/5);
  Result<AnonymizationResult> r = RunMahdavifar(d);
  ASSERT_TRUE(r.ok()) << r.status();
  for (const AnonymityCluster& c : r->clusters) {
    EXPECT_GE(c.members.size(), static_cast<size_t>(c.k));
    for (size_t m : c.members) {
      EXPECT_GE(c.members.size(),
                static_cast<size_t>(d[m].requirement().k));
    }
  }
}

TEST(MahdavifarTest, MembersCollapseOntoOneRepresentative) {
  const Dataset d = SmallSynthetic(30, 40);
  Result<AnonymizationResult> r = RunMahdavifar(d);
  ASSERT_TRUE(r.ok());
  for (const AnonymityCluster& c : r->clusters) {
    // All published members of a cluster share identical point sequences
    // (full generalization): perfect indistinguishability within the set.
    const Trajectory* first = nullptr;
    for (size_t m : c.members) {
      const Trajectory* published = r->sanitized.FindById(d[m].id());
      ASSERT_NE(published, nullptr);
      if (first == nullptr) {
        first = published;
        continue;
      }
      ASSERT_EQ(published->size(), first->size());
      for (size_t i = 0; i < first->size(); ++i) {
        EXPECT_EQ((*published)[i], (*first)[i]);
      }
    }
  }
}

TEST(MahdavifarTest, CoverageAccounting) {
  const Dataset d = SmallSynthetic(30, 40);
  Result<AnonymizationResult> r = RunMahdavifar(d);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->sanitized.size() + r->trashed_ids.size(), d.size());
  EXPECT_EQ(r->report.input_trajectories, d.size());
  EXPECT_LE(r->report.trashed_trajectories, d.size() / 10);
}

TEST(MahdavifarTest, NoQualityBoundMeansUnboundedDisplacement) {
  // The paper's critique: without a personal delta, a member's displacement
  // is whatever the cluster dictates. Verify the algorithm ignores delta:
  // set absurdly strict deltas and confirm it still publishes (WCOP would
  // tighten clusters or trash).
  Dataset d = SmallSynthetic(30, 40, /*k_max=*/4);
  for (Trajectory& t : d.mutable_trajectories()) {
    Requirement req = t.requirement();
    req.delta = 0.001;  // WCOP would have to honour this; Mahdavifar can't
    t.set_requirement(req);
  }
  Result<AnonymizationResult> r = RunMahdavifar(d);
  ASSERT_TRUE(r.ok());
  // Achieved diameters exceed the requested delta by orders of magnitude.
  bool any_violates = false;
  for (const AnonymityCluster& c : r->clusters) {
    if (c.members.size() > 1 && c.delta > 0.001) {
      any_violates = true;
    }
  }
  EXPECT_TRUE(any_violates);
}

TEST(MahdavifarTest, DeterministicForSeed) {
  const Dataset d = SmallSynthetic(25, 40);
  MahdavifarOptions options;
  options.seed = 77;
  const auto a = RunMahdavifar(d, options);
  const auto b = RunMahdavifar(d, options);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->report.total_distortion, b->report.total_distortion);
  EXPECT_EQ(a->report.num_clusters, b->report.num_clusters);
}

TEST(MahdavifarTest, RejectsEmptyDataset) {
  EXPECT_FALSE(RunMahdavifar(Dataset()).ok());
}

TEST(MahdavifarTest, TightThresholdRelaxesLikeWcop) {
  const Dataset d = SmallSynthetic(30, 40);
  MahdavifarOptions options;
  options.distance_threshold_fraction = 0.02;  // initially admits few
  Result<AnonymizationResult> r = RunMahdavifar(d, options);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_GT(r->report.clustering_rounds, 1u);
}

}  // namespace
}  // namespace wcop
