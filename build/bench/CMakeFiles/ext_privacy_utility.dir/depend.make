# Empty dependencies file for ext_privacy_utility.
# This may be replaced when dependencies are built.
