#include "anon/attack.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

#include "anon/uncertainty.h"
#include "common/rng.h"

namespace wcop {

Result<AttackResult> SimulateLinkageAttack(const Dataset& original,
                                           const Dataset& published,
                                           const AttackOptions& options) {
  if (original.empty() || published.empty()) {
    return Status::InvalidArgument("attack needs non-empty datasets");
  }
  if (options.observations_per_victim == 0) {
    return Status::InvalidArgument("need at least one observation");
  }
  Rng rng(options.seed);

  // Choose victims: all original trajectories, or a random subset.
  std::vector<size_t> victims(original.size());
  std::iota(victims.begin(), victims.end(), 0);
  if (options.num_victims > 0 && options.num_victims < victims.size()) {
    std::shuffle(victims.begin(), victims.end(), rng.engine());
    victims.resize(options.num_victims);
  }

  AttackResult result;
  double rank_sum = 0.0;
  double expected_hits = 0.0;
  double reciprocal_sum = 0.0;
  for (size_t victim : victims) {
    const Trajectory& truth = original[victim];
    if (published.FindById(truth.id()) == nullptr) {
      continue;  // suppressed: nothing to link
    }
    // Observation source: the exact recorded fixes, or — for the
    // uncertainty-aware adversary — a possible motion curve of the victim.
    Trajectory source = truth;
    if (options.pmc_delta > 0.0) {
      source = SamplePossibleMotionCurve(truth, options.pmc_delta, &rng);
    }
    std::vector<Point> observations;
    observations.reserve(options.observations_per_victim);
    for (size_t o = 0; o < options.observations_per_victim; ++o) {
      Point p = source[rng.UniformIndex(source.size())];
      if (options.observation_noise > 0.0) {
        p.x += rng.Gaussian(0.0, options.observation_noise);
        p.y += rng.Gaussian(0.0, options.observation_noise);
      }
      observations.push_back(p);
    }

    // Score every published trajectory: mean spatial distance to the
    // observations at the observed times.
    std::vector<std::pair<double, int64_t>> scores;
    scores.reserve(published.size());
    for (const Trajectory& candidate : published.trajectories()) {
      double total = 0.0;
      for (const Point& obs : observations) {
        total += SpatialDistance(candidate.PositionAt(obs.t), obs);
      }
      scores.emplace_back(total, candidate.id());
    }
    std::sort(scores.begin(), scores.end());

    // Rank of the true id under uniform tie-breaking: within a block of
    // equally-scored candidates the adversary guesses uniformly, so the
    // expected rank is the block's midpoint and the top-1 success
    // probability is 1/block_size when the block starts at the top
    // (exactly-collapsed anonymity sets thus score 1/k, as they should).
    double rank = static_cast<double>(scores.size());
    double top1_probability = 0.0;
    for (size_t i = 0; i < scores.size(); ++i) {
      if (scores[i].second != truth.id()) {
        continue;
      }
      size_t first_tied = i;
      while (first_tied > 0 &&
             scores[first_tied - 1].first == scores[i].first) {
        --first_tied;
      }
      size_t last_tied = i;
      while (last_tied + 1 < scores.size() &&
             scores[last_tied + 1].first == scores[i].first) {
        ++last_tied;
      }
      const double block = static_cast<double>(last_tied - first_tied + 1);
      rank = static_cast<double>(first_tied) + (block + 1.0) / 2.0;
      top1_probability = first_tied == 0 ? 1.0 / block : 0.0;
      break;
    }
    ++result.victims_attacked;
    expected_hits += top1_probability;
    rank_sum += rank;
    reciprocal_sum += 1.0 / rank;
  }

  if (result.victims_attacked > 0) {
    const double n = static_cast<double>(result.victims_attacked);
    result.top1_hits = static_cast<size_t>(std::llround(expected_hits));
    result.top1_success_rate = expected_hits / n;
    result.mean_true_rank = rank_sum / n;
    result.mean_reciprocal_rank = reciprocal_sum / n;
  }
  return result;
}

Result<TrackingAttackResult> SimulateTrackingAttack(
    const Dataset& original, const Dataset& published,
    const TrackingAttackOptions& options) {
  if (original.empty() || published.empty()) {
    return Status::InvalidArgument("attack needs non-empty datasets");
  }
  if (options.step_seconds <= 0.0) {
    return Status::InvalidArgument("step_seconds must be positive");
  }
  Rng rng(options.seed);

  std::vector<size_t> victims(original.size());
  std::iota(victims.begin(), victims.end(), 0);
  if (options.num_victims > 0 && options.num_victims < victims.size()) {
    std::shuffle(victims.begin(), victims.end(), rng.engine());
    victims.resize(options.num_victims);
  }

  TrackingAttackResult result;
  double switch_sum = 0.0;
  double on_target_sum = 0.0;
  for (size_t victim : victims) {
    const Trajectory& truth = original[victim];
    if (published.FindById(truth.id()) == nullptr) {
      continue;
    }
    // The tracker starts at the victim's true initial position and walks
    // the published data forward: it extrapolates the target's motion
    // (constant velocity over the last step) and re-acquires the published
    // trajectory closest to the predicted position — the standard
    // multi-target tracking model the path-confusion literature assumes.
    Point tracked = truth.front();
    double vel_x = 0.0, vel_y = 0.0;
    int64_t current_id = -1;
    size_t switches = 0;
    size_t steps = 0;
    size_t steps_on_target = 0;
    bool first_acquisition = true;
    for (double t = truth.StartTime(); t <= truth.EndTime();
         t += options.step_seconds) {
      const double predicted_x =
          tracked.x + vel_x * options.step_seconds;
      const double predicted_y =
          tracked.y + vel_y * options.step_seconds;
      const Trajectory* best = nullptr;
      double best_d = std::numeric_limits<double>::infinity();
      for (const Trajectory& candidate : published.trajectories()) {
        if (t < candidate.StartTime() - options.step_seconds ||
            t > candidate.EndTime() + options.step_seconds) {
          continue;
        }
        const Point pos = candidate.PositionAt(t);
        const double dx = pos.x - predicted_x;
        const double dy = pos.y - predicted_y;
        const double d = std::sqrt(dx * dx + dy * dy);
        if (d < best_d) {
          best_d = d;
          best = &candidate;
        }
      }
      if (best == nullptr) {
        continue;  // nobody alive near this time: tracker idles
      }
      if (best->id() != current_id) {
        if (!first_acquisition) {
          ++switches;
        }
        current_id = best->id();
        first_acquisition = false;
      }
      const Point next = best->PositionAt(t);
      if (!first_acquisition && options.step_seconds > 0.0) {
        vel_x = (next.x - tracked.x) / options.step_seconds;
        vel_y = (next.y - tracked.y) / options.step_seconds;
      }
      tracked = next;
      ++steps;
      if (current_id == truth.id()) {
        ++steps_on_target;
      }
    }
    ++result.victims_tracked;
    if (current_id == truth.id()) {
      ++result.end_on_victim;
    }
    switch_sum += static_cast<double>(switches);
    on_target_sum += steps == 0 ? 0.0
                                : static_cast<double>(steps_on_target) /
                                      static_cast<double>(steps);
  }
  if (result.victims_tracked > 0) {
    const double n = static_cast<double>(result.victims_tracked);
    result.tracking_success_rate =
        static_cast<double>(result.end_on_victim) / n;
    result.mean_path_switches = switch_sum / n;
    result.mean_time_on_target = on_target_sum / n;
  }
  return result;
}

}  // namespace wcop
