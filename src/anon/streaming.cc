#include "anon/streaming.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "anon/checkpoint.h"
#include "anon/wcop_ct.h"
#include "common/failpoint.h"
#include "common/snapshot.h"

namespace wcop {

namespace {

/// Builds the durable state for a checkpoint: everything accumulated over
/// `windows_done` completed windows. `result.degraded` is deliberately NOT
/// copied from the in-flight result here — callers pass the durable
/// degradation state explicitly, because a stream-level context trip is a
/// property of this process run (a resumed run with a fresh context is not
/// degraded), while window-level degradation is baked into published
/// fragments and must persist.
StreamingCheckpoint BuildCheckpoint(uint64_t fingerprint, size_t windows_done,
                                    int64_t next_fragment_id,
                                    const StreamingResult& result,
                                    const std::vector<Trajectory>& published,
                                    bool durable_degraded,
                                    const std::string& durable_reason,
                                    telemetry::Telemetry* tel) {
  StreamingCheckpoint checkpoint;
  checkpoint.fingerprint = fingerprint;
  checkpoint.windows_done = windows_done;
  checkpoint.next_fragment_id = next_fragment_id;
  checkpoint.suppressed_fragments = result.suppressed_fragments;
  checkpoint.total_clusters = result.total_clusters;
  checkpoint.total_ttd = result.total_ttd;
  checkpoint.degraded = durable_degraded;
  checkpoint.degraded_reason = durable_reason;
  checkpoint.windows = result.windows;
  checkpoint.published = published;
  if (tel != nullptr) {
    checkpoint.counters = tel->metrics().Snapshot().counters;
  }
  return checkpoint;
}

Status SaveStreamingCheckpoint(const StreamingOptions& options,
                               const StreamingCheckpoint& checkpoint) {
  WCOP_RETURN_IF_ERROR(WriteSnapshotRotating(
      options.checkpoint_path, EncodeStreamingCheckpoint(checkpoint),
      kStreamingCheckpointVersion, options.snapshot_retry));
  WCOP_FAILPOINT("streaming.checkpoint_saved");
  return Status::OK();
}

}  // namespace

Result<WindowPlan> PlanWindows(double t_min, double t_max,
                               double window_seconds) {
  if (!(window_seconds > 0.0) || !std::isfinite(window_seconds)) {
    return Status::InvalidArgument("window_seconds must be positive");
  }
  if (!std::isfinite(t_min) || !std::isfinite(t_max) || t_min > t_max) {
    return Status::InvalidArgument("window plan over an empty time range");
  }
  WindowPlan plan;
  plan.t_min = t_min;
  plan.window_seconds = window_seconds;
  // Count windows with the same arithmetic the iteration uses so the grid
  // is bit-identical to the historical `t_min + i*W <= t_max` loop.
  size_t n = 0;
  while (plan.WindowStart(n) <= t_max) {
    if (plan.WindowStart(n + 1) <= plan.WindowStart(n)) {
      return Status::InvalidArgument(
          "window_seconds too small for the stream's time magnitude "
          "(the window grid cannot advance in double precision)");
    }
    ++n;
  }
  plan.num_windows = n;
  return plan;
}

std::vector<Point> SlicePointsInWindow(const Trajectory& t,
                                       double window_start,
                                       double window_end) {
  std::vector<Point> points;
  for (const Point& p : t.points()) {
    if (p.t >= window_start && p.t < window_end) {
      points.push_back(p);
    }
  }
  return points;
}

Trajectory MakeWindowFragment(int64_t fragment_id, const Trajectory& parent,
                              std::vector<Point> points) {
  Trajectory fragment(fragment_id, std::move(points), parent.requirement());
  fragment.set_object_id(parent.object_id());
  fragment.set_parent_id(parent.id());
  return fragment;
}

Result<StreamingResult> RunStreamingWcop(const Dataset& dataset,
                                         const StreamingOptions& options) {
  WCOP_RETURN_IF_ERROR(dataset.Validate());
  if (dataset.empty()) {
    return Status::InvalidArgument("cannot anonymize an empty dataset");
  }

  double t_min = std::numeric_limits<double>::infinity();
  double t_max = -std::numeric_limits<double>::infinity();
  for (const Trajectory& t : dataset.trajectories()) {
    t_min = std::min(t_min, t.StartTime());
    t_max = std::max(t_max, t.EndTime());
  }
  WCOP_ASSIGN_OR_RETURN(const WindowPlan plan,
                        PlanWindows(t_min, t_max, options.window_seconds));

  telemetry::Telemetry* tel = options.wcop.telemetry;
  WCOP_TRACE_SPAN(tel, "streaming/run");
  telemetry::Counter* windows_counter = nullptr;
  telemetry::Counter* windows_skipped = nullptr;
  telemetry::Counter* fragments_counter = nullptr;
  if (tel != nullptr) {
    windows_counter = tel->metrics().GetCounter("streaming.windows");
    windows_skipped = tel->metrics().GetCounter("streaming.windows_skipped");
    fragments_counter = tel->metrics().GetCounter("streaming.fragments");
  }

  const bool checkpointing = !options.checkpoint_path.empty();
  const uint64_t fingerprint =
      checkpointing ? StreamingConfigFingerprint(dataset, options) : 0;

  StreamingResult result;
  std::vector<Trajectory> published;
  int64_t next_id = 0;
  size_t first_window = 0;
  // Window-level degradation baked into already-published fragments; kept
  // separate from stream-level (process-local) degradation so checkpoints
  // persist only the former.
  bool durable_degraded = false;
  std::string durable_reason;

  if (checkpointing) {
    Result<Snapshot> snapshot =
        ReadSnapshotWithFallback(options.checkpoint_path,
                                 options.snapshot_retry);
    if (snapshot.ok()) {
      Result<StreamingCheckpoint> decoded =
          DecodeStreamingCheckpoint(snapshot->payload);
      if (!decoded.ok() && decoded.status().code() != StatusCode::kDataLoss) {
        return decoded.status();
      }
      if (!decoded.ok()) {
        // Validated envelope but undecodable payload: treat like a corrupt
        // file — recompute from scratch rather than trusting it.
        if (tel != nullptr) {
          tel->metrics().GetCounter("checkpoint.corrupt_discarded")->Add();
        }
      } else {
        if (decoded->fingerprint != fingerprint) {
          return Status::FailedPrecondition(
              "checkpoint at " + options.checkpoint_path +
              " was written for a different dataset or options "
              "(fingerprint mismatch)");
        }
        first_window = decoded->windows_done;
        next_id = decoded->next_fragment_id;
        result.suppressed_fragments = decoded->suppressed_fragments;
        result.total_clusters = decoded->total_clusters;
        result.total_ttd = decoded->total_ttd;
        result.windows = std::move(decoded->windows);
        published = std::move(decoded->published);
        durable_degraded = decoded->degraded;
        durable_reason = decoded->degraded_reason;
        result.degraded = durable_degraded;
        result.degraded_reason = durable_reason;
        result.resumed = true;
        result.resumed_windows = first_window;
        if (tel != nullptr) {
          // Splice the prior run's counters back in so end-of-stream
          // metrics cover the whole logical run, not just this process.
          for (const auto& [name, value] : decoded->counters) {
            tel->metrics().GetCounter(name)->Add(value);
          }
          tel->metrics().GetCounter("checkpoint.resumes")->Add();
        }
      }
    } else if (snapshot.status().code() == StatusCode::kDataLoss) {
      // Both current and previous snapshots are torn/corrupt: the only
      // safe fallback left is a full recompute.
      if (tel != nullptr) {
        tel->metrics().GetCounter("checkpoint.corrupt_discarded")->Add();
      }
    } else if (snapshot.status().code() != StatusCode::kNotFound) {
      return snapshot.status();
    }
  }

  const size_t min_fragment_points =
      std::max<size_t>(options.min_fragment_points, 1);
  for (size_t wi = first_window; wi < plan.num_windows; ++wi) {
    WCOP_FAILPOINT("streaming.window");
    WCOP_TRACE_SPAN(tel, "streaming/window");
    const double window_start = plan.WindowStart(wi);
    // Cooperative yield point: one check per publication window. With
    // partial results allowed, a trip stops the stream — the windows
    // published so far each carry the full per-window guarantee.
    if (Status s = CheckRunContext(options.wcop.run_context); !s.ok()) {
      if (checkpointing) {
        // Persist the completed windows before surfacing the trip — whether
        // or not partial results are allowed. A signal-driven shutdown
        // (SIGINT/SIGTERM via the cancellation token) flushes this final
        // checkpoint so a restart resumes the finished windows at full
        // quality even when the cadence had not come around yet.
        Status flush = SaveStreamingCheckpoint(
            options, BuildCheckpoint(fingerprint, wi, next_id, result,
                                     published, durable_degraded,
                                     durable_reason, tel));
        if (!flush.ok() && options.wcop.allow_partial_results) {
          return flush;
        }
        // With partial results disallowed the trip status wins; the flush
        // was best-effort durability on the way out.
      }
      if (!options.wcop.allow_partial_results) {
        return s;
      }
      result.degraded = true;
      result.degraded_reason = s.ToString();
      break;
    }
    const double window_end = plan.WindowEnd(wi);
    // Collect each trajectory's fragment inside [window_start, window_end).
    std::vector<Trajectory> fragments;
    for (const Trajectory& t : dataset.trajectories()) {
      if (t.EndTime() < window_start || t.StartTime() >= window_end) {
        continue;
      }
      std::vector<Point> points =
          SlicePointsInWindow(t, window_start, window_end);
      if (points.size() < min_fragment_points) {
        result.suppressed_fragments += points.empty() ? 0 : 1;
        continue;
      }
      fragments.push_back(MakeWindowFragment(next_id++, t, std::move(points)));
    }

    StreamingWindowSummary summary;
    summary.window_start = window_start;
    summary.input_fragments = fragments.size();
    if (!fragments.empty()) {
      telemetry::CounterAdd(windows_counter);
      telemetry::CounterAdd(fragments_counter, fragments.size());
      Result<AnonymizationResult> window_result =
          RunWcopCt(Dataset(std::move(fragments)), options.wcop);
      if (!window_result.ok()) {
        // Unsatisfiable window (e.g. too few co-travellers for someone's
        // k): the provider suppresses the whole window rather than leaking
        // it.
        telemetry::CounterAdd(windows_skipped);
        summary.skipped = true;
        result.suppressed_fragments += summary.input_fragments;
        result.windows.push_back(summary);
      } else {
        if (window_result->report.degraded) {
          // Partial fragments are published durable state: persists
          // through checkpoints, unlike a stream-level trip.
          durable_degraded = true;
          if (durable_reason.empty()) {
            durable_reason = window_result->report.degraded_reason;
          }
          if (!result.degraded) {
            result.degraded = true;
            result.degraded_reason = window_result->report.degraded_reason;
          }
        }
        summary.published_fragments = window_result->sanitized.size();
        summary.clusters = window_result->report.num_clusters;
        summary.ttd = window_result->report.ttd;
        result.suppressed_fragments += window_result->trashed_ids.size();
        result.total_clusters += window_result->report.num_clusters;
        result.total_ttd += window_result->report.ttd;
        for (const Trajectory& t : window_result->sanitized.trajectories()) {
          published.push_back(t);
        }
        result.windows.push_back(summary);
      }
    }
    if (checkpointing && (wi + 1 - first_window) %
                                 std::max<size_t>(
                                     options.checkpoint_every_windows, 1) ==
                             0) {
      WCOP_RETURN_IF_ERROR(SaveStreamingCheckpoint(
          options, BuildCheckpoint(fingerprint, wi + 1, next_id, result,
                                   published, durable_degraded,
                                   durable_reason, tel)));
    }
  }
  result.sanitized = Dataset(std::move(published));
  if (tel != nullptr) {
    AnonymizationReport scratch;
    SnapshotTelemetry(options.wcop, &scratch);
    result.metrics = std::move(scratch.metrics);
  }
  return result;
}

}  // namespace wcop
