#include "server/client.h"

#include <thread>

#include "server/endpoint.h"

namespace wcop {
namespace server {

Result<HttpResponse> ServiceClient::Call(const std::string& method,
                                         const std::string& path,
                                         const std::string& body) const {
  WCOP_ASSIGN_OR_RETURN(
      HttpResponse response,
      UnixHttpCall(socket_path_, method, path, body, timeout_ms_));
  WCOP_RETURN_IF_ERROR(StatusForHttpResponse(response));
  return response;
}

Result<JobRecord> ServiceClient::Submit(const JobSpec& spec) const {
  WCOP_ASSIGN_OR_RETURN(HttpResponse response,
                        Call("POST", "/jobs", EncodeJobSpec(spec)));
  return DecodeJobRecord(response.body);
}

Result<JobRecord> ServiceClient::GetJob(int64_t id) const {
  WCOP_ASSIGN_OR_RETURN(
      HttpResponse response,
      Call("GET", "/jobs/" + std::to_string(id), std::string()));
  return DecodeJobRecord(response.body);
}

Result<std::vector<JobRecord>> ServiceClient::ListJobs() const {
  WCOP_ASSIGN_OR_RETURN(HttpResponse response,
                        Call("GET", "/jobs", std::string()));
  std::vector<JobRecord> jobs;
  // Records are separated by one blank line; each record is a block of
  // "key value" lines in the EncodeJobRecord wire form.
  size_t pos = 0;
  const std::string& body = response.body;
  while (pos < body.size()) {
    size_t end = body.find("\n\n", pos);
    if (end == std::string::npos) {
      end = body.size();
    }
    const std::string block = body.substr(pos, end - pos);
    pos = end + 2;
    if (block.find_first_not_of(" \t\r\n") == std::string::npos) {
      continue;
    }
    WCOP_ASSIGN_OR_RETURN(JobRecord record, DecodeJobRecord(block));
    jobs.push_back(std::move(record));
  }
  return jobs;
}

Result<std::string> ServiceClient::Trace(int64_t id) const {
  WCOP_ASSIGN_OR_RETURN(
      HttpResponse response,
      Call("GET", "/jobs/" + std::to_string(id) + "/trace", std::string()));
  return response.body;
}

Result<JobRecord> ServiceClient::WaitForJob(
    int64_t id, std::chrono::milliseconds timeout) const {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (true) {
    WCOP_ASSIGN_OR_RETURN(JobRecord record, GetJob(id));
    if (record.state == JobState::kDone ||
        record.state == JobState::kFailed) {
      return record;
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      return Status::DeadlineExceeded("job " + std::to_string(id) +
                                      " still " +
                                      std::string(JobStateName(record.state)) +
                                      " after wait timeout");
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
  }
}

Result<std::string> ServiceClient::Health() const {
  WCOP_ASSIGN_OR_RETURN(HttpResponse response,
                        Call("GET", "/healthz", std::string()));
  return response.body;
}

Result<std::string> ServiceClient::Metrics(bool legacy_format) const {
  WCOP_ASSIGN_OR_RETURN(
      HttpResponse response,
      Call("GET", legacy_format ? "/metrics?format=text" : "/metrics",
           std::string()));
  return response.body;
}

Status ServiceClient::Shutdown(bool drain) const {
  return Call("POST", "/shutdown",
              drain ? std::string("mode drain\n") : std::string("mode now\n"))
      .status();
}

}  // namespace server
}  // namespace wcop
