#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "test_util.h"
#include "traj/geojson.h"

namespace wcop {
namespace {

using testing_util::MakeLineWithReq;

TEST(GeoJsonTest, SerializesFeatureCollection) {
  Dataset d;
  Trajectory t = MakeLineWithReq(7, 0, 0, 100, 0, 3, 4, 120.0);
  t.set_object_id(2);
  d.Add(t);
  const LocalProjection proj(39.9057, 116.3913);
  const std::string json = DatasetToGeoJson(d, proj);

  EXPECT_NE(json.find("\"FeatureCollection\""), std::string::npos);
  EXPECT_NE(json.find("\"LineString\""), std::string::npos);
  EXPECT_NE(json.find("\"traj_id\":7"), std::string::npos);
  EXPECT_NE(json.find("\"object_id\":2"), std::string::npos);
  EXPECT_NE(json.find("\"k\":4"), std::string::npos);
  EXPECT_NE(json.find("\"delta\":120.000"), std::string::npos);
  // The origin point maps back to the anchor coordinates (lon first).
  EXPECT_NE(json.find("[116.3913000,39.9057000]"), std::string::npos);
}

TEST(GeoJsonTest, RoundTripsThroughProjection) {
  Dataset d;
  d.Add(MakeLineWithReq(1, 1234.5, -987.6, 10, 5, 5, 2, 50.0));
  const LocalProjection proj(39.9057, 116.3913);
  const std::string json = DatasetToGeoJson(d, proj);
  // Spot-check: the first coordinate re-projects to ~the original metres.
  const auto pos = json.find("\"coordinates\":[[");
  ASSERT_NE(pos, std::string::npos);
  double lon = 0.0, lat = 0.0;
  ASSERT_EQ(std::sscanf(json.c_str() + pos + 16, "%lf,%lf", &lon, &lat), 2);
  const Point back = proj.ToMetric(lat, lon, 0.0);
  EXPECT_NEAR(back.x, 1234.5, 0.05);
  EXPECT_NEAR(back.y, -987.6, 0.05);
}

TEST(GeoJsonTest, MultipleFeaturesSeparatedByCommas) {
  Dataset d;
  d.Add(MakeLineWithReq(1, 0, 0, 10, 0, 3, 2, 50.0));
  d.Add(MakeLineWithReq(2, 50, 0, 10, 0, 3, 2, 50.0));
  const LocalProjection proj(39.9057, 116.3913);
  const std::string json = DatasetToGeoJson(d, proj);
  size_t features = 0;
  for (size_t pos = json.find("\"Feature\""); pos != std::string::npos;
       pos = json.find("\"Feature\"", pos + 1)) {
    ++features;
  }
  EXPECT_EQ(features, 2u);
}

TEST(GeoJsonTest, WritesToFile) {
  Dataset d;
  d.Add(MakeLineWithReq(1, 0, 0, 10, 0, 3, 2, 50.0));
  const LocalProjection proj(39.9057, 116.3913);
  const std::string path =
      (std::filesystem::temp_directory_path() / "wcop_test.geojson").string();
  ASSERT_TRUE(WriteDatasetGeoJson(d, proj, path).ok());
  std::ifstream in(path);
  std::string content((std::istreambuf_iterator<char>(in)),
                      std::istreambuf_iterator<char>());
  EXPECT_NE(content.find("FeatureCollection"), std::string::npos);
  std::remove(path.c_str());
}

TEST(GeoJsonTest, BadPathIsIoError) {
  const LocalProjection proj(39.9057, 116.3913);
  EXPECT_EQ(WriteDatasetGeoJson(Dataset(), proj, "/no/such/dir/x.geojson")
                .code(),
            StatusCode::kIoError);
}

}  // namespace
}  // namespace wcop
