#ifndef WCOP_COMMON_RETRY_H_
#define WCOP_COMMON_RETRY_H_

#include <chrono>
#include <cstdint>
#include <functional>

#include "common/result.h"
#include "common/status.h"
#include "common/telemetry.h"

namespace wcop {

/// Bounded exponential backoff for transient I/O failures.
///
/// The checkpoint writer, the snapshot reader, and the dataset parsers sit
/// on real filesystems where opens and writes fail transiently (NFS blips,
/// ENOSPC races with log rotation, antivirus locks). A RetryPolicy retries
/// *retryable* failures — kIoError only; corruption (kDataLoss), parse
/// errors, and context trips are never retried — waiting
///
///   backoff(attempt) = min(initial_backoff * multiplier^attempt,
///                          max_backoff) * (1 ± jitter)
///
/// between attempts. Jitter is deterministic (SplitMix64 of jitter_seed and
/// the attempt number) so tests can assert the exact schedule; production
/// callers vary jitter_seed per process to de-synchronize retry storms.
struct RetryPolicy {
  /// Total attempts, including the first one. 1 disables retries.
  int max_attempts = 3;

  std::chrono::nanoseconds initial_backoff = std::chrono::milliseconds(10);
  double multiplier = 2.0;
  std::chrono::nanoseconds max_backoff = std::chrono::seconds(1);

  /// Fractional jitter in [0, 1): each backoff is scaled by a deterministic
  /// factor in [1 - jitter, 1 + jitter].
  double jitter = 0.1;
  uint64_t jitter_seed = 0;

  /// Tests set this to false to assert the schedule without sleeping.
  bool sleep_between_attempts = true;

  /// Optional observability sink (non-owning; null disables). Every
  /// RetryCall records `retry.attempts` (attempts made, including the
  /// first) and, when a retryable failure survives all max_attempts tries,
  /// `retry.exhausted` — the signal that a backend is down rather than
  /// blinking. The anonymization service publishes these through its
  /// /metrics endpoint.
  telemetry::MetricsRegistry* metrics = nullptr;
};

/// True for status codes a retry can plausibly fix (transient I/O).
bool IsRetryable(const Status& status);

/// The exact pause before retry number `attempt` (0-based: the wait after
/// the first failure is BackoffForAttempt(policy, 0)). Deterministic.
std::chrono::nanoseconds BackoffForAttempt(const RetryPolicy& policy,
                                           int attempt);

/// Runs `op` up to policy.max_attempts times, sleeping the backoff schedule
/// between attempts. Returns the first success, the first non-retryable
/// failure, or the last retryable failure once attempts are exhausted.
/// `attempts_out` (optional) receives the number of attempts made.
Status RetryCall(const RetryPolicy& policy,
                 const std::function<Status()>& op,
                 int* attempts_out = nullptr);

/// Result<T> flavour of RetryCall.
template <typename T>
Result<T> RetryResultCall(const RetryPolicy& policy,
                          const std::function<Result<T>()>& op,
                          int* attempts_out = nullptr) {
  Result<T> last = Status::Internal("retry loop did not run");
  Status status = RetryCall(
      policy,
      [&]() {
        last = op();
        return last.status();
      },
      attempts_out);
  if (!status.ok()) {
    return status;
  }
  return last;
}

}  // namespace wcop

#endif  // WCOP_COMMON_RETRY_H_
