#ifndef WCOP_TRAJ_RESAMPLE_H_
#define WCOP_TRAJ_RESAMPLE_H_

#include <vector>

#include "traj/dataset.h"
#include "traj/trajectory.h"

namespace wcop {

/// Resampling utilities. Convoy discovery and the synchronized (NWA-style)
/// Euclidean distance both need positions at common timestamps; the benchmark
/// harness also downsamples trajectories to keep the quadratic EDR clustering
/// tractable at interactive speeds.

/// Resamples `t` on a uniform grid of `interval` seconds starting at its own
/// first timestamp (inclusive of the last point's time). Uses linear
/// interpolation; a single-point trajectory is returned unchanged.
Trajectory ResampleUniform(const Trajectory& t, double interval);

/// Keeps roughly every n-th point so that the result has at most
/// `max_points` points (always keeps first and last). No-op when the
/// trajectory is already small enough or `max_points` < 2.
Trajectory DownsampleToMaxPoints(const Trajectory& t, size_t max_points);

/// Applies DownsampleToMaxPoints to every trajectory of the dataset.
Dataset DownsampleDataset(const Dataset& dataset, size_t max_points);

/// The sorted union of snapshot times implied by a uniform grid over the
/// dataset's full time span (used by convoy discovery): t_min, t_min + step,
/// ..., up to t_max.
std::vector<double> UniformTimeGrid(const Dataset& dataset, double step);

}  // namespace wcop

#endif  // WCOP_TRAJ_RESAMPLE_H_
