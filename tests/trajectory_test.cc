#include <gtest/gtest.h>

#include "test_util.h"
#include "traj/trajectory.h"

namespace wcop {
namespace {

using testing_util::MakeLine;

TEST(TrajectoryTest, BasicAccessors) {
  Trajectory t = MakeLine(7, 0, 0, 1, 0, 5);
  EXPECT_EQ(t.id(), 7);
  EXPECT_EQ(t.size(), 5u);
  EXPECT_FALSE(t.empty());
  EXPECT_DOUBLE_EQ(t.StartTime(), 0.0);
  EXPECT_DOUBLE_EQ(t.EndTime(), 4.0);
  EXPECT_DOUBLE_EQ(t.Duration(), 4.0);
}

TEST(TrajectoryTest, PathLengthAndSpeed) {
  Trajectory t = MakeLine(1, 0, 0, 3, 4, 3);  // two hops of length 5
  EXPECT_DOUBLE_EQ(t.PathLength(), 10.0);
  EXPECT_DOUBLE_EQ(t.AverageSpeed(), 5.0);  // 10 m over 2 s
}

TEST(TrajectoryTest, DegenerateSpeedIsZero) {
  Trajectory single(1, {Point(1, 1, 0)});
  EXPECT_DOUBLE_EQ(single.AverageSpeed(), 0.0);
}

TEST(TrajectoryTest, PositionAtInterpolatesLinearly) {
  Trajectory t(1, {Point(0, 0, 0), Point(10, 20, 10)});
  const Point mid = t.PositionAt(5.0);
  EXPECT_DOUBLE_EQ(mid.x, 5.0);
  EXPECT_DOUBLE_EQ(mid.y, 10.0);
  EXPECT_DOUBLE_EQ(mid.t, 5.0);
  const Point quarter = t.PositionAt(2.5);
  EXPECT_DOUBLE_EQ(quarter.x, 2.5);
  EXPECT_DOUBLE_EQ(quarter.y, 5.0);
}

TEST(TrajectoryTest, PositionAtClampsOutsideLifetime) {
  Trajectory t(1, {Point(1, 2, 10), Point(3, 4, 20)});
  const Point before = t.PositionAt(0.0);
  EXPECT_DOUBLE_EQ(before.x, 1.0);
  EXPECT_DOUBLE_EQ(before.y, 2.0);
  EXPECT_DOUBLE_EQ(before.t, 0.0);
  const Point after = t.PositionAt(100.0);
  EXPECT_DOUBLE_EQ(after.x, 3.0);
  EXPECT_DOUBLE_EQ(after.y, 4.0);
}

TEST(TrajectoryTest, PositionAtExactSamples) {
  Trajectory t = MakeLine(1, 0, 0, 2, 1, 10);
  for (size_t i = 0; i < t.size(); ++i) {
    const Point p = t.PositionAt(t[i].t);
    EXPECT_DOUBLE_EQ(p.x, t[i].x);
    EXPECT_DOUBLE_EQ(p.y, t[i].y);
  }
}

TEST(TrajectoryTest, ValidateAcceptsWellFormed) {
  Trajectory t = MakeLine(1, 0, 0, 1, 1, 10);
  EXPECT_TRUE(t.Validate().ok());
}

TEST(TrajectoryTest, ValidateRejectsEmpty) {
  Trajectory t;
  EXPECT_EQ(t.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(TrajectoryTest, ValidateRejectsNonIncreasingTime) {
  Trajectory t(1, {Point(0, 0, 5), Point(1, 1, 5)});
  EXPECT_FALSE(t.Validate().ok());
  Trajectory t2(1, {Point(0, 0, 5), Point(1, 1, 4)});
  EXPECT_FALSE(t2.Validate().ok());
}

TEST(TrajectoryTest, ValidateRejectsNonFinite) {
  Trajectory t(1, {Point(0, 0, 0), Point(std::nan(""), 1, 1)});
  EXPECT_FALSE(t.Validate().ok());
}

TEST(TrajectoryTest, ValidateRejectsBadRequirement) {
  Trajectory t = MakeLine(1, 0, 0, 1, 1, 3);
  t.set_requirement(Requirement{0, 10.0});
  EXPECT_FALSE(t.Validate().ok());
  t.set_requirement(Requirement{2, -1.0});
  EXPECT_FALSE(t.Validate().ok());
}

TEST(TrajectoryTest, SliceInheritsMetadata) {
  Trajectory t = MakeLine(42, 0, 0, 1, 0, 10);
  t.set_object_id(3);
  t.set_requirement(Requirement{5, 100.0});
  const Trajectory sub = t.Slice(2, 6, 99);
  EXPECT_EQ(sub.id(), 99);
  EXPECT_EQ(sub.object_id(), 3);
  EXPECT_EQ(sub.parent_id(), 42);
  EXPECT_TRUE(sub.is_sub_trajectory());
  EXPECT_EQ(sub.requirement().k, 5);
  EXPECT_EQ(sub.size(), 4u);
  EXPECT_DOUBLE_EQ(sub.front().t, 2.0);
  EXPECT_DOUBLE_EQ(sub.back().t, 5.0);
}

TEST(TrajectoryTest, SliceClampsOutOfRange) {
  Trajectory t = MakeLine(1, 0, 0, 1, 0, 5);
  EXPECT_EQ(t.Slice(3, 100, 2).size(), 2u);
  EXPECT_EQ(t.Slice(10, 20, 3).size(), 0u);
}

TEST(TrajectoryTest, BoundsCoverAllPoints) {
  Trajectory t(1, {Point(-5, 2, 0), Point(7, -3, 1), Point(0, 9, 2)});
  const BoundingBox box = t.Bounds();
  EXPECT_DOUBLE_EQ(box.min_x(), -5.0);
  EXPECT_DOUBLE_EQ(box.max_x(), 7.0);
  EXPECT_DOUBLE_EQ(box.min_y(), -3.0);
  EXPECT_DOUBLE_EQ(box.max_y(), 9.0);
}

TEST(TrajectoryTest, DebugStringMentionsKeyFields) {
  Trajectory t = MakeLine(5, 0, 0, 1, 0, 3);
  t.set_requirement(Requirement{4, 77.0});
  const std::string s = t.DebugString();
  EXPECT_NE(s.find("id=5"), std::string::npos);
  EXPECT_NE(s.find("k=4"), std::string::npos);
  EXPECT_NE(s.find("points=3"), std::string::npos);
}

}  // namespace
}  // namespace wcop
