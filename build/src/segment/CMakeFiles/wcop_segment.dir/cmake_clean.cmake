file(REMOVE_RECURSE
  "CMakeFiles/wcop_segment.dir/convoy.cc.o"
  "CMakeFiles/wcop_segment.dir/convoy.cc.o.d"
  "CMakeFiles/wcop_segment.dir/segmenter.cc.o"
  "CMakeFiles/wcop_segment.dir/segmenter.cc.o.d"
  "CMakeFiles/wcop_segment.dir/traclus.cc.o"
  "CMakeFiles/wcop_segment.dir/traclus.cc.o.d"
  "libwcop_segment.a"
  "libwcop_segment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wcop_segment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
